package epnet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"epnet/internal/sim"
	"epnet/internal/telemetry"
)

// This file is the public face of flow tracing (Config.FlowTrace /
// Config.FlowsOut): mirror types for the internal collector snapshot
// with stable JSON tags, the ranked human-readable decomposition report
// behind `epsim -flow-trace`, and the per-phase CSV exporter. Times are
// integer picoseconds on the wire (`*_ps`) — the components of a traced
// packet sum to its end-to-end latency exactly, and nanosecond rounding
// would break that identity. Everything here is deterministic:
// byte-identical across shard counts for the same Config.

// flowComponentLabels are the display names of the latency components,
// in telemetry component order.
var flowComponentLabels = [telemetry.FlowComponents]string{
	"queue", "credit", "retune", "busy", "cut-through", "serialize", "wire", "route",
}

// FlowBreakdown splits traced time into the eight latency components,
// in integer picoseconds: residual queue wait, credit stalls, retune
// (reactivation) stalls, busy-channel waits, cut-through causality
// waits, delivery serialization, wire flight, and routing/arbitration.
type FlowBreakdown struct {
	QueuePs      int64 `json:"queue_ps"`
	CreditPs     int64 `json:"credit_ps"`
	RetunePs     int64 `json:"retune_ps"`
	BusyPs       int64 `json:"busy_ps"`
	CutThroughPs int64 `json:"cutthrough_ps"`
	SerializePs  int64 `json:"serialize_ps"`
	WirePs       int64 `json:"wire_ps"`
	RoutePs      int64 `json:"route_ps"`
}

func newFlowBreakdown(comp [telemetry.FlowComponents]sim.Time) FlowBreakdown {
	return FlowBreakdown{
		QueuePs:      int64(comp[telemetry.FlowQueue]),
		CreditPs:     int64(comp[telemetry.FlowCredit]),
		RetunePs:     int64(comp[telemetry.FlowRetune]),
		BusyPs:       int64(comp[telemetry.FlowBusy]),
		CutThroughPs: int64(comp[telemetry.FlowCut]),
		SerializePs:  int64(comp[telemetry.FlowSerialize]),
		WirePs:       int64(comp[telemetry.FlowWire]),
		RoutePs:      int64(comp[telemetry.FlowRoute]),
	}
}

// components returns the breakdown in telemetry component order.
func (b FlowBreakdown) components() [telemetry.FlowComponents]int64 {
	return [telemetry.FlowComponents]int64{
		b.QueuePs, b.CreditPs, b.RetunePs, b.BusyPs,
		b.CutThroughPs, b.SerializePs, b.WirePs, b.RoutePs,
	}
}

// TotalPs sums the components.
func (b FlowBreakdown) TotalPs() int64 {
	var sum int64
	for _, v := range b.components() {
		sum += v
	}
	return sum
}

// add accumulates other into b.
func (b *FlowBreakdown) add(other FlowBreakdown) {
	b.QueuePs += other.QueuePs
	b.CreditPs += other.CreditPs
	b.RetunePs += other.RetunePs
	b.BusyPs += other.BusyPs
	b.CutThroughPs += other.CutThroughPs
	b.SerializePs += other.SerializePs
	b.WirePs += other.WirePs
	b.RoutePs += other.RoutePs
}

// FlowPacketHop is one hop of a traced packet's journey: the node it
// waited at, the channel it left on, and where its time there went.
type FlowPacketHop struct {
	// Node is "h<i>" for the injection hop, "s<i>" for a switch.
	Node string `json:"node"`
	// Chan is the channel the packet departed on ("s0p1-s1p0"-style),
	// empty when the packet never left this hop (dropped while queued).
	Chan      string        `json:"chan,omitempty"`
	ArrivePs  int64         `json:"arrive_ps"`
	DepartPs  int64         `json:"depart_ps"`
	XmitPs    int64         `json:"xmit_ps"`
	Breakdown FlowBreakdown `json:"breakdown"`
}

// FlowPacket is one traced packet's full hop log. The per-hop breakdown
// components sum exactly to LatencyPs.
type FlowPacket struct {
	ID        int64           `json:"id"`
	MsgID     int64           `json:"msg_id"`
	Src       string          `json:"src"`
	Dst       string          `json:"dst"`
	Size      int             `json:"size"`
	InjectPs  int64           `json:"inject_ps"`
	DonePs    int64           `json:"done_ps"`
	LatencyPs int64           `json:"latency_ps"`
	Dropped   bool            `json:"dropped,omitempty"`
	DropWhy   string          `json:"drop_why,omitempty"`
	Truncated bool            `json:"truncated,omitempty"`
	Breakdown FlowBreakdown   `json:"breakdown"`
	Hops      []FlowPacketHop `json:"hops"`
}

// FlowClassReport is one flow class's (scenario phase's) merged latency
// decomposition and energy accounting over the traced packets that
// finished in it.
type FlowClassReport struct {
	Phase string `json:"phase"`
	// Count/Drops/Bytes cover traced packets only; scale by the sample
	// rate for population estimates.
	Count         int64   `json:"count"`
	Drops         int64   `json:"drops"`
	Bytes         int64   `json:"bytes"`
	MeanHops      float64 `json:"mean_hops"`
	MeanLatencyPs int64   `json:"mean_latency_ps"`
	MaxLatencyPs  int64   `json:"max_latency_ps"`
	// Breakdown is summed over the class's traced packets; divide by
	// Count for per-packet means. The components sum to Count times the
	// mean latency (exactly: to the class's total traced latency).
	Breakdown FlowBreakdown `json:"breakdown"`
	// EnergyPJPerBit charges each traced byte its share of the energy of
	// the channels it crossed, in picojoules per delivered bit (0 when
	// the run computed no per-channel energies — live snapshots).
	EnergyPJPerBit float64 `json:"energy_pj_per_bit,omitempty"`
}

// applyToScore copies the class decomposition into its scorecard row:
// traced counts, per-packet mean component times, and the energy rate.
// Display-level (integer ps divided down to ns), so the exact-sum
// identity lives in the report, not the scorecard.
func (c *FlowClassReport) applyToScore(ps *PhaseScore) {
	ps.TracedPackets = c.Count
	ps.TracedDropped = c.Drops
	ps.EnergyPJPerBit = c.EnergyPJPerBit
	if c.Count == 0 {
		return
	}
	comps := c.Breakdown.components()
	mean := func(i int) time.Duration { return toDuration(sim.Time(comps[i] / c.Count)) }
	ps.QueueWait = mean(telemetry.FlowQueue)
	ps.CreditStall = mean(telemetry.FlowCredit)
	ps.RetuneStall = mean(telemetry.FlowRetune)
	ps.BusyWait = mean(telemetry.FlowBusy)
	ps.CutThroughWait = mean(telemetry.FlowCut)
	ps.SerializeTime = mean(telemetry.FlowSerialize)
	ps.WireTime = mean(telemetry.FlowWire)
	ps.RouteTime = mean(telemetry.FlowRoute)
}

// FlowTransmit is one flight-recorder entry: a traced packet starting
// across a channel shortly before a fault epoch.
type FlowTransmit struct {
	AtPs   int64  `json:"at_ps"`
	Packet int64  `json:"pkt"`
	Chan   string `json:"chan"`
	Size   int32  `json:"size"`
}

// FlowDumpReport is one anomaly dump: a dropped traced packet's hop log
// (Packet != nil), or the recent traced transmits leading up to a fault
// epoch (Recent != nil).
type FlowDumpReport struct {
	Reason string         `json:"reason"`
	AtPs   int64          `json:"at_ps"`
	Packet *FlowPacket    `json:"packet,omitempty"`
	Recent []FlowTransmit `json:"recent,omitempty"`
}

// FlowTraceReport is the per-flow latency and energy decomposition of a
// run (Result.FlowTrace): per-phase component breakdowns, the globally
// slowest traced packets with full hop logs, and the anomaly dumps the
// flight recorder captured at drops and fault epochs.
type FlowTraceReport struct {
	SampleRate float64           `json:"sample_rate"`
	Started    int64             `json:"started"`
	Delivered  int64             `json:"delivered"`
	Dropped    int64             `json:"dropped"`
	Classes    []FlowClassReport `json:"classes"`
	Exemplars  []FlowPacket      `json:"exemplars,omitempty"`
	Dumps      []FlowDumpReport  `json:"dumps,omitempty"`
}

// flowNode renders a hop node: hosts are encoded ^host by the collector.
func flowNode(n int32) string {
	if n < 0 {
		return fmt.Sprintf("h%d", ^n)
	}
	return fmt.Sprintf("s%d", n)
}

// newFlowPacket mirrors one internal trace. chanLabels maps channel
// index to wiring label.
func newFlowPacket(tr *telemetry.PacketTrace, chanLabels []string) FlowPacket {
	p := FlowPacket{
		ID:        tr.ID,
		MsgID:     tr.MsgID,
		Src:       fmt.Sprintf("h%d", tr.Src),
		Dst:       fmt.Sprintf("h%d", tr.Dst),
		Size:      tr.Size,
		InjectPs:  int64(tr.Inject),
		DonePs:    int64(tr.Done),
		LatencyPs: int64(tr.Latency()),
		Dropped:   tr.Dropped,
		DropWhy:   tr.DropWhy,
		Truncated: tr.Truncated,
		Hops:      make([]FlowPacketHop, tr.NHops),
	}
	for i := 0; i < tr.NHops; i++ {
		h := &tr.Hops[i]
		ph := FlowPacketHop{
			Node:      flowNode(h.Node),
			ArrivePs:  int64(h.Arrive),
			DepartPs:  int64(h.Depart),
			XmitPs:    int64(h.Xmit),
			Breakdown: newFlowBreakdown(h.Comp),
		}
		if h.Chan >= 0 && int(h.Chan) < len(chanLabels) {
			ph.Chan = chanLabels[h.Chan]
		}
		p.Breakdown.add(ph.Breakdown)
		p.Hops[i] = ph
	}
	return p
}

// newFlowTraceReport mirrors a collector snapshot into the public
// report. chanLabels maps channel index to wiring label. chanEnergy and
// chanBytes, when non-nil, give each channel's energy (joules) and total
// carried bytes over the measurement window; the per-class energy join
// charges traced bytes their share. Nil (live snapshots) leaves
// EnergyPJPerBit zero.
func newFlowTraceReport(snap *telemetry.FlowSnapshot, chanLabels []string,
	chanEnergy []float64, chanBytes []int64) *FlowTraceReport {
	rep := &FlowTraceReport{
		SampleRate: snap.SampleRate,
		Started:    snap.Started,
		Delivered:  snap.Delivered,
		Dropped:    snap.Dropped,
		Classes:    make([]FlowClassReport, len(snap.Classes)),
	}
	for i := range snap.Classes {
		cs := &snap.Classes[i]
		cr := FlowClassReport{
			Phase:        cs.Name,
			Count:        cs.Count,
			Drops:        cs.Drops,
			Bytes:        cs.Bytes,
			MaxLatencyPs: int64(cs.MaxLat),
			Breakdown:    newFlowBreakdown(cs.Comp),
		}
		if cs.Count > 0 {
			cr.MeanHops = float64(cs.Hops) / float64(cs.Count)
			cr.MeanLatencyPs = int64(cs.SumLat) / cs.Count
		}
		if chanEnergy != nil && chanBytes != nil && cs.Bytes > 0 {
			var ej float64
			for ch, b := range cs.ChanBytes {
				if b > 0 && ch < len(chanBytes) && chanBytes[ch] > 0 {
					ej += chanEnergy[ch] * float64(b) / float64(chanBytes[ch])
				}
			}
			cr.EnergyPJPerBit = ej * 1e12 / (float64(cs.Bytes) * 8)
		}
		rep.Classes[i] = cr
	}
	for _, tr := range snap.Exemplars {
		rep.Exemplars = append(rep.Exemplars, newFlowPacket(tr, chanLabels))
	}
	for _, d := range snap.Dumps {
		dr := FlowDumpReport{Reason: d.Reason, AtPs: int64(d.At)}
		if d.Trace != nil {
			p := newFlowPacket(d.Trace, chanLabels)
			dr.Packet = &p
		}
		for _, r := range d.Recent {
			t := FlowTransmit{AtPs: int64(r.At), Packet: r.Pkt, Size: r.Size}
			if int(r.Chan) < len(chanLabels) {
				t.Chan = chanLabels[r.Chan]
			}
			dr.Recent = append(dr.Recent, t)
		}
		rep.Dumps = append(rep.Dumps, dr)
	}
	return rep
}

// flowUs renders picoseconds as microseconds for display.
func flowUs(ps int64) string { return fmt.Sprintf("%.3fus", float64(ps)/1e6) }

// topShares returns component indexes with a nonzero share of total,
// largest first (ties by component order).
func topShares(b FlowBreakdown) []int {
	comps := b.components()
	order := make([]int, 0, len(comps))
	for i, v := range comps {
		if v > 0 {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		return comps[order[i]] > comps[order[j]]
	})
	return order
}

// shareLine renders up to n leading components of b as
// "61.0% retune, 20.1% queue, ...", shares of total.
func shareLine(b FlowBreakdown, total int64, n int) string {
	if total <= 0 {
		return "idle"
	}
	comps := b.components()
	var parts []string
	for _, c := range topShares(b) {
		if len(parts) == n {
			break
		}
		parts = append(parts, fmt.Sprintf("%s %s",
			pct(float64(comps[c])/float64(total)), flowComponentLabels[c]))
	}
	if len(parts) == 0 {
		return "idle"
	}
	return strings.Join(parts, ", ")
}

// hotHop returns the hop contributing the most of component c, for the
// "where" half of an exemplar line.
func hotHop(p *FlowPacket, c int) *FlowPacketHop {
	var best *FlowPacketHop
	var bestV int64
	for i := range p.Hops {
		if v := p.Hops[i].Breakdown.components()[c]; v > bestV {
			best, bestV = &p.Hops[i], v
		}
	}
	return best
}

// WriteReport writes the human-readable decomposition report: the
// per-phase component split, the ranked slowest traced packets with
// their dominant stall and where it accrued, and the anomaly dumps.
// This is what `epsim -flow-trace` prints.
func (r *FlowTraceReport) WriteReport(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "flow trace: sample rate %.4g, traced %d (%d delivered, %d dropped)\n",
		r.SampleRate, r.Started, r.Delivered, r.Dropped)
	for i := range r.Classes {
		c := &r.Classes[i]
		fmt.Fprintf(bw, "  phase %-10s %6d pkts (%d drops) mean %s max %s hops %.1f",
			c.Phase, c.Count, c.Drops,
			flowUs(c.MeanLatencyPs), flowUs(c.MaxLatencyPs), c.MeanHops)
		if c.EnergyPJPerBit > 0 {
			fmt.Fprintf(bw, " energy %.2f pJ/bit", c.EnergyPJPerBit)
		}
		fmt.Fprintf(bw, "\n    %s\n", shareLine(c.Breakdown, c.Breakdown.TotalPs(), len(flowComponentLabels)))
	}
	if len(r.Exemplars) > 0 {
		fmt.Fprintln(bw, "slowest traced packets:")
		for i := range r.Exemplars {
			p := &r.Exemplars[i]
			fmt.Fprintf(bw, "  %2d. pkt %-8d %s->%s %s over %d hop(s): %s",
				i+1, p.ID, p.Src, p.Dst, flowUs(p.LatencyPs), len(p.Hops),
				shareLine(p.Breakdown, p.LatencyPs, 3))
			if top := topShares(p.Breakdown); len(top) > 0 {
				if h := hotHop(p, top[0]); h != nil {
					fmt.Fprintf(bw, " (worst at %s", h.Node)
					if h.Chan != "" {
						fmt.Fprintf(bw, " on %s", h.Chan)
					}
					fmt.Fprint(bw, ")")
				}
			}
			fmt.Fprintln(bw)
		}
	}
	if len(r.Dumps) > 0 {
		fmt.Fprintln(bw, "anomaly dumps:")
		for i := range r.Dumps {
			d := &r.Dumps[i]
			fmt.Fprintf(bw, "  [%s] %s\n", flowUs(d.AtPs), d.Reason)
			if d.Packet != nil {
				p := d.Packet
				fmt.Fprintf(bw, "    pkt %d %s->%s, %s in flight: %s\n",
					p.ID, p.Src, p.Dst, flowUs(p.LatencyPs),
					shareLine(p.Breakdown, p.Breakdown.TotalPs(), 3))
				for j := range p.Hops {
					h := &p.Hops[j]
					line := fmt.Sprintf("    hop %d %s", j, h.Node)
					if h.Chan != "" {
						line += " -> " + h.Chan
					}
					fmt.Fprintf(bw, "%s: %s\n", line,
						shareLine(h.Breakdown, h.Breakdown.TotalPs(), 3))
				}
			}
			if len(d.Recent) > 0 {
				fmt.Fprintf(bw, "    last %d traced transmit(s):\n", len(d.Recent))
				for _, t := range d.Recent {
					fmt.Fprintf(bw, "      [%s] pkt %d on %s (%d B)\n",
						flowUs(t.AtPs), t.Packet, t.Chan, t.Size)
				}
			}
		}
	}
	return bw.Flush()
}

// WriteCSV writes the per-phase decomposition as CSV: '#'-prefixed
// whole-run summary lines, then one row per phase with per-packet mean
// component times in microseconds.
func (r *FlowTraceReport) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# sample_rate=%g started=%d delivered=%d dropped=%d\n",
		r.SampleRate, r.Started, r.Delivered, r.Dropped)
	fmt.Fprintln(bw, "phase,count,drops,bytes,mean_hops,mean_latency_us,max_latency_us,"+
		"queue_us,credit_us,retune_us,busy_us,cutthrough_us,serialize_us,wire_us,route_us,"+
		"energy_pj_per_bit")
	for i := range r.Classes {
		c := &r.Classes[i]
		fmt.Fprintf(bw, "%s,%d,%d,%d,%.2f,%.3f,%.3f",
			c.Phase, c.Count, c.Drops, c.Bytes, c.MeanHops,
			float64(c.MeanLatencyPs)/1e6, float64(c.MaxLatencyPs)/1e6)
		for _, v := range c.Breakdown.components() {
			mean := 0.0
			if c.Count > 0 {
				mean = float64(v) / float64(c.Count) / 1e6
			}
			fmt.Fprintf(bw, ",%.3f", mean)
		}
		fmt.Fprintf(bw, ",%.4f\n", c.EnergyPJPerBit)
	}
	return bw.Flush()
}

// writeJSON streams the report as indented JSON.
func (r *FlowTraceReport) writeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// writeFlowsOut writes the report to path: CSV when the path ends in
// ".csv", JSON otherwise.
func writeFlowsOut(path string, r *FlowTraceReport) error {
	write := r.writeJSON
	if strings.HasSuffix(path, ".csv") {
		write = r.WriteCSV
	}
	if err := writeFile(path, write); err != nil {
		return fmt.Errorf("epnet: writing flow trace: %w", err)
	}
	return nil
}
