package epnet

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// tinyEval is a reduced evaluation scale that keeps the determinism
// tests fast while still exercising warmup, the EP controller and all
// three workloads.
func tinyEval() EvalConfig {
	e := DefaultEval()
	e.K, e.N, e.C = 4, 2, 4
	e.Warmup = 100 * time.Microsecond
	e.Duration = 400 * time.Microsecond
	return e
}

// TestParallelMatchesSerial is the determinism guarantee behind the
// -parallel flag: Figure8 (three workloads x three configurations each)
// must produce deeply equal results whether its grid runs serially or
// across several workers.
func TestParallelMatchesSerial(t *testing.T) {
	serial := tinyEval()
	serial.Parallel = 1
	want, err := Figure8(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		par := tinyEval()
		par.Parallel = workers
		got, err := Figure8(par)
		if err != nil {
			t.Fatalf("parallel=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("parallel=%d: results differ from serial\nserial:   %+v\nparallel: %+v",
				workers, want, got)
		}
	}
}

// TestRunGridMatchesSerialRuns checks the lower-level contract: RunGrid
// over a mixed grid equals one-at-a-time Run calls, result for result.
func TestRunGridMatchesSerialRuns(t *testing.T) {
	e := tinyEval()
	var cfgs []Config
	for _, w := range []WorkloadKind{WorkloadUniform, WorkloadSearch} {
		for _, p := range []PolicyKind{PolicyBaseline, PolicyHalveDouble} {
			cfg := e.base()
			cfg.Workload = w
			cfg.Policy = p
			cfgs = append(cfgs, cfg)
		}
	}
	want := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	got, err := RunGrid(cfgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("RunGrid results differ from serial Run calls")
	}
}

// TestConcurrentEngines runs several complete simulations at once on
// their own goroutines — under -race this verifies that independent
// engines share no mutable state.
func TestConcurrentEngines(t *testing.T) {
	e := tinyEval()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	results := make([]Result, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := e.base()
			cfg.Workload = evalWorkloads[i%len(evalWorkloads)]
			cfg.Policy = PolicyHalveDouble
			cfg.Seed = int64(1 + i/len(evalWorkloads)) // repeat configs across goroutines
			results[i], errs[i] = Run(cfg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	// Identical configs run on different goroutines must agree exactly.
	for i := range results {
		for j := i + 1; j < len(results); j++ {
			if reflect.DeepEqual(results[i].Config, results[j].Config) &&
				!reflect.DeepEqual(results[i], results[j]) {
				t.Errorf("runs %d and %d share a config but disagree", i, j)
			}
		}
	}
}

// TestRunGridError verifies that an invalid configuration in the middle
// of a grid surfaces its error (and that the error is the lowest-index
// failure, independent of scheduling).
func TestRunGridError(t *testing.T) {
	e := tinyEval()
	good := e.base()
	bad := e.base()
	bad.K = 0 // fails validation
	cfgs := []Config{good, bad, good, bad}
	for _, workers := range []int{1, 4} {
		if _, err := RunGrid(cfgs, workers); err == nil {
			t.Errorf("workers=%d: expected error from invalid config", workers)
		}
	}
}
