package epnet

import (
	"fmt"

	"epnet/internal/link"
	"epnet/internal/power"
	"epnet/internal/topo"
)

// TopologyRow is one column of the paper's Table 1: the part counts and
// power of a 32k-host network at fixed bisection bandwidth.
type TopologyRow struct {
	Name            string
	Hosts           int
	BisectionGbps   float64
	ElectricalLinks int
	OpticalLinks    int
	SwitchChips     int
	TotalWatts      float64
	WattsPerGbps    float64
}

// Table1Result holds both Table 1 columns and the derived savings quoted
// in the paper's text.
type Table1Result struct {
	Clos  TopologyRow
	FBFLY TopologyRow
	// SavingsWatts is the power difference (409,600 W in the paper).
	SavingsWatts float64
	// SavingsDollars over the four-year service life (~$1.6M).
	SavingsDollars float64
	// FBFLYBaselineDollars is the four-year energy cost of the always-on
	// FBFLY (~$2.89M) — the savings dynamic range can still recover.
	FBFLYBaselineDollars float64
}

func toRow(r power.TopologyRow) TopologyRow {
	return TopologyRow{
		Name:            r.Name,
		Hosts:           r.Hosts,
		BisectionGbps:   r.BisectionGbps,
		ElectricalLinks: r.ElectricalLinks,
		OpticalLinks:    r.OpticalLinks,
		SwitchChips:     r.SwitchChips,
		TotalWatts:      r.TotalWatts,
		WattsPerGbps:    r.WattsPerGbps,
	}
}

// Table1 reproduces the paper's Table 1: a 32k-host folded Clos vs an
// 8-ary 5-flat flattened butterfly at 655 Tb/s bisection, built from
// 36-port 40 Gb/s switches at 100 W per chip and 10 W per NIC.
func Table1() Table1Result {
	t := power.PaperTable1()
	return Table1Result{
		Clos:                 toRow(t.Clos),
		FBFLY:                toRow(t.FBFLY),
		SavingsWatts:         t.SavingsWatts,
		SavingsDollars:       t.SavingsDollars,
		FBFLYBaselineDollars: t.FBFLYBaselineDollars,
	}
}

// CustomTable1 computes the same comparison for an arbitrary FBFLY shape
// and chip radix (hosts are derived from the FBFLY shape).
func CustomTable1(k, n, c, chipRadix int) (Table1Result, error) {
	f, err := topo.NewFBFLY(k, n, c)
	if err != nil {
		return Table1Result{}, err
	}
	t, err := power.ComputeTable1(f.NumHosts(), chipRadix, f,
		power.DefaultPartPower(), power.DefaultCostModel(), link.Rate40G)
	if err != nil {
		return Table1Result{}, err
	}
	return Table1Result{
		Clos:                 toRow(t.Clos),
		FBFLY:                toRow(t.FBFLY),
		SavingsWatts:         t.SavingsWatts,
		SavingsDollars:       t.SavingsDollars,
		FBFLYBaselineDollars: t.FBFLYBaselineDollars,
	}, nil
}

// Figure1Scenario is one bar group of the paper's Figure 1.
type Figure1Scenario struct {
	Name            string
	ServerWatts     float64
	NetworkWatts    float64
	NetworkFraction float64
}

// Figure1Result is the server-vs-network power comparison of Figure 1.
type Figure1Result struct {
	Scenarios []Figure1Scenario
	// NetworkSavingsWatts from an energy proportional network at 15%
	// utilization (975 kW in the paper); NetworkSavingsDollars over the
	// four-year service life (~$3.8M).
	NetworkSavingsWatts   float64
	NetworkSavingsDollars float64
}

// Figure1 reproduces the paper's Figure 1: a 32k-server cluster at
// 250 W/server with the Table 1 folded-Clos network, at full
// utilization, at 15% with energy-proportional servers, and at 15% with
// an energy-proportional network too.
func Figure1() Figure1Result {
	f := power.PaperFigure1()
	out := Figure1Result{
		NetworkSavingsWatts:   f.NetworkSavingsWatts,
		NetworkSavingsDollars: f.NetworkSavingsDollars,
	}
	for _, s := range f.Scenarios {
		out.Scenarios = append(out.Scenarios, Figure1Scenario{
			Name:            s.Name,
			ServerWatts:     s.ServerWatts,
			NetworkWatts:    s.NetworkWatts,
			NetworkFraction: s.NetworkFraction(),
		})
	}
	return out
}

// ProfilePoint is one operating mode of the Figure 5 switch profile.
type ProfilePoint struct {
	RateGbps      float64
	RelativePower float64 // measured profile, normalized to full rate
	IdealPower    float64 // ideally proportional channel
}

// Figure5 returns the measured InfiniBand-style switch power profile of
// the paper's Figure 5, alongside the ideal proportional curve, plus the
// idle floor and power-off residue of the measured chip.
func Figure5() (points []ProfilePoint, idleFloor, offResidue float64) {
	m := power.InfiniBandOptical()
	ideal := power.NewIdeal(link.Rate40G)
	for _, p := range m.Points() {
		points = append(points, ProfilePoint{
			RateGbps:      p.Rate.GbpsF(),
			RelativePower: p.Relative,
			IdealPower:    ideal.Relative(p.Rate),
		})
	}
	return points, m.IdleFloor(), m.Off()
}

// ITRSPoint is one year of the Figure 6 roadmap trends.
type ITRSPoint struct {
	Year          int
	IOBandwidthTb float64
	OffChipGbps   float64
	PackagePinsK  float64
}

// Figure6 returns the ITRS bandwidth/pin/clock trend series plotted in
// the paper's Figure 6 (see internal/power for the reconstruction
// notes).
func Figure6() []ITRSPoint {
	var out []ITRSPoint
	for _, p := range power.ITRSTrends() {
		out = append(out, ITRSPoint(p))
	}
	return out
}

// DataRateMode is one row of the paper's Table 2 (InfiniBand data
// rates).
type DataRateMode struct {
	Name     string
	Lanes    int
	RateGbps float64
}

// Table2 returns the InfiniBand multi-data-rate modes of the paper's
// Table 2.
func Table2() []DataRateMode {
	names := map[link.Rate]string{
		link.Rate2_5G: "SDR",
		link.Rate5G:   "DDR",
		link.Rate10G:  "QDR",
	}
	var out []DataRateMode
	for _, m := range link.InfiniBandModes() {
		out = append(out, DataRateMode{
			Name:     names[m.LaneRate],
			Lanes:    m.Lanes,
			RateGbps: m.Total().GbpsF(),
		})
	}
	return out
}

// CostOfWatts converts continuous power draw into four-year electricity
// dollars under the paper's assumptions ($0.07/kWh, PUE 1.6).
func CostOfWatts(watts float64) float64 {
	return power.DefaultCostModel().Dollars(watts)
}

// SerDesPoint is one evaluated lane design point of the §6 channel
// design exploration.
type SerDesPoint struct {
	LaneGbps    float64
	LaneMW      float64
	PJPerBit    float64
	Feasible    bool
	LanesFor40G int
	PortMW      float64
}

// SerDesChannel names one of the modeled channel classes.
type SerDesChannel string

const (
	// SerDesShortCopper is the <1 m intra-group passive copper channel.
	SerDesShortCopper SerDesChannel = "short-copper"
	// SerDesLongCopper is the ~5 m passive copper channel.
	SerDesLongCopper SerDesChannel = "long-copper"
	// SerDesOptical is the optical transceiver channel.
	SerDesOptical SerDesChannel = "optical"
)

// SerDesSweep evaluates lane data rates for a channel class and returns
// the design points plus the energy-per-bit-optimal feasible point —
// the paper's §6 challenge to channel designers ("choosing optimal data
// rate and equalization technology"), after Hatamkhani & Yang [10].
func SerDesSweep(ch SerDesChannel) (points []SerDesPoint, best SerDesPoint, err error) {
	var d power.SerDesDesign
	switch ch {
	case SerDesShortCopper:
		d = power.ShortCopperDesign()
	case SerDesLongCopper:
		d = power.LongCopperDesign()
	case SerDesOptical:
		d = power.OpticalDesign()
	default:
		return nil, SerDesPoint{}, fmt.Errorf("epnet: unknown channel class %q", ch)
	}
	pts, b := power.SweepLaneRate(d, power.DefaultLaneRates())
	for _, p := range pts {
		points = append(points, SerDesPoint(p))
	}
	return points, SerDesPoint(b), nil
}
