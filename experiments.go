package epnet

import (
	"fmt"
	"path/filepath"
	"strings"
	"time"
)

// EvalConfig scales the paper-figure experiments. The paper simulates a
// 15-ary 3-flat (3,375 hosts); the default here is a reduced instance
// that preserves every qualitative result while running in seconds (the
// energy-proportional mechanism is local to each link, so its behavior
// is scale-invariant given the same per-link load pattern — see
// DESIGN.md).
type EvalConfig struct {
	// Config is the base simulation configuration every experiment
	// derives from — there is one source of truth for run parameters,
	// and the harness fields (K/N/C, Warmup, Duration, Seed, Shards,
	// Faults, FaultRate, FaultMTTR, ...) are its promoted fields.
	// Each experiment copies it and overrides the axes it studies
	// (workload, policy, reactivation, ...). Start from DefaultEval or
	// PaperEval, not the zero value.
	Config

	// Parallel is the number of simulations run concurrently within one
	// experiment (each on its own engine): < 1 means one per CPU, 1
	// forces serial execution. Results are identical either way — see
	// RunGrid.
	Parallel int

	// Telemetry, when non-nil, gives every simulation its own metrics
	// and trace files (see Config.MetricsOut / TraceOut): each base
	// path gets a run-sequence suffix before its extension, e.g.
	// "telemetry.csv" -> "telemetry.007.csv". Suffixes are assigned in
	// configuration order before the runs fan out, so -parallel
	// execution writes byte-identical files and stdout is untouched.
	Telemetry *TelemetryOpts
}

// TelemetryOpts configures per-run telemetry for an experiment harness.
// The same pointer threads through every grid of an evaluation, so the
// run sequence numbers all its simulations consecutively.
type TelemetryOpts struct {
	MetricsOut     string // base path for sampled time series ("" = off)
	TraceOut       string // base path for Chrome trace files ("" = off)
	HeatmapOut     string // base path for utilization heatmap CSVs ("" = off)
	HistOut        string // base path for utilization histogram CSVs ("" = off)
	ProfileOut     string // base path for engine self-profiles ("" = off)
	FlowsOut       string // base path for flow-trace reports ("" = off)
	FlowTrace      bool   // trace flows even without a FlowsOut file
	FlowSample     float64
	SampleInterval time.Duration

	// Inspector, when non-nil, is shared by every simulation of the
	// evaluation: the live endpoints always serve the most recently
	// sampled run.
	Inspector *Inspector

	seq int // simulations numbered so far
}

// numberedPath inserts a zero-padded sequence before path's extension.
func numberedPath(path string, n int) string {
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.%03d%s", strings.TrimSuffix(path, ext), n, ext)
}

// Apply stamps per-run output paths onto each configuration, in order.
// It is a no-op on a nil receiver or when every output is disabled.
func (t *TelemetryOpts) Apply(cfgs []Config) {
	if t == nil || (t.MetricsOut == "" && t.TraceOut == "" && t.HeatmapOut == "" &&
		t.HistOut == "" && t.ProfileOut == "" && t.FlowsOut == "" &&
		!t.FlowTrace && t.Inspector == nil) {
		return
	}
	for i := range cfgs {
		n := t.seq
		t.seq++
		cfgs[i].SampleInterval = t.SampleInterval
		cfgs[i].Inspector = t.Inspector
		if t.FlowTrace {
			cfgs[i].FlowTrace = true
		}
		if t.FlowSample > 0 {
			cfgs[i].FlowSample = t.FlowSample
		}
		if t.FlowsOut != "" {
			cfgs[i].FlowsOut = numberedPath(t.FlowsOut, n)
		}
		if t.MetricsOut != "" {
			cfgs[i].MetricsOut = numberedPath(t.MetricsOut, n)
		}
		if t.TraceOut != "" {
			cfgs[i].TraceOut = numberedPath(t.TraceOut, n)
		}
		if t.HeatmapOut != "" {
			cfgs[i].HeatmapOut = numberedPath(t.HeatmapOut, n)
		}
		if t.HistOut != "" {
			cfgs[i].HistOut = numberedPath(t.HistOut, n)
		}
		if t.ProfileOut != "" {
			cfgs[i].ProfileOut = numberedPath(t.ProfileOut, n)
		}
	}
}

// DefaultEval returns the fast evaluation scale: an 8-ary 2-flat
// (64 hosts) measured for 4 ms after 1 ms of warmup.
func DefaultEval() EvalConfig {
	c := DefaultConfig()
	c.Warmup = time.Millisecond
	c.Duration = 4 * time.Millisecond
	return EvalConfig{Config: c}
}

// PaperEval returns the paper's full scale: a 15-ary 3-flat
// (3,375 hosts). Expect minutes of wall time per experiment.
func PaperEval() EvalConfig {
	e := DefaultEval()
	e.K, e.N, e.C = 15, 3, 15
	return e
}

// base is the Config an experiment starts from: the embedded Config
// itself, copied by value.
func (e EvalConfig) base() Config { return e.Config }

// grid runs a set of independent configurations with the evaluation's
// configured parallelism, results in input order.
func (e EvalConfig) grid(cfgs []Config) ([]Result, error) {
	e.Telemetry.Apply(cfgs)
	return RunGrid(cfgs, e.Parallel)
}

// evalWorkloads are the three workloads of §4.1 in the paper's order.
var evalWorkloads = []WorkloadKind{WorkloadUniform, WorkloadAdvert, WorkloadSearch}

// Figure7Result is the fraction of channel-time spent at each link
// speed for the Search workload, under paired-link and independent
// unidirectional channel control (the paper's Figure 7).
type Figure7Result struct {
	// Shares maps control mode ("paired", "independent") to
	// rate-in-Gb/s -> fraction of time.
	Paired      map[float64]float64
	Independent map[float64]float64
}

// Figure7 reproduces Figure 7: Search workload, 1 µs reactivation,
// 10 µs epoch, 50% target utilization.
func Figure7(e EvalConfig) (Figure7Result, error) {
	var out Figure7Result
	cfgs := make([]Config, 2)
	for i, independent := range []bool{false, true} {
		cfg := e.base()
		cfg.Workload = WorkloadSearch
		cfg.Policy = PolicyHalveDouble
		cfg.Independent = independent
		cfgs[i] = cfg
	}
	results, err := e.grid(cfgs)
	if err != nil {
		return out, err
	}
	out.Paired = results[0].RateShare
	out.Independent = results[1].RateShare
	return out, nil
}

// Figure8Row is one workload's relative network power under the four
// §4.2.1 configurations.
type Figure8Row struct {
	Workload WorkloadKind
	// MeasuredPaired / MeasuredIndependent: Figure 8a (measured channel
	// profile); IdealPaired / IdealIndependent: Figure 8b (ideally
	// proportional channels). All relative to the always-on baseline.
	MeasuredPaired      float64
	MeasuredIndependent float64
	IdealPaired         float64
	IdealIndependent    float64
	// IdealBound is the workload's measured average utilization — the
	// power of a perfectly energy proportional network (23/5/6% in the
	// paper for Uniform/Advert/Search).
	IdealBound float64
	// AddedMeanLatency vs the always-on baseline, paired control (the
	// §4.2.1 "10-50 µs" number); AddedMeanLatencyIndep under
	// independent control.
	AddedMeanLatency      time.Duration
	AddedMeanLatencyIndep time.Duration
}

// Figure8 reproduces Figures 8a and 8b for all three workloads, and the
// §4.2.1 latency/power numbers.
func Figure8(e EvalConfig) ([]Figure8Row, error) {
	// Three independent runs per workload: always-on baseline, paired
	// EP control, independent EP control.
	var cfgs []Config
	for _, w := range evalWorkloads {
		cfg := e.base()
		cfg.Workload = w
		cfg.Policy = PolicyHalveDouble

		base := cfg
		base.Policy = PolicyBaseline
		cfgs = append(cfgs, base)
		for _, independent := range []bool{false, true} {
			cfg.Independent = independent
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := e.grid(cfgs)
	if err != nil {
		return nil, err
	}
	var rows []Figure8Row
	for i, w := range evalWorkloads {
		bres, paired, indep := results[3*i], results[3*i+1], results[3*i+2]
		rows = append(rows, Figure8Row{
			Workload:              w,
			MeasuredPaired:        paired.RelPowerMeasured,
			MeasuredIndependent:   indep.RelPowerMeasured,
			IdealPaired:           paired.RelPowerIdeal,
			IdealIndependent:      indep.RelPowerIdeal,
			IdealBound:            indep.AvgUtil,
			AddedMeanLatency:      paired.MeanLatency - bres.MeanLatency,
			AddedMeanLatencyIndep: indep.MeanLatency - bres.MeanLatency,
		})
	}
	return rows, nil
}

// Figure9aRow is the added mean latency at one target utilization.
type Figure9aRow struct {
	Workload   WorkloadKind
	Target     float64
	AddedMean  time.Duration
	BaseMean   time.Duration
	RelPowerID float64 // ideal-channel power at this target
}

// Figure9a reproduces Figure 9a: added mean latency for target channel
// utilizations of 25, 50 and 75%, with 1 µs reactivation and paired
// links.
func Figure9a(e EvalConfig) ([]Figure9aRow, error) {
	targets := []float64{0.25, 0.5, 0.75}
	// Per workload: one baseline run plus one run per target.
	var cfgs []Config
	for _, w := range evalWorkloads {
		base := e.base()
		base.Workload = w
		base.Policy = PolicyBaseline
		cfgs = append(cfgs, base)
		for _, target := range targets {
			cfg := e.base()
			cfg.Workload = w
			cfg.Policy = PolicyHalveDouble
			cfg.TargetUtil = target
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := e.grid(cfgs)
	if err != nil {
		return nil, err
	}
	stride := 1 + len(targets)
	var rows []Figure9aRow
	for i, w := range evalWorkloads {
		bres := results[stride*i]
		for j, target := range targets {
			res := results[stride*i+1+j]
			rows = append(rows, Figure9aRow{
				Workload:   w,
				Target:     target,
				AddedMean:  res.MeanLatency - bres.MeanLatency,
				BaseMean:   bres.MeanLatency,
				RelPowerID: res.RelPowerIdeal,
			})
		}
	}
	return rows, nil
}

// Figure9bRow is the added mean latency at one reactivation time.
type Figure9bRow struct {
	Workload     WorkloadKind
	Reactivation time.Duration
	AddedMean    time.Duration
	RelPowerID   float64
}

// Figure9b reproduces Figure 9b: added mean latency for reactivation
// times from 100 ns to 100 µs, with the epoch at 10x the reactivation
// time (bounding reconfiguration overhead to 10%) and a 50% target.
// The measurement window stretches to cover at least 40 epochs at the
// largest reactivation so every point sees enough epoch boundaries.
func Figure9b(e EvalConfig) ([]Figure9bRow, error) {
	reacts := []time.Duration{
		100 * time.Nanosecond,
		time.Microsecond,
		10 * time.Microsecond,
		100 * time.Microsecond,
	}
	// Per (workload, reactivation): a baseline/EP pair of runs.
	var cfgs []Config
	for _, w := range evalWorkloads {
		for _, react := range reacts {
			cfg := e.base()
			cfg.Workload = w
			cfg.Policy = PolicyHalveDouble
			cfg.Reactivation = react
			cfg.Epoch = 10 * react
			if min := 40 * cfg.Epoch; cfg.Duration < min {
				cfg.Duration = min
			}
			base := cfg
			base.Policy = PolicyBaseline
			cfgs = append(cfgs, base, cfg)
		}
	}
	results, err := e.grid(cfgs)
	if err != nil {
		return nil, err
	}
	var rows []Figure9bRow
	for i, w := range evalWorkloads {
		for j, react := range reacts {
			pair := 2 * (i*len(reacts) + j)
			bres, res := results[pair], results[pair+1]
			rows = append(rows, Figure9bRow{
				Workload:     w,
				Reactivation: react,
				AddedMean:    res.MeanLatency - bres.MeanLatency,
				RelPowerID:   res.RelPowerIdeal,
			})
		}
	}
	return rows, nil
}

// PolicyAblationRow compares link-control policies (§5.2: better
// heuristics) on one workload.
type PolicyAblationRow struct {
	Policy     PolicyKind
	RelPowerM  float64
	RelPowerID float64
	MeanLat    time.Duration
	Reconfigs  int64
	Backlog    int64
}

// PolicyAblation runs the Search workload under every policy, including
// the §4.2.1 bounds (always-fast baseline and the always-slow
// configuration that fails to keep up).
func PolicyAblation(e EvalConfig, w WorkloadKind) ([]PolicyAblationRow, error) {
	policies := []PolicyKind{
		PolicyBaseline, PolicyStaticMin, PolicyHalveDouble, PolicyMinMax, PolicyHysteresis,
	}
	cfgs := make([]Config, len(policies))
	for i, p := range policies {
		cfg := e.base()
		cfg.Workload = w
		cfg.Policy = p
		cfgs[i] = cfg
	}
	results, err := e.grid(cfgs)
	if err != nil {
		return nil, err
	}
	var rows []PolicyAblationRow
	for i, p := range policies {
		res := results[i]
		rows = append(rows, PolicyAblationRow{
			Policy:     p,
			RelPowerM:  res.RelPowerMeasured,
			RelPowerID: res.RelPowerIdeal,
			MeanLat:    res.MeanLatency,
			Reconfigs:  res.Reconfigurations,
			Backlog:    res.BacklogBytes,
		})
	}
	return rows, nil
}

// DynTopoRow compares rate tuning alone against rate tuning plus
// dynamic topology (§5.1) on one workload.
type DynTopoRow struct {
	Name        string
	RelPowerM   float64
	RelPowerID  float64
	OffShare    float64
	MeanLat     time.Duration
	Transitions int64
}

// DynTopoExperiment quantifies the §5.1 proposal: powering off links
// (FBFLY -> torus-like rings) on top of rate tuning. With today's
// measured channels powering off saves little (the paper's reason for
// not evaluating it); with ideal channels it recovers the remaining
// fixed cost of idle links.
func DynTopoExperiment(e EvalConfig, w WorkloadKind) ([]DynTopoRow, error) {
	cfgs := make([]Config, 2)
	for i, dyn := range []bool{false, true} {
		cfg := e.base()
		cfg.Workload = w
		cfg.Policy = PolicyHalveDouble
		cfg.Independent = true
		cfg.DynTopo = dyn
		cfgs[i] = cfg
	}
	results, err := e.grid(cfgs)
	if err != nil {
		return nil, err
	}
	var rows []DynTopoRow
	for i, dyn := range []bool{false, true} {
		res := results[i]
		name := "rate tuning only"
		if dyn {
			name = "rate tuning + dynamic topology"
		}
		rows = append(rows, DynTopoRow{
			Name:        name,
			RelPowerM:   res.RelPowerMeasured,
			RelPowerID:  res.RelPowerIdeal,
			OffShare:    res.OffShare,
			MeanLat:     res.MeanLatency,
			Transitions: res.DynTransitions,
		})
	}
	return rows, nil
}

// RoutingAblationRow compares adaptive and dimension-order routing with
// energy-proportional links enabled.
type RoutingAblationRow struct {
	Routing    RoutingKind
	MeanLat    time.Duration
	P99Lat     time.Duration
	RelPowerID float64
	Backlog    int64
}

// RoutingAblation quantifies why the paper calls congestion sensing and
// adaptivity "essential ingredients" (§6): with dimension-order routing,
// traffic cannot steer around links that are reconfiguring or detuned,
// so the same policy costs far more latency. Path diversity only exists
// with two or more switch dimensions, so this experiment always runs on
// a 3-flat (n=3) instance regardless of the evaluation scale.
func RoutingAblation(e EvalConfig, w WorkloadKind) ([]RoutingAblationRow, error) {
	if e.N < 3 {
		e.K, e.N, e.C = 4, 3, 4 // 64 hosts, 16 switches, 2 switch dims
	}
	routings := []RoutingKind{RoutingAdaptive, RoutingDOR}
	cfgs := make([]Config, len(routings))
	for i, r := range routings {
		cfg := e.base()
		cfg.Workload = w
		if w == WorkloadPermutation {
			// An adversarial pattern at meaningful load: permutation
			// streams concentrate on single dimension-ordered paths
			// under DOR, while adaptive routing spreads them.
			cfg.Load = 0.30
		}
		cfg.Policy = PolicyHalveDouble
		cfg.Routing = r
		cfgs[i] = cfg
	}
	results, err := e.grid(cfgs)
	if err != nil {
		return nil, err
	}
	var rows []RoutingAblationRow
	for i, r := range routings {
		res := results[i]
		rows = append(rows, RoutingAblationRow{
			Routing:    r,
			MeanLat:    res.MeanLatency,
			P99Lat:     res.P99Latency,
			RelPowerID: res.RelPowerIdeal,
			Backlog:    res.BacklogBytes,
		})
	}
	return rows, nil
}

// ReactivationModelRow compares the flat 1 µs reactivation against the
// mode-aware SerDes model (§3.1/§5.2).
type ReactivationModelRow struct {
	Name       string
	MeanLat    time.Duration
	RelPowerID float64
	Reconfigs  int64
}

// ReactivationAblation measures what a smarter, mode-aware reactivation
// model buys: rate-only transitions (SDR<->DDR<->QDR at fixed lanes) pay
// only the ~100 ns CDR re-lock, so the latency tax of energy
// proportionality shrinks.
func ReactivationAblation(e EvalConfig, w WorkloadKind) ([]ReactivationModelRow, error) {
	type variant struct {
		name      string
		modeAware bool
		epoch     time.Duration
	}
	variants := []variant{
		{"flat 1us reactivation, 10us epoch", false, 0},
		{"mode-aware penalties, 10us epoch", true, 0},
		// With CDR-only transitions at ~100 ns, the epoch can shrink
		// toward 10x that without breaking the 10% overhead bound —
		// tracking bursts much more closely.
		{"mode-aware penalties, 2us epoch", true, 2 * time.Microsecond},
	}
	cfgs := make([]Config, len(variants))
	for i, v := range variants {
		cfg := e.base()
		cfg.Workload = w
		cfg.Policy = PolicyHalveDouble
		cfg.ModeAwareReactivation = v.modeAware
		if v.epoch > 0 {
			cfg.Epoch = v.epoch
			cfg.Reactivation = time.Microsecond
		}
		cfgs[i] = cfg
	}
	results, err := e.grid(cfgs)
	if err != nil {
		return nil, err
	}
	var rows []ReactivationModelRow
	for i, v := range variants {
		res := results[i]
		rows = append(rows, ReactivationModelRow{
			Name:       v.name,
			MeanLat:    res.MeanLatency,
			RelPowerID: res.RelPowerIdeal,
			Reconfigs:  res.Reconfigurations,
		})
	}
	return rows, nil
}

// OverSubRow is one concentration point of the §2.1.1 over-subscription
// sweep.
type OverSubRow struct {
	C            int
	Hosts        int
	Ratio        float64 // c:k over-subscription
	MeanLat      time.Duration
	P99Lat       time.Duration
	RelPowerID   float64
	WattsPerHost float64 // analytic part power per host (always-on)
	Backlog      int64
}

// OverSubscription sweeps the concentration c of a fixed k-ary n-flat
// (the §2.1.1 knob: "over-subscription ... remains a practical and
// pragmatic approach to reduce power ... especially when the level of
// over-subscription is modest"). More hosts share the same switches, so
// per-host power falls while latency rises as c:k grows.
func OverSubscription(e EvalConfig, w WorkloadKind, cs []int) ([]OverSubRow, error) {
	parts := 100.0 // switch chip watts
	nic := 10.0
	cfgs := make([]Config, len(cs))
	for i, c := range cs {
		cfg := e.base()
		cfg.C = c
		cfg.Workload = w
		cfg.Policy = PolicyHalveDouble
		cfg.Independent = true
		cfgs[i] = cfg
	}
	results, err := e.grid(cfgs)
	if err != nil {
		return nil, err
	}
	var rows []OverSubRow
	for i, c := range cs {
		res := results[i]
		rows = append(rows, OverSubRow{
			C:          c,
			Hosts:      res.Hosts,
			Ratio:      float64(c) / float64(e.K),
			MeanLat:    res.MeanLatency,
			P99Lat:     res.P99Latency,
			RelPowerID: res.RelPowerIdeal,
			WattsPerHost: (float64(res.Switches)*parts + float64(res.Hosts)*nic) /
				float64(res.Hosts),
			Backlog: res.BacklogBytes,
		})
	}
	return rows, nil
}

// TopoCompareRow is one topology's simulated behavior with EP links.
type TopoCompareRow struct {
	Topology   TopologyKind
	Hosts      int
	Switches   int
	Channels   int
	MeanLat    time.Duration
	RelPowerID float64
	Asymmetry  float64
}

// TopologyComparison runs the same workload and EP policy on a
// flattened butterfly and a host-count-matched non-blocking fat tree —
// the §3.3 observation that "exploiting links' dynamic range is
// possible with other topologies, such as a folded-Clos", combined with
// §2.2's point that the Clos needs more switching hardware for the same
// service.
func TopologyComparison(e EvalConfig, w WorkloadKind) ([]TopoCompareRow, error) {
	fbflyHosts := e.C
	for i := 1; i < e.N; i++ {
		fbflyHosts *= e.K
	}
	topos := []TopologyKind{TopoFBFLY, TopoFatTree, TopoClos3}
	cfgs := make([]Config, len(topos))
	for i, tk := range topos {
		cfg := e.base()
		cfg.Topology = tk
		if tk == TopoFatTree {
			// Match host count: K leaves x C hosts = C * K^(N-1) when
			// N=2; for deeper FBFLYs scale the leaf count.
			leaves := 1
			for i := 1; i < e.N; i++ {
				leaves *= e.K
			}
			cfg.K = leaves
			cfg.N = 2
		}
		if tk == TopoClos3 {
			// Nearest even pod radix: hosts = K^3/4.
			best, bestDiff := 4, 1<<30
			for k := 4; k <= 32; k += 2 {
				h := k * k * k / 4
				d := h - fbflyHosts
				if d < 0 {
					d = -d
				}
				if d < bestDiff {
					best, bestDiff = k, d
				}
			}
			cfg.K = best
		}
		cfg.Workload = w
		cfg.Policy = PolicyHalveDouble
		cfg.Independent = true
		cfgs[i] = cfg
	}
	results, err := e.grid(cfgs)
	if err != nil {
		return nil, err
	}
	var rows []TopoCompareRow
	for i, tk := range topos {
		res := results[i]
		rows = append(rows, TopoCompareRow{
			Topology:   tk,
			Hosts:      res.Hosts,
			Switches:   res.Switches,
			Channels:   res.Channels,
			MeanLat:    res.MeanLatency,
			RelPowerID: res.RelPowerIdeal,
			Asymmetry:  res.Asymmetry,
		})
	}
	return rows, nil
}

// ResilienceRow is one failure count of the link-failure sweep.
type ResilienceRow struct {
	FailedLinks  int
	DeliveryRate float64 // delivered / injected packets
	MeanLat      time.Duration
	P99Lat       time.Duration
}

// Resilience abruptly fails increasing numbers of inter-switch links
// mid-run (no drain) and measures delivery and latency — quantifying
// §1's argument that a high-path-diversity network "decouples the
// failure domain from the available network bandwidth domain". The
// FBFLY router misroutes around dead links with one extra hop.
func Resilience(e EvalConfig, w WorkloadKind, failCounts []int) ([]ResilienceRow, error) {
	cfgs := make([]Config, len(failCounts))
	for i, n := range failCounts {
		cfg := e.base()
		cfg.Workload = w
		cfg.Policy = PolicyHalveDouble
		cfg.FailLinks = n
		cfgs[i] = cfg
	}
	results, err := e.grid(cfgs)
	if err != nil {
		return nil, err
	}
	var rows []ResilienceRow
	for i, n := range failCounts {
		res := results[i]
		rate := 0.0
		if res.InjectedPackets > 0 {
			rate = float64(res.DeliveredPackets) / float64(res.InjectedPackets)
		}
		rows = append(rows, ResilienceRow{
			FailedLinks:  n,
			DeliveryRate: rate,
			MeanLat:      res.MeanLatency,
			P99Lat:       res.P99Latency,
		})
	}
	return rows, nil
}

// ResilienceGridRow is one (policy, fault-rate) cell of the fault
// injection grid.
type ResilienceGridRow struct {
	Policy    PolicyKind
	FaultRate float64 // events per simulated millisecond
	// DeliveredFrac is delivered / (delivered + dropped) — packets lost
	// to dead channels, crashed switches, and unroutable destinations.
	DeliveredFrac float64
	MeanLat       time.Duration
	// AddedMean is the latency this fault rate costs versus the same
	// policy on a healthy fabric.
	AddedMean    time.Duration
	RelPowerID   float64
	LinkFailures int64
	Degradations int64
}

// ResilienceGrid crosses link-control policies with seeded-random fault
// rates: for each policy one clean run plus one run per rate, measuring
// what faults cost in delivery, latency, and power. The interesting
// comparison is energy-proportional policies against the always-on
// baseline — a detuned network rides through the same fault history
// with the same delivered fraction, paying only latency.
func ResilienceGrid(e EvalConfig, w WorkloadKind, policies []PolicyKind, rates []float64) ([]ResilienceGridRow, error) {
	var cfgs []Config
	for _, p := range policies {
		clean := e.base()
		clean.Workload = w
		clean.Policy = p
		clean.FaultRate, clean.Faults = 0, ""
		cfgs = append(cfgs, clean)
		for _, r := range rates {
			cfg := clean
			cfg.FaultRate = r
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := e.grid(cfgs)
	if err != nil {
		return nil, err
	}
	stride := 1 + len(rates)
	var rows []ResilienceGridRow
	for i, p := range policies {
		clean := results[stride*i]
		for j, r := range rates {
			res := results[stride*i+1+j]
			rows = append(rows, ResilienceGridRow{
				Policy:        p,
				FaultRate:     r,
				DeliveredFrac: res.DeliveredFraction,
				MeanLat:       res.MeanLatency,
				AddedMean:     res.MeanLatency - clean.MeanLatency,
				RelPowerID:    res.RelPowerIdeal,
				LinkFailures:  res.Faults.LinkFailures,
				Degradations:  res.Faults.LaneDegradations,
			})
		}
	}
	return rows, nil
}

// SavingsProjection extrapolates a simulated relative power to the
// paper's full-scale 32k-host FBFLY network, in watts and four-year
// dollars — the basis of the paper's "$2.4M additional savings" claim.
func SavingsProjection(relPower float64) (savedWatts, savedDollars float64) {
	t := Table1()
	savedWatts = t.FBFLY.TotalWatts * (1 - relPower)
	return savedWatts, CostOfWatts(savedWatts)
}

// WorkloadLabel formats workload names like the paper's figures.
func WorkloadLabel(w WorkloadKind) string {
	switch w {
	case WorkloadUniform:
		return "Uniform"
	case WorkloadAdvert:
		return "Advert"
	case WorkloadSearch:
		return "Search"
	default:
		return fmt.Sprintf("%v", w)
	}
}
