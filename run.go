package epnet

import (
	"context"
	"errors"
	"fmt"
	"time"

	"epnet/internal/core"
	"epnet/internal/fabric"
	"epnet/internal/fault"
	"epnet/internal/link"
	"epnet/internal/parallel"
	"epnet/internal/power"
	"epnet/internal/routing"
	"epnet/internal/sim"
	"epnet/internal/stats"
	"epnet/internal/telemetry"
	"epnet/internal/topo"
)

// simTime converts a wall-clock-style duration to simulator picoseconds.
func simTime(d time.Duration) sim.Time { return sim.Time(d.Nanoseconds()) * sim.Nanosecond }

// toDuration converts simulator time back to a time.Duration
// (picoseconds truncate to nanoseconds).
func toDuration(t sim.Time) time.Duration {
	return time.Duration(int64(t) / int64(sim.Nanosecond))
}

// buildTopology constructs the configured topology and its router.
func buildTopology(cfg Config) (topo.Topology, routing.Router, *routing.FBFLY, error) {
	switch cfg.Topology {
	case TopoFatTree:
		t, err := topo.NewFatTree(cfg.C, cfg.K, cfg.K)
		if err != nil {
			return nil, nil, nil, err
		}
		return t, routing.NewFatTree(t), nil, nil
	case TopoClos3:
		t, err := topo.NewClos3(cfg.K)
		if err != nil {
			return nil, nil, nil, err
		}
		return t, routing.NewClos3(t), nil, nil
	default:
		t, err := topo.NewFBFLY(cfg.K, cfg.N, cfg.C)
		if err != nil {
			return nil, nil, nil, err
		}
		if cfg.Routing == RoutingDOR {
			return t, &routing.DOR{F: t}, nil, nil
		}
		r := routing.NewFBFLY(t)
		return t, r, r, nil
	}
}

// Workload construction lives in scenario.go: every run — flag-
// configured or scenario-driven — resolves through buildPlan into
// streaming sources, so there is exactly one traffic codepath.

// advance drives the network to until, checking ctx for cooperative
// cancellation at every epoch boundary. A context that can never be
// canceled (Run's context.Background) collapses to a single RunUntil
// call, so the uncancelable path costs nothing extra. Cancellation
// observed after the window completes is ignored — the work is done.
// Network.RunUntil dispatches to the serial engine or the shard
// coordinator, so cancellation granularity is the same either way.
func advance(ctx context.Context, net *fabric.Network, until, epoch sim.Time) error {
	if ctx.Done() == nil {
		net.RunUntil(until)
		return nil
	}
	for now := net.E.Now(); now < until; now = net.E.Now() {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("epnet: run canceled at %v: %w", toDuration(now), err)
		}
		step := now + epoch
		if step > until {
			step = until
		}
		net.RunUntil(step)
	}
	return nil
}

// chanLabels returns every channel's wiring label, indexed by channel.
func chanLabels(net *fabric.Network) []string {
	labels := make([]string, len(net.Channels()))
	for i, ch := range net.Channels() {
		labels[i] = ch.Label()
	}
	return labels
}

// buildInjector constructs and wires the fault injector when cfg or the
// run plan asks for any kind of fault, or returns nil.
func buildInjector(cfg Config, plan *runPlan, net *fabric.Network, router routing.Router,
	fbflyRouter *routing.FBFLY, ladder link.RateLadder) (*fault.Injector, error) {
	if cfg.Faults == "" && cfg.FaultRate <= 0 && cfg.FailLinks <= 0 && !plan.hasChaos {
		return nil, nil
	}
	masker, ok := router.(routing.PortMasker)
	if !ok {
		return nil, fieldErr("Routing", "fault injection requires adaptive routing, got %q", cfg.Routing)
	}
	inj := fault.New(net, masker)
	if cfg.ModeAwareReactivation {
		// A repaired link retrains its lanes; a cap-forced retune only
		// re-locks the receive CDR (§3.1).
		rm := link.DefaultReactivation()
		inj.RepairReactivation = rm.LaneChange
		inj.DegradeReactivation = rm.CDRLock
	} else {
		inj.RepairReactivation = simTime(cfg.Reactivation)
		inj.DegradeReactivation = simTime(cfg.Reactivation)
	}
	if cfg.Policy == PolicyBaseline && !plan.policySwitch {
		// No controller will climb the ladder; a restored link retunes
		// straight back to line rate. (A scenario that switches policy
		// forces the controller on, which climbs by itself.)
		inj.RestoreRate = ladder.Max()
	}
	if fbflyRouter != nil {
		// Random faults must not partition the network: both endpoints
		// keep at least two live links in the affected dimension (real
		// clusters with more damage would be drained by operators).
		fb := fbflyRouter.F
		liveInDim := func(sw, dim int) int {
			live := 0
			for v := 0; v < fb.K; v++ {
				if v == fb.Coord(sw, dim) {
					continue
				}
				if !fbflyRouter.Dead(sw, fb.PortToPeer(sw, dim, v)) {
					live++
				}
			}
			return live
		}
		inj.Guard = func(pr [2]*fabric.Chan) bool {
			dim := fb.PortDim(pr[0].Src.Port)
			return liveInDim(pr[0].Src.ID, dim) >= 2 && liveInDim(pr[1].Src.ID, dim) >= 2
		}
	}
	return inj, nil
}

// scheduleFaults puts cfg's fault events on the engine: the legacy
// abrupt FailLinks batch, the explicit Faults schedule, and the
// seeded-random FaultRate process. Offsets are relative to warmup.
func scheduleFaults(cfg Config, e *sim.Engine, inj *fault.Injector,
	warmup, horizon sim.Time) error {
	if cfg.FailLinks > 0 {
		failAt := cfg.FailAfter
		if failAt == 0 {
			failAt = cfg.Duration / 4
		}
		count := cfg.FailLinks
		e.At(warmup+simTime(failAt), func(now sim.Time) {
			inj.FailRandomLinks(now, count, cfg.Seed)
		})
	}
	if cfg.Faults != "" {
		sched, err := fault.ParseSchedule(cfg.Faults)
		if err != nil {
			return fieldErr("Faults", "%v", err) // unreachable: Validate parsed it
		}
		if err := inj.Apply(warmup, sched); err != nil {
			return fieldErr("Faults", "%v", err)
		}
	}
	if cfg.FaultRate > 0 {
		inj.StartRandom(warmup, horizon, cfg.FaultRate, simTime(cfg.FaultMTTR), cfg.Seed)
	}
	return nil
}

// Run executes one simulation described by cfg and returns its
// measurements. The run is deterministic for a given Config. It is
// shorthand for RunContext with a background context.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation: when ctx is
// canceled, the simulation stops at the next epoch boundary and the
// context's error is returned (wrapped; test with errors.Is). A run
// that completes its measurement window before cancellation is
// observed returns its Result normally.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}

	e := sim.New()
	t, router, fbflyRouter, err := buildTopology(cfg)
	if err != nil {
		return Result{}, err
	}
	fcfg := fabric.DefaultConfig()
	fcfg.MaxPacket = cfg.MaxPacket
	fcfg.Seed = cfg.Seed
	fcfg.Shards = cfg.Shards
	net, err := fabric.New(e, t, router, fcfg)
	if err != nil {
		return Result{}, err
	}
	defer net.Close()

	// Optional engine self-profiling, attached before the first window
	// runs. The profiler observes wall-clock cost at window/barrier
	// granularity only — nothing on the deterministic simulation path
	// changes, so every other Result field and every telemetry file is
	// byte-identical with profiling on or off.
	var eprof *telemetry.EngineProfiler
	if cfg.Profile || cfg.ProfileOut != "" {
		eprof = telemetry.NewEngineProfiler(net.NumShards())
		net.SetProfiler(eprof)
	}

	// Resolve the run into its phase plan. A flag-configured run is the
	// implicit single steady phase; a scenario contributes its phases.
	// Either way the traffic below starts from streaming sources.
	warmup := simTime(cfg.Warmup)
	horizon := warmup + simTime(cfg.Duration)
	plan, err := buildPlan(cfg, warmup, horizon)
	if err != nil {
		return Result{}, err
	}

	// Optional flow tracing: hash-sampled packets carry hop logs, the
	// collector aggregates them per phase. Sampling is a pure function
	// of packet ID and seed and all merging is canonical, so every
	// FlowTrace byte — like every other Result field — is identical
	// across shard counts; with tracing off the packet path keeps its
	// zero-allocation fast path (one nil check).
	var flow *telemetry.FlowCollector
	if cfg.FlowTrace {
		flow = telemetry.NewFlowCollector(net.NumShards(), len(net.Channels()),
			cfg.FlowSample, cfg.Seed)
		names := make([]string, len(plan.phases))
		ends := make([]sim.Time, len(plan.phases))
		for i := range plan.phases {
			names[i], ends[i] = plan.phases[i].name, plan.phases[i].end
		}
		flow.SetClasses(names, ends)
		net.SetFlowCollector(flow)
	}

	// Latency is recorded only for packets injected after warmup. The
	// delivery callbacks run on the shard owning the destination host,
	// so each shard accumulates into its own Latency; the integer-based
	// Merge after the run makes the totals independent of shard count.
	lats := make([]*stats.Latency, net.NumShards())
	msgLats := make([]*stats.Latency, net.NumShards())
	for i := range lats {
		lats[i] = stats.NewLatency()
		msgLats[i] = stats.NewLatency()
	}
	net.OnDeliver = func(p *fabric.Packet, now sim.Time) {
		if p.Inject >= warmup {
			lats[net.HostShard(p.Dst)].Add(now - p.Inject)
		}
	}
	net.OnMessageDone = func(_ int64, _, dst int, inject, done sim.Time) {
		if inject >= warmup {
			msgLats[net.HostShard(dst)].Add(done - inject)
		}
	}

	// Link control. A scenario that switches policy mid-run forces the
	// controller on even when the opening policy is baseline/static-min
	// (as a Static pin) — something has to execute the switch.
	var ctrl *core.Controller
	switch {
	case cfg.Policy == PolicyBaseline && !plan.policySwitch:
		// Links stay at the ladder maximum; nothing to do.
	case cfg.Policy == PolicyStaticMin && !plan.policySwitch:
		for _, ch := range net.Channels() {
			ch.L.SetRate(0, fcfg.Ladder.Min(), 0)
		}
	default:
		if cfg.Policy == PolicyStaticMin {
			// Start at the floor immediately; the controller holds it
			// there until a phase switches policy.
			for _, ch := range net.Channels() {
				ch.L.SetRate(0, fcfg.Ladder.Min(), 0)
			}
		}
		ctrl = &core.Controller{
			Net:          net,
			Epoch:        simTime(cfg.Epoch),
			Reactivation: simTime(cfg.Reactivation),
			Paired:       !cfg.Independent,
		}
		ctrl.ModeAware = cfg.ModeAwareReactivation
		ctrl.Policy = resolveCorePolicy(cfg.Policy, cfg.TargetUtil, fcfg.Ladder)
		if err := ctrl.Start(); err != nil {
			return Result{}, err
		}
	}

	var dyn *core.DynTopo
	if cfg.DynTopo {
		if fbflyRouter == nil {
			return Result{}, fmt.Errorf("epnet: dynamic topology requires FBFLY")
		}
		dyn = core.DefaultDynTopo(net, fbflyRouter)
		dyn.Reactivation = simTime(cfg.Reactivation)
		if err := dyn.Start(); err != nil {
			return Result{}, err
		}
	}

	// Fault injection: one injector executes the explicit schedule, the
	// seeded-random process, the legacy abrupt-failure batch, and the
	// scenario's chaos campaigns.
	inj, err := buildInjector(cfg, plan, net, router, fbflyRouter, fcfg.Ladder)
	if err != nil {
		return Result{}, err
	}

	// Per-phase scorecard (multi-phase scenarios only): snapshot events
	// at the inner phase boundaries plus per-phase latency recorders.
	// Single-phase runs skip all of it, so their event sequence — and
	// thus every result byte — matches the equivalent flag run.
	var acct *phaseAccounting
	if plan.multi {
		acct = newPhaseAccounting(plan, net, ctrl, inj)
		acct.schedule(e)
		net.OnDeliver = func(p *fabric.Packet, now sim.Time) {
			if p.Inject >= warmup {
				sh := net.HostShard(p.Dst)
				lats[sh].Add(now - p.Inject)
				acct.record(sh, p.Inject, now-p.Inject)
			}
		}
	}

	// Optional telemetry: the controller's epoch tick is already
	// scheduled, so on coincident timestamps the sampler observes
	// post-retune link state (the engine breaks ties FIFO).
	obs, err := newObserver(cfg, e, net, ctrl, fbflyRouter, inj, eprof, flow, fcfg.Ladder, horizon)
	if err != nil {
		return Result{}, err
	}

	// fail funnels early exits after the observer exists: flush the
	// files the observer opened and best-effort write the profile and
	// flow-trace outputs, so an interrupted run (^C on epsim) still
	// leaves its diagnostics behind.
	fail := func(err error) (Result, error) {
		errs := []error{err, obs.finish(e.Now())}
		if eprof != nil && cfg.ProfileOut != "" {
			errs = append(errs, writeProfileOut(cfg.ProfileOut, newEngineProfile(eprof.Snapshot())))
		}
		if flow != nil && cfg.FlowsOut != "" {
			errs = append(errs, writeFlowsOut(cfg.FlowsOut,
				newFlowTraceReport(flow.Snapshot(), chanLabels(net), nil, nil)))
		}
		return Result{}, errors.Join(errs...)
	}

	// Traffic. Phase 0's sources start inline here — the engine is at
	// t=0, the exact call site the single-workload path used — and each
	// later phase's traffic and policy switch is scheduled at its
	// boundary. From here on, every early return funnels through
	// obs.finish so files the observer opened are flushed and closed,
	// and any latched telemetry write error surfaces (finish is
	// idempotent and nil-safe).
	plan.start(e, net, ctrl, fcfg.Ladder)

	if inj != nil {
		if err := scheduleFaults(cfg, e, inj, warmup, horizon); err != nil {
			return fail(err)
		}
		if err := scheduleChaos(cfg, plan, inj, warmup); err != nil {
			return fail(err)
		}
	}

	// Optional instantaneous power sampling.
	var trace []PowerSample
	if cfg.PowerSampleEvery > 0 {
		interval := simTime(cfg.PowerSampleEvery)
		measured := power.InfiniBandOptical()
		idealP := power.NewIdeal(fcfg.Ladder.Max())
		var lastBytes int64
		var sample func(now sim.Time)
		sample = func(now sim.Time) {
			if now > horizon {
				return
			}
			var pm, pi float64
			var bytes int64
			for _, ch := range net.Channels() {
				if ch.L.State(now) == link.Off {
					pm += measured.Off()
					pi += idealP.Off()
				} else {
					pm += measured.Relative(ch.L.Rate())
					pi += idealP.Relative(ch.L.Rate())
				}
				bytes += ch.L.TotalBytes()
			}
			n := float64(len(net.Channels()))
			capacity := float64(fcfg.Ladder.Max()) / 8 * interval.Seconds() * n
			util := 0.0
			if capacity > 0 {
				util = float64(bytes-lastBytes) / capacity
			}
			lastBytes = bytes
			trace = append(trace, PowerSample{
				At:       toDuration(now - warmup),
				Measured: pm / n,
				Ideal:    pi / n,
				Util:     util,
			})
			e.After(interval, sample)
		}
		// Channel byte counters reset at the warmup boundary, so the
		// first sample (one interval in) sees exactly the bytes moved
		// since then.
		e.At(warmup+interval, sample)
	}

	// Warmup, then reset accounting so power/occupancy reflect steady
	// state.
	epoch := simTime(cfg.Epoch)
	if err := advance(ctx, net, warmup, epoch); err != nil {
		return fail(err)
	}
	for _, ch := range net.Channels() {
		ch.L.ResetAccounting(e.Now())
	}
	if ctrl != nil {
		ctrl.Reconfigurations = 0
	}
	if acct != nil {
		// Phase 0's measured slice starts here, with counters exactly as
		// the reset left them.
		acct.snaps[0] = acct.snapshot()
	}
	if err := advance(ctx, net, horizon, epoch); err != nil {
		return fail(err)
	}
	if acct != nil {
		acct.snaps[len(plan.phases)] = acct.snapshot()
	}
	if err := obs.finish(e.Now()); err != nil {
		return Result{}, err
	}

	// Fold the per-shard latency recorders into one distribution. Merge
	// is a pure integer reduction, so the folded statistics match what a
	// serial run records directly.
	lat, msgLat := lats[0], msgLats[0]
	for _, l := range lats[1:] {
		lat.Merge(l)
	}
	for _, l := range msgLats[1:] {
		msgLat.Merge(l)
	}

	// Collect.
	res := Result{
		Config:   cfg,
		Hosts:    t.NumHosts(),
		Switches: t.NumSwitches(),
		Channels: len(net.Channels()),
	}
	res.MeanLatency = toDuration(lat.Mean())
	res.P50Latency = toDuration(lat.Percentile(50))
	res.P99Latency = toDuration(lat.Percentile(99))
	res.MaxLatency = toDuration(lat.Max())
	res.Packets = lat.Count()
	res.MsgMeanLatency = toDuration(msgLat.Mean())
	res.MsgP99Latency = toDuration(msgLat.Percentile(99))
	res.Messages = msgLat.Count()

	share := stats.NewRateShare()
	measured := power.InfiniBandOptical()
	copper := power.InfiniBandCopper()
	ideal := power.NewIdeal(fcfg.Ladder.Max())
	parts := power.DefaultPartPower()
	fullWatts := float64(t.NumSwitches())*parts.SwitchChipWatts +
		float64(t.NumHosts())*parts.NICWatts

	// Optional per-channel attribution, charged under the same
	// measured profile and part model as the aggregate estimate so the
	// per-channel energies sum exactly to Result.EnergyJoules. Flow
	// tracing forces the computation (its energy join charges traced
	// bytes each channel's energy) even when Result.Attribution itself
	// stays off.
	var attr *power.Attribution
	if cfg.Attribution || flow != nil {
		attr = power.NewAttribution(fullWatts, len(net.Channels()),
			simTime(cfg.Duration), measured)
	}
	var chanEnergy []float64
	var chanTotBytes []int64
	if flow != nil {
		chanEnergy = make([]float64, len(net.Channels()))
		chanTotBytes = make([]int64, len(net.Channels()))
	}

	var pm, pi, util float64
	classAcc := map[string]float64{}
	classCnt := map[string]float64{}
	now := e.Now()
	for ci, ch := range net.Channels() {
		occ := ch.L.Occupancy(now)
		share.Add(occ)
		pm += power.OccupancyPower(occ, measured)
		pi += power.OccupancyPower(occ, ideal)
		chUtil := ch.L.MeanUtilization(now)
		util += chUtil

		// Per-class breakdown: host channels are electrical; switch
		// channels follow the topology's packaging classification.
		class := topo.Electrical
		if ch.Src.Kind == topo.KindSwitch {
			class = t.LinkClass(ch.Src.ID, ch.Src.Port)
		}
		prof := power.Profile(measured)
		if class == topo.Electrical {
			prof = copper
		}
		classAcc[class.String()] += power.OccupancyPower(occ, prof)
		classCnt[class.String()]++

		if attr != nil {
			ce := attr.Add(ch.Label(), class.String(), occ, chUtil)
			if chanEnergy != nil {
				chanEnergy[ci] = ce.EnergyJ
				chanTotBytes[ci] = ch.L.TotalBytes()
			}
			if !cfg.Attribution {
				continue
			}
			la := LinkAttribution{
				Link:         ce.Name,
				Class:        ce.Class,
				Utilization:  ce.Utilization,
				RelPower:     ce.RelPower,
				EnergyJoules: ce.EnergyJ,
				TimeAtRate:   make(RateShareMap, len(ce.TimeAtRate)),
				OffSeconds:   ce.OffTime.Seconds(),
				Bytes:        ch.L.TotalBytes(),
				Packets:      ch.L.TotalPackets(),
				Drops:        ch.Drops(),
			}
			for r, tt := range ce.TimeAtRate {
				la.TimeAtRate[r.GbpsF()] = tt.Seconds()
			}
			res.Attribution = append(res.Attribution, la)
		}
	}
	nch := float64(len(net.Channels()))
	res.RelPowerMeasured = pm / nch
	res.RelPowerIdeal = pi / nch
	res.AvgUtil = util / nch
	res.ClassPower = make(map[string]float64, len(classAcc))
	for class, acc := range classAcc {
		res.ClassPower[class] = acc / classCnt[class]
	}

	// Directional asymmetry across link pairs (byte-weighted).
	var asymNum, asymDen float64
	for _, pr := range net.Pairs() {
		a := float64(pr[0].L.TotalBytes())
		b := float64(pr[1].L.TotalBytes())
		if a+b == 0 {
			continue
		}
		d := a - b
		if d < 0 {
			d = -d
		}
		asymNum += d
		asymDen += a + b
	}
	if asymDen > 0 {
		res.Asymmetry = asymNum / asymDen
	}

	// Energy estimate: the simulated network's part power scaled by the
	// measured relative power, integrated over the measurement window.
	res.EstimatedWatts = fullWatts * res.RelPowerMeasured
	res.EnergyJoules = res.EstimatedWatts * simTime(cfg.Duration).Seconds()

	for _, b := range lat.Buckets() {
		res.LatencyCDF = append(res.LatencyCDF, LatencyBucket{
			Upper: toDuration(b.Upper),
			Count: b.Count,
		})
	}
	res.RateShare = make(map[float64]float64)
	for _, r := range share.Rates() {
		res.RateShare[r.GbpsF()] = share.Fraction(r)
	}
	res.OffShare = share.OffFraction()
	if ctrl != nil {
		res.Reconfigurations = ctrl.Reconfigurations
	}
	if dyn != nil {
		res.DynTransitions = dyn.Transitions
	}
	res.InjectedPackets, _ = net.Injected()
	res.DeliveredPackets, res.DeliveredBytes = net.Delivered()
	res.DroppedPackets, res.DroppedBytes = net.Dropped()
	res.DeliveredFraction = 1.0
	if res.DroppedPackets > 0 {
		res.DeliveredFraction = float64(res.DeliveredPackets) /
			float64(res.DeliveredPackets+res.DroppedPackets)
	}
	if inj != nil {
		res.Faults = FaultStats(inj.Stats)
	}
	res.BacklogBytes = net.HostBacklogBytes()
	res.PeakQueueBytes = net.PeakQueueBytes()
	res.PowerTrace = trace
	if acct != nil {
		res.PhaseScores = acct.scores(warmup, t.NumHosts(), fcfg.Ladder)
	}
	if flow != nil {
		res.FlowTrace = newFlowTraceReport(flow.Snapshot(), chanLabels(net),
			chanEnergy, chanTotBytes)
		// The collector's classes are the plan's phases, so a scorecard
		// row and its decomposition line up by index.
		for i := range res.PhaseScores {
			res.FlowTrace.Classes[i].applyToScore(&res.PhaseScores[i])
		}
		if cfg.FlowsOut != "" {
			if err := writeFlowsOut(cfg.FlowsOut, res.FlowTrace); err != nil {
				return Result{}, err
			}
		}
	}
	if eprof != nil {
		res.Profile = newEngineProfile(eprof.Snapshot())
		if cfg.ProfileOut != "" {
			if err := writeProfileOut(cfg.ProfileOut, res.Profile); err != nil {
				return Result{}, err
			}
		}
	}
	return res, nil
}

// RunGrid executes every configuration across at most workers
// goroutines (workers < 1 means one per CPU) and returns the results in
// input order. Each simulation is fully self-contained — its own event
// engine and seeded RNGs — so the results are identical to running the
// configurations serially; only wall-clock time changes. On error, the
// error of the lowest-index failing configuration is returned and no
// results are.
func RunGrid(cfgs []Config, workers int) ([]Result, error) {
	return RunGridContext(context.Background(), cfgs, workers)
}

// RunGridContext is RunGrid with cooperative cancellation: the shared
// ctx cancels every in-flight simulation at its next epoch boundary,
// and the first (lowest-index) error is returned.
func RunGridContext(ctx context.Context, cfgs []Config, workers int) ([]Result, error) {
	return parallel.Map(len(cfgs), workers, func(i int) (Result, error) {
		return RunContext(ctx, cfgs[i])
	})
}

// RunBaselinePair runs cfg and its always-on baseline twin (identical
// except Policy=Baseline) and returns both plus the additional mean
// latency the energy-proportional configuration costs — the paper's
// Figure 9 metric.
func RunBaselinePair(cfg Config) (ep, base Result, addedMean time.Duration, err error) {
	return RunBaselinePairContext(context.Background(), cfg)
}

// RunBaselinePairContext is RunBaselinePair with cooperative
// cancellation through ctx.
func RunBaselinePairContext(ctx context.Context, cfg Config) (ep, base Result, addedMean time.Duration, err error) {
	bcfg := cfg
	bcfg.Policy = PolicyBaseline
	base, err = RunContext(ctx, bcfg)
	if err != nil {
		return
	}
	ep, err = RunContext(ctx, cfg)
	if err != nil {
		return
	}
	addedMean = ep.MeanLatency - base.MeanLatency
	return
}
