package epnet

import (
	"testing"
	"time"
)

func TestNewConfigOptions(t *testing.T) {
	cfg := NewConfig(TopoFBFLY,
		WithRadix(8),
		WithDimensions(3),
		WithPolicy(PolicyHalveDouble),
		WithWorkload(WorkloadSearch),
		WithTargetUtil(0.75),
		WithIndependentChannels(),
		WithReactivation(100*time.Nanosecond),
		WithWindow(time.Millisecond, 4*time.Millisecond),
		WithSeed(7),
		WithFaultRate(0.5, 100*time.Microsecond),
		WithFaultSchedule("50us fail-link s0p8"),
		WithLinkFailures(2, 10*time.Microsecond),
	)
	if cfg.Topology != TopoFBFLY || cfg.K != 8 || cfg.C != 8 || cfg.N != 3 {
		t.Errorf("shape = %s k=%d n=%d c=%d", cfg.Topology, cfg.K, cfg.N, cfg.C)
	}
	if cfg.Policy != PolicyHalveDouble || cfg.TargetUtil != 0.75 || !cfg.Independent {
		t.Errorf("policy = %s target=%v independent=%v", cfg.Policy, cfg.TargetUtil, cfg.Independent)
	}
	if cfg.Reactivation != 100*time.Nanosecond || cfg.Epoch != time.Microsecond {
		t.Errorf("reactivation = %v epoch = %v, want 10x scaling", cfg.Reactivation, cfg.Epoch)
	}
	if cfg.Warmup != time.Millisecond || cfg.Duration != 4*time.Millisecond || cfg.Seed != 7 {
		t.Errorf("window = %v/%v seed=%d", cfg.Warmup, cfg.Duration, cfg.Seed)
	}
	if cfg.FaultRate != 0.5 || cfg.FaultMTTR != 100*time.Microsecond {
		t.Errorf("fault rate = %v mttr = %v", cfg.FaultRate, cfg.FaultMTTR)
	}
	if cfg.Faults != "50us fail-link s0p8" || cfg.FailLinks != 2 || cfg.FailAfter != 10*time.Microsecond {
		t.Errorf("faults = %q fail-links = %d after %v", cfg.Faults, cfg.FailLinks, cfg.FailAfter)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("option-built config invalid: %v", err)
	}
}

func TestNewConfigLaterOptionWins(t *testing.T) {
	cfg := NewConfig(TopoFBFLY, WithRadix(8), WithConcentration(4))
	if cfg.K != 8 || cfg.C != 4 {
		t.Errorf("k=%d c=%d, want 8/4 (WithConcentration after WithRadix)", cfg.K, cfg.C)
	}
}

func TestPresetsAllValidate(t *testing.T) {
	names := PresetNames()
	if len(names) == 0 {
		t.Fatal("no presets registered")
	}
	for _, name := range names {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %q does not validate: %v", name, err)
		}
		if PresetDoc(name) == "" {
			t.Errorf("preset %q has no doc line", name)
		}
	}
	if _, err := Preset("no-such-preset"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestPresetPaperShape(t *testing.T) {
	cfg, err := Preset("paper-fbfly")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.K != 15 || cfg.N != 3 || cfg.C != 15 {
		t.Errorf("paper preset shape k=%d n=%d c=%d, want 15-ary 3-flat c=15", cfg.K, cfg.N, cfg.C)
	}
}
