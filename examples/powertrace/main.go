// Powertrace: watch an energy-proportional network track its load in
// time. The defining property the paper aims for — "the amount of
// energy consumed is proportional to the traffic intensity" — is
// easiest to see as a time series: offered load swings with the bursty
// Search trace, and a few epochs later the fabric's power follows it.
//
//	go run ./examples/powertrace
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"epnet"
)

func main() {
	cfg := epnet.DefaultConfig()
	cfg.Workload = epnet.WorkloadSearch
	cfg.Policy = epnet.PolicyHalveDouble
	cfg.Independent = true
	cfg.Warmup = 500 * time.Microsecond
	cfg.Duration = 3 * time.Millisecond
	cfg.PowerSampleEvery = 100 * time.Microsecond

	res, err := epnet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("instantaneous network power (ideal channels) vs offered load,")
	fmt.Printf("sampled every %v on the Search trace:\n\n", cfg.PowerSampleEvery)
	fmt.Printf("%-10s %-34s %s\n", "time", "power", "offered load")
	for _, s := range res.PowerTrace {
		fmt.Printf("%-10v %6.1f%% %-26s %6.1f%% %s\n",
			s.At, s.Ideal*100, bar(s.Ideal, 25), s.Util*100, bar(s.Util, 25))
	}

	fmt.Printf("\nmean over the window: power %.1f%% of baseline for %.1f%% average load\n",
		res.RelPowerIdeal*100, res.AvgUtil*100)
	fmt.Println("(an ideally proportional network would sit exactly on the load line;")
	fmt.Println("the gap is the cost of epoch-granularity sensing and the 2.5 Gb/s floor)")
}

func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return strings.Repeat("#", int(frac*float64(width)+0.5))
}
