// Quickstart: simulate an energy-proportional flattened butterfly
// network for a few simulated milliseconds and print what the paper's
// mechanism buys you.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"epnet"
)

func main() {
	// Start from the library defaults: an 8-ary 2-flat (64 hosts,
	// 8 switches), the web-search-like workload, and the paper's
	// halve/double link-rate policy with a 50% utilization target,
	// 1 us reactivation and 10 us epochs. Every knob has a With*
	// option; the two below just restate the defaults.
	cfg := epnet.NewConfig(epnet.TopoFBFLY,
		epnet.WithWorkload(epnet.WorkloadSearch),
		epnet.WithPolicy(epnet.PolicyHalveDouble))

	res, err := epnet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d hosts / %d switches / %d channels\n",
		res.Hosts, res.Switches, res.Channels)
	fmt.Printf("average channel utilization: %.1f%%\n", res.AvgUtil*100)
	fmt.Printf("network power vs always-on baseline:\n")
	fmt.Printf("  with today's switch chips (Figure 5 profile): %.1f%%\n",
		res.RelPowerMeasured*100)
	fmt.Printf("  with ideally proportional channels:           %.1f%%\n",
		res.RelPowerIdeal*100)
	fmt.Printf("mean packet latency: %v (p99 %v)\n", res.MeanLatency, res.P99Latency)

	// The same run with the energy controller disabled shows the cost:
	// zero power savings, slightly lower latency.
	cfg.Policy = epnet.PolicyBaseline
	base, err := epnet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline (always-on) mean latency: %v\n", base.MeanLatency)
	fmt.Printf("latency cost of energy proportionality: %v\n",
		res.MeanLatency-base.MeanLatency)

	watts, dollars := epnet.SavingsProjection(res.RelPowerIdeal)
	fmt.Printf("\nprojected to the paper's 32k-host network: %.0f kW saved = $%.2fM over four years\n",
		watts/1000, dollars/1e6)
}
