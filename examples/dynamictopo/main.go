// Dynamictopo: demonstrate the paper's §5.1 "dynamic topologies"
// proposal over a day/night load cycle. At night a cluster's traffic
// drops to a trickle; a flattened butterfly can then power off most of
// each dimension's links and operate as a torus-like ring, re-enabling
// the full wiring when morning load returns. Rate tuning and topology
// switching compose: the remaining links are still detuned to match
// demand.
//
//	go run ./examples/dynamictopo
package main

import (
	"fmt"
	"log"
	"time"

	"epnet"
)

func main() {
	fmt.Println("day/night cycle on a 64-host flattened butterfly, advert-like traffic")
	fmt.Println()

	phases := []struct {
		name string
		load float64
		dyn  bool
	}{
		{"daytime peak, rate tuning only", 0.20, false},
		{"daytime peak, + dynamic topology", 0.20, true},
		{"overnight trough, rate tuning only", 0.015, false},
		{"overnight trough, + dynamic topology", 0.015, true},
	}

	for _, p := range phases {
		cfg := epnet.DefaultConfig()
		cfg.Workload = epnet.WorkloadAdvert
		cfg.Load = p.load
		cfg.Policy = epnet.PolicyHalveDouble
		cfg.Independent = true
		cfg.DynTopo = p.dyn
		cfg.Warmup = time.Millisecond
		cfg.Duration = 3 * time.Millisecond

		res, err := epnet.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-38s power(measured) %5.1f%%  power(ideal) %5.1f%%  links-off %4.1f%%  latency %8v  transitions %d\n",
			p.name, res.RelPowerMeasured*100, res.RelPowerIdeal*100, res.OffShare*100,
			res.MeanLatency.Round(time.Microsecond), res.DynTransitions)
	}

	fmt.Println()
	fmt.Println("overnight, powering off non-ring links removes the always-on floor those")
	fmt.Println("links would otherwise burn on today's chips (the measured-profile column),")
	fmt.Println("at the cost of longer ring paths and a small latency bump. With ideally")
	fmt.Println("proportional channels the ring's extra hops offset the idle savings —")
	fmt.Println("exactly the trade the paper flags when it calls dynamic topologies a")
	fmt.Println("fertile area that needs a true power-off state and energy-aware routing.")
}
