// Capacityplan: use the analytic part-count models to size a datacenter
// network, the way §2 of the paper compares topologies. For a target
// host count the planner sweeps flattened-butterfly shapes (including
// over-subscribed ones, as in the paper's Figure 3 example), checks
// which fit a given switch-chip radix, and reports network power, link
// budgets and four-year energy cost against the folded-Clos
// alternative.
//
//	go run ./examples/capacityplan
package main

import (
	"fmt"

	"epnet"
)

func main() {
	const radix = 36 // ports per switch chip, as in the paper

	fmt.Printf("candidate flattened butterflies on %d-port chips (paper's Table 1 methodology)\n\n", radix)
	fmt.Printf("%-22s %8s %7s %9s %12s %11s %13s\n",
		"shape", "hosts", "ports", "chips", "power (kW)", "W/Gb/s", "4yr energy $")

	type shape struct{ k, n, c int }
	shapes := []shape{
		{8, 2, 8},   // 64 hosts
		{16, 2, 16}, // 256 hosts: highest radix, lowest diameter
		{8, 3, 8},   // 512
		{16, 3, 16}, // 4096
		{8, 4, 8},   // 4096 the deeper alternative
		{8, 4, 12},  // 6144 with 3:2 over-subscription (Figure 3)
		{8, 5, 8},   // 32768: the paper's flagship
	}
	for _, s := range shapes {
		t, err := epnet.CustomTable1(s.k, s.n, s.c, radix)
		if err != nil {
			fmt.Printf("%-22s does not fit: %v\n", fmt.Sprintf("%d-ary %d-flat c=%d", s.k, s.n, s.c), err)
			continue
		}
		ports := s.c + (s.k-1)*(s.n-1)
		fmt.Printf("%-22s %8d %7d %9d %12.1f %11.2f %13.0f\n",
			fmt.Sprintf("%d-ary %d-flat c=%d", s.k, s.n, s.c),
			t.FBFLY.Hosts, ports, t.FBFLY.SwitchChips,
			t.FBFLY.TotalWatts/1000, t.FBFLY.WattsPerGbps,
			epnet.CostOfWatts(t.FBFLY.TotalWatts))
	}

	fmt.Println()
	t := epnet.Table1()
	fmt.Printf("flagship vs folded Clos at 32k hosts and 655 Tb/s bisection:\n")
	fmt.Printf("  Clos: %d chips, %.0f kW;  FBFLY: %d chips, %.0f kW\n",
		t.Clos.SwitchChips, t.Clos.TotalWatts/1000,
		t.FBFLY.SwitchChips, t.FBFLY.TotalWatts/1000)
	fmt.Printf("  picking the FBFLY saves $%.2fM over a four-year service life —\n", t.SavingsDollars/1e6)
	fmt.Printf("  before any dynamic-range mechanisms are enabled at all.\n")
}
