// Websearch: evaluate energy-proportional networking for a web-search
// cluster — the scenario that motivates the paper's §1. A search
// service is latency-sensitive and runs at low average network
// utilization, so its network burns near-peak power for single-digit
// duty cycles. This example quantifies, for the Search trace:
//
//  1. the power left on the table by an always-on fabric,
//
//  2. what the paper's link tuning recovers with today's switch chips,
//
//  3. what independent unidirectional channel control adds (search
//     traffic is read-heavy and therefore highly asymmetric), and
//
//  4. the latency each step costs.
//
//     go run ./examples/websearch
package main

import (
	"fmt"
	"log"
	"time"

	"epnet"
)

func main() {
	base := epnet.DefaultConfig()
	base.Workload = epnet.WorkloadSearch
	base.Warmup = time.Millisecond
	base.Duration = 4 * time.Millisecond

	type step struct {
		name string
		cfg  epnet.Config
	}
	steps := []step{
		{"always-on fabric (status quo)", withPolicy(base, epnet.PolicyBaseline, false)},
		{"paper heuristic, paired links", withPolicy(base, epnet.PolicyHalveDouble, false)},
		{"paper heuristic, independent channels", withPolicy(base, epnet.PolicyHalveDouble, true)},
	}

	fmt.Println("web-search cluster, 64-host flattened butterfly, 40 Gb/s links")
	fmt.Println()
	var baseline epnet.Result
	for i, s := range steps {
		res, err := epnet.Run(s.cfg)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseline = res
		}
		fmt.Printf("%s\n", s.name)
		fmt.Printf("  power (today's chips)   : %5.1f%% of baseline\n", res.RelPowerMeasured*100)
		fmt.Printf("  power (ideal channels)  : %5.1f%% of baseline\n", res.RelPowerIdeal*100)
		fmt.Printf("  mean latency            : %v (+%v vs baseline)\n",
			res.MeanLatency, res.MeanLatency-baseline.MeanLatency)
		if i > 0 {
			_, dollars := epnet.SavingsProjection(res.RelPowerIdeal)
			fmt.Printf("  32k-host 4yr projection : $%.2fM saved with proportional channels\n", dollars/1e6)
		}
		fmt.Println()
	}

	fmt.Printf("the lower bound: network average utilization was %.1f%% — a perfectly\n", baseline.AvgUtil*100)
	fmt.Printf("energy-proportional network would consume exactly that fraction of peak power.\n")
}

func withPolicy(cfg epnet.Config, p epnet.PolicyKind, independent bool) epnet.Config {
	cfg.Policy = p
	cfg.Independent = independent
	return cfg
}
