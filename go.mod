module epnet

go 1.22
