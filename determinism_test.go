package epnet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// matrixCase is one cell of the sharding determinism matrix: a topology
// under active link retuning, optionally riding out seeded-random
// faults, or a whole declarative scenario (multi-phase traffic, policy
// switches, chaos campaigns) resolved through LoadScenario.
type matrixCase struct {
	name     string
	faults   bool
	scenario string
	mutate   func(*Config)
}

// runMatrixCell executes one configuration at the given shard count,
// returning the Result and the raw bytes of the sampled metrics series.
// The metrics file exercises the whole telemetry path — registry
// closures, merged latency histogram view, sampler — under sharding.
// With profile set, engine self-profiling runs too (and must not show
// up anywhere but Result.Profile and its own output file).
func runMatrixCell(t *testing.T, mc matrixCase, shards int, dir string, profile bool) (Result, []byte) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Workload = WorkloadUniform
	cfg.Policy = PolicyHalveDouble
	cfg.Independent = true
	cfg.Warmup = 50 * time.Microsecond
	cfg.Duration = 300 * time.Microsecond
	cfg.Seed = 7
	cfg.Shards = shards
	cfg.Attribution = true
	cfg.MetricsOut = filepath.Join(dir, "metrics.csv")
	if profile {
		cfg.Profile = true
		cfg.ProfileOut = filepath.Join(dir, "profile.json")
	}
	if mc.faults && mc.scenario == "" {
		cfg.FaultRate = 20 // expected events per simulated ms
	}
	mc.mutate(&cfg)
	if mc.scenario != "" {
		loaded, err := LoadScenario(mc.scenario, cfg)
		if err != nil {
			t.Fatalf("%s: %v", mc.name, err)
		}
		// Cap phase durations so the matrix stays fast; the determinism
		// comparison only needs both shard counts to run the same plan.
		const maxPhase = Duration(150 * time.Microsecond)
		for i := range loaded.Scenario.Phases {
			if loaded.Scenario.Phases[i].Duration > maxPhase {
				loaded.Scenario.Phases[i].Duration = maxPhase
			}
		}
		cfg = loaded
		cfg.Shards = shards
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s shards=%d: %v", mc.name, shards, err)
	}
	series, err := os.ReadFile(cfg.MetricsOut)
	if err != nil {
		t.Fatalf("%s shards=%d: %v", mc.name, shards, err)
	}
	if profile {
		if res.Profile == nil {
			t.Fatalf("%s shards=%d: Config.Profile set but Result.Profile is nil", mc.name, shards)
		}
		var out EngineProfile
		data, err := os.ReadFile(cfg.ProfileOut)
		if err != nil {
			t.Fatalf("%s shards=%d: %v", mc.name, shards, err)
		}
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("%s shards=%d: profile output is not valid JSON: %v", mc.name, shards, err)
		}
		if len(out.Shards) != len(res.Profile.Shards) {
			t.Fatalf("%s shards=%d: profile file has %d shards, Result.Profile %d",
				mc.name, shards, len(out.Shards), len(res.Profile.Shards))
		}
	}
	return res, series
}

// TestShardDeterminismMatrix is the end-to-end half of the determinism
// guarantee: across topologies, with link retuning always on and with
// and without a seeded fault process, every shard count must reproduce
// the serial run's Result and its sampled telemetry series byte for
// byte. Only Config.Shards itself may differ. The sharded cells run
// with engine self-profiling enabled while the serial anchor does not,
// so the same comparison also proves the profiler never perturbs the
// deterministic outputs (Result.Profile is wall-clock data and is
// normalized away, like the config fields that legitimately differ).
func TestShardDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix of full runs")
	}
	topos := []matrixCase{
		{name: "fbfly", mutate: func(c *Config) {}},
		{name: "fattree", mutate: func(c *Config) {
			c.Topology = TopoFatTree
			c.K, c.C = 6, 6
		}},
		{name: "clos3", mutate: func(c *Config) {
			c.Topology = TopoClos3
			c.K = 4
		}},
	}
	var cells []matrixCase
	for _, base := range topos {
		for _, faults := range []bool{false, true} {
			mc := base
			mc.faults = faults
			mc.name += "/clean"
			if faults {
				mc.name = base.name + "/faults"
			}
			cells = append(cells, mc)
		}
	}
	// Declarative scenarios run through the same matrix: multi-phase
	// traffic with load shapes (diurnal) and a chaos campaign with
	// correlated failure groups (chaos) must both shard byte-identically.
	cells = append(cells,
		matrixCase{name: "scenario/diurnal", scenario: "diurnal", mutate: func(c *Config) {}},
		matrixCase{name: "scenario/chaos", scenario: "chaos", faults: true, mutate: func(c *Config) {}},
	)
	// Flow-traced cells: hash sampling must pick the same flow set at
	// every shard count, and the merged report (exemplars, per-phase
	// decompositions, anomaly dumps from real drops/faults) lives inside
	// Result.FlowTrace, so the DeepEqual below covers it byte for byte.
	cells = append(cells,
		matrixCase{name: "fbfly/flowtrace", mutate: func(c *Config) {
			c.FlowTrace = true
			c.FlowSample = 0.25
		}},
		matrixCase{name: "scenario/chaos-flowtrace", scenario: "chaos", faults: true, mutate: func(c *Config) {
			c.FlowTrace = true
			c.FlowSample = 0.25
		}},
	)
	for _, mc := range cells {
		mc := mc
		t.Run(mc.name, func(t *testing.T) {
			want, wantSeries := runMatrixCell(t, mc, 1, t.TempDir(), false)
			if want.DeliveredPackets == 0 {
				t.Fatal("serial run delivered nothing")
			}
			if mc.faults && want.Faults.Total() == 0 {
				t.Fatal("fault case injected no faults")
			}
			shardCounts := []int{2, 4, 8}
			if mc.scenario != "" {
				shardCounts = []int{2, 4}
			}
			for _, shards := range shardCounts {
				got, gotSeries := runMatrixCell(t, mc, shards, t.TempDir(), true)
				// The recorded Config legitimately differs in the
				// shard count, the per-run temp output paths, and
				// the profiling switches; Result.Profile itself is
				// wall-clock measurement, not simulation output.
				// Normalize all of it before the deep compare.
				got.Config.Shards = want.Config.Shards
				got.Config.MetricsOut = want.Config.MetricsOut
				got.Config.Profile = want.Config.Profile
				got.Config.ProfileOut = want.Config.ProfileOut
				got.Profile = nil
				if !reflect.DeepEqual(want, got) {
					t.Errorf("shards=%d: Result diverges from serial\nserial: %+v\nshards: %+v",
						shards, want, got)
				}
				if string(wantSeries) != string(gotSeries) {
					t.Errorf("shards=%d: metrics series diverges from serial (%d vs %d bytes)",
						shards, len(wantSeries), len(gotSeries))
				}
			}
		})
	}
}
