package epnet

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// matrixCase is one cell of the sharding determinism matrix: a topology
// under active link retuning, optionally riding out seeded-random
// faults.
type matrixCase struct {
	name   string
	faults bool
	mutate func(*Config)
}

// runMatrixCell executes one configuration at the given shard count,
// returning the Result and the raw bytes of the sampled metrics series.
// The metrics file exercises the whole telemetry path — registry
// closures, merged latency histogram view, sampler — under sharding.
func runMatrixCell(t *testing.T, mc matrixCase, shards int, dir string) (Result, []byte) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Workload = WorkloadUniform
	cfg.Policy = PolicyHalveDouble
	cfg.Independent = true
	cfg.Warmup = 50 * time.Microsecond
	cfg.Duration = 300 * time.Microsecond
	cfg.Seed = 7
	cfg.Shards = shards
	cfg.Attribution = true
	cfg.MetricsOut = filepath.Join(dir, "metrics.csv")
	if mc.faults {
		cfg.FaultRate = 20 // expected events per simulated ms
	}
	mc.mutate(&cfg)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s shards=%d: %v", mc.name, shards, err)
	}
	series, err := os.ReadFile(cfg.MetricsOut)
	if err != nil {
		t.Fatalf("%s shards=%d: %v", mc.name, shards, err)
	}
	return res, series
}

// TestShardDeterminismMatrix is the end-to-end half of the determinism
// guarantee: across topologies, with link retuning always on and with
// and without a seeded fault process, every shard count must reproduce
// the serial run's Result and its sampled telemetry series byte for
// byte. Only Config.Shards itself may differ.
func TestShardDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix of full runs")
	}
	topos := []matrixCase{
		{name: "fbfly", mutate: func(c *Config) {}},
		{name: "fattree", mutate: func(c *Config) {
			c.Topology = TopoFatTree
			c.K, c.C = 6, 6
		}},
		{name: "clos3", mutate: func(c *Config) {
			c.Topology = TopoClos3
			c.K = 4
		}},
	}
	for _, base := range topos {
		for _, faults := range []bool{false, true} {
			mc := base
			mc.faults = faults
			name := mc.name + "/clean"
			if faults {
				name = mc.name + "/faults"
			}
			t.Run(name, func(t *testing.T) {
				want, wantSeries := runMatrixCell(t, mc, 1, t.TempDir())
				if want.DeliveredPackets == 0 {
					t.Fatal("serial run delivered nothing")
				}
				if faults && want.Faults.Total() == 0 {
					t.Fatal("fault case injected no faults")
				}
				for _, shards := range []int{2, 4, 8} {
					got, gotSeries := runMatrixCell(t, mc, shards, t.TempDir())
					// The recorded Config legitimately differs in the
					// shard count and the per-run temp output path;
					// normalize both before the deep compare.
					got.Config.Shards = want.Config.Shards
					got.Config.MetricsOut = want.Config.MetricsOut
					if !reflect.DeepEqual(want, got) {
						t.Errorf("shards=%d: Result diverges from serial\nserial: %+v\nshards: %+v",
							shards, want, got)
					}
					if string(wantSeries) != string(gotSeries) {
						t.Errorf("shards=%d: metrics series diverges from serial (%d vs %d bytes)",
							shards, len(wantSeries), len(gotSeries))
					}
				}
			})
		}
	}
}
