package epnet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// observeConfig is a small, fast run with enough epochs for the
// controller to retune links several times.
func observeConfig() Config {
	cfg := DefaultConfig()
	cfg.K, cfg.N, cfg.C = 4, 2, 4
	cfg.Warmup = 100 * time.Microsecond
	cfg.Duration = 400 * time.Microsecond
	return cfg
}

func TestRunWritesMetricsCSV(t *testing.T) {
	cfg := observeConfig()
	cfg.MetricsOut = filepath.Join(t.TempDir(), "metrics.csv")
	cfg.SampleInterval = 50 * time.Microsecond
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cfg.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	// Samples at 0, 50us, ..., 500us plus the header.
	if want := 1 + 11; len(lines) != want {
		t.Fatalf("csv lines = %d, want %d", len(lines), want)
	}
	header := strings.Split(lines[0], ",")
	if header[0] != "t_us" {
		t.Fatalf("header starts %q, want t_us", header[0])
	}
	rateCol := -1
	for i, name := range header {
		if strings.HasPrefix(name, "link.rate_gbps{") {
			rateCol = i
			break
		}
	}
	if rateCol == -1 {
		t.Fatalf("no rate_gbps column in header %v", header)
	}
	// The halve/double controller must visibly change the sampled link
	// rate over the run — the series is not a flat line.
	seen := map[string]bool{}
	for _, line := range lines[1:] {
		cells := strings.Split(line, ",")
		if len(cells) != len(header) {
			t.Fatalf("row width %d != header width %d", len(cells), len(header))
		}
		seen[cells[rateCol]] = true
	}
	if len(seen) < 2 {
		t.Errorf("rate series %s is flat (%v); want per-epoch changes", header[rateCol], seen)
	}
}

func TestRunWritesMetricsJSONL(t *testing.T) {
	cfg := observeConfig()
	cfg.MetricsOut = filepath.Join(t.TempDir(), "metrics.jsonl")
	cfg.SampleInterval = 100 * time.Microsecond
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cfg.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if want := 6; len(lines) != want { // 0..500us every 100us
		t.Fatalf("jsonl lines = %d, want %d", len(lines), want)
	}
	for _, line := range lines {
		var row struct {
			TUs     float64            `json:"t_us"`
			Metrics map[string]float64 `json:"metrics"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("invalid JSONL row %q: %v", line, err)
		}
		if len(row.Metrics) == 0 {
			t.Fatalf("row at t=%v has no metrics", row.TUs)
		}
	}
}

func TestRunWritesChromeTrace(t *testing.T) {
	cfg := observeConfig()
	cfg.TraceOut = filepath.Join(t.TempDir(), "trace.json")
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cfg.TraceOut)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not a JSON event array: %v", err)
	}
	counts := map[string]int{}
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		counts[ph]++
	}
	if counts["b"] == 0 || counts["b"] != counts["e"] {
		t.Errorf("packet spans unbalanced: %d begins vs %d ends", counts["b"], counts["e"])
	}
	if counts["X"] == 0 {
		t.Error("no link retune spans in trace")
	}
	if counts["M"] == 0 {
		t.Error("no metadata events naming the tracks")
	}
}

func TestTelemetryOptsApply(t *testing.T) {
	opts := &TelemetryOpts{MetricsOut: "m.csv", TraceOut: "t.json", ProfileOut: "p.json"}
	cfgs := make([]Config, 3)
	opts.Apply(cfgs[:2])
	opts.Apply(cfgs[2:]) // sequence continues across grids
	want := []string{"m.000.csv", "m.001.csv", "m.002.csv"}
	for i, cfg := range cfgs {
		if cfg.MetricsOut != want[i] {
			t.Errorf("cfg %d MetricsOut = %q, want %q", i, cfg.MetricsOut, want[i])
		}
		if wantTrace := "t.00" + strconv.Itoa(i) + ".json"; cfg.TraceOut != wantTrace {
			t.Errorf("cfg %d TraceOut = %q, want %q", i, cfg.TraceOut, wantTrace)
		}
		if wantProf := "p.00" + strconv.Itoa(i) + ".json"; cfg.ProfileOut != wantProf {
			t.Errorf("cfg %d ProfileOut = %q, want %q", i, cfg.ProfileOut, wantProf)
		}
	}
	// Disabled opts leave configurations untouched.
	var off *TelemetryOpts
	plain := make([]Config, 1)
	off.Apply(plain)
	(&TelemetryOpts{}).Apply(plain)
	if plain[0].MetricsOut != "" || plain[0].TraceOut != "" || plain[0].ProfileOut != "" {
		t.Errorf("disabled telemetry stamped paths: %+v", plain[0])
	}
}

// Telemetry files from a parallel grid are byte-identical to a serial
// one: paths are assigned before the fan-out and each run owns its
// files.
func TestGridTelemetryDeterministic(t *testing.T) {
	dir := t.TempDir()
	mkCfgs := func(base string) []Config {
		var cfgs []Config
		for _, policy := range []PolicyKind{PolicyHalveDouble, PolicyMinMax} {
			cfg := observeConfig()
			cfg.Policy = policy
			cfgs = append(cfgs, cfg)
		}
		opts := &TelemetryOpts{
			MetricsOut:     filepath.Join(dir, base+".csv"),
			SampleInterval: 100 * time.Microsecond,
		}
		opts.Apply(cfgs)
		return cfgs
	}
	serial := mkCfgs("serial")
	if _, err := RunGrid(serial, 1); err != nil {
		t.Fatal(err)
	}
	par := mkCfgs("par")
	if _, err := RunGrid(par, 4); err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		a, err := os.ReadFile(serial[i].MetricsOut)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(par[i].MetricsOut)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("run %d: parallel telemetry differs from serial", i)
		}
	}
}
