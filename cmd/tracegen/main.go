// Command tracegen generates synthetic workload trace files in the
// EPTRACE1 binary format, and inspects existing ones. Generated traces
// can be replayed with `epsim -workload trace -trace <file>` or via
// epnet.Config{Workload: epnet.WorkloadTrace}.
//
// Examples:
//
//	tracegen -workload search -hosts 128 -horizon 50ms -o search.trace
//	tracegen -inspect search.trace -hosts 128 -horizon 50ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"epnet/internal/link"
	"epnet/internal/sim"
	"epnet/internal/traffic"
)

func main() {
	workload := flag.String("workload", "search", "workload: uniform | search | advert | permutation | hotspot")
	hosts := flag.Int("hosts", 64, "number of hosts")
	horizon := flag.Duration("horizon", 20*time.Millisecond, "trace length (simulated)")
	load := flag.Float64("load", 0, "override workload average utilization")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output trace file (required unless -inspect)")
	inspect := flag.String("inspect", "", "inspect an existing trace file instead of generating")
	rescale := flag.String("rescale", "", "rescale an existing trace file (with -speedup/-size-factor/-remap) into -o")
	speedup := flag.Float64("speedup", 1, "rescale: divide injection times by this factor")
	sizeFactor := flag.Float64("size-factor", 1, "rescale: multiply message sizes by this factor")
	remap := flag.Int("remap", 0, "rescale: randomize placement onto this many hosts (0 = keep)")
	flag.Parse()

	if *inspect != "" {
		if err := doInspect(*inspect, *hosts, *horizon); err != nil {
			fail(err)
		}
		return
	}
	if *rescale != "" {
		if *out == "" {
			fail(fmt.Errorf("-rescale requires -o"))
		}
		if err := doRescale(*rescale, *out, *speedup, *sizeFactor, *remap, *seed); err != nil {
			fail(err)
		}
		return
	}
	if *out == "" {
		fail(fmt.Errorf("-o is required (or use -inspect)"))
	}

	var w traffic.Workload
	switch *workload {
	case "uniform":
		u := traffic.DefaultUniform(*seed)
		if *load > 0 {
			u.Load = *load
		}
		w = u
	case "search":
		s := traffic.Search(*seed)
		if *load > 0 {
			s.Load = *load
		}
		w = s
	case "advert":
		a := traffic.Advert(*seed)
		if *load > 0 {
			a.Load = *load
		}
		w = a
	case "permutation":
		l := *load
		if l == 0 {
			l = 0.1
		}
		w = &traffic.Permutation{MsgBytes: 64 * 1024, Load: l, LineRate: link.Rate40G, Seed: *seed}
	case "hotspot":
		l := *load
		if l == 0 {
			l = 0.05
		}
		w = &traffic.Hotspot{MsgBytes: 64 * 1024, Load: l, LineRate: link.Rate40G, Hot: 4, Seed: *seed}
	default:
		fail(fmt.Errorf("unknown workload %q", *workload))
	}

	h := sim.Time(horizon.Nanoseconds()) * sim.Nanosecond
	recs := traffic.Capture(w, *hosts, h)
	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	if err := traffic.WriteTrace(f, recs); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	st := traffic.Stats(recs, *hosts, float64(link.Rate40G), h)
	fmt.Printf("wrote %s: %d messages, %.1f MB offered, mean util %.2f%% over %v\n",
		*out, st.Messages, float64(st.Bytes)/1e6, st.MeanUtil*100, *horizon)
}

// doRescale applies the paper's trace scale-up transformations: compress
// time, scale sizes, and randomize placement.
func doRescale(in, out string, speedup, sizeFactor float64, remapHosts int, seed int64) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	recs, err := traffic.ReadTrace(f)
	f.Close()
	if err != nil {
		return err
	}
	recs, err = traffic.ScaleTrace(recs, speedup, sizeFactor)
	if err != nil {
		return err
	}
	if remapHosts > 0 {
		recs, err = traffic.RemapHosts(recs, remapHosts, seed)
		if err != nil {
			return err
		}
	}
	g, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := traffic.WriteTrace(g, recs); err != nil {
		g.Close()
		return err
	}
	if err := g.Close(); err != nil {
		return err
	}
	fmt.Printf("rescaled %s -> %s: %d records, speedup %gx, sizes %gx, remap %d\n",
		in, out, len(recs), speedup, sizeFactor, remapHosts)
	return nil
}

func doInspect(path string, hosts int, horizon time.Duration) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := traffic.ReadTrace(f)
	if err != nil {
		return err
	}
	h := sim.Time(horizon.Nanoseconds()) * sim.Nanosecond
	if len(recs) > 0 && recs[len(recs)-1].At > h {
		h = recs[len(recs)-1].At
	}
	st := traffic.Stats(recs, hosts, float64(link.Rate40G), h)
	burst := traffic.BurstinessIndex(recs, h, []sim.Time{
		10 * sim.Microsecond, 100 * sim.Microsecond, sim.Millisecond,
	})
	fmt.Printf("%s: %d messages, %.1f MB, max message %d B\n",
		path, st.Messages, float64(st.Bytes)/1e6, st.MaxMsgSize)
	fmt.Printf("mean utilization (vs %d hosts at 40G): %.2f%%\n", hosts, st.MeanUtil*100)
	fmt.Printf("burstiness index (10us/100us/1ms windows): %.2f\n", burst)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
