// Command topopower is a capacity-planning calculator for the paper's
// analytic power models: it compares a flattened butterfly against a
// bisection-equivalent folded Clos for an arbitrary configuration, and
// prints the Figure 1 server-vs-network power breakdown for a cluster
// built around it.
//
// Examples:
//
//	topopower                          # the paper's 32k-host system
//	topopower -k 15 -n 3 -c 15 -radix 43
//	topopower -k 8 -n 4 -c 12 -radix 33   # 3:2 over-subscribed 6144 hosts
//	topopower -util 0.10                  # Figure 1 at 10% utilization
package main

import (
	"flag"
	"fmt"
	"os"

	"epnet"
)

func main() {
	k := flag.Int("k", 8, "FBFLY radix per dimension")
	n := flag.Int("n", 5, "FBFLY n (dimensions incl. host dimension)")
	c := flag.Int("c", 8, "concentration (hosts per switch)")
	radix := flag.Int("radix", 36, "switch chip port count")
	serverW := flag.Float64("server-watts", 250, "per-server power at peak")
	util := flag.Float64("util", 0.15, "cluster utilization for the Figure 1 scenario")
	flag.Parse()

	t, err := epnet.CustomTable1(*k, *n, *c, *radix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topopower:", err)
		os.Exit(1)
	}

	fmt.Printf("Topology comparison at %d hosts, %.0f Tb/s bisection (%d-port chips):\n\n",
		t.FBFLY.Hosts, t.FBFLY.BisectionGbps/1000, *radix)
	fmt.Printf("%-28s  %16s  %16s\n", "", "folded Clos", "flattened bfly")
	fmt.Printf("%-28s  %16d  %16d\n", "switch chips", t.Clos.SwitchChips, t.FBFLY.SwitchChips)
	fmt.Printf("%-28s  %16d  %16d\n", "electrical links", t.Clos.ElectricalLinks, t.FBFLY.ElectricalLinks)
	fmt.Printf("%-28s  %16d  %16d\n", "optical links", t.Clos.OpticalLinks, t.FBFLY.OpticalLinks)
	fmt.Printf("%-28s  %14.0f W  %14.0f W\n", "network power", t.Clos.TotalWatts, t.FBFLY.TotalWatts)
	fmt.Printf("%-28s  %16.2f  %16.2f\n", "W per bisection Gb/s", t.Clos.WattsPerGbps, t.FBFLY.WattsPerGbps)
	fmt.Printf("\nchoosing the FBFLY saves %.0f W = $%.2fM over four years (PUE 1.6, $0.07/kWh)\n",
		t.SavingsWatts, t.SavingsDollars/1e6)
	fmt.Printf("the always-on FBFLY still costs $%.2fM of energy over four years\n\n",
		t.FBFLYBaselineDollars/1e6)

	servers := t.FBFLY.Hosts
	full := float64(servers) * *serverW
	netW := t.Clos.TotalWatts
	fmt.Printf("Figure 1 scenario (%d servers x %.0f W, folded-Clos network):\n", servers, *serverW)
	fmt.Printf("  100%% utilization:            network is %4.1f%% of cluster power\n",
		netW/(full+netW)*100)
	epServers := full * *util
	fmt.Printf("  %3.0f%% util, EP servers:       network is %4.1f%% of cluster power\n",
		*util*100, netW/(epServers+netW)*100)
	saved := netW * (1 - *util)
	fmt.Printf("  %3.0f%% util, EP servers+net:   saves %.0f kW = $%.2fM over four years\n",
		*util*100, saved/1000, epnet.CostOfWatts(saved)/1e6)
}
