package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	res, ok := parseLine("BenchmarkNetworkThroughput-8   860   1394 ns/op   117.45 MB/s   0 B/op   0 allocs/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if res.Name != "BenchmarkNetworkThroughput-8" || res.Iterations != 860 {
		t.Errorf("name/iters = %q/%d", res.Name, res.Iterations)
	}
	if res.NsPerOp != 1394 || res.MBPerSec != 117.45 {
		t.Errorf("ns/op=%v MB/s=%v", res.NsPerOp, res.MBPerSec)
	}
	if res.BytesPerOp != 0 || res.AllocsPerOp != 0 {
		t.Errorf("B/op=%d allocs/op=%d", res.BytesPerOp, res.AllocsPerOp)
	}

	for _, line := range []string{
		"goos: linux",
		"pkg: epnet/internal/fabric",
		"PASS",
		"ok  	epnet/internal/fabric	12.3s",
		"BenchmarkBroken notanumber ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("non-benchmark line parsed: %q", line)
		}
	}

	// A minimal line without -benchmem extras still parses.
	res, ok = parseLine("BenchmarkEngine 1000000 52.1 ns/op")
	if !ok || res.NsPerOp != 52.1 || res.Iterations != 1000000 {
		t.Errorf("minimal line: ok=%v res=%+v", ok, res)
	}

	// Engine self-profile metrics from BenchmarkShardedThroughput.
	res, ok = parseLine("BenchmarkShardedThroughput/shards=4-8 12 90000 ns/op 33.1 barrier% 4 cpus 88.7 weff%")
	if !ok || res.BarrierPct != 33.1 || res.WindowEff != 88.7 || res.Cpus != 4 {
		t.Errorf("profile metrics: ok=%v res=%+v", ok, res)
	}

	// Construction-cost metrics from BenchmarkBuildNetwork.
	res, ok = parseLine("BenchmarkBuildNetwork/fbfly-32k 3 72672102 ns/op 2345 B/host 2218 ns/host")
	if !ok || res.BPerHost != 2345 || res.NsPerHost != 2218 {
		t.Errorf("build metrics: ok=%v res=%+v", ok, res)
	}
}

// TestBuildMemory exercises the construction-cost section: growth
// beyond 25% bytes/host flagged, drift within it not, new benchmarks
// reported "(new)", and no section when nothing reported the metrics.
func TestBuildMemory(t *testing.T) {
	base := map[string]Result{
		"BenchmarkBuildNetwork/fbfly-3k":  {Name: "BenchmarkBuildNetwork/fbfly-3k", BPerHost: 1700, NsPerHost: 1200},
		"BenchmarkBuildNetwork/fbfly-32k": {Name: "BenchmarkBuildNetwork/fbfly-32k", BPerHost: 2300, NsPerHost: 2200},
	}
	current := []Result{
		{Name: "BenchmarkBuildNetwork/fbfly-3k", BPerHost: 1800, NsPerHost: 1300},
		{Name: "BenchmarkBuildNetwork/fbfly-32k", BPerHost: 4000, NsPerHost: 2300},
		{Name: "BenchmarkBuildNetwork/clos3-100k", BPerHost: 2500, NsPerHost: 3600},
		{Name: "BenchmarkNetworkThroughput-4", NsPerOp: 100}, // no build metrics
	}
	var sb strings.Builder
	buildMemory(&sb, current, base)
	out := sb.String()
	if !strings.Contains(out, "build memory") {
		t.Fatalf("missing build-memory section:\n%s", out)
	}
	if got := strings.Count(out, "MEMORY"); got != 1 {
		t.Errorf("want exactly one MEMORY flag (fbfly-32k grew 74%%), got %d:\n%s", got, out)
	}
	if !strings.Contains(out, "(new)") {
		t.Errorf("benchmark absent from baseline should read (new):\n%s", out)
	}
	if strings.Contains(out, "BenchmarkNetworkThroughput-4") {
		t.Errorf("benchmark without build metrics listed:\n%s", out)
	}

	sb.Reset()
	buildMemory(&sb, []Result{{Name: "BenchmarkX", NsPerOp: 5}}, nil)
	if sb.Len() != 0 {
		t.Errorf("section printed with no build metrics:\n%s", sb.String())
	}
}

// TestCompare exercises the baseline diff report: stable results, a
// regression beyond threshold, an improvement, an allocation increase,
// and benchmarks present on only one side.
func TestCompare(t *testing.T) {
	base := map[string]Result{
		"BenchmarkStable-8":  {Name: "BenchmarkStable-8", NsPerOp: 100},
		"BenchmarkSlower-8":  {Name: "BenchmarkSlower-8", NsPerOp: 100},
		"BenchmarkFaster-8":  {Name: "BenchmarkFaster-8", NsPerOp: 100},
		"BenchmarkAllocs-8":  {Name: "BenchmarkAllocs-8", NsPerOp: 100},
		"BenchmarkRemoved-8": {Name: "BenchmarkRemoved-8", NsPerOp: 100},
	}
	current := []Result{
		{Name: "BenchmarkStable-8", NsPerOp: 105},
		{Name: "BenchmarkSlower-8", NsPerOp: 125},
		{Name: "BenchmarkFaster-8", NsPerOp: 60},
		{Name: "BenchmarkAllocs-8", NsPerOp: 100, AllocsPerOp: 3},
		{Name: "BenchmarkNew-8", NsPerOp: 42},
	}
	var sb strings.Builder
	regressions := compare(&sb, current, base, 0.10)
	out := sb.String()
	if regressions != 2 {
		t.Fatalf("regressions = %d, want 2 (time + allocs)\n%s", regressions, out)
	}
	for _, want := range []string{
		"REGRESSION", "ALLOCS 0 -> 3", "(new)", "missing from current run",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "BenchmarkStable-8 ") && strings.Contains(out, "Stable-8.*REGRESSION") {
		t.Errorf("within-threshold drift flagged:\n%s", out)
	}
}

// TestShardName covers the sub-benchmark name split behind the shard
// scaling report.
func TestShardName(t *testing.T) {
	base, n, ok := shardName("BenchmarkShardedThroughput/shards=4-8")
	if !ok || base != "BenchmarkShardedThroughput" || n != 4 {
		t.Errorf("split = %q/%d/%v", base, n, ok)
	}
	for _, name := range []string{
		"BenchmarkNetworkThroughput-8",
		"BenchmarkX/shards=zero-8",
		"BenchmarkX/shards=0-8",
	} {
		if _, _, ok := shardName(name); ok {
			t.Errorf("%q parsed as a shard sub-benchmark", name)
		}
	}
}

// TestShardScaling exercises the efficiency report: perfect scaling at
// 2 shards, poor scaling at 4 flagged LOW because the machine had the
// cores, and no flag at 8 where it did not.
func TestShardScaling(t *testing.T) {
	current := []Result{
		{Name: "BenchmarkShardedThroughput/shards=1-4", MBPerSec: 100, Cpus: 4},
		{Name: "BenchmarkShardedThroughput/shards=2-4", MBPerSec: 200, Cpus: 4},
		{Name: "BenchmarkShardedThroughput/shards=4-4", MBPerSec: 150, Cpus: 4},
		{Name: "BenchmarkShardedThroughput/shards=8-4", MBPerSec: 150, Cpus: 4},
		{Name: "BenchmarkNetworkThroughput-4", MBPerSec: 500},
	}
	var sb strings.Builder
	shardScaling(&sb, current)
	out := sb.String()
	if !strings.Contains(out, "shard scaling: BenchmarkShardedThroughput") {
		t.Fatalf("missing scaling section:\n%s", out)
	}
	if strings.Count(out, "LOW") != 1 {
		t.Errorf("want exactly one LOW flag (shards=4):\n%s", out)
	}
	for _, want := range []string{"2.00x", "100%", "38%", "recorded with 4 cpus"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	// Without a serial anchor there is nothing to normalize against.
	sb.Reset()
	shardScaling(&sb, current[1:3])
	if sb.Len() != 0 {
		t.Errorf("report without shards=1 anchor should be empty:\n%s", sb.String())
	}
}

// TestEngineProfile exercises the engine-profile section: growth beyond
// 10 percentage points of barrier overhead flagged, drift within it
// not, baselines without the metrics reported "(new)", and no section
// at all when nothing reported the metrics.
func TestEngineProfile(t *testing.T) {
	base := map[string]Result{
		"BenchmarkShardedThroughput/shards=2-4": {Name: "BenchmarkShardedThroughput/shards=2-4", BarrierPct: 20, WindowEff: 90},
		"BenchmarkShardedThroughput/shards=4-4": {Name: "BenchmarkShardedThroughput/shards=4-4", BarrierPct: 25, WindowEff: 85},
		"BenchmarkShardedThroughput/shards=8-4": {Name: "BenchmarkShardedThroughput/shards=8-4"}, // pre-profile baseline
	}
	current := []Result{
		{Name: "BenchmarkShardedThroughput/shards=2-4", BarrierPct: 25, WindowEff: 91},
		{Name: "BenchmarkShardedThroughput/shards=4-4", BarrierPct: 45, WindowEff: 70},
		{Name: "BenchmarkShardedThroughput/shards=8-4", BarrierPct: 60, WindowEff: 50},
		{Name: "BenchmarkNetworkThroughput-4", NsPerOp: 100}, // no profile metrics
	}
	var sb strings.Builder
	engineProfile(&sb, current, base)
	out := sb.String()
	if !strings.Contains(out, "engine profile") {
		t.Fatalf("missing profile section:\n%s", out)
	}
	if got := strings.Count(out, "BARRIER"); got != 1 {
		t.Errorf("want exactly one BARRIER flag (shards=4 grew 20pp), got %d:\n%s", got, out)
	}
	if !strings.Contains(out, "BARRIER +20.0pp") {
		t.Errorf("flag should carry the growth:\n%s", out)
	}
	if !strings.Contains(out, "(new)") {
		t.Errorf("pre-profile baseline should read (new):\n%s", out)
	}
	if strings.Contains(out, "BenchmarkNetworkThroughput-4") {
		t.Errorf("benchmark without profile metrics listed:\n%s", out)
	}

	// No metrics anywhere: no section header.
	sb.Reset()
	engineProfile(&sb, []Result{{Name: "BenchmarkX", NsPerOp: 5}}, nil)
	if sb.Len() != 0 {
		t.Errorf("section printed with no profile metrics:\n%s", sb.String())
	}
}

// TestReadBaselineRoundTrip writes a JSON Lines stream and reads it
// back through the baseline loader.
func TestReadBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	data := `{"name":"BenchmarkA-8","iterations":10,"ns_per_op":123,"bytes_per_op":0,"allocs_per_op":0}
{"name":"BenchmarkB-8","iterations":20,"ns_per_op":456,"bytes_per_op":8,"allocs_per_op":1}
`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 2 || base["BenchmarkB-8"].NsPerOp != 456 || base["BenchmarkB-8"].AllocsPerOp != 1 {
		t.Fatalf("baseline = %+v", base)
	}
}
