package main

import "testing"

func TestParseLine(t *testing.T) {
	res, ok := parseLine("BenchmarkNetworkThroughput-8   860   1394 ns/op   117.45 MB/s   0 B/op   0 allocs/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if res.Name != "BenchmarkNetworkThroughput-8" || res.Iterations != 860 {
		t.Errorf("name/iters = %q/%d", res.Name, res.Iterations)
	}
	if res.NsPerOp != 1394 || res.MBPerSec != 117.45 {
		t.Errorf("ns/op=%v MB/s=%v", res.NsPerOp, res.MBPerSec)
	}
	if res.BytesPerOp != 0 || res.AllocsPerOp != 0 {
		t.Errorf("B/op=%d allocs/op=%d", res.BytesPerOp, res.AllocsPerOp)
	}

	for _, line := range []string{
		"goos: linux",
		"pkg: epnet/internal/fabric",
		"PASS",
		"ok  	epnet/internal/fabric	12.3s",
		"BenchmarkBroken notanumber ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("non-benchmark line parsed: %q", line)
		}
	}

	// A minimal line without -benchmem extras still parses.
	res, ok = parseLine("BenchmarkEngine 1000000 52.1 ns/op")
	if !ok || res.NsPerOp != 52.1 || res.Iterations != 1000000 {
		t.Errorf("minimal line: ok=%v res=%+v", ok, res)
	}
}
