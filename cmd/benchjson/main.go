// Command benchjson converts `go test -bench` output on stdin into
// machine-readable JSON Lines on stdout, one object per benchmark
// result:
//
//	{"name":"BenchmarkNetworkThroughput-8","iterations":860,
//	 "ns_per_op":1394,"bytes_per_op":0,"allocs_per_op":0}
//
// Lines that are not benchmark results (package headers, PASS/ok) are
// ignored, so the tool composes directly with make:
//
//	go test -bench . -benchmem ./... | benchjson > bench.jsonl
//
// The JSON stream feeds regression tracking — e.g. asserting that the
// fabric hot path stays at 0 allocs/op after a change.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// parseLine extracts a Result from one `go test -bench` output line, or
// returns false for non-benchmark lines.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters}
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "MB/s":
			res.MBPerSec = v
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		}
	}
	return res, true
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	enc := json.NewEncoder(os.Stdout)
	for sc.Scan() {
		if res, ok := parseLine(sc.Text()); ok {
			if err := enc.Encode(res); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
