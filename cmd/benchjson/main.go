// Command benchjson converts `go test -bench` output on stdin into
// machine-readable JSON Lines on stdout, one object per benchmark
// result:
//
//	{"name":"BenchmarkNetworkThroughput-8","iterations":860,
//	 "ns_per_op":1394,"bytes_per_op":0,"allocs_per_op":0}
//
// Lines that are not benchmark results (package headers, PASS/ok) are
// ignored, so the tool composes directly with make:
//
//	go test -bench . -benchmem ./... | benchjson > bench.jsonl
//
// With -compare, the stream is instead diffed against a checked-in
// baseline (a JSON Lines file written by an earlier run):
//
//	go test -bench . -benchmem ./... | benchjson -compare BENCH_seed.json
//
// Each benchmark present in both runs is reported with its ns/op delta;
// regressions beyond -threshold (default 10%) are flagged. Benchmarks
// with /shards=N sub-results additionally get a shard-scaling section:
// speedup@N = MB/s(N) / MB/s(1) and efficiency = speedup@N / N, with
// low efficiency flagged only when the recording machine actually had N
// cores to offer. Benchmarks that report engine self-profile metrics
// (barrier% barrier overhead and weff% window efficiency, emitted by
// BenchmarkShardedThroughput) get an engine-profile section, flagging
// barrier overhead that grew by more than 10 percentage points over the
// baseline; baselines recorded before the metrics existed show "(new)".
// The exit status stays 0 — benchmark noise across machines makes a
// hard gate counterproductive, so the report is advisory and CI runs it
// report-only.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	Cpus        float64 `json:"cpus,omitempty"`
	BarrierPct  float64 `json:"barrier_pct,omitempty"`
	WindowEff   float64 `json:"window_eff_pct,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BPerHost    float64 `json:"b_per_host,omitempty"`
	NsPerHost   float64 `json:"ns_per_host,omitempty"`
}

// parseLine extracts a Result from one `go test -bench` output line, or
// returns false for non-benchmark lines.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters}
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "MB/s":
			res.MBPerSec = v
		case "cpus":
			res.Cpus = v
		case "barrier%":
			res.BarrierPct = v
		case "weff%":
			res.WindowEff = v
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		case "B/host":
			res.BPerHost = v
		case "ns/host":
			res.NsPerHost = v
		}
	}
	return res, true
}

// parseStream reads benchmark results from `go test -bench` text on r,
// in input order.
func parseStream(r io.Reader) ([]Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Result
	for sc.Scan() {
		if res, ok := parseLine(sc.Text()); ok {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

// readBaseline loads a JSON Lines baseline written by an earlier
// benchjson run.
func readBaseline(path string) (map[string]Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	base := make(map[string]Result)
	dec := json.NewDecoder(f)
	for {
		var res Result
		if err := dec.Decode(&res); err == io.EOF {
			return base, nil
		} else if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		base[res.Name] = res
	}
}

// compare prints a per-benchmark ns/op delta report against base,
// flagging regressions beyond threshold (a fraction: 0.10 = 10%) and
// any allocs/op growth. It returns the number of flagged regressions.
func compare(w io.Writer, current []Result, base map[string]Result, threshold float64) int {
	regressions := 0
	seen := make(map[string]bool, len(current))
	fmt.Fprintf(w, "%-52s %14s %14s %9s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, cur := range current {
		seen[cur.Name] = true
		old, ok := base[cur.Name]
		if !ok {
			fmt.Fprintf(w, "%-52s %14s %14.0f %9s  (new)\n", cur.Name, "-", cur.NsPerOp, "-")
			continue
		}
		delta := 0.0
		if old.NsPerOp > 0 {
			delta = cur.NsPerOp/old.NsPerOp - 1
		}
		flag := ""
		if delta > threshold {
			flag = fmt.Sprintf("  REGRESSION (>%0.f%%)", threshold*100)
			regressions++
		}
		if cur.AllocsPerOp > old.AllocsPerOp {
			flag += fmt.Sprintf("  ALLOCS %d -> %d", old.AllocsPerOp, cur.AllocsPerOp)
			if delta <= threshold {
				regressions++
			}
		}
		fmt.Fprintf(w, "%-52s %14.0f %14.0f %+8.1f%%%s\n",
			cur.Name, old.NsPerOp, cur.NsPerOp, delta*100, flag)
	}
	for name := range base {
		if !seen[name] {
			fmt.Fprintf(w, "%-52s  (missing from current run)\n", name)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(w, "\n%d benchmark(s) regressed beyond the %.0f%% threshold\n", regressions, threshold*100)
	} else {
		fmt.Fprintf(w, "\nno regressions beyond the %.0f%% threshold\n", threshold*100)
	}
	return regressions
}

// shardName splits a benchmark name like
// "BenchmarkShardedThroughput/shards=4-8" into its base name and shard
// count, or returns false for names without a /shards=N component.
func shardName(name string) (base string, shards int, ok bool) {
	const marker = "/shards="
	i := strings.Index(name, marker)
	if i < 0 {
		return "", 0, false
	}
	rest := name[i+len(marker):]
	// Trim the -GOMAXPROCS suffix go test appends to sub-benchmarks.
	if j := strings.IndexByte(rest, '-'); j >= 0 {
		rest = rest[:j]
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 1 {
		return "", 0, false
	}
	return name[:i], n, true
}

// shardScaling prints the shard-scaling efficiency of every benchmark
// family with /shards=N sub-results: speedup@N relative to the serial
// (shards=1) run and efficiency = speedup@N / N. Efficiency below half
// is flagged LOW, but only when the recording machine had at least N
// cpus — a flat curve on a saturated box is the environment, not the
// engine. Like the rest of the report the section is advisory.
func shardScaling(w io.Writer, current []Result) {
	type point struct {
		shards int
		res    Result
	}
	groups := make(map[string][]point)
	var order []string
	for _, res := range current {
		base, n, ok := shardName(res.Name)
		if !ok {
			continue
		}
		if _, seen := groups[base]; !seen {
			order = append(order, base)
		}
		groups[base] = append(groups[base], point{n, res})
	}
	for _, base := range order {
		pts := groups[base]
		sort.Slice(pts, func(i, j int) bool { return pts[i].shards < pts[j].shards })
		var serial float64
		for _, p := range pts {
			if p.shards == 1 {
				serial = p.res.MBPerSec
			}
		}
		if serial <= 0 || len(pts) < 2 {
			continue // no serial anchor (or nothing to scale) — skip
		}
		fmt.Fprintf(w, "\nshard scaling: %s\n", base)
		fmt.Fprintf(w, "%8s %12s %9s %11s\n", "shards", "MB/s", "speedup", "efficiency")
		for _, p := range pts {
			speedup := p.res.MBPerSec / serial
			eff := speedup / float64(p.shards)
			flag := ""
			if p.shards > 1 && eff < 0.5 && p.res.Cpus >= float64(p.shards) {
				flag = "  LOW"
			}
			fmt.Fprintf(w, "%8d %12.2f %8.2fx %10.0f%%%s\n",
				p.shards, p.res.MBPerSec, speedup, eff*100, flag)
		}
		if cpus := pts[len(pts)-1].res.Cpus; cpus > 0 {
			fmt.Fprintf(w, "(recorded with %.0f cpus; speedup beyond that count is not expected)\n", cpus)
		}
	}
}

// engineProfile prints the engine self-profile section for every
// benchmark that reported a barrier% metric: barrier overhead (the
// fraction of wall time outside the per-round critical path) and window
// efficiency (simulated advance used / granted). With a baseline,
// barrier overhead that grew by more than 10 percentage points is
// flagged; baselines recorded before the metrics existed (or new
// benchmarks) show "(new)". Serial (shards=1) rows naturally report ~0
// barrier overhead and anchor the table. Advisory, like the rest.
func engineProfile(w io.Writer, current []Result, base map[string]Result) {
	const growth = 10.0 // percentage points of barrier overhead
	header := false
	for _, cur := range current {
		if cur.BarrierPct == 0 && cur.WindowEff == 0 {
			continue
		}
		if !header {
			fmt.Fprintf(w, "\nengine profile (barrier overhead / window efficiency):\n")
			fmt.Fprintf(w, "%-52s %10s %10s %8s\n", "benchmark", "base barr%", "barrier%", "weff%")
			header = true
		}
		old, ok := base[cur.Name]
		flag := ""
		baseCol := "(new)"
		if ok && (old.BarrierPct != 0 || old.WindowEff != 0) {
			baseCol = fmt.Sprintf("%.1f", old.BarrierPct)
			if cur.BarrierPct-old.BarrierPct > growth {
				flag = fmt.Sprintf("  BARRIER +%.1fpp", cur.BarrierPct-old.BarrierPct)
			}
		}
		fmt.Fprintf(w, "%-52s %10s %10.1f %8.1f%s\n",
			cur.Name, baseCol, cur.BarrierPct, cur.WindowEff, flag)
	}
}

// buildMemory prints the construction-cost section for every benchmark
// that reported per-host metrics (BenchmarkBuildNetwork): bytes of
// allocation and build time per host, with the baseline alongside.
// Bytes/host growth beyond 25% is flagged — construction memory is the
// thing the flyweight fabric exists to bound, and a silent creep back
// toward per-entity boxing would undo it. Advisory, like the rest.
func buildMemory(w io.Writer, current []Result, base map[string]Result) {
	const growth = 0.25
	header := false
	for _, cur := range current {
		if cur.BPerHost == 0 && cur.NsPerHost == 0 {
			continue
		}
		if !header {
			fmt.Fprintf(w, "\nbuild memory (construction cost per host):\n")
			fmt.Fprintf(w, "%-52s %12s %12s %12s\n", "benchmark", "base B/host", "B/host", "ns/host")
			header = true
		}
		old, ok := base[cur.Name]
		flag := ""
		baseCol := "(new)"
		if ok && old.BPerHost > 0 {
			baseCol = fmt.Sprintf("%.0f", old.BPerHost)
			if cur.BPerHost/old.BPerHost-1 > growth {
				flag = fmt.Sprintf("  MEMORY +%.0f%%", (cur.BPerHost/old.BPerHost-1)*100)
			}
		}
		fmt.Fprintf(w, "%-52s %12s %12.0f %12.0f%s\n",
			cur.Name, baseCol, cur.BPerHost, cur.NsPerHost, flag)
	}
}

func main() {
	baseline := flag.String("compare", "", "baseline JSON Lines file: print a ns/op delta report instead of JSON")
	threshold := flag.Float64("threshold", 0.10, "regression threshold as a fraction of baseline ns/op")
	flag.Parse()

	current, err := parseStream(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *baseline != "" {
		base, err := readBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		compare(os.Stdout, current, base, *threshold)
		shardScaling(os.Stdout, current)
		engineProfile(os.Stdout, current, base)
		buildMemory(os.Stdout, current, base)
		return
	}
	enc := json.NewEncoder(os.Stdout)
	for _, res := range current {
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}
