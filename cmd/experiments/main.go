// Command experiments regenerates every table and figure of "Energy
// Proportional Datacenter Networks" (ISCA 2010) and prints them as text
// tables, alongside the paper's published values where the paper states
// them.
//
// Usage:
//
//	experiments                 # run everything at the default scale
//	experiments -only fig8      # one experiment: table1, fig1, fig5,
//	                            # fig6, fig7, fig8, fig9a, fig9b,
//	                            # policies, dyntopo
//	experiments -full           # paper-scale 15-ary 3-flat (slow)
//	experiments -duration 10ms  # longer measurement window
//	experiments -parallel 4     # cap concurrent simulations (default: one per CPU)
//	experiments -parallel 1     # force serial execution (same output, slower)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"epnet"
	"epnet/internal/cli"
)

var errors int

func main() {
	var loader cli.Loader
	var outputs cli.Outputs
	loader.Bind(flag.CommandLine, epnet.DefaultEval().Config)
	outputs.BindOutputs(flag.CommandLine, "experiments", true)

	only := flag.String("only", "", "run a single experiment (table1, fig1, fig5, fig6, fig7, fig8, fig9a, fig9b, policies, dyntopo, routing, reactivation, oversub, topocompare, serdes, resilience, faultgrid)")
	full := flag.Bool("full", false, "use the paper's 15-ary 3-flat scale (slow)")
	par := flag.Int("parallel", runtime.NumCPU(), "max concurrent simulations per experiment (1 = serial; output is identical either way)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the harness to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	runtimeMetrics := flag.String("runtime-metrics", "", "dump the Go runtime/metrics snapshot at exit to this file")
	flag.Parse()

	// -full picks the evaluation base; the shared loader then overlays
	// -preset/-scenario and any explicitly set flags on top of it, so
	// e.g. `experiments -full -duration 10ms` still scales the window.
	eval := epnet.DefaultEval()
	if *full {
		eval = epnet.PaperEval()
	}
	cfg, err := loader.ResolveFrom(eval.Config)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	eval.Config = cfg
	eval.Parallel = *par
	if outputs.MetricsOut != "" || outputs.TraceOut != "" || outputs.HeatmapOut != "" ||
		outputs.HistOut != "" || outputs.ProfileOut != "" || outputs.Listen != "" {
		eval.Telemetry, err = outputs.Telemetry()
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
			os.Exit(1)
		}
		// Stopped explicitly before exit: os.Exit skips defers.
	}

	run := func(name string, fn func(epnet.EvalConfig)) {
		if *only != "" && *only != name {
			return
		}
		start := time.Now()
		fn(eval)
		// Timing is diagnostic and varies run to run; keep it off stdout
		// so experiment output is byte-identical across runs and across
		// -parallel settings.
		fmt.Fprintf(os.Stderr, "  [%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
		fmt.Println()
	}

	fmt.Printf("== Energy Proportional Datacenter Networks — experiment harness ==\n")
	fmt.Printf("scale: %d-ary %d-flat c=%d, warmup %v, window %v\n\n",
		eval.K, eval.N, eval.C, eval.Warmup, eval.Duration)

	run("table1", table1)
	run("fig1", fig1)
	run("fig5", fig5)
	run("fig6", fig6)
	run("fig7", fig7)
	run("fig8", fig8)
	run("fig9a", fig9a)
	run("fig9b", fig9b)
	run("policies", policies)
	run("dyntopo", dyntopo)
	run("routing", routingAblation)
	run("reactivation", reactivation)
	run("oversub", oversub)
	run("topocompare", topocompare)
	run("serdes", serdes)
	run("resilience", resilience)
	run("faultgrid", faultgrid)

	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		writeHeapProfile(*memprofile)
	}
	if *runtimeMetrics != "" {
		dumpRuntimeMetrics(*runtimeMetrics)
	}
	if errors > 0 {
		os.Exit(1)
	}
}

// writeHeapProfile snapshots the heap (after a GC, so live objects
// dominate) into path.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fail(err)
	}
}

// dumpRuntimeMetrics writes every runtime/metrics sample as one
// "name value" line; histogram-kinded metrics report their total count.
func dumpRuntimeMetrics(path string) {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)
	f, err := os.Create(path)
	if err != nil {
		fail(err)
		return
	}
	defer f.Close()
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			fmt.Fprintf(f, "%s %d\n", s.Name, s.Value.Uint64())
		case metrics.KindFloat64:
			fmt.Fprintf(f, "%s %g\n", s.Name, s.Value.Float64())
		case metrics.KindFloat64Histogram:
			var total uint64
			for _, c := range s.Value.Float64Histogram().Counts {
				total += c
			}
			fmt.Fprintf(f, "%s histogram-count %d\n", s.Name, total)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	errors++
}

func header(title string) {
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
}

func table1(epnet.EvalConfig) {
	header("Table 1 — topology power at fixed bisection bandwidth (32k hosts)")
	t := epnet.Table1()
	fmt.Printf("%-34s  %14s  %14s\n", "parameter", "Folded Clos", "FBFLY (8,5)")
	fmt.Printf("%-34s  %14d  %14d\n", "hosts", t.Clos.Hosts, t.FBFLY.Hosts)
	fmt.Printf("%-34s  %11.0f Tb/s %11.0f Tb/s\n", "bisection bandwidth",
		t.Clos.BisectionGbps/1000, t.FBFLY.BisectionGbps/1000)
	fmt.Printf("%-34s  %14d  %14d\n", "electrical links", t.Clos.ElectricalLinks, t.FBFLY.ElectricalLinks)
	fmt.Printf("%-34s  %14d  %14d\n", "optical links", t.Clos.OpticalLinks, t.FBFLY.OpticalLinks)
	fmt.Printf("%-34s  %14d  %14d\n", "switch chips", t.Clos.SwitchChips, t.FBFLY.SwitchChips)
	fmt.Printf("%-34s  %12.0f W  %12.0f W\n", "total power", t.Clos.TotalWatts, t.FBFLY.TotalWatts)
	fmt.Printf("%-34s  %14.2f  %14.2f\n", "power per bisection Gb/s (W)", t.Clos.WattsPerGbps, t.FBFLY.WattsPerGbps)
	fmt.Printf("\nFBFLY saves %.0f W -> $%.2fM over four years (paper: 409,600 W, ~$1.6M)\n",
		t.SavingsWatts, t.SavingsDollars/1e6)
	fmt.Printf("always-on FBFLY four-year energy cost: $%.2fM (paper: $2.89M)\n",
		t.FBFLYBaselineDollars/1e6)
	fmt.Printf("paper column check: Clos {49152, 65536, 8235, 1146880, 1.75}, FBFLY {47104, 43008, 4096, 737280, 1.13}\n")
}

func fig1(epnet.EvalConfig) {
	header("Figure 1 — server vs network power (32k servers x 250 W)")
	f := epnet.Figure1()
	for _, s := range f.Scenarios {
		fmt.Printf("%-62s servers %8.0f kW  network %7.0f kW  (network = %4.1f%%)\n",
			s.Name, s.ServerWatts/1000, s.NetworkWatts/1000, s.NetworkFraction*100)
	}
	fmt.Printf("\nenergy-proportional network saves %.0f kW = $%.2fM over four years (paper: 975 kW, ~$3.8M)\n",
		f.NetworkSavingsWatts/1000, f.NetworkSavingsDollars/1e6)
}

func fig5(epnet.EvalConfig) {
	header("Figure 5 — dynamic range of an InfiniBand-style switch chip")
	points, idle, off := epnet.Figure5()
	fmt.Printf("%-10s  %18s  %18s\n", "rate", "measured power", "ideal power")
	for _, p := range points {
		fmt.Printf("%7.1fG   %17.0f%%  %17.2f%%\n", p.RateGbps, p.RelativePower*100, p.IdealPower*100)
	}
	fmt.Printf("idle floor: %.0f%%   power-off residue: %.0f%%\n", idle*100, off*100)
	fmt.Printf("paper anchors: slowest mode 42%% of full power ('nearly 60%% savings'); idle just below it\n")
}

func fig6(epnet.EvalConfig) {
	header("Figure 6 — ITRS bandwidth trends (reconstruction)")
	fmt.Printf("%-6s  %16s  %16s  %14s\n", "year", "I/O BW (Tb/s)", "off-chip (Gb/s)", "pins (1000s)")
	for _, p := range epnet.Figure6() {
		if (p.Year-2008)%3 != 0 {
			continue
		}
		fmt.Printf("%-6d  %16.1f  %16.1f  %14.1f\n", p.Year, p.IOBandwidthTb, p.OffChipGbps, p.PackagePinsK)
	}
	fmt.Printf("paper anchors: 160 Tb/s and 70 Gb/s at the right edge\n")
}

func printShares(label string, shares map[float64]float64) {
	rates := make([]float64, 0, len(shares))
	for r := range shares {
		rates = append(rates, r)
	}
	sort.Float64s(rates)
	fmt.Printf("%-14s", label)
	for _, r := range rates {
		fmt.Printf("  %5.1fG:%5.1f%%", r, shares[r]*100)
	}
	fmt.Println()
}

func fig7(e epnet.EvalConfig) {
	header("Figure 7 — fraction of time at each link speed (Search, 50% target, 1us reactivation)")
	res, err := epnet.Figure7(e)
	if err != nil {
		fail(err)
		return
	}
	printShares("(a) paired", res.Paired)
	printShares("(b) indep", res.Independent)
	fast := func(m map[float64]float64) float64 { return m[10] + m[20] + m[40] }
	fmt.Printf("\ntime at fast speeds (>=10G): paired %.1f%% vs independent %.1f%%\n",
		fast(res.Paired)*100, fast(res.Independent)*100)
	fmt.Printf("paper: independent control 'nearly halves the fraction of time spent at the faster speeds'\n")
}

func fig8(e epnet.EvalConfig) {
	header("Figure 8 — network power vs always-on baseline")
	rows, err := epnet.Figure8(e)
	if err != nil {
		fail(err)
		return
	}
	fmt.Printf("%-9s  %21s  %21s  %10s  %22s\n", "", "8a measured channels", "8b ideal channels", "ideal", "added mean latency")
	fmt.Printf("%-9s  %10s  %9s  %10s  %9s  %10s  %10s  %10s\n",
		"workload", "paired", "indep", "paired", "indep", "bound", "paired", "indep")
	for _, r := range rows {
		fmt.Printf("%-9s  %9.1f%%  %8.1f%%  %9.1f%%  %8.1f%%  %9.1f%%  %10v  %10v\n",
			epnet.WorkloadLabel(r.Workload),
			r.MeasuredPaired*100, r.MeasuredIndependent*100,
			r.IdealPaired*100, r.IdealIndependent*100,
			r.IdealBound*100,
			r.AddedMeanLatency.Round(time.Microsecond),
			r.AddedMeanLatencyIndep.Round(time.Microsecond))
	}
	fmt.Printf("\npaper: ideal+independent achieves 36/15/17%% for Uniform/Advert/Search (bounds 23/5/6%%);\n")
	fmt.Printf("       measured channels floor at ~42-55%%; added latency 10-50us at 50%% target\n")
	for _, r := range rows {
		if r.Workload == epnet.WorkloadSearch {
			w, d := epnet.SavingsProjection(r.IdealIndependent)
			fmt.Printf("full-scale projection (Search, ideal+independent): %.0f kW saved = $%.2fM over four years (paper: ~$2.4M)\n",
				w/1000, d/1e6)
		}
	}
}

func fig9a(e epnet.EvalConfig) {
	header("Figure 9a — added mean latency vs target channel utilization (1us reactivation, paired)")
	rows, err := epnet.Figure9a(e)
	if err != nil {
		fail(err)
		return
	}
	fmt.Printf("%-9s  %8s  %16s  %16s  %12s\n", "workload", "target", "added mean", "baseline mean", "ideal power")
	for _, r := range rows {
		fmt.Printf("%-9s  %7.0f%%  %16v  %16v  %11.1f%%\n",
			epnet.WorkloadLabel(r.Workload), r.Target*100,
			r.AddedMean.Round(time.Microsecond), r.BaseMean.Round(time.Microsecond),
			r.RelPowerID*100)
	}
	fmt.Printf("\npaper: latency increase grows with target; at 50%% the increase is only 10-50us\n")
}

func fig9b(e epnet.EvalConfig) {
	header("Figure 9b — added mean latency vs reactivation time (50% target, paired, epoch=10x)")
	rows, err := epnet.Figure9b(e)
	if err != nil {
		fail(err)
		return
	}
	fmt.Printf("%-9s  %14s  %16s  %12s\n", "workload", "reactivation", "added mean", "ideal power")
	for _, r := range rows {
		fmt.Printf("%-9s  %14v  %16v  %11.1f%%\n",
			epnet.WorkloadLabel(r.Workload), r.Reactivation,
			r.AddedMean.Round(time.Microsecond), r.RelPowerID*100)
	}
	fmt.Printf("\npaper: ~1ms added at 10us reactivation, several ms at 100us; power savings shrink as the\n")
	fmt.Printf("       epoch grows (especially for Uniform); the technique needs reactivation < 10us\n")
}

func policies(e epnet.EvalConfig) {
	header("Policy ablation (§5.2 better heuristics) — Search workload")
	rows, err := epnet.PolicyAblation(e, epnet.WorkloadSearch)
	if err != nil {
		fail(err)
		return
	}
	fmt.Printf("%-14s  %12s  %12s  %14s  %10s  %12s\n",
		"policy", "measured", "ideal", "mean latency", "reconfigs", "backlog (B)")
	for _, r := range rows {
		fmt.Printf("%-14s  %11.1f%%  %11.1f%%  %14v  %10d  %12d\n",
			r.Policy, r.RelPowerM*100, r.RelPowerID*100,
			r.MeanLat.Round(time.Microsecond), r.Reconfigs, r.Backlog)
	}
	fmt.Printf("\npaper: always-slowest = 42%% measured (6.1%% ideal) but fails to keep up (growing backlog)\n")
}

func dyntopo(e epnet.EvalConfig) {
	header("Dynamic topologies (§5.1) — Advert workload, rate tuning + link power-off")
	rows, err := epnet.DynTopoExperiment(e, epnet.WorkloadAdvert)
	if err != nil {
		fail(err)
		return
	}
	fmt.Printf("%-32s  %12s  %12s  %10s  %14s  %12s\n",
		"configuration", "measured", "ideal", "off share", "mean latency", "transitions")
	for _, r := range rows {
		fmt.Printf("%-32s  %11.1f%%  %11.1f%%  %9.1f%%  %14v  %12d\n",
			r.Name, r.RelPowerM*100, r.RelPowerID*100, r.OffShare*100,
			r.MeanLat.Round(time.Microsecond), r.Transitions)
	}
	fmt.Printf("\npaper: powering off saves little on measured chips (Figure 5) but is a 'fertile area' with\n")
	fmt.Printf("       a true power-off state; the FBFLY degrades gracefully to a torus-like ring\n")
}

func routingAblation(e epnet.EvalConfig) {
	header("Routing ablation — adaptive vs dimension-order with EP links (permutation, 30% load)")
	rows, err := epnet.RoutingAblation(e, epnet.WorkloadPermutation)
	if err != nil {
		fail(err)
		return
	}
	fmt.Printf("%-10s  %14s  %14s  %12s  %12s\n", "routing", "mean latency", "p99 latency", "ideal power", "backlog (B)")
	for _, r := range rows {
		fmt.Printf("%-10s  %14v  %14v  %11.1f%%  %12d\n",
			r.Routing, r.MeanLat.Round(time.Microsecond), r.P99Lat.Round(time.Microsecond),
			r.RelPowerID*100, r.Backlog)
	}
	fmt.Printf("\npaper (§6): 'a switch with sufficient radix, routing, and congestion-sensing capabilities'\n")
	fmt.Printf("is what makes the FBFLY viable — without adaptivity, traffic cannot steer around\n")
	fmt.Printf("reconfiguring or detuned links\n")
}

func resilience(e epnet.EvalConfig) {
	header("Link-failure resilience (§1 failure domains) — Search, abrupt failures, no drain")
	rows, err := epnet.Resilience(e, epnet.WorkloadSearch, []int{0, 2, 4, 8})
	if err != nil {
		fail(err)
		return
	}
	fmt.Printf("%-14s  %12s  %14s  %14s\n", "failed links", "delivered", "mean latency", "p99 latency")
	for _, r := range rows {
		fmt.Printf("%-14d  %11.1f%%  %14v  %14v\n",
			r.FailedLinks, r.DeliveryRate*100,
			r.MeanLat.Round(time.Microsecond), r.P99Lat.Round(time.Microsecond))
	}
	fmt.Printf("\npaper (§1): decoupling the failure domain from the bandwidth domain — the FBFLY's path\n")
	fmt.Printf("diversity absorbs abrupt link failures with graceful latency degradation and no loss\n")
}

func faultgrid(e epnet.EvalConfig) {
	header("Fault-injection grid — EP policies vs baseline under seeded-random faults (Uniform)")
	policies := []epnet.PolicyKind{epnet.PolicyBaseline, epnet.PolicyHalveDouble, epnet.PolicyQueueAware}
	rates := []float64{1, 5, 20}
	rows, err := epnet.ResilienceGrid(e, epnet.WorkloadUniform, policies, rates)
	if err != nil {
		fail(err)
		return
	}
	fmt.Printf("%-14s  %10s  %11s  %14s  %12s  %12s  %9s  %9s\n",
		"policy", "faults/ms", "delivered", "mean latency", "added mean", "ideal power", "failures", "degrades")
	for _, r := range rows {
		fmt.Printf("%-14s  %10.1f  %10.2f%%  %14v  %12v  %11.1f%%  %9d  %9d\n",
			r.Policy, r.FaultRate, r.DeliveredFrac*100,
			r.MeanLat.Round(time.Microsecond), r.AddedMean.Round(100*time.Nanosecond),
			r.RelPowerID*100, r.LinkFailures, r.Degradations)
	}
	fmt.Printf("\nfaults are scheduled on the simulation heap from the run seed, so every policy rides\n")
	fmt.Printf("through the identical failure history: delivery differences are the policy's doing, not\n")
	fmt.Printf("luck — detuned links drop the same packets a full-rate fabric would, paying only latency\n")
}

func serdes(epnet.EvalConfig) {
	header("Channel design exploration (§6 challenge 2 / ref [10]) — energy per bit vs lane rate")
	for _, ch := range []epnet.SerDesChannel{
		epnet.SerDesShortCopper, epnet.SerDesLongCopper, epnet.SerDesOptical,
	} {
		points, best, err := epnet.SerDesSweep(ch)
		if err != nil {
			fail(err)
			return
		}
		fmt.Printf("%s:\n", ch)
		fmt.Printf("  %-10s  %10s  %10s  %8s  %12s\n", "lane Gb/s", "lane mW", "pJ/bit", "40G port", "feasible")
		for _, p := range points {
			feas := "yes"
			if !p.Feasible {
				feas = "no (loss budget)"
			}
			mark := " "
			if p.LaneGbps == best.LaneGbps {
				mark = "*"
			}
			fmt.Printf(" %s%-10g  %10.1f  %10.2f  %5.1f W  %12s\n",
				mark, p.LaneGbps, p.LaneMW, p.PJPerBit, p.PortMW/1000, feas)
		}
		fmt.Printf("  optimum: %g Gb/s lanes at %.2f pJ/bit\n\n", best.LaneGbps, best.PJPerBit)
	}
	fmt.Printf("paper (§6): 'high-speed channel designs will evolve to be more energy proportional' —\n")
	fmt.Printf("energy/bit is U-shaped in lane rate, and lossier channels prefer slower lanes, so the\n")
	fmt.Printf("per-medium optimum differs (after Hatamkhani & Yang, ref [10])\n")
}

func oversub(e epnet.EvalConfig) {
	header("Over-subscription sweep (§2.1.1) — concentration c on a fixed switch fabric (Search)")
	cs := []int{e.K / 2, e.K, e.K * 3 / 2, e.K * 2}
	rows, err := epnet.OverSubscription(e, epnet.WorkloadSearch, cs)
	if err != nil {
		fail(err)
		return
	}
	fmt.Printf("%-4s  %6s  %8s  %14s  %14s  %12s  %12s\n",
		"c", "hosts", "c:k", "mean latency", "p99 latency", "ideal power", "W per host")
	for _, r := range rows {
		fmt.Printf("%-4d  %6d  %7.2f:1  %14v  %14v  %11.1f%%  %12.1f\n",
			r.C, r.Hosts, r.Ratio,
			r.MeanLat.Round(time.Microsecond), r.P99Lat.Round(time.Microsecond),
			r.RelPowerID*100, r.WattsPerHost)
	}
	fmt.Printf("\npaper (§2.1.1): modest over-subscription 'remains a practical and pragmatic approach to\n")
	fmt.Printf("reduce power (as well as capital expenditures)' — per-host watts fall as c grows, at a\n")
	fmt.Printf("latency cost that stays small while the workload's duty cycle is low\n")
}

func topocompare(e epnet.EvalConfig) {
	header("Simulated topology comparison — FBFLY vs non-blocking fat tree, EP links (Search)")
	rows, err := epnet.TopologyComparison(e, epnet.WorkloadSearch)
	if err != nil {
		fail(err)
		return
	}
	fmt.Printf("%-10s  %6s  %9s  %9s  %14s  %12s  %10s\n",
		"topology", "hosts", "switches", "channels", "mean latency", "ideal power", "asymmetry")
	for _, r := range rows {
		fmt.Printf("%-10s  %6d  %9d  %9d  %14v  %11.1f%%  %10.2f\n",
			r.Topology, r.Hosts, r.Switches, r.Channels,
			r.MeanLat.Round(time.Microsecond), r.RelPowerID*100, r.Asymmetry)
	}
	fmt.Printf("\npaper (§3.3): dynamic range works on a folded Clos too, but the FBFLY provides the same\n")
	fmt.Printf("service with less switching hardware (Table 1) and makes the tuning decision local\n")
}

func reactivation(e epnet.EvalConfig) {
	header("Reactivation model ablation (§3.1/§5.2) — Search")
	rows, err := epnet.ReactivationAblation(e, epnet.WorkloadSearch)
	if err != nil {
		fail(err)
		return
	}
	fmt.Printf("%-36s  %14s  %12s  %10s\n", "model", "mean latency", "ideal power", "reconfigs")
	for _, r := range rows {
		fmt.Printf("%-36s  %14v  %11.1f%%  %10d\n",
			r.Name, r.MeanLat.Round(time.Microsecond), r.RelPowerID*100, r.Reconfigs)
	}
	fmt.Printf("\npaper (§5.2): better algorithms should 'take into account the difference in link\n")
	fmt.Printf("resynchronization latency' — most halve/double transitions change only the signaling\n")
	fmt.Printf("rate, paying just the ~100ns digital CDR re-lock\n")
}
