// Command epsim runs one energy-proportional datacenter network
// simulation and prints its measurements.
//
// Examples:
//
//	epsim -workload search -policy halve-double -independent
//	epsim -k 15 -n 3 -c 15 -workload uniform -duration 5ms
//	epsim -policy baseline -workload advert
//	epsim -scenario diurnal
//	epsim -scenario ops/monday.json -check
//
// Flags shared with the other commands live in internal/cli; epsim adds
// only its output controls (-json, -hist, -attribution, ...) and the
// -check lint mode, which validates a config or scenario without
// running it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"epnet"
	"epnet/internal/cli"
)

func main() {
	var loader cli.Loader
	var outputs cli.Outputs
	loader.Bind(flag.CommandLine, epnet.DefaultConfig())
	outputs.BindOutputs(flag.CommandLine, "epsim", false)

	jsonOut := flag.Bool("json", false, "emit the full result as JSON")
	hist := flag.Bool("hist", false, "print the packet latency histogram")
	powerTrace := flag.Duration("power-trace", 0, "sample instantaneous power at this interval (0 = off)")
	attribution := flag.Bool("attribution", false, "print the per-link energy attribution (top consumers)")
	profile := flag.Bool("profile", false, "self-profile the engine and print the critical-path report (per-shard stalls, window efficiency, barrier overhead)")
	check := flag.Bool("check", false, "validate the config (and -scenario, if given) and exit without running")
	listScenarios := flag.Bool("list-scenarios", false, "print the embedded scenario library names and exit")
	verbose := flag.Bool("v", false, "print the shard partition (cut quality, lookahead range) at startup")
	flag.Parse()

	if *listScenarios {
		for _, name := range epnet.ScenarioNames() {
			fmt.Println(name)
		}
		return
	}

	cfg, err := loader.Resolve()
	if err != nil {
		fmt.Fprintln(os.Stderr, "epsim:", err)
		os.Exit(1)
	}
	// epsim-only config flags: apply only when explicitly set, so a
	// scenario's config block keeps its values otherwise. Their defaults
	// match the zero Config, so plain invocations are unchanged.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "power-trace":
			cfg.PowerSampleEvery = *powerTrace
		case "attribution":
			cfg.Attribution = *attribution
		case "profile":
			cfg.Profile = *profile
		}
	})
	if err := outputs.Stamp(&cfg); err != nil {
		fmt.Fprintln(os.Stderr, "epsim:", err)
		os.Exit(1)
	}

	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "epsim:", err)
		os.Exit(1)
	}
	if *check {
		fmt.Printf("config ok : %s k=%d n=%d c=%d workload=%s policy=%s duration=%v\n",
			cfg.Topology, cfg.K, cfg.N, cfg.C, cfg.Workload, cfg.Policy, cfg.Duration)
		if s := cfg.Scenario; s != nil {
			fmt.Printf("scenario  : %q — %d phases, total %v\n", s.Name, len(s.Phases), s.TotalDuration())
			for _, ph := range s.Phases {
				traffic := "(none)"
				if len(ph.Traffic) > 0 {
					names := make([]string, len(ph.Traffic))
					for i, tr := range ph.Traffic {
						names[i] = tr.Workload
					}
					traffic = names[0]
					for _, nm := range names[1:] {
						traffic += "+" + nm
					}
				}
				fmt.Printf("  %-16s %-10v traffic=%s policy-switch=%v chaos=%v\n",
					ph.Name, ph.Duration, traffic, ph.Policy != nil, ph.Chaos != nil)
			}
		}
		return
	}
	if *verbose {
		part, err := epnet.Partition(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "epsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "epsim: %v\n", part)
		if m := part.Lookahead; len(m) > 1 && len(m) <= 8 {
			fmt.Fprintln(os.Stderr, "epsim: lookahead matrix (rows=src shard):")
			for i, row := range m {
				fmt.Fprintf(os.Stderr, "epsim:   %d:", i)
				for _, v := range row {
					if v < 0 {
						fmt.Fprint(os.Stderr, "     -")
						continue
					}
					fmt.Fprintf(os.Stderr, " %v", v)
				}
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	// SIGINT/SIGTERM cancel the run cooperatively at the next epoch
	// boundary: the run flushes every output it opened (-metrics-out,
	// -profile-out, -flows-out, ...) before returning, and the inspector
	// is shut down so in-flight scrapes finish cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	res, err := epnet.RunContext(ctx, cfg)
	stop()
	if insp := cfg.Inspector; insp != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if serr := insp.Shutdown(sctx); serr != nil {
			fmt.Fprintln(os.Stderr, "epsim:", serr)
		}
		cancel()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "epsim:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "epsim:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("network   : %s k=%d n=%d c=%d — %d hosts, %d switches, %d channels\n",
		cfg.Topology, cfg.K, cfg.N, cfg.C, res.Hosts, res.Switches, res.Channels)
	fmt.Printf("workload  : %s (avg util measured %.2f%%)\n", cfg.Workload, res.AvgUtil*100)
	fmt.Printf("policy    : %s target=%.0f%% paired=%v reactivation=%v epoch=%v dyntopo=%v\n",
		cfg.Policy, cfg.TargetUtil*100, !cfg.Independent, cfg.Reactivation, cfg.Epoch, cfg.DynTopo)
	fmt.Printf("latency   : mean=%v p50=%v p99=%v max=%v (%d packets)\n",
		res.MeanLatency, res.P50Latency, res.P99Latency, res.MaxLatency, res.Packets)
	fmt.Printf("power     : measured-profile=%.1f%%  ideal-channels=%.1f%%  (ideal bound=%.1f%%)\n",
		res.RelPowerMeasured*100, res.RelPowerIdeal*100, res.AvgUtil*100)

	rates := make([]float64, 0, len(res.RateShare))
	for r := range res.RateShare {
		rates = append(rates, r)
	}
	sort.Float64s(rates)
	fmt.Printf("rate share:")
	for _, r := range rates {
		fmt.Printf("  %g:%.1f%%", r, res.RateShare[r]*100)
	}
	if res.OffShare > 0 {
		fmt.Printf("  off:%.1f%%", res.OffShare*100)
	}
	fmt.Println()
	fmt.Printf("traffic   : injected=%d delivered=%d backlog=%dB reconfigs=%d dyn-transitions=%d\n",
		res.InjectedPackets, res.DeliveredPackets, res.BacklogBytes,
		res.Reconfigurations, res.DynTransitions)
	if res.Faults.Total() > 0 || res.DroppedPackets > 0 {
		fmt.Printf("faults    : link-fail=%d link-repair=%d sw-fail=%d sw-repair=%d degrade=%d restore=%d\n",
			res.Faults.LinkFailures, res.Faults.LinkRepairs,
			res.Faults.SwitchFailures, res.Faults.SwitchRepairs,
			res.Faults.LaneDegradations, res.Faults.LaneRestores)
		fmt.Printf("delivery  : %.3f%% dropped=%d (%dB)\n",
			res.DeliveredFraction*100, res.DroppedPackets, res.DroppedBytes)
	}
	fmt.Printf("asymmetry : %.2f  estimated power: %.0f W (%.1f J over the window)\n",
		res.Asymmetry, res.EstimatedWatts, res.EnergyJoules)
	if len(res.PhaseScores) > 0 {
		fmt.Println("scorecard (per phase):")
		for _, ps := range res.PhaseScores {
			fmt.Printf("  %-16s %9v..%-9v delivered=%-9d frac=%6.2f%% mean=%-10v p99=%-10v util=%5.1f%% reconfigs=%-4d faults=%d\n",
				ps.Phase, ps.Start, ps.End, ps.DeliveredPackets,
				ps.DeliveredFraction*100, ps.MeanLatency, ps.P99Latency,
				ps.AvgUtil*100, ps.Reconfigurations, ps.FaultEvents)
		}
	}
	if *attribution && len(res.Attribution) > 0 {
		top := make([]epnet.LinkAttribution, len(res.Attribution))
		copy(top, res.Attribution)
		sort.Slice(top, func(i, j int) bool {
			if top[i].EnergyJoules != top[j].EnergyJoules {
				return top[i].EnergyJoules > top[j].EnergyJoules
			}
			return top[i].Link < top[j].Link
		})
		limit := 10
		if len(top) < limit {
			limit = len(top)
		}
		fmt.Printf("attribution (top %d of %d channels by energy):\n", limit, len(top))
		for _, la := range top[:limit] {
			fmt.Printf("  %-16s %-10s util=%5.1f%% relpower=%5.1f%% energy=%.3f J pkts=%d drops=%d\n",
				la.Link, la.Class, la.Utilization*100, la.RelPower*100,
				la.EnergyJoules, la.Packets, la.Drops)
		}
	}
	if *hist && len(res.LatencyCDF) > 0 {
		fmt.Println("latency histogram (cumulative):")
		var cum int64
		maxCount := res.Packets
		for _, b := range res.LatencyCDF {
			cum += b.Count
			frac := float64(cum) / float64(maxCount)
			fmt.Printf("  <= %-12v %6.1f%%  %s\n", b.Upper, frac*100, bars(frac, 50))
		}
	}
	if len(res.PowerTrace) > 0 {
		fmt.Println("power trace (measured profile vs offered load):")
		for _, s := range res.PowerTrace {
			fmt.Printf("  %-10v power %5.1f%% %-30s load %5.1f%% %s\n",
				s.At, s.Measured*100, bars(s.Measured, 30),
				s.Util*100, bars(s.Util, 30))
		}
	}
	if res.FlowTrace != nil {
		if err := res.FlowTrace.WriteReport(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "epsim:", err)
			os.Exit(1)
		}
	}
	if res.Profile != nil {
		if err := res.Profile.WriteReport(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "epsim:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("wall time : %v\n", elapsed.Round(time.Millisecond))
}

// bars renders a simple proportional bar.
func bars(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
