// Command epsim runs one energy-proportional datacenter network
// simulation and prints its measurements.
//
// Examples:
//
//	epsim -workload search -policy halve-double -independent
//	epsim -k 15 -n 3 -c 15 -workload uniform -duration 5ms
//	epsim -policy baseline -workload advert
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"epnet"
)

func main() {
	cfg := epnet.DefaultConfig()

	preset := flag.String("preset", "", "start from a named preset ("+strings.Join(epnet.PresetNames(), " | ")+"); other flags override it")
	topology := flag.String("topology", string(cfg.Topology), "topology: fbfly | fattree")
	k := flag.Int("k", cfg.K, "FBFLY radix per dimension (or fat-tree leaf/spine count)")
	n := flag.Int("n", cfg.N, "FBFLY n (dimensions incl. host dimension)")
	c := flag.Int("c", cfg.C, "concentration: hosts per switch")
	workload := flag.String("workload", string(cfg.Workload), "workload: uniform | search | advert | permutation | hotspot | tornado | trace")
	tracePath := flag.String("trace", "", "trace file for -workload trace (see tracegen)")
	load := flag.Float64("load", 0, "override workload average utilization (0 = workload default)")
	policy := flag.String("policy", string(cfg.Policy), "policy: baseline | halve-double | min-max | hysteresis | static-min | queue-aware")
	routing := flag.String("routing", "adaptive", "routing: adaptive | dor")
	modeAware := flag.Bool("mode-aware", false, "mode-aware reactivation penalties (CDR vs lane retraining)")
	failLinks := flag.Int("fail-links", 0, "abruptly fail this many inter-switch link pairs mid-run")
	faults := flag.String("faults", "", `deterministic fault schedule, e.g. "50us fail-link s0p8; 400us repair-link s0p8"`)
	faultRate := flag.Float64("fault-rate", 0, "seeded-random faults per simulated millisecond")
	faultMTTR := flag.Duration("fault-mttr", 0, "mean time to repair for -fault-rate faults (default 200us)")
	target := flag.Float64("target", cfg.TargetUtil, "target channel utilization")
	independent := flag.Bool("independent", false, "tune unidirectional channels independently")
	react := flag.Duration("reactivation", cfg.Reactivation, "link reactivation time")
	epoch := flag.Duration("epoch", 0, "utilization epoch (default 10x reactivation)")
	warmup := flag.Duration("warmup", cfg.Warmup, "warmup before measurement")
	duration := flag.Duration("duration", cfg.Duration, "measurement window")
	seed := flag.Int64("seed", cfg.Seed, "random seed")
	shards := flag.Int("shards", cfg.Shards, "parallel simulation shards (0 = auto: one per CPU; 1 = serial; results are byte-identical)")
	dyntopo := flag.Bool("dyntopo", false, "enable the dynamic topology controller")
	jsonOut := flag.Bool("json", false, "emit the full result as JSON")
	hist := flag.Bool("hist", false, "print the packet latency histogram")
	powerTrace := flag.Duration("power-trace", 0, "sample instantaneous power at this interval (0 = off)")
	metricsOut := flag.String("metrics-out", "", "write the sampled metric time series to this file (CSV, or JSON Lines with a .jsonl extension)")
	sampleInterval := flag.Duration("sample-interval", 0, "metrics sampling period (default: one epoch)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON file (open in chrome://tracing or ui.perfetto.dev)")
	heatmapOut := flag.String("heatmap-out", "", "write the per-link utilization x time heatmap CSV to this file")
	histOut := flag.String("hist-out", "", "write the link-utilization histogram CSV (Fig 8 view) to this file")
	attribution := flag.Bool("attribution", false, "print the per-link energy attribution (top consumers)")
	profile := flag.Bool("profile", false, "self-profile the engine and print the critical-path report (per-shard stalls, window efficiency, barrier overhead)")
	profileOut := flag.String("profile-out", "", "write the engine self-profile to this file (JSON, or CSV with a .csv extension); implies -profile collection")
	verbose := flag.Bool("v", false, "print the shard partition (cut quality, lookahead range) at startup")
	listen := flag.String("listen", "", `serve live inspection HTTP on this address (e.g. ":9090" or "127.0.0.1:0"): /metrics, /snapshot, /profile, /debug/pprof/`)
	flag.Parse()

	// With -preset, only flags the user actually set override the
	// preset's values; without one, every flag applies (they default to
	// DefaultConfig, preserving the original behavior).
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if *preset != "" {
		p, err := epnet.Preset(*preset)
		if err != nil {
			fmt.Fprintln(os.Stderr, "epsim:", err)
			os.Exit(1)
		}
		cfg = p
	}
	apply := func(name string, set func()) {
		if *preset == "" || explicit[name] {
			set()
		}
	}
	apply("topology", func() { cfg.Topology = epnet.TopologyKind(*topology) })
	apply("k", func() { cfg.K = *k })
	apply("n", func() { cfg.N = *n })
	apply("c", func() { cfg.C = *c })
	apply("workload", func() { cfg.Workload = epnet.WorkloadKind(*workload) })
	apply("trace", func() { cfg.TracePath = *tracePath })
	apply("load", func() { cfg.Load = *load })
	apply("policy", func() { cfg.Policy = epnet.PolicyKind(*policy) })
	apply("routing", func() { cfg.Routing = epnet.RoutingKind(*routing) })
	apply("mode-aware", func() { cfg.ModeAwareReactivation = *modeAware })
	apply("fail-links", func() { cfg.FailLinks = *failLinks })
	apply("faults", func() { cfg.Faults = *faults })
	apply("fault-rate", func() { cfg.FaultRate = *faultRate })
	apply("fault-mttr", func() { cfg.FaultMTTR = *faultMTTR })
	apply("target", func() { cfg.TargetUtil = *target })
	apply("independent", func() { cfg.Independent = *independent })
	apply("reactivation", func() { cfg.Reactivation = *react })
	apply("epoch", func() { cfg.Epoch = *epoch })
	apply("warmup", func() { cfg.Warmup = *warmup })
	apply("duration", func() { cfg.Duration = *duration })
	apply("seed", func() { cfg.Seed = *seed })
	apply("shards", func() { cfg.Shards = *shards })
	apply("dyntopo", func() { cfg.DynTopo = *dyntopo })
	apply("power-trace", func() { cfg.PowerSampleEvery = *powerTrace })
	apply("metrics-out", func() { cfg.MetricsOut = *metricsOut })
	apply("sample-interval", func() { cfg.SampleInterval = *sampleInterval })
	apply("trace-out", func() { cfg.TraceOut = *traceOut })
	apply("heatmap-out", func() { cfg.HeatmapOut = *heatmapOut })
	apply("hist-out", func() { cfg.HistOut = *histOut })
	apply("attribution", func() { cfg.Attribution = *attribution })
	apply("profile", func() { cfg.Profile = *profile })
	apply("profile-out", func() { cfg.ProfileOut = *profileOut })

	if *listen != "" {
		insp, addr, err := epnet.StartInspector(*listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "epsim:", err)
			os.Exit(1)
		}
		cfg.Inspector = insp
		fmt.Fprintf(os.Stderr, "epsim: inspector listening on http://%s\n", addr)
	}

	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "epsim:", err)
		os.Exit(1)
	}
	if *verbose {
		part, err := epnet.Partition(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "epsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "epsim: %v\n", part)
		if m := part.Lookahead; len(m) > 1 && len(m) <= 8 {
			fmt.Fprintln(os.Stderr, "epsim: lookahead matrix (rows=src shard):")
			for i, row := range m {
				fmt.Fprintf(os.Stderr, "epsim:   %d:", i)
				for _, v := range row {
					if v < 0 {
						fmt.Fprint(os.Stderr, "     -")
						continue
					}
					fmt.Fprintf(os.Stderr, " %v", v)
				}
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	start := time.Now()
	res, err := epnet.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "epsim:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "epsim:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("network   : %s k=%d n=%d c=%d — %d hosts, %d switches, %d channels\n",
		cfg.Topology, cfg.K, cfg.N, cfg.C, res.Hosts, res.Switches, res.Channels)
	fmt.Printf("workload  : %s (avg util measured %.2f%%)\n", cfg.Workload, res.AvgUtil*100)
	fmt.Printf("policy    : %s target=%.0f%% paired=%v reactivation=%v epoch=%v dyntopo=%v\n",
		cfg.Policy, cfg.TargetUtil*100, !cfg.Independent, cfg.Reactivation, cfg.Epoch, cfg.DynTopo)
	fmt.Printf("latency   : mean=%v p50=%v p99=%v max=%v (%d packets)\n",
		res.MeanLatency, res.P50Latency, res.P99Latency, res.MaxLatency, res.Packets)
	fmt.Printf("power     : measured-profile=%.1f%%  ideal-channels=%.1f%%  (ideal bound=%.1f%%)\n",
		res.RelPowerMeasured*100, res.RelPowerIdeal*100, res.AvgUtil*100)

	rates := make([]float64, 0, len(res.RateShare))
	for r := range res.RateShare {
		rates = append(rates, r)
	}
	sort.Float64s(rates)
	fmt.Printf("rate share:")
	for _, r := range rates {
		fmt.Printf("  %g:%.1f%%", r, res.RateShare[r]*100)
	}
	if res.OffShare > 0 {
		fmt.Printf("  off:%.1f%%", res.OffShare*100)
	}
	fmt.Println()
	fmt.Printf("traffic   : injected=%d delivered=%d backlog=%dB reconfigs=%d dyn-transitions=%d\n",
		res.InjectedPackets, res.DeliveredPackets, res.BacklogBytes,
		res.Reconfigurations, res.DynTransitions)
	if res.Faults.Total() > 0 || res.DroppedPackets > 0 {
		fmt.Printf("faults    : link-fail=%d link-repair=%d sw-fail=%d sw-repair=%d degrade=%d restore=%d\n",
			res.Faults.LinkFailures, res.Faults.LinkRepairs,
			res.Faults.SwitchFailures, res.Faults.SwitchRepairs,
			res.Faults.LaneDegradations, res.Faults.LaneRestores)
		fmt.Printf("delivery  : %.3f%% dropped=%d (%dB)\n",
			res.DeliveredFraction*100, res.DroppedPackets, res.DroppedBytes)
	}
	fmt.Printf("asymmetry : %.2f  estimated power: %.0f W (%.1f J over the window)\n",
		res.Asymmetry, res.EstimatedWatts, res.EnergyJoules)
	if *attribution && len(res.Attribution) > 0 {
		top := make([]epnet.LinkAttribution, len(res.Attribution))
		copy(top, res.Attribution)
		sort.Slice(top, func(i, j int) bool {
			if top[i].EnergyJoules != top[j].EnergyJoules {
				return top[i].EnergyJoules > top[j].EnergyJoules
			}
			return top[i].Link < top[j].Link
		})
		limit := 10
		if len(top) < limit {
			limit = len(top)
		}
		fmt.Printf("attribution (top %d of %d channels by energy):\n", limit, len(top))
		for _, la := range top[:limit] {
			fmt.Printf("  %-16s %-10s util=%5.1f%% relpower=%5.1f%% energy=%.3f J pkts=%d drops=%d\n",
				la.Link, la.Class, la.Utilization*100, la.RelPower*100,
				la.EnergyJoules, la.Packets, la.Drops)
		}
	}
	if *hist && len(res.LatencyCDF) > 0 {
		fmt.Println("latency histogram (cumulative):")
		var cum int64
		maxCount := res.Packets
		for _, b := range res.LatencyCDF {
			cum += b.Count
			frac := float64(cum) / float64(maxCount)
			fmt.Printf("  <= %-12v %6.1f%%  %s\n", b.Upper, frac*100, bars(frac, 50))
		}
	}
	if len(res.PowerTrace) > 0 {
		fmt.Println("power trace (measured profile vs offered load):")
		for _, s := range res.PowerTrace {
			fmt.Printf("  %-10v power %5.1f%% %-30s load %5.1f%% %s\n",
				s.At, s.Measured*100, bars(s.Measured, 30),
				s.Util*100, bars(s.Util, 30))
		}
	}
	if res.Profile != nil {
		if err := res.Profile.WriteReport(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "epsim:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("wall time : %v\n", elapsed.Round(time.Millisecond))
}

// bars renders a simple proportional bar.
func bars(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
