// Command sweep runs a one-dimensional parameter sweep and emits CSV,
// for regenerating the paper's figures with any plotting tool.
//
// Supported sweep axes:
//
//	target       target channel utilization (Figure 9a's x axis)
//	reactivation link reactivation time, epoch = 10x (Figure 9b's x axis)
//	load         workload average utilization
//	radix        FBFLY k (with c = k, n fixed)
//	fault-rate   seeded-random fault events per simulated millisecond
//
// Examples:
//
//	sweep -x target -values 0.25,0.5,0.75 -workload search
//	sweep -x reactivation -values 100ns,1us,10us -workload uniform -o fig9b.csv
//	sweep -x load -values 0.02,0.05,0.1,0.2 -workload uniform -independent
//	sweep -x fault-rate -values 0,0.2,0.5,1 -workload uniform -policy baseline
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"epnet"
)

func main() {
	axis := flag.String("x", "target", "sweep axis: target | reactivation | load | radix | fault-rate")
	values := flag.String("values", "", "comma-separated axis values (durations for reactivation)")
	workload := flag.String("workload", "search", "workload")
	policy := flag.String("policy", "halve-double", "link control policy")
	independent := flag.Bool("independent", false, "independent channel control")
	k := flag.Int("k", 8, "FBFLY radix")
	n := flag.Int("n", 2, "FBFLY n")
	duration := flag.Duration("duration", 4*time.Millisecond, "measurement window")
	warmup := flag.Duration("warmup", time.Millisecond, "warmup")
	seed := flag.Int64("seed", 1, "seed")
	shards := flag.Int("shards", 0, "parallel shards within each simulation (0 = auto: one per CPU; 1 = serial; results are byte-identical)")
	faults := flag.String("faults", "", "deterministic fault schedule applied to every run")
	faultRate := flag.Float64("fault-rate", 0, "seeded-random faults per simulated ms applied to every run")
	faultMTTR := flag.Duration("fault-mttr", 0, "mean time to repair for random faults (default 200us)")
	out := flag.String("o", "", "output CSV file (default stdout)")
	par := flag.Int("parallel", runtime.NumCPU(), "max concurrent simulations (1 = serial; output is identical either way)")
	metricsOut := flag.String("metrics-out", "", "per-run metric time series base path; each row gets a numeric suffix (telemetry.csv -> telemetry.000.csv)")
	traceOut := flag.String("trace-out", "", "per-run Chrome trace base path, suffixed like -metrics-out")
	heatmapOut := flag.String("heatmap-out", "", "per-run utilization heatmap CSV base path, suffixed like -metrics-out")
	histOut := flag.String("hist-out", "", "per-run utilization histogram CSV base path, suffixed like -metrics-out")
	profileOut := flag.String("profile-out", "", "per-run engine self-profile base path (JSON, or CSV with a .csv extension), suffixed like -metrics-out")
	sampleInterval := flag.Duration("sample-interval", 0, "metrics sampling period (default: one epoch)")
	listen := flag.String("listen", "", `serve live inspection HTTP on this address (e.g. ":9090"); endpoints follow the most recently sampled run`)
	flag.Parse()

	if *values == "" {
		fail(fmt.Errorf("-values is required"))
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()

	header := []string{
		*axis, "mean_latency_us", "p99_latency_us", "rel_power_measured",
		"rel_power_ideal", "avg_util", "asymmetry", "reconfigs", "backlog_bytes",
		"delivered_frac", "dropped_pkts",
	}
	if err := cw.Write(header); err != nil {
		fail(err)
	}

	// Build the whole grid first, then fan the independent runs out
	// across -parallel workers; rows are emitted in input order.
	var raws []string
	var cfgs []epnet.Config
	for _, raw := range strings.Split(*values, ",") {
		raw = strings.TrimSpace(raw)
		cfg := epnet.NewConfig(epnet.TopoFBFLY,
			epnet.WithRadix(*k),
			epnet.WithDimensions(*n),
			epnet.WithWorkload(epnet.WorkloadKind(*workload)),
			epnet.WithPolicy(epnet.PolicyKind(*policy)),
			epnet.WithWindow(*warmup, *duration),
			epnet.WithSeed(*seed),
			epnet.WithShards(*shards),
			epnet.WithFaultSchedule(*faults),
			epnet.WithFaultRate(*faultRate, *faultMTTR))
		cfg.Independent = *independent

		switch *axis {
		case "target":
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				fail(err)
			}
			cfg.TargetUtil = v
		case "reactivation":
			d, err := time.ParseDuration(raw)
			if err != nil {
				fail(err)
			}
			cfg.Reactivation = d
			cfg.Epoch = 10 * d
			if min := 40 * cfg.Epoch; cfg.Duration < min {
				cfg.Duration = min
			}
		case "load":
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				fail(err)
			}
			cfg.Load = v
		case "radix":
			v, err := strconv.Atoi(raw)
			if err != nil {
				fail(err)
			}
			cfg.K, cfg.C = v, v
		case "fault-rate":
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				fail(err)
			}
			cfg.FaultRate = v
		default:
			fail(fmt.Errorf("unknown axis %q", *axis))
		}
		raws = append(raws, raw)
		cfgs = append(cfgs, cfg)
	}

	// Telemetry paths are assigned in row order before the fan-out, so
	// -parallel runs write identical files and the CSV stays untouched.
	telem := &epnet.TelemetryOpts{
		MetricsOut:     *metricsOut,
		TraceOut:       *traceOut,
		HeatmapOut:     *heatmapOut,
		HistOut:        *histOut,
		ProfileOut:     *profileOut,
		SampleInterval: *sampleInterval,
	}
	if *listen != "" {
		insp, addr, err := epnet.StartInspector(*listen)
		if err != nil {
			fail(err)
		}
		telem.Inspector = insp
		fmt.Fprintf(os.Stderr, "sweep: inspector listening on http://%s\n", addr)
	}
	telem.Apply(cfgs)

	results, err := epnet.RunGrid(cfgs, *par)
	if err != nil {
		fail(err)
	}
	for i, res := range results {
		row := []string{
			raws[i],
			fmt.Sprintf("%.3f", float64(res.MeanLatency.Nanoseconds())/1000),
			fmt.Sprintf("%.3f", float64(res.P99Latency.Nanoseconds())/1000),
			fmt.Sprintf("%.4f", res.RelPowerMeasured),
			fmt.Sprintf("%.4f", res.RelPowerIdeal),
			fmt.Sprintf("%.4f", res.AvgUtil),
			fmt.Sprintf("%.4f", res.Asymmetry),
			strconv.FormatInt(res.Reconfigurations, 10),
			strconv.FormatInt(res.BacklogBytes, 10),
			fmt.Sprintf("%.5f", res.DeliveredFraction),
			strconv.FormatInt(res.DroppedPackets, 10),
		}
		if err := cw.Write(row); err != nil {
			fail(err)
		}
		cw.Flush()
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
