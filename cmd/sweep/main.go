// Command sweep runs a one-dimensional parameter sweep and emits CSV,
// for regenerating the paper's figures with any plotting tool.
//
// Supported sweep axes:
//
//	target       target channel utilization (Figure 9a's x axis)
//	reactivation link reactivation time, epoch = 10x (Figure 9b's x axis)
//	load         workload average utilization
//	radix        FBFLY k (with c = k, n fixed)
//	fault-rate   seeded-random fault events per simulated millisecond
//
// The simulation flags are the shared internal/cli surface — including
// -preset and -scenario, so a sweep can hold a whole scenario fixed
// while varying one axis. Note -k sets only the radix; pass -c too (or
// use the radix axis) for balanced c = k shapes.
//
// Examples:
//
//	sweep -x target -values 0.25,0.5,0.75 -workload search
//	sweep -x reactivation -values 100ns,1us,10us -workload uniform -o fig9b.csv
//	sweep -x load -values 0.02,0.05,0.1,0.2 -workload uniform -independent
//	sweep -x fault-rate -values 0,0.2,0.5,1 -workload uniform -policy baseline
//	sweep -x target -values 0.25,0.5,0.75 -scenario diurnal
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"epnet"
	"epnet/internal/cli"
)

func main() {
	var loader cli.Loader
	var outputs cli.Outputs
	base := epnet.DefaultConfig()
	base.Warmup = time.Millisecond
	base.Duration = 4 * time.Millisecond
	loader.Bind(flag.CommandLine, base)
	outputs.BindOutputs(flag.CommandLine, "sweep", true)

	axis := flag.String("x", "target", "sweep axis: target | reactivation | load | radix | fault-rate")
	values := flag.String("values", "", "comma-separated axis values (durations for reactivation)")
	out := flag.String("o", "", "output CSV file (default stdout)")
	par := flag.Int("parallel", runtime.NumCPU(), "max concurrent simulations (1 = serial; output is identical either way)")
	flag.Parse()

	if *values == "" {
		fail(fmt.Errorf("-values is required"))
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()

	header := []string{
		*axis, "mean_latency_us", "p99_latency_us", "rel_power_measured",
		"rel_power_ideal", "avg_util", "asymmetry", "reconfigs", "backlog_bytes",
		"delivered_frac", "dropped_pkts",
	}
	if err := cw.Write(header); err != nil {
		fail(err)
	}

	// Build the whole grid first, then fan the independent runs out
	// across -parallel workers; rows are emitted in input order.
	var raws []string
	var cfgs []epnet.Config
	for _, raw := range strings.Split(*values, ",") {
		raw = strings.TrimSpace(raw)
		cfg, err := loader.Resolve()
		if err != nil {
			fail(err)
		}

		switch *axis {
		case "target":
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				fail(err)
			}
			cfg.TargetUtil = v
		case "reactivation":
			d, err := time.ParseDuration(raw)
			if err != nil {
				fail(err)
			}
			cfg.Reactivation = d
			cfg.Epoch = 10 * d
			if min := 40 * cfg.Epoch; cfg.Duration < min {
				cfg.Duration = min
			}
		case "load":
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				fail(err)
			}
			cfg.Load = v
		case "radix":
			v, err := strconv.Atoi(raw)
			if err != nil {
				fail(err)
			}
			cfg.K, cfg.C = v, v
		case "fault-rate":
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				fail(err)
			}
			cfg.FaultRate = v
		default:
			fail(fmt.Errorf("unknown axis %q", *axis))
		}
		raws = append(raws, raw)
		cfgs = append(cfgs, cfg)
	}

	// Telemetry paths are assigned in row order before the fan-out, so
	// -parallel runs write identical files and the CSV stays untouched.
	telem, err := outputs.Telemetry()
	if err != nil {
		fail(err)
	}
	telem.Apply(cfgs)

	results, err := epnet.RunGrid(cfgs, *par)
	if err != nil {
		fail(err)
	}
	for i, res := range results {
		row := []string{
			raws[i],
			fmt.Sprintf("%.3f", float64(res.MeanLatency.Nanoseconds())/1000),
			fmt.Sprintf("%.3f", float64(res.P99Latency.Nanoseconds())/1000),
			fmt.Sprintf("%.4f", res.RelPowerMeasured),
			fmt.Sprintf("%.4f", res.RelPowerIdeal),
			fmt.Sprintf("%.4f", res.AvgUtil),
			fmt.Sprintf("%.4f", res.Asymmetry),
			strconv.FormatInt(res.Reconfigurations, 10),
			strconv.FormatInt(res.BacklogBytes, 10),
			fmt.Sprintf("%.5f", res.DeliveredFraction),
			strconv.FormatInt(res.DroppedPackets, 10),
		}
		if err := cw.Write(row); err != nil {
			fail(err)
		}
		cw.Flush()
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
