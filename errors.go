package epnet

import (
	"errors"
	"fmt"
)

// Sentinel errors for configuration problems. Every error returned by
// Config.Validate (and therefore by Run for a bad configuration)
// matches ErrInvalidConfig with errors.Is; the enum-typo sentinels
// additionally match when the corresponding field names an unknown
// variant:
//
//	cfg.Policy = "magick"
//	_, err := epnet.Run(cfg)
//	errors.Is(err, epnet.ErrInvalidConfig) // true
//	errors.Is(err, epnet.ErrUnknownPolicy) // true
//	var fe *epnet.ConfigFieldError
//	errors.As(err, &fe)                    // fe.Field == "Policy"
var (
	// ErrInvalidConfig is the umbrella sentinel every configuration
	// error wraps.
	ErrInvalidConfig = errors.New("invalid configuration")
	// ErrUnknownTopology marks a Topology value outside the TopologyKind
	// enum.
	ErrUnknownTopology = errors.New("unknown topology")
	// ErrUnknownWorkload marks a Workload value outside the WorkloadKind
	// enum.
	ErrUnknownWorkload = errors.New("unknown workload")
	// ErrUnknownPolicy marks a Policy value outside the PolicyKind enum.
	ErrUnknownPolicy = errors.New("unknown policy")
	// ErrUnknownRouting marks a Routing value outside the RoutingKind
	// enum.
	ErrUnknownRouting = errors.New("unknown routing")
)

// ConfigFieldError reports which Config field failed validation and
// why. It wraps ErrInvalidConfig (and, for enum fields, the matching
// ErrUnknown* sentinel), so callers can route on errors.Is while
// errors.As recovers the offending field name for messages or forms.
type ConfigFieldError struct {
	// Field is the Go field name within Config ("Policy", "TargetUtil",
	// ...). Combined validations name the primary field.
	Field string
	// Reason is a human-readable description including the offending
	// value.
	Reason string

	sentinel error // optional extra sentinel (ErrUnknownPolicy, ...)
}

// Error implements error.
func (e *ConfigFieldError) Error() string {
	return fmt.Sprintf("epnet: invalid Config.%s: %s", e.Field, e.Reason)
}

// Unwrap exposes the wrapped sentinels to errors.Is/As.
func (e *ConfigFieldError) Unwrap() []error {
	if e.sentinel != nil {
		return []error{ErrInvalidConfig, e.sentinel}
	}
	return []error{ErrInvalidConfig}
}

// fieldErr builds a ConfigFieldError for field with a formatted reason.
func fieldErr(field, format string, args ...any) error {
	return &ConfigFieldError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// enumErr is fieldErr plus an extra sentinel for unknown enum values.
func enumErr(sentinel error, field, format string, args ...any) error {
	return &ConfigFieldError{
		Field:    field,
		Reason:   fmt.Sprintf(format, args...),
		sentinel: sentinel,
	}
}
