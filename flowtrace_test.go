package epnet

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// chaosFlow caches one chaos-scenario run with every packet traced; the
// scenario covers multi-phase traffic, injected faults, and real drops,
// so most flow-trace surfaces show up in a single simulation.
var chaosFlow struct {
	once sync.Once
	res  Result
	err  error
}

func chaosFlowRun(t *testing.T) Result {
	t.Helper()
	if testing.Short() {
		t.Skip("full scenario run")
	}
	chaosFlow.once.Do(func() {
		cfg, err := LoadScenario("chaos", DefaultConfig())
		if err != nil {
			chaosFlow.err = err
			return
		}
		cfg.Warmup = 50 * time.Microsecond
		cfg.Seed = 1
		cfg.FlowTrace = true
		cfg.FlowSample = 1
		chaosFlow.res, chaosFlow.err = Run(cfg)
	})
	if chaosFlow.err != nil {
		t.Fatal(chaosFlow.err)
	}
	if chaosFlow.res.FlowTrace == nil {
		t.Fatal("Config.FlowTrace set but Result.FlowTrace is nil")
	}
	return chaosFlow.res
}

// TestFlowTraceComponentsSumToLatency pins the accounting identity: for
// every traced packet with a complete hop log, the per-hop components
// sum exactly — in integer picoseconds — to the end-to-end latency.
func TestFlowTraceComponentsSumToLatency(t *testing.T) {
	ft := chaosFlowRun(t).FlowTrace
	if len(ft.Exemplars) == 0 {
		t.Fatal("no exemplar packets traced")
	}
	check := func(p *FlowPacket, what string) {
		if p.Truncated {
			return // hop log capped; later hops carry the remainder
		}
		var hops FlowBreakdown
		for _, h := range p.Hops {
			hops.add(h.Breakdown)
		}
		if hops != p.Breakdown {
			t.Errorf("%s pkt %d: hop breakdowns %+v != packet breakdown %+v",
				what, p.ID, hops, p.Breakdown)
		}
		if got := p.Breakdown.TotalPs(); got != p.LatencyPs {
			t.Errorf("%s pkt %d: components sum to %d ps, e2e latency is %d ps",
				what, p.ID, got, p.LatencyPs)
		}
	}
	for i := range ft.Exemplars {
		check(&ft.Exemplars[i], "exemplar")
	}
	for i := range ft.Dumps {
		if p := ft.Dumps[i].Packet; p != nil {
			check(p, "dump")
		}
	}
}

// TestFlowTracePhaseClasses pins the join between the flow classes and
// the scenario scorecard: same phases in order, traced counts stamped
// into PhaseScores, and the energy join populated where bytes flowed.
func TestFlowTracePhaseClasses(t *testing.T) {
	res := chaosFlowRun(t)
	ft := res.FlowTrace
	if len(ft.Classes) != len(res.PhaseScores) {
		t.Fatalf("classes = %d, phases = %d", len(ft.Classes), len(res.PhaseScores))
	}
	var traced, energized int64
	for i, c := range ft.Classes {
		ps := &res.PhaseScores[i]
		if c.Phase != ps.Phase {
			t.Errorf("class %d phase %q != scorecard phase %q", i, c.Phase, ps.Phase)
		}
		if ps.TracedPackets != c.Count || ps.TracedDropped != c.Drops {
			t.Errorf("phase %s: scorecard traced=%d/%d, class %d/%d",
				c.Phase, ps.TracedPackets, ps.TracedDropped, c.Count, c.Drops)
		}
		if ps.EnergyPJPerBit != c.EnergyPJPerBit {
			t.Errorf("phase %s: scorecard energy %v != class %v",
				c.Phase, ps.EnergyPJPerBit, c.EnergyPJPerBit)
		}
		traced += c.Count
		if c.EnergyPJPerBit > 0 {
			energized++
		}
	}
	if traced == 0 {
		t.Error("no packets classified into phases")
	}
	if energized == 0 {
		t.Error("energy join produced no per-phase pJ/bit")
	}
	var out bytes.Buffer
	if err := ft.WriteReport(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"flow trace:", "slowest traced packets:", "pJ/bit"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

// TestFlowTraceFlightRecorder pins the anomaly flight recorder: the
// first injected fault produces a dump whose recent-transmit ring only
// holds traffic from strictly before the fault instant.
func TestFlowTraceFlightRecorder(t *testing.T) {
	ft := chaosFlowRun(t).FlowTrace
	var faults, drops int
	for _, d := range ft.Dumps {
		switch {
		case strings.HasPrefix(d.Reason, "fault:"):
			faults++
			if d.Packet != nil {
				t.Errorf("fault dump %q carries a packet trace", d.Reason)
			}
			if len(d.Recent) == 0 {
				t.Errorf("fault dump %q has an empty flight ring", d.Reason)
			}
			for _, r := range d.Recent {
				if r.AtPs >= d.AtPs {
					t.Errorf("fault dump %q: transmit at %d ps not before fault at %d ps",
						d.Reason, r.AtPs, d.AtPs)
				}
			}
		case strings.HasPrefix(d.Reason, "drop:"):
			drops++
			if d.Packet == nil {
				t.Errorf("drop dump %q missing the dropped packet's trace", d.Reason)
			}
		default:
			t.Errorf("unrecognized dump reason %q", d.Reason)
		}
	}
	if faults == 0 {
		t.Error("chaos scenario injected faults but no fault dump was recorded")
	}
	if ft.Dropped > 0 && drops == 0 {
		t.Errorf("%d traced packets dropped but no drop dump was recorded", ft.Dropped)
	}
}

// TestFlowTraceValidate pins the config plumbing: -flows-out implies
// tracing, the sample rate is bounded, and the default rate is 1/64.
func TestFlowTraceValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlowsOut = "flows.json"
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if !cfg.FlowTrace {
		t.Error("FlowsOut did not imply FlowTrace")
	}
	if want := 1.0 / 64; cfg.FlowSample != want {
		t.Errorf("default FlowSample = %v, want %v", cfg.FlowSample, want)
	}
	for _, bad := range []float64{-0.1, 1.5} {
		cfg := DefaultConfig()
		cfg.FlowTrace = true
		cfg.FlowSample = bad
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), "FlowSample") {
			t.Errorf("FlowSample=%v: err = %v, want FlowSample field error", bad, err)
		}
	}
}

// TestFlowTraceOutputs pins the -flows-out writers: CSV gets the stable
// per-phase header, JSON round-trips into the public report type.
func TestFlowTraceOutputs(t *testing.T) {
	ft := chaosFlowRun(t).FlowTrace

	var csv bytes.Buffer
	if err := ft.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) < 2+len(ft.Classes) {
		t.Fatalf("CSV has %d lines, want summary + header + %d phases:\n%s",
			len(lines), len(ft.Classes), csv.String())
	}
	if !strings.HasPrefix(lines[0], "# sample_rate=") {
		t.Errorf("CSV summary line = %q", lines[0])
	}
	const header = "phase,count,drops,bytes,mean_hops,mean_latency_us,max_latency_us," +
		"queue_us,credit_us,retune_us,busy_us,cutthrough_us,serialize_us,wire_us,route_us," +
		"energy_pj_per_bit"
	if lines[1] != header {
		t.Errorf("CSV header = %q, want %q", lines[1], header)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "flows.json")
	if err := writeFlowsOut(path, ft); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back FlowTraceReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("flows JSON does not round-trip: %v", err)
	}
	if back.Started != ft.Started || len(back.Classes) != len(ft.Classes) {
		t.Errorf("round-trip lost data: started %d/%d, classes %d/%d",
			back.Started, ft.Started, len(back.Classes), len(ft.Classes))
	}
}

// TestScorecardCSVAppendOnly pins the scorecard column contract: new
// columns append after the original ones, which keep their exact names
// and order, and rows stay one per phase in phase order.
func TestScorecardCSVAppendOnly(t *testing.T) {
	res := chaosFlowRun(t)
	lines := strings.Split(strings.TrimSpace(string(res.ScorecardCSV())), "\n")
	if len(lines) != 1+len(res.PhaseScores) {
		t.Fatalf("scorecard has %d lines, want header + %d phases", len(lines), len(res.PhaseScores))
	}
	const legacy = "phase,start_us,end_us,injected,delivered,dropped,delivered_frac," +
		"mean_latency_us,p99_latency_us,avg_util,reconfigs,fault_events"
	if !strings.HasPrefix(lines[0], legacy+",") {
		t.Errorf("header no longer starts with the original columns:\n%s", lines[0])
	}
	width := len(strings.Split(lines[0], ","))
	for i, row := range lines[1:] {
		fields := strings.Split(row, ",")
		if len(fields) != width {
			t.Errorf("row %d has %d fields, header has %d", i, len(fields), width)
		}
		if fields[0] != res.PhaseScores[i].Phase {
			t.Errorf("row %d is phase %q, want %q (rows reordered)",
				i, fields[0], res.PhaseScores[i].Phase)
		}
	}
}
