package epnet

// End-to-end smoke tests for the command-line tools: each binary is
// built once and exercised on its primary path. Skipped with -short.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildTool compiles one cmd into a temp dir and returns its path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCommandsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests skipped in -short mode")
	}
	dir := t.TempDir()

	t.Run("topopower", func(t *testing.T) {
		bin := buildTool(t, dir, "topopower")
		out := runTool(t, bin)
		for _, want := range []string{"8235", "4096", "1146880", "737280", "975 kW"} {
			if !strings.Contains(out, want) {
				t.Errorf("topopower output missing %q", want)
			}
		}
		// Custom shape.
		out = runTool(t, bin, "-k", "8", "-n", "4", "-c", "12", "-radix", "33")
		if !strings.Contains(out, "6144 hosts") {
			t.Errorf("custom topopower output missing host count:\n%s", out)
		}
	})

	t.Run("experiments-table1", func(t *testing.T) {
		bin := buildTool(t, dir, "experiments")
		out := runTool(t, bin, "-only", "table1")
		for _, want := range []string{"8235", "4096", "$1.61M", "$2.89M"} {
			if !strings.Contains(out, want) {
				t.Errorf("experiments table1 missing %q", want)
			}
		}
	})

	t.Run("tracegen-epsim-pipeline", func(t *testing.T) {
		tg := buildTool(t, dir, "tracegen")
		es := buildTool(t, dir, "epsim")
		trace := filepath.Join(dir, "t.trace")
		out := runTool(t, tg, "-workload", "advert", "-hosts", "64",
			"-horizon", "2ms", "-o", trace)
		if !strings.Contains(out, "wrote") {
			t.Fatalf("tracegen output: %s", out)
		}
		out = runTool(t, tg, "-inspect", trace, "-hosts", "64", "-horizon", "2ms")
		if !strings.Contains(out, "mean utilization") {
			t.Errorf("inspect output: %s", out)
		}
		out = runTool(t, es, "-workload", "trace", "-trace", trace,
			"-duration", "1ms", "-warmup", "200us")
		if !strings.Contains(out, "power") || !strings.Contains(out, "delivered=") {
			t.Errorf("epsim trace replay output: %s", out)
		}
	})

	t.Run("epsim-scenario", func(t *testing.T) {
		es := buildTool(t, dir, "epsim")
		// -check lints without running: config line plus one row per phase.
		out := runTool(t, es, "-scenario", "diurnal", "-check")
		if !strings.Contains(out, "config ok") {
			t.Fatalf("epsim -scenario diurnal -check: %s", out)
		}
		for _, phase := range []string{"night", "daytime", "evening"} {
			if !strings.Contains(out, phase) {
				t.Errorf("-check listing missing phase %q:\n%s", phase, out)
			}
		}
		// A real multi-phase run prints the per-phase scorecard.
		out = runTool(t, es, "-scenario", "mixed-tenant", "-warmup", "50us")
		if !strings.Contains(out, "scorecard (per phase):") {
			t.Errorf("epsim scenario run missing scorecard:\n%s", out)
		}
		if !strings.Contains(out, "delivered=") {
			t.Errorf("epsim scenario run missing traffic line:\n%s", out)
		}
	})

	t.Run("epsim-flow-trace", func(t *testing.T) {
		es := buildTool(t, dir, "epsim")
		out := runTool(t, es, "-scenario", "chaos", "-warmup", "50us",
			"-flow-trace", "-flow-sample", "1")
		for _, want := range []string{
			"flow trace: sample rate 1",
			"slowest traced packets:",
			"anomaly dumps:",
			"pJ/bit",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("flow-trace run missing %q:\n%s", want, out)
			}
		}
		// -flows-out implies -flow-trace and writes the CSV decomposition.
		flows := filepath.Join(dir, "flows.csv")
		runTool(t, es, "-duration", "300us", "-warmup", "100us", "-flows-out", flows)
		data, err := os.ReadFile(flows)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "phase,count,drops,bytes,") {
			t.Errorf("flows CSV missing header:\n%s", data)
		}
	})

	t.Run("epsim-trace-out-notice", func(t *testing.T) {
		es := buildTool(t, dir, "epsim")
		// The Chrome tracer needs the serial engine. With auto shards the
		// fallback must be announced, not silent.
		trace := filepath.Join(dir, "chrome.json")
		out := runTool(t, es, "-duration", "200us", "-warmup", "50us", "-trace-out", trace)
		const notice = "-trace-out needs the serial engine; running with shards=1"
		if !strings.Contains(out, notice) {
			t.Errorf("auto-shard trace run missing notice %q:\n%s", notice, out)
		}
		// An explicit -shards 1 is not a fallback: no notice.
		out = runTool(t, es, "-duration", "200us", "-warmup", "50us",
			"-shards", "1", "-trace-out", trace)
		if strings.Contains(out, notice) {
			t.Errorf("explicit -shards 1 still printed the fallback notice:\n%s", out)
		}
	})

	t.Run("epsim-json", func(t *testing.T) {
		es := buildTool(t, dir, "epsim")
		out := runTool(t, es, "-json", "-duration", "300us", "-warmup", "100us")
		if !strings.Contains(out, "\"RelPowerMeasured\"") ||
			!strings.Contains(out, "\"RateShare\"") {
			t.Errorf("epsim -json output incomplete:\n%s", out[:min(len(out), 400)])
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests skipped in -short mode")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "sweep")
	out := runTool(t, bin, "-x", "target", "-values", "0.25,0.5",
		"-workload", "search", "-duration", "500us", "-warmup", "200us")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want header + 2 rows:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "target,mean_latency_us") {
		t.Errorf("header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if cols := strings.Split(l, ","); len(cols) != 11 {
			t.Errorf("row has %d columns: %q", len(cols), l)
		}
	}
	// Unknown axis rejected.
	cmd := exec.Command(bin, "-x", "nope", "-values", "1")
	if err := cmd.Run(); err == nil {
		t.Error("unknown axis accepted")
	}
}

// TestEpsimGracefulShutdown pins the SIGTERM contract: the run stops
// cooperatively at the next epoch boundary, reports the cancellation,
// shuts the inspector down, and still flushes every output it opened.
func TestEpsimGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("cmd smoke tests skipped in -short mode")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "epsim")
	metrics := filepath.Join(dir, "metrics.csv")
	flows := filepath.Join(dir, "flows.json")
	// A one-second simulation takes minutes of wall time, so the signal
	// always lands mid-run.
	cmd := exec.Command(bin, "-duration", "1s", "-warmup", "100us",
		"-listen", "127.0.0.1:0", "-metrics-out", metrics, "-flows-out", flows)
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Second) // past startup: handler installed, outputs open
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("epsim exited clean; expected the canceled-run error:\n%s", out.String())
		}
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("epsim did not exit after SIGTERM:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "run canceled") {
		t.Errorf("missing cancellation report:\n%s", out.String())
	}
	for _, p := range []string{metrics, flows} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Errorf("output not flushed after SIGTERM: %v", err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("output %s flushed empty after SIGTERM", filepath.Base(p))
		}
	}
}
