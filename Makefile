# Common development loops for epnet. Pure Go, stdlib only.

GO ?= go

.PHONY: all build test race vet bench bench-json bench-compare fmt fmt-check experiments smoke-faults smoke-scenarios smoke-flows smoke-scale observe-demo profile-demo

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector; the parallel experiment runner
# and the concurrent-engines tests are the interesting targets.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Hot-path microbenchmarks: event engine scheduling and fabric
# packet throughput (ns/op, allocs/op), plus the figure regenerators.
bench:
	$(GO) test -bench . -benchmem ./internal/sim/ ./internal/fabric/

# Machine-readable benchmark results (JSON Lines on stdout), for
# regression tracking: make bench-json > bench.jsonl
bench-json:
	@$(GO) test -bench . -benchmem ./internal/sim/ ./internal/fabric/ ./internal/telemetry/ | $(GO) run ./cmd/benchjson

# Diff current benchmark times against the checked-in baseline
# (BENCH_seed.json, regenerate with: make bench-json > BENCH_seed.json).
# Regressions beyond 10% ns/op are flagged in the report, and sharded
# benchmarks get a scaling section (speedup@N / N, flagged LOW only
# when the machine had N cores to offer). The target itself never
# fails, since cross-machine benchmark noise makes a hard gate
# counterproductive — read the report.
bench-compare:
	@$(GO) test -bench . -benchmem ./internal/sim/ ./internal/fabric/ ./internal/telemetry/ | $(GO) run ./cmd/benchjson -compare BENCH_seed.json

fmt:
	gofmt -l -w .

# Fails if any file needs reformatting; used by CI.
fmt-check:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

experiments:
	$(GO) run ./cmd/experiments

# Short resilience run under random faults; exercises the fault
# injector end to end without the full experiment suite.
smoke-faults:
	$(GO) run ./cmd/experiments -only faultgrid -duration 1ms -warmup 200us -fault-mttr 100us

# Scenario engine end to end: lint every embedded scenario
# (scenariolint), run one multi-phase scenario serially and one chaos
# campaign sharded, then the scenario DSL tests under the race detector.
smoke-scenarios:
	@for s in $$($(GO) run ./cmd/epsim -list-scenarios); do \
		$(GO) run ./cmd/epsim -scenario $$s -check || exit 1; done
	$(GO) run ./cmd/epsim -scenario diurnal -warmup 100us
	$(GO) run ./cmd/epsim -scenario chaos -warmup 100us -shards 4
	$(GO) test -race ./internal/scenario/
	$(GO) test -run 'TestScenario|TestSinglePhaseScenarioMatchesFlagRun|TestPhaseInsertionStability|TestPresetLoadsAsScenario' .

# Flow tracing end to end: the chaos scenario traced serially and
# sharded, with the two -flows-out reports compared byte for byte (the
# tracer rides the determinism contract), then the flow-trace and
# flight-recorder tests under the race detector. Files land in
# /tmp/epnet-flows.
smoke-flows:
	mkdir -p /tmp/epnet-flows
	$(GO) run ./cmd/epsim -scenario chaos -warmup 100us -shards 1 \
		-flow-sample 1 -flows-out /tmp/epnet-flows/serial.json
	$(GO) run ./cmd/epsim -scenario chaos -warmup 100us -shards 4 \
		-flow-sample 1 -flows-out /tmp/epnet-flows/sharded.json
	cmp /tmp/epnet-flows/serial.json /tmp/epnet-flows/sharded.json
	$(GO) test -race -run 'FlowTrace|FlightRecorder' ./internal/telemetry/ ./internal/fabric/ .
	@ls -l /tmp/epnet-flows

# Scale smoke: build an 8-ary 5-flat flattened butterfly (32,768 hosts,
# 4096 switches, ~180k channels) and push a short steady uniform load
# through it, all inside a hard wall-clock bound. Guards the flyweight
# construction path: if per-entity allocation or an O(switches²) table
# creeps back in, the build alone blows the budget. ~3s on a dev box;
# the bound leaves headroom for slow CI runners.
smoke-scale:
	timeout 60 $(GO) run ./cmd/epsim -topology fbfly -k 8 -n 5 -c 8 \
		-workload uniform -load 0.05 -warmup 20us -duration 100us -shards 0

# Short run with the full observability stack on: labeled metrics CSV,
# utilization heatmap + histogram, per-link attribution, and one live
# scrape of the inspection endpoint. Files land in /tmp/epnet-observe.
observe-demo:
	mkdir -p /tmp/epnet-observe
	$(GO) run ./cmd/epsim -workload search -duration 1ms -warmup 200us \
		-metrics-out /tmp/epnet-observe/metrics.csv \
		-heatmap-out /tmp/epnet-observe/heatmap.csv \
		-hist-out /tmp/epnet-observe/hist.csv \
		-attribution -listen 127.0.0.1:0
	@ls -l /tmp/epnet-observe

# Engine self-profiling end to end: a sharded run with the partition
# line (-v), the critical-path report (-profile), and the JSON export
# (-profile-out), plus the live /profile endpoint test. Files land in
# /tmp/epnet-profile.
profile-demo:
	mkdir -p /tmp/epnet-profile
	$(GO) run ./cmd/epsim -workload search -duration 1ms -warmup 200us \
		-shards 4 -v -profile \
		-profile-out /tmp/epnet-profile/profile.json
	$(GO) test -run 'TestInspectorProfileEndpoint|TestProfileOutFormats' -v .
	@ls -l /tmp/epnet-profile
