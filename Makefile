# Common development loops for epnet. Pure Go, stdlib only.

GO ?= go

.PHONY: all build test race vet bench bench-json fmt experiments

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector; the parallel experiment runner
# and the concurrent-engines tests are the interesting targets.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Hot-path microbenchmarks: event engine scheduling and fabric
# packet throughput (ns/op, allocs/op), plus the figure regenerators.
bench:
	$(GO) test -bench . -benchmem ./internal/sim/ ./internal/fabric/

# Machine-readable benchmark results (JSON Lines on stdout), for
# regression tracking: make bench-json > bench.jsonl
bench-json:
	$(GO) test -bench . -benchmem ./internal/sim/ ./internal/fabric/ ./internal/telemetry/ | $(GO) run ./cmd/benchjson

fmt:
	gofmt -l -w .

experiments:
	$(GO) run ./cmd/experiments
