# Common development loops for epnet. Pure Go, stdlib only.

GO ?= go

.PHONY: all build test race vet bench bench-json fmt fmt-check experiments smoke-faults

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector; the parallel experiment runner
# and the concurrent-engines tests are the interesting targets.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Hot-path microbenchmarks: event engine scheduling and fabric
# packet throughput (ns/op, allocs/op), plus the figure regenerators.
bench:
	$(GO) test -bench . -benchmem ./internal/sim/ ./internal/fabric/

# Machine-readable benchmark results (JSON Lines on stdout), for
# regression tracking: make bench-json > bench.jsonl
bench-json:
	$(GO) test -bench . -benchmem ./internal/sim/ ./internal/fabric/ ./internal/telemetry/ | $(GO) run ./cmd/benchjson

fmt:
	gofmt -l -w .

# Fails if any file needs reformatting; used by CI.
fmt-check:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

experiments:
	$(GO) run ./cmd/experiments

# Short resilience run under random faults; exercises the fault
# injector end to end without the full experiment suite.
smoke-faults:
	$(GO) run ./cmd/experiments -only faultgrid -duration 1ms -warmup 200us -fault-mttr 100us
