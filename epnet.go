// Package epnet is a library-level reproduction of "Energy Proportional
// Datacenter Networks" (Abts, Marty, Wells, Klausler, Liu — ISCA 2010).
//
// It provides:
//
//   - An event-driven simulator of a flattened-butterfly (or fat-tree)
//     datacenter network with credit-based cut-through flow control,
//     per-hop adaptive routing, and plesiochronous links whose data rate
//     can be re-tuned at runtime (Run / Config / Result).
//   - The paper's energy-proportional link control heuristics: epoch
//     utilization sensing with halve/double rate adjustment, paired vs
//     independent unidirectional channel control, aggressive min/max
//     jumps, and dynamic topologies that power entire links off.
//   - The analytic power models behind the paper's Table 1 and Figure 1
//     (flattened butterfly vs folded Clos part counts and operating
//     cost), the measured switch power profile of Figure 5, and the ITRS
//     trends of Figure 6.
//   - The evaluation workloads: Uniform (512 KB random messages) and
//     synthetic stand-ins for the paper's production Search and Advert
//     traces (heavy-tailed, low-utilization, asymmetric).
//
// The cmd/experiments tool and the benchmarks in bench_test.go
// regenerate every table and figure of the paper; EXPERIMENTS.md records
// paper-vs-measured values.
package epnet

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"epnet/internal/fault"
)

// PolicyKind selects the link-rate control policy for a simulation.
type PolicyKind string

const (
	// PolicyBaseline keeps every link at full rate — the "always on"
	// status quo the paper starts from.
	PolicyBaseline PolicyKind = "baseline"
	// PolicyHalveDouble is the paper's §3.3 heuristic: below the target
	// utilization halve the rate, above it double it.
	PolicyHalveDouble PolicyKind = "halve-double"
	// PolicyMinMax is the §5.2 aggressive heuristic: jump straight to
	// the minimum or maximum rate.
	PolicyMinMax PolicyKind = "min-max"
	// PolicyHysteresis is a stabilized halve/double variant with a dead
	// band between target/2 and target.
	PolicyHysteresis PolicyKind = "hysteresis"
	// PolicyStaticMin pins every link at the slowest rate — the
	// low-power bound that "fails to keep up with the offered load".
	PolicyStaticMin PolicyKind = "static-min"
	// PolicyQueueAware is halve/double plus a congestion override: a
	// deep output-queue backlog jumps the link straight to full rate
	// (the §3.2/§5.2 congestion-sensing input).
	PolicyQueueAware PolicyKind = "queue-aware"
)

// RoutingKind selects the per-hop route choice on the FBFLY.
type RoutingKind string

const (
	// RoutingAdaptive picks the minimal candidate with the smallest
	// output queue — the paper's evaluation configuration, and the
	// mechanism that lets traffic flow around reconfiguring links.
	RoutingAdaptive RoutingKind = "adaptive"
	// RoutingDOR is deterministic dimension-order routing: the ablation
	// showing why adaptivity is an "essential ingredient" (§6).
	RoutingDOR RoutingKind = "dor"
)

// WorkloadKind selects the offered traffic.
type WorkloadKind string

const (
	// WorkloadUniform is §4.1's synthetic: each host repeatedly sends a
	// 512 KB message to a new random destination (~23% average load).
	WorkloadUniform WorkloadKind = "uniform"
	// WorkloadSearch is the web-search production-trace stand-in
	// (~6% average load, bursty, asymmetric).
	WorkloadSearch WorkloadKind = "search"
	// WorkloadAdvert is the advertising-service production-trace
	// stand-in (~5% average load).
	WorkloadAdvert WorkloadKind = "advert"
	// WorkloadPermutation streams along a fixed random permutation.
	WorkloadPermutation WorkloadKind = "permutation"
	// WorkloadHotspot converges all traffic on a few destinations.
	WorkloadHotspot WorkloadKind = "hotspot"
	// WorkloadTornado sends each host's traffic halfway around the
	// cluster — adversarial for ring-degraded (dynamic) topologies.
	WorkloadTornado WorkloadKind = "tornado"
	// WorkloadIncast fires synchronized fan-in bursts at rotating victim
	// hosts — the partition/aggregate pattern that punishes links detuned
	// during the preceding lull.
	WorkloadIncast WorkloadKind = "incast"
	// WorkloadMigration runs concurrent bulk point-to-point transfers
	// (a VM migration storm): few flows, each holding one path hot.
	WorkloadMigration WorkloadKind = "migration"
	// WorkloadTrace replays a recorded trace file (see Config.TracePath
	// and cmd/tracegen).
	WorkloadTrace WorkloadKind = "trace"
)

// TopologyKind selects the simulated topology.
type TopologyKind string

const (
	// TopoFBFLY is the flattened butterfly (k-ary n-flat).
	TopoFBFLY TopologyKind = "fbfly"
	// TopoFatTree is a two-level folded Clos with K leaves, K spines
	// and C hosts per leaf.
	TopoFatTree TopologyKind = "fattree"
	// TopoClos3 is a three-tier folded Clos (k-pod fat tree) built from
	// radix-K chips: K^3/4 hosts on 5K^2/4 switches. N and C are ignored.
	TopoClos3 TopologyKind = "clos3"
)

// Config describes one simulation run. The zero value is not runnable;
// start from DefaultConfig.
type Config struct {
	// Topology selects the network shape (default flattened butterfly).
	Topology TopologyKind
	// K, N, C give the k-ary n-flat shape with concentration c. The
	// paper's simulated system is K=15, N=3, C=15 (3,375 hosts); the
	// default here is a smaller instance for fast runs.
	K, N, C int

	// Workload selects the offered traffic; Load overrides its default
	// average utilization when positive.
	Workload WorkloadKind
	Load     float64
	// TracePath is the trace file replayed when Workload is
	// WorkloadTrace (the binary format written by cmd/tracegen).
	TracePath string

	// Policy is the link control policy; TargetUtil is its target
	// channel utilization (paper default 0.5).
	Policy     PolicyKind
	TargetUtil float64

	// Independent enables independent control of the two unidirectional
	// channels of each link (§3.3.1); false ties link pairs together.
	Independent bool

	// Routing selects adaptive (default) or dimension-order routing.
	Routing RoutingKind

	// ModeAwareReactivation charges per-transition penalties from the
	// SerDes model (§3.1: CDR re-lock ~100 ns for rate-only changes,
	// ~1 µs lane retraining) instead of the flat Reactivation.
	ModeAwareReactivation bool

	// Reactivation is the link reconfiguration penalty (default 1 µs);
	// Epoch is the utilization measurement window (default 10x
	// reactivation, per §4.2.2).
	Reactivation time.Duration
	Epoch        time.Duration

	// DynTopo additionally enables the §5.1 dynamic topology
	// controller (flattened butterfly only).
	DynTopo bool

	// Warmup and Duration split the run: statistics (latency, power,
	// occupancy) are collected only during the Duration window after
	// Warmup ends. Injection runs through both.
	Warmup   time.Duration
	Duration time.Duration

	// Seed makes the run reproducible.
	Seed int64

	// Shards, when > 1, partitions the fabric's switches (with their
	// attached hosts) across this many workers that advance in
	// conservative per-shard time windows bounded by a per-shard-pair
	// lookahead matrix, exchanging boundary events at window barriers.
	// The topology picks the partition: flattened butterflies cut along
	// dimensions, folded Clos along pods. Results are byte-identical to
	// the serial run for the same seed — sharding trades nothing but
	// wall-clock time.
	//
	// 0 (the default) means auto: one shard per available CPU
	// (runtime.GOMAXPROCS), capped so every shard keeps at least ~8
	// switches, and serial when the run needs the serial engine
	// (TraceOut). 1 forces the serial engine; counts above the switch
	// count are capped to it. Explicit Shards > 1 is incompatible with
	// TraceOut (the trace stream is single-writer).
	Shards int

	// MaxPacket is the segmentation size (default 2048 bytes).
	MaxPacket int

	// PowerSampleEvery, when positive, samples instantaneous network
	// power and offered utilization at this interval during the
	// measurement window, populating Result.PowerTrace — a direct view
	// of the network's power tracking its load.
	PowerSampleEvery time.Duration

	// MetricsOut, when non-empty, writes a sampled time series of every
	// registered telemetry metric (link rates and states, switch queue
	// depths, delivery counters, instantaneous power, controller and
	// routing state) to this path at the end of the run — CSV by
	// default, JSON Lines when the path ends in ".jsonl".
	// SampleInterval is the sampling period; it defaults to Epoch, so
	// the series resolves per-epoch link rate changes.
	MetricsOut     string
	SampleInterval time.Duration

	// TraceOut, when non-empty, streams a Chrome trace_event JSON file
	// to this path: packet lifetime spans (inject -> deliver) and link
	// reconfiguration spans (CDR re-lock vs lane retraining), loadable
	// in chrome://tracing or https://ui.perfetto.dev. When unset — the
	// default — the packet path carries no tracing work beyond one nil
	// check.
	TraceOut string

	// HeatmapOut, when non-empty, writes a utilization x time heatmap
	// CSV at the end of the run: one row per inter-switch channel, one
	// column per SampleInterval, each cell the channel's utilization
	// over that interval — the per-link view behind the paper's Figs
	// 8-13.
	HeatmapOut string

	// HistOut, when non-empty, writes a link-utilization histogram CSV
	// (the paper's Fig 8 view): how often links sit at each utilization
	// level, aggregated over all inter-switch channels and all sample
	// intervals of the run.
	HistOut string

	// Attribution, when true, populates Result.Attribution with the
	// per-channel energy/utilization breakdown. Off by default to keep
	// Result compact at paper scale (thousands of channels).
	Attribution bool

	// Profile, when true, self-profiles the simulation engine and
	// populates Result.Profile: per-shard wall-clock busy / barrier-wait
	// / idle time, granted-vs-used window width, the cross-shard
	// exchange matrix, and a critical-path report identifying which
	// shard set each window barrier. Collection happens strictly outside
	// the deterministic simulation path (at window and barrier
	// granularity, never per packet), so every other Result field and
	// every telemetry CSV is byte-identical with profiling on or off.
	Profile bool

	// ProfileOut, when non-empty, writes the engine profile to this path
	// at the end of the run — JSON by default, a per-shard CSV when the
	// path ends in ".csv" — and implies Profile.
	ProfileOut string

	// FlowTrace, when true, hash-samples packets at injection and carries
	// a compact per-hop log on each sampled packet: queue wait, credit
	// stall, retune stall, busy wait, cut-through wait, serialization,
	// wire and routing delay, summing exactly to the packet's end-to-end
	// latency. The run populates Result.FlowTrace with per-phase latency
	// decompositions, energy per delivered bit, slowest-packet exemplars,
	// and anomaly dumps (a flight-recorder ring flushed on packet drops
	// and fault epochs). Sampling is a pure hash of the packet ID and
	// seed, so the sampled set — and every FlowTrace byte — is identical
	// across shard counts; with tracing off the packet path carries
	// nothing beyond one nil check.
	FlowTrace bool

	// FlowSample is the flow-tracing sample rate in (0,1]: the expected
	// fraction of packets carrying a hop log. 0 defaults to 1/64. 1
	// traces every packet (exact decompositions, highest overhead).
	FlowSample float64

	// FlowsOut, when non-empty, writes the flow-trace report to this
	// path at the end of the run — JSON by default, a per-phase
	// decomposition CSV when the path ends in ".csv" — and implies
	// FlowTrace.
	FlowsOut string

	// Inspector, when non-nil, receives a Prometheus scrape body and a
	// JSON per-entity snapshot at every sample tick, for live HTTP
	// inspection of a running simulation (see NewInspector). Excluded
	// from the Config's JSON form: it is runtime wiring, not a
	// parameter.
	Inspector *Inspector `json:"-"`

	// FailLinks, when positive, abruptly powers off this many randomly
	// chosen inter-switch link pairs FailAfter into the measurement
	// window (no drain — the failure case of §1's failure-domain
	// argument). FBFLY with adaptive routing only: the router misroutes
	// around dead links. FailAfter defaults to one quarter of Duration.
	FailLinks int
	FailAfter time.Duration

	// Faults, when non-empty, is a deterministic fault schedule executed
	// by the internal/fault injector: semicolon-separated events of the
	// form "<offset> <verb> <target> [arg]", with offsets relative to the
	// end of warmup. Verbs: fail-link / repair-link / degrade-link /
	// restore-link (target "s<switch>p<port>", degrade takes a rate cap
	// in Gb/s) and fail-switch / repair-switch (target is a switch
	// index). Example:
	//
	//	"50us fail-link s0p8; 100us degrade-link s1p8 10; 400us repair-link s0p8"
	//
	// Requires adaptive routing (the router must mask dead ports).
	Faults string

	// FaultRate, when positive, additionally injects seeded-random link
	// failures and lane degradations at this expected rate (events per
	// simulated millisecond) through the measurement window. Failed
	// links repair after an exponentially distributed time with mean
	// FaultMTTR (default 200 µs). The sequence is a pure function of
	// Seed: identical runs see identical fault histories.
	FaultRate float64
	FaultMTTR time.Duration

	// Scenario, when non-nil, drives the run as a sequence of named
	// phases — traffic mixes with load shapes, policy switches, and
	// chaos campaigns at phase boundaries — instead of the single
	// homogeneous workload the fields above describe. Load one with
	// LoadScenario; Validate checks it and derives Duration from the
	// phase durations. The first phase's first traffic stream and policy
	// are mirrored into Workload/Load/Policy/TargetUtil so reports and
	// single-phase scenarios read like ordinary runs.
	Scenario *Scenario
}

// DefaultConfig returns a fast-running configuration faithful to the
// paper's defaults: halve/double policy, 50% target, 1 µs reactivation,
// 10 µs epoch, paired link control, on an 8-ary 2-flat.
func DefaultConfig() Config {
	return Config{
		Topology:     TopoFBFLY,
		K:            8,
		N:            2,
		C:            8,
		Workload:     WorkloadSearch,
		Policy:       PolicyHalveDouble,
		TargetUtil:   0.5,
		Independent:  false,
		Reactivation: time.Microsecond,
		Epoch:        10 * time.Microsecond,
		Warmup:       200 * time.Microsecond,
		Duration:     2 * time.Millisecond,
		Seed:         1,
		MaxPacket:    2048,
	}
}

// PaperConfig returns the paper's full evaluation configuration: a
// 15-ary 3-flat with 3,375 hosts. Expect runs to take minutes of wall
// time at trace-level durations.
func PaperConfig() Config {
	c := DefaultConfig()
	c.K, c.N, c.C = 15, 3, 15
	return c
}

// Validate fills defaults and rejects inconsistent configurations.
// Every error it returns matches ErrInvalidConfig under errors.Is and
// carries the offending field name in a *ConfigFieldError; unknown enum
// values additionally match the corresponding ErrUnknown* sentinel.
func (c *Config) Validate() error {
	if c.Topology == "" {
		c.Topology = TopoFBFLY
	}
	if c.Topology != TopoFBFLY && c.Topology != TopoFatTree && c.Topology != TopoClos3 {
		return enumErr(ErrUnknownTopology, "Topology", "unknown topology %q", c.Topology)
	}
	if c.DynTopo && c.Topology != TopoFBFLY {
		return fieldErr("DynTopo", "dynamic topologies require the flattened butterfly, not %q", c.Topology)
	}
	if c.K < 2 {
		return fieldErr("K", "must be >= 2, got %d", c.K)
	}
	if c.C < 1 {
		return fieldErr("C", "must be >= 1, got %d", c.C)
	}
	if c.Topology == TopoClos3 && (c.K < 4 || c.K%2 != 0) {
		return fieldErr("K", "clos3 needs an even K >= 4, got %d", c.K)
	}
	if c.Topology == TopoFBFLY && c.N < 2 {
		return fieldErr("N", "must be >= 2, got %d", c.N)
	}
	if c.Scenario != nil {
		if err := c.validateScenario(); err != nil {
			return err
		}
	}
	switch c.Workload {
	case WorkloadUniform, WorkloadSearch, WorkloadAdvert, WorkloadPermutation,
		WorkloadHotspot, WorkloadTornado, WorkloadIncast, WorkloadMigration:
	case WorkloadTrace:
		if c.TracePath == "" {
			return fieldErr("TracePath", "trace workload needs a trace file")
		}
	case "":
		c.Workload = WorkloadUniform
	default:
		return enumErr(ErrUnknownWorkload, "Workload", "unknown workload %q", c.Workload)
	}
	switch c.Policy {
	case PolicyBaseline, PolicyHalveDouble, PolicyMinMax, PolicyHysteresis,
		PolicyStaticMin, PolicyQueueAware:
	case "":
		c.Policy = PolicyBaseline
	default:
		return enumErr(ErrUnknownPolicy, "Policy", "unknown policy %q", c.Policy)
	}
	switch c.Routing {
	case RoutingAdaptive, RoutingDOR:
	case "":
		c.Routing = RoutingAdaptive
	default:
		return enumErr(ErrUnknownRouting, "Routing", "unknown routing %q", c.Routing)
	}
	if c.Routing == RoutingDOR && c.Topology != TopoFBFLY {
		return fieldErr("Routing", "dimension-order routing requires the flattened butterfly, not %q", c.Topology)
	}
	if c.Scenario != nil && c.Routing == RoutingDOR && scenarioHasChaos(c.Scenario) {
		return fieldErr("Scenario", "chaos campaigns need adaptive routing (dead ports must be maskable)")
	}
	if c.FailLinks < 0 {
		return fieldErr("FailLinks", "must be >= 0, got %d", c.FailLinks)
	}
	if c.FailLinks > 0 {
		if c.Topology != TopoFBFLY || c.Routing == RoutingDOR {
			return fieldErr("FailLinks", "link failures need the FBFLY with adaptive routing")
		}
		if c.FailAfter < 0 {
			return fieldErr("FailAfter", "must be >= 0, got %v", c.FailAfter)
		}
	}
	if c.Faults != "" {
		if c.Routing == RoutingDOR {
			return fieldErr("Faults", "fault injection needs adaptive routing (dead ports must be maskable)")
		}
		if _, err := fault.ParseSchedule(c.Faults); err != nil {
			return fieldErr("Faults", "%v", err)
		}
	}
	if c.FaultRate < 0 {
		return fieldErr("FaultRate", "must be >= 0, got %v", c.FaultRate)
	}
	if c.FaultRate > 0 {
		if c.Routing == RoutingDOR {
			return fieldErr("FaultRate", "fault injection needs adaptive routing (dead ports must be maskable)")
		}
		if c.FaultMTTR < 0 {
			return fieldErr("FaultMTTR", "must be >= 0, got %v", c.FaultMTTR)
		}
		if c.FaultMTTR == 0 {
			c.FaultMTTR = 200 * time.Microsecond
		}
	}
	if c.Load < 0 || c.Load >= 1 {
		return fieldErr("Load", "%v out of [0,1)", c.Load)
	}
	if c.TargetUtil == 0 {
		c.TargetUtil = 0.5
	}
	if c.TargetUtil < 0 || c.TargetUtil > 1 {
		return fieldErr("TargetUtil", "%v out of (0,1]", c.TargetUtil)
	}
	if c.Reactivation == 0 {
		c.Reactivation = time.Microsecond
	}
	if c.Reactivation < 0 {
		return fieldErr("Reactivation", "must be >= 0, got %v", c.Reactivation)
	}
	if c.Epoch == 0 {
		c.Epoch = 10 * c.Reactivation
	}
	if c.Epoch <= c.Reactivation {
		return fieldErr("Epoch", "%v must exceed reactivation %v", c.Epoch, c.Reactivation)
	}
	if c.SampleInterval < 0 {
		return fieldErr("SampleInterval", "must be >= 0, got %v", c.SampleInterval)
	}
	if (c.MetricsOut != "" || c.HeatmapOut != "" || c.HistOut != "" || c.Inspector != nil) &&
		c.SampleInterval == 0 {
		c.SampleInterval = c.Epoch
	}
	if c.Duration <= 0 {
		return fieldErr("Duration", "must be positive, got %v", c.Duration)
	}
	if c.Warmup < 0 {
		return fieldErr("Warmup", "must be >= 0, got %v", c.Warmup)
	}
	if c.MaxPacket == 0 {
		c.MaxPacket = 2048
	}
	if c.MaxPacket < 64 {
		return fieldErr("MaxPacket", "%d below the 64-byte minimum", c.MaxPacket)
	}
	if c.FlowsOut != "" {
		c.FlowTrace = true
	}
	if c.FlowSample < 0 || c.FlowSample > 1 {
		return fieldErr("FlowSample", "%v out of (0,1]", c.FlowSample)
	}
	if c.FlowTrace && c.FlowSample == 0 {
		c.FlowSample = 1.0 / 64
	}
	if c.Shards < 0 {
		return fieldErr("Shards", "must be >= 0, got %d", c.Shards)
	}
	if c.Shards == 0 {
		c.Shards = c.autoShards(runtime.GOMAXPROCS(0))
	}
	if c.Shards > 1 && c.TraceOut != "" {
		return fieldErr("TraceOut", "packet tracing requires the serial engine (Shards <= 1)")
	}
	return nil
}

// autoShards resolves Shards = 0: one worker per available CPU, capped
// by a topology-size heuristic — a shard needs a useful amount of work
// (here, at least 8 switches) to amortize its share of the window
// barriers — and forced serial when the run needs the serial engine
// (packet tracing). Called after the topology fields are validated.
func (c *Config) autoShards(procs int) int {
	if c.TraceOut != "" {
		return 1
	}
	var switches int
	switch c.Topology {
	case TopoFatTree:
		switches = 2 * c.K // K leaves + K spines
	case TopoClos3:
		switches = 5 * c.K * c.K / 4 // K^2 edge+agg, (K/2)^2 cores
	default: // TopoFBFLY: K^(N-1)
		switches = 1
		for i := 1; i < c.N && switches < 1<<20; i++ {
			switches *= c.K
		}
	}
	n := switches / 8
	if n > procs {
		n = procs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Result reports a simulation run's measurements over the post-warmup
// window.
type Result struct {
	Config Config

	Hosts    int
	Switches int
	Channels int

	// Latency of packets delivered in the measurement window, from
	// message offering to tail delivery (includes source queueing).
	MeanLatency time.Duration
	P50Latency  time.Duration
	P99Latency  time.Duration
	MaxLatency  time.Duration
	Packets     int64

	// Message-level latency: a message completes when its last packet
	// arrives. Messages counts completions in the measurement window.
	MsgMeanLatency time.Duration
	MsgP99Latency  time.Duration
	Messages       int64

	// AvgUtil is the measured mean channel utilization — the power an
	// ideally energy proportional network would consume (relative).
	AvgUtil float64

	// RelPowerMeasured is network power relative to the always-on
	// baseline under the measured (Figure 5) channel profile;
	// RelPowerIdeal under ideally proportional channels (Figure 8b).
	RelPowerMeasured float64
	RelPowerIdeal    float64

	// RateShare maps rate in Gb/s to the fraction of channel-time spent
	// at that rate; OffShare is the fraction powered off.
	RateShare RateShareMap
	OffShare  float64

	// ClassPower breaks RelPowerMeasured down by link class
	// ("electrical", "optical"), each relative to that class's always-on
	// baseline — the §2.2 packaging-locality distinction.
	ClassPower map[string]float64

	// Asymmetry measures how unevenly the two directions of links were
	// used: sum over link pairs of |bytesA - bytesB| / (bytesA + bytesB),
	// byte-weighted. 0 = perfectly symmetric; 1 = strictly one-way.
	// High asymmetry is what makes independent channel control (§3.3.1)
	// valuable.
	Asymmetry float64

	// EstimatedWatts is the simulated network's mean power under the
	// measured profile and the paper's part model (100 W/chip + 10 W/NIC
	// at full rate); EnergyJoules integrates it over the measurement
	// window.
	EstimatedWatts float64
	EnergyJoules   float64

	// LatencyCDF is the packet-latency histogram (ascending bucket upper
	// bounds), for CDF plots.
	LatencyCDF []LatencyBucket

	// Reconfigurations counts rate changes; DynTransitions counts
	// dynamic topology mode changes.
	Reconfigurations int64
	DynTransitions   int64

	// Delivery accounting over the whole run (including warmup).
	InjectedPackets  int64
	DeliveredPackets int64
	BacklogBytes     int64
	DeliveredBytes   int64

	// Drop accounting: packets lost to injected faults (in flight on a
	// failing channel, queued behind a dead port with no live
	// alternative, or destined to a crashed switch).
	// DeliveredFraction is delivered / (delivered + dropped); 1.0 when
	// nothing was dropped.
	DroppedPackets    int64
	DroppedBytes      int64
	DeliveredFraction float64

	// Faults summarizes injected fault events (zero value when fault
	// injection is off).
	Faults FaultStats

	// PeakQueueBytes is the deepest switch output queue observed — the
	// buffering the congestion-sensing mechanism had to ride out.
	PeakQueueBytes int64

	// PowerTrace is the time series sampled every
	// Config.PowerSampleEvery (empty when sampling is off).
	PowerTrace []PowerSample

	// PhaseScores is the per-phase resilience/energy scorecard of a
	// multi-phase scenario run, in phase order. Empty for ordinary runs
	// and single-phase scenarios — those add no snapshot events, so
	// their results stay byte-identical with the equivalent flag run.
	PhaseScores []PhaseScore

	// Attribution is the per-channel energy/utilization breakdown over
	// the measurement window, in wiring order (populated only when
	// Config.Attribution is set). The EnergyJoules of all entries sum
	// to Result.EnergyJoules: total fabric power is divided evenly
	// across channels and each channel is charged its share scaled by
	// its occupancy-weighted relative power under the measured profile.
	Attribution []LinkAttribution

	// FlowTrace is the per-flow latency and energy decomposition
	// (populated only when Config.FlowTrace or Config.FlowsOut is set):
	// per-phase component breakdowns, energy per delivered bit,
	// slowest-packet exemplars with full hop logs, and anomaly dumps
	// from the flight recorder. Fully deterministic — byte-identical
	// across shard counts for the same Config.
	FlowTrace *FlowTraceReport

	// Profile is the engine self-profile (populated only when
	// Config.Profile or Config.ProfileOut is set). Unlike every other
	// field it contains wall-clock measurements and is therefore not
	// deterministic — determinism comparisons must ignore it (all other
	// fields stay byte-identical with profiling on or off).
	Profile *EngineProfile
}

// LinkAttribution is one channel's slice of the run's energy and
// traffic accounting.
type LinkAttribution struct {
	// Link is the channel's entity id, e.g. "s0p1-s1p0" or "h3-s0p0".
	Link string `json:"link"`
	// Class is the physical link class ("electrical", "optical").
	Class string `json:"class"`
	// Utilization is the channel's mean utilization over the window.
	Utilization float64 `json:"util"`
	// RelPower is the occupancy-weighted relative power under the
	// measured profile.
	RelPower float64 `json:"rel_power"`
	// EnergyJoules is this channel's share of the network's energy.
	EnergyJoules float64 `json:"energy_j"`
	// TimeAtRate maps rate in Gb/s to seconds spent at that rate;
	// OffSeconds is time spent powered off.
	TimeAtRate RateShareMap `json:"time_at_rate_s"`
	OffSeconds float64      `json:"off_s"`
	// Bytes and Packets are the traffic carried over the channel's
	// whole accounted life; Drops counts packets lost on it to
	// injected faults.
	Bytes   int64 `json:"bytes"`
	Packets int64 `json:"packets"`
	Drops   int64 `json:"drops"`
}

// FaultStats counts the fault events an injector executed during a run.
type FaultStats struct {
	LinkFailures     int64
	LinkRepairs      int64
	SwitchFailures   int64
	SwitchRepairs    int64
	LaneDegradations int64
	LaneRestores     int64
}

// Total returns the number of injected fault events (repairs included).
func (s FaultStats) Total() int64 {
	return s.LinkFailures + s.LinkRepairs + s.SwitchFailures +
		s.SwitchRepairs + s.LaneDegradations + s.LaneRestores
}

// PhaseScore is one row of a scenario run's scorecard: delivery,
// latency, energy, and fault exposure over one phase's slice of the
// measurement window. Phases that overlap warmup are scored only for
// their measured part; a phase entirely inside warmup scores zeros.
type PhaseScore struct {
	// Phase is the phase name; Start and End bound its measured slice,
	// as offsets from the start of the run.
	Phase      string
	Start, End time.Duration

	// Delivery accounting within the phase.
	InjectedPackets   int64
	DeliveredPackets  int64
	DroppedPackets    int64
	DeliveredBytes    int64
	DeliveredFraction float64

	// Latency of packets delivered within the phase.
	MeanLatency time.Duration
	P99Latency  time.Duration

	// AvgUtil is the phase's delivered throughput as a fraction of
	// aggregate host line-rate capacity — the load an ideally
	// proportional network's power would track.
	AvgUtil float64

	// Reconfigurations counts rate changes; FaultEvents counts injected
	// fault events (repairs included) within the phase.
	Reconfigurations int64
	FaultEvents      int64

	// Flow-trace decomposition of the phase (populated only when
	// Config.FlowTrace is set): TracedPackets/TracedDropped count the
	// hash-sampled packets finishing in the phase, and the per-component
	// means split a traced packet's end-to-end latency — they sum to the
	// traced mean latency. EnergyPJPerBit charges each traced byte its
	// share of the channels it crossed (picojoules per delivered bit).
	TracedPackets  int64
	TracedDropped  int64
	QueueWait      time.Duration
	CreditStall    time.Duration
	RetuneStall    time.Duration
	BusyWait       time.Duration
	CutThroughWait time.Duration
	SerializeTime  time.Duration
	WireTime       time.Duration
	RouteTime      time.Duration
	EnergyPJPerBit float64
}

// PowerSample is one instant of the power-vs-load time series.
type PowerSample struct {
	// At is the time since the measurement window began.
	At time.Duration
	// Measured and Ideal are instantaneous network power under the two
	// profiles, relative to always-on.
	Measured float64
	Ideal    float64
	// Util is the network utilization over the preceding interval.
	Util float64
}

// LatencyBucket is one cell of a latency histogram: Count packets with
// latency at or below Upper (and above the previous bucket's bound).
type LatencyBucket struct {
	Upper time.Duration
	Count int64
}

// RateShareMap maps a rate in Gb/s to a fraction of channel-time. It
// marshals to JSON with string keys (JSON objects cannot have numeric
// keys).
type RateShareMap map[float64]float64

// MarshalJSON implements json.Marshaler.
func (m RateShareMap) MarshalJSON() ([]byte, error) {
	keys := make([]float64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%g", strconv.FormatFloat(k, 'g', -1, 64), m[k])
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *RateShareMap) UnmarshalJSON(data []byte) error {
	var raw map[string]float64
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := make(RateShareMap, len(raw))
	for k, v := range raw {
		f, err := strconv.ParseFloat(k, 64)
		if err != nil {
			return fmt.Errorf("epnet: rate share key %q: %w", k, err)
		}
		out[f] = v
	}
	*m = out
	return nil
}

// String summarizes the result in one line.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s: mean=%v p99=%v util=%.1f%% power(measured)=%.1f%% power(ideal)=%.1f%%",
		r.Config.Workload, r.Config.Policy,
		r.MeanLatency, r.P99Latency, r.AvgUtil*100,
		r.RelPowerMeasured*100, r.RelPowerIdeal*100)
}
