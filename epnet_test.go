package epnet

import (
	"encoding/json"
	"math"
	"os"
	"testing"
	"time"
)

func TestConfigValidateDefaults(t *testing.T) {
	cfg := Config{K: 4, N: 2, C: 4, Duration: time.Millisecond}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Workload != WorkloadUniform || cfg.Policy != PolicyBaseline {
		t.Errorf("defaults: workload=%q policy=%q", cfg.Workload, cfg.Policy)
	}
	if cfg.TargetUtil != 0.5 || cfg.Reactivation != time.Microsecond {
		t.Errorf("defaults: target=%v react=%v", cfg.TargetUtil, cfg.Reactivation)
	}
	if cfg.Epoch != 10*time.Microsecond {
		t.Errorf("default epoch = %v, want 10x reactivation", cfg.Epoch)
	}
	if cfg.MaxPacket != 2048 {
		t.Errorf("default max packet = %d", cfg.MaxPacket)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	base := func() Config { return Config{K: 4, N: 2, C: 4, Duration: time.Millisecond} }
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"bad topology", func(c *Config) { c.Topology = "ring" }},
		{"dyntopo on fattree", func(c *Config) { c.Topology = TopoFatTree; c.DynTopo = true }},
		{"k too small", func(c *Config) { c.K = 1 }},
		{"c too small", func(c *Config) { c.C = 0 }},
		{"n too small", func(c *Config) { c.N = 1 }},
		{"bad workload", func(c *Config) { c.Workload = "netflix" }},
		{"bad policy", func(c *Config) { c.Policy = "magic" }},
		{"bad load", func(c *Config) { c.Load = 1.0 }},
		{"bad target", func(c *Config) { c.TargetUtil = 1.5 }},
		{"negative reactivation", func(c *Config) { c.Reactivation = -time.Microsecond }},
		{"epoch below reactivation", func(c *Config) { c.Epoch = time.Microsecond; c.Reactivation = 2 * time.Microsecond }},
		{"zero duration", func(c *Config) { c.Duration = 0 }},
		{"negative warmup", func(c *Config) { c.Warmup = -1 }},
		{"tiny packet", func(c *Config) { c.MaxPacket = 32 }},
		{"negative shards", func(c *Config) { c.Shards = -1 }},
		{"tracing with explicit shards", func(c *Config) { c.Shards = 2; c.TraceOut = "x.trace" }},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestConfigAutoShards pins the Shards=0 auto resolution: one worker
// per CPU, capped so every shard keeps at least 8 switches, serial when
// the run needs the serial engine, untouched when explicit.
func TestConfigAutoShards(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		procs int
		want  int
	}{
		// 4-ary 2-flat: 4 switches, too small to split at all.
		{"small fbfly", Config{Topology: TopoFBFLY, K: 4, N: 2, C: 4}, 8, 1},
		// 15-ary 3-flat: 225 switches, cap 28 — CPU-bound at 8 procs.
		{"paper fbfly", Config{Topology: TopoFBFLY, K: 15, N: 3, C: 15}, 8, 8},
		// Same topology, huge machine: the 225/8 cap binds.
		{"paper fbfly wide", Config{Topology: TopoFBFLY, K: 15, N: 3, C: 15}, 64, 28},
		// Fat tree K=8: 16 switches, cap 2.
		{"fattree", Config{Topology: TopoFatTree, K: 8, C: 8}, 8, 2},
		// Clos3 K=8: 80 chips, cap 10.
		{"clos3", Config{Topology: TopoClos3, K: 8, C: 8}, 4, 4},
		// Tracing needs the serial engine: auto resolves to 1.
		{"tracing", Config{Topology: TopoFBFLY, K: 15, N: 3, C: 15, TraceOut: "x"}, 8, 1},
	}
	for _, tc := range cases {
		if got := tc.cfg.autoShards(tc.procs); got != tc.want {
			t.Errorf("%s: autoShards(%d) = %d, want %d", tc.name, tc.procs, got, tc.want)
		}
	}

	// Validate resolves 0 through the same path (procs from the runtime,
	// so only bounds are portable) and leaves explicit counts alone.
	cfg := Config{K: 4, N: 2, C: 4, Duration: time.Millisecond}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Shards < 1 {
		t.Errorf("auto shards resolved to %d, want >= 1", cfg.Shards)
	}
	cfg = Config{K: 4, N: 2, C: 4, Duration: time.Millisecond, Shards: 1}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Shards != 1 {
		t.Errorf("explicit Shards=1 rewritten to %d", cfg.Shards)
	}
	// Auto + tracing is fine — it picks the serial engine.
	cfg = Config{K: 4, N: 2, C: 4, Duration: time.Millisecond, TraceOut: "x.trace"}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Shards != 1 {
		t.Errorf("auto shards with tracing = %d, want 1", cfg.Shards)
	}
}

// fastCfg returns a quick configuration for facade tests.
func fastCfg() Config {
	return NewConfig(TopoFBFLY,
		WithShape(4, 2, 4),
		WithWindow(100*time.Microsecond, 500*time.Microsecond))
}

func TestRunBaseline(t *testing.T) {
	cfg := fastCfg()
	cfg.Policy = PolicyBaseline
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 16 || res.Switches != 4 {
		t.Errorf("size: %d hosts %d switches", res.Hosts, res.Switches)
	}
	// Baseline burns full power under both profiles.
	if math.Abs(res.RelPowerMeasured-1) > 1e-9 || math.Abs(res.RelPowerIdeal-1) > 1e-9 {
		t.Errorf("baseline power: measured=%v ideal=%v", res.RelPowerMeasured, res.RelPowerIdeal)
	}
	if res.RateShare[40] < 0.999 {
		t.Errorf("baseline rate share at 40G = %v", res.RateShare[40])
	}
	if res.Packets == 0 || res.MeanLatency == 0 {
		t.Error("no latency samples collected")
	}
	if res.Reconfigurations != 0 {
		t.Errorf("baseline reconfigured %d times", res.Reconfigurations)
	}
}

func TestRunHalveDoubleSavesPower(t *testing.T) {
	cfg := fastCfg()
	cfg.Policy = PolicyHalveDouble
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RelPowerMeasured >= 0.95 {
		t.Errorf("measured power %v: no savings", res.RelPowerMeasured)
	}
	if res.RelPowerIdeal >= res.RelPowerMeasured {
		t.Errorf("ideal power %v not below measured %v", res.RelPowerIdeal, res.RelPowerMeasured)
	}
	// Ideal power can never beat the ideal bound (average utilization)
	// by construction.
	if res.RelPowerIdeal < res.AvgUtil-0.01 {
		t.Errorf("ideal power %v below the ideal bound %v", res.RelPowerIdeal, res.AvgUtil)
	}
	if res.Reconfigurations == 0 {
		t.Error("no reconfigurations recorded")
	}
}

func TestRunIndependentBeatsPaired(t *testing.T) {
	paired := fastCfg()
	paired.Policy = PolicyHalveDouble
	pres, err := Run(paired)
	if err != nil {
		t.Fatal(err)
	}
	indep := paired
	indep.Independent = true
	ires, err := Run(indep)
	if err != nil {
		t.Fatal(err)
	}
	if ires.RelPowerIdeal >= pres.RelPowerIdeal {
		t.Errorf("independent %v not below paired %v (ideal profile)",
			ires.RelPowerIdeal, pres.RelPowerIdeal)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := fastCfg()
	cfg.Policy = PolicyHalveDouble
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanLatency != b.MeanLatency || a.RelPowerIdeal != b.RelPowerIdeal ||
		a.DeliveredPackets != b.DeliveredPackets {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestRunFatTree(t *testing.T) {
	cfg := fastCfg()
	cfg.Topology = TopoFatTree
	cfg.Policy = PolicyHalveDouble
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 16 || res.Switches != 8 {
		t.Errorf("fat tree size: %d hosts %d switches", res.Hosts, res.Switches)
	}
	if res.RelPowerMeasured >= 1 {
		t.Error("fat tree rate tuning saved nothing")
	}
	if res.Packets == 0 {
		t.Error("no deliveries on fat tree")
	}
}

func TestRunDynTopo(t *testing.T) {
	cfg := fastCfg()
	cfg.Policy = PolicyHalveDouble
	cfg.DynTopo = true
	cfg.Workload = WorkloadAdvert
	cfg.Duration = 2 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DynTransitions == 0 {
		t.Error("dynamic topology never transitioned on a low-load workload")
	}
	if res.OffShare == 0 {
		t.Error("no channel-time spent off")
	}
}

func TestRunStaticMin(t *testing.T) {
	cfg := fastCfg()
	cfg.Policy = PolicyStaticMin
	cfg.Workload = WorkloadUniform
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The always-slowest network consumes the Figure 5 floor...
	if math.Abs(res.RelPowerMeasured-0.42) > 0.001 {
		t.Errorf("static-min measured power = %v, want 0.42", res.RelPowerMeasured)
	}
	if math.Abs(res.RelPowerIdeal-0.0625) > 0.001 {
		t.Errorf("static-min ideal power = %v, want 0.0625", res.RelPowerIdeal)
	}
	// ...but cannot keep up with 23% offered load on 6.25% links.
	if res.BacklogBytes == 0 {
		t.Error("static-min kept up with Uniform load; expected growing backlog")
	}
}

func TestRunString(t *testing.T) {
	cfg := fastCfg()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := res.String(); s == "" {
		t.Error("empty result string")
	}
}

func TestWorkloadLabel(t *testing.T) {
	if WorkloadLabel(WorkloadUniform) != "Uniform" ||
		WorkloadLabel(WorkloadAdvert) != "Advert" ||
		WorkloadLabel(WorkloadSearch) != "Search" {
		t.Error("canonical labels wrong")
	}
	if WorkloadLabel(WorkloadHotspot) != "hotspot" {
		t.Errorf("fallthrough label = %q", WorkloadLabel(WorkloadHotspot))
	}
}

func TestSavingsProjection(t *testing.T) {
	w, d := SavingsProjection(0.2) // 80% saved
	wantW := 737280.0 * 0.8
	if math.Abs(w-wantW) > 1 {
		t.Errorf("saved watts = %v, want %v", w, wantW)
	}
	if d < 2.2e6 || d > 2.5e6 {
		t.Errorf("saved dollars = %v, want ~$2.3M", d)
	}
}

func TestAnalyticsWrappers(t *testing.T) {
	tab := Table1()
	if tab.Clos.SwitchChips != 8235 || tab.FBFLY.SwitchChips != 4096 {
		t.Error("Table1 wrapper mismatch")
	}
	if _, err := CustomTable1(8, 5, 8, 36); err != nil {
		t.Errorf("CustomTable1: %v", err)
	}
	if _, err := CustomTable1(1, 5, 8, 36); err == nil {
		t.Error("CustomTable1 accepted k=1")
	}
	f1 := Figure1()
	if len(f1.Scenarios) != 3 {
		t.Error("Figure1 wrapper mismatch")
	}
	pts, idle, off := Figure5()
	if len(pts) != 5 || idle <= off {
		t.Errorf("Figure5 wrapper: %d points idle=%v off=%v", len(pts), idle, off)
	}
	if len(Figure6()) != 16 {
		t.Error("Figure6 wrapper mismatch")
	}
	modes := Table2()
	if len(modes) != 6 {
		t.Errorf("Table2: %d modes", len(modes))
	}
	if CostOfWatts(1000) < 3900 || CostOfWatts(1000) > 3950 {
		t.Errorf("CostOfWatts(1kW) = %v", CostOfWatts(1000))
	}
}

// testEval is a very small experiment scale so experiment-shape tests
// run quickly.
func testEval() EvalConfig {
	e := DefaultEval()
	e.K, e.N, e.C = 4, 2, 4
	e.Warmup = 200 * time.Microsecond
	e.Duration = time.Millisecond
	return e
}

func TestFigure7Shape(t *testing.T) {
	res, err := Figure7(testEval())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, f := range res.Paired {
		sum += f
	}
	if math.Abs(sum-1) > 0.01 {
		t.Errorf("paired shares sum to %v", sum)
	}
	// Independent control spends at least as much time at the lowest
	// rate as paired control.
	if res.Independent[2.5] < res.Paired[2.5] {
		t.Errorf("independent 2.5G share %v below paired %v",
			res.Independent[2.5], res.Paired[2.5])
	}
}

func TestFigure8Shape(t *testing.T) {
	rows, err := Figure8(testEval())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.IdealIndependent >= r.IdealPaired {
			t.Errorf("%s: independent %v not below paired %v",
				r.Workload, r.IdealIndependent, r.IdealPaired)
		}
		if r.MeasuredPaired < 0.42 {
			t.Errorf("%s: measured power %v below the Figure 5 floor", r.Workload, r.MeasuredPaired)
		}
		if r.IdealPaired < r.IdealBound-0.02 {
			t.Errorf("%s: ideal power %v beats the bound %v", r.Workload, r.IdealPaired, r.IdealBound)
		}
	}
}

func TestRunQueueAwarePolicy(t *testing.T) {
	cfg := fastCfg()
	cfg.Policy = PolicyQueueAware
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RelPowerMeasured >= 1 || res.Reconfigurations == 0 {
		t.Errorf("queue-aware policy inactive: power=%v reconfigs=%d",
			res.RelPowerMeasured, res.Reconfigurations)
	}
}

func TestRunModeAwareReactivation(t *testing.T) {
	cfg := fastCfg()
	cfg.Policy = PolicyHalveDouble
	cfg.ModeAwareReactivation = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconfigurations == 0 {
		t.Error("no reconfigurations with mode-aware penalties")
	}
}

func TestRunDORRouting(t *testing.T) {
	cfg := fastCfg()
	cfg.N = 3 // give DOR multiple dimensions to order
	cfg.Routing = RoutingDOR
	cfg.Policy = PolicyHalveDouble
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets == 0 {
		t.Error("no deliveries under DOR")
	}
	// DOR on a fat tree is rejected.
	bad := fastCfg()
	bad.Topology = TopoFatTree
	bad.Routing = RoutingDOR
	if _, err := Run(bad); err == nil {
		t.Error("DOR accepted on fat tree")
	}
}

func TestRunClassPowerBreakdown(t *testing.T) {
	cfg := fastCfg()
	cfg.N = 3 // dims >= 2 so optical links exist
	cfg.Policy = PolicyHalveDouble
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.ClassPower["electrical"]; !ok {
		t.Fatal("no electrical class power")
	}
	if _, ok := res.ClassPower["optical"]; !ok {
		t.Fatal("no optical class power")
	}
	for class, p := range res.ClassPower {
		if p <= 0 || p > 1 {
			t.Errorf("class %s power %v out of (0,1]", class, p)
		}
	}
}

func TestRunTraceWorkload(t *testing.T) {
	// Generate a trace through the public pipeline and replay it.
	dir := t.TempDir()
	path := dir + "/t.trace"
	cfg := fastCfg()
	cfg.Workload = WorkloadTrace
	cfg.TracePath = path
	if _, err := Run(cfg); err == nil {
		t.Fatal("missing trace file accepted")
	}
	// Write a tiny trace by hand using the tracegen format via the
	// internal package is off-limits here; drive cmd/tracegen's logic
	// through a minimal file instead: header + one record.
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	// magic, count=1, record {at=1us(ps), src=0, dst=1, size=4096}
	f.Write([]byte("EPTRACE1"))
	le := func(v uint64) []byte {
		b := make([]byte, 8)
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		return b
	}
	f.Write(le(1))
	f.Write(le(1e6)) // 1 us in ps
	f.Write(le(0))
	f.Write(le(1))
	f.Write(le(4096))
	f.Close()

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.InjectedPackets != 2 { // 4096 B = two 2048 B packets
		t.Errorf("injected %d packets, want 2", res.InjectedPackets)
	}
	if res.DeliveredPackets != 2 {
		t.Errorf("delivered %d packets, want 2", res.DeliveredPackets)
	}
}

func TestRoutingAblationShape(t *testing.T) {
	rows, err := RoutingAblation(testEval(), WorkloadPermutation)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Routing != RoutingAdaptive || rows[1].Routing != RoutingDOR {
		t.Fatal("row order")
	}
	if rows[0].P99Lat > rows[1].P99Lat {
		// Adaptive should not be worse at the tail on permutation.
	} else if rows[0].P99Lat == 0 {
		t.Error("no latency measured")
	}
}

func TestReactivationAblationShape(t *testing.T) {
	rows, err := ReactivationAblation(testEval(), WorkloadSearch)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Reconfigs == 0 {
			t.Errorf("%s: no reconfigurations", r.Name)
		}
	}
}

func TestPolicyAblationShape(t *testing.T) {
	rows, err := PolicyAblation(testEval(), WorkloadSearch)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[PolicyKind]PolicyAblationRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	if byName[PolicyBaseline].RelPowerM != 1 {
		t.Error("baseline not at full power")
	}
	if byName[PolicyStaticMin].RelPowerM > 0.43 {
		t.Errorf("static-min measured %v, want 42%% floor", byName[PolicyStaticMin].RelPowerM)
	}
	if byName[PolicyStaticMin].Backlog <= byName[PolicyHalveDouble].Backlog {
		t.Error("static-min should have the largest backlog")
	}
}

func TestDynTopoExperimentShape(t *testing.T) {
	rows, err := DynTopoExperiment(testEval(), WorkloadAdvert)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].OffShare != 0 {
		t.Error("rate-tuning-only run powered links off")
	}
	if rows[1].Transitions == 0 {
		t.Error("dyntopo run never transitioned")
	}
}

func TestResultEnrichment(t *testing.T) {
	cfg := fastCfg()
	cfg.Policy = PolicyHalveDouble
	cfg.Workload = WorkloadSearch
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Asymmetry: the Search trace is read-heavy, so link pairs are
	// unbalanced.
	if res.Asymmetry <= 0.1 || res.Asymmetry > 1 {
		t.Errorf("asymmetry = %v, want substantial (0.1, 1]", res.Asymmetry)
	}
	// Energy estimate: relative power x part power.
	wantWatts := res.RelPowerMeasured * (float64(res.Switches)*100 + float64(res.Hosts)*10)
	if math.Abs(res.EstimatedWatts-wantWatts) > 0.01 {
		t.Errorf("EstimatedWatts = %v, want %v", res.EstimatedWatts, wantWatts)
	}
	wantJoules := res.EstimatedWatts * cfg.Duration.Seconds()
	if math.Abs(res.EnergyJoules-wantJoules)/wantJoules > 0.001 {
		t.Errorf("EnergyJoules = %v, want %v", res.EnergyJoules, wantJoules)
	}
	// Latency CDF: counts sum to Packets, bounds ascend.
	var total int64
	prev := time.Duration(-1)
	for _, b := range res.LatencyCDF {
		if b.Upper <= prev {
			t.Fatal("CDF bounds not ascending")
		}
		prev = b.Upper
		total += b.Count
	}
	if total != res.Packets {
		t.Errorf("CDF counts sum %d, packets %d", total, res.Packets)
	}
}

func TestUniformMoreSymmetricThanSearch(t *testing.T) {
	run := func(w WorkloadKind) float64 {
		cfg := fastCfg()
		cfg.Workload = w
		cfg.Duration = 2 * time.Millisecond
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Asymmetry
	}
	uni := run(WorkloadUniform)
	sea := run(WorkloadSearch)
	if sea <= uni {
		t.Errorf("search asymmetry %v not above uniform %v", sea, uni)
	}
}

func TestOverSubscriptionShape(t *testing.T) {
	rows, err := OverSubscription(testEval(), WorkloadSearch, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// More concentration = more hosts on the same switches = lower
	// per-host switch power.
	for i := 1; i < len(rows); i++ {
		if rows[i].Hosts <= rows[i-1].Hosts {
			t.Error("hosts not increasing with c")
		}
		if rows[i].WattsPerHost >= rows[i-1].WattsPerHost {
			t.Error("per-host watts not decreasing with c")
		}
	}
}

func TestTopologyComparisonShape(t *testing.T) {
	rows, err := TopologyComparison(testEval(), WorkloadSearch)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Topology != TopoFBFLY || rows[1].Topology != TopoFatTree ||
		rows[2].Topology != TopoClos3 {
		t.Fatal("row order")
	}
	if rows[0].Hosts != rows[1].Hosts {
		t.Errorf("host counts differ: %d vs %d", rows[0].Hosts, rows[1].Hosts)
	}
	// Both folded-Clos variants need more switching hardware than the
	// flattened butterfly for a comparable host count.
	if rows[1].Switches <= rows[0].Switches {
		t.Errorf("fat tree switches %d not above fbfly %d", rows[1].Switches, rows[0].Switches)
	}
	if rows[2].Switches <= rows[0].Switches {
		t.Errorf("clos3 switches %d not above fbfly %d", rows[2].Switches, rows[0].Switches)
	}
}

func TestRunClos3(t *testing.T) {
	cfg := fastCfg()
	cfg.Topology = TopoClos3
	cfg.K = 4
	cfg.Policy = PolicyHalveDouble
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 16 || res.Switches != 20 {
		t.Errorf("clos3 size: %d hosts %d switches, want 16/20", res.Hosts, res.Switches)
	}
	if res.InjectedPackets == 0 || res.DeliveredPackets == 0 {
		t.Error("no traffic on clos3")
	}
	// Large shuffle blocks can still be draining at the horizon; most
	// packets must get through.
	if float64(res.DeliveredPackets) < 0.5*float64(res.InjectedPackets) {
		t.Errorf("clos3 delivered %d of %d", res.DeliveredPackets, res.InjectedPackets)
	}
	if res.RelPowerMeasured >= 1 {
		t.Error("clos3 rate tuning saved nothing")
	}
	// Odd K rejected.
	bad := fastCfg()
	bad.Topology = TopoClos3
	bad.K = 5
	if _, err := Run(bad); err == nil {
		t.Error("odd clos3 radix accepted")
	}
}

func TestPowerTrace(t *testing.T) {
	cfg := fastCfg()
	cfg.Policy = PolicyHalveDouble
	cfg.PowerSampleEvery = 50 * time.Microsecond
	cfg.Duration = time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PowerTrace) < 15 || len(res.PowerTrace) > 21 {
		t.Fatalf("trace samples = %d, want ~20", len(res.PowerTrace))
	}
	prev := time.Duration(-1)
	for _, s := range res.PowerTrace {
		if s.At <= prev {
			t.Fatal("trace times not ascending")
		}
		prev = s.At
		if s.Measured < 0.4 || s.Measured > 1.001 {
			t.Errorf("measured sample %v out of range", s.Measured)
		}
		if s.Ideal < 0 || s.Ideal > 1.001 {
			t.Errorf("ideal sample %v out of range", s.Ideal)
		}
		if s.Util < 0 || s.Util > 1.5 {
			t.Errorf("util sample %v out of range", s.Util)
		}
		// Ideal power cannot exceed measured.
		if s.Ideal > s.Measured+1e-9 {
			t.Errorf("ideal %v above measured %v", s.Ideal, s.Measured)
		}
	}
	// Sampling off by default.
	cfg.PowerSampleEvery = 0
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PowerTrace) != 0 {
		t.Error("trace populated with sampling off")
	}
}

// TestRunLinkFailures: abruptly killing inter-switch links mid-run must
// not lose traffic — adaptive routing misroutes around the failures
// (§1's failure-domain decoupling).
func TestRunLinkFailures(t *testing.T) {
	cfg := fastCfg()
	cfg.K, cfg.N, cfg.C = 8, 2, 8
	cfg.Policy = PolicyHalveDouble
	cfg.Workload = WorkloadUniform
	cfg.FailLinks = 4
	cfg.Duration = 2 * time.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OffShare == 0 {
		t.Error("no channel-time off after failures")
	}
	// Nearly everything still delivers (in-flight tail allowed).
	if float64(res.DeliveredPackets) < 0.9*float64(res.InjectedPackets) {
		t.Errorf("delivered %d of %d with failures", res.DeliveredPackets, res.InjectedPackets)
	}
	// Validation: failures need FBFLY + adaptive.
	bad := cfg
	bad.Topology = TopoFatTree
	if _, err := Run(bad); err == nil {
		t.Error("failures on fat tree accepted")
	}
	bad = cfg
	bad.N = 3
	bad.Routing = RoutingDOR
	if _, err := Run(bad); err == nil {
		t.Error("failures with DOR accepted")
	}
}

func TestMessageLatency(t *testing.T) {
	cfg := fastCfg()
	cfg.Policy = PolicyHalveDouble
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages == 0 {
		t.Fatal("no message completions recorded")
	}
	// Message means can sit below packet means (small messages finish
	// fast while large messages contribute many slow packets), but a
	// completion time can never be zero.
	if res.MsgMeanLatency <= 0 {
		t.Errorf("message mean %v", res.MsgMeanLatency)
	}
	if res.MsgP99Latency < res.MsgMeanLatency {
		t.Errorf("message p99 %v below mean %v", res.MsgP99Latency, res.MsgMeanLatency)
	}
}

func TestRateShareMapJSON(t *testing.T) {
	m := RateShareMap{2.5: 0.75, 40: 0.25}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back RateShareMap
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[2.5] != 0.75 || back[40] != 0.25 {
		t.Errorf("round trip = %v", back)
	}
	// Bad keys rejected.
	if err := json.Unmarshal([]byte(`{"not-a-number":1}`), &back); err == nil {
		t.Error("bad key accepted")
	}
}

func TestResilienceShape(t *testing.T) {
	rows, err := Resilience(testEval(), WorkloadSearch, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// In-flight shuffle blocks at the horizon keep this below 1.0
		// even with zero failures; failures must not collapse it.
		if r.DeliveryRate < 0.6 {
			t.Errorf("%d failures: delivery %.2f", r.FailedLinks, r.DeliveryRate)
		}
	}
}

func TestSerDesSweepAPI(t *testing.T) {
	for _, ch := range []SerDesChannel{SerDesShortCopper, SerDesLongCopper, SerDesOptical} {
		pts, best, err := SerDesSweep(ch)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) == 0 || !best.Feasible {
			t.Errorf("%s: %d points, best feasible=%v", ch, len(pts), best.Feasible)
		}
	}
	if _, _, err := SerDesSweep("coax"); err == nil {
		t.Error("unknown channel accepted")
	}
}

func TestRunTornado(t *testing.T) {
	cfg := fastCfg()
	cfg.Workload = WorkloadTornado
	cfg.Policy = PolicyHalveDouble
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets == 0 {
		t.Error("no tornado deliveries")
	}
	// Tornado loads host uplinks and downlinks alike (every host both
	// sends and receives), so pair asymmetry is moderate rather than
	// extreme — but still present on inter-switch links.
	if res.Asymmetry < 0.1 {
		t.Errorf("tornado asymmetry = %v, want > 0.1", res.Asymmetry)
	}
}
