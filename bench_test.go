package epnet

// Benchmarks regenerating every table and figure of the paper. Each
// benchmark reports the headline metrics of its table/figure via
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as the
// reproduction harness at benchmark scale. EXPERIMENTS.md records the
// paper-vs-measured comparison from the full cmd/experiments runs.

import (
	"testing"
	"time"
)

// benchEval is the evaluation scale used by the benchmarks: small
// enough that each figure regenerates in seconds.
func benchEval() EvalConfig {
	e := DefaultEval()
	e.K, e.N, e.C = 4, 2, 4
	e.Warmup = 200 * time.Microsecond
	e.Duration = time.Millisecond
	return e
}

// BenchmarkTable1 regenerates Table 1 (analytic part counts and power
// for the 32k-host folded Clos vs flattened butterfly).
func BenchmarkTable1(b *testing.B) {
	var t Table1Result
	for i := 0; i < b.N; i++ {
		t = Table1()
	}
	b.ReportMetric(t.Clos.TotalWatts, "clos-W")
	b.ReportMetric(t.FBFLY.TotalWatts, "fbfly-W")
	b.ReportMetric(t.SavingsDollars, "saved-$4yr")
}

// BenchmarkFigure1 regenerates Figure 1 (server vs network power).
func BenchmarkFigure1(b *testing.B) {
	var f Figure1Result
	for i := 0; i < b.N; i++ {
		f = Figure1()
	}
	b.ReportMetric(f.Scenarios[1].NetworkFraction*100, "network-pct-at-15pct-util")
	b.ReportMetric(f.NetworkSavingsWatts/1000, "saved-kW")
}

// BenchmarkFigure5 regenerates the measured switch power profile.
func BenchmarkFigure5(b *testing.B) {
	var floor float64
	for i := 0; i < b.N; i++ {
		pts, _, _ := Figure5()
		floor = pts[0].RelativePower
	}
	b.ReportMetric(floor*100, "slowest-mode-power-pct")
}

// BenchmarkFigure6 regenerates the ITRS trend series.
func BenchmarkFigure6(b *testing.B) {
	var last ITRSPoint
	for i := 0; i < b.N; i++ {
		pts := Figure6()
		last = pts[len(pts)-1]
	}
	b.ReportMetric(last.IOBandwidthTb, "2023-io-Tbps")
}

// BenchmarkFigure7 regenerates the time-at-rate distribution for Search
// under paired vs independent channel control.
func BenchmarkFigure7(b *testing.B) {
	var res Figure7Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = Figure7(benchEval())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Paired[2.5]*100, "paired-2.5G-pct")
	b.ReportMetric(res.Independent[2.5]*100, "indep-2.5G-pct")
}

// BenchmarkFigure8a regenerates network power under the measured
// channel profile.
func BenchmarkFigure8a(b *testing.B) {
	var rows []Figure8Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = Figure8(benchEval())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MeasuredIndependent*100, string(r.Workload)+"-measured-pct")
	}
}

// BenchmarkFigure8b regenerates network power under ideally
// proportional channels (the paper's 6x headline).
func BenchmarkFigure8b(b *testing.B) {
	var rows []Figure8Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = Figure8(benchEval())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.IdealIndependent*100, string(r.Workload)+"-ideal-pct")
		b.ReportMetric(r.IdealBound*100, string(r.Workload)+"-bound-pct")
	}
}

// BenchmarkFigure9a regenerates the latency-vs-target-utilization
// sensitivity.
func BenchmarkFigure9a(b *testing.B) {
	var rows []Figure9aRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = Figure9a(benchEval())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Workload == WorkloadSearch {
			b.ReportMetric(float64(r.AddedMean.Microseconds()),
				"search-added-us-at-"+itoa(int(r.Target*100)))
		}
	}
}

// BenchmarkFigure9b regenerates the latency-vs-reactivation-time
// sensitivity. The 100 µs point needs a long window, so this benchmark
// uses the Search workload only.
func BenchmarkFigure9b(b *testing.B) {
	reacts := []time.Duration{100 * time.Nanosecond, time.Microsecond, 10 * time.Microsecond}
	e := benchEval()
	for i := 0; i < b.N; i++ {
		for _, react := range reacts {
			cfg := e.base()
			cfg.Workload = WorkloadSearch
			cfg.Policy = PolicyHalveDouble
			cfg.Reactivation = react
			cfg.Epoch = 10 * react
			if min := 40 * cfg.Epoch; cfg.Duration < min {
				cfg.Duration = min
			}
			base := cfg
			base.Policy = PolicyBaseline
			bres, err := Run(base)
			if err != nil {
				b.Fatal(err)
			}
			res, err := Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			added := res.MeanLatency - bres.MeanLatency
			b.ReportMetric(float64(added.Microseconds()), "added-us-react-"+react.String())
		}
	}
}

// BenchmarkPolicyAblation compares the §5.2 heuristics.
func BenchmarkPolicyAblation(b *testing.B) {
	var rows []PolicyAblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = PolicyAblation(benchEval(), WorkloadSearch)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.RelPowerID*100, string(r.Policy)+"-ideal-pct")
	}
}

// BenchmarkDynamicTopology measures the §5.1 dynamic topology proposal.
func BenchmarkDynamicTopology(b *testing.B) {
	var rows []DynTopoRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = DynTopoExperiment(benchEval(), WorkloadAdvert)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[1].OffShare*100, "off-share-pct")
	b.ReportMetric(rows[1].RelPowerID*100, "dyntopo-ideal-pct")
}

// BenchmarkSimulatorThroughput measures raw simulator performance:
// events and packets per second of wall time on the default network.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var pkts int64
	var dur time.Duration
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.K, cfg.N, cfg.C = 8, 2, 8
		cfg.Workload = WorkloadUniform
		cfg.Warmup = 0
		cfg.Duration = time.Millisecond
		start := time.Now()
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		dur += time.Since(start)
		pkts += res.DeliveredPackets
	}
	if dur > 0 {
		b.ReportMetric(float64(pkts)/dur.Seconds(), "pkts/s")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
