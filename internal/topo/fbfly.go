package topo

import "fmt"

// FBFLY is a flattened butterfly: a k-ary n-flat with concentration c,
// written (c, k, n) in the paper. It has k^(n-1) switches arranged in
// n-1 "switch dimensions" of radix k; within every dimension all k
// switches that differ only in that coordinate are fully connected.
// Each switch additionally concentrates c hosts, so the network scales
// to c * k^(n-1) hosts.
//
// Port layout of each switch (radix = c + (k-1)(n-1)):
//
//	ports [0, c)                          host (terminal) ports
//	ports [c + d*(k-1), c + (d+1)*(k-1))  dimension-d peers, d in [0, n-1)
//
// Within a dimension-d port group, ports are ordered by the peer's
// coordinate value, skipping the switch's own value.
//
// The canonical paper configurations are the 8-ary 5-flat with c=8
// (32k hosts, 36-port switches) used for the Table 1 power comparison,
// and the 15-ary 3-flat with c=15 (3,375 hosts) used for simulation.
type FBFLY struct {
	K int // radix of each dimension (switches per dimension)
	C int // concentration: hosts per switch
	D int // number of switch dimensions = n-1

	numSwitches int
	strides     []int // stride of each dimension in the switch index
}

// NewFBFLY constructs a k-ary n-flat with concentration c. n counts the
// host dimension plus the switch dimensions, matching the paper: an
// "8-ary 5-flat" has n=5 and four switch dimensions.
func NewFBFLY(k, n, c int) (*FBFLY, error) {
	if k < 2 {
		return nil, fmt.Errorf("fbfly: k must be >= 2, got %d", k)
	}
	if n < 2 {
		return nil, fmt.Errorf("fbfly: n must be >= 2 (one host + one switch dimension), got %d", n)
	}
	if c < 1 {
		return nil, fmt.Errorf("fbfly: concentration must be >= 1, got %d", c)
	}
	d := n - 1
	num := 1
	strides := make([]int, d)
	for i := 0; i < d; i++ {
		strides[i] = num
		// Overflow guard: refuse absurd sizes rather than wrap.
		if num > (1<<31)/k {
			return nil, fmt.Errorf("fbfly: k=%d n=%d too large", k, n)
		}
		num *= k
	}
	return &FBFLY{K: k, C: c, D: d, numSwitches: num, strides: strides}, nil
}

// MustFBFLY is NewFBFLY that panics on error, for tests and tables of
// known-good configurations.
func MustFBFLY(k, n, c int) *FBFLY {
	f, err := NewFBFLY(k, n, c)
	if err != nil {
		panic(err)
	}
	return f
}

// Name implements Topology.
func (f *FBFLY) Name() string {
	return fmt.Sprintf("%d-ary %d-flat (c=%d)", f.K, f.D+1, f.C)
}

// NumSwitches implements Topology.
func (f *FBFLY) NumSwitches() int { return f.numSwitches }

// NumHosts implements Topology.
func (f *FBFLY) NumHosts() int { return f.C * f.numSwitches }

// Radix implements Topology: c + (k-1)(n-1) ports per switch.
func (f *FBFLY) Radix() int { return f.C + (f.K-1)*f.D }

// Coord returns the coordinate of switch sw in dimension dim.
func (f *FBFLY) Coord(sw, dim int) int { return sw / f.strides[dim] % f.K }

// Coords returns all D coordinates of switch sw. It allocates; hot
// loops should use CoordsInto with a reused buffer.
func (f *FBFLY) Coords(sw int) []int {
	return f.CoordsInto(sw, make([]int, f.D))
}

// CoordsInto writes all D coordinates of switch sw into buf, which must
// have length at least D, and returns buf[:D]. It is the
// allocation-free form of Coords for construction and routing loops
// that decompose many switch indices.
func (f *FBFLY) CoordsInto(sw int, buf []int) []int {
	buf = buf[:f.D]
	for d, stride := range f.strides {
		buf[d] = sw / stride % f.K
	}
	return buf
}

// SwitchAt returns the switch index with the given coordinates.
func (f *FBFLY) SwitchAt(coords []int) int {
	if len(coords) != f.D {
		panic(fmt.Sprintf("fbfly: SwitchAt needs %d coords, got %d", f.D, len(coords)))
	}
	sw := 0
	for d, v := range coords {
		if v < 0 || v >= f.K {
			panic(fmt.Sprintf("fbfly: coordinate %d out of range [0,%d)", v, f.K))
		}
		sw += v * f.strides[d]
	}
	return sw
}

// HostAttachment implements Topology: host h attaches to switch h/c on
// port h%c.
func (f *FBFLY) HostAttachment(h int) (sw, port int) { return h / f.C, h % f.C }

// HostsOf returns the half-open host index range [lo, hi) attached to sw.
func (f *FBFLY) HostsOf(sw int) (lo, hi int) { return sw * f.C, (sw + 1) * f.C }

// PortToPeer returns the output port of switch sw that reaches the peer
// switch in dimension dim whose coordinate in that dimension is val.
// It panics if val equals sw's own coordinate (there is no self link).
func (f *FBFLY) PortToPeer(sw, dim, val int) int {
	own := f.Coord(sw, dim)
	if val == own {
		panic(fmt.Sprintf("fbfly: switch %d has no port to itself in dim %d", sw, dim))
	}
	idx := val
	if val > own {
		idx--
	}
	return f.C + dim*(f.K-1) + idx
}

// PortDim returns the dimension a switch port belongs to, or -1 for a
// host port. Ports beyond the radix also return -1.
func (f *FBFLY) PortDim(port int) int {
	if port < f.C {
		return -1
	}
	d := (port - f.C) / (f.K - 1)
	if d >= f.D {
		return -1
	}
	return d
}

// PeerCoord returns, for an inter-switch port of switch sw, the
// coordinate value (in the port's dimension) of the switch on the other
// end.
func (f *FBFLY) PeerCoord(sw, port int) int {
	dim := f.PortDim(port)
	if dim < 0 {
		panic(fmt.Sprintf("fbfly: port %d is not an inter-switch port", port))
	}
	own := f.Coord(sw, dim)
	idx := (port - f.C) % (f.K - 1)
	if idx >= own {
		idx++
	}
	return idx
}

// Peer implements Topology.
func (f *FBFLY) Peer(sw, port int) (Endpoint, bool) {
	if port < 0 || port >= f.Radix() {
		return Endpoint{}, false
	}
	if port < f.C {
		return Endpoint{Kind: KindHost, ID: sw*f.C + port}, true
	}
	dim := f.PortDim(port)
	val := f.PeerCoord(sw, port)
	own := f.Coord(sw, dim)
	peer := sw + (val-own)*f.strides[dim]
	return Endpoint{Kind: KindSwitch, ID: peer, Port: f.PortToPeer(peer, dim, own)}, true
}

// LinkClass implements Topology. Following the paper's packaging-locality
// argument (§2.2): host links and first-dimension (intra-group) links are
// short passive copper; links in higher dimensions are optical. This
// yields e = (k-1) + c electrical ports per switch.
func (f *FBFLY) LinkClass(sw, port int) LinkClass {
	if port < f.C {
		return Electrical
	}
	if f.PortDim(port) == 0 {
		return Electrical
	}
	return Optical
}

// ElectricalFraction returns the fraction of switch ports wired with
// electrical links: ((k-1)+c) / (c+(k-1)(n-1)), the paper's f_e.
func (f *FBFLY) ElectricalFraction() float64 {
	return float64(f.K-1+f.C) / float64(f.Radix())
}

// MinimalHops returns the number of switch-to-switch hops on a minimal
// route between the switches of hosts src and dst: the number of
// dimensions in which their switches' coordinates differ.
func (f *FBFLY) MinimalHops(src, dst int) int {
	s, _ := f.HostAttachment(src)
	t, _ := f.HostAttachment(dst)
	hops := 0
	for d := 0; d < f.D; d++ {
		if f.Coord(s, d) != f.Coord(t, d) {
			hops++
		}
	}
	return hops
}

// Diameter returns the switch-hop diameter of the topology, which for a
// flattened butterfly is the number of switch dimensions.
func (f *FBFLY) Diameter() int { return f.D }

// BisectionChannels returns the number of unidirectional inter-switch
// channels crossing a bisection that halves the highest dimension
// (the standard worst-case cut for a flattened butterfly). Each of the
// k^(n-2) switch groups in the top dimension contributes floor(k/2) *
// ceil(k/2) fully-connected pair links across the cut, times two
// directions.
func (f *FBFLY) BisectionChannels() int {
	groups := f.numSwitches / f.K
	return groups * (f.K / 2) * ((f.K + 1) / 2) * 2
}

var _ Topology = (*FBFLY)(nil)
