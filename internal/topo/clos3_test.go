package topo

import (
	"testing"
	"testing/quick"
)

func TestClos3Invalid(t *testing.T) {
	for _, k := range []int{0, 2, 3, 5, 7} {
		if _, err := NewClos3(k); err == nil {
			t.Errorf("k=%d accepted", k)
		}
	}
}

// TestClos3Counts checks the classic fat-tree arithmetic: k^3/4 hosts
// on 5k^2/4 switches.
func TestClos3Counts(t *testing.T) {
	cases := []struct{ k, hosts, switches int }{
		{4, 16, 20},
		{8, 128, 80},
		{16, 1024, 320},
	}
	for _, c := range cases {
		f := MustClos3(c.k)
		if got := f.NumHosts(); got != c.hosts {
			t.Errorf("k=%d hosts = %d, want %d", c.k, got, c.hosts)
		}
		if got := f.NumSwitches(); got != c.switches {
			t.Errorf("k=%d switches = %d, want %d", c.k, got, c.switches)
		}
		if got := f.Radix(); got != c.k {
			t.Errorf("k=%d radix = %d", c.k, got)
		}
	}
}

func TestClos3Tiers(t *testing.T) {
	f := MustClos3(4)
	// 8 edges, 8 aggs, 4 cores.
	for sw := 0; sw < f.NumSwitches(); sw++ {
		e, a, c := f.IsEdge(sw), f.IsAgg(sw), f.IsCore(sw)
		n := 0
		for _, b := range []bool{e, a, c} {
			if b {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("sw%d in %d tiers", sw, n)
		}
	}
	if !f.IsEdge(0) || !f.IsAgg(8) || !f.IsCore(16) {
		t.Error("tier boundaries wrong")
	}
	if f.PodOf(0) != 0 || f.PodOf(7) != 3 || f.PodOf(8) != 0 || f.PodOf(15) != 3 {
		t.Error("pod mapping wrong")
	}
}

func TestClos3Wiring(t *testing.T) {
	for _, k := range []int{4, 6, 8} {
		f := MustClos3(k)
		if err := Validate(f); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestClos3LinkCounts(t *testing.T) {
	f := MustClos3(4)
	e, o := CountLinks(f)
	// Hosts 16 + intra-pod edge-agg 4 pods x 2x2 = 16 copper; agg-core
	// 8 aggs x 2 = 16 optical.
	if e != 32 {
		t.Errorf("electrical = %d, want 32", e)
	}
	if o != 16 {
		t.Errorf("optical = %d, want 16", o)
	}
}

func TestClos3HostMapping(t *testing.T) {
	f := MustClos3(4)
	for h := 0; h < f.NumHosts(); h++ {
		sw, port := f.HostAttachment(h)
		if !f.IsEdge(sw) {
			t.Fatalf("host %d on non-edge sw%d", h, sw)
		}
		if f.EdgeOfHost(h) != sw {
			t.Fatalf("EdgeOfHost(%d) = %d, attachment %d", h, f.EdgeOfHost(h), sw)
		}
		if f.PodOfHost(h) != f.PodOf(sw) {
			t.Fatalf("host %d pod mismatch", h)
		}
		peer, ok := f.Peer(sw, port)
		if !ok || peer.Kind != KindHost || peer.ID != h {
			t.Fatalf("host %d port wiring: %v", h, peer)
		}
	}
}

// Property: Peer symmetry holds for arbitrary valid radixes.
func TestClos3PeerSymmetryProperty(t *testing.T) {
	f := func(kRaw uint8) bool {
		k := (int(kRaw%5) + 2) * 2 // 4..12 even
		c := MustClos3(k)
		for sw := 0; sw < c.NumSwitches(); sw++ {
			for p := 0; p < c.Radix(); p++ {
				peer, ok := c.Peer(sw, p)
				if !ok {
					return false
				}
				if peer.Kind != KindSwitch {
					continue
				}
				back, ok := c.Peer(peer.ID, peer.Port)
				if !ok || back.Kind != KindSwitch || back.ID != sw || back.Port != p {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
