package topo

import (
	"reflect"
	"testing"
)

// roundRobin is the structure-blind strawman the structure-aware cuts
// are measured against: switch sw to shard sw % shards.
func roundRobin(numSwitches, shards int) []int {
	assign := make([]int, numSwitches)
	for sw := range assign {
		assign[sw] = sw % shards
	}
	return assign
}

// matrixTopologies mirrors the root determinism matrix: the three
// topologies every sharded run must reproduce byte-identically.
func matrixTopologies() map[string]Topology {
	return map[string]Topology{
		"fbfly":   MustFBFLY(8, 2, 8),
		"fattree": MustFatTree(6, 6, 6),
		"clos3":   MustClos3(4),
	}
}

// TestPartitionOfValid checks PartitionOf always yields a full, in-range
// assignment with every shard populated, including shard counts the
// structure-aware partitioners decline (falling back to contiguous).
func TestPartitionOfValid(t *testing.T) {
	for name, tp := range matrixTopologies() {
		for _, shards := range []int{1, 2, 3, 4, 8, tp.NumSwitches()} {
			if shards > tp.NumSwitches() {
				continue
			}
			assign := PartitionOf(tp, shards)
			if !validPartition(assign, tp.NumSwitches(), shards) {
				t.Errorf("%s shards=%d: invalid assignment %v", name, shards, assign)
			}
		}
	}
}

// TestPartitionDeterministic checks the assignment is a pure function
// of topology and shard count — a requirement for reproducible runs.
func TestPartitionDeterministic(t *testing.T) {
	for name, tp := range matrixTopologies() {
		for _, shards := range []int{2, 4, 8} {
			a := PartitionOf(tp, shards)
			b := PartitionOf(tp, shards)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s shards=%d: assignment not deterministic", name, shards)
			}
		}
	}
}

// TestPartitionCutQuality measures the structure-aware cuts against the
// round-robin strawman: strictly better where structure can genuinely
// win, never worse at any shard count the structure supports.
//
// Where strictness is impossible, symmetry is why. A single-switch-
// dimension butterfly is one complete graph and a fat tree is complete
// bipartite: every balanced cut severs the same channel count. And on a
// k-ary flat, round-robin with shards dividing k is accidentally a
// perfect dimension-0 cut — arithmetically the mirror image of the slab
// cut of the highest dimension. Structure wins outright when the shard
// count does not divide a dimension (round-robin then shreds every
// dimension while the slab cut adapts) and on Clos pods (where
// contiguous and round-robin splits both cross intra-pod channels).
func TestPartitionCutQuality(t *testing.T) {
	strict := []struct {
		name   string
		tp     Topology
		shards int
	}{
		// Shard counts not dividing k=4: slabs beat scattering.
		{"fbfly 4-ary 3-flat", MustFBFLY(4, 3, 4), 3},
		{"fbfly 4-ary 3-flat", MustFBFLY(4, 3, 4), 6},
		// Clos pods: keeping edge<->agg channels internal always wins.
		{"clos3 k=4", MustClos3(4), 2},
		{"clos3 k=4", MustClos3(4), 4},
		{"clos3 k=8", MustClos3(8), 4},
	}
	for _, tc := range strict {
		smart, total := CrossShardChannels(tc.tp, PartitionOf(tc.tp, tc.shards))
		rr, _ := CrossShardChannels(tc.tp, roundRobin(tc.tp.NumSwitches(), tc.shards))
		if smart >= rr {
			t.Errorf("%s shards=%d: structure-aware cut %d/%d not better than round-robin %d",
				tc.name, tc.shards, smart, total, rr)
		}
	}
	// The determinism-matrix topologies, at every shard count their
	// structure supports (beyond that the partitioners decline and the
	// plain contiguous fallback applies): never worse than round-robin.
	supported := map[string][]int{
		"fbfly":   {2, 4, 8}, // dimension cut handles any count
		"fattree": {2, 3, 6}, // proportional slices up to min(leaves, spines)
		"clos3":   {2, 4},    // pod cut up to the pod count
	}
	for name, tp := range matrixTopologies() {
		for _, shards := range supported[name] {
			smart, total := CrossShardChannels(tp, PartitionOf(tp, shards))
			rr, _ := CrossShardChannels(tp, roundRobin(tp.NumSwitches(), shards))
			if smart > rr {
				t.Errorf("%s shards=%d: structure-aware cut %d/%d worse than round-robin %d",
					name, shards, smart, total, rr)
			}
		}
	}
}

// TestFBFLYDimensionCut pins the shape of the butterfly cut: with the
// shard count dividing the highest dimension, the assignment is exactly
// whole coordinate slabs of that dimension, severing only
// highest-dimension links.
func TestFBFLYDimensionCut(t *testing.T) {
	f := MustFBFLY(4, 3, 4) // 16 switches, dims (stride 1, stride 4)
	assign := PartitionOf(f, 4)
	for sw := 0; sw < f.NumSwitches(); sw++ {
		if want := f.Coord(sw, 1); assign[sw] != want {
			t.Fatalf("sw %d: shard %d, want top-dimension coordinate %d", sw, assign[sw], want)
		}
	}
	// Only top-dimension links cross: each slab's dimension-0 clique is
	// internal, so cross = all dimension-1 channels = 4 dimension-0
	// positions x K*(K-1) directed pairs = 48.
	if cross, _ := CrossShardChannels(f, assign); cross != 48 {
		t.Errorf("dimension cut crosses %d channels, want 48 (all dim-1)", cross)
	}
}

// TestClos3PodCut pins the pod cut: pods are atomic (no intra-pod
// channel crosses) for every shard count up to the pod count, and the
// partitioner declines beyond it.
func TestClos3PodCut(t *testing.T) {
	c := MustClos3(4)
	for _, shards := range []int{2, 4} {
		assign := c.Partition(shards)
		if !validPartition(assign, c.NumSwitches(), shards) {
			t.Fatalf("shards=%d: invalid assignment %v", shards, assign)
		}
		for sw := 0; sw < c.NumSwitches(); sw++ {
			if c.IsCore(sw) {
				continue
			}
			pod := c.PodOf(sw)
			if want := assign[c.EdgeSwitch(pod, 0)]; assign[sw] != want {
				t.Errorf("shards=%d: sw %d (pod %d) on shard %d, pod anchor on %d",
					shards, sw, pod, assign[sw], want)
			}
		}
	}
	if got := c.Partition(8); got != nil {
		t.Errorf("shards beyond pod count should decline, got %v", got)
	}
	// The fallback still covers that case.
	if assign := PartitionOf(c, 8); !validPartition(assign, c.NumSwitches(), 8) {
		t.Errorf("fallback for shards=8 invalid: %v", assign)
	}
}

// TestFatTreePartitionCoLocates pins the leaf/spine slices: contiguous
// indices would put every leaf opposite every spine (all channels
// cross); the proportional slices keep a 1/shards fraction internal.
func TestFatTreePartitionCoLocates(t *testing.T) {
	ft := MustFatTree(4, 8, 8)
	assign := PartitionOf(ft, 2)
	cross, total := CrossShardChannels(ft, assign)
	contCross, _ := CrossShardChannels(ft, ContiguousPartition(ft.NumSwitches(), 2))
	if contCross != total {
		t.Fatalf("contiguous split should cross everything: %d/%d", contCross, total)
	}
	if cross*2 != total {
		t.Errorf("proportional slices cross %d/%d, want half", cross, total)
	}
}
