package topo

import "testing"

// BenchmarkFBFLYPeer measures port-to-peer resolution, the hot path of
// network construction and routing.
func BenchmarkFBFLYPeer(b *testing.B) {
	f := MustFBFLY(15, 3, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw := i % f.NumSwitches()
		for p := 0; p < f.Radix(); p++ {
			f.Peer(sw, p)
		}
	}
}

// BenchmarkClos3Peer does the same for the three-tier Clos.
func BenchmarkClos3Peer(b *testing.B) {
	c := MustClos3(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw := i % c.NumSwitches()
		for p := 0; p < c.Radix(); p++ {
			c.Peer(sw, p)
		}
	}
}
