package topo

import "fmt"

// Clos3 is a three-tier folded Clos built from uniform radix-K switch
// chips in the style the paper cites for datacenter networks
// (Al-Fares et al., SIGCOMM'08): K pods, each with K/2 edge switches
// and K/2 aggregation switches, plus (K/2)^2 core switches. Every edge
// switch hosts K/2 servers, giving K^3/4 hosts on 5K^2/4 chips — the
// chip-hungry alternative Table 1 compares the flattened butterfly
// against.
//
// Switch indexing: edges [0, K^2/2), aggregations [K^2/2, K^2), cores
// [K^2, K^2 + K^2/4).
//
// Port layout (all switches have K ports):
//
//	edge:  ports [0, K/2) hosts; port K/2+a reaches pod aggregation a
//	agg:   port e reaches pod edge e; port K/2+i reaches core a*(K/2)+i
//	core:  port p reaches pod p (via that pod's aggregation c/(K/2))
type Clos3 struct {
	K int // chip radix; must be even and >= 4

	half  int // K/2
	edges int // K^2/2 edge switches (same count of aggs)
	cores int // (K/2)^2
}

// NewClos3 builds a three-tier folded Clos from radix-k chips.
func NewClos3(k int) (*Clos3, error) {
	if k < 4 || k%2 != 0 {
		return nil, fmt.Errorf("clos3: radix must be even and >= 4, got %d", k)
	}
	half := k / 2
	return &Clos3{K: k, half: half, edges: k * half, cores: half * half}, nil
}

// MustClos3 is NewClos3 that panics on error.
func MustClos3(k int) *Clos3 {
	c, err := NewClos3(k)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements Topology.
func (c *Clos3) Name() string {
	return fmt.Sprintf("3-tier folded Clos (k=%d, %d pods)", c.K, c.K)
}

// NumSwitches implements Topology: K^2 edge+agg plus (K/2)^2 cores.
func (c *Clos3) NumSwitches() int { return 2*c.edges + c.cores }

// NumHosts implements Topology: K^3/4.
func (c *Clos3) NumHosts() int { return c.edges * c.half }

// Radix implements Topology.
func (c *Clos3) Radix() int { return c.K }

// Tier classification.
func (c *Clos3) IsEdge(sw int) bool { return sw < c.edges }
func (c *Clos3) IsAgg(sw int) bool  { return sw >= c.edges && sw < 2*c.edges }
func (c *Clos3) IsCore(sw int) bool { return sw >= 2*c.edges }

// PodOf returns the pod of an edge or aggregation switch.
func (c *Clos3) PodOf(sw int) int {
	if c.IsCore(sw) {
		panic("clos3: core switches belong to no pod")
	}
	if c.IsAgg(sw) {
		sw -= c.edges
	}
	return sw / c.half
}

// EdgeSwitch returns the switch index of edge e (0..K/2) in pod p.
func (c *Clos3) EdgeSwitch(pod, e int) int { return pod*c.half + e }

// AggSwitch returns the switch index of aggregation a in pod p.
func (c *Clos3) AggSwitch(pod, a int) int { return c.edges + pod*c.half + a }

// CoreSwitch returns the switch index of core i.
func (c *Clos3) CoreSwitch(i int) int { return 2*c.edges + i }

// coreIndex returns the 0-based core number of a core switch.
func (c *Clos3) coreIndex(sw int) int { return sw - 2*c.edges }

// HostAttachment implements Topology.
func (c *Clos3) HostAttachment(h int) (sw, port int) {
	return h / c.half, h % c.half
}

// PodOfHost returns host h's pod.
func (c *Clos3) PodOfHost(h int) int { return h / (c.half * c.half) }

// EdgeOfHost returns host h's edge switch.
func (c *Clos3) EdgeOfHost(h int) int { return h / c.half }

// AggUplinkPort returns the edge port reaching pod aggregation a.
func (c *Clos3) AggUplinkPort(a int) int { return c.half + a }

// CoreUplinkPort returns the aggregation port reaching its i-th core.
func (c *Clos3) CoreUplinkPort(i int) int { return c.half + i }

// Peer implements Topology.
func (c *Clos3) Peer(sw, port int) (Endpoint, bool) {
	if port < 0 || port >= c.K {
		return Endpoint{}, false
	}
	switch {
	case c.IsEdge(sw):
		if port < c.half {
			return Endpoint{Kind: KindHost, ID: sw*c.half + port}, true
		}
		a := port - c.half
		pod := c.PodOf(sw)
		e := sw - pod*c.half
		return Endpoint{Kind: KindSwitch, ID: c.AggSwitch(pod, a), Port: e}, true
	case c.IsAgg(sw):
		pod := c.PodOf(sw)
		a := sw - c.edges - pod*c.half
		if port < c.half {
			return Endpoint{Kind: KindSwitch, ID: c.EdgeSwitch(pod, port), Port: c.AggUplinkPort(a)}, true
		}
		i := port - c.half
		core := a*c.half + i
		return Endpoint{Kind: KindSwitch, ID: c.CoreSwitch(core), Port: pod}, true
	default: // core
		if port >= c.K {
			return Endpoint{}, false
		}
		core := c.coreIndex(sw)
		a := core / c.half
		i := core % c.half
		return Endpoint{Kind: KindSwitch, ID: c.AggSwitch(port, a), Port: c.CoreUplinkPort(i)}, true
	}
}

// LinkClass implements Topology: host and intra-pod links are copper;
// pod-to-core links are optical.
func (c *Clos3) LinkClass(sw, port int) LinkClass {
	switch {
	case c.IsEdge(sw):
		return Electrical
	case c.IsAgg(sw):
		if port < c.half {
			return Electrical
		}
		return Optical
	default:
		return Optical
	}
}

var _ Topology = (*Clos3)(nil)
