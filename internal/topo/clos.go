package topo

import (
	"fmt"
	"math"
)

// ClosPartCount is the analytic part-count model of the paper's §2.2
// baseline: a 3-stage folded Clos built from fixed-radix switch chips,
// where the second and third stages are assembled into non-blocking
// chassis of 27 chips (18 edge chips exposing 324 external ports plus
// 9 middle chips; chassis backplane links are "free").
//
// The model reproduces Table 1's folded-Clos column exactly for
// N=32768 hosts and 36-port chips.
type ClosPartCount struct {
	Hosts     int // N, number of terminal hosts
	ChipRadix int // ports per switch chip (36 in the paper)

	ChassisPorts  int // external ports per chassis: 9 * radix (324)
	Stage3Chassis int // ceil(N / chassisPorts)
	Stage2Chassis int // ceil(N / (chassisPorts/2))
	ChipsPerBox   int // 27: chips per chassis
	SwitchChips   int // total chips = 27 * (stage2 + stage3)
	PoweredChips  int // chips whose ports are actually used
}

// NewClosPartCount builds the analytic model for n hosts and the given
// chip radix.
func NewClosPartCount(hosts, chipRadix int) (*ClosPartCount, error) {
	if hosts < 1 {
		return nil, fmt.Errorf("clos: hosts must be >= 1, got %d", hosts)
	}
	if chipRadix < 4 {
		return nil, fmt.Errorf("clos: chip radix must be >= 4, got %d", chipRadix)
	}
	// A folded Clos splits each chip's ports evenly between the two
	// sides; with an odd radix one port per chip goes unused.
	chipRadix -= chipRadix % 2
	c := &ClosPartCount{Hosts: hosts, ChipRadix: chipRadix}
	// A chassis uses radix/2 edge chips each exposing radix/2 external
	// ports, plus radix/4 (rounded up) middle chips; the paper's 36-port
	// chip yields the 324-port, 27-chip chassis it describes.
	edge := chipRadix / 2
	c.ChassisPorts = edge * (chipRadix / 2)
	c.ChipsPerBox = edge + (edge+1)/2
	c.Stage3Chassis = ceilDiv(hosts, c.ChassisPorts)
	c.Stage2Chassis = ceilDiv(hosts, c.ChassisPorts/2)
	c.SwitchChips = c.ChipsPerBox * (c.Stage2Chassis + c.Stage3Chassis)
	// The paper powers only the chips whose ports carry traffic: with
	// 32k hosts that is 8,192 of the 8,235 chips ("there are some unused
	// ports which we do not count in the power analysis"). The powered
	// count is the fractional chassis demand before rounding up:
	// chipsPerBox * (N/chassisPorts + N/(chassisPorts/2)).
	exact := float64(c.ChipsPerBox) * 3 * float64(hosts) / float64(c.ChassisPorts)
	c.PoweredChips = int(math.Round(exact))
	if c.PoweredChips > c.SwitchChips {
		c.PoweredChips = c.SwitchChips
	}
	return c, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Name describes the configuration.
func (c *ClosPartCount) Name() string {
	return fmt.Sprintf("3-stage folded Clos (%d hosts, %d-port chips)", c.Hosts, c.ChipRadix)
}

// ElectricalLinks returns the number of short copper links: every host
// attachment plus the intra-cluster half of the first tier boundary
// (N/2 links short enough for copper in the paper's packaging), i.e.
// 1.5 N total — 49,152 for the 32k system of Table 1.
func (c *ClosPartCount) ElectricalLinks() int { return c.Hosts + c.Hosts/2 }

// OpticalLinks returns the number of optical links: the two chassis tier
// boundaries each carry N links for full bisection, of which N/2 of the
// first boundary are copper (counted above), leaving 2 N optical —
// 65,536 for the 32k system of Table 1.
func (c *ClosPartCount) OpticalLinks() int { return 2 * c.Hosts }

// BisectionGbps returns the bisection bandwidth in Gb/s for the given
// per-link rate: the network is non-blocking, so N*rate/2.
func (c *ClosPartCount) BisectionGbps(linkGbps float64) float64 {
	return float64(c.Hosts) * linkGbps / 2
}

// FBFLYPartCount is the analytic part-count view of a flattened
// butterfly, for the Table 1 comparison.
type FBFLYPartCount struct {
	*FBFLY
}

// ElectricalLinks counts host links plus first-dimension links.
func (f FBFLYPartCount) ElectricalLinks() int {
	// Every host link is copper, plus the fully connected first
	// dimension: k^(n-2) groups of k switches, k(k-1)/2 links each.
	groups := f.NumSwitches() / f.K
	return f.NumHosts() + groups*f.K*(f.K-1)/2
}

// OpticalLinks counts links in dimensions >= 1.
func (f FBFLYPartCount) OpticalLinks() int {
	total := f.NumSwitches() * (f.K - 1) * f.D / 2 // all inter-switch links
	groups := f.NumSwitches() / f.K
	return total - groups*f.K*(f.K-1)/2
}

// BisectionGbps returns N*rate/2: the paper sizes the FBFLY for full
// bisection comparable to the non-blocking Clos.
func (f FBFLYPartCount) BisectionGbps(linkGbps float64) float64 {
	return float64(f.NumHosts()) * linkGbps / 2
}

// InterSwitchChannels returns the number of unidirectional switch-to-
// switch channels.
func (f FBFLYPartCount) InterSwitchChannels() int {
	return f.NumSwitches() * (f.K - 1) * f.D
}

// RequiredPorts sanity-checks the paper's p = c + (k-1)(n-1) formula.
func (f FBFLYPartCount) RequiredPorts() int { return f.Radix() }

// OverSubscription returns the concentration-derived over-subscription
// ratio c:k expressed as a float (1.0 means fully provisioned, 1.5 means
// the paper's 3:2 example with c=12, k=8).
func (f FBFLYPartCount) OverSubscription() float64 {
	return float64(f.C) / float64(f.K)
}

// Float64sClose reports whether two floats agree within tol; exported for
// table-driven comparisons in tools and tests.
func Float64sClose(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
