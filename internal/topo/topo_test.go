package topo

import (
	"reflect"
	"testing"
)

// referenceLinks enumerates links the way the pre-streaming code did:
// host attachments first, then a raw sweep over every (switch, port)
// keeping each switch-switch link from its lexicographically smaller
// endpoint. VisitLinks must reproduce this sequence exactly — the
// fabric's channel index layout is defined in terms of it.
func referenceLinks(t Topology) []Link {
	var out []Link
	for h := 0; h < t.NumHosts(); h++ {
		sw, port := t.HostAttachment(h)
		out = append(out, Link{
			A:     Endpoint{Kind: KindHost, ID: h},
			B:     Endpoint{Kind: KindSwitch, ID: sw, Port: port},
			Class: t.LinkClass(sw, port),
		})
	}
	for sw := 0; sw < t.NumSwitches(); sw++ {
		for p := 0; p < t.Radix(); p++ {
			peer, ok := t.Peer(sw, p)
			if !ok || peer.Kind != KindSwitch {
				continue
			}
			if peer.ID < sw || (peer.ID == sw && peer.Port < p) {
				continue
			}
			out = append(out, Link{
				A:     Endpoint{Kind: KindSwitch, ID: sw, Port: p},
				B:     peer,
				Class: t.LinkClass(sw, p),
			})
		}
	}
	return out
}

func testTopologies() map[string]Topology {
	return map[string]Topology{
		"fbfly-4-2-2":   MustFBFLY(4, 2, 2),
		"fbfly-3-3-4":   MustFBFLY(3, 3, 4),
		"clos3-4":       MustClos3(4),
		"fattree-4-6-3": MustFatTree(4, 6, 3),
	}
}

func TestVisitLinksMatchesReference(t *testing.T) {
	for name, tp := range testTopologies() {
		want := referenceLinks(tp)
		var got []Link
		VisitLinks(tp, func(l Link) bool {
			got = append(got, l)
			return true
		})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: VisitLinks order diverges from reference enumeration", name)
		}
		if links := Links(tp); !reflect.DeepEqual(links, want) {
			t.Errorf("%s: Links() diverges from reference enumeration", name)
		}
	}
}

func TestVisitLinksEarlyStop(t *testing.T) {
	tp := MustFBFLY(4, 2, 2)
	total := len(Links(tp))
	for _, stopAfter := range []int{1, 2, tp.NumHosts(), total - 1} {
		calls := 0
		VisitLinks(tp, func(Link) bool {
			calls++
			return calls < stopAfter
		})
		if calls != stopAfter {
			t.Errorf("stop after %d: fn called %d times", stopAfter, calls)
		}
	}
}

func TestVisitSwitchLinksCoversEachLinkOnce(t *testing.T) {
	for name, tp := range testTopologies() {
		seen := map[[2]Endpoint]int{}
		owned := 0
		for sw := 0; sw < tp.NumSwitches(); sw++ {
			lastPort := -1
			VisitSwitchLinks(tp, sw, func(p int, peer Endpoint, _ LinkClass) bool {
				if p <= lastPort {
					t.Errorf("%s: sw%d ports not ascending (%d after %d)", name, sw, p, lastPort)
				}
				lastPort = p
				a := Endpoint{Kind: KindSwitch, ID: sw, Port: p}
				if peer.ID < sw || (peer.ID == sw && peer.Port < p) {
					t.Errorf("%s: sw%d.p%d visited a link it does not own (peer %v)", name, sw, p, peer)
				}
				seen[[2]Endpoint{a, peer}]++
				owned++
				return true
			})
		}
		wantInter := 0
		for _, l := range Links(tp) {
			if l.A.Kind == KindSwitch && l.B.Kind == KindSwitch {
				wantInter++
				if seen[[2]Endpoint{l.A, l.B}] != 1 {
					t.Errorf("%s: link %v-%v visited %d times", name, l.A, l.B, seen[[2]Endpoint{l.A, l.B}])
				}
			}
		}
		if owned != wantInter {
			t.Errorf("%s: VisitSwitchLinks yielded %d links, topology has %d", name, owned, wantInter)
		}
	}
}

// brokenPeer wraps a topology, corrupting Peer for one switch port so
// the back-pointer invariant fails. ValidateSample must catch it when
// its sample covers the whole population (the exhaustive degenerate
// case), proving the sampled checks are the real checks.
type brokenPeer struct {
	Topology
	sw, port int
}

func (b brokenPeer) Peer(sw, port int) (Endpoint, bool) {
	if sw == b.sw && port == b.port {
		return Endpoint{}, false
	}
	return b.Topology.Peer(sw, port)
}

func TestValidateSample(t *testing.T) {
	for name, tp := range testTopologies() {
		if err := Validate(tp); err != nil {
			t.Fatalf("%s: Validate: %v", name, err)
		}
		for _, samples := range []int{1, 7, 1 << 20} {
			if err := ValidateSample(tp, samples, 42); err != nil {
				t.Errorf("%s: ValidateSample(%d): %v", name, samples, err)
			}
		}
	}
	if err := ValidateSample(MustFBFLY(4, 2, 2), 0, 1); err == nil {
		t.Error("ValidateSample accepted a zero sample count")
	}

	// Corrupt one attachment port: the exhaustive degenerate pass must
	// report it, and the property-style pass must find it eventually
	// across seeds.
	base := MustFBFLY(4, 2, 2)
	sw, port := base.HostAttachment(0)
	broken := brokenPeer{Topology: base, sw: sw, port: port}
	if err := ValidateSample(broken, 1<<20, 1); err == nil {
		t.Fatal("exhaustive ValidateSample missed a corrupted attachment")
	}
	caught := false
	for seed := int64(0); seed < 64 && !caught; seed++ {
		caught = ValidateSample(broken, 4, seed) != nil
	}
	if !caught {
		t.Error("sampled ValidateSample never hit the corrupted attachment in 64 seeds")
	}
}

// TestValidateSampleAtScale spot-checks the two acceptance-scale
// topologies (32k-host flattened butterfly, 10⁵-host Clos) at a cost a
// test budget tolerates; the topologies are closed-form so only the
// sampled entities are ever touched.
func TestValidateSampleAtScale(t *testing.T) {
	if err := ValidateSample(MustFBFLY(8, 5, 8), 2048, 7); err != nil {
		t.Errorf("fbfly 8-ary 5-flat: %v", err)
	}
	if err := ValidateSample(MustClos3(74), 2048, 7); err != nil {
		t.Errorf("clos3-74: %v", err)
	}
}
