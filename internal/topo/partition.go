package topo

// This file computes switch -> shard assignments for the fabric's
// intra-run parallelism (see fabric/shard.go). A good partition keeps
// channels inside shards: every cross-shard channel costs staging work
// at window barriers and, more importantly, tightens the conservative
// lookahead between the two shards it connects. The regular topologies
// know their own structure — a flattened butterfly cuts cleanest along
// its highest dimension, a folded Clos along pod boundaries — so each
// implements Partitioner; everything else falls back to balanced
// contiguous index ranges.

// Partitioner is implemented by topologies that can compute a
// structure-aware switch->shard assignment minimizing cross-shard
// channels. Partition returns assign[sw] = shard in [0, shards), or nil
// when the topology has nothing better than contiguous ranges for the
// requested shard count (PartitionOf then falls back). Implementations
// must be deterministic: pure functions of the topology and shards.
type Partitioner interface {
	Partition(shards int) []int
}

// ContiguousPartition assigns numSwitches switch indices to shards as
// balanced contiguous runs: switch sw goes to shard sw*shards/numSwitches.
// This is the structure-blind fallback.
func ContiguousPartition(numSwitches, shards int) []int {
	assign := make([]int, numSwitches)
	for sw := range assign {
		assign[sw] = sw * shards / numSwitches
	}
	return assign
}

// PartitionOf returns the switch->shard assignment for t: the topology's
// own Partition when it implements Partitioner and yields a valid
// assignment (right length, every shard non-empty), balanced contiguous
// index ranges otherwise. shards must be in [1, t.NumSwitches()].
func PartitionOf(t Topology, shards int) []int {
	if p, ok := t.(Partitioner); ok {
		if assign := p.Partition(shards); validPartition(assign, t.NumSwitches(), shards) {
			return assign
		}
	}
	return ContiguousPartition(t.NumSwitches(), shards)
}

// validPartition checks an assignment covers every shard exactly once
// over the right number of switches.
func validPartition(assign []int, numSwitches, shards int) bool {
	if len(assign) != numSwitches {
		return false
	}
	used := make([]bool, shards)
	for _, s := range assign {
		if s < 0 || s >= shards {
			return false
		}
		used[s] = true
	}
	for _, u := range used {
		if !u {
			return false
		}
	}
	return true
}

// CrossShardChannels counts the directed switch-to-switch channels of t
// whose endpoints land on different shards under assign, along with the
// total number of directed inter-switch channels — the cut a partitioner
// minimizes. Host attachment channels never cross: hosts follow their
// switch.
func CrossShardChannels(t Topology, assign []int) (cross, total int) {
	if f, ok := t.(*FBFLY); ok {
		// Fast path for the partitioner's own tuning loop: a flattened
		// butterfly's dimension-d peers of switch sw are sw + (v-own)·
		// stride(d) for every coordinate v ≠ own, so one CoordsInto per
		// switch replaces the div/mod chain Peer would run per port.
		coords := make([]int, f.D)
		for sw := 0; sw < f.numSwitches; sw++ {
			f.CoordsInto(sw, coords)
			for d, stride := range f.strides {
				own := coords[d]
				for v := 0; v < f.K; v++ {
					if v == own {
						continue
					}
					total++
					if assign[sw] != assign[sw+(v-own)*stride] {
						cross++
					}
				}
			}
		}
		return cross, total
	}
	// Each undirected inter-switch link carries one directed channel per
	// endpoint, so the streamed walk counts every link it visits twice.
	VisitLinks(t, func(l Link) bool {
		if l.A.Kind == KindSwitch && l.B.Kind == KindSwitch {
			total += 2
			if assign[l.A.ID] != assign[l.B.ID] {
				cross += 2
			}
		}
		return true
	})
	return cross, total
}

// Partition implements Partitioner for the flattened butterfly: a
// recursive dimension cut. The switch index is dimension-major, so the
// highest dimension splits into whole coordinate slabs (severing only
// highest-dimension links, each slab internally untouched); when there
// are more shards than slabs, each slab recurses into the next dimension
// down with its proportional share of shards. This beats blind
// contiguous ranges whenever the shard count does not divide the slab
// count — contiguous boundaries then land mid-slab and shred every
// dimension at once — and beats a round-robin (modulo) split everywhere
// except the degenerate single-switch-dimension case, where the switches
// form one complete graph and all balanced cuts cost the same.
func (f *FBFLY) Partition(shards int) []int {
	if shards < 1 || shards > f.numSwitches {
		return nil
	}
	assign := make([]int, f.numSwitches)
	f.cut(assign, f.D-1, 0, f.numSwitches, 0, shards)
	return assign
}

// cut assigns shards [shLo, shHi) to switch indices [lo, hi), a range
// spanning whole coordinate slabs of dimension dim and below. The
// invariant shHi-shLo <= hi-lo (at most one shard per switch) holds at
// every level because shares are proportional.
func (f *FBFLY) cut(assign []int, dim, lo, hi, shLo, shHi int) {
	nsh := shHi - shLo
	if nsh <= 1 || dim < 0 {
		for sw := lo; sw < hi; sw++ {
			assign[sw] = shLo + (sw-lo)*nsh/(hi-lo)
		}
		return
	}
	stride := f.strides[dim]
	slabs := (hi - lo) / stride
	if nsh < slabs {
		// Fewer shards than slabs: balanced runs of whole slabs; only
		// dimension-dim links are cut.
		for s := 0; s < slabs; s++ {
			sh := shLo + s*nsh/slabs
			for sw := lo + s*stride; sw < lo+(s+1)*stride; sw++ {
				assign[sw] = sh
			}
		}
		return
	}
	// At least one shard per slab: give each slab its proportional share
	// and recurse into the next dimension down.
	for s := 0; s < slabs; s++ {
		f.cut(assign, dim-1, lo+s*stride, lo+(s+1)*stride,
			shLo+s*nsh/slabs, shLo+(s+1)*nsh/slabs)
	}
}

// Partition implements Partitioner for the three-tier Clos: a pod cut.
// Pods — each pod's K/2 edge and K/2 aggregation switches together —
// map to balanced contiguous shard runs, so every edge<->aggregation
// channel stays internal; core switches, which belong to no pod, spread
// over shards in the same proportion. Contiguous index ranges are
// terrible here (they separate the edge block from the aggregation
// block, crossing every intra-pod channel). For shards > pods a pod
// would have to split and structure stops helping: return nil and let
// the caller fall back.
func (c *Clos3) Partition(shards int) []int {
	pods := c.K
	if shards < 1 || shards > pods {
		return nil
	}
	assign := make([]int, c.NumSwitches())
	for sw := 0; sw < 2*c.edges; sw++ {
		assign[sw] = c.PodOf(sw) * shards / pods
	}
	for i := 0; i < c.cores; i++ {
		assign[c.CoreSwitch(i)] = i * shards / c.cores
	}
	return assign
}

// Partition implements Partitioner for the leaf/spine fat tree:
// proportional slices. Every leaf wires to every spine, so no cut
// avoids leaf-spine channels entirely; the best balanced cut co-locates
// a 1/shards slice of leaves with the matching slice of spines (keeping
// a 1/shards fraction of channels internal) instead of separating the
// leaf block from the spine block the way contiguous switch indices do.
func (t *FatTree) Partition(shards int) []int {
	if shards < 1 || shards > t.Leaves || shards > t.Spines {
		return nil
	}
	assign := make([]int, t.NumSwitches())
	for l := 0; l < t.Leaves; l++ {
		assign[l] = l * shards / t.Leaves
	}
	for s := 0; s < t.Spines; s++ {
		assign[t.Leaves+s] = s * shards / t.Spines
	}
	return assign
}
