package topo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFBFLYInvalidParams(t *testing.T) {
	cases := []struct{ k, n, c int }{
		{1, 2, 8}, {0, 2, 8}, {8, 1, 8}, {8, 0, 8}, {8, 2, 0}, {8, 2, -1},
	}
	for _, c := range cases {
		if _, err := NewFBFLY(c.k, c.n, c.c); err == nil {
			t.Errorf("NewFBFLY(%d,%d,%d) succeeded, want error", c.k, c.n, c.c)
		}
	}
}

// TestFBFLYFigure2 checks the paper's Figure 2: an 8-ary 2-flat has
// 8x8=64 nodes and eight 15-port switches.
func TestFBFLYFigure2(t *testing.T) {
	f := MustFBFLY(8, 2, 8)
	if got := f.NumHosts(); got != 64 {
		t.Errorf("NumHosts = %d, want 64", got)
	}
	if got := f.NumSwitches(); got != 8 {
		t.Errorf("NumSwitches = %d, want 8", got)
	}
	if got := f.Radix(); got != 15 {
		t.Errorf("Radix = %d, want 15", got)
	}
}

// TestFBFLYScalingText checks the scaling example from §2.1: an 8-ary
// 3-flat has 512 nodes and 64 switch chips each with 22 ports.
func TestFBFLYScalingText(t *testing.T) {
	f := MustFBFLY(8, 3, 8)
	if got := f.NumHosts(); got != 512 {
		t.Errorf("NumHosts = %d, want 512", got)
	}
	if got := f.NumSwitches(); got != 64 {
		t.Errorf("NumSwitches = %d, want 64", got)
	}
	if got := f.Radix(); got != 22 {
		t.Errorf("Radix = %d, want 22", got)
	}
}

// TestFBFLYFigure3 checks the over-subscription example of Figure 3:
// a 33-port router implements an 8-ary 4-flat with concentration 12,
// scaling to 12*8^3 = 6144 nodes.
func TestFBFLYFigure3(t *testing.T) {
	f := MustFBFLY(8, 4, 12)
	if got := f.Radix(); got != 33 {
		t.Errorf("Radix = %d, want 33", got)
	}
	if got := f.NumHosts(); got != 6144 {
		t.Errorf("NumHosts = %d, want 6144", got)
	}
	pc := FBFLYPartCount{f}
	if got := pc.OverSubscription(); got != 1.5 {
		t.Errorf("OverSubscription = %v, want 1.5 (3:2)", got)
	}
}

// TestFBFLYTable1Config checks the 32k-node 8-ary 5-flat of Table 1:
// 36 ports per switch, 4096 switches.
func TestFBFLYTable1Config(t *testing.T) {
	f := MustFBFLY(8, 5, 8)
	if got := f.Radix(); got != 36 {
		t.Errorf("Radix = %d, want 36", got)
	}
	if got := f.NumSwitches(); got != 4096 {
		t.Errorf("NumSwitches = %d, want 4096", got)
	}
	if got := f.NumHosts(); got != 32768 {
		t.Errorf("NumHosts = %d, want 32768", got)
	}
	// Electrical fraction ~ 15/36 = 42% per the paper.
	if got := f.ElectricalFraction(); got != 15.0/36.0 {
		t.Errorf("ElectricalFraction = %v, want 15/36", got)
	}
	pc := FBFLYPartCount{f}
	if got := pc.ElectricalLinks(); got != 47104 {
		t.Errorf("ElectricalLinks = %d, want 47104", got)
	}
	if got := pc.OpticalLinks(); got != 43008 {
		t.Errorf("OpticalLinks = %d, want 43008", got)
	}
	if got := pc.BisectionGbps(40); got != 655360 {
		t.Errorf("BisectionGbps = %v, want 655360", got)
	}
}

// TestFBFLYSimConfig checks the evaluation configuration of §4.1:
// a 15-ary 3-flat with 3375 nodes.
func TestFBFLYSimConfig(t *testing.T) {
	f := MustFBFLY(15, 3, 15)
	if got := f.NumHosts(); got != 3375 {
		t.Errorf("NumHosts = %d, want 3375", got)
	}
	if got := f.NumSwitches(); got != 225 {
		t.Errorf("NumSwitches = %d, want 225", got)
	}
	if got := f.Radix(); got != 43 {
		t.Errorf("Radix = %d, want 43 (15 + 14*2)", got)
	}
}

func TestFBFLYCoordsRoundTrip(t *testing.T) {
	f := MustFBFLY(5, 4, 3)
	for sw := 0; sw < f.NumSwitches(); sw++ {
		if got := f.SwitchAt(f.Coords(sw)); got != sw {
			t.Fatalf("SwitchAt(Coords(%d)) = %d", sw, got)
		}
	}
}

func TestFBFLYPortMapping(t *testing.T) {
	f := MustFBFLY(4, 3, 2) // 16 switches, radix 2+3*2=8
	for sw := 0; sw < f.NumSwitches(); sw++ {
		seen := make(map[int]bool)
		for d := 0; d < f.D; d++ {
			own := f.Coord(sw, d)
			for v := 0; v < f.K; v++ {
				if v == own {
					continue
				}
				p := f.PortToPeer(sw, d, v)
				if seen[p] {
					t.Fatalf("sw%d: port %d assigned twice", sw, p)
				}
				seen[p] = true
				if got := f.PortDim(p); got != d {
					t.Fatalf("sw%d port %d: PortDim = %d, want %d", sw, p, got, d)
				}
				if got := f.PeerCoord(sw, p); got != v {
					t.Fatalf("sw%d port %d: PeerCoord = %d, want %d", sw, p, got, v)
				}
			}
		}
		if len(seen) != f.D*(f.K-1) {
			t.Fatalf("sw%d: %d inter-switch ports mapped, want %d", sw, len(seen), f.D*(f.K-1))
		}
	}
}

func TestFBFLYValidateWiring(t *testing.T) {
	for _, f := range []*FBFLY{
		MustFBFLY(2, 2, 1),
		MustFBFLY(8, 2, 8),
		MustFBFLY(4, 3, 2),
		MustFBFLY(3, 4, 5),
		MustFBFLY(8, 3, 12),
	} {
		if err := Validate(f); err != nil {
			t.Errorf("%s: %v", f.Name(), err)
		}
	}
}

func TestFBFLYLinkCounts(t *testing.T) {
	f := MustFBFLY(4, 3, 2)
	links := Links(f)
	wantHost := f.NumHosts()
	wantSwitch := f.NumSwitches() * (f.K - 1) * f.D / 2
	if len(links) != wantHost+wantSwitch {
		t.Fatalf("Links: got %d, want %d", len(links), wantHost+wantSwitch)
	}
	e, o := CountLinks(f)
	pc := FBFLYPartCount{f}
	if e != pc.ElectricalLinks() {
		t.Errorf("electrical: enumerated %d, analytic %d", e, pc.ElectricalLinks())
	}
	if o != pc.OpticalLinks() {
		t.Errorf("optical: enumerated %d, analytic %d", o, pc.OpticalLinks())
	}
}

func TestFBFLYHostAttachment(t *testing.T) {
	f := MustFBFLY(8, 2, 8)
	for h := 0; h < f.NumHosts(); h++ {
		sw, port := f.HostAttachment(h)
		lo, hi := f.HostsOf(sw)
		if h < lo || h >= hi {
			t.Fatalf("host %d: attachment sw%d but HostsOf = [%d,%d)", h, sw, lo, hi)
		}
		if port < 0 || port >= f.C {
			t.Fatalf("host %d: port %d out of range", h, port)
		}
	}
}

func TestFBFLYMinimalHops(t *testing.T) {
	f := MustFBFLY(4, 3, 2)
	// Hosts on the same switch: 0 hops.
	if got := f.MinimalHops(0, 1); got != 0 {
		t.Errorf("same switch: %d hops, want 0", got)
	}
	// Diameter equals number of switch dimensions.
	if got := f.Diameter(); got != 2 {
		t.Errorf("Diameter = %d, want 2", got)
	}
	maxSeen := 0
	for a := 0; a < f.NumHosts(); a++ {
		for b := 0; b < f.NumHosts(); b++ {
			h := f.MinimalHops(a, b)
			if h > maxSeen {
				maxSeen = h
			}
		}
	}
	if maxSeen != f.Diameter() {
		t.Errorf("max minimal hops = %d, want diameter %d", maxSeen, f.Diameter())
	}
}

func TestFBFLYBisectionChannels(t *testing.T) {
	// 8-ary 2-flat: one group, 4*4*2 = 32 channels across the cut.
	f := MustFBFLY(8, 2, 8)
	if got := f.BisectionChannels(); got != 32 {
		t.Errorf("BisectionChannels = %d, want 32", got)
	}
	// Full bisection at c=k: 32 channels * 40G = 1280 Gb/s for 64 hosts
	// = exactly N*rate/2.
	if got := float64(f.BisectionChannels()) * 40; got != float64(f.NumHosts())*40/2 {
		t.Errorf("bisection %v Gb/s, want %v", got, float64(f.NumHosts())*40/2)
	}
}

// Property: Peer is symmetric for arbitrary (k, n, c) configurations.
func TestFBFLYPeerSymmetryProperty(t *testing.T) {
	f := func(kRaw, nRaw, cRaw uint8) bool {
		k := int(kRaw%6) + 2 // 2..7
		n := int(nRaw%3) + 2 // 2..4
		c := int(cRaw%4) + 1 // 1..4
		fb := MustFBFLY(k, n, c)
		for sw := 0; sw < fb.NumSwitches(); sw++ {
			for p := 0; p < fb.Radix(); p++ {
				peer, ok := fb.Peer(sw, p)
				if !ok {
					return false
				}
				if peer.Kind != KindSwitch {
					continue
				}
				back, ok := fb.Peer(peer.ID, peer.Port)
				if !ok || back.Kind != KindSwitch || back.ID != sw || back.Port != p {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: a greedy walk correcting one mismatched dimension per hop
// always reaches the destination switch in MinimalHops steps.
func TestFBFLYGreedyRoutingProperty(t *testing.T) {
	fb := MustFBFLY(5, 3, 3)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		src := rng.Intn(fb.NumHosts())
		dst := rng.Intn(fb.NumHosts())
		cur, _ := fb.HostAttachment(src)
		dstSw, _ := fb.HostAttachment(dst)
		hops := 0
		for cur != dstSw {
			// Pick a random mismatched dimension, as adaptive routing may.
			var dims []int
			for d := 0; d < fb.D; d++ {
				if fb.Coord(cur, d) != fb.Coord(dstSw, d) {
					dims = append(dims, d)
				}
			}
			d := dims[rng.Intn(len(dims))]
			p := fb.PortToPeer(cur, d, fb.Coord(dstSw, d))
			peer, ok := fb.Peer(cur, p)
			if !ok || peer.Kind != KindSwitch {
				t.Fatalf("bad hop from sw%d port %d", cur, p)
			}
			cur = peer.ID
			hops++
			if hops > fb.D {
				t.Fatalf("walk src=%d dst=%d exceeded diameter", src, dst)
			}
		}
		if want := fb.MinimalHops(src, dst); hops != want {
			t.Fatalf("src=%d dst=%d: %d hops, want %d", src, dst, hops, want)
		}
	}
}

func TestFBFLYPortToPeerSelfPanics(t *testing.T) {
	f := MustFBFLY(4, 2, 2)
	defer func() {
		if recover() == nil {
			t.Error("PortToPeer to own coordinate did not panic")
		}
	}()
	f.PortToPeer(0, 0, f.Coord(0, 0))
}
