// Package topo defines the network topologies used by the energy
// proportional datacenter network study: the flattened butterfly
// (k-ary n-flat) that is the paper's substrate, a two-level folded Clos
// (fat tree) used as a simulatable baseline, and the analytic 3-stage
// folded-Clos part-count model behind the paper's Table 1.
//
// A topology is a static description: switches, hosts, and the wiring
// between switch ports. The fabric package instantiates a topology into
// simulated switches and channels; the routing package computes candidate
// output ports on top of a topology.
package topo

import "fmt"

// Kind discriminates the two endpoint kinds of a channel.
type Kind uint8

const (
	// KindHost is a server/NIC endpoint.
	KindHost Kind = iota
	// KindSwitch is a switch-chip endpoint.
	KindSwitch
)

func (k Kind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindSwitch:
		return "switch"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Endpoint identifies one side of a link: a host, or a specific port of a
// specific switch.
type Endpoint struct {
	Kind Kind
	ID   int // host index or switch index
	Port int // switch port; 0 for hosts
}

func (e Endpoint) String() string {
	if e.Kind == KindHost {
		return fmt.Sprintf("host%d", e.ID)
	}
	return fmt.Sprintf("sw%d.p%d", e.ID, e.Port)
}

// LinkClass classifies the physical medium of a link, which determines
// its cost and (in the paper's analytic model) its power profile.
type LinkClass uint8

const (
	// Electrical links are short passive-copper cables (<5 m), used for
	// host attachment and intra-group wiring.
	Electrical LinkClass = iota
	// Optical links use optical transceivers and span longer distances.
	Optical
)

func (c LinkClass) String() string {
	if c == Electrical {
		return "electrical"
	}
	return "optical"
}

// Topology is a static description of a network: its switches, hosts,
// and port-level wiring. Implementations must be immutable after
// construction so they can be shared freely.
type Topology interface {
	// Name returns a short human-readable description, e.g. "8-ary 2-flat".
	Name() string
	// NumSwitches returns the number of switch chips.
	NumSwitches() int
	// NumHosts returns the number of hosts (terminal nodes).
	NumHosts() int
	// Radix returns the number of ports on each switch.
	Radix() int
	// HostAttachment returns the switch and switch port that host h
	// connects to.
	HostAttachment(h int) (sw, port int)
	// Peer returns the endpoint wired to switch sw's given port, and
	// whether the port is connected at all.
	Peer(sw, port int) (Endpoint, bool)
	// LinkClass classifies the link attached to switch sw's given port.
	LinkClass(sw, port int) LinkClass
}

// Link is an undirected physical link between two endpoints (each
// physical link carries two unidirectional channels).
type Link struct {
	A, B  Endpoint
	Class LinkClass
}

// Links enumerates every undirected link of a topology: all host
// attachment links plus every switch-to-switch link exactly once.
func Links(t Topology) []Link {
	var out []Link
	for h := 0; h < t.NumHosts(); h++ {
		sw, port := t.HostAttachment(h)
		out = append(out, Link{
			A:     Endpoint{Kind: KindHost, ID: h},
			B:     Endpoint{Kind: KindSwitch, ID: sw, Port: port},
			Class: t.LinkClass(sw, port),
		})
	}
	for sw := 0; sw < t.NumSwitches(); sw++ {
		for p := 0; p < t.Radix(); p++ {
			peer, ok := t.Peer(sw, p)
			if !ok || peer.Kind != KindSwitch {
				continue
			}
			// Count each switch-switch link once.
			if peer.ID < sw || (peer.ID == sw && peer.Port < p) {
				continue
			}
			out = append(out, Link{
				A:     Endpoint{Kind: KindSwitch, ID: sw, Port: p},
				B:     peer,
				Class: t.LinkClass(sw, p),
			})
		}
	}
	return out
}

// CountLinks returns the number of electrical and optical undirected
// links in the topology.
func CountLinks(t Topology) (electrical, optical int) {
	for _, l := range Links(t) {
		if l.Class == Electrical {
			electrical++
		} else {
			optical++
		}
	}
	return electrical, optical
}

// Validate cross-checks the wiring of a topology: every connected switch
// port's peer must point back at it, and host attachments must agree with
// Peer. It returns the first inconsistency found.
func Validate(t Topology) error {
	for h := 0; h < t.NumHosts(); h++ {
		sw, port := t.HostAttachment(h)
		if sw < 0 || sw >= t.NumSwitches() {
			return fmt.Errorf("host %d attaches to out-of-range switch %d", h, sw)
		}
		if port < 0 || port >= t.Radix() {
			return fmt.Errorf("host %d attaches to out-of-range port %d", h, port)
		}
		peer, ok := t.Peer(sw, port)
		if !ok {
			return fmt.Errorf("host %d attachment sw%d.p%d reported unconnected", h, sw, port)
		}
		if peer.Kind != KindHost || peer.ID != h {
			return fmt.Errorf("host %d attachment sw%d.p%d wired to %v", h, sw, port, peer)
		}
	}
	for sw := 0; sw < t.NumSwitches(); sw++ {
		for p := 0; p < t.Radix(); p++ {
			peer, ok := t.Peer(sw, p)
			if !ok {
				continue
			}
			switch peer.Kind {
			case KindHost:
				psw, pport := t.HostAttachment(peer.ID)
				if psw != sw || pport != p {
					return fmt.Errorf("sw%d.p%d claims host %d, but host attaches at sw%d.p%d",
						sw, p, peer.ID, psw, pport)
				}
			case KindSwitch:
				if peer.ID < 0 || peer.ID >= t.NumSwitches() {
					return fmt.Errorf("sw%d.p%d wired to out-of-range switch %d", sw, p, peer.ID)
				}
				back, ok := t.Peer(peer.ID, peer.Port)
				if !ok {
					return fmt.Errorf("sw%d.p%d wired to unconnected sw%d.p%d", sw, p, peer.ID, peer.Port)
				}
				if back.Kind != KindSwitch || back.ID != sw || back.Port != p {
					return fmt.Errorf("sw%d.p%d -> sw%d.p%d but reverse is %v",
						sw, p, peer.ID, peer.Port, back)
				}
			}
		}
	}
	return nil
}
