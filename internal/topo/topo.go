// Package topo defines the network topologies used by the energy
// proportional datacenter network study: the flattened butterfly
// (k-ary n-flat) that is the paper's substrate, a two-level folded Clos
// (fat tree) used as a simulatable baseline, and the analytic 3-stage
// folded-Clos part-count model behind the paper's Table 1.
//
// A topology is a static description: switches, hosts, and the wiring
// between switch ports. The fabric package instantiates a topology into
// simulated switches and channels; the routing package computes candidate
// output ports on top of a topology.
package topo

import "fmt"

// Kind discriminates the two endpoint kinds of a channel.
type Kind uint8

const (
	// KindHost is a server/NIC endpoint.
	KindHost Kind = iota
	// KindSwitch is a switch-chip endpoint.
	KindSwitch
)

func (k Kind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindSwitch:
		return "switch"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Endpoint identifies one side of a link: a host, or a specific port of a
// specific switch.
type Endpoint struct {
	Kind Kind
	ID   int // host index or switch index
	Port int // switch port; 0 for hosts
}

func (e Endpoint) String() string {
	if e.Kind == KindHost {
		return fmt.Sprintf("host%d", e.ID)
	}
	return fmt.Sprintf("sw%d.p%d", e.ID, e.Port)
}

// LinkClass classifies the physical medium of a link, which determines
// its cost and (in the paper's analytic model) its power profile.
type LinkClass uint8

const (
	// Electrical links are short passive-copper cables (<5 m), used for
	// host attachment and intra-group wiring.
	Electrical LinkClass = iota
	// Optical links use optical transceivers and span longer distances.
	Optical
)

func (c LinkClass) String() string {
	if c == Electrical {
		return "electrical"
	}
	return "optical"
}

// Topology is a static description of a network: its switches, hosts,
// and port-level wiring. Implementations must be immutable after
// construction so they can be shared freely.
type Topology interface {
	// Name returns a short human-readable description, e.g. "8-ary 2-flat".
	Name() string
	// NumSwitches returns the number of switch chips.
	NumSwitches() int
	// NumHosts returns the number of hosts (terminal nodes).
	NumHosts() int
	// Radix returns the number of ports on each switch.
	Radix() int
	// HostAttachment returns the switch and switch port that host h
	// connects to.
	HostAttachment(h int) (sw, port int)
	// Peer returns the endpoint wired to switch sw's given port, and
	// whether the port is connected at all.
	Peer(sw, port int) (Endpoint, bool)
	// LinkClass classifies the link attached to switch sw's given port.
	LinkClass(sw, port int) LinkClass
}

// Link is an undirected physical link between two endpoints (each
// physical link carries two unidirectional channels).
type Link struct {
	A, B  Endpoint
	Class LinkClass
}

// VisitSwitchLinks streams the switch-to-switch links owned by switch
// sw — those whose (sw, port) endpoint is lexicographically smaller
// than the peer's — in ascending port order, so over all switches every
// link is visited exactly once. fn returns false to stop early;
// VisitSwitchLinks reports whether the walk ran to completion. This is
// the unit the fabric parallelizes construction over: each switch's
// owned links are independent of every other switch's.
func VisitSwitchLinks(t Topology, sw int, fn func(port int, peer Endpoint, class LinkClass) bool) bool {
	radix := t.Radix()
	for p := 0; p < radix; p++ {
		peer, ok := t.Peer(sw, p)
		if !ok || peer.Kind != KindSwitch {
			continue
		}
		// Visit each switch-switch link from its owning side only.
		if peer.ID < sw || (peer.ID == sw && peer.Port < p) {
			continue
		}
		if !fn(p, peer, t.LinkClass(sw, p)) {
			return false
		}
	}
	return true
}

// VisitLinks streams every undirected link of a topology — all host
// attachment links first, then every switch-to-switch link exactly once
// in ascending (switch, port) order — without materializing a slice.
// The visit order is exactly the order Links returns. fn returns false
// to stop early.
func VisitLinks(t Topology, fn func(Link) bool) {
	for h := 0; h < t.NumHosts(); h++ {
		sw, port := t.HostAttachment(h)
		if !fn(Link{
			A:     Endpoint{Kind: KindHost, ID: h},
			B:     Endpoint{Kind: KindSwitch, ID: sw, Port: port},
			Class: t.LinkClass(sw, port),
		}) {
			return
		}
	}
	for sw := 0; sw < t.NumSwitches(); sw++ {
		ok := VisitSwitchLinks(t, sw, func(p int, peer Endpoint, class LinkClass) bool {
			return fn(Link{A: Endpoint{Kind: KindSwitch, ID: sw, Port: p}, B: peer, Class: class})
		})
		if !ok {
			return
		}
	}
}

// Links enumerates every undirected link of a topology: all host
// attachment links plus every switch-to-switch link exactly once.
// Callers that do not need the materialized slice should stream with
// VisitLinks instead — at 10⁵–10⁶ hosts this slice is pure overhead.
func Links(t Topology) []Link {
	out := make([]Link, 0, t.NumHosts())
	VisitLinks(t, func(l Link) bool {
		out = append(out, l)
		return true
	})
	return out
}

// CountLinks returns the number of electrical and optical undirected
// links in the topology.
func CountLinks(t Topology) (electrical, optical int) {
	VisitLinks(t, func(l Link) bool {
		if l.Class == Electrical {
			electrical++
		} else {
			optical++
		}
		return true
	})
	return electrical, optical
}

// Validate cross-checks the wiring of a topology: every connected switch
// port's peer must point back at it, and host attachments must agree with
// Peer. It returns the first inconsistency found. The sweep is
// O(hosts + switches·radix); for topologies in the 10⁵–10⁶-host range
// where a full sweep is too slow for a test budget, ValidateSample
// spot-checks the same invariants on a random subset.
func Validate(t Topology) error {
	for h := 0; h < t.NumHosts(); h++ {
		if err := validateHost(t, h); err != nil {
			return err
		}
	}
	for sw := 0; sw < t.NumSwitches(); sw++ {
		if err := validateSwitch(t, sw); err != nil {
			return err
		}
	}
	return nil
}

// ValidateSample spot-checks the wiring invariants of Validate on a
// deterministic pseudo-random sample: up to samples hosts and samples
// switches drawn from seed (a switch check covers all of its ports).
// When samples covers the whole population the check degenerates to the
// exhaustive sweep, so small topologies are fully validated and large
// ones get property-style coverage at bounded cost.
func ValidateSample(t Topology, samples int, seed int64) error {
	if samples <= 0 {
		return fmt.Errorf("topo: ValidateSample needs a positive sample count, got %d", samples)
	}
	// splitmix64, matching the simulator's other deterministic draws.
	state := uint64(seed)
	next := func(n int) int {
		state += 0x9E3779B97F4A7C15
		z := state
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		return int(z % uint64(n))
	}
	if n := t.NumHosts(); samples >= n {
		for h := 0; h < n; h++ {
			if err := validateHost(t, h); err != nil {
				return err
			}
		}
	} else {
		for i := 0; i < samples; i++ {
			if err := validateHost(t, next(n)); err != nil {
				return err
			}
		}
	}
	if n := t.NumSwitches(); samples >= n {
		for sw := 0; sw < n; sw++ {
			if err := validateSwitch(t, sw); err != nil {
				return err
			}
		}
	} else {
		for i := 0; i < samples; i++ {
			if err := validateSwitch(t, next(n)); err != nil {
				return err
			}
		}
	}
	return nil
}

// validateHost checks one host's attachment against Peer.
func validateHost(t Topology, h int) error {
	sw, port := t.HostAttachment(h)
	if sw < 0 || sw >= t.NumSwitches() {
		return fmt.Errorf("host %d attaches to out-of-range switch %d", h, sw)
	}
	if port < 0 || port >= t.Radix() {
		return fmt.Errorf("host %d attaches to out-of-range port %d", h, port)
	}
	peer, ok := t.Peer(sw, port)
	if !ok {
		return fmt.Errorf("host %d attachment sw%d.p%d reported unconnected", h, sw, port)
	}
	if peer.Kind != KindHost || peer.ID != h {
		return fmt.Errorf("host %d attachment sw%d.p%d wired to %v", h, sw, port, peer)
	}
	return nil
}

// validateSwitch checks every port of one switch: peers must point back.
func validateSwitch(t Topology, sw int) error {
	for p := 0; p < t.Radix(); p++ {
		peer, ok := t.Peer(sw, p)
		if !ok {
			continue
		}
		switch peer.Kind {
		case KindHost:
			psw, pport := t.HostAttachment(peer.ID)
			if psw != sw || pport != p {
				return fmt.Errorf("sw%d.p%d claims host %d, but host attaches at sw%d.p%d",
					sw, p, peer.ID, psw, pport)
			}
		case KindSwitch:
			if peer.ID < 0 || peer.ID >= t.NumSwitches() {
				return fmt.Errorf("sw%d.p%d wired to out-of-range switch %d", sw, p, peer.ID)
			}
			back, ok := t.Peer(peer.ID, peer.Port)
			if !ok {
				return fmt.Errorf("sw%d.p%d wired to unconnected sw%d.p%d", sw, p, peer.ID, peer.Port)
			}
			if back.Kind != KindSwitch || back.ID != sw || back.Port != p {
				return fmt.Errorf("sw%d.p%d -> sw%d.p%d but reverse is %v",
					sw, p, peer.ID, peer.Port, back)
			}
		}
	}
	return nil
}
