package topo

import "fmt"

// FatTree is a two-level folded Clos (leaf/spine) used as a simulatable
// baseline topology. Each of the Leaves leaf switches concentrates C
// hosts and has U uplinks; each of the Spines spine switches has Leaves
// downlinks (one per leaf), so U must equal Spines. The network is
// non-blocking when C == U.
//
// Leaf port layout: ports [0, C) hosts, ports [C, C+U) uplinks to spines
// (port C+s reaches spine s). Spine port layout: port l reaches leaf l.
type FatTree struct {
	C      int // hosts per leaf
	Leaves int
	Spines int
}

// NewFatTree builds a leaf/spine folded Clos. Spine count equals the
// number of uplinks per leaf.
func NewFatTree(hostsPerLeaf, leaves, spines int) (*FatTree, error) {
	if hostsPerLeaf < 1 || leaves < 1 || spines < 1 {
		return nil, fmt.Errorf("fattree: all parameters must be >= 1, got c=%d leaves=%d spines=%d",
			hostsPerLeaf, leaves, spines)
	}
	return &FatTree{C: hostsPerLeaf, Leaves: leaves, Spines: spines}, nil
}

// MustFatTree is NewFatTree that panics on error.
func MustFatTree(hostsPerLeaf, leaves, spines int) *FatTree {
	t, err := NewFatTree(hostsPerLeaf, leaves, spines)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements Topology.
func (t *FatTree) Name() string {
	return fmt.Sprintf("fat tree (%d leaves x %d hosts, %d spines)", t.Leaves, t.C, t.Spines)
}

// NumSwitches implements Topology: leaves then spines.
func (t *FatTree) NumSwitches() int { return t.Leaves + t.Spines }

// NumHosts implements Topology.
func (t *FatTree) NumHosts() int { return t.C * t.Leaves }

// Radix implements Topology: the maximum port count over leaf (C+Spines)
// and spine (Leaves) switches.
func (t *FatTree) Radix() int {
	if t.C+t.Spines > t.Leaves {
		return t.C + t.Spines
	}
	return t.Leaves
}

// IsSpine reports whether switch sw is a spine.
func (t *FatTree) IsSpine(sw int) bool { return sw >= t.Leaves }

// SpineID returns the spine index of switch sw (which must be a spine).
func (t *FatTree) SpineID(sw int) int { return sw - t.Leaves }

// LeafOfHost returns the leaf switch index of host h.
func (t *FatTree) LeafOfHost(h int) int { return h / t.C }

// UplinkPort returns the leaf port reaching spine s.
func (t *FatTree) UplinkPort(s int) int { return t.C + s }

// HostAttachment implements Topology.
func (t *FatTree) HostAttachment(h int) (sw, port int) { return h / t.C, h % t.C }

// Peer implements Topology.
func (t *FatTree) Peer(sw, port int) (Endpoint, bool) {
	if port < 0 {
		return Endpoint{}, false
	}
	if t.IsSpine(sw) {
		if port >= t.Leaves {
			return Endpoint{}, false
		}
		return Endpoint{Kind: KindSwitch, ID: port, Port: t.UplinkPort(t.SpineID(sw))}, true
	}
	if port < t.C {
		return Endpoint{Kind: KindHost, ID: sw*t.C + port}, true
	}
	if port < t.C+t.Spines {
		return Endpoint{Kind: KindSwitch, ID: t.Leaves + (port - t.C), Port: sw}, true
	}
	return Endpoint{}, false
}

// LinkClass implements Topology: host links are copper, leaf-spine links
// optical (they leave the rack).
func (t *FatTree) LinkClass(sw, port int) LinkClass {
	if !t.IsSpine(sw) && port < t.C {
		return Electrical
	}
	return Optical
}

var _ Topology = (*FatTree)(nil)
