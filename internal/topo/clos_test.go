package topo

import "testing"

// TestClosTable1 checks that the analytic folded-Clos model reproduces
// every folded-Clos row of the paper's Table 1 for the 32k-host,
// 36-port-chip system.
func TestClosTable1(t *testing.T) {
	c, err := NewClosPartCount(32768, 36)
	if err != nil {
		t.Fatal(err)
	}
	if c.ChassisPorts != 324 {
		t.Errorf("ChassisPorts = %d, want 324", c.ChassisPorts)
	}
	if c.ChipsPerBox != 27 {
		t.Errorf("ChipsPerBox = %d, want 27", c.ChipsPerBox)
	}
	if c.Stage3Chassis != 102 {
		t.Errorf("Stage3Chassis = %d, want 102", c.Stage3Chassis)
	}
	if c.Stage2Chassis != 203 {
		t.Errorf("Stage2Chassis = %d, want 203", c.Stage2Chassis)
	}
	if c.SwitchChips != 8235 {
		t.Errorf("SwitchChips = %d, want 8235", c.SwitchChips)
	}
	if c.PoweredChips != 8192 {
		t.Errorf("PoweredChips = %d, want 8192", c.PoweredChips)
	}
	if got := c.ElectricalLinks(); got != 49152 {
		t.Errorf("ElectricalLinks = %d, want 49152", got)
	}
	if got := c.OpticalLinks(); got != 65536 {
		t.Errorf("OpticalLinks = %d, want 65536", got)
	}
	if got := c.BisectionGbps(40); got != 655360 {
		t.Errorf("BisectionGbps = %v, want 655360 (655 Tb/s)", got)
	}
}

func TestClosInvalid(t *testing.T) {
	if _, err := NewClosPartCount(0, 36); err == nil {
		t.Error("hosts=0 accepted")
	}
	if _, err := NewClosPartCount(100, 2); err == nil {
		t.Error("radix 2 accepted")
	}
	// An odd radix rounds down to the usable even port count.
	c, err := NewClosPartCount(100, 35)
	if err != nil {
		t.Fatalf("odd radix rejected: %v", err)
	}
	if c.ChipRadix != 34 {
		t.Errorf("odd radix 35 used as %d, want 34", c.ChipRadix)
	}
}

func TestClosSmallSystems(t *testing.T) {
	// A small system still produces internally consistent counts.
	c, err := NewClosPartCount(1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.ChassisPorts != 16 {
		t.Errorf("ChassisPorts = %d, want 16 (4 edge chips x 4 ports)", c.ChassisPorts)
	}
	if c.SwitchChips < c.PoweredChips {
		t.Errorf("powered %d > total %d", c.PoweredChips, c.SwitchChips)
	}
	if c.Stage2Chassis < c.Stage3Chassis {
		t.Errorf("stage2 (%d) should need at least as many chassis as stage3 (%d)",
			c.Stage2Chassis, c.Stage3Chassis)
	}
}

func TestFBFLYPartCountTable1(t *testing.T) {
	pc := FBFLYPartCount{MustFBFLY(8, 5, 8)}
	if got := pc.InterSwitchChannels(); got != 4096*28 {
		t.Errorf("InterSwitchChannels = %d, want %d", got, 4096*28)
	}
	if got := pc.RequiredPorts(); got != 36 {
		t.Errorf("RequiredPorts = %d, want 36", got)
	}
	if got := pc.OverSubscription(); got != 1.0 {
		t.Errorf("OverSubscription = %v, want 1.0", got)
	}
}

func TestFatTreeBasics(t *testing.T) {
	ft := MustFatTree(4, 8, 4) // 32 hosts, nonblocking
	if got := ft.NumHosts(); got != 32 {
		t.Errorf("NumHosts = %d, want 32", got)
	}
	if got := ft.NumSwitches(); got != 12 {
		t.Errorf("NumSwitches = %d, want 12", got)
	}
	if err := Validate(ft); err != nil {
		t.Fatal(err)
	}
	e, o := CountLinks(ft)
	if e != 32 {
		t.Errorf("electrical = %d, want 32 host links", e)
	}
	if o != 8*4 {
		t.Errorf("optical = %d, want 32 leaf-spine links", o)
	}
}

func TestFatTreeInvalid(t *testing.T) {
	if _, err := NewFatTree(0, 2, 2); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := NewFatTree(2, 0, 2); err == nil {
		t.Error("leaves=0 accepted")
	}
	if _, err := NewFatTree(2, 2, 0); err == nil {
		t.Error("spines=0 accepted")
	}
}

func TestFatTreePorts(t *testing.T) {
	ft := MustFatTree(3, 4, 2)
	// Leaf 1, uplink to spine 0.
	peer, ok := ft.Peer(1, ft.UplinkPort(0))
	if !ok || peer.Kind != KindSwitch || !ft.IsSpine(peer.ID) || ft.SpineID(peer.ID) != 0 {
		t.Fatalf("leaf uplink peer = %v ok=%v", peer, ok)
	}
	// Reverse direction.
	back, ok := ft.Peer(peer.ID, peer.Port)
	if !ok || back.ID != 1 || back.Port != ft.UplinkPort(0) {
		t.Fatalf("spine downlink peer = %v ok=%v", back, ok)
	}
	// Out-of-range ports unconnected.
	if _, ok := ft.Peer(0, ft.Radix()+1); ok {
		t.Error("out-of-range leaf port reported connected")
	}
	if _, ok := ft.Peer(ft.Leaves, ft.Leaves); ok {
		t.Error("out-of-range spine port reported connected")
	}
}

func TestEndpointString(t *testing.T) {
	h := Endpoint{Kind: KindHost, ID: 3}
	if h.String() != "host3" {
		t.Errorf("host endpoint = %q", h.String())
	}
	s := Endpoint{Kind: KindSwitch, ID: 2, Port: 5}
	if s.String() != "sw2.p5" {
		t.Errorf("switch endpoint = %q", s.String())
	}
	if KindHost.String() != "host" || KindSwitch.String() != "switch" {
		t.Error("Kind.String mismatch")
	}
	if Electrical.String() != "electrical" || Optical.String() != "optical" {
		t.Error("LinkClass.String mismatch")
	}
}
