// Package traffic generates the workloads of the paper's evaluation
// (§4.1): Uniform (each host repeatedly sends a 512 KB message to a new
// random destination) and two production-datacenter-like traces, Search
// and Advert.
//
// The production traces themselves are proprietary; the paper describes
// their load-bearing properties — "very bursty at a variety of
// timescales, yet exhibit low average network utilization of 5-25%",
// with substantial distributed-file-system traffic whose read/write mix
// makes channel usage asymmetric. The TraceLike generator reproduces
// those properties with heavy-tailed (truncated Pareto) think times and
// response sizes, a client/server request-response structure that loads
// the two directions of server links asymmetrically, and background
// file-system block shuffles. See DESIGN.md for the substitution notes.
package traffic

import (
	"fmt"
	"math"
	"math/rand"

	"epnet/internal/link"
	"epnet/internal/sim"
)

// Target is where workloads inject messages; *fabric.Network satisfies
// it.
type Target interface {
	NumHosts() int
	InjectMessage(src, dst, size int)
}

// Workload schedules message injections on an engine until a horizon.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// AvgUtil is the intended mean injection utilization per host,
	// as a fraction of line rate.
	AvgUtil() float64
	// Start schedules injections on e against tgt. No new messages are
	// generated after horizon (in-flight traffic may drain later).
	Start(e *sim.Engine, tgt Target, horizon sim.Time)
}

// Pareto is a truncated Pareto distribution on [Min, Max] with shape
// Alpha — the standard heavy-tail model for self-similar datacenter
// traffic (bursty across many timescales).
type Pareto struct {
	Alpha    float64
	Min, Max float64
}

// Validate rejects degenerate parameters.
func (p Pareto) Validate() error {
	if p.Alpha <= 0 || p.Alpha == 1 {
		return fmt.Errorf("traffic: pareto alpha must be > 0 and != 1, got %v", p.Alpha)
	}
	if p.Min <= 0 || p.Max <= p.Min {
		return fmt.Errorf("traffic: pareto needs 0 < min < max, got [%v,%v]", p.Min, p.Max)
	}
	return nil
}

// Mean returns the analytic mean of the truncated distribution.
func (p Pareto) Mean() float64 {
	z := 1 - math.Pow(p.Min/p.Max, p.Alpha)
	return p.Alpha / (p.Alpha - 1) * math.Pow(p.Min, p.Alpha) *
		(math.Pow(p.Min, 1-p.Alpha) - math.Pow(p.Max, 1-p.Alpha)) / z
}

// Sample draws one value using inverse-CDF sampling.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	z := 1 - math.Pow(p.Min/p.Max, p.Alpha)
	u := rng.Float64()
	return p.Min / math.Pow(1-u*z, 1/p.Alpha)
}

// ScaleToMean returns a copy of p whose Min and Max are scaled so the
// mean equals m (shape preserved).
func (p Pareto) ScaleToMean(m float64) Pareto {
	cur := p.Mean()
	s := m / cur
	return Pareto{Alpha: p.Alpha, Min: p.Min * s, Max: p.Max * s}
}

// Uniform is the paper's synthetic workload: every host repeatedly
// sends a MsgBytes message to a new uniformly random destination, with
// exponentially distributed gaps sized to offer Load of line rate.
type Uniform struct {
	MsgBytes int
	Load     float64
	LineRate link.Rate
	Seed     int64
}

// DefaultUniform returns the §4.1 configuration: 512 KB messages at the
// 23% average utilization the paper reports for Uniform.
func DefaultUniform(seed int64) *Uniform {
	return &Uniform{MsgBytes: 512 * 1024, Load: 0.23, LineRate: link.Rate40G, Seed: seed}
}

// Name implements Workload.
func (u *Uniform) Name() string { return "Uniform" }

// AvgUtil implements Workload.
func (u *Uniform) AvgUtil() float64 { return u.Load }

// Start implements Workload.
func (u *Uniform) Start(e *sim.Engine, tgt Target, horizon sim.Time) {
	n := tgt.NumHosts()
	meanGapSec := float64(u.MsgBytes*8) / (u.Load * float64(u.LineRate))
	rng := rand.New(rand.NewSource(u.Seed))
	for h := 0; h < n; h++ {
		h := h
		hrng := rand.New(rand.NewSource(u.Seed ^ int64(h)*0x2545F4914F6CDD1D))
		var send func(now sim.Time)
		send = func(now sim.Time) {
			if now > horizon {
				return
			}
			dst := hrng.Intn(n)
			if dst == h {
				dst = (dst + 1) % n
			}
			tgt.InjectMessage(h, dst, u.MsgBytes)
			gap := sim.Time(hrng.ExpFloat64() * meanGapSec * float64(sim.Second))
			if gap < sim.Nanosecond {
				gap = sim.Nanosecond
			}
			e.After(gap, send)
		}
		// Random start phase to avoid synchronized injection. Scheduled
		// relative to the current clock so generators can start mid-run.
		e.After(sim.Time(rng.Int63n(int64(meanGapSec*float64(sim.Second))+1)), send)
	}
}

// TraceLike is the synthetic stand-in for the production traces. Hosts
// are partitioned into servers (file/index servers) and clients. Clients
// run a heavy-tailed think/exchange loop: a Pareto think time, then a
// request to a random server, which responds after ServerDelay with a
// Pareto-sized transfer (the read-heavy direction). Independently, every
// host occasionally ships a large file-system block to a random host
// (replication / shuffle traffic). The paper's trace properties this
// preserves: low average utilization, burstiness across timescales
// (Pareto tails), randomized placement, and asymmetric channel usage.
type TraceLike struct {
	Label       string
	Load        float64 // mean injection utilization target
	LineRate    link.Rate
	ServerFrac  float64 // fraction of hosts acting as servers
	ReqBytes    int     // client request size
	Resp        Pareto  // server response size (bytes)
	Think       Pareto  // client think-time shape (rescaled for Load)
	ServerDelay sim.Time
	ShuffleFrac float64 // fraction of bytes carried by block shuffles
	ShuffleB    Pareto  // shuffle block size (bytes)
	Seed        int64
}

// Search returns the web-search-like trace: ~6% average utilization
// (the paper's measured average for Search), read-heavy responses from
// a large server pool.
func Search(seed int64) *TraceLike {
	return &TraceLike{
		Label:       "Search",
		Load:        0.06,
		LineRate:    link.Rate40G,
		ServerFrac:  0.25,
		ReqBytes:    4 * 1024,
		Resp:        Pareto{Alpha: 1.3, Min: 64 * 1024, Max: 2 * 1024 * 1024},
		Think:       Pareto{Alpha: 1.6, Min: 1, Max: 200}, // shape only; rescaled
		ServerDelay: 25 * sim.Microsecond,
		ShuffleFrac: 0.35,
		ShuffleB:    Pareto{Alpha: 1.3, Min: 256 * 1024, Max: 4 * 1024 * 1024},
		Seed:        seed,
	}
}

// Advert returns the advertising-service-like trace: ~5% average
// utilization, smaller responses, heavier file-system share.
func Advert(seed int64) *TraceLike {
	return &TraceLike{
		Label:       "Advert",
		Load:        0.05,
		LineRate:    link.Rate40G,
		ServerFrac:  0.15,
		ReqBytes:    2 * 1024,
		Resp:        Pareto{Alpha: 1.4, Min: 16 * 1024, Max: 512 * 1024},
		Think:       Pareto{Alpha: 1.6, Min: 1, Max: 200},
		ServerDelay: 25 * sim.Microsecond,
		ShuffleFrac: 0.5,
		ShuffleB:    Pareto{Alpha: 1.3, Min: 256 * 1024, Max: 4 * 1024 * 1024},
		Seed:        seed,
	}
}

// Name implements Workload.
func (t *TraceLike) Name() string { return t.Label }

// AvgUtil implements Workload.
func (t *TraceLike) AvgUtil() float64 { return t.Load }

// Validate checks distribution parameters.
func (t *TraceLike) Validate() error {
	if t.Load <= 0 || t.Load >= 1 {
		return fmt.Errorf("traffic: load %v out of (0,1)", t.Load)
	}
	if t.ServerFrac <= 0 || t.ServerFrac >= 1 {
		return fmt.Errorf("traffic: server fraction %v out of (0,1)", t.ServerFrac)
	}
	if t.ShuffleFrac < 0 || t.ShuffleFrac >= 1 {
		return fmt.Errorf("traffic: shuffle fraction %v out of [0,1)", t.ShuffleFrac)
	}
	if t.ReqBytes <= 0 {
		return fmt.Errorf("traffic: request bytes %d", t.ReqBytes)
	}
	for _, p := range []Pareto{t.Resp, t.Think, t.ShuffleB} {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Start implements Workload.
func (t *TraceLike) Start(e *sim.Engine, tgt Target, horizon sim.Time) {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	n := tgt.NumHosts()
	nServers := int(float64(n) * t.ServerFrac)
	if nServers < 1 {
		nServers = 1
	}
	if nServers >= n {
		nServers = n - 1
	}
	// Randomized placement (§4.1: "application placement has been
	// randomized across the cluster").
	rng := rand.New(rand.NewSource(t.Seed))
	perm := rng.Perm(n)
	servers := perm[:nServers]
	clients := perm[nServers:]

	// Byte budget: total injected bytes/sec across the cluster.
	totalBps := t.Load * float64(t.LineRate) / 8 * float64(n)
	exchangeBytes := float64(t.ReqBytes) + t.Resp.Mean()
	exchangeBps := totalBps * (1 - t.ShuffleFrac)
	perClientExchangesPerSec := exchangeBps / exchangeBytes / float64(len(clients))
	think := t.Think.ScaleToMean(1 / perClientExchangesPerSec) // seconds

	// Client request/response loops.
	for _, c := range clients {
		c := c
		crng := rand.New(rand.NewSource(t.Seed ^ int64(c)*0x2545F4914F6CDD1D))
		var loop func(now sim.Time)
		loop = func(now sim.Time) {
			if now > horizon {
				return
			}
			srv := servers[crng.Intn(len(servers))]
			tgt.InjectMessage(c, srv, t.ReqBytes)
			resp := int(t.Resp.Sample(crng))
			e.After(t.ServerDelay, func(rnow sim.Time) {
				if rnow > horizon {
					return
				}
				tgt.InjectMessage(srv, c, resp)
			})
			gap := sim.Time(think.Sample(crng) * float64(sim.Second))
			if gap < sim.Nanosecond {
				gap = sim.Nanosecond
			}
			e.After(gap, loop)
		}
		start := sim.Time(crng.Float64() * think.Mean() * float64(sim.Second))
		e.After(start, loop)
	}

	if t.ShuffleFrac == 0 {
		return
	}
	shuffleBps := totalBps * t.ShuffleFrac
	perHostShufflesPerSec := shuffleBps / t.ShuffleB.Mean() / float64(n)
	shuffleGap := t.Think.ScaleToMean(1 / perHostShufflesPerSec) // seconds

	// Background block shuffles from every host.
	for h := 0; h < n; h++ {
		h := h
		hrng := rand.New(rand.NewSource(t.Seed ^ 0x5DEECE66D ^ int64(h)*0x2545F4914F6CDD1D))
		var loop func(now sim.Time)
		loop = func(now sim.Time) {
			if now > horizon {
				return
			}
			dst := hrng.Intn(n)
			if dst == h {
				dst = (dst + 1) % n
			}
			tgt.InjectMessage(h, dst, int(t.ShuffleB.Sample(hrng)))
			gap := sim.Time(shuffleGap.Sample(hrng) * float64(sim.Second))
			if gap < sim.Nanosecond {
				gap = sim.Nanosecond
			}
			e.After(gap, loop)
		}
		start := sim.Time(hrng.Float64() * shuffleGap.Mean() * float64(sim.Second))
		e.After(start, loop)
	}
}

// Permutation sends steady streams along a fixed random permutation —
// a classic adversarial pattern for adaptive routing ablations.
type Permutation struct {
	MsgBytes int
	Load     float64
	LineRate link.Rate
	Seed     int64
}

// Name implements Workload.
func (p *Permutation) Name() string { return "Permutation" }

// AvgUtil implements Workload.
func (p *Permutation) AvgUtil() float64 { return p.Load }

// Start implements Workload.
func (p *Permutation) Start(e *sim.Engine, tgt Target, horizon sim.Time) {
	n := tgt.NumHosts()
	rng := rand.New(rand.NewSource(p.Seed))
	perm := rng.Perm(n)
	meanGapSec := float64(p.MsgBytes*8) / (p.Load * float64(p.LineRate))
	for h := 0; h < n; h++ {
		h := h
		dst := perm[h]
		if dst == h {
			dst = (dst + 1) % n
		}
		hrng := rand.New(rand.NewSource(p.Seed ^ int64(h)*0x2545F4914F6CDD1D))
		var send func(now sim.Time)
		send = func(now sim.Time) {
			if now > horizon {
				return
			}
			tgt.InjectMessage(h, dst, p.MsgBytes)
			gap := sim.Time(hrng.ExpFloat64() * meanGapSec * float64(sim.Second))
			if gap < sim.Nanosecond {
				gap = sim.Nanosecond
			}
			e.After(gap, send)
		}
		e.After(sim.Time(hrng.Int63n(int64(meanGapSec*float64(sim.Second))+1)), send)
	}
}

// Hotspot directs all hosts' traffic at a small set of hot destinations.
type Hotspot struct {
	MsgBytes int
	Load     float64
	LineRate link.Rate
	Hot      int // number of hot destinations
	Seed     int64
}

// Name implements Workload.
func (p *Hotspot) Name() string { return "Hotspot" }

// AvgUtil implements Workload.
func (p *Hotspot) AvgUtil() float64 { return p.Load }

// Start implements Workload.
func (p *Hotspot) Start(e *sim.Engine, tgt Target, horizon sim.Time) {
	n := tgt.NumHosts()
	hot := p.Hot
	if hot < 1 {
		hot = 1
	}
	meanGapSec := float64(p.MsgBytes*8) / (p.Load * float64(p.LineRate))
	for h := 0; h < n; h++ {
		h := h
		hrng := rand.New(rand.NewSource(p.Seed ^ int64(h)*0x2545F4914F6CDD1D))
		var send func(now sim.Time)
		send = func(now sim.Time) {
			if now > horizon {
				return
			}
			dst := hrng.Intn(hot)
			if dst == h {
				dst = (dst + 1) % n
			}
			tgt.InjectMessage(h, dst, p.MsgBytes)
			gap := sim.Time(hrng.ExpFloat64() * meanGapSec * float64(sim.Second))
			if gap < sim.Nanosecond {
				gap = sim.Nanosecond
			}
			e.After(gap, send)
		}
		e.After(sim.Time(hrng.Int63n(int64(meanGapSec*float64(sim.Second))+1)), send)
	}
}

// Tornado sends every host's traffic to the host halfway around the
// cluster (dst = src + N/2 mod N) — the classic adversarial pattern for
// ring-based topologies, and therefore the stress case for the §5.1
// dynamic topologies that degrade FBFLY dimensions to rings.
type Tornado struct {
	MsgBytes int
	Load     float64
	LineRate link.Rate
	Seed     int64
}

// Name implements Workload.
func (p *Tornado) Name() string { return "Tornado" }

// AvgUtil implements Workload.
func (p *Tornado) AvgUtil() float64 { return p.Load }

// Start implements Workload.
func (p *Tornado) Start(e *sim.Engine, tgt Target, horizon sim.Time) {
	n := tgt.NumHosts()
	meanGapSec := float64(p.MsgBytes*8) / (p.Load * float64(p.LineRate))
	for h := 0; h < n; h++ {
		h := h
		dst := (h + n/2) % n
		if dst == h {
			dst = (dst + 1) % n
		}
		hrng := rand.New(rand.NewSource(p.Seed ^ int64(h)*0x2545F4914F6CDD1D))
		var send func(now sim.Time)
		send = func(now sim.Time) {
			if now > horizon {
				return
			}
			tgt.InjectMessage(h, dst, p.MsgBytes)
			gap := sim.Time(hrng.ExpFloat64() * meanGapSec * float64(sim.Second))
			if gap < sim.Nanosecond {
				gap = sim.Nanosecond
			}
			e.After(gap, send)
		}
		e.After(sim.Time(hrng.Int63n(int64(meanGapSec*float64(sim.Second))+1)), send)
	}
}
