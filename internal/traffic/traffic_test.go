package traffic

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"epnet/internal/link"
	"epnet/internal/sim"
)

func TestParetoValidate(t *testing.T) {
	bad := []Pareto{
		{Alpha: 0, Min: 1, Max: 2},
		{Alpha: 1, Min: 1, Max: 2},
		{Alpha: -1, Min: 1, Max: 2},
		{Alpha: 1.5, Min: 0, Max: 2},
		{Alpha: 1.5, Min: 2, Max: 2},
		{Alpha: 1.5, Min: 3, Max: 2},
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Errorf("pareto %+v accepted", p)
		}
	}
	if (Pareto{Alpha: 1.3, Min: 1, Max: 10}).Validate() != nil {
		t.Error("valid pareto rejected")
	}
}

func TestParetoMeanMatchesSamples(t *testing.T) {
	p := Pareto{Alpha: 1.3, Min: 64, Max: 2048}
	rng := rand.New(rand.NewSource(1))
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := p.Sample(rng)
		if v < p.Min || v > p.Max {
			t.Fatalf("sample %v outside [%v,%v]", v, p.Min, p.Max)
		}
		sum += v
	}
	got := sum / n
	want := p.Mean()
	if math.Abs(got-want)/want > 0.03 {
		t.Errorf("sample mean %v vs analytic %v", got, want)
	}
}

func TestParetoScaleToMean(t *testing.T) {
	p := Pareto{Alpha: 1.2, Min: 1, Max: 1000}
	q := p.ScaleToMean(42)
	if math.Abs(q.Mean()-42) > 1e-9 {
		t.Errorf("scaled mean = %v, want 42", q.Mean())
	}
	if q.Alpha != p.Alpha {
		t.Error("scale changed shape")
	}
	if math.Abs(q.Max/q.Min-p.Max/p.Min) > 1e-9 {
		t.Error("scale changed dynamic range")
	}
}

// Property: Pareto sampling stays within bounds for arbitrary valid
// parameters.
func TestParetoBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(aRaw, mRaw, spanRaw uint16) bool {
		alpha := 1.05 + float64(aRaw%300)/100 // 1.05..4.05
		min := 1 + float64(mRaw%1000)
		max := min * (2 + float64(spanRaw%100))
		p := Pareto{Alpha: alpha, Min: min, Max: max}
		for i := 0; i < 50; i++ {
			v := p.Sample(rng)
			if v < min || v > max {
				return false
			}
		}
		m := p.Mean()
		return m >= min && m <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestUniformCalibration captures the Uniform workload and verifies its
// offered load lands on the configured 23% average utilization.
func TestUniformCalibration(t *testing.T) {
	w := DefaultUniform(7)
	if w.Name() != "Uniform" || w.AvgUtil() != 0.23 {
		t.Fatalf("identity: %q %v", w.Name(), w.AvgUtil())
	}
	const hosts = 64
	horizon := 20 * sim.Millisecond
	recs := Capture(w, hosts, horizon)
	st := Stats(recs, hosts, float64(link.Rate40G), horizon)
	if st.MeanUtil < 0.20 || st.MeanUtil > 0.26 {
		t.Errorf("uniform mean util = %v, want ~0.23", st.MeanUtil)
	}
	if st.MaxMsgSize != 512*1024 {
		t.Errorf("message size = %d, want 512k", st.MaxMsgSize)
	}
	// Every destination differs from its source.
	for _, r := range recs {
		if r.Src == r.Dst {
			t.Fatal("self-directed message")
		}
	}
}

// TestTraceLikeCalibration verifies the Search and Advert synthetics hit
// the paper's average utilizations (6% and 5%) within tolerance, and are
// much burstier than the Uniform workload at sub-millisecond timescales.
func TestTraceLikeCalibration(t *testing.T) {
	const hosts = 128
	horizon := 50 * sim.Millisecond
	windows := []sim.Time{10 * sim.Microsecond, 100 * sim.Microsecond, sim.Millisecond}

	uni := Capture(DefaultUniform(3), hosts, horizon)
	uniBurst := BurstinessIndex(uni, horizon, windows)

	for _, tc := range []struct {
		w    *TraceLike
		want float64
	}{
		{Search(3), 0.06},
		{Advert(3), 0.05},
	} {
		recs := Capture(tc.w, hosts, horizon)
		st := Stats(recs, hosts, float64(link.Rate40G), horizon)
		if math.Abs(st.MeanUtil-tc.want)/tc.want > 0.35 {
			t.Errorf("%s mean util = %v, want ~%v", tc.w.Name(), st.MeanUtil, tc.want)
		}
		burst := BurstinessIndex(recs, horizon, windows)
		if burst <= uniBurst {
			t.Errorf("%s burstiness %v not above uniform %v", tc.w.Name(), burst, uniBurst)
		}
	}
}

// TestTraceLikeAsymmetry: server hosts must inject far more bytes than
// they receive requests for — the read-heavy asymmetry behind the
// paper's independent channel control argument (§3.3.1).
func TestTraceLikeAsymmetry(t *testing.T) {
	const hosts = 64
	horizon := 20 * sim.Millisecond
	w := Search(5)
	w.ShuffleFrac = 0 // isolate the request/response asymmetry
	recs := Capture(w, hosts, horizon)
	out := make(map[int]int64)
	in := make(map[int]int64)
	for _, r := range recs {
		out[r.Src] += int64(r.Size)
		in[r.Dst] += int64(r.Size)
	}
	// Find the host with the largest outbound volume: a server. Its
	// outbound bytes should dwarf its inbound.
	var top int
	for h := range out {
		if out[h] > out[top] {
			top = h
		}
	}
	if out[top] < 4*in[top] {
		t.Errorf("top server out=%d in=%d, want >= 4x asymmetry", out[top], in[top])
	}
}

func TestTraceLikeValidate(t *testing.T) {
	w := Search(1)
	w.Load = 0
	if w.Validate() == nil {
		t.Error("load 0 accepted")
	}
	w = Search(1)
	w.ServerFrac = 1
	if w.Validate() == nil {
		t.Error("server frac 1 accepted")
	}
	w = Search(1)
	w.ShuffleFrac = 1
	if w.Validate() == nil {
		t.Error("shuffle frac 1 accepted")
	}
	w = Search(1)
	w.ReqBytes = 0
	if w.Validate() == nil {
		t.Error("req bytes 0 accepted")
	}
	if Search(1).Validate() != nil || Advert(1).Validate() != nil {
		t.Error("valid presets rejected")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	recs := Capture(DefaultUniform(9), 16, 2*sim.Millisecond)
	if len(recs) == 0 {
		t.Fatal("no records captured")
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip %d != %d records", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %v != %v", i, got[i], recs[i])
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadTrace(bytes.NewReader([]byte("NOTATRACEFILE!!!"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated body.
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []Record{{At: 1, Src: 0, Dst: 1, Size: 10}}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
	// Invalid record (negative size) rejected.
	var buf2 bytes.Buffer
	buf2.Write(traceMagic[:])
	buf2.Write([]byte{1, 0, 0, 0, 0, 0, 0, 0})
	for i := 0; i < 4; i++ {
		buf2.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	}
	if _, err := ReadTrace(bytes.NewReader(buf2.Bytes())); err == nil {
		t.Error("negative record accepted")
	}
}

func TestReplay(t *testing.T) {
	recs := []Record{
		{At: sim.Microsecond, Src: 0, Dst: 1, Size: 100},
		{At: 2 * sim.Microsecond, Src: 1, Dst: 0, Size: 200},
		{At: sim.Second, Src: 0, Dst: 1, Size: 300}, // beyond horizon
	}
	e := sim.New()
	rec := &recorder{hosts: 2, e: e}
	p := &Replay{Label: "replay", Records: recs, Util: 0.5}
	if p.Name() != "replay" || p.AvgUtil() != 0.5 {
		t.Fatal("identity")
	}
	p.Start(e, rec, 10*sim.Microsecond)
	e.Run()
	if len(rec.out) != 2 {
		t.Fatalf("replayed %d records, want 2 (horizon skips third)", len(rec.out))
	}
	if rec.out[0].At != sim.Microsecond || rec.out[1].Size != 200 {
		t.Errorf("replay mismatch: %v", rec.out)
	}
}

func TestPermutationAndHotspot(t *testing.T) {
	const hosts = 32
	horizon := 5 * sim.Millisecond
	perm := &Permutation{MsgBytes: 8192, Load: 0.1, LineRate: link.Rate40G, Seed: 4}
	recs := Capture(perm, hosts, horizon)
	// Each source always sends to the same destination.
	dst := map[int]int{}
	for _, r := range recs {
		if d, ok := dst[r.Src]; ok && d != r.Dst {
			t.Fatal("permutation source changed destination")
		}
		dst[r.Src] = r.Dst
		if r.Src == r.Dst {
			t.Fatal("self-directed")
		}
	}
	hot := &Hotspot{MsgBytes: 8192, Load: 0.05, LineRate: link.Rate40G, Hot: 2, Seed: 4}
	recs = Capture(hot, hosts, horizon)
	for _, r := range recs {
		if r.Dst >= 2 && r.Dst != r.Src+1 && r.Dst != 2 { // allow self-avoid bump
			if r.Dst > 2 {
				t.Fatalf("hotspot sent to %d", r.Dst)
			}
		}
	}
}

func TestBurstinessIndexEdges(t *testing.T) {
	if BurstinessIndex(nil, sim.Second, []sim.Time{sim.Millisecond}) != 0 {
		t.Error("empty trace not 0")
	}
	recs := []Record{{At: 0, Src: 0, Dst: 1, Size: 100}}
	if BurstinessIndex(recs, 0, []sim.Time{sim.Millisecond}) != 0 {
		t.Error("zero horizon not 0")
	}
	if BurstinessIndex(recs, sim.Second, nil) != 0 {
		t.Error("no windows not 0")
	}
	// Perfectly smooth traffic scores below bursty traffic.
	var smooth, bursty []Record
	for i := 0; i < 1000; i++ {
		smooth = append(smooth, Record{At: sim.Time(i) * sim.Microsecond, Size: 100})
	}
	for i := 0; i < 1000; i++ {
		bursty = append(bursty, Record{At: sim.Time(i/100) * 100 * sim.Microsecond, Size: 100})
	}
	h := sim.Millisecond
	ws := []sim.Time{10 * sim.Microsecond, 100 * sim.Microsecond}
	if BurstinessIndex(smooth, h, ws) >= BurstinessIndex(bursty, h, ws) {
		t.Error("smooth traffic scored as bursty")
	}
}

func TestStatsEmpty(t *testing.T) {
	st := Stats(nil, 0, 0, 0)
	if st.Messages != 0 || st.Bytes != 0 || st.MeanUtil != 0 {
		t.Error("empty stats not zero")
	}
}

func TestScaleTrace(t *testing.T) {
	recs := []Record{
		{At: 1000, Src: 0, Dst: 1, Size: 100},
		{At: 2000, Src: 1, Dst: 0, Size: 1},
	}
	out, err := ScaleTrace(recs, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].At != 500 || out[1].At != 1000 {
		t.Errorf("times not compressed: %v %v", out[0].At, out[1].At)
	}
	if out[0].Size != 300 || out[1].Size != 3 {
		t.Errorf("sizes not scaled: %d %d", out[0].Size, out[1].Size)
	}
	// Tiny sizes clamp to one byte.
	out, err = ScaleTrace(recs, 1, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if out[1].Size != 1 {
		t.Errorf("size %d, want clamp to 1", out[1].Size)
	}
	// Invalid factors rejected.
	if _, err := ScaleTrace(recs, 0, 1); err == nil {
		t.Error("speedup 0 accepted")
	}
	if _, err := ScaleTrace(recs, 1, -1); err == nil {
		t.Error("negative size factor accepted")
	}
	// Originals untouched.
	if recs[0].At != 1000 {
		t.Error("input mutated")
	}
}

func TestRemapHosts(t *testing.T) {
	recs := []Record{
		{At: 1, Src: 100, Dst: 200, Size: 10},
		{At: 2, Src: 100, Dst: 300, Size: 10},
		{At: 3, Src: 200, Dst: 100, Size: 10},
	}
	out, err := RemapHosts(recs, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range out {
		if r.Src < 0 || r.Src >= 8 || r.Dst < 0 || r.Dst >= 8 {
			t.Fatalf("record %d out of host range: %+v", i, r)
		}
		if r.Src == r.Dst {
			t.Fatalf("record %d self-directed", i)
		}
	}
	// Consistent mapping: the same original host maps identically.
	if out[0].Src != out[1].Src {
		t.Error("host 100 mapped inconsistently")
	}
	if _, err := RemapHosts(recs, 1, 1); err == nil {
		t.Error("n=1 accepted")
	}
	// Deterministic for a fixed seed.
	again, _ := RemapHosts(recs, 8, 1)
	for i := range out {
		if out[i] != again[i] {
			t.Fatal("remap not deterministic")
		}
	}
}

func TestTornado(t *testing.T) {
	w := &Tornado{MsgBytes: 8192, Load: 0.1, LineRate: link.Rate40G, Seed: 2}
	if w.Name() != "Tornado" || w.AvgUtil() != 0.1 {
		t.Fatal("identity")
	}
	recs := Capture(w, 16, 5*sim.Millisecond)
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	for _, r := range recs {
		want := (r.Src + 8) % 16
		if r.Dst != want {
			t.Fatalf("src %d sent to %d, want %d", r.Src, r.Dst, want)
		}
	}
	st := Stats(recs, 16, float64(link.Rate40G), 5*sim.Millisecond)
	if st.MeanUtil < 0.08 || st.MeanUtil > 0.12 {
		t.Errorf("tornado util = %v, want ~0.1", st.MeanUtil)
	}
}
