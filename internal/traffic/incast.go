package traffic

import (
	"math/rand"

	"epnet/internal/link"
	"epnet/internal/sim"
)

// Incast generates synchronized fan-in bursts — the classic datacenter
// incast pattern (partition/aggregate request fan-out whose responses
// collide at the aggregator). Every burst picks one random victim
// destination and Fanin random sources, each of which sends MsgBytes
// to it simultaneously; bursts arrive with exponentially distributed
// gaps sized so the victim's ingress averages Load of line rate.
//
// The victim changes every burst, so over time the pattern stresses
// every link's ability to reactivate quickly: an energy-proportional
// fabric that detuned the victim's links during the lull pays the
// reactivation penalty exactly when the burst lands.
type Incast struct {
	MsgBytes int
	// Fanin is the number of simultaneous senders per burst (clamped
	// to the host count).
	Fanin int
	// Load is the victim's mean ingress utilization: burst gaps are
	// sized so Fanin*MsgBytes arrives per Load-scaled line-rate
	// interval.
	Load     float64
	LineRate link.Rate
	Seed     int64
}

// Name implements Workload.
func (p *Incast) Name() string { return "Incast" }

// AvgUtil implements Workload. Load here is the hot receiver's
// utilization, not the cluster mean — the cluster mean is Load/n.
func (p *Incast) AvgUtil() float64 { return p.Load }

// Start implements Workload.
func (p *Incast) Start(e *sim.Engine, tgt Target, horizon sim.Time) {
	n := tgt.NumHosts()
	fanin := p.Fanin
	if fanin < 1 {
		fanin = 1
	}
	if fanin > n-1 {
		fanin = n - 1
	}
	meanGapSec := float64(p.MsgBytes*fanin*8) / (p.Load * float64(p.LineRate))
	rng := rand.New(rand.NewSource(p.Seed))
	var burst func(now sim.Time)
	burst = func(now sim.Time) {
		if now > horizon {
			return
		}
		dst := rng.Intn(n)
		for i := 0; i < fanin; i++ {
			src := rng.Intn(n)
			if src == dst {
				src = (src + 1) % n
			}
			tgt.InjectMessage(src, dst, p.MsgBytes)
		}
		gap := sim.Time(rng.ExpFloat64() * meanGapSec * float64(sim.Second))
		if gap < sim.Nanosecond {
			gap = sim.Nanosecond
		}
		e.After(gap, burst)
	}
	// Random start phase, like every other generator.
	e.After(sim.Time(rng.Int63n(int64(meanGapSec*float64(sim.Second))+1)), burst)
}
