package traffic

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"epnet/internal/sim"
)

// Record is one message injection in a recorded trace.
type Record struct {
	At   sim.Time
	Src  int
	Dst  int
	Size int
}

// traceMagic identifies the binary trace format (version 1).
var traceMagic = [8]byte{'E', 'P', 'T', 'R', 'A', 'C', 'E', '1'}

// WriteTrace serializes records to w in the binary trace format:
// an 8-byte magic, a uint64 record count, then fixed 32-byte records
// (int64 time, int64 src, int64 dst, int64 size), all little-endian.
func WriteTrace(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(recs))); err != nil {
		return err
	}
	for _, r := range recs {
		if err := binary.Write(bw, binary.LittleEndian,
			[4]int64{int64(r.At), int64(r.Src), int64(r.Dst), int64(r.Size)}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a binary trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("traffic: reading trace magic: %w", err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("traffic: not an EPTRACE1 file (magic %q)", magic[:])
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("traffic: reading trace count: %w", err)
	}
	const maxRecords = 1 << 30
	if count > maxRecords {
		return nil, fmt.Errorf("traffic: implausible record count %d", count)
	}
	recs := make([]Record, 0, count)
	for i := uint64(0); i < count; i++ {
		var f [4]int64
		if err := binary.Read(br, binary.LittleEndian, &f); err != nil {
			return nil, fmt.Errorf("traffic: reading record %d: %w", i, err)
		}
		if f[0] < 0 || f[1] < 0 || f[2] < 0 || f[3] <= 0 {
			return nil, fmt.Errorf("traffic: invalid record %d: %v", i, f)
		}
		recs = append(recs, Record{
			At: sim.Time(f[0]), Src: int(f[1]), Dst: int(f[2]), Size: int(f[3]),
		})
	}
	return recs, nil
}

// Replay injects a recorded trace.
type Replay struct {
	Label   string
	Records []Record
	// Util documents the trace's average utilization for reports
	// (computed by Capture, or set by the caller).
	Util float64
}

// Name implements Workload.
func (p *Replay) Name() string { return p.Label }

// AvgUtil implements Workload.
func (p *Replay) AvgUtil() float64 { return p.Util }

// Start implements Workload. Records beyond the horizon are skipped.
func (p *Replay) Start(e *sim.Engine, tgt Target, horizon sim.Time) {
	n := tgt.NumHosts()
	for _, r := range p.Records {
		r := r
		if r.At > horizon {
			continue
		}
		if r.Src >= n || r.Dst >= n {
			panic(fmt.Sprintf("traffic: trace record %v exceeds %d hosts", r, n))
		}
		e.At(r.At, func(sim.Time) { tgt.InjectMessage(r.Src, r.Dst, r.Size) })
	}
}

// recorder is a Target that captures injections instead of simulating
// them.
type recorder struct {
	hosts int
	e     *sim.Engine
	out   []Record
}

func (r *recorder) NumHosts() int { return r.hosts }
func (r *recorder) InjectMessage(src, dst, size int) {
	r.out = append(r.out, Record{At: r.e.Now(), Src: src, Dst: dst, Size: size})
}

// Capture runs workload w standalone (no network) for the given horizon
// and returns its injections as a trace, sorted by time. Use it to
// freeze a synthetic workload into a replayable artifact.
func Capture(w Workload, hosts int, horizon sim.Time) []Record {
	e := sim.New()
	rec := &recorder{hosts: hosts, e: e}
	w.Start(e, rec, horizon)
	e.RunUntil(horizon)
	sort.SliceStable(rec.out, func(i, j int) bool { return rec.out[i].At < rec.out[j].At })
	return rec.out
}

// ScaleTrace returns a copy of recs with injection times divided by
// speedup and message sizes multiplied by sizeFactor. The paper's
// evaluation does exactly this to its production traces: "the later two
// workloads have been significantly scaled up from the original traces"
// to model future applications on a high-performance network. Scaled
// sizes are clamped to at least one byte; speedup and sizeFactor must
// be positive.
func ScaleTrace(recs []Record, speedup, sizeFactor float64) ([]Record, error) {
	if speedup <= 0 || sizeFactor <= 0 {
		return nil, fmt.Errorf("traffic: scale factors must be positive (speedup=%v size=%v)",
			speedup, sizeFactor)
	}
	out := make([]Record, len(recs))
	for i, r := range recs {
		size := int(float64(r.Size) * sizeFactor)
		if size < 1 {
			size = 1
		}
		out[i] = Record{
			At:   sim.Time(float64(r.At) / speedup),
			Src:  r.Src,
			Dst:  r.Dst,
			Size: size,
		}
	}
	return out, nil
}

// RemapHosts returns a copy of recs with every source and destination
// remapped uniformly at random onto n hosts, preserving distinctness of
// each record's endpoints — the paper's "application placement has been
// randomized across the cluster" step applied at replay time.
func RemapHosts(recs []Record, n int, seed int64) ([]Record, error) {
	if n < 2 {
		return nil, fmt.Errorf("traffic: need at least 2 hosts, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	mapping := map[int]int{}
	assign := func(h int) int {
		if m, ok := mapping[h]; ok {
			return m
		}
		m := rng.Intn(n)
		mapping[h] = m
		return m
	}
	out := make([]Record, len(recs))
	for i, r := range recs {
		src := assign(r.Src)
		dst := assign(r.Dst)
		if dst == src {
			dst = (dst + 1) % n
		}
		out[i] = Record{At: r.At, Src: src, Dst: dst, Size: r.Size}
	}
	return out, nil
}

// TraceStats summarizes a trace for reports and calibration checks.
type TraceStats struct {
	Messages   int
	Bytes      int64
	Horizon    sim.Time
	MeanUtil   float64 // vs hosts * lineRate over the horizon
	MaxMsgSize int
}

// Stats computes summary statistics for a trace over the given host
// count, line rate (bits/s) and horizon.
func Stats(recs []Record, hosts int, lineRateBps float64, horizon sim.Time) TraceStats {
	s := TraceStats{Messages: len(recs), Horizon: horizon}
	for _, r := range recs {
		s.Bytes += int64(r.Size)
		if r.Size > s.MaxMsgSize {
			s.MaxMsgSize = r.Size
		}
	}
	if horizon > 0 && hosts > 0 && lineRateBps > 0 {
		s.MeanUtil = float64(s.Bytes) * 8 / (lineRateBps * float64(hosts) * horizon.Seconds())
	}
	return s
}

// BurstinessIndex measures multi-timescale burstiness of a trace: the
// mean over several window sizes of the coefficient of variation of
// per-window byte counts. Smooth (CBR-like) traffic scores near 0;
// Poisson traffic scores low; heavy-tailed ON/OFF traffic scores well
// above 1 across windows — the property the paper's traces exhibit.
func BurstinessIndex(recs []Record, horizon sim.Time, windows []sim.Time) float64 {
	if len(recs) == 0 || horizon <= 0 || len(windows) == 0 {
		return 0
	}
	var acc float64
	used := 0
	for _, w := range windows {
		if w <= 0 || w > horizon {
			continue
		}
		n := int(horizon / w)
		if n < 2 {
			continue
		}
		bins := make([]float64, n)
		for _, r := range recs {
			i := int(r.At / w)
			if i >= n {
				i = n - 1
			}
			bins[i] += float64(r.Size)
		}
		var mean float64
		for _, b := range bins {
			mean += b
		}
		mean /= float64(n)
		if mean == 0 {
			continue
		}
		var varsum float64
		for _, b := range bins {
			d := b - mean
			varsum += d * d
		}
		cv := math.Sqrt(varsum/float64(n)) / mean
		acc += cv
		used++
	}
	if used == 0 {
		return 0
	}
	return acc / float64(used)
}
