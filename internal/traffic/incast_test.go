package traffic

import (
	"testing"

	"epnet/internal/link"
	"epnet/internal/sim"
)

// sink records injections for the generator tests.
type sink struct {
	e     *sim.Engine
	hosts int
	msgs  []struct{ src, dst, size int }
}

func (s *sink) NumHosts() int { return s.hosts }
func (s *sink) InjectMessage(src, dst, size int) {
	s.msgs = append(s.msgs, struct{ src, dst, size int }{src, dst, size})
}

func runGen(t *testing.T, w Workload, hosts int, horizon sim.Time) *sink {
	t.Helper()
	e := sim.New()
	s := &sink{e: e, hosts: hosts}
	w.Start(e, s, horizon)
	e.Run()
	if len(s.msgs) == 0 {
		t.Fatalf("%s injected nothing in %v", w.Name(), horizon)
	}
	return s
}

// TestIncastFanin checks the signature pattern: bursts of Fanin
// messages converging on one destination, never self-addressed.
func TestIncastFanin(t *testing.T) {
	w := &Incast{MsgBytes: 4096, Fanin: 8, Load: 0.3, LineRate: link.Rate40G, Seed: 3}
	s := runGen(t, w, 32, 500*sim.Microsecond)
	if w.AvgUtil() != 0.3 {
		t.Errorf("AvgUtil = %v, want the configured load", w.AvgUtil())
	}
	if len(s.msgs)%8 != 0 {
		t.Fatalf("%d messages is not a whole number of fanin-8 bursts", len(s.msgs))
	}
	for i := 0; i < len(s.msgs); i += 8 {
		dst := s.msgs[i].dst
		for _, m := range s.msgs[i : i+8] {
			if m.dst != dst {
				t.Fatalf("burst at %d fans into %d and %d", i, dst, m.dst)
			}
			if m.src == m.dst {
				t.Fatal("self-addressed incast flow")
			}
			if m.size != 4096 {
				t.Fatalf("message size %d, want 4096", m.size)
			}
		}
	}
	// The victim must rotate: a single hot destination would be Hotspot.
	dsts := map[int]bool{}
	for i := 0; i < len(s.msgs); i += 8 {
		dsts[s.msgs[i].dst] = true
	}
	if len(dsts) < 2 {
		t.Error("incast victim never rotated")
	}
}

// TestIncastFaninClamped keeps tiny networks safe: fan-in wider than
// the host count minus the victim clamps rather than self-sending.
func TestIncastFaninClamped(t *testing.T) {
	w := &Incast{MsgBytes: 1024, Fanin: 64, Load: 0.3, LineRate: link.Rate40G, Seed: 1}
	s := runGen(t, w, 4, 200*sim.Microsecond)
	for _, m := range s.msgs {
		if m.src == m.dst {
			t.Fatal("self-addressed flow on a clamped fan-in")
		}
	}
	if len(s.msgs)%3 != 0 {
		t.Errorf("%d messages: fan-in did not clamp to hosts-1=3", len(s.msgs))
	}
}

// TestMigrationStreams checks the bulk-transfer pattern: each stream
// sends TotalBytes/ChunkBytes chunks along one (src, dst) pair before
// re-picking, and chunks never self-address.
func TestMigrationStreams(t *testing.T) {
	w := &Migration{TotalBytes: 64 * 1024, ChunkBytes: 16 * 1024, Streams: 1,
		Load: 0.4, LineRate: link.Rate40G, Seed: 5}
	s := runGen(t, w, 16, 2000*sim.Microsecond)
	if w.AvgUtil() != 0.4 {
		t.Errorf("AvgUtil = %v, want the configured load", w.AvgUtil())
	}
	// One stream: chunks arrive in runs of 4 (64k/16k) per pair.
	const run = 4
	if len(s.msgs) < run {
		t.Fatalf("only %d chunks", len(s.msgs))
	}
	for i := 0; i+run <= len(s.msgs); i += run {
		first := s.msgs[i]
		for _, m := range s.msgs[i : i+run] {
			if m.src != first.src || m.dst != first.dst {
				t.Fatalf("chunk run at %d switches pairs mid-transfer", i)
			}
			if m.src == m.dst {
				t.Fatal("self-addressed migration")
			}
			if m.size != 16*1024 {
				t.Fatalf("chunk size %d", m.size)
			}
		}
	}
	pairs := map[[2]int]bool{}
	for _, m := range s.msgs {
		pairs[[2]int{m.src, m.dst}] = true
	}
	if len(pairs) < 2 {
		t.Error("migration never moved to a second pair")
	}
}

// TestGeneratorsDeterministic re-runs both generators from the same
// seed and expects identical injection sequences; a different seed must
// diverge.
func TestGeneratorsDeterministic(t *testing.T) {
	gen := func(seed int64) []struct{ src, dst, size int } {
		w := &Incast{MsgBytes: 2048, Fanin: 4, Load: 0.2, LineRate: link.Rate40G, Seed: seed}
		return runGen(t, w, 16, 300*sim.Microsecond).msgs
	}
	a, b, c := gen(9), gen(9), gen(10)
	if len(a) != len(b) {
		t.Fatalf("same seed, %d vs %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at message %d", i)
		}
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traffic")
	}
}
