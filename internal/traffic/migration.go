package traffic

import (
	"math/rand"

	"epnet/internal/link"
	"epnet/internal/sim"
)

// Migration models a migration storm: Streams concurrent point-to-point
// bulk transfers (VM images, shard rebalancing), each moving TotalBytes
// from a random source to a random destination in ChunkBytes messages
// paced at Load of line rate. When a transfer completes, the stream
// immediately picks a fresh random (src, dst) pair and starts the next
// one, so the storm persists until the horizon.
//
// Unlike Uniform's short flows, each active transfer keeps one path hot
// for a long stretch while the rest of the fabric idles — the sustained
// elephant-flow case for per-link rate tuning.
type Migration struct {
	// TotalBytes is the per-transfer size; ChunkBytes the message size
	// it is cut into.
	TotalBytes int
	ChunkBytes int
	// Streams is the number of concurrent transfers (0 = one per 8
	// hosts, minimum 1).
	Streams int
	// Load is each stream's egress utilization while transferring.
	Load     float64
	LineRate link.Rate
	Seed     int64
}

// Name implements Workload.
func (m *Migration) Name() string { return "Migration" }

// AvgUtil implements Workload. Load is per active stream; the cluster
// mean is Streams*Load/n.
func (m *Migration) AvgUtil() float64 { return m.Load }

// Start implements Workload.
func (m *Migration) Start(e *sim.Engine, tgt Target, horizon sim.Time) {
	n := tgt.NumHosts()
	streams := m.Streams
	if streams <= 0 {
		streams = n / 8
	}
	if streams < 1 {
		streams = 1
	}
	chunks := (m.TotalBytes + m.ChunkBytes - 1) / m.ChunkBytes
	if chunks < 1 {
		chunks = 1
	}
	meanGapSec := float64(m.ChunkBytes*8) / (m.Load * float64(m.LineRate))
	for s := 0; s < streams; s++ {
		srng := rand.New(rand.NewSource(m.Seed ^ int64(s)*0x2545F4914F6CDD1D))
		var src, dst, left int
		pick := func() {
			src = srng.Intn(n)
			dst = srng.Intn(n)
			if dst == src {
				dst = (dst + 1) % n
			}
			left = chunks
		}
		pick()
		var send func(now sim.Time)
		send = func(now sim.Time) {
			if now > horizon {
				return
			}
			tgt.InjectMessage(src, dst, m.ChunkBytes)
			if left--; left == 0 {
				pick()
			}
			gap := sim.Time(srng.ExpFloat64() * meanGapSec * float64(sim.Second))
			if gap < sim.Nanosecond {
				gap = sim.Nanosecond
			}
			e.After(gap, send)
		}
		e.After(sim.Time(srng.Int63n(int64(meanGapSec*float64(sim.Second))+1)), send)
	}
}
