package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"epnet/internal/sim"
)

func TestCounterVecSeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("link.tx_pkts", "link")
	a, err := v.With("s0p1-s1p0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := v.With("s1p0-s0p1")
	if err != nil {
		t.Fatal(err)
	}
	a.Inc()
	a.Inc()
	b.Add(5)
	names := r.Names()
	want := []string{"link.tx_pkts{link=s0p1-s1p0}", "link.tx_pkts{link=s1p0-s0p1}"}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Errorf("Names = %v, want %v", names, want)
	}
	vals := make([]float64, r.Len())
	r.ReadInto(vals)
	if vals[0] != 2 || vals[1] != 5 {
		t.Errorf("ReadInto = %v, want [2 5]", vals)
	}
	// Re-resolving the same value tuple is a collision, like any
	// duplicate registration.
	if _, err := v.With("s0p1-s1p0"); err == nil {
		t.Error("duplicate series accepted")
	}
	// Arity mismatches are rejected before touching the registry.
	if _, err := v.With("a", "b"); err == nil {
		t.Error("wrong label arity accepted")
	}
	if r.Len() != 2 {
		t.Errorf("failed resolutions mutated the registry: Len = %d", r.Len())
	}
}

func TestGaugeVecSeries(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("switch.queue_bytes", "sw", "port")
	g, err := v.With("0", "4")
	if err != nil {
		t.Fatal(err)
	}
	g.Set(1500)
	if err := v.WithFunc(func() float64 { return 7 }, "0", "5"); err != nil {
		t.Fatal(err)
	}
	names := r.Names()
	if names[0] != "switch.queue_bytes{sw=0;port=4}" {
		t.Errorf("identity = %q", names[0])
	}
	vals := make([]float64, r.Len())
	r.ReadInto(vals)
	if vals[0] != 1500 || vals[1] != 7 {
		t.Errorf("ReadInto = %v", vals)
	}
}

// Labeled identities must stay CSV-safe: reserved characters in keys or
// values are rejected at registration, not written into headers.
func TestLabelValidation(t *testing.T) {
	r := NewRegistry()
	bad := []Label{
		{Key: "", Value: "x"},
		{Key: "a,b", Value: "x"},
		{Key: "k", Value: "a;b"},
		{Key: "k", Value: "a=b"},
		{Key: "k", Value: "a\nb"},
		{Key: "k", Value: `a"b`},
		{Key: "k{", Value: "x"},
	}
	for _, l := range bad {
		if err := r.register("m", []Label{l}, kindGauge, func() float64 { return 0 }); err == nil {
			t.Errorf("label %q=%q accepted", l.Key, l.Value)
		}
	}
	if r.Len() != 0 {
		t.Errorf("rejected labels mutated the registry: Len = %d", r.Len())
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h, err := r.Histogram("net.latency_us", []float64{1, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	uppers, counts := h.Buckets()
	if len(uppers) != 3 || len(counts) != 4 {
		t.Fatalf("buckets %v / %v", uppers, counts)
	}
	// 0.5 and 1 land in le=1 (upper bounds are inclusive), 3 in le=5,
	// 7 in le=10, 100 overflows.
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 1 || counts[3] != 1 {
		t.Errorf("counts = %v, want [2 1 1 1]", counts)
	}
	if h.Count() != 5 || h.Sum() != 111.5 {
		t.Errorf("count/sum = %d/%v", h.Count(), h.Sum())
	}
	// The scalar .count/.sum series feed the periodic sampler.
	names := r.Names()
	if names[0] != "net.latency_us.count" || names[1] != "net.latency_us.sum" {
		t.Errorf("scalar series = %v", names)
	}
	vals := make([]float64, r.Len())
	r.ReadInto(vals)
	if vals[0] != 5 || vals[1] != 111.5 {
		t.Errorf("sampled scalars = %v", vals)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Error("empty buckets accepted")
	}
	if _, err := NewHistogram([]float64{5, 1}); err == nil {
		t.Error("descending buckets accepted")
	}
	var h *Histogram
	h.Observe(3) // nil-safe
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram should read zero")
	}
}

func TestHistogramZeroAllocObserve(t *testing.T) {
	h, err := NewHistogram([]float64{1, 2, 5, 10, 20, 50})
	if err != nil {
		t.Fatal(err)
	}
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(3.5)
		h.Observe(1000)
		nilH.Observe(1)
	}); n != 0 {
		t.Errorf("Observe allocates %v allocs/op, want 0", n)
	}
}

func TestHistogramCSV(t *testing.T) {
	h, err := NewHistogram([]float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(0.75)
	h.Observe(2)
	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "le,count,cum_count,cum_fraction\n" +
		"0.5,1,1,0.25\n" +
		"1,2,3,0.75\n" +
		"+Inf,1,4,1\n"
	if buf.String() != want {
		t.Errorf("CSV =\n%s\nwant\n%s", buf.String(), want)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c, _ := r.Counter("net.delivered_pkts")
	c.Add(12)
	v := r.CounterVec("link.tx_pkts", "link")
	a, _ := v.With("s0p1-s1p0")
	a.Add(3)
	// Interleave another family's registration: the renderer must still
	// group link.tx_pkts series contiguously under one TYPE line.
	if err := r.GaugeFunc("net.backlog_bytes", func() float64 { return 42 }); err != nil {
		t.Fatal(err)
	}
	b, _ := v.With("s1p0-s0p1")
	b.Add(4)
	h, err := r.Histogram("net.latency_us", []float64{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "# TYPE net_delivered_pkts counter\n" +
		"net_delivered_pkts 12\n" +
		"# TYPE link_tx_pkts counter\n" +
		"link_tx_pkts{link=\"s0p1-s1p0\"} 3\n" +
		"link_tx_pkts{link=\"s1p0-s0p1\"} 4\n" +
		"# TYPE net_backlog_bytes gauge\n" +
		"net_backlog_bytes 42\n" +
		"# TYPE net_latency_us histogram\n" +
		"net_latency_us_bucket{le=\"1\"} 1\n" +
		"net_latency_us_bucket{le=\"10\"} 2\n" +
		"net_latency_us_bucket{le=\"+Inf\"} 3\n" +
		"net_latency_us_sum 105.5\n" +
		"net_latency_us_count 3\n"
	if got != want {
		t.Errorf("WritePrometheus =\n%s\nwant\n%s", got, want)
	}
	// The histogram's scalar sampler parts must not leak into the scrape
	// as separate gauges.
	if strings.Contains(got, "latency_us.count") || strings.Contains(got, "net_latency_us.sum") {
		t.Errorf("histogram scalar parts leaked into scrape:\n%s", got)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"link.rate_gbps":        "link_rate_gbps",
		"power.ideal-prop":      "power_ideal_prop",
		"0starts.with.digit":    "_starts_with_digit",
		"ok_name:with_colon":    "ok_name:with_colon",
		"routing.dim.0.mode":    "routing_dim_0_mode",
		"switch.port_queue a b": "switch_port_queue_a_b",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// A synthetic busy-time reader: busy advances at a configurable
// fraction of wall time between samples.
func TestHeatmapCells(t *testing.T) {
	e := sim.New()
	h, err := NewHeatmap(10 * sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 is busy 50% of the time; row 1 is fully busy.
	h.AddRow("half", func(now sim.Time) sim.Time { return now / 2 })
	h.AddRow("full", func(now sim.Time) sim.Time { return now })
	const horizon = 25 * sim.Microsecond
	h.Start(e, horizon)
	e.RunUntil(horizon)
	h.Finish(e.Now())

	if h.Rows() != 2 {
		t.Fatalf("rows = %d", h.Rows())
	}
	// Columns at 10us, 20us, plus the partial one Finish adds at 25us.
	if h.Cols() != 3 {
		t.Fatalf("cols = %d", h.Cols())
	}
	for j := 0; j < h.Cols(); j++ {
		if got := h.Cell(0, j); got != 0.5 {
			t.Errorf("cell(0,%d) = %v, want 0.5", j, got)
		}
		if got := h.Cell(1, j); got != 1 {
			t.Errorf("cell(1,%d) = %v, want 1", j, got)
		}
	}

	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "link,10,20,25\n" +
		"half,0.5,0.5,0.5\n" +
		"full,1,1,1\n"
	if buf.String() != want {
		t.Errorf("heatmap CSV =\n%s\nwant\n%s", buf.String(), want)
	}

	hist, err := h.UtilizationHistogram([]float64{0.25, 0.5, 0.75, 1})
	if err != nil {
		t.Fatal(err)
	}
	_, counts := hist.Buckets()
	// Three 0.5 cells land in le=0.5, three 1.0 cells in le=1.
	if counts[1] != 3 || counts[3] != 3 || hist.Count() != 6 {
		t.Errorf("utilization histogram counts = %v", counts)
	}
}

func TestHeatmapRejectsBadInterval(t *testing.T) {
	if _, err := NewHeatmap(0); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewHeatmap(-sim.Microsecond); err == nil {
		t.Error("negative interval accepted")
	}
}

// TestSamplerBoundaryRow pins the documented boundary guarantee: when
// the horizon is an integer multiple of the interval, the series
// includes a row at exactly the horizon (the tick at `until` fires
// before the engine stops), and Finish does not duplicate it.
func TestSamplerBoundaryRow(t *testing.T) {
	e := sim.New()
	r := NewRegistry()
	if err := r.GaugeFunc("sim.now_us", func() float64 { return e.Now().Microseconds() }); err != nil {
		t.Fatal(err)
	}
	const interval = 10 * sim.Microsecond
	const horizon = 20 * sim.Microsecond // exact multiple of interval
	s, err := NewSampler(r, interval)
	if err != nil {
		t.Fatal(err)
	}
	s.Start(e, horizon)
	e.RunUntil(horizon)
	s.Finish(e.Now())

	want := []sim.Time{0, 10 * sim.Microsecond, horizon}
	times := s.Times()
	if len(times) != len(want) {
		t.Fatalf("samples = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("sample %d at %v, want %v", i, times[i], want[i])
		}
	}
	if got := s.Row(len(times) - 1)[0]; got != horizon.Microseconds() {
		t.Errorf("boundary row sampled at %v us, want %v", got, horizon.Microseconds())
	}
}

// The heatmap shares the sampler's boundary behavior: a horizon on the
// tick grid produces a final column at exactly the horizon.
func TestHeatmapBoundaryColumn(t *testing.T) {
	e := sim.New()
	h, err := NewHeatmap(10 * sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	h.AddRow("r", func(now sim.Time) sim.Time { return now })
	const horizon = 30 * sim.Microsecond
	h.Start(e, horizon)
	e.RunUntil(horizon)
	h.Finish(e.Now())
	if h.Cols() != 3 {
		t.Fatalf("cols = %d, want 3 (10, 20, 30us)", h.Cols())
	}
}

func TestSamplerOnSampleHook(t *testing.T) {
	e := sim.New()
	r := NewRegistry()
	if _, err := r.Counter("c"); err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(r, 10*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	var at []sim.Time
	s.OnSample = func(now sim.Time) { at = append(at, now) }
	s.Start(e, 20*sim.Microsecond)
	e.RunUntil(20 * sim.Microsecond)
	s.Finish(e.Now())
	if len(at) != 3 || at[0] != 0 || at[2] != 20*sim.Microsecond {
		t.Errorf("OnSample fired at %v, want [0 10us 20us]", at)
	}
}

// TestWritePrometheusLabelEscaping pins the two halves of label-value
// safety: backslashes — which registration admits — must reach the
// scrape escaped as \\, and quotes/newlines must be rejected at the
// registration gate, because raw they would corrupt every series that
// follows in the exposition.
func TestWritePrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("trace.file_pkts", "path")
	c, err := v.With(`C:\traces\run1`)
	if err != nil {
		t.Fatal(err)
	}
	c.Add(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE trace_file_pkts counter\n" +
		"trace_file_pkts{path=\"C:\\\\traces\\\\run1\"} 1\n"
	if buf.String() != want {
		t.Errorf("WritePrometheus =\n%q\nwant\n%q", buf.String(), want)
	}
	for _, bad := range []string{"say \"hi\"", "line\nbreak"} {
		if _, err := v.With(bad); err == nil {
			t.Errorf("label value %q accepted; it would corrupt the scrape", bad)
		}
	}
}

// TestWritePrometheusHistogramBounds pins bucket-edge semantics: an
// observation exactly on an upper bound counts into that bucket (le is
// inclusive), overflow lands only in +Inf, and the cumulative +Inf
// count equals the total observation count.
func TestWritePrometheusHistogramBounds(t *testing.T) {
	r := NewRegistry()
	h, err := r.Histogram("lat.us", []float64{1, 10}, Label{Key: "class", Value: "hi"})
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(1)    // exactly on the first bound
	h.Observe(10)   // exactly on the last finite bound
	h.Observe(10.5) // past every finite bound
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE lat_us histogram\n" +
		"lat_us_bucket{class=\"hi\",le=\"1\"} 1\n" +
		"lat_us_bucket{class=\"hi\",le=\"10\"} 2\n" +
		"lat_us_bucket{class=\"hi\",le=\"+Inf\"} 3\n" +
		"lat_us_sum{class=\"hi\"} 21.5\n" +
		"lat_us_count{class=\"hi\"} 3\n"
	if buf.String() != want {
		t.Errorf("WritePrometheus =\n%s\nwant\n%s", buf.String(), want)
	}
}
