package telemetry

import "time"

// This file turns the telemetry layer inward: EngineProfiler observes
// the simulation engine itself — wall-clock time per shard window,
// barrier waits, granted-vs-used window width, cross-shard exchange
// volume — instead of the simulated network. It exists to answer one
// question for every future performance PR: when the multi-core scaling
// curve disappoints, *which* cost is to blame (laggard shards, barrier
// frequency, narrow windows, exchange volume, control-plane time)?
//
// Design constraints, in order:
//
//  1. The deterministic simulation must not notice the profiler. Every
//     hook runs at window barriers or around whole windows — never per
//     packet or per event — and the profiler registers nothing with the
//     metric registry, so Result, sampled CSVs, and attribution stay
//     byte-identical with profiling on or off.
//  2. Zero allocations while the simulation runs. All per-shard and
//     per-pair aggregates are pre-sized at construction; the per-round
//     feed writes into them in place. Snapshot (barrier/end-of-run
//     only) is the one allocating call.
//  3. Single-goroutine writes. The shard coordinator owns every mutating
//     call; shard workers never touch the profiler (their per-window
//     numbers ride on shard-owned fields and are folded in after the
//     barrier). Snapshot may only be called from the same goroutine —
//     in practice the control plane at quiescent instants, or after the
//     run returns.
type EngineProfiler struct {
	nshards int

	// Whole-run aggregates.
	rounds     int64
	wallNs     int64 // wall time inside Run* calls (live part via runStart)
	critNs     int64 // sum over rounds of the slowest busy window
	drainNs    int64 // staged-exchange drain time at barriers
	ctrlNs     int64 // control-plane slices between rounds
	ctrlEvents uint64

	// Per-shard aggregates, indexed by shard ID.
	busyNs     []int64 // wall time executing own windows
	waitNs     []int64 // busy rounds: laggard's wall minus own
	idleNs     []int64 // rounds fast-forwarded with no work
	events     []uint64
	busyRounds []int64
	ffRounds   []int64
	laggard    []int64 // rounds this shard was the slowest busy window
	grantedPs  []int64 // simulated window width granted (busy rounds)
	usedPs     []int64 // simulated advance up to the last executed event
	ffPs       []int64 // simulated advance taken analytically
	peakPend   []int64 // event-queue depth high-water mark at barriers

	// Cross-shard exchange, flattened [src*nshards+dst].
	exchEvents []int64
	exchBytes  []int64

	// Partition quality, from the shard group at attach time.
	cutCross int
	cutTotal int
	laMinPs  int64
	laMaxPs  int64

	// Per-round scratch: wall ns of each busy shard's window, -1 = idle.
	rdur []int64

	// Live-run marker so mid-run snapshots (the /profile endpoint) see
	// wall time accrued by the Run* call still in flight.
	running  bool
	runStart time.Time
}

// NewEngineProfiler returns a profiler for a simulation with nshards
// data-plane shards (1 for a serial engine). All per-shard storage is
// allocated here; the per-round feed never allocates.
func NewEngineProfiler(nshards int) *EngineProfiler {
	if nshards < 1 {
		nshards = 1
	}
	return &EngineProfiler{
		nshards:    nshards,
		busyNs:     make([]int64, nshards),
		waitNs:     make([]int64, nshards),
		idleNs:     make([]int64, nshards),
		events:     make([]uint64, nshards),
		busyRounds: make([]int64, nshards),
		ffRounds:   make([]int64, nshards),
		laggard:    make([]int64, nshards),
		grantedPs:  make([]int64, nshards),
		usedPs:     make([]int64, nshards),
		ffPs:       make([]int64, nshards),
		peakPend:   make([]int64, nshards),
		exchEvents: make([]int64, nshards*nshards),
		exchBytes:  make([]int64, nshards*nshards),
		rdur:       make([]int64, nshards),
	}
}

// NumShards returns the shard count the profiler was sized for.
func (p *EngineProfiler) NumShards() int { return p.nshards }

// SetPartition records the partition's cut quality (directed
// inter-switch channels crossing a shard boundary, out of the total)
// and the finite off-diagonal range of the lookahead matrix, both in
// picoseconds.
func (p *EngineProfiler) SetPartition(cross, total int, laMinPs, laMaxPs int64) {
	p.cutCross, p.cutTotal = cross, total
	p.laMinPs, p.laMaxPs = laMinPs, laMaxPs
}

// RunStarted marks the beginning of a coordinator Run* call so mid-run
// snapshots count its elapsed wall time; RunStopped folds it in.
func (p *EngineProfiler) RunStarted() {
	p.running = true
	p.runStart = time.Now()
}

// RunStopped ends the span opened by RunStarted.
func (p *EngineProfiler) RunStopped() {
	if p.running {
		p.wallNs += time.Since(p.runStart).Nanoseconds()
		p.running = false
	}
}

// AddCtrl accrues one control-plane slice: wall time and events
// executed by the control engine between rounds.
func (p *EngineProfiler) AddCtrl(ns int64, events uint64) {
	p.ctrlNs += ns
	p.ctrlEvents += events
}

// AddDrain accrues one barrier's staged-exchange drain time.
func (p *EngineProfiler) AddDrain(ns int64) { p.drainNs += ns }

// AddSerial accrues one serial-engine run slice: with a single engine
// there are no rounds or barriers, so the whole slice is busy time and
// critical path on shard 0 (control and data plane share the engine
// and are indistinguishable here). Wall time is accrued separately by
// the surrounding RunStarted/RunStopped span.
func (p *EngineProfiler) AddSerial(ns int64, events uint64) {
	p.busyNs[0] += ns
	p.critNs += ns
	p.events[0] += events
}

// BeginRound resets the per-round scratch. One BeginRound /
// ShardBusy|ShardFastForward* / EndRound cycle per coordinator round.
func (p *EngineProfiler) BeginRound() {
	for i := range p.rdur {
		p.rdur[i] = -1
	}
}

// ShardBusy records one executed window: the simulated width granted
// and used (picoseconds), the wall time the window took, and the
// events it executed.
func (p *EngineProfiler) ShardBusy(shard int, grantedPs, usedPs, wallNs int64, events uint64) {
	p.rdur[shard] = wallNs
	p.busyNs[shard] += wallNs
	p.busyRounds[shard]++
	p.grantedPs[shard] += grantedPs
	p.usedPs[shard] += usedPs
	p.events[shard] += events
}

// ShardFastForward records a round in which the shard had no work below
// its horizon and jumped its clock analytically.
func (p *EngineProfiler) ShardFastForward(shard int, advancePs int64) {
	p.ffRounds[shard]++
	p.ffPs[shard] += advancePs
}

// EndRound closes one round: it identifies the laggard (the slowest
// busy window — the shard that set the barrier), charges every other
// busy shard the difference as barrier wait, charges fast-forwarded
// shards the whole round as idle, and extends the critical path.
func (p *EngineProfiler) EndRound() {
	p.rounds++
	max, arg := int64(-1), -1
	for i, d := range p.rdur {
		if d > max {
			max, arg = d, i
		}
	}
	if arg < 0 || max < 0 {
		return // no busy shard this round (pure fast-forward)
	}
	p.laggard[arg]++
	p.critNs += max
	for i, d := range p.rdur {
		if d < 0 {
			p.idleNs[i] += max
		} else {
			p.waitNs[i] += max - d
		}
	}
}

// Exchange accrues staged cross-shard traffic drained at a barrier:
// events pushed from src onto dst's heap, and the packet payload bytes
// among them.
func (p *EngineProfiler) Exchange(src, dst int, events, bytes int64) {
	p.exchEvents[src*p.nshards+dst] += events
	p.exchBytes[src*p.nshards+dst] += bytes
}

// NotePending updates a shard's event-queue depth high-water mark,
// sampled at barriers (after the exchange drain, so staged arrivals
// count).
func (p *EngineProfiler) NotePending(shard, pending int) {
	if int64(pending) > p.peakPend[shard] {
		p.peakPend[shard] = int64(pending)
	}
}

// ShardWindowProfile is one shard's aggregate in a profile snapshot.
type ShardWindowProfile struct {
	Shard             int
	BusyWallNs        int64 // wall time executing this shard's windows
	BarrierWaitNs     int64 // busy rounds: waiting for the laggard
	IdleWallNs        int64 // rounds spent fast-forwarded with no work
	Events            uint64
	BusyRounds        int64
	FastForwardRounds int64
	LaggardRounds     int64 // rounds this shard set the barrier
	GrantedPs         int64 // simulated window width granted
	UsedPs            int64 // simulated advance up to the last event
	FastForwardPs     int64 // simulated advance taken analytically
	PeakPending       int64 // event-queue depth high-water mark
}

// WindowEfficiency returns the fraction of granted simulated window
// width the shard actually used (0 when it was never granted one).
func (s *ShardWindowProfile) WindowEfficiency() float64 {
	if s.GrantedPs <= 0 {
		return 0
	}
	return float64(s.UsedPs) / float64(s.GrantedPs)
}

// EngineProfile is an immutable snapshot of an EngineProfiler.
type EngineProfile struct {
	Shards []ShardWindowProfile

	Rounds         int64
	WallNs         int64 // wall time inside coordinator Run* calls
	CriticalPathNs int64 // sum over rounds of the slowest busy window
	DrainWallNs    int64
	CtrlWallNs     int64
	CtrlEvents     uint64

	// ExchangeEvents[src][dst] / ExchangeBytes[src][dst]: staged
	// cross-shard events drained from src onto dst, and the packet
	// payload bytes among them.
	ExchangeEvents [][]int64
	ExchangeBytes  [][]int64

	CutChannels   int // directed inter-switch channels crossing shards
	TotalChannels int
	LookaheadMin  int64 // picoseconds, finite off-diagonal minimum
	LookaheadMax  int64
}

// BarrierOverhead returns the fraction of run wall time not covered by
// the critical path — time lost to coordination rather than to the
// slowest shard's useful work. Zero for serial runs by construction.
func (p *EngineProfile) BarrierOverhead() float64 {
	if p.WallNs <= 0 {
		return 0
	}
	ov := 1 - float64(p.CriticalPathNs)/float64(p.WallNs)
	if ov < 0 {
		return 0
	}
	return ov
}

// WindowEfficiency returns the aggregate used/granted window fraction
// across all shards.
func (p *EngineProfile) WindowEfficiency() float64 {
	var granted, used int64
	for i := range p.Shards {
		granted += p.Shards[i].GrantedPs
		used += p.Shards[i].UsedPs
	}
	if granted <= 0 {
		return 0
	}
	return float64(used) / float64(granted)
}

// LaggardShare returns the fraction of laggard-bearing rounds in which
// the given shard set the barrier.
func (p *EngineProfile) LaggardShare(shard int) float64 {
	var total int64
	for i := range p.Shards {
		total += p.Shards[i].LaggardRounds
	}
	if total <= 0 || shard < 0 || shard >= len(p.Shards) {
		return 0
	}
	return float64(p.Shards[shard].LaggardRounds) / float64(total)
}

// TotalEvents returns data-plane events executed across all shards.
func (p *EngineProfile) TotalEvents() uint64 {
	var n uint64
	for i := range p.Shards {
		n += p.Shards[i].Events
	}
	return n
}

// ExchangeTotals returns the total staged cross-shard events and bytes.
func (p *EngineProfile) ExchangeTotals() (events, bytes int64) {
	for _, row := range p.ExchangeEvents {
		for _, v := range row {
			events += v
		}
	}
	for _, row := range p.ExchangeBytes {
		for _, v := range row {
			bytes += v
		}
	}
	return events, bytes
}

// Snapshot returns a copy of the current aggregates. It allocates and
// must only be called from the goroutine feeding the profiler — the
// control plane at a quiescent barrier, or the caller after the run.
func (p *EngineProfiler) Snapshot() *EngineProfile {
	out := &EngineProfile{
		Shards:         make([]ShardWindowProfile, p.nshards),
		Rounds:         p.rounds,
		WallNs:         p.wallNs,
		CriticalPathNs: p.critNs,
		DrainWallNs:    p.drainNs,
		CtrlWallNs:     p.ctrlNs,
		CtrlEvents:     p.ctrlEvents,
		ExchangeEvents: make([][]int64, p.nshards),
		ExchangeBytes:  make([][]int64, p.nshards),
		CutChannels:    p.cutCross,
		TotalChannels:  p.cutTotal,
		LookaheadMin:   p.laMinPs,
		LookaheadMax:   p.laMaxPs,
	}
	if p.running {
		out.WallNs += time.Since(p.runStart).Nanoseconds()
	}
	for i := 0; i < p.nshards; i++ {
		out.Shards[i] = ShardWindowProfile{
			Shard:             i,
			BusyWallNs:        p.busyNs[i],
			BarrierWaitNs:     p.waitNs[i],
			IdleWallNs:        p.idleNs[i],
			Events:            p.events[i],
			BusyRounds:        p.busyRounds[i],
			FastForwardRounds: p.ffRounds[i],
			LaggardRounds:     p.laggard[i],
			GrantedPs:         p.grantedPs[i],
			UsedPs:            p.usedPs[i],
			FastForwardPs:     p.ffPs[i],
			PeakPending:       p.peakPend[i],
		}
		out.ExchangeEvents[i] = append([]int64(nil), p.exchEvents[i*p.nshards:(i+1)*p.nshards]...)
		out.ExchangeBytes[i] = append([]int64(nil), p.exchBytes[i*p.nshards:(i+1)*p.nshards]...)
	}
	return out
}
