package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Histogram is a fixed-bucket distribution: observations are counted
// into buckets bounded by ascending upper limits, with one implicit
// +Inf overflow bucket. Like Counter and Gauge it is nil-safe and
// allocation-free on the observe path — a binary search over a small
// fixed slice and an increment — so packet-latency observation can sit
// directly on the delivery path.
type Histogram struct {
	name   string
	labels []Label
	uppers []float64 // ascending bucket upper bounds
	counts []int64   // len(uppers)+1; last is the +Inf overflow bucket
	sum    float64
	n      int64

	// refresh, when set (HistogramView), recomputes the state from the
	// view's backing data just before any read. Views exist for sharded
	// simulations: each shard observes into its own accumulator and the
	// refresh hook merges them with an order-independent reduction, so
	// readings are identical no matter how the run was partitioned.
	refresh func(*Histogram)
}

// sync refreshes a view-backed histogram before a read; plain
// histograms pay one nil check.
func (h *Histogram) sync() {
	if h != nil && h.refresh != nil {
		h.refresh(h)
	}
}

// SetState replaces the histogram's contents (bucket counts, value sum,
// observation count) wholesale. It is the write half of a HistogramView
// refresh hook; counts must have len(uppers)+1 entries.
func (h *Histogram) SetState(counts []int64, sum float64, n int64) {
	if len(counts) != len(h.counts) {
		panic(fmt.Sprintf("telemetry: SetState with %d counts, histogram has %d buckets",
			len(counts), len(h.counts)))
	}
	copy(h.counts, counts)
	h.sum = sum
	h.n = n
}

// NewHistogram returns an unregistered histogram with the given
// ascending bucket upper bounds — useful for distributions built
// outside a registry (e.g. the utilization histogram derived from a
// finished heatmap).
func NewHistogram(uppers []float64) (*Histogram, error) {
	if len(uppers) == 0 {
		return nil, fmt.Errorf("telemetry: histogram needs at least one bucket")
	}
	if !sort.Float64sAreSorted(uppers) {
		return nil, fmt.Errorf("telemetry: histogram buckets must be ascending")
	}
	u := make([]float64, len(uppers))
	copy(u, uppers)
	return &Histogram{uppers: u, counts: make([]int64, len(u)+1)}, nil
}

// Histogram registers a histogram under name with optional labels. Two
// scalar series, <name>.count and <name>.sum, join the registry so the
// periodic sampler captures the distribution's trajectory over time;
// the full bucket vector is rendered by WritePrometheus and WriteCSV.
func (r *Registry) Histogram(name string, uppers []float64, labels ...Label) (*Histogram, error) {
	h, err := NewHistogram(uppers)
	if err != nil {
		return nil, err
	}
	h.name = name
	h.labels = labels
	if err := r.register(name+".count", labels, kindHistPart, func() float64 { h.sync(); return float64(h.n) }); err != nil {
		return nil, err
	}
	if err := r.register(name+".sum", labels, kindHistPart, func() float64 { h.sync(); return h.sum }); err != nil {
		return nil, err
	}
	r.hists = append(r.hists, h)
	return h, nil
}

// HistogramView registers a histogram whose state is recomputed by
// refresh just before every read (sampler tick, Prometheus render, CSV
// dump). It carries no state of its own between reads; Observe must not
// be called on it. The sharded fabric uses one for packet latency: each
// shard accumulates privately, and refresh merges the shards into the
// view via SetState.
func (r *Registry) HistogramView(name string, uppers []float64, refresh func(*Histogram), labels ...Label) (*Histogram, error) {
	h, err := r.Histogram(name, uppers, labels...)
	if err != nil {
		return nil, err
	}
	h.refresh = refresh
	return h, nil
}

// Observe counts one value into its bucket. A nil Histogram ignores
// the call, so instrumented code can hold a nil pointer when telemetry
// is off.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Manual lower-bound search: first bucket with upper >= v.
	lo, hi := 0, len(h.uppers)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.uppers[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo]++
	h.sum += v
	h.n++
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.sync()
	return h.n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.sync()
	return h.sum
}

// Buckets returns the upper bounds and per-bucket (non-cumulative)
// counts; the final count is the +Inf overflow bucket, so counts is
// one longer than uppers.
func (h *Histogram) Buckets() (uppers []float64, counts []int64) {
	h.sync()
	return h.uppers, h.counts
}

// WriteCSV renders the distribution as CSV with one row per bucket:
// upper bound ("+Inf" for the overflow bucket), the bucket's count,
// the cumulative count, and the cumulative fraction of observations —
// the columns needed to plot a Fig 8-style utilization histogram or a
// latency CDF directly.
func (h *Histogram) WriteCSV(w io.Writer) error {
	h.sync()
	bw := bufio.NewWriter(w)
	bw.WriteString("le,count,cum_count,cum_fraction\n")
	var cum int64
	for i, c := range h.counts {
		upper := "+Inf"
		if i < len(h.uppers) {
			upper = fmtValue(h.uppers[i])
		}
		cum += c
		frac := 0.0
		if h.n > 0 {
			frac = float64(cum) / float64(h.n)
		}
		bw.WriteString(upper)
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatInt(c, 10))
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatInt(cum, 10))
		bw.WriteByte(',')
		bw.WriteString(fmtValue(frac))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
