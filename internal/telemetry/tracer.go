package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"epnet/internal/sim"
)

// Conventional trace process IDs, so every producer lands its events in
// a predictable Perfetto track group. Run-level code names them with
// MetaProcessName.
const (
	// PIDPackets groups packet-lifetime spans (inject -> deliver).
	PIDPackets = 1
	// PIDLinks groups link events (rate retunes, CDR re-locks), one
	// thread row per channel.
	PIDLinks = 2
	// PIDFaults groups fault-injection events: failure/repair outage
	// spans per link pair, switch crashes, and packet drops.
	PIDFaults = 3
)

// Tracer streams Chrome trace_event JSON (the chrome://tracing /
// Perfetto "JSON array format"): one array of event objects, written
// incrementally so arbitrarily long traces never buffer in memory.
//
// Timestamps and durations are microseconds (the format's unit),
// converted from simulator picoseconds at full precision. All methods
// are cheap no-ops once a write error occurs; Err reports the first
// one. A Tracer is single-threaded, like the engine that drives it.
type Tracer struct {
	bw     *bufio.Writer
	events int64
	err    error
}

// NewTracer starts a trace stream on w. Call Close to terminate the
// JSON array; the caller retains ownership of w (Close flushes but
// does not close it).
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{bw: bufio.NewWriter(w)}
	_, t.err = t.bw.WriteString("[\n")
	return t
}

// us renders a simulator time as trace microseconds.
func us(t sim.Time) string {
	return strconv.FormatFloat(t.Microseconds(), 'f', -1, 64)
}

// emit writes one event object, handling commas and error latching.
func (t *Tracer) emit(obj string) {
	if t.err != nil {
		return
	}
	if t.events > 0 {
		if _, t.err = t.bw.WriteString(",\n"); t.err != nil {
			return
		}
	}
	if _, t.err = t.bw.WriteString(obj); t.err != nil {
		return
	}
	t.events++
}

// argsField renders the optional args object from preformatted inner
// JSON (e.g. `"src":3,"dst":7`); empty means no args.
func argsField(args string) string {
	if args == "" {
		return ""
	}
	return `,"args":{` + args + `}`
}

// Complete emits a ph="X" complete event: a span of duration dur
// starting at start on (pid, tid). Spans on one tid should not overlap
// (use AsyncSpan for overlapping work like packets in flight).
func (t *Tracer) Complete(name, cat string, pid, tid int, start, dur sim.Time, args string) {
	t.emit(fmt.Sprintf(
		`{"name":%q,"cat":%q,"ph":"X","ts":%s,"dur":%s,"pid":%d,"tid":%d%s}`,
		name, cat, us(start), us(dur), pid, tid, argsField(args)))
}

// Instant emits a ph="i" instant event at ts.
func (t *Tracer) Instant(name, cat string, pid, tid int, ts sim.Time, args string) {
	t.emit(fmt.Sprintf(
		`{"name":%q,"cat":%q,"ph":"i","s":"t","ts":%s,"pid":%d,"tid":%d%s}`,
		name, cat, us(ts), pid, tid, argsField(args)))
}

// AsyncSpan emits a ph="b"/"e" async event pair for a span that may
// overlap others: viewers correlate begin and end by (cat, id, name)
// and render each id on its own sub-track.
func (t *Tracer) AsyncSpan(name, cat string, pid int, id int64, start, end sim.Time, args string) {
	t.emit(fmt.Sprintf(
		`{"name":%q,"cat":%q,"ph":"b","id":%d,"ts":%s,"pid":%d,"tid":0%s}`,
		name, cat, id, us(start), pid, argsField(args)))
	t.emit(fmt.Sprintf(
		`{"name":%q,"cat":%q,"ph":"e","id":%d,"ts":%s,"pid":%d,"tid":0}`,
		name, cat, id, us(end), pid))
}

// MetaProcessName names a pid's track group in the viewer.
func (t *Tracer) MetaProcessName(pid int, name string) {
	t.emit(fmt.Sprintf(
		`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%q}}`,
		pid, name))
}

// MetaThreadName names a (pid, tid) track row in the viewer.
func (t *Tracer) MetaThreadName(pid, tid int, name string) {
	t.emit(fmt.Sprintf(
		`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`,
		pid, tid, name))
}

// Events returns the number of events emitted so far.
func (t *Tracer) Events() int64 { return t.events }

// Err returns the first write error, if any.
func (t *Tracer) Err() error { return t.err }

// Close terminates the JSON array and flushes. The underlying writer
// is not closed.
func (t *Tracer) Close() error {
	if t.err != nil {
		return t.err
	}
	if _, t.err = t.bw.WriteString("\n]\n"); t.err != nil {
		return t.err
	}
	t.err = t.bw.Flush()
	return t.err
}
