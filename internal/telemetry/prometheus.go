package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// promName sanitizes a dotted metric family name into the Prometheus
// name charset [a-zA-Z0-9_:], mapping dots (and anything else) to
// underscores: "link.rate_gbps" -> "link_rate_gbps".
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// writeLabels renders {k="v",k2="v2"}, with extra appended last (used
// for histogram "le" bounds). Values are %q-escaped.
func writeLabels(bw *bufio.Writer, labels []Label, extra ...Label) {
	if len(labels)+len(extra) == 0 {
		return
	}
	bw.WriteByte('{')
	n := 0
	for _, l := range labels {
		if n > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, "%s=%q", l.Key, l.Value)
		n++
	}
	for _, l := range extra {
		if n > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, "%s=%q", l.Key, l.Value)
		n++
	}
	bw.WriteByte('}')
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per family followed by its
// series. Families appear in first-registration order; series within a
// family are grouped together regardless of interleaved registration,
// so scrapers see contiguous TYPE blocks. Histograms render as full
// _bucket/_sum/_count families with cumulative le bounds; their scalar
// .count/.sum sampler entries are skipped here to avoid duplication.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	seen := make(map[string]bool, len(r.entries))
	order := make([]string, 0, len(r.entries))
	byName := make(map[string][]entry, len(r.entries))
	for _, e := range r.entries {
		if e.kind == kindHistPart {
			continue
		}
		if !seen[e.name] {
			seen[e.name] = true
			order = append(order, e.name)
		}
		byName[e.name] = append(byName[e.name], e)
	}
	for _, name := range order {
		series := byName[name]
		typ := "gauge"
		if series[0].kind == kindCounter {
			typ = "counter"
		}
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s %s\n", pn, typ)
		for _, e := range series {
			bw.WriteString(pn)
			writeLabels(bw, e.labels)
			bw.WriteByte(' ')
			bw.WriteString(fmtValue(e.read()))
			bw.WriteByte('\n')
		}
	}
	for _, h := range r.hists {
		h.sync()
		pn := promName(h.name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", pn)
		var cum int64
		for i, c := range h.counts {
			upper := "+Inf"
			if i < len(h.uppers) {
				upper = fmtValue(h.uppers[i])
			}
			cum += c
			bw.WriteString(pn)
			bw.WriteString("_bucket")
			writeLabels(bw, h.labels, Label{Key: "le", Value: upper})
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(cum, 10))
			bw.WriteByte('\n')
		}
		bw.WriteString(pn)
		bw.WriteString("_sum")
		writeLabels(bw, h.labels)
		bw.WriteByte(' ')
		bw.WriteString(fmtValue(h.sum))
		bw.WriteByte('\n')
		bw.WriteString(pn)
		bw.WriteString("_count")
		writeLabels(bw, h.labels)
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatInt(h.n, 10))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
