package telemetry

import (
	"testing"
	"time"
)

// feedRound drives one synthetic coordinator round: durs[i] is shard
// i's window wall time in ns, or -1 for a fast-forwarded shard.
func feedRound(p *EngineProfiler, durs ...int64) {
	p.BeginRound()
	for i, d := range durs {
		if d < 0 {
			p.ShardFastForward(i, 1000)
		} else {
			p.ShardBusy(i, 100, 80, d, 10)
		}
	}
	p.EndRound()
}

// TestEngineProfilerLaggardAttribution pins the per-round barrier math:
// the slowest busy window is the laggard and extends the critical path,
// other busy shards are charged the difference as barrier wait, and
// fast-forwarded shards are charged the whole round as idle.
func TestEngineProfilerLaggardAttribution(t *testing.T) {
	p := NewEngineProfiler(3)
	feedRound(p, 100, 300, -1) // shard 1 laggard; shard 0 waits 200; shard 2 idles 300
	feedRound(p, 500, 200, 400)

	s := p.Snapshot()
	if s.Rounds != 2 {
		t.Fatalf("Rounds = %d, want 2", s.Rounds)
	}
	if s.CriticalPathNs != 300+500 {
		t.Errorf("CriticalPathNs = %d, want 800", s.CriticalPathNs)
	}
	wantLaggard := []int64{1, 1, 0}
	wantWait := []int64{200 + 0, 0 + 300, 100}
	wantIdle := []int64{0, 0, 300}
	wantBusyRounds := []int64{2, 2, 1}
	for i, sh := range s.Shards {
		if sh.LaggardRounds != wantLaggard[i] {
			t.Errorf("shard %d: LaggardRounds = %d, want %d", i, sh.LaggardRounds, wantLaggard[i])
		}
		if sh.BarrierWaitNs != wantWait[i] {
			t.Errorf("shard %d: BarrierWaitNs = %d, want %d", i, sh.BarrierWaitNs, wantWait[i])
		}
		if sh.IdleWallNs != wantIdle[i] {
			t.Errorf("shard %d: IdleWallNs = %d, want %d", i, sh.IdleWallNs, wantIdle[i])
		}
		if sh.BusyRounds != wantBusyRounds[i] {
			t.Errorf("shard %d: BusyRounds = %d, want %d", i, sh.BusyRounds, wantBusyRounds[i])
		}
	}
	if got := s.LaggardShare(0); got != 0.5 {
		t.Errorf("LaggardShare(0) = %v, want 0.5", got)
	}
	if sh := s.Shards[2]; sh.FastForwardRounds != 1 || sh.FastForwardPs != 1000 {
		t.Errorf("shard 2 fast-forward = (%d rounds, %d ps), want (1, 1000)",
			sh.FastForwardRounds, sh.FastForwardPs)
	}
}

// TestEngineProfilerLaggardTie verifies a wall-time tie resolves to the
// lowest shard ID, keeping the attribution deterministic for a given
// set of timings.
func TestEngineProfilerLaggardTie(t *testing.T) {
	p := NewEngineProfiler(2)
	feedRound(p, 100, 100)
	s := p.Snapshot()
	if s.Shards[0].LaggardRounds != 1 || s.Shards[1].LaggardRounds != 0 {
		t.Errorf("tie broke to shard 1: laggard rounds %d/%d, want 1/0",
			s.Shards[0].LaggardRounds, s.Shards[1].LaggardRounds)
	}
	if s.Shards[1].BarrierWaitNs != 0 {
		t.Errorf("tied shard charged %d ns barrier wait, want 0", s.Shards[1].BarrierWaitNs)
	}
}

// TestEngineProfilerPureFastForwardRound verifies a round in which every
// shard fast-forwards counts as a round but contributes no laggard,
// critical path, or idle charge (there was no barrier to wait on).
func TestEngineProfilerPureFastForwardRound(t *testing.T) {
	p := NewEngineProfiler(2)
	feedRound(p, -1, -1)
	s := p.Snapshot()
	if s.Rounds != 1 {
		t.Fatalf("Rounds = %d, want 1", s.Rounds)
	}
	if s.CriticalPathNs != 0 {
		t.Errorf("CriticalPathNs = %d, want 0", s.CriticalPathNs)
	}
	for i, sh := range s.Shards {
		if sh.LaggardRounds != 0 || sh.IdleWallNs != 0 || sh.BarrierWaitNs != 0 {
			t.Errorf("shard %d charged (laggard %d, idle %d, wait %d) on a pure fast-forward round",
				i, sh.LaggardRounds, sh.IdleWallNs, sh.BarrierWaitNs)
		}
	}
}

// TestEngineProfilerWindowEfficiency pins used/granted both per shard
// and in aggregate.
func TestEngineProfilerWindowEfficiency(t *testing.T) {
	p := NewEngineProfiler(2)
	p.BeginRound()
	p.ShardBusy(0, 1000, 250, 5, 1)
	p.ShardBusy(1, 1000, 750, 5, 1)
	p.EndRound()
	s := p.Snapshot()
	if got := s.Shards[0].WindowEfficiency(); got != 0.25 {
		t.Errorf("shard 0 WindowEfficiency = %v, want 0.25", got)
	}
	if got := s.WindowEfficiency(); got != 0.5 {
		t.Errorf("aggregate WindowEfficiency = %v, want 0.5", got)
	}
	var empty ShardWindowProfile
	if got := empty.WindowEfficiency(); got != 0 {
		t.Errorf("zero-granted WindowEfficiency = %v, want 0", got)
	}
}

// TestEngineProfilerExchangeMatrix verifies the src×dst accumulation,
// the row copies in the snapshot, and the totals.
func TestEngineProfilerExchangeMatrix(t *testing.T) {
	p := NewEngineProfiler(2)
	p.Exchange(0, 1, 3, 6000)
	p.Exchange(0, 1, 1, 2048)
	p.Exchange(1, 0, 2, 100)
	s := p.Snapshot()
	if s.ExchangeEvents[0][1] != 4 || s.ExchangeBytes[0][1] != 8048 {
		t.Errorf("exchange[0][1] = (%d ev, %d B), want (4, 8048)",
			s.ExchangeEvents[0][1], s.ExchangeBytes[0][1])
	}
	if s.ExchangeEvents[0][0] != 0 || s.ExchangeEvents[1][1] != 0 {
		t.Error("diagonal exchange entries should stay zero")
	}
	ev, by := s.ExchangeTotals()
	if ev != 6 || by != 8148 {
		t.Errorf("ExchangeTotals = (%d, %d), want (6, 8148)", ev, by)
	}
	// Snapshot rows must be copies, not views of live storage.
	p.Exchange(0, 1, 100, 100)
	if s.ExchangeEvents[0][1] != 4 {
		t.Error("snapshot exchange row aliases live profiler storage")
	}
}

// TestEngineProfilerPeakPending verifies the high-water mark only moves
// up.
func TestEngineProfilerPeakPending(t *testing.T) {
	p := NewEngineProfiler(1)
	p.NotePending(0, 5)
	p.NotePending(0, 12)
	p.NotePending(0, 3)
	if s := p.Snapshot(); s.Shards[0].PeakPending != 12 {
		t.Errorf("PeakPending = %d, want 12", s.Shards[0].PeakPending)
	}
}

// TestEngineProfilerSerial verifies the single-engine accrual path:
// the whole slice lands on shard 0 as busy time and critical path, and
// barrier overhead stays ~0 because wall comes from the same span.
func TestEngineProfilerSerial(t *testing.T) {
	p := NewEngineProfiler(1)
	p.RunStarted()
	p.AddSerial(1000, 42)
	p.RunStopped()
	s := p.Snapshot()
	if s.Shards[0].BusyWallNs != 1000 || s.CriticalPathNs != 1000 {
		t.Errorf("serial slice: busy %d / crit %d, want 1000/1000",
			s.Shards[0].BusyWallNs, s.CriticalPathNs)
	}
	if s.TotalEvents() != 42 {
		t.Errorf("TotalEvents = %d, want 42", s.TotalEvents())
	}
	if s.WallNs <= 0 {
		t.Errorf("WallNs = %d, want > 0 from the RunStarted span", s.WallNs)
	}
}

// TestEngineProfilerBarrierOverhead pins the derived fraction and its
// clamp (crit > wall can happen at ns granularity; never report < 0).
func TestEngineProfilerBarrierOverhead(t *testing.T) {
	s := &EngineProfile{WallNs: 1000, CriticalPathNs: 600}
	if got := s.BarrierOverhead(); got != 0.4 {
		t.Errorf("BarrierOverhead = %v, want 0.4", got)
	}
	s = &EngineProfile{WallNs: 500, CriticalPathNs: 600}
	if got := s.BarrierOverhead(); got != 0 {
		t.Errorf("clamped BarrierOverhead = %v, want 0", got)
	}
	s = &EngineProfile{}
	if got := s.BarrierOverhead(); got != 0 {
		t.Errorf("zero-wall BarrierOverhead = %v, want 0", got)
	}
}

// TestEngineProfilerLiveSnapshot verifies a snapshot taken mid-run sees
// the in-flight Run* span's elapsed wall time.
func TestEngineProfilerLiveSnapshot(t *testing.T) {
	p := NewEngineProfiler(1)
	p.RunStarted()
	time.Sleep(time.Millisecond)
	if s := p.Snapshot(); s.WallNs <= 0 {
		t.Errorf("mid-run WallNs = %d, want > 0", s.WallNs)
	}
	p.RunStopped()
	done := p.Snapshot().WallNs
	if done <= 0 {
		t.Errorf("post-run WallNs = %d, want > 0", done)
	}
	if again := p.Snapshot().WallNs; again != done {
		t.Errorf("WallNs moved after RunStopped: %d -> %d", done, again)
	}
}

// TestEngineProfilerRoundFeedAllocs proves constraint 2: the per-round
// feed — the only profiler code on the coordinator's hot path — does
// not allocate.
func TestEngineProfilerRoundFeedAllocs(t *testing.T) {
	p := NewEngineProfiler(4)
	allocs := testing.AllocsPerRun(100, func() {
		p.BeginRound()
		p.ShardBusy(0, 100, 90, 10, 5)
		p.ShardBusy(1, 100, 50, 30, 7)
		p.ShardFastForward(2, 100)
		p.ShardBusy(3, 100, 100, 20, 2)
		p.EndRound()
		p.Exchange(0, 1, 2, 4096)
		p.Exchange(3, 2, 1, 2048)
		p.NotePending(0, 17)
		p.AddCtrl(5, 1)
		p.AddDrain(3)
	})
	if allocs != 0 {
		t.Errorf("round feed allocates %v allocs/round, want 0", allocs)
	}
}
