// Package telemetry is the simulator's observability substrate: a
// metrics registry components register named counters and gauges into,
// a periodic sampler that snapshots those metrics into an in-memory
// time series (streamed out as CSV or JSONL), and an event tracer
// emitting Chrome trace_event JSON for inspection in chrome://tracing
// or Perfetto.
//
// The design constraint throughout is that the instrumented hot path
// pays nothing when telemetry is disabled: counters and gauges are
// nil-safe (a nil *Counter's Inc is a branch and a return), metric
// reads happen only when the sampler fires, and trace emission sits
// behind a single nil check at each instrumentation point. Increments
// and sets never allocate (see BenchmarkCounterInc and the
// zero-allocation test).
//
// Metric names are stable and hierarchical, dot-separated from coarse
// to fine: "net.delivered_pkts", "switch.3.p2.queue_bytes",
// "link.s0p1-s1p0.rate_gbps". Registering the same name twice is an
// error — collisions indicate two components fighting over one series.
package telemetry

import (
	"fmt"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; a nil Counter is safe to increment (and stays zero),
// so instrumented code can hold a nil pointer when telemetry is off.
type Counter struct {
	v int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a set-to-current-value metric. Like Counter, a nil Gauge
// accepts Set calls and reads as zero.
type Gauge struct {
	v float64
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value returns the last value set.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// entry is one registered metric: a stable name plus a read function
// evaluated at sampling time.
type entry struct {
	name string
	read func() float64
}

// Registry holds named metrics in registration order. It is not safe
// for concurrent use: like the simulation engine it serves, it is
// single-threaded by design (each engine owns its own registry).
type Registry struct {
	names   map[string]bool
	entries []entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// register validates the name and appends the metric.
func (r *Registry) register(name string, read func() float64) error {
	if name == "" {
		return fmt.Errorf("telemetry: empty metric name")
	}
	if r.names[name] {
		return fmt.Errorf("telemetry: metric %q already registered", name)
	}
	r.names[name] = true
	r.entries = append(r.entries, entry{name: name, read: read})
	return nil
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name string) (*Counter, error) {
	c := &Counter{}
	if err := r.register(name, func() float64 { return float64(c.v) }); err != nil {
		return nil, err
	}
	return c, nil
}

// Gauge registers and returns a new settable gauge.
func (r *Registry) Gauge(name string) (*Gauge, error) {
	g := &Gauge{}
	if err := r.register(name, func() float64 { return g.v }); err != nil {
		return nil, err
	}
	return g, nil
}

// GaugeFunc registers a gauge whose value is computed by fn at each
// sample — the usual form for exposing existing component state (queue
// depths, link rates) without touching the component's hot path.
func (r *Registry) GaugeFunc(name string, fn func() float64) error {
	return r.register(name, fn)
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.entries) }

// Names returns the metric names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.name
	}
	return out
}

// ReadInto evaluates every metric into dst (which must have length
// Len()), in registration order. It reuses dst so steady-state sampling
// does not allocate per metric.
func (r *Registry) ReadInto(dst []float64) {
	for i, e := range r.entries {
		dst[i] = e.read()
	}
}
