// Package telemetry is the simulator's observability substrate: a
// metrics registry components register named counters and gauges into,
// a periodic sampler that snapshots those metrics into an in-memory
// time series (streamed out as CSV or JSONL), and an event tracer
// emitting Chrome trace_event JSON for inspection in chrome://tracing
// or Perfetto.
//
// The design constraint throughout is that the instrumented hot path
// pays nothing when telemetry is disabled: counters and gauges are
// nil-safe (a nil *Counter's Inc is a branch and a return), metric
// reads happen only when the sampler fires, and trace emission sits
// behind a single nil check at each instrumentation point. Increments
// and sets never allocate (see BenchmarkCounterInc and the
// zero-allocation test).
//
// Metric names are stable and hierarchical, dot-separated from coarse
// to fine: "net.delivered_pkts". Per-entity series use labeled vectors
// (CounterVec/GaugeVec): one family name plus key=value labels, e.g.
// "link.rate_gbps{link=s0p1-s1p0}". Labels are joined with semicolons
// in the flat identity string so CSV headers stay comma-free; the
// Prometheus renderer re-emits them in standard {k="v",...} syntax.
// Registering the same identity twice is an error — collisions
// indicate two components fighting over one series.
package telemetry

import (
	"fmt"
	"strings"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; a nil Counter is safe to increment (and stays zero),
// so instrumented code can hold a nil pointer when telemetry is off.
type Counter struct {
	v int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a set-to-current-value metric. Like Counter, a nil Gauge
// accepts Set calls and reads as zero.
type Gauge struct {
	v float64
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value returns the last value set.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Label is one key=value dimension attached to a metric, e.g.
// {Key: "link", Value: "s0p1-s1p0"}.
type Label struct {
	Key, Value string
}

// metricKind distinguishes how a registered scalar should be rendered
// by format-aware exporters (the CSV sampler treats them all alike).
type metricKind uint8

const (
	kindGauge metricKind = iota
	kindCounter
	// kindHistPart marks the .count/.sum scalars a Histogram registers
	// for CSV sampling; the Prometheus renderer skips them because the
	// histogram itself renders as a full _bucket/_sum/_count family.
	kindHistPart
)

// entry is one registered metric: a stable identity (family name plus
// labels) and a read function evaluated at sampling time.
type entry struct {
	name   string // family name, no labels
	labels []Label
	id     string // rendered identity: name or name{k=v;k2=v2}
	kind   metricKind
	read   func() float64
}

// Registry holds named metrics in registration order. It is not safe
// for concurrent use: like the simulation engine it serves, it is
// single-threaded by design (each engine owns its own registry).
type Registry struct {
	ids     map[string]bool
	entries []entry
	hists   []*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ids: make(map[string]bool)}
}

// identity renders the flat series identity used in CSV headers and
// for collision detection. Labels are ;-joined so the result never
// contains a comma: "name{k1=v1;k2=v2}".
func identity(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// checkLabels rejects label keys/values that would corrupt the flat
// identity encoding or the CSV/Prometheus output.
func checkLabels(labels []Label) error {
	for _, l := range labels {
		if l.Key == "" {
			return fmt.Errorf("telemetry: empty label key")
		}
		for _, s := range [2]string{l.Key, l.Value} {
			if strings.ContainsAny(s, ",;{}=\"\n") {
				return fmt.Errorf("telemetry: label %s=%s contains a reserved character", l.Key, l.Value)
			}
		}
	}
	return nil
}

// register validates the identity and appends the metric.
func (r *Registry) register(name string, labels []Label, kind metricKind, read func() float64) error {
	if name == "" {
		return fmt.Errorf("telemetry: empty metric name")
	}
	if err := checkLabels(labels); err != nil {
		return err
	}
	id := identity(name, labels)
	if r.ids[id] {
		return fmt.Errorf("telemetry: metric %q already registered", id)
	}
	r.ids[id] = true
	r.entries = append(r.entries, entry{name: name, labels: labels, id: id, kind: kind, read: read})
	return nil
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name string) (*Counter, error) {
	c := &Counter{}
	if err := r.register(name, nil, kindCounter, func() float64 { return float64(c.v) }); err != nil {
		return nil, err
	}
	return c, nil
}

// Gauge registers and returns a new settable gauge.
func (r *Registry) Gauge(name string) (*Gauge, error) {
	g := &Gauge{}
	if err := r.register(name, nil, kindGauge, func() float64 { return g.v }); err != nil {
		return nil, err
	}
	return g, nil
}

// GaugeFunc registers a gauge whose value is computed by fn at each
// sample — the usual form for exposing existing component state (queue
// depths, link rates) without touching the component's hot path.
func (r *Registry) GaugeFunc(name string, fn func() float64) error {
	return r.register(name, nil, kindGauge, fn)
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.entries) }

// Names returns the metric identities in registration order. Labeled
// series render as "name{k=v;k2=v2}" (comma-free, CSV-header safe).
func (r *Registry) Names() []string {
	out := make([]string, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.id
	}
	return out
}

// ReadInto evaluates every metric into dst (which must have length
// Len()), in registration order. It reuses dst so steady-state sampling
// does not allocate per metric.
func (r *Registry) ReadInto(dst []float64) {
	for i, e := range r.entries {
		dst[i] = e.read()
	}
}
