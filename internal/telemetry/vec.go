package telemetry

import "fmt"

// CounterVec is a family of counters sharing one metric name and a
// fixed set of label keys, distinguished by label values — e.g.
// "link.tx_pkts" keyed by "link". With resolves one labeled series to
// a plain *Counter handle up front, so the instrumented hot path pays
// exactly what an unlabeled counter costs: a nil check and an
// increment, zero allocations and zero map lookups per event.
type CounterVec struct {
	reg  *Registry
	name string
	keys []string
}

// CounterVec returns a counter family with the given label keys. The
// family itself is cheap; series are created by With.
func (r *Registry) CounterVec(name string, keys ...string) *CounterVec {
	return &CounterVec{reg: r, name: name, keys: keys}
}

// labelsFor pairs the family's keys with one series' values.
func labelsFor(name string, keys, values []string) ([]Label, error) {
	if len(values) != len(keys) {
		return nil, fmt.Errorf("telemetry: %s expects %d label values, got %d", name, len(keys), len(values))
	}
	labels := make([]Label, len(keys))
	for i, k := range keys {
		labels[i] = Label{Key: k, Value: values[i]}
	}
	return labels, nil
}

// With registers and returns the series for the given label values.
// Each distinct value tuple may be resolved once; a second resolution
// is a collision error, like any duplicate registration.
func (v *CounterVec) With(values ...string) (*Counter, error) {
	labels, err := labelsFor(v.name, v.keys, values)
	if err != nil {
		return nil, err
	}
	c := &Counter{}
	if err := v.reg.register(v.name, labels, kindCounter, func() float64 { return float64(c.v) }); err != nil {
		return nil, err
	}
	return c, nil
}

// GaugeVec is the gauge analogue of CounterVec: one family name, fixed
// label keys, per-series handles or read functions resolved up front.
type GaugeVec struct {
	reg  *Registry
	name string
	keys []string
}

// GaugeVec returns a gauge family with the given label keys.
func (r *Registry) GaugeVec(name string, keys ...string) *GaugeVec {
	return &GaugeVec{reg: r, name: name, keys: keys}
}

// With registers and returns a settable gauge for the given label
// values.
func (v *GaugeVec) With(values ...string) (*Gauge, error) {
	labels, err := labelsFor(v.name, v.keys, values)
	if err != nil {
		return nil, err
	}
	g := &Gauge{}
	if err := v.reg.register(v.name, labels, kindGauge, func() float64 { return g.v }); err != nil {
		return nil, err
	}
	return g, nil
}

// WithFunc registers a computed gauge for the given label values — the
// usual form for exposing per-entity component state (queue depths,
// link rates) without touching the component's hot path.
func (v *GaugeVec) WithFunc(fn func() float64, values ...string) error {
	labels, err := labelsFor(v.name, v.keys, values)
	if err != nil {
		return err
	}
	return v.reg.register(v.name, labels, kindGauge, fn)
}
