package telemetry

import (
	"math"
	"sort"

	"epnet/internal/sim"
)

// Flow tracing: hash-sampled packets carry a compact per-hop log that
// splits their end-to-end latency into where the time actually went —
// queue wait, credit stalls, retune (reactivation) stalls, busy-channel
// waits, cut-through causality waits, serialization, wire flight, and
// routing/arbitration. The FlowCollector aggregates finished logs into
// per-class decompositions and keeps a bounded set of exemplar (slowest)
// packets plus an anomaly flight recorder: recent traced transmits and
// the hop logs of dropped packets, dumped on faults and drops.
//
// Everything here is designed around the fabric's determinism contract:
//   - sampling is a pure hash of the packet ID and the run seed, so the
//     sampled set is identical at any shard count;
//   - per-hop accounting mutates only the packet's own trace (single
//     writer: whichever shard currently owns the packet);
//   - per-shard accumulators are merged only at quiescent points, by
//     order-independent sums and canonical sorts.

// Hop time components. Queue is the residual wait at the head-of-line
// and behind other packets; Credit is time blocked on downstream buffer
// credits; Retune is time blocked on an in-progress reactivation (CDR
// re-lock / lane retraining); Busy is time blocked behind the channel's
// in-flight tail; Cut is cut-through causality wait (retransmission may
// not finish before the tail arrives); Serialize is the delivery
// serialization at the last hop's rate (intermediate serializations are
// pipelined off the critical path under cut-through); Wire and Route are
// the fixed propagation and arbitration delays.
const (
	FlowQueue = iota
	FlowCredit
	FlowRetune
	FlowBusy
	FlowCut
	FlowSerialize
	FlowWire
	FlowRoute
	FlowComponents
)

// FlowComponentNames names the components, indexed by the constants
// above.
var FlowComponentNames = [FlowComponents]string{
	"queue", "credit", "retune", "busy", "cutthrough", "serialize", "wire", "route",
}

// MaxFlowHops bounds the per-packet hop log. Paths longer than this
// (not reachable in the shipped topologies) fold their remaining hops
// into the last record and set Truncated; the component sums stay exact.
const MaxFlowHops = 16

const (
	flowExemplarKeep = 16  // slowest traced packets retained per shard and globally
	flowDumpKeep     = 16  // per-shard drop-dump retention (canonical earliest)
	flowDumpMax      = 8   // fault dumps and drop dumps each cap at this, globally
	flightRingCap    = 256 // recent traced transmits remembered per shard
	flightDumpRecent = 32  // transmits included in one fault dump
)

// FlowHop is one hop of a traced packet's journey: the source host
// (Node < 0, encoded ^host) or a switch (Node >= 0), the channel it
// left on, and the time split while it was there.
type FlowHop struct {
	Node   int32    // switch index, or ^host for the injection hop
	Chan   int32    // channel index transmitted on; -1 before transmit
	Arrive sim.Time // when the packet (head) reached this hop
	Depart sim.Time // when transmission started
	Xmit   sim.Time // actual serialization time at this hop's rate
	Comp   [FlowComponents]sim.Time
}

// PacketTrace is the hop log of one sampled packet. The unexported
// fields carry the incremental accounting state: mark is the last
// instant already attributed, pend the component the time since mark
// belongs to. Component sums over all hops equal Done-Inject exactly.
type PacketTrace struct {
	ID        int64
	MsgID     int64
	Src, Dst  int
	Size      int
	Inject    sim.Time
	Done      sim.Time // delivery (or drop) time; zero while in flight
	Dropped   bool
	DropWhy   string
	Truncated bool
	NHops     int
	Hops      [MaxFlowHops]FlowHop

	mark sim.Time
	pend uint8
}

// Latency returns the packet's end-to-end (or inject-to-drop) latency.
func (t *PacketTrace) Latency() sim.Time { return t.Done - t.Inject }

// TotalComp sums one component across every hop.
func (t *PacketTrace) TotalComp(c int) sim.Time {
	var sum sim.Time
	for i := 0; i < t.NHops; i++ {
		sum += t.Hops[i].Comp[c]
	}
	return sum
}

func (t *PacketTrace) cur() *FlowHop { return &t.Hops[t.NHops-1] }

// ArriveHop opens a new hop record at now. On overflow it folds into
// the last record: attribution coarsens but the sums stay exact.
func (t *PacketTrace) ArriveHop(node int32, now sim.Time) {
	if t.NHops == MaxFlowHops {
		t.Truncated = true
		t.mark, t.pend = now, FlowQueue
		return
	}
	t.Hops[t.NHops] = FlowHop{Node: node, Chan: -1, Arrive: now}
	t.NHops++
	t.mark, t.pend = now, FlowQueue
}

// Account attributes the time since the last accounted instant to the
// pending component and resets the pending reason to queue wait. Called
// at the top of every head-of-line visit.
func (t *PacketTrace) Account(now sim.Time) {
	if now > t.mark {
		t.cur().Comp[t.pend] += now - t.mark
		t.mark, t.pend = now, FlowQueue
	}
}

// Block records why the packet is now stalled; the duration lands at
// the next Account call.
func (t *PacketTrace) Block(component uint8) { t.pend = component }

// WaitAvailable splits a wait-until-available (Account must have run,
// so mark == now) into its retune portion — up to the reactivation
// deadline — and the busy-channel remainder, immediately: both bounds
// are known now, so nothing is left pending.
func (t *PacketTrace) WaitAvailable(avail, reconfigUntil sim.Time) {
	from := t.mark
	if avail <= from {
		return
	}
	var retune sim.Time
	if reconfigUntil > from {
		r := reconfigUntil
		if r > avail {
			r = avail
		}
		retune = r - from
	}
	h := t.cur()
	h.Comp[FlowRetune] += retune
	h.Comp[FlowBusy] += avail - from - retune
	t.mark, t.pend = avail, FlowQueue
}

// Transmit closes the current hop: transmission ran [start, start+xmit]
// on channel ch. For a host-destined hop the delivery happens at tail
// arrival, so serialization and wire flight are on the critical path;
// for a switch-destined hop the next arrival is head-based and only
// wire + routing delay separate this hop from the next ArriveHop.
func (t *PacketTrace) Transmit(ch int32, start, done, wire, route sim.Time, toHost bool) {
	h := t.cur()
	h.Chan = ch
	h.Depart = start
	h.Xmit = done - start
	if toHost {
		h.Comp[FlowSerialize] += done - start
		h.Comp[FlowWire] += wire
		t.mark = done + wire
	} else {
		h.Comp[FlowWire] += wire
		h.Comp[FlowRoute] += route
		t.mark = start + wire + route
	}
	t.pend = FlowQueue
}

// FlightRecord is one entry of the anomaly flight recorder: a traced
// packet's transmission over a channel.
type FlightRecord struct {
	At   sim.Time
	Pkt  int64
	Chan int32
	Size int32
}

// FlowDump is one flight-recorder dump: either a dropped traced
// packet's own hop log (Trace != nil) or the recent traced transmits
// leading up to a fault epoch (Recent != nil).
type FlowDump struct {
	Reason string
	At     sim.Time
	Trace  *PacketTrace
	Recent []FlightRecord
}

// flowClassAcc is one shard's accumulator for one flow class (scenario
// phase, or "steady" for flag runs).
type flowClassAcc struct {
	count  int64 // traced packets delivered
	drops  int64 // traced packets dropped
	bytes  int64 // traced bytes delivered
	hops   int64 // hop records across traced deliveries
	sumLat sim.Time
	maxLat sim.Time
	comp   [FlowComponents]sim.Time

	// chanBytes[ch] is traced delivered bytes that crossed channel ch —
	// the join key for per-class energy attribution.
	chanBytes []int64
}

// flowShard is the single-writer state of one shard: touched only by
// the shard's worker inside a window or by the control plane while all
// workers are quiescent.
type flowShard struct {
	free      []*PacketTrace
	stats     []flowClassAcc
	exemplars []*PacketTrace // canonical slowest-K of this shard
	dumps     []*FlowDump    // canonical earliest drop dumps
	ring      []FlightRecord
	ringPos   int
	ringLen   int
	started   int64 // traces begun on this (injecting) shard
}

type flowClass struct {
	name string
	end  sim.Time // exclusive finish-time bound; the last class is open
}

// FlowCollector owns flow-tracing state for one network. Construct with
// NewFlowCollector, attach via fabric's SetFlowCollector, read with
// Snapshot at a quiescent point.
type FlowCollector struct {
	rate      float64
	all       bool
	threshold uint64
	seed      uint64
	nchans    int
	classes   []flowClass
	shards    []flowShard
	faults    []*FlowDump // fault-epoch dumps, control-plane only
}

// NewFlowCollector builds a collector for a network with the given
// shard and channel counts. sampleRate in (0, 1] is the fraction of
// packets traced; seed makes the sampled set reproducible and — being a
// pure function of packet ID — independent of the shard count.
func NewFlowCollector(shards, nchans int, sampleRate float64, seed int64) *FlowCollector {
	fc := &FlowCollector{
		rate:   sampleRate,
		all:    sampleRate >= 1,
		seed:   uint64(seed+1) * 0x9E3779B97F4A7C15,
		nchans: nchans,
		shards: make([]flowShard, shards),
	}
	if !fc.all {
		fc.threshold = uint64(sampleRate * float64(math.MaxUint64))
	}
	for i := range fc.shards {
		fc.shards[i].ring = make([]FlightRecord, flightRingCap)
	}
	fc.SetClasses([]string{"steady"}, []sim.Time{math.MaxInt64})
	return fc
}

// SampleRate returns the configured sampling fraction.
func (fc *FlowCollector) SampleRate() float64 { return fc.rate }

// SetClasses installs the flow classes (scenario phases): packets are
// classified by their finish time against ends, exactly as the phase
// scorecards classify deliveries. Call before the run starts; it resets
// the per-class accumulators.
func (fc *FlowCollector) SetClasses(names []string, ends []sim.Time) {
	fc.classes = fc.classes[:0]
	for i, name := range names {
		fc.classes = append(fc.classes, flowClass{name: name, end: ends[i]})
	}
	for s := range fc.shards {
		sh := &fc.shards[s]
		sh.stats = make([]flowClassAcc, len(fc.classes))
		for c := range sh.stats {
			sh.stats[c].chanBytes = make([]int64, fc.nchans)
		}
	}
}

func (fc *FlowCollector) classify(at sim.Time) int {
	idx := 0
	for idx < len(fc.classes)-1 && at >= fc.classes[idx].end {
		idx++
	}
	return idx
}

// Sampled reports whether the packet with this ID is traced: a
// splitmix64-style hash of the ID mixed with the seed, compared against
// the rate threshold. No RNG state — sampling one packet never
// perturbs any other draw in the simulation.
func (fc *FlowCollector) Sampled(id int64) bool {
	if fc.all {
		return true
	}
	z := uint64(id) + fc.seed
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z < fc.threshold
}

// StartTrace begins a hop log for a sampled packet injected on the
// given shard at now, recycling finished logs through per-shard free
// lists. Injection is control-plane only, so stealing a free trace from
// another shard's list is safe (mirroring the fabric's packet lists).
func (fc *FlowCollector) StartTrace(shard int, id, msgID int64, src, dst, size int, now sim.Time) *PacketTrace {
	sh := &fc.shards[shard]
	if len(sh.free) == 0 {
		for i := range fc.shards {
			if len(fc.shards[i].free) > 0 {
				sh = &fc.shards[i]
				break
			}
		}
	}
	var tr *PacketTrace
	if n := len(sh.free); n > 0 {
		tr = sh.free[n-1]
		sh.free = sh.free[:n-1]
		*tr = PacketTrace{}
	} else {
		tr = new(PacketTrace)
	}
	fc.shards[shard].started++
	tr.ID, tr.MsgID = id, msgID
	tr.Src, tr.Dst, tr.Size = src, dst, size
	tr.Inject = now
	tr.ArriveHop(^int32(src), now)
	return tr
}

// RecordTransmit feeds the flight recorder: a traced packet started
// crossing a channel. Called on the transmitting (src) shard.
func (fc *FlowCollector) RecordTransmit(shard int, at sim.Time, pkt int64, ch int32, size int32) {
	sh := &fc.shards[shard]
	sh.ring[sh.ringPos] = FlightRecord{At: at, Pkt: pkt, Chan: ch, Size: size}
	sh.ringPos++
	if sh.ringPos == flightRingCap {
		sh.ringPos = 0
	}
	if sh.ringLen < flightRingCap {
		sh.ringLen++
	}
}

// slower is the canonical exemplar order: longer latency first, then
// smaller packet ID.
func slower(a, b *PacketTrace) bool {
	la, lb := a.Latency(), b.Latency()
	if la != lb {
		return la > lb
	}
	return a.ID < b.ID
}

// earlierDump is the canonical dump order: earlier first, then smaller
// packet ID.
func earlierDump(a, b *FlowDump) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	var ia, ib int64
	if a.Trace != nil {
		ia = a.Trace.ID
	}
	if b.Trace != nil {
		ib = b.Trace.ID
	}
	return ia < ib
}

// FinishDeliver closes a delivered packet's log on the delivering
// shard: per-class sums, per-channel traced bytes, and the bounded
// slowest-exemplar set. The evicted log is recycled.
func (fc *FlowCollector) FinishDeliver(shard int, tr *PacketTrace, now sim.Time) {
	sh := &fc.shards[shard]
	tr.Done = now
	lat := tr.Latency()
	acc := &sh.stats[fc.classify(now)]
	acc.count++
	acc.bytes += int64(tr.Size)
	acc.hops += int64(tr.NHops)
	acc.sumLat += lat
	if lat > acc.maxLat {
		acc.maxLat = lat
	}
	for i := 0; i < tr.NHops; i++ {
		h := &tr.Hops[i]
		for c := range h.Comp {
			acc.comp[c] += h.Comp[c]
		}
		if h.Chan >= 0 {
			acc.chanBytes[h.Chan] += int64(tr.Size)
		}
	}
	// Keep the shard's canonical slowest-K; the global top-K is a
	// subset of the per-shard sets, so the merged result is identical
	// at any shard count.
	if len(sh.exemplars) < flowExemplarKeep {
		sh.exemplars = append(sh.exemplars, tr)
		return
	}
	weakest := 0
	for i := 1; i < len(sh.exemplars); i++ {
		if slower(sh.exemplars[weakest], sh.exemplars[i]) {
			weakest = i
		}
	}
	if slower(tr, sh.exemplars[weakest]) {
		sh.free = append(sh.free, sh.exemplars[weakest])
		sh.exemplars[weakest] = tr
		return
	}
	sh.free = append(sh.free, tr)
}

// FinishDrop closes a dropped packet's log on the dropping shard and
// feeds the flight recorder: the earliest drops (canonically ordered)
// are retained as dumps, hop log included.
func (fc *FlowCollector) FinishDrop(shard int, tr *PacketTrace, now sim.Time, why string) {
	sh := &fc.shards[shard]
	tr.Account(now)
	tr.Done = now
	tr.Dropped = true
	tr.DropWhy = why
	sh.stats[fc.classify(now)].drops++
	d := &FlowDump{Reason: "drop: " + why, At: now, Trace: tr}
	if len(sh.dumps) < flowDumpKeep {
		sh.dumps = append(sh.dumps, d)
		return
	}
	latest := 0
	for i := 1; i < len(sh.dumps); i++ {
		if earlierDump(sh.dumps[latest], sh.dumps[i]) {
			latest = i
		}
	}
	if earlierDump(d, sh.dumps[latest]) {
		sh.free = append(sh.free, sh.dumps[latest].Trace)
		sh.dumps[latest] = d
		return
	}
	sh.free = append(sh.free, tr)
}

// FaultDump snapshots the flight recorder at a fault epoch: the most
// recent traced transmits strictly before now, merged across shards in
// canonical order. Control-plane only (all shards quiescent). Transmits
// at exactly now have not executed yet in either serial or sharded
// mode, so the strict filter sees the same set everywhere.
func (fc *FlowCollector) FaultDump(reason string, now sim.Time) {
	if len(fc.faults) >= flowDumpMax {
		return
	}
	var recs []FlightRecord
	for s := range fc.shards {
		sh := &fc.shards[s]
		for i := 0; i < sh.ringLen; i++ {
			if r := sh.ring[i]; r.At < now {
				recs = append(recs, r)
			}
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].At != recs[j].At {
			return recs[i].At < recs[j].At
		}
		if recs[i].Pkt != recs[j].Pkt {
			return recs[i].Pkt < recs[j].Pkt
		}
		return recs[i].Chan < recs[j].Chan
	})
	if len(recs) > flightDumpRecent {
		recs = append([]FlightRecord(nil), recs[len(recs)-flightDumpRecent:]...)
	}
	fc.faults = append(fc.faults, &FlowDump{Reason: reason, At: now, Recent: recs})
}

// FlowClassStats is one class's merged latency decomposition.
type FlowClassStats struct {
	Name      string
	Count     int64 // traced packets delivered
	Drops     int64 // traced packets dropped
	Bytes     int64 // traced bytes delivered
	Hops      int64
	SumLat    sim.Time
	MaxLat    sim.Time
	Comp      [FlowComponents]sim.Time
	ChanBytes []int64 // traced delivered bytes per channel index
}

// FlowSnapshot is the merged, canonical view of a run's flow traces:
// identical for the same simulation at any shard count.
type FlowSnapshot struct {
	SampleRate float64
	Started    int64 // traces begun
	Delivered  int64
	Dropped    int64
	Classes    []FlowClassStats
	Exemplars  []*PacketTrace // globally slowest traced packets
	Dumps      []*FlowDump    // fault dumps then earliest drop dumps
}

// Snapshot merges the per-shard state. Call only at a quiescent point
// (between runs, or after the run completes). Aggregates merge by
// order-independent sums; exemplars and dumps by canonical sorts — the
// result is byte-identical across shard counts.
func (fc *FlowCollector) Snapshot() *FlowSnapshot {
	snap := &FlowSnapshot{
		SampleRate: fc.rate,
		Classes:    make([]FlowClassStats, len(fc.classes)),
	}
	for c := range fc.classes {
		cs := &snap.Classes[c]
		cs.Name = fc.classes[c].name
		cs.ChanBytes = make([]int64, fc.nchans)
	}
	var exemplars []*PacketTrace
	var drops []*FlowDump
	for s := range fc.shards {
		sh := &fc.shards[s]
		snap.Started += sh.started
		for c := range sh.stats {
			acc := &sh.stats[c]
			cs := &snap.Classes[c]
			cs.Count += acc.count
			cs.Drops += acc.drops
			cs.Bytes += acc.bytes
			cs.Hops += acc.hops
			cs.SumLat += acc.sumLat
			if acc.maxLat > cs.MaxLat {
				cs.MaxLat = acc.maxLat
			}
			for k := range acc.comp {
				cs.Comp[k] += acc.comp[k]
			}
			for ch, b := range acc.chanBytes {
				cs.ChanBytes[ch] += b
			}
		}
		exemplars = append(exemplars, sh.exemplars...)
		drops = append(drops, sh.dumps...)
	}
	for c := range snap.Classes {
		cs := &snap.Classes[c]
		snap.Delivered += cs.Count
		snap.Dropped += cs.Drops
	}
	sort.Slice(exemplars, func(i, j int) bool { return slower(exemplars[i], exemplars[j]) })
	if len(exemplars) > flowExemplarKeep {
		exemplars = exemplars[:flowExemplarKeep]
	}
	snap.Exemplars = exemplars
	sort.Slice(drops, func(i, j int) bool { return earlierDump(drops[i], drops[j]) })
	if len(drops) > flowDumpMax {
		drops = drops[:flowDumpMax]
	}
	snap.Dumps = append(append([]*FlowDump(nil), fc.faults...), drops...)
	return snap
}
