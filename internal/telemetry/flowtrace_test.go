package telemetry

import (
	"reflect"
	"testing"

	"epnet/internal/sim"
)

// TestFlowSampledShardIndependent pins the sampling contract: Sampled
// is a pure function of packet ID and seed — no RNG state, no shard
// dependence — so every shard count traces the identical flow set.
func TestFlowSampledShardIndependent(t *testing.T) {
	a := NewFlowCollector(1, 4, 0.25, 42)
	b := NewFlowCollector(8, 4, 0.25, 42)
	other := NewFlowCollector(1, 4, 0.25, 43)
	sampled, moved := 0, 0
	for id := int64(0); id < 4096; id++ {
		if a.Sampled(id) != b.Sampled(id) {
			t.Fatalf("pkt %d: sampling depends on the shard count", id)
		}
		if a.Sampled(id) {
			sampled++
		}
		if a.Sampled(id) != other.Sampled(id) {
			moved++
		}
	}
	// Hash sampling at rate 0.25 over 4096 IDs: loose bounds, the exact
	// set is pinned by the determinism matrix.
	if sampled < 820 || sampled > 1230 {
		t.Errorf("sampled %d of 4096 at rate 0.25", sampled)
	}
	if moved == 0 {
		t.Error("changing the seed did not move the sampled set")
	}
	full := NewFlowCollector(1, 4, 1, 7)
	for id := int64(0); id < 64; id++ {
		if !full.Sampled(id) {
			t.Fatalf("rate 1 skipped pkt %d", id)
		}
	}
}

// tus is a picosecond time at n microseconds.
func tus(n int64) sim.Time { return sim.Time(n) * sim.Microsecond }

// TestPacketTraceAccounting drives one trace through a two-hop journey
// by hand: every stall lands in its component and the components sum
// exactly to the end-to-end latency.
func TestPacketTraceAccounting(t *testing.T) {
	fc := NewFlowCollector(1, 4, 1, 1)
	tr := fc.StartTrace(0, 7, 1, 0, 9, 2048, tus(10))
	tr.Account(tus(12)) // 2us queued at the host
	tr.Block(FlowCredit)
	tr.Account(tus(15))                // 3us credit stall
	tr.WaitAvailable(tus(21), tus(19)) // 4us retuning, then 2us channel busy
	// Head to a switch: wire and routing separate this hop from the next.
	tr.Transmit(0, tus(21), tus(23), tus(1), tus(1), false)
	tr.ArriveHop(2, tus(23))
	tr.Account(tus(24)) // 1us queued at switch 2
	tr.Block(FlowCut)
	tr.Account(tus(25)) // 1us waiting on cut-through
	// To the destination host: serialization and wire are critical-path.
	tr.Transmit(1, tus(25), tus(27), tus(1), 0, true)
	fc.FinishDeliver(0, tr, tus(28))

	want := map[int]sim.Time{
		FlowQueue:     tus(3),
		FlowCredit:    tus(3),
		FlowRetune:    tus(4),
		FlowBusy:      tus(2),
		FlowCut:       tus(1),
		FlowSerialize: tus(2),
		FlowWire:      tus(2),
		FlowRoute:     tus(1),
	}
	var sum sim.Time
	for c, w := range want {
		if got := tr.TotalComp(c); got != w {
			t.Errorf("%s = %v, want %v", FlowComponentNames[c], got, w)
		}
		sum += tr.TotalComp(c)
	}
	if lat := tr.Latency(); sum != lat || lat != tus(18) {
		t.Errorf("components sum to %v, latency %v, want 18us", sum, lat)
	}

	snap := fc.Snapshot()
	cs := snap.Classes[0]
	if cs.Count != 1 || cs.Bytes != 2048 || cs.Hops != 2 || cs.SumLat != tus(18) {
		t.Errorf("class stats = %+v", cs)
	}
	if cs.ChanBytes[0] != 2048 || cs.ChanBytes[1] != 2048 {
		t.Errorf("per-channel traced bytes = %v", cs.ChanBytes)
	}
	if len(snap.Exemplars) != 1 || snap.Exemplars[0].ID != 7 {
		t.Errorf("exemplars = %+v", snap.Exemplars)
	}
}

// finishTrivial pushes one packet through a minimal journey on the
// given shard, with latency scaled by the ID so exemplar ranking has
// distinct keys.
func finishTrivial(fc *FlowCollector, shard int, id int64) {
	tr := fc.StartTrace(shard, id, id, 0, 1, 256, tus(id))
	tr.Account(tus(id + 1 + id%5))
	tr.Transmit(0, tus(id+1+id%5), tus(id+2+id%5), 0, 0, true)
	fc.FinishDeliver(shard, tr, tus(id+2+id%5))
}

// TestFlowSnapshotShardCountInvariant pins the merge: the same traced
// packets finished on one shard or spread across four produce deeply
// equal snapshots — class sums, canonical exemplar set, dump order.
func TestFlowSnapshotShardCountInvariant(t *testing.T) {
	serial := NewFlowCollector(1, 2, 1, 1)
	sharded := NewFlowCollector(4, 2, 1, 1)
	for id := int64(0); id < 64; id++ {
		finishTrivial(serial, 0, id)
		finishTrivial(sharded, int(id%4), id)
	}
	a, b := serial.Snapshot(), sharded.Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("snapshots diverge across shard counts:\nserial:  %+v\nsharded: %+v", a, b)
	}
	if len(a.Exemplars) != flowExemplarKeep {
		t.Errorf("exemplars = %d, want the slowest %d", len(a.Exemplars), flowExemplarKeep)
	}
	for i := 1; i < len(a.Exemplars); i++ {
		if slower(a.Exemplars[i], a.Exemplars[i-1]) {
			t.Errorf("exemplar %d out of canonical order", i)
		}
	}
}

// TestFaultDumpStrictlyBefore pins the flight recorder's fault filter:
// a dump at the fault instant includes only transmits strictly before
// it — transmits at exactly the epoch have not executed in either the
// serial or the sharded engine.
func TestFaultDumpStrictlyBefore(t *testing.T) {
	fc := NewFlowCollector(2, 2, 1, 1)
	fc.RecordTransmit(0, tus(1), 10, 0, 256)
	fc.RecordTransmit(1, tus(2), 11, 1, 256)
	fc.RecordTransmit(0, tus(3), 12, 0, 256) // at the epoch: excluded
	fc.FaultDump("fault: channel c0 failed", tus(3))
	snap := fc.Snapshot()
	if len(snap.Dumps) != 1 {
		t.Fatalf("dumps = %d, want 1", len(snap.Dumps))
	}
	d := snap.Dumps[0]
	if d.Reason != "fault: channel c0 failed" || d.At != tus(3) {
		t.Errorf("dump = %+v", d)
	}
	if len(d.Recent) != 2 {
		t.Fatalf("recent transmits = %d, want the 2 strictly before the fault", len(d.Recent))
	}
	for _, r := range d.Recent {
		if r.At >= tus(3) {
			t.Errorf("transmit at %v leaked into a dump at %v", r.At, tus(3))
		}
	}
}
