package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"epnet/internal/sim"
)

// Sampler periodically snapshots a registry's metrics into an
// in-memory time series. It is driven by the simulation engine: Start
// schedules a self-rescheduling tick every interval up to a horizon,
// and Finish takes one final sample covering the partial last interval
// when the simulation ends off the tick grid.
type Sampler struct {
	reg      *Registry
	interval sim.Time

	// OnSample, if set before Start, is invoked after each row is
	// captured (baseline, every tick, and the Finish sample). It runs
	// on the engine thread, so it may read simulation state safely —
	// the live-inspection publisher hangs off this hook.
	OnSample func(now sim.Time)

	names  []string
	times  []sim.Time
	rows   [][]float64
	lastAt sim.Time
	tick   sim.Event
}

// NewSampler returns a sampler reading reg every interval.
func NewSampler(reg *Registry, interval sim.Time) (*Sampler, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("telemetry: sample interval must be positive, got %v", interval)
	}
	return &Sampler{reg: reg, interval: interval}, nil
}

// Start locks in the registry's current metric set (metrics registered
// later are not sampled), takes an immediate baseline sample, and
// schedules ticks every interval while the next tick is <= until.
//
// The <= comparison plus Engine.RunUntil's fire-events-at-deadline
// semantics guarantee a row at exactly until when the horizon is an
// integer multiple of the interval — the final boundary sample is
// never skipped (pinned by TestSamplerBoundaryRow).
func (s *Sampler) Start(e *sim.Engine, until sim.Time) {
	s.names = s.reg.Names()
	s.sample(e.Now())
	s.tick = func(now sim.Time) {
		s.sample(now)
		if next := now + s.interval; next <= until {
			e.At(next, s.tick)
		}
	}
	if next := e.Now() + s.interval; next <= until {
		e.At(next, s.tick)
	}
}

// Finish takes a final sample at now unless a tick already sampled
// that instant — the partial-last-interval case: a horizon that is not
// a multiple of the interval still gets an end-of-run data point.
func (s *Sampler) Finish(now sim.Time) {
	if len(s.times) > 0 && s.lastAt == now {
		return
	}
	s.sample(now)
}

// sample appends one row of metric values at time now.
func (s *Sampler) sample(now sim.Time) {
	row := make([]float64, len(s.names))
	s.reg.ReadInto(row)
	s.times = append(s.times, now)
	s.rows = append(s.rows, row)
	s.lastAt = now
	if s.OnSample != nil {
		s.OnSample(now)
	}
}

// Samples returns the number of rows collected.
func (s *Sampler) Samples() int { return len(s.rows) }

// Times returns the sample timestamps.
func (s *Sampler) Times() []sim.Time { return s.times }

// Names returns the sampled metric names (fixed at Start).
func (s *Sampler) Names() []string { return s.names }

// Row returns the i-th sample's values, ordered like Names.
func (s *Sampler) Row(i int) []float64 { return s.rows[i] }

// fmtValue renders a metric value compactly and losslessly.
func fmtValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteCSV streams the series as CSV: a header of t_us followed by the
// metric names, then one row per sample with time in microseconds.
func (s *Sampler) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("t_us")
	for _, n := range s.names {
		bw.WriteByte(',')
		bw.WriteString(n)
	}
	bw.WriteByte('\n')
	for i, t := range s.times {
		bw.WriteString(strconv.FormatFloat(t.Microseconds(), 'f', -1, 64))
		for _, v := range s.rows[i] {
			bw.WriteByte(',')
			bw.WriteString(fmtValue(v))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteJSONL streams the series as JSON Lines: one object per sample,
// {"t_us": <time>, "metrics": {<name>: <value>, ...}}, with metrics in
// registration order (names never need escaping beyond %q).
func (s *Sampler) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, t := range s.times {
		fmt.Fprintf(bw, `{"t_us":%s,"metrics":{`, strconv.FormatFloat(t.Microseconds(), 'f', -1, 64))
		for j, n := range s.names {
			if j > 0 {
				bw.WriteByte(',')
			}
			fmt.Fprintf(bw, "%q:%s", n, fmtValue(s.rows[i][j]))
		}
		bw.WriteString("}}\n")
	}
	return bw.Flush()
}
