package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"epnet/internal/sim"
)

// Heatmap samples per-row cumulative busy time on a fixed interval and
// stores the per-interval utilization of each row — one row per link,
// one column per sample interval. Rows provide a monotonically
// increasing busy-time reading (link.Channel.BusyTime), so each cell
// is (Δbusy / Δt) ∈ [0, 1] for the interval ending at the column's
// timestamp. Like the Sampler it is driven by the simulation engine
// and is deterministic for a deterministic run.
type Heatmap struct {
	interval sim.Time

	labels []string
	read   []func(now sim.Time) sim.Time // cumulative busy time per row
	prev   []sim.Time
	prevAt sim.Time
	times  []sim.Time  // column end times
	cols   [][]float64 // cols[j][i] = utilization of row i over (times[j-1], times[j]]
	tick   sim.Event
}

// NewHeatmap returns a heatmap sampling every interval.
func NewHeatmap(interval sim.Time) (*Heatmap, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("telemetry: heatmap interval must be positive, got %v", interval)
	}
	return &Heatmap{interval: interval}, nil
}

// AddRow registers one row before Start: a display label and a reader
// returning cumulative busy time at the given instant.
func (h *Heatmap) AddRow(label string, busy func(now sim.Time) sim.Time) {
	h.labels = append(h.labels, label)
	h.read = append(h.read, busy)
}

// Start records the busy-time baseline at the current instant and
// schedules a column capture every interval while the next tick is
// <= until; the tick at exactly until fires before the engine stops
// (see Sampler.Start for the boundary guarantee).
func (h *Heatmap) Start(e *sim.Engine, until sim.Time) {
	h.prev = make([]sim.Time, len(h.read))
	h.prevAt = e.Now()
	for i, f := range h.read {
		h.prev[i] = f(h.prevAt)
	}
	h.tick = func(now sim.Time) {
		h.column(now)
		if next := now + h.interval; next <= until {
			e.At(next, h.tick)
		}
	}
	if next := e.Now() + h.interval; next <= until {
		e.At(next, h.tick)
	}
}

// Finish captures a final partial column if the run ended off the tick
// grid.
func (h *Heatmap) Finish(now sim.Time) {
	if now > h.prevAt {
		h.column(now)
	}
}

// column appends one utilization column covering (prevAt, now].
func (h *Heatmap) column(now sim.Time) {
	dt := now - h.prevAt
	if dt <= 0 {
		return
	}
	col := make([]float64, len(h.read))
	for i, f := range h.read {
		busy := f(now)
		u := float64(busy-h.prev[i]) / float64(dt)
		if u < 0 {
			u = 0
		} else if u > 1 {
			u = 1
		}
		col[i] = u
		h.prev[i] = busy
	}
	h.times = append(h.times, now)
	h.cols = append(h.cols, col)
	h.prevAt = now
}

// Rows returns the number of rows (links).
func (h *Heatmap) Rows() int { return len(h.labels) }

// Cols returns the number of captured columns (intervals).
func (h *Heatmap) Cols() int { return len(h.times) }

// Cell returns the utilization of row i over the j-th interval.
func (h *Heatmap) Cell(i, j int) float64 { return h.cols[j][i] }

// WriteCSV streams the heatmap as CSV: a header of "link" followed by
// each column's end time in microseconds, then one row per link with
// its per-interval utilizations.
func (h *Heatmap) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("link")
	for _, t := range h.times {
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatFloat(t.Microseconds(), 'f', -1, 64))
	}
	bw.WriteByte('\n')
	for i, label := range h.labels {
		bw.WriteString(label)
		for j := range h.times {
			bw.WriteByte(',')
			bw.WriteString(fmtValue(h.cols[j][i]))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// UtilizationHistogram folds every cell of the heatmap into a
// histogram with the given bucket upper bounds — the paper's Fig 8
// view: how often links sit at each utilization level, over all links
// and all sample intervals.
func (h *Heatmap) UtilizationHistogram(uppers []float64) (*Histogram, error) {
	hist, err := NewHistogram(uppers)
	if err != nil {
		return nil, err
	}
	for _, col := range h.cols {
		for _, u := range col {
			hist.Observe(u)
		}
	}
	return hist, nil
}
