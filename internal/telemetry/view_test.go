package telemetry

import (
	"strings"
	"testing"
)

// TestHistogramView verifies that a view histogram recomputes its state
// from the refresh hook on every read path: registry series, direct
// accessors, and the Prometheus render.
func TestHistogramView(t *testing.T) {
	r := NewRegistry()
	// Backing data a refresh merges — stand-in for per-shard
	// accumulators in the sharded fabric.
	parts := [][]int64{
		{1, 0, 2}, // bucket counts incl. +Inf, shard 0
		{0, 3, 1}, // shard 1
	}
	sums := []float64{10, 20}
	merged := make([]int64, 3)
	refresh := func(h *Histogram) {
		var n int64
		var sum float64
		for i := range merged {
			merged[i] = 0
		}
		for s, p := range parts {
			for i, c := range p {
				merged[i] += c
				n += c
			}
			sum += sums[s]
		}
		h.SetState(merged, sum, n)
	}
	h, err := r.HistogramView("lat", []float64{1, 2}, refresh)
	if err != nil {
		t.Fatal(err)
	}

	if got := h.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	if got := h.Sum(); got != 30 {
		t.Fatalf("Sum = %g, want 30", got)
	}
	_, counts := h.Buckets()
	for i, want := range []int64{1, 3, 3} {
		if counts[i] != want {
			t.Fatalf("bucket %d = %d, want %d", i, counts[i], want)
		}
	}

	// Mutate the backing data; the next read must see it.
	parts[0][0] = 5
	sums[0] = 100
	vals := make([]float64, r.Len())
	r.ReadInto(vals)
	found := 0
	for i, name := range r.Names() {
		switch name {
		case "lat.count":
			found++
			if vals[i] != 11 {
				t.Fatalf("lat.count = %g, want 11", vals[i])
			}
		case "lat.sum":
			found++
			if vals[i] != 120 {
				t.Fatalf("lat.sum = %g, want 120", vals[i])
			}
		}
	}
	if found != 2 {
		t.Fatalf("registry exposed %d of the 2 view series", found)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `lat_bucket{le="+Inf"} 11`) {
		t.Fatalf("Prometheus render missing refreshed +Inf bucket:\n%s", sb.String())
	}
}

// TestSetStateLengthMismatch verifies the defensive length check.
func TestSetStateLengthMismatch(t *testing.T) {
	h, err := NewHistogram([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetState with wrong length did not panic")
		}
	}()
	h.SetState([]int64{1, 2, 3}, 0, 0)
}
