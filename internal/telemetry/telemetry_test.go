package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"epnet/internal/sim"
)

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	c, err := r.Counter("net.pkts")
	if err != nil {
		t.Fatal(err)
	}
	g, err := r.Gauge("net.backlog")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.GaugeFunc("net.twice", func() float64 { return 2 * g.Value() }); err != nil {
		t.Fatal(err)
	}
	c.Inc()
	c.Add(4)
	g.Set(3.5)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	want := []string{"net.pkts", "net.backlog", "net.twice"}
	if got := r.Names(); len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("Names = %v, want %v", got, want)
	}
	vals := make([]float64, r.Len())
	r.ReadInto(vals)
	if vals[0] != 5 || vals[1] != 3.5 || vals[2] != 7 {
		t.Errorf("ReadInto = %v", vals)
	}
}

func TestRegistryCollisionRejected(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Counter("link.0.rate"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Counter("link.0.rate"); err == nil {
		t.Error("duplicate counter name accepted")
	}
	if _, err := r.Gauge("link.0.rate"); err == nil {
		t.Error("gauge colliding with counter accepted")
	}
	if err := r.GaugeFunc("link.0.rate", func() float64 { return 0 }); err == nil {
		t.Error("gauge func colliding with counter accepted")
	}
	if _, err := r.Counter(""); err == nil {
		t.Error("empty name accepted")
	}
	if r.Len() != 1 {
		t.Errorf("failed registrations mutated the registry: Len = %d", r.Len())
	}
}

func TestNilMetricsSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	c.Inc()
	c.Add(7)
	g.Set(1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil metrics should read zero")
	}
}

// TestZeroAllocIncrements asserts the hot-path operations allocate
// nothing — the property that lets instrumentation stay enabled in
// per-packet code.
func TestZeroAllocIncrements(t *testing.T) {
	r := NewRegistry()
	c, _ := r.Counter("c")
	g, _ := r.Gauge("g")
	var nilC *Counter
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(4.2)
		nilC.Inc()
	}); n != 0 {
		t.Errorf("hot-path metric ops allocate %v allocs/op, want 0", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c, _ := r.Counter("bench.counter")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	r := NewRegistry()
	g, _ := r.Gauge("bench.gauge")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

// TestSamplerPartialLastInterval drives a sampler through a horizon
// that is not a multiple of the interval: ticks land on the grid and
// Finish adds the partial final sample exactly once.
func TestSamplerPartialLastInterval(t *testing.T) {
	e := sim.New()
	r := NewRegistry()
	if err := r.GaugeFunc("sim.now_us", func() float64 { return e.Now().Microseconds() }); err != nil {
		t.Fatal(err)
	}
	const interval = 10 * sim.Microsecond
	const horizon = 25 * sim.Microsecond
	s, err := NewSampler(r, interval)
	if err != nil {
		t.Fatal(err)
	}
	s.Start(e, horizon)
	e.RunUntil(horizon)
	s.Finish(e.Now())

	want := []sim.Time{0, 10 * sim.Microsecond, 20 * sim.Microsecond, horizon}
	times := s.Times()
	if len(times) != len(want) {
		t.Fatalf("samples = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("sample %d at %v, want %v", i, times[i], want[i])
		}
		if got := s.Row(i)[0]; got != want[i].Microseconds() {
			t.Errorf("sample %d value %v, want %v", i, got, want[i].Microseconds())
		}
	}
	// Finish on a horizon that coincides with the last tick must not
	// produce a duplicate row.
	before := s.Samples()
	s.Finish(horizon)
	if s.Samples() != before {
		t.Error("Finish duplicated the final sample")
	}
}

func TestSamplerRejectsBadInterval(t *testing.T) {
	if _, err := NewSampler(NewRegistry(), 0); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewSampler(NewRegistry(), -sim.Microsecond); err == nil {
		t.Error("negative interval accepted")
	}
}

func TestSamplerCSVAndJSONL(t *testing.T) {
	e := sim.New()
	r := NewRegistry()
	c, _ := r.Counter("net.pkts")
	s, err := NewSampler(r, 5*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	s.Start(e, 10*sim.Microsecond)
	c.Add(3)
	e.RunUntil(10 * sim.Microsecond)
	s.Finish(e.Now())

	var csv bytes.Buffer
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 4 { // header + t=0,5,10us
		t.Fatalf("CSV lines = %d:\n%s", len(lines), csv.String())
	}
	if lines[0] != "t_us,net.pkts" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if lines[1] != "0,0" || lines[2] != "5,3" || lines[3] != "10,3" {
		t.Errorf("CSV rows = %q", lines[1:])
	}

	var jl bytes.Buffer
	if err := s.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	jlines := strings.Split(strings.TrimSpace(jl.String()), "\n")
	if len(jlines) != 3 {
		t.Fatalf("JSONL lines = %d", len(jlines))
	}
	// Every line is a standalone JSON object.
	for i, line := range jlines {
		var obj struct {
			TUs     float64            `json:"t_us"`
			Metrics map[string]float64 `json:"metrics"`
		}
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if _, ok := obj.Metrics["net.pkts"]; !ok {
			t.Errorf("line %d missing metric: %s", i, line)
		}
	}
}

// TestTracerJSONRoundTrip validates the emitted Chrome trace against
// encoding/json: the full stream must parse as an array of objects
// with the trace_event schema's fields.
func TestTracerJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.MetaProcessName(PIDPackets, "packets")
	tr.MetaThreadName(PIDLinks, 0, `link "s0p1->s1p0"`) // quotes must escape
	tr.Complete("2.5Gb/s->5Gb/s", "retune", PIDLinks, 0,
		10*sim.Microsecond, sim.Microsecond, `"from_gbps":2.5,"to_gbps":5`)
	tr.Instant("inject", "traffic", PIDPackets, 3, 1500*sim.Nanosecond, `"bytes":2048`)
	tr.AsyncSpan("pkt", "packet", PIDPackets, 42,
		sim.Microsecond, 3*sim.Microsecond, `"src":1,"dst":2`)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != 6 { // async span = 2 events
		t.Errorf("events = %d, want 6", tr.Events())
	}

	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 6 {
		t.Fatalf("parsed %d events, want 6", len(events))
	}
	// Spot-check the complete event's schema and precision.
	var retune map[string]any
	for _, ev := range events {
		if ev["ph"] == "X" {
			retune = ev
		}
	}
	if retune == nil {
		t.Fatal("no complete event found")
	}
	if retune["ts"].(float64) != 10 || retune["dur"].(float64) != 1 {
		t.Errorf("ts/dur = %v/%v, want 10/1 us", retune["ts"], retune["dur"])
	}
	args := retune["args"].(map[string]any)
	if args["to_gbps"].(float64) != 5 {
		t.Errorf("args = %v", args)
	}
	// Begin/end async events pair up by id.
	var b, e int
	for _, ev := range events {
		switch ev["ph"] {
		case "b":
			b++
		case "e":
			e++
		}
	}
	if b != 1 || e != 1 {
		t.Errorf("async begin/end = %d/%d, want 1/1", b, e)
	}
}

func TestTracerEmptyClose(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
	if len(events) != 0 {
		t.Errorf("empty trace has %d events", len(events))
	}
}
