package fault

import (
	"testing"
	"time"

	"epnet/internal/fabric"
	"epnet/internal/link"
	"epnet/internal/routing"
	"epnet/internal/sim"
	"epnet/internal/topo"
)

func TestParseSchedule(t *testing.T) {
	sched, err := ParseSchedule(
		"50us fail-link s0p8; 100us degrade-link s1p9 10;" +
			" 200us restore-link s1p9; 400us repair-link s0p8;" +
			" 500us fail-switch 3; 600us repair-switch 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 6 {
		t.Fatalf("parsed %d events, want 6", len(sched))
	}
	want := []Event{
		{At: 50 * time.Microsecond, Kind: FailLink, Sw: 0, Port: 8},
		{At: 100 * time.Microsecond, Kind: DegradeLink, Sw: 1, Port: 9, CapGbps: 10},
		{At: 200 * time.Microsecond, Kind: RestoreLink, Sw: 1, Port: 9},
		{At: 400 * time.Microsecond, Kind: RepairLink, Sw: 0, Port: 8},
		{At: 500 * time.Microsecond, Kind: FailSwitch, Sw: 3, Port: -1},
		{At: 600 * time.Microsecond, Kind: RepairSwitch, Sw: 3, Port: -1},
	}
	for i, ev := range sched {
		if ev != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
	if got := sched[1].Cap(); got != link.Rate10G {
		t.Errorf("degrade cap = %v, want %v", got, link.Rate10G)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	cases := []string{
		"",                          // empty schedule
		";;",                        // only separators
		"fail-link s0p1",            // missing offset
		"xx fail-link s0p1",         // bad offset
		"-5us fail-link s0p1",       // negative offset
		"10us explode s0p1",         // unknown verb
		"10us fail-link",            // missing target
		"10us fail-link s0p1 40",    // extra arg for non-degrade
		"10us degrade-link s0p1",    // missing cap
		"10us degrade-link s0p1 -4", // negative cap
		"10us fail-link 3",          // switch target for link verb
		"10us fail-link sXp1",       // bad switch index
		"10us fail-link s0pY",       // bad port
		"10us fail-switch s0p1",     // link target for switch verb
		"10us fail-switch -1",       // negative switch
	}
	for _, s := range cases {
		if _, err := ParseSchedule(s); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", s)
		}
	}
}

// newTestNet builds a 4-ary 2-flat (4 switches in one fully connected
// dimension, 2 hosts each) with its adaptive router and injector.
func newTestNet(t testing.TB) (*sim.Engine, *fabric.Network, *routing.FBFLY, *Injector) {
	t.Helper()
	e := sim.New()
	f := topo.MustFBFLY(4, 2, 2)
	r := routing.NewFBFLY(f)
	n, err := fabric.New(e, f, r, fabric.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e, n, r, New(n, r)
}

// injectAllPairs offers one message from every host to every other.
func injectAllPairs(n *fabric.Network, bytes int) {
	hosts := n.T.NumHosts()
	for s := 0; s < hosts; s++ {
		for d := 0; d < hosts; d++ {
			if s != d {
				n.InjectMessage(s, d, bytes)
			}
		}
	}
}

func conserve(t *testing.T, n *fabric.Network) (delivered, dropped int64) {
	t.Helper()
	inj, _ := n.Injected()
	delivered, _ = n.Delivered()
	dropped, _ = n.Dropped()
	if delivered+dropped != inj {
		t.Errorf("conservation: delivered %d + dropped %d != injected %d",
			delivered, dropped, inj)
	}
	return delivered, dropped
}

// TestRingModeRoutesAroundDeadLink degrades the switch dimension to a
// ring and kills one ring link: every packet must still deliver by
// going the other way around (the arc-walk candidates).
func TestRingModeRoutesAroundDeadLink(t *testing.T) {
	e, n, r, inj := newTestNet(t)
	f := n.T.(*topo.FBFLY)
	r.SetMode(0, routing.DimRing)
	// Kill the ring link between coordinates 1 and 2.
	if !inj.FailLink(0, 1, f.PortToPeer(1, 0, 2)) {
		t.Fatal("FailLink refused")
	}
	injectAllPairs(n, 4096)
	e.Run()
	delivered, dropped := conserve(t, n)
	if dropped != 0 {
		t.Errorf("dropped %d packets, want 0 (failure predates injection)", dropped)
	}
	if injected, _ := n.Injected(); delivered != injected {
		t.Errorf("delivered %d of %d", delivered, injected)
	}
}

// TestFullModeDegradesToLine fails links until the fully connected
// dimension is the line 0-1-2-3; misrouting must still deliver every
// packet hop by hop.
func TestFullModeDegradesToLine(t *testing.T) {
	e, n, _, inj := newTestNet(t)
	f := n.T.(*topo.FBFLY)
	for _, pair := range [][2]int{{0, 2}, {0, 3}, {1, 3}} {
		if !inj.FailLink(0, pair[0], f.PortToPeer(pair[0], 0, pair[1])) {
			t.Fatalf("FailLink(%v) refused", pair)
		}
	}
	if inj.Stats.LinkFailures != 3 || inj.LinksDown() != 3 {
		t.Fatalf("failures = %d, down = %d", inj.Stats.LinkFailures, inj.LinksDown())
	}
	injectAllPairs(n, 4096)
	e.Run()
	delivered, dropped := conserve(t, n)
	if dropped != 0 {
		t.Errorf("dropped %d packets, want 0", dropped)
	}
	if injected, _ := n.Injected(); delivered != injected {
		t.Errorf("delivered %d of %d", delivered, injected)
	}
}

// TestRepairRestoresService fails a link, repairs it, and checks the
// repaired link carries traffic again at the expected rate.
func TestRepairRestoresService(t *testing.T) {
	e, n, _, inj := newTestNet(t)
	f := n.T.(*topo.FBFLY)
	port := f.PortToPeer(0, 0, 1)
	if !inj.FailLink(0, 0, port) {
		t.Fatal("FailLink refused")
	}
	if inj.FailLink(0, 0, port) {
		t.Error("second FailLink on a down link succeeded")
	}
	if !inj.RepairLink(10*sim.Microsecond, 0, port) {
		t.Fatal("RepairLink refused")
	}
	if inj.LinksDown() != 0 {
		t.Errorf("links down = %d after repair", inj.LinksDown())
	}
	pr, _ := inj.PairAt(0, port)
	for _, ch := range pr {
		if ch.Failed() {
			t.Error("channel still failed after repair")
		}
		if got := ch.L.Rate(); got != n.Cfg.Ladder.Max() {
			t.Errorf("repaired rate = %v, want ladder max %v", got, n.Cfg.Ladder.Max())
		}
	}
	injectAllPairs(n, 2048)
	e.Run()
	if _, dropped := conserve(t, n); dropped != 0 {
		t.Errorf("dropped %d after repair", dropped)
	}
}

// TestDegradeCapsRate pins a link below full rate and checks the cap
// is applied, clamps SetRate, and lifts on restore.
func TestDegradeCapsRate(t *testing.T) {
	_, n, _, inj := newTestNet(t)
	f := n.T.(*topo.FBFLY)
	port := f.PortToPeer(0, 0, 1)
	if !inj.DegradeLink(0, 0, port, link.Rate10G) {
		t.Fatal("DegradeLink refused")
	}
	pr, _ := inj.PairAt(0, port)
	for _, ch := range pr {
		if got := ch.L.Rate(); got > link.Rate10G {
			t.Errorf("degraded rate = %v above cap", got)
		}
		ch.L.SetRate(sim.Microsecond, link.Rate40G, 0)
		if got := ch.L.Rate(); got != link.Rate10G {
			t.Errorf("SetRate above cap trained to %v, want clamp at 10G", got)
		}
	}
	inj.RestoreRate = n.Cfg.Ladder.Max()
	if !inj.RestoreLink(2*sim.Microsecond, 0, port) {
		t.Fatal("RestoreLink refused")
	}
	for _, ch := range pr {
		if got := ch.L.Rate(); got != link.Rate40G {
			t.Errorf("restored rate = %v, want 40G", got)
		}
	}
	if inj.Stats.LaneDegradations != 1 || inj.Stats.LaneRestores != 1 {
		t.Errorf("stats = %+v", inj.Stats)
	}
}

// TestSwitchCrashDropsAndRepairs crashes a switch mid-traffic: packets
// to its hosts drop, everything else delivers, and conservation holds
// exactly after the drain.
func TestSwitchCrashDropsAndRepairs(t *testing.T) {
	e, n, _, inj := newTestNet(t)
	if !inj.FailSwitch(0, 3) {
		t.Fatal("FailSwitch refused")
	}
	if inj.FailSwitch(0, 3) {
		t.Error("second FailSwitch succeeded")
	}
	if !n.SwitchDead(3) {
		t.Error("switch 3 not marked dead")
	}
	injectAllPairs(n, 2048)
	e.Run()
	delivered, dropped := conserve(t, n)
	if dropped == 0 {
		t.Error("no packets dropped with a crashed destination switch")
	}
	// Hosts 6,7 are on switch 3: 2x6 inbound single-packet messages
	// from live hosts drop (plus the crashed hosts' own traffic, which
	// dies on its first live hop or at the local switch).
	if delivered == 0 {
		t.Error("nothing delivered around the crashed switch")
	}

	if !inj.RepairSwitch(e.Now()+sim.Microsecond, 3) {
		t.Fatal("RepairSwitch refused")
	}
	if inj.LinksDown() != 0 {
		t.Errorf("links still down after switch repair: %d", inj.LinksDown())
	}
	injectAllPairs(n, 2048)
	e.Run()
	if _, droppedAfter := conserve(t, n); droppedAfter != dropped {
		t.Errorf("new drops after switch repair: %d -> %d", dropped, droppedAfter)
	}
}

// TestApplyValidatesTargets rejects schedules naming nonexistent links,
// off-ladder caps, and out-of-range switches before scheduling anything.
func TestApplyValidatesTargets(t *testing.T) {
	_, _, _, inj := newTestNet(t)
	for _, s := range []string{
		"10us fail-link s0p0",      // host port, not inter-switch
		"10us fail-link s9p4",      // no such switch endpoint
		"10us degrade-link s0p4 7", // 7 Gb/s not on the ladder
		"10us fail-switch 11",      // out of range
	} {
		sched, err := ParseSchedule(s)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", s, err)
		}
		if err := inj.Apply(0, sched); err == nil {
			t.Errorf("Apply(%q) accepted", s)
		}
	}
}

// TestRandomFaultsConserveAndReplay runs a dense seeded fault storm
// under traffic and checks (a) exact packet conservation after drain
// and (b) bit-identical replay for the same seed.
func TestRandomFaultsConserveAndReplay(t *testing.T) {
	type outcome struct {
		delivered, dropped int64
		stats              Stats
	}
	run := func(seed int64) outcome {
		e, n, _, inj := newTestNet(t)
		horizon := 2 * sim.Millisecond
		inj.StartRandom(0, horizon, 5, 50*sim.Microsecond, seed)
		// Waves of all-pairs traffic through the fault window.
		for i := 0; i < 8; i++ {
			at := sim.Time(i) * 200 * sim.Microsecond
			e.At(at, func(sim.Time) { injectAllPairs(n, 4096) })
		}
		e.Run()
		delivered, dropped := conserve(t, n)
		return outcome{delivered, dropped, inj.Stats}
	}
	a, b := run(7), run(7)
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.stats.LinkFailures == 0 {
		t.Error("fault storm produced no link failures")
	}
	if c := run(8); c == a {
		t.Error("different seed produced an identical run (suspicious)")
	}
}
