package fault

import (
	"testing"

	"epnet/internal/sim"
	"epnet/internal/telemetry"
	"epnet/internal/topo"
)

// readMetrics snapshots a registry into a name -> value map.
func readMetrics(reg *telemetry.Registry) map[string]float64 {
	vals := make([]float64, reg.Len())
	reg.ReadInto(vals)
	out := make(map[string]float64, len(vals))
	for i, name := range reg.Names() {
		out[name] = vals[i]
	}
	return out
}

// TestOutagesAndDropReconciliation fails a link and a switch while
// traffic is in flight, then checks the three accounting views agree:
// the live Outages() spans, the fault.* metric counters, and the
// per-channel drop counters (which, plus the unattributed remainder,
// must equal the network's total drop count exactly).
func TestOutagesAndDropReconciliation(t *testing.T) {
	e, n, _, inj := newTestNet(t)
	f := n.T.(*topo.FBFLY)
	reg := telemetry.NewRegistry()
	if err := inj.RegisterMetrics(reg); err != nil {
		t.Fatal(err)
	}

	const failAt = 2 * sim.Microsecond
	port := f.PortToPeer(0, 0, 1)
	var midOutages []Outage
	e.At(failAt, func(now sim.Time) {
		if !inj.FailLink(now, 0, port) {
			t.Error("FailLink refused")
		}
		if !inj.FailSwitch(now, 3) {
			t.Error("FailSwitch refused")
		}
		midOutages = inj.Outages()
	})
	injectAllPairs(n, 65536) // big messages: plenty in flight at failAt
	e.Run()

	_, dropped := conserve(t, n)
	if dropped == 0 {
		t.Fatal("schedule dropped nothing; test is vacuous")
	}

	// Every drop is attributed to the last channel the packet crossed,
	// or counted as unattributed when it never crossed one.
	var chDrops int64
	for _, ch := range n.Channels() {
		chDrops += ch.Drops()
	}
	if chDrops+n.UnattributedDrops() != dropped {
		t.Errorf("drop attribution: per-channel %d + unattributed %d != total %d",
			chDrops, n.UnattributedDrops(), dropped)
	}
	if chDrops == 0 {
		t.Error("no drops carried channel context; attribution untested")
	}

	// Outages: the explicit link plus switch 3's incident pairs, all
	// down since failAt, in deterministic wiring order.
	if len(midOutages) != inj.LinksDown() {
		t.Errorf("outages = %d, links down = %d", len(midOutages), inj.LinksDown())
	}
	wantLabel, _ := inj.PairAt(0, port)
	found := false
	for _, out := range midOutages {
		if out.Since != failAt {
			t.Errorf("outage %s since %v, want %v", out.Link, out.Since, failAt)
		}
		if out.Link == wantLabel[0].Label() {
			found = true
		}
	}
	if !found {
		t.Errorf("explicitly failed link %s missing from outages %v",
			wantLabel[0].Label(), midOutages)
	}

	// The fault.* counters agree with the injector's stats.
	m := readMetrics(reg)
	if got := m["fault.link_failures"]; got != float64(inj.Stats.LinkFailures) {
		t.Errorf("fault.link_failures = %v, want %d", got, inj.Stats.LinkFailures)
	}
	if got := m["fault.switch_failures"]; got != float64(inj.Stats.SwitchFailures) {
		t.Errorf("fault.switch_failures = %v, want %d", got, inj.Stats.SwitchFailures)
	}
	if got := m["fault.links_down"]; got != float64(inj.LinksDown()) {
		t.Errorf("fault.links_down = %v, want %d", got, inj.LinksDown())
	}
	if inj.Stats.LinkFailures != 1 || inj.Stats.SwitchFailures != 1 {
		t.Errorf("stats = %+v, want 1 link + 1 switch failure", inj.Stats)
	}

	// Repair everything: outages drain and links_down returns to zero.
	if !inj.RepairSwitch(e.Now(), 3) || !inj.RepairLink(e.Now(), 0, port) {
		t.Fatal("repairs refused")
	}
	if got := inj.Outages(); len(got) != 0 {
		t.Errorf("outages after repair = %v, want none", got)
	}
	if got := readMetrics(reg)["fault.links_down"]; got != 0 {
		t.Errorf("fault.links_down after repair = %v", got)
	}
}
