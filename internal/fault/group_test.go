package fault

import (
	"testing"

	"epnet/internal/sim"
)

// TestGroupPartitions checks the two structural partitioners: every
// switch lands in exactly one rack domain and every inter-switch pair
// in exactly one optics bundle.
func TestGroupPartitions(t *testing.T) {
	_, n, _, inj := newTestNet(t)

	racks := inj.RackDomains(3)
	seen := map[int]bool{}
	for _, g := range racks {
		if len(g.Links) != 0 {
			t.Errorf("rack domain %s has links", g.Name)
		}
		for _, sw := range g.Switches {
			if seen[sw] {
				t.Errorf("switch %d in two rack domains", sw)
			}
			seen[sw] = true
		}
		if len(g.Switches) > 3 {
			t.Errorf("rack domain %s has %d switches, size was 3", g.Name, len(g.Switches))
		}
	}
	if len(seen) != len(n.Switches) {
		t.Errorf("rack domains cover %d of %d switches", len(seen), len(n.Switches))
	}

	bundles := inj.OpticsBundles(2)
	pairs := 0
	for _, g := range bundles {
		if len(g.Switches) != 0 {
			t.Errorf("optics bundle %s has switches", g.Name)
		}
		if len(g.Links) > 2 {
			t.Errorf("bundle %s has %d pairs, size was 2", g.Name, len(g.Links))
		}
		pairs += len(g.Links)
	}
	if pairs != len(inj.pairs) {
		t.Errorf("bundles cover %d of %d pairs", pairs, len(inj.pairs))
	}

	if _, err := inj.SwitchGroup("bad", []int{0, len(n.Switches)}); err == nil {
		t.Error("out-of-range switch group accepted")
	}
	if _, err := inj.SwitchGroup("ok", []int{0, 1}); err != nil {
		t.Errorf("valid switch group rejected: %v", err)
	}
}

// TestFailRepairGroupRoundTrip fails a whole rack domain mid-traffic
// and repairs it: members come back, counters reconcile, and packet
// conservation holds (drops are allowed — correlated incidents bypass
// the guard by design — but nothing may leak).
func TestFailRepairGroupRoundTrip(t *testing.T) {
	e, n, _, inj := newTestNet(t)
	g := inj.RackDomains(2)[1]

	e.At(2*sim.Microsecond, func(now sim.Time) {
		if got := inj.FailGroup(now, g); got != len(g.Switches) {
			t.Errorf("FailGroup felled %d of %d members", got, len(g.Switches))
		}
		// A second strike while down is a no-op, not a double count.
		if got := inj.FailGroup(now+1, g); got != 0 {
			t.Errorf("re-failing a downed group reported %d new failures", got)
		}
	})
	e.At(40*sim.Microsecond, func(now sim.Time) {
		if got := inj.RepairGroup(now, g); got != len(g.Switches) {
			t.Errorf("RepairGroup revived %d of %d members", got, len(g.Switches))
		}
	})
	injectAllPairs(n, 8192)
	e.Run()

	conserve(t, n)
	if inj.Stats.SwitchFailures != int64(len(g.Switches)) ||
		inj.Stats.SwitchRepairs != inj.Stats.SwitchFailures {
		t.Errorf("stats %+v: want %d failures matched by repairs", inj.Stats, len(g.Switches))
	}
	if len(inj.Outages()) != 0 {
		t.Errorf("outages still open after repair: %v", inj.Outages())
	}
}

// TestStartCorrelatedDeterministic runs the correlated-incident process
// twice from one seed (identical histories required) and once from
// another (must diverge), the same guarantee StartRandom gives.
func TestStartCorrelatedDeterministic(t *testing.T) {
	history := func(seed int64) Stats {
		e, n, _, inj := newTestNet(t)
		groups := inj.OpticsBundles(2)
		inj.StartCorrelated(0, 200*sim.Microsecond, groups, 50, 10*sim.Microsecond, seed)
		injectAllPairs(n, 4096)
		e.Run()
		conserve(t, n)
		return inj.Stats
	}
	a, b, c := history(7), history(7), history(8)
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.LinkFailures == 0 {
		t.Fatal("correlated process produced no incidents; test is vacuous")
	}
	if a == c {
		t.Error("different seeds produced identical fault histories")
	}
	if a.LinkFailures < a.LinkRepairs {
		t.Errorf("more repairs than failures: %+v", a)
	}
}
