package fault

import (
	"fmt"
	"math/rand"

	"epnet/internal/fabric"
	"epnet/internal/sim"
	"epnet/internal/telemetry"
)

// Group is a correlated failure domain: a set of switches and/or link
// pairs that fail together in one incident — a rack losing power takes
// out every switch in it; a cut or flaky shared-optics bundle takes out
// the links riding it. Groups are built against a live injector so they
// resolve to concrete fabric channels once, up front.
type Group struct {
	Name     string
	Switches []int
	Links    [][2]*fabric.Chan
}

// RackDomains partitions the switches into power domains of size
// consecutive switches each (the last domain may be smaller) — the
// "rack PDU dies" failure unit. size <= 0 defaults to 4.
func (inj *Injector) RackDomains(size int) []Group {
	if size <= 0 {
		size = 4
	}
	n := len(inj.Net.Switches)
	var groups []Group
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		g := Group{Name: fmt.Sprintf("rack-power[%d:%d]", lo, hi)}
		for sw := lo; sw < hi; sw++ {
			g.Switches = append(g.Switches, sw)
		}
		groups = append(groups, g)
	}
	return groups
}

// OpticsBundles partitions the inter-switch link pairs, in wiring
// order, into bundles of size pairs each — physically adjacent fibers
// sharing a conduit or a multi-lane optical module. size <= 0 defaults
// to 4.
func (inj *Injector) OpticsBundles(size int) []Group {
	if size <= 0 {
		size = 4
	}
	var groups []Group
	for lo := 0; lo < len(inj.pairs); lo += size {
		hi := lo + size
		if hi > len(inj.pairs) {
			hi = len(inj.pairs)
		}
		g := Group{Name: fmt.Sprintf("optics-bundle[%d:%d]", lo, hi)}
		g.Links = append(g.Links, inj.pairs[lo:hi]...)
		groups = append(groups, g)
	}
	return groups
}

// SwitchGroup builds an explicit failure domain from switch indices.
// Out-of-range indices are an error.
func (inj *Injector) SwitchGroup(name string, switches []int) (Group, error) {
	for _, sw := range switches {
		if sw < 0 || sw >= len(inj.Net.Switches) {
			return Group{}, fmt.Errorf("fault: group %q: switch %d out of range [0,%d)",
				name, sw, len(inj.Net.Switches))
		}
	}
	return Group{Name: name, Switches: append([]int(nil), switches...)}, nil
}

// FailGroup fails every member of g at once: switches crash, links hard
// fail. Correlated incidents deliberately bypass Guard — a rack power
// loss does not politely spare the last path — which is exactly the
// stress a resilience scorecard wants to measure. Returns how many
// members newly failed.
func (inj *Injector) FailGroup(now sim.Time, g Group) int {
	failed := 0
	for _, sw := range g.Switches {
		if inj.FailSwitch(now, sw) {
			failed++
		}
	}
	for _, pr := range g.Links {
		if inj.failPair(now, pr) {
			inj.Stats.LinkFailures++
			failed++
		}
	}
	if failed > 0 && inj.Tracer != nil {
		inj.Tracer.Instant("fail-group", "fault", telemetry.PIDFaults, 0, now,
			fmt.Sprintf(`"group":%q,"members":%d`, g.Name, failed))
	}
	return failed
}

// RepairGroup returns every member of g to service: switches revive
// (with their incident links), then the group's own links repair.
// Returns how many members were repaired.
func (inj *Injector) RepairGroup(now sim.Time, g Group) int {
	repaired := 0
	for _, sw := range g.Switches {
		if inj.RepairSwitch(now, sw) {
			repaired++
		}
	}
	for _, pr := range g.Links {
		if inj.repairPair(now, pr) {
			inj.Stats.LinkRepairs++
			repaired++
		}
	}
	if repaired > 0 && inj.Tracer != nil {
		inj.Tracer.Instant("repair-group", "fault", telemetry.PIDFaults, 0, now,
			fmt.Sprintf(`"group":%q,"members":%d`, g.Name, repaired))
	}
	return repaired
}

// StartCorrelated schedules a seeded-random correlated-incident process
// over (start, horizon): incidents arrive with exponential inter-arrival
// times at perMs expected incidents per simulated millisecond, each
// striking one uniformly chosen group and repairing after an
// exponentially distributed outage with mean mttr. Like StartRandom,
// the whole process is a pure function of (seed, groups, mttr, perMs).
// The seed salt differs from StartRandom's, so running both from the
// same scenario seed yields independent histories.
func (inj *Injector) StartCorrelated(start, horizon sim.Time, groups []Group, perMs float64, mttr sim.Time, seed int64) {
	if perMs <= 0 || len(groups) == 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed ^ 0xC0FA17))
	exp := func(mean float64) sim.Time {
		d := sim.Time(rng.ExpFloat64() * mean)
		if d < sim.Nanosecond {
			d = sim.Nanosecond
		}
		return d
	}
	interArrival := float64(sim.Millisecond) / perMs

	var tick sim.Event
	scheduleNext := func(from sim.Time) {
		next := from + exp(interArrival)
		if next >= horizon {
			return
		}
		inj.Net.E.At(next, tick)
	}
	tick = func(now sim.Time) {
		g := groups[rng.Intn(len(groups))]
		// Draw the outage length unconditionally so the random stream
		// stays aligned even when the strike is a no-op (group already
		// down).
		outage := exp(float64(mttr))
		if inj.FailGroup(now, g) > 0 {
			inj.Net.E.At(now+outage, func(at sim.Time) {
				inj.RepairGroup(at, g)
			})
		}
		scheduleNext(now)
	}
	scheduleNext(start)
}
