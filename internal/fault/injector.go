package fault

import (
	"fmt"
	"math/rand"
	"time"

	"epnet/internal/fabric"
	"epnet/internal/link"
	"epnet/internal/routing"
	"epnet/internal/sim"
	"epnet/internal/telemetry"
	"epnet/internal/topo"
)

// Stats counts the fault events an injector has executed. A switch
// crash counts once as a switch failure; the incident link outages it
// implies are not additionally counted as link failures.
type Stats struct {
	LinkFailures     int64
	LinkRepairs      int64
	SwitchFailures   int64
	SwitchRepairs    int64
	LaneDegradations int64
	LaneRestores     int64
}

// Injector executes fault events against a running fabric. It owns the
// coordination a fault needs across layers: powering channels off with
// no drain (fabric drops and counts in-flight packets), masking dead
// ports in the router, pumping sender queues so stranded packets
// reroute or drop, and charging reactivation when links come back.
//
// Construct with New, then Apply a parsed Schedule and/or StartRandom
// for seeded background faults. All methods are single-threaded, like
// the engine that drives them.
type Injector struct {
	Net    *fabric.Network
	Masker routing.PortMasker

	// RepairReactivation is the penalty a repaired link pays before
	// carrying data again (lane retraining / CDR re-lock — the same
	// cost model the epoch controller charges for retunes).
	RepairReactivation sim.Time
	// DegradeReactivation is the retune penalty when a degradation cap
	// forces an immediate rate drop, and when RestoreRate retunes a
	// restored link.
	DegradeReactivation sim.Time
	// RepairRate is the rate a repaired link trains to (default: ladder
	// maximum, clamped by any active degradation cap).
	RepairRate link.Rate
	// RestoreRate, when non-zero, retunes a link to this rate as its
	// degradation cap lifts. Leave zero when an epoch controller runs —
	// it will climb the ladder itself; the always-on baseline has no
	// controller, so the caller sets the ladder maximum here.
	RestoreRate link.Rate

	// Tracer, when set, receives fault instants and per-link outage
	// spans on the telemetry.PIDFaults track.
	Tracer *telemetry.Tracer

	// Guard, when set, vetoes random fault targets: StartRandom and
	// FailRandomLinks skip pairs for which it returns false. Run-level
	// code installs a connectivity guard here (e.g. "both endpoints
	// keep >= 2 live links in the affected dimension").
	Guard func(pair [2]*fabric.Chan) bool

	// Stats counts executed events; read it after the run.
	Stats Stats

	radix      int
	byEndpoint map[int][2]*fabric.Chan      // sw*radix+port -> inter-switch pair
	bySwitch   [][][2]*fabric.Chan          // switch -> incident inter-switch pairs
	pairs      [][2]*fabric.Chan            // all inter-switch pairs, wiring order
	downAt     map[[2]*fabric.Chan]sim.Time // failed pair -> failure time
}

// New builds an injector over net, masking failed ports through masker,
// and switches the fabric into fault-tolerant (drop-and-count) mode.
func New(net *fabric.Network, masker routing.PortMasker) *Injector {
	inj := &Injector{
		Net:        net,
		Masker:     masker,
		RepairRate: net.Cfg.Ladder.Max(),
		radix:      net.T.Radix(),
		byEndpoint: make(map[int][2]*fabric.Chan),
		bySwitch:   make([][][2]*fabric.Chan, net.T.NumSwitches()),
		downAt:     make(map[[2]*fabric.Chan]sim.Time),
	}
	for _, pr := range net.Pairs() {
		if pr[0].Src.Kind != topo.KindSwitch || pr[0].Dst.Kind != topo.KindSwitch {
			continue
		}
		for _, ch := range pr {
			inj.byEndpoint[ch.Src.ID*inj.radix+ch.Src.Port] = pr
		}
		inj.bySwitch[pr[0].Src.ID] = append(inj.bySwitch[pr[0].Src.ID], pr)
		inj.bySwitch[pr[1].Src.ID] = append(inj.bySwitch[pr[1].Src.ID], pr)
		inj.pairs = append(inj.pairs, pr)
	}
	net.EnableFaults()
	return inj
}

// PairAt returns the inter-switch link pair with an endpoint at
// (sw, port), if one exists.
func (inj *Injector) PairAt(sw, port int) ([2]*fabric.Chan, bool) {
	pr, ok := inj.byEndpoint[sw*inj.radix+port]
	return pr, ok
}

// LinksDown returns the number of currently failed link pairs.
func (inj *Injector) LinksDown() int { return len(inj.downAt) }

// Outage describes one currently-failed link pair for live inspection.
type Outage struct {
	// Link is the failed pair's forward-channel entity id.
	Link string
	// Since is when the pair failed.
	Since sim.Time
}

// Outages returns the currently failed link pairs in wiring order (a
// deterministic order, unlike the downAt map), with their failure
// times — the live view a snapshot endpoint exposes while repairs are
// pending.
func (inj *Injector) Outages() []Outage {
	var out []Outage
	for _, pr := range inj.pairs {
		if since, down := inj.downAt[pr]; down {
			out = append(out, Outage{Link: pr[0].Label(), Since: since})
		}
	}
	return out
}

// Apply validates every event of sched against the network and
// schedules it on the engine, offsets measured from start. Validation
// errors (nonexistent link, off-ladder cap, bad switch index) are
// reported before anything is scheduled.
func (inj *Injector) Apply(start sim.Time, sched Schedule) error {
	for _, ev := range sched {
		if ev.Kind.IsLink() {
			if _, ok := inj.PairAt(ev.Sw, ev.Port); !ok {
				return fmt.Errorf("fault: no inter-switch link at %s", ev.Target())
			}
			if ev.Kind == DegradeLink && inj.Net.Cfg.Ladder.Index(ev.Cap()) < 0 {
				return fmt.Errorf("fault: degrade cap %vGb/s for %s not on the rate ladder",
					ev.CapGbps, ev.Target())
			}
		} else if ev.Sw < 0 || ev.Sw >= len(inj.Net.Switches) {
			return fmt.Errorf("fault: switch %d out of range [0,%d)", ev.Sw, len(inj.Net.Switches))
		}
	}
	for _, ev := range sched {
		ev := ev
		inj.Net.E.At(start+simTime(ev.At), func(now sim.Time) { inj.exec(ev, now) })
	}
	return nil
}

// simTime converts a wall-clock duration to simulator picoseconds.
func simTime(d time.Duration) sim.Time { return sim.Time(d.Nanoseconds()) * sim.Nanosecond }

// exec dispatches one validated event.
func (inj *Injector) exec(ev Event, now sim.Time) {
	switch ev.Kind {
	case FailLink:
		inj.FailLink(now, ev.Sw, ev.Port)
	case RepairLink:
		inj.RepairLink(now, ev.Sw, ev.Port)
	case DegradeLink:
		inj.DegradeLink(now, ev.Sw, ev.Port, ev.Cap())
	case RestoreLink:
		inj.RestoreLink(now, ev.Sw, ev.Port)
	case FailSwitch:
		inj.FailSwitch(now, ev.Sw)
	case RepairSwitch:
		inj.RepairSwitch(now, ev.Sw)
	}
}

// FailLink hard-fails the link with an endpoint at (sw, port). Returns
// false if no such link exists or it is already down.
func (inj *Injector) FailLink(now sim.Time, sw, port int) bool {
	pr, ok := inj.PairAt(sw, port)
	if !ok || !inj.failPair(now, pr) {
		return false
	}
	inj.Stats.LinkFailures++
	return true
}

// RepairLink returns a failed link to service. Returns false if the
// link is not down, or either endpoint switch is crashed (repair-switch
// revives those links).
func (inj *Injector) RepairLink(now sim.Time, sw, port int) bool {
	pr, ok := inj.PairAt(sw, port)
	if !ok || !inj.repairPair(now, pr) {
		return false
	}
	inj.Stats.LinkRepairs++
	return true
}

// DegradeLink pins the link at or below cap (which must be on the
// ladder). An Active link above the cap retunes down immediately,
// paying DegradeReactivation. Returns false for unknown or failed
// links.
func (inj *Injector) DegradeLink(now sim.Time, sw, port int, cap link.Rate) bool {
	pr, ok := inj.PairAt(sw, port)
	if !ok || pr[0].Failed() {
		return false
	}
	inj.Stats.LaneDegradations++
	for _, ch := range pr {
		ch.L.SetRateCap(now, cap, inj.DegradeReactivation)
	}
	if inj.Tracer != nil {
		inj.Tracer.Instant("degrade-link", "fault", telemetry.PIDFaults, pr[0].Index(), now,
			fmt.Sprintf(`"link":%q,"cap_gbps":%g`, pr[0].Label(), cap.GbpsF()))
	}
	return true
}

// RestoreLink lifts a degradation cap. With RestoreRate set the link
// retunes to it; otherwise the rate controller climbs on its own.
// Returns false for unknown or uncapped links.
func (inj *Injector) RestoreLink(now sim.Time, sw, port int) bool {
	pr, ok := inj.PairAt(sw, port)
	if !ok || pr[0].L.RateCap() == 0 {
		return false
	}
	inj.Stats.LaneRestores++
	for _, ch := range pr {
		ch.L.SetRateCap(now, 0, 0)
		if inj.RestoreRate != 0 && !ch.Failed() {
			ch.L.SetRate(now, inj.RestoreRate, inj.DegradeReactivation)
			ch.L.ResetEpoch(now)
			inj.Net.KickSender(ch, now)
		}
	}
	if inj.Tracer != nil {
		inj.Tracer.Instant("restore-link", "fault", telemetry.PIDFaults, pr[0].Index(), now,
			fmt.Sprintf(`"link":%q`, pr[0].Label()))
	}
	return true
}

// FailSwitch crashes switch sw: its queued packets are dropped, every
// incident inter-switch link fails, and traffic destined to its hosts
// is dropped wherever it is first routed. Returns false if already
// crashed.
func (inj *Injector) FailSwitch(now sim.Time, sw int) bool {
	if inj.Net.SwitchDead(sw) {
		return false
	}
	inj.Stats.SwitchFailures++
	inj.Net.SetSwitchDead(sw, true)
	inj.Net.Switches[sw].DropAllQueued(now)
	for _, pr := range inj.bySwitch[sw] {
		inj.failPair(now, pr)
	}
	if inj.Tracer != nil {
		inj.Tracer.Instant("fail-switch", "fault", telemetry.PIDFaults, 0, now,
			fmt.Sprintf(`"switch":%d`, sw))
	}
	return true
}

// RepairSwitch revives a crashed switch and all of its incident links
// (whether they failed with the crash or individually before it),
// except links to switches that are still crashed. Returns false if sw
// is not crashed.
func (inj *Injector) RepairSwitch(now sim.Time, sw int) bool {
	if !inj.Net.SwitchDead(sw) {
		return false
	}
	inj.Stats.SwitchRepairs++
	inj.Net.SetSwitchDead(sw, false)
	for _, pr := range inj.bySwitch[sw] {
		inj.repairPair(now, pr)
	}
	if inj.Tracer != nil {
		inj.Tracer.Instant("repair-switch", "fault", telemetry.PIDFaults, 0, now,
			fmt.Sprintf(`"switch":%d`, sw))
	}
	return true
}

// failPair is the mechanics of a link failure, shared by link and
// switch faults: fail both channels, mask both sending ports, then
// pump both senders so queued packets reroute (or drop).
func (inj *Injector) failPair(now sim.Time, pr [2]*fabric.Chan) bool {
	if pr[0].Failed() {
		return false
	}
	inj.downAt[pr] = now
	for _, ch := range pr {
		inj.Net.FailChan(ch, now)
		inj.Masker.SetDead(ch.Src.ID, ch.Src.Port, true)
	}
	// Pump only after both directions are masked, so reroutes cannot
	// pick the dying reverse direction.
	for _, ch := range pr {
		inj.Net.Switches[ch.Src.ID].PumpPort(ch.Src.Port, now)
	}
	if inj.Tracer != nil {
		inj.Tracer.Instant("fail-link", "fault", telemetry.PIDFaults, pr[0].Index(), now,
			fmt.Sprintf(`"link":%q`, pr[0].Label()))
	}
	return true
}

// repairPair is the mechanics of a link repair: unmask, power both
// channels back on (paying RepairReactivation), and kick the senders.
func (inj *Injector) repairPair(now sim.Time, pr [2]*fabric.Chan) bool {
	if !pr[0].Failed() {
		return false
	}
	if inj.Net.SwitchDead(pr[0].Src.ID) || inj.Net.SwitchDead(pr[1].Src.ID) {
		return false
	}
	for _, ch := range pr {
		inj.Masker.SetDead(ch.Src.ID, ch.Src.Port, false)
		inj.Net.RepairChan(ch, now, ch.L.ClampRate(inj.RepairRate), inj.RepairReactivation)
	}
	if inj.Tracer != nil {
		start := inj.downAt[pr]
		inj.Tracer.Complete("outage", "fault", telemetry.PIDFaults, pr[0].Index(),
			start, now-start, fmt.Sprintf(`"link":%q`, pr[0].Label()))
	}
	delete(inj.downAt, pr)
	return true
}

// FailRandomLinks abruptly fails count randomly chosen inter-switch
// link pairs at time now, never repairing them — the legacy FailLinks
// behavior. Selection shuffles the pairs with a seed-derived RNG
// (seed^0x0FA11, byte-compatible with the pre-injector implementation)
// and honors Guard, so damage never partitions a guarded network.
// Returns how many pairs actually failed.
func (inj *Injector) FailRandomLinks(now sim.Time, count int, seed int64) int {
	rng := rand.New(rand.NewSource(seed ^ 0x0FA11))
	pairs := make([][2]*fabric.Chan, len(inj.pairs))
	copy(pairs, inj.pairs)
	rng.Shuffle(len(pairs), func(i, j int) {
		pairs[i], pairs[j] = pairs[j], pairs[i]
	})
	failed := 0
	for _, pr := range pairs {
		if failed == count {
			break
		}
		if pr[0].Failed() {
			continue
		}
		if inj.Guard != nil && !inj.Guard(pr) {
			continue
		}
		if inj.failPair(now, pr) {
			inj.Stats.LinkFailures++
			failed++
		}
	}
	return failed
}

// StartRandom schedules a seeded-random fault process over (start,
// horizon): events arrive with exponential inter-arrival times at an
// expected rate of perMs events per simulated millisecond. Roughly a
// quarter of events are lane degradations (restored after about twice
// the mean-time-to-repair); the rest are link failures repaired after
// an exponentially distributed outage with mean mttr. Targets are
// drawn uniformly from live, Guard-approved inter-switch pairs.
//
// The whole process is a pure function of (seed, topology, mttr,
// perMs): identical runs replay identical fault histories.
func (inj *Injector) StartRandom(start, horizon sim.Time, perMs float64, mttr sim.Time, seed int64) {
	if perMs <= 0 || len(inj.pairs) == 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed ^ 0xFA017))
	exp := func(mean float64) sim.Time {
		d := sim.Time(rng.ExpFloat64() * mean)
		if d < sim.Nanosecond {
			d = sim.Nanosecond
		}
		return d
	}
	interArrival := float64(sim.Millisecond) / perMs
	ladder := inj.Net.Cfg.Ladder

	var tick sim.Event
	scheduleNext := func(from sim.Time) {
		next := from + exp(interArrival)
		if next >= horizon {
			return
		}
		inj.Net.E.At(next, tick)
	}
	tick = func(now sim.Time) {
		// A bounded retry keeps target selection cheap and deterministic
		// even when most of the fabric is already degraded.
		for try := 0; try < 8; try++ {
			pr := inj.pairs[rng.Intn(len(inj.pairs))]
			if pr[0].Failed() || pr[0].L.RateCap() != 0 {
				continue
			}
			if inj.Net.SwitchDead(pr[0].Src.ID) || inj.Net.SwitchDead(pr[1].Src.ID) {
				continue
			}
			if inj.Guard != nil && !inj.Guard(pr) {
				continue
			}
			sw, port := pr[0].Src.ID, pr[0].Src.Port
			if rng.Float64() < 0.25 {
				// Lane degradation: pin somewhere below the maximum.
				cap := ladder[rng.Intn(len(ladder)-1)]
				inj.DegradeLink(now, sw, port, cap)
				restoreAt := now + exp(2*float64(mttr))
				inj.Net.E.At(restoreAt, func(at sim.Time) {
					inj.RestoreLink(at, sw, port)
				})
			} else {
				inj.FailLink(now, sw, port)
				repairAt := now + exp(float64(mttr))
				inj.Net.E.At(repairAt, func(at sim.Time) {
					inj.RepairLink(at, sw, port)
				})
			}
			break
		}
		scheduleNext(now)
	}
	scheduleNext(start)
}

// RegisterMetrics exposes the injector's counters to a telemetry
// registry under the fault.* prefix, in a stable order.
func (inj *Injector) RegisterMetrics(reg *telemetry.Registry) error {
	gauges := []struct {
		name string
		fn   func() float64
	}{
		{"fault.link_failures", func() float64 { return float64(inj.Stats.LinkFailures) }},
		{"fault.link_repairs", func() float64 { return float64(inj.Stats.LinkRepairs) }},
		{"fault.switch_failures", func() float64 { return float64(inj.Stats.SwitchFailures) }},
		{"fault.switch_repairs", func() float64 { return float64(inj.Stats.SwitchRepairs) }},
		{"fault.lane_degradations", func() float64 { return float64(inj.Stats.LaneDegradations) }},
		{"fault.lane_restores", func() float64 { return float64(inj.Stats.LaneRestores) }},
		{"fault.links_down", func() float64 { return float64(inj.LinksDown()) }},
	}
	for _, g := range gauges {
		if err := reg.GaugeFunc(g.name, g.fn); err != nil {
			return err
		}
	}
	return nil
}
