// Package fault is a deterministic fault-injection engine for the
// simulated fabric: scheduled or seeded-random link failures and
// repairs, switch crashes, and lane degradations that pin a link's
// SerDes below its full rate.
//
// Faults are ordinary events on the simulation heap, so a seeded fault
// history is exactly reproducible and composes with every other
// subsystem: the fabric drops and counts packets caught on dead
// channels, the routers mask failed ports (degraded FBFLY dimensions
// route around dead ring links; up/down routing re-picks live uplinks),
// and the epoch controller sees a repaired link pay its reactivation
// (CDR re-lock / lane retraining) before carrying data again.
//
// Sharded execution contract: injector events live on the control
// engine, which the shard coordinator only runs at window barriers
// while every shard is quiesced at the same simulated instant. A fault
// may therefore touch any switch, channel, or router state directly;
// the entity's owning shard observes the change when its next window
// opens, identically at every shard count.
package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"epnet/internal/link"
)

// Kind enumerates the injectable fault events.
type Kind uint8

const (
	// FailLink hard-fails both directions of a link: no drain, in-flight
	// packets are dropped, routing masks the dead ports.
	FailLink Kind = iota
	// RepairLink returns a failed link to service after reactivation.
	RepairLink
	// DegradeLink pins a link's rate at or below a cap — a failed lane
	// keeps the SerDes from training its full mode, composing with the
	// rate ladder (a degraded 40G link still halves/doubles below the
	// cap).
	DegradeLink
	// RestoreLink lifts a degradation cap.
	RestoreLink
	// FailSwitch crashes a switch: queued packets are lost, every
	// incident inter-switch link fails, and packets destined to its
	// hosts are dropped at the first live switch that sees them.
	FailSwitch
	// RepairSwitch revives a crashed switch and all its incident links.
	RepairSwitch
)

var kindNames = [...]string{
	FailLink:     "fail-link",
	RepairLink:   "repair-link",
	DegradeLink:  "degrade-link",
	RestoreLink:  "restore-link",
	FailSwitch:   "fail-switch",
	RepairSwitch: "repair-switch",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsLink reports whether the kind targets a link (vs a switch).
func (k Kind) IsLink() bool { return k <= RestoreLink }

// Event is one scheduled fault.
type Event struct {
	// At is the event's offset from the schedule's start (the end of
	// warmup, for a full simulation run).
	At time.Duration
	// Kind selects the fault operation.
	Kind Kind
	// Sw (and, for link events, Port) identify the target: a link is
	// named by either of its switch-side endpoints. Port is -1 for
	// switch events.
	Sw, Port int
	// CapGbps is DegradeLink's pinned ceiling in Gb/s; it must lie on
	// the rate ladder.
	CapGbps float64
}

// Cap returns the degradation ceiling as a link.Rate.
func (e Event) Cap() link.Rate {
	return link.Rate(math.Round(e.CapGbps * 1e9))
}

// Target renders the event's target for messages: "s2p9" or "sw 3".
func (e Event) Target() string {
	if e.Kind.IsLink() {
		return fmt.Sprintf("s%dp%d", e.Sw, e.Port)
	}
	return fmt.Sprintf("sw %d", e.Sw)
}

// Schedule is an ordered list of fault events.
type Schedule []Event

// ParseSchedule parses the textual schedule format used by the -faults
// flag: semicolon-separated entries of the form
//
//	<offset> <verb> <target> [arg]
//
// where <offset> is a time.ParseDuration offset from the schedule
// start, <verb> is one of fail-link / repair-link / degrade-link /
// restore-link / fail-switch / repair-switch, <target> is "s<sw>p<port>"
// for link verbs or a switch index for switch verbs, and degrade-link
// takes a rate cap in Gb/s as its <arg>:
//
//	50us fail-link s0p8; 100us degrade-link s1p9 10; 400us repair-link s0p8
//
// Only syntax is checked here; target existence is validated against
// the actual network by Injector.Apply.
func ParseSchedule(s string) (Schedule, error) {
	var out Schedule
	for _, entry := range strings.Split(s, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		ev, err := parseEntry(entry)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fault: empty schedule")
	}
	return out, nil
}

func parseEntry(entry string) (Event, error) {
	fields := strings.Fields(entry)
	if len(fields) < 3 {
		return Event{}, fmt.Errorf("fault: entry %q needs \"<offset> <verb> <target>\"", entry)
	}
	at, err := time.ParseDuration(fields[0])
	if err != nil {
		return Event{}, fmt.Errorf("fault: entry %q: bad offset: %v", entry, err)
	}
	if at < 0 {
		return Event{}, fmt.Errorf("fault: entry %q: negative offset", entry)
	}
	ev := Event{At: at, Port: -1}
	found := false
	for k, name := range kindNames {
		if name == fields[1] {
			ev.Kind, found = Kind(k), true
			break
		}
	}
	if !found {
		return Event{}, fmt.Errorf("fault: entry %q: unknown verb %q", entry, fields[1])
	}

	wantFields := 3
	if ev.Kind == DegradeLink {
		wantFields = 4
	}
	if len(fields) != wantFields {
		return Event{}, fmt.Errorf("fault: entry %q: %s takes %d fields, got %d",
			entry, ev.Kind, wantFields, len(fields))
	}

	if ev.Kind.IsLink() {
		ev.Sw, ev.Port, err = parseLinkTarget(fields[2])
		if err != nil {
			return Event{}, fmt.Errorf("fault: entry %q: %v", entry, err)
		}
	} else {
		ev.Sw, err = strconv.Atoi(fields[2])
		if err != nil || ev.Sw < 0 {
			return Event{}, fmt.Errorf("fault: entry %q: bad switch index %q", entry, fields[2])
		}
	}
	if ev.Kind == DegradeLink {
		ev.CapGbps, err = strconv.ParseFloat(fields[3], 64)
		if err != nil || ev.CapGbps <= 0 {
			return Event{}, fmt.Errorf("fault: entry %q: bad rate cap %q (Gb/s)", entry, fields[3])
		}
	}
	return ev, nil
}

// parseLinkTarget parses "s<switch>p<port>".
func parseLinkTarget(s string) (sw, port int, err error) {
	rest, ok := strings.CutPrefix(s, "s")
	if !ok {
		return 0, 0, fmt.Errorf("link target %q is not of the form s<sw>p<port>", s)
	}
	swStr, portStr, ok := strings.Cut(rest, "p")
	if !ok {
		return 0, 0, fmt.Errorf("link target %q is not of the form s<sw>p<port>", s)
	}
	sw, err = strconv.Atoi(swStr)
	if err != nil || sw < 0 {
		return 0, 0, fmt.Errorf("link target %q: bad switch index", s)
	}
	port, err = strconv.Atoi(portStr)
	if err != nil || port < 0 {
		return 0, 0, fmt.Errorf("link target %q: bad port", s)
	}
	return sw, port, nil
}
