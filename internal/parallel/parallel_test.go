package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	cases := []struct {
		requested, n, min, max int
	}{
		{1, 10, 1, 1},
		{4, 10, 4, 4},
		{4, 2, 2, 2},
		{0, 10, 1, 10},  // one per CPU, capped at n
		{-1, 10, 1, 10}, // same
		{8, 0, 1, 1},
	}
	for _, c := range cases {
		got := Workers(c.requested, c.n)
		if got < c.min || got > c.max {
			t.Errorf("Workers(%d, %d) = %d, want in [%d, %d]",
				c.requested, c.n, got, c.min, c.max)
		}
	}
}

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		const n = 100
		var ran [n]atomic.Int32
		err := ForEach(n, workers, func(i int) error {
			ran[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachLowestError(t *testing.T) {
	// Indices 30 and 60 fail; the reported error must be index 30's
	// regardless of worker count or scheduling.
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(100, workers, func(i int) error {
			if i == 30 || i == 60 {
				return fmt.Errorf("fail %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail 30" {
			t.Errorf("workers=%d: err = %v, want fail 30", workers, err)
		}
	}
}

func TestForEachCancelsAfterError(t *testing.T) {
	// After index 0 fails, far-away indices must not start. Some
	// in-flight indices may still run, so allow a generous margin but
	// require that nowhere near all 10000 ran.
	var started atomic.Int32
	err := ForEach(10000, 4, func(i int) error {
		started.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := started.Load(); n > 5000 {
		t.Errorf("%d indices started after early error; cancellation not effective", n)
	}
}

func TestMapOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 0} {
		out, err := Map(50, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	out, err := Map(10, 4, func(i int) (int, error) {
		if i == 7 {
			return 0, errors.New("seven")
		}
		return i, nil
	})
	if err == nil || err.Error() != "seven" {
		t.Fatalf("err = %v, want seven", err)
	}
	if out != nil {
		t.Fatalf("out = %v, want nil on error", out)
	}
}
