// Package parallel fans independent work items out across a bounded
// pool of goroutines while keeping results in deterministic input
// order.
//
// It exists for the experiment harness: every simulation run is a
// self-contained, deterministic unit (its own event engine and seeded
// RNGs), so an experiment grid is embarrassingly parallel. The helpers
// here guarantee that the assembled output is identical to a serial
// loop — only wall-clock time changes.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count request: values < 1 mean "one per
// CPU", and the count never exceeds the number of items n.
func Workers(requested, n int) int {
	w := requested
	if w < 1 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines (< 1 means one per CPU). It returns the error of the
// lowest index that failed, or nil. After the first observed failure no
// new indices are started, but indices already in flight run to
// completion, so a non-nil return means exactly: fn failed for the
// returned index and every lower index succeeded.
//
// Indices are handed out in order through an atomic counter, so with
// workers == 1 the execution order is exactly the serial loop's.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)
	if workers == 1 {
		// Run inline: no goroutines to leak, exact serial semantics,
		// and errors still cancel the remaining indices.
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errIdx = -1
		errVal error
		wg     sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if errIdx == -1 || i < errIdx {
			errIdx, errVal = i, err
		}
		mu.Unlock()
		failed.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return errVal
}

// Map runs fn(i) for every i in [0, n) across at most workers
// goroutines and returns the results in input order. Error semantics
// follow ForEach: the error of the lowest failing index is returned,
// and the results slice is nil on error.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
