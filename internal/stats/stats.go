// Package stats provides the measurement primitives used by the
// simulator: streaming latency statistics with log-scale histograms for
// percentile estimation, aggregated time-at-rate occupancies, and small
// helpers for report tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"epnet/internal/link"
	"epnet/internal/sim"
)

// Latency accumulates a stream of duration samples. It keeps exact
// count/sum/min/max and a geometric histogram (buckets growing by
// ~1.0905x, i.e. 8 buckets per octave) for percentile estimates within
// ~9% relative error.
type Latency struct {
	count   int64
	sum     sim.Time
	min     sim.Time
	max     sim.Time
	buckets map[int]int64
}

const bucketsPerOctave = 8

// NewLatency returns an empty latency accumulator.
func NewLatency() *Latency {
	return &Latency{min: math.MaxInt64, buckets: make(map[int]int64)}
}

// underflowBucket holds zero and negative samples. It sorts below every
// real bucket key, so cumulative walks count those samples before any
// positive-duration bucket.
const underflowBucket = math.MinInt32

func bucketOf(d sim.Time) int {
	if d <= 0 {
		return underflowBucket
	}
	return int(math.Floor(math.Log2(float64(d)) * bucketsPerOctave))
}

func bucketUpper(b int) sim.Time {
	if b == underflowBucket {
		return 0
	}
	return sim.Time(math.Exp2(float64(b+1) / bucketsPerOctave))
}

// sortedKeys returns the occupied bucket keys in ascending order (the
// underflow bucket first). Percentile and Buckets share this walk so
// both present the histogram in the same deterministic order regardless
// of map iteration.
func (l *Latency) sortedKeys() []int {
	keys := make([]int, 0, len(l.buckets))
	for k := range l.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Add records one sample.
func (l *Latency) Add(d sim.Time) {
	l.count++
	l.sum += d
	if d < l.min {
		l.min = d
	}
	if d > l.max {
		l.max = d
	}
	l.buckets[bucketOf(d)]++
}

// Count returns the number of samples.
func (l *Latency) Count() int64 { return l.count }

// Mean returns the mean sample, or 0 with no samples.
func (l *Latency) Mean() sim.Time {
	if l.count == 0 {
		return 0
	}
	return sim.Time(int64(l.sum) / l.count)
}

// Min and Max return the extremes (0 with no samples).
func (l *Latency) Min() sim.Time {
	if l.count == 0 {
		return 0
	}
	return l.min
}
func (l *Latency) Max() sim.Time {
	if l.count == 0 {
		return 0
	}
	return l.max
}

// Percentile returns an estimate of the p-th percentile (p in [0,100]).
func (l *Latency) Percentile(p float64) sim.Time {
	if l.count == 0 {
		return 0
	}
	if p <= 0 {
		return l.min
	}
	if p >= 100 {
		return l.max
	}
	target := int64(math.Ceil(float64(l.count) * p / 100))
	var cum int64
	for _, k := range l.sortedKeys() {
		cum += l.buckets[k]
		if cum >= target {
			u := bucketUpper(k)
			if u > l.max {
				u = l.max
			}
			if u < l.min {
				u = l.min
			}
			return u
		}
	}
	return l.max
}

// Bucket is one histogram cell: Count samples at or below Upper (and
// above the previous bucket's Upper).
type Bucket struct {
	Upper sim.Time
	Count int64
}

// Buckets returns the histogram cells in ascending order of bound,
// suitable for CDF reporting.
func (l *Latency) Buckets() []Bucket {
	keys := l.sortedKeys()
	out := make([]Bucket, 0, len(keys))
	for _, k := range keys {
		u := bucketUpper(k)
		if u > l.max {
			u = l.max
		}
		out = append(out, Bucket{Upper: u, Count: l.buckets[k]})
	}
	return out
}

// Merge adds all samples of other into l.
func (l *Latency) Merge(other *Latency) {
	if other.count == 0 {
		return
	}
	l.count += other.count
	l.sum += other.sum
	if other.min < l.min {
		l.min = other.min
	}
	if other.max > l.max {
		l.max = other.max
	}
	for k, v := range other.buckets {
		l.buckets[k] += v
	}
}

// RateShare aggregates time-at-rate occupancies across many channels:
// the data behind the paper's Figure 7.
type RateShare struct {
	At    map[link.Rate]sim.Time
	Off   sim.Time
	Total sim.Time
}

// NewRateShare returns an empty aggregate.
func NewRateShare() *RateShare {
	return &RateShare{At: make(map[link.Rate]sim.Time)}
}

// Add folds one channel occupancy into the aggregate.
func (s *RateShare) Add(o link.Occupancy) {
	for r, t := range o.AtRate {
		s.At[r] += t
	}
	s.Off += o.Off
	s.Total += o.Total
}

// Fraction returns the share of aggregate channel-time at rate r.
func (s *RateShare) Fraction(r link.Rate) float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.At[r]) / float64(s.Total)
}

// OffFraction returns the share of aggregate channel-time powered off.
func (s *RateShare) OffFraction() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Off) / float64(s.Total)
}

// Rates returns the rates present, ascending.
func (s *RateShare) Rates() []link.Rate {
	out := make([]link.Rate, 0, len(s.At))
	for r := range s.At {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Table is a minimal fixed-width text table for experiment reports.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Bar renders a horizontal ASCII bar of the given fractional width
// (0..1) over maxCols columns, for figure-like terminal output.
func Bar(frac float64, maxCols int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(maxCols) + 0.5)
	return strings.Repeat("#", n)
}

// F formats a float with the given number of decimals; convenience for
// table rows.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
