package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"epnet/internal/link"
	"epnet/internal/sim"
)

func TestLatencyBasics(t *testing.T) {
	l := NewLatency()
	if l.Count() != 0 || l.Mean() != 0 || l.Min() != 0 || l.Max() != 0 {
		t.Fatal("empty accumulator not zero")
	}
	for _, d := range []sim.Time{10, 20, 30} {
		l.Add(d * sim.Microsecond)
	}
	if l.Count() != 3 {
		t.Errorf("Count = %d", l.Count())
	}
	if l.Mean() != 20*sim.Microsecond {
		t.Errorf("Mean = %v", l.Mean())
	}
	if l.Min() != 10*sim.Microsecond || l.Max() != 30*sim.Microsecond {
		t.Errorf("Min/Max = %v/%v", l.Min(), l.Max())
	}
}

func TestLatencyPercentileAccuracy(t *testing.T) {
	l := NewLatency()
	rng := rand.New(rand.NewSource(3))
	// Uniform samples in [1us, 101us): p50 ~ 51us, p99 ~ 100us.
	for i := 0; i < 100000; i++ {
		l.Add(sim.Microsecond + sim.Time(rng.Int63n(int64(100*sim.Microsecond))))
	}
	p50 := l.Percentile(50).Microseconds()
	if p50 < 45 || p50 > 58 {
		t.Errorf("p50 = %vus, want ~51 (within histogram error)", p50)
	}
	p99 := l.Percentile(99).Microseconds()
	if p99 < 90 || p99 > 101 {
		t.Errorf("p99 = %vus, want ~100", p99)
	}
	if l.Percentile(0) != l.Min() || l.Percentile(100) != l.Max() {
		t.Error("percentile extremes mismatch")
	}
}

func TestLatencyZeroSample(t *testing.T) {
	l := NewLatency()
	l.Add(0)
	l.Add(sim.Microsecond)
	if l.Min() != 0 {
		t.Errorf("Min = %v", l.Min())
	}
	if got := l.Percentile(25); got != 0 {
		t.Errorf("p25 = %v, want 0", got)
	}
}

// Zero- and negative-duration samples share an underflow bucket that
// sorts below every positive one, so percentile walks and the CDF stay
// deterministic and monotone when a run records them (e.g. a packet
// delivered in the same event-time instant it was injected).
func TestLatencyZeroAndNegativeDurations(t *testing.T) {
	l := NewLatency()
	for i := 0; i < 5; i++ {
		l.Add(0)
	}
	l.Add(-3 * sim.Nanosecond)
	for i := 0; i < 4; i++ {
		l.Add(sim.Microsecond)
	}
	if l.Count() != 10 {
		t.Fatalf("Count = %d", l.Count())
	}
	if l.Min() != -3*sim.Nanosecond || l.Max() != sim.Microsecond {
		t.Errorf("Min/Max = %v/%v", l.Min(), l.Max())
	}
	// 6 of 10 samples are <= 0, so the median falls in the underflow
	// bucket (bound 0); high percentiles see the real samples.
	if got := l.Percentile(50); got != 0 {
		t.Errorf("p50 = %v, want 0", got)
	}
	if got := l.Percentile(99); got != sim.Microsecond {
		t.Errorf("p99 = %v, want 1us", got)
	}
	if got := l.Percentile(0); got != -3*sim.Nanosecond {
		t.Errorf("p0 = %v, want -3ns", got)
	}
	bs := l.Buckets()
	if len(bs) != 2 {
		t.Fatalf("buckets = %d, want 2 (underflow + 1us)", len(bs))
	}
	if bs[0].Upper != 0 || bs[0].Count != 6 {
		t.Errorf("underflow bucket = {%v, %d}, want {0, 6}", bs[0].Upper, bs[0].Count)
	}
	if bs[1].Upper != sim.Microsecond || bs[1].Count != 4 {
		t.Errorf("top bucket = {%v, %d}, want {1us, 4}", bs[1].Upper, bs[1].Count)
	}
	// The walk order comes from sorted keys, not map iteration: repeated
	// reads are identical.
	for i := 0; i < 10; i++ {
		again := l.Buckets()
		for j := range bs {
			if again[j] != bs[j] {
				t.Fatalf("Buckets() not deterministic: %v vs %v", again, bs)
			}
		}
	}
}

func TestLatencyMerge(t *testing.T) {
	a, b := NewLatency(), NewLatency()
	for i := 1; i <= 10; i++ {
		a.Add(sim.Time(i) * sim.Microsecond)
	}
	for i := 11; i <= 20; i++ {
		b.Add(sim.Time(i) * sim.Microsecond)
	}
	a.Merge(b)
	if a.Count() != 20 {
		t.Errorf("Count = %d", a.Count())
	}
	if a.Max() != 20*sim.Microsecond || a.Min() != sim.Microsecond {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	want := sim.Time(10500 * sim.Nanosecond)
	if a.Mean() != want {
		t.Errorf("Mean = %v, want %v", a.Mean(), want)
	}
	// Merging an empty accumulator is a no-op.
	before := a.Count()
	a.Merge(NewLatency())
	if a.Count() != before {
		t.Error("empty merge changed count")
	}
}

// Property: mean is always between min and max; percentiles are monotone
// in p.
func TestLatencyInvariantProperty(t *testing.T) {
	f := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		l := NewLatency()
		for _, s := range samples {
			l.Add(sim.Time(s))
		}
		if l.Mean() < l.Min() || l.Mean() > l.Max() {
			return false
		}
		prev := sim.Time(-1)
		for _, p := range []float64{0, 10, 25, 50, 75, 90, 99, 100} {
			v := l.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRateShare(t *testing.T) {
	s := NewRateShare()
	s.Add(link.Occupancy{
		AtRate: map[link.Rate]sim.Time{link.Rate40G: 10, link.Rate2_5G: 30},
		Total:  40,
	})
	s.Add(link.Occupancy{
		AtRate: map[link.Rate]sim.Time{link.Rate2_5G: 50},
		Off:    10,
		Total:  60,
	})
	if s.Total != 100 {
		t.Fatalf("Total = %v", s.Total)
	}
	if got := s.Fraction(link.Rate2_5G); got != 0.8 {
		t.Errorf("Fraction(2.5G) = %v, want 0.8", got)
	}
	if got := s.Fraction(link.Rate40G); got != 0.1 {
		t.Errorf("Fraction(40G) = %v, want 0.1", got)
	}
	if got := s.OffFraction(); got != 0.1 {
		t.Errorf("OffFraction = %v, want 0.1", got)
	}
	rates := s.Rates()
	if len(rates) != 2 || rates[0] != link.Rate2_5G || rates[1] != link.Rate40G {
		t.Errorf("Rates = %v", rates)
	}
	empty := NewRateShare()
	if empty.Fraction(link.Rate40G) != 0 || empty.OffFraction() != 0 {
		t.Error("empty share fractions not 0")
	}
}

func TestTable(t *testing.T) {
	tab := Table{Header: []string{"name", "value"}}
	tab.AddRow("alpha", "1")
	tab.AddRow("b", "22222")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name ") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "-----") {
		t.Errorf("separator = %q", lines[1])
	}
	// Columns align: "value" column starts at the same offset everywhere.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][idx:], "1") || !strings.HasPrefix(lines[3][idx:], "22222") {
		t.Errorf("misaligned table:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Errorf("F = %q", F(1.23456, 2))
	}
	if Pct(0.4216) != "42.2%" {
		t.Errorf("Pct = %q", Pct(0.4216))
	}
}

func TestLatencyBuckets(t *testing.T) {
	l := NewLatency()
	for _, d := range []sim.Time{sim.Microsecond, sim.Microsecond, 10 * sim.Microsecond} {
		l.Add(d)
	}
	bs := l.Buckets()
	if len(bs) != 2 {
		t.Fatalf("buckets = %d, want 2", len(bs))
	}
	var total int64
	prev := sim.Time(-1)
	for _, b := range bs {
		if b.Upper <= prev {
			t.Fatal("bucket bounds not ascending")
		}
		prev = b.Upper
		total += b.Count
	}
	if total != 3 {
		t.Fatalf("bucket counts sum to %d, want 3", total)
	}
	if bs[0].Count != 2 || bs[1].Count != 1 {
		t.Errorf("bucket counts %d/%d, want 2/1", bs[0].Count, bs[1].Count)
	}
	// Final bucket's bound is clamped to the max sample.
	if bs[len(bs)-1].Upper != 10*sim.Microsecond {
		t.Errorf("last bound = %v, want 10us", bs[len(bs)-1].Upper)
	}
}

func TestBar(t *testing.T) {
	if Bar(0.5, 10) != "#####" {
		t.Errorf("Bar(0.5,10) = %q", Bar(0.5, 10))
	}
	if Bar(-1, 10) != "" {
		t.Errorf("negative fraction: %q", Bar(-1, 10))
	}
	if Bar(2, 10) != "##########" {
		t.Errorf("overflow fraction: %q", Bar(2, 10))
	}
	if Bar(0, 10) != "" {
		t.Errorf("zero: %q", Bar(0, 10))
	}
}
