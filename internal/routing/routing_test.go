package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"epnet/internal/topo"
)

func TestFBFLYLocalDelivery(t *testing.T) {
	f := topo.MustFBFLY(4, 3, 2)
	r := NewFBFLY(f)
	// Host 5 attaches to switch 2, port 1.
	got := r.Candidates(2, 5, nil)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Candidates = %v, want [1]", got)
	}
}

func TestFBFLYFullCandidates(t *testing.T) {
	f := topo.MustFBFLY(4, 3, 2) // 16 switches, 2 dims
	r := NewFBFLY(f)
	// From switch 0 (coords 0,0) to a host on switch 15 (coords 3,3):
	// both dimensions mismatch, so exactly two candidates.
	dst := 15 * f.C
	got := r.Candidates(0, dst, nil)
	if len(got) != 2 {
		t.Fatalf("Candidates = %v, want 2 ports", got)
	}
	for _, p := range got {
		peer, ok := f.Peer(0, p)
		if !ok || peer.Kind != topo.KindSwitch {
			t.Fatalf("candidate %d not an inter-switch port", p)
		}
		d := f.PortDim(p)
		if f.Coord(peer.ID, d) != f.Coord(15, d) {
			t.Errorf("candidate %d does not correct dimension %d", p, d)
		}
	}
}

// Every candidate must strictly reduce the number of mismatched
// dimensions (full mode) — the minimality property of FBFLY routing.
func TestFBFLYMinimalityProperty(t *testing.T) {
	f := topo.MustFBFLY(5, 3, 3)
	r := NewFBFLY(f)
	mismatches := func(sw, dstSw int) int {
		m := 0
		for d := 0; d < f.D; d++ {
			if f.Coord(sw, d) != f.Coord(dstSw, d) {
				m++
			}
		}
		return m
	}
	check := func(swRaw, dstRaw uint16) bool {
		sw := int(swRaw) % f.NumSwitches()
		dst := int(dstRaw) % f.NumHosts()
		dstSw, _ := f.HostAttachment(dst)
		cands := r.Candidates(sw, dst, nil)
		if len(cands) == 0 {
			return false
		}
		if sw == dstSw {
			return len(cands) == 1 && cands[0] < f.C
		}
		before := mismatches(sw, dstSw)
		for _, p := range cands {
			peer, ok := f.Peer(sw, p)
			if !ok || peer.Kind != topo.KindSwitch {
				return false
			}
			if mismatches(peer.ID, dstSw) != before-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFBFLYRingMode(t *testing.T) {
	f := topo.MustFBFLY(8, 2, 8)
	r := NewFBFLY(f)
	r.SetMode(0, DimRing)
	if r.Mode(0) != DimRing {
		t.Fatal("SetMode did not take")
	}
	// From switch 0 to a host on switch 3: forward distance 3, backward
	// 5: only the +1 neighbor is a candidate.
	dst := 3 * f.C
	got := r.Candidates(0, dst, nil)
	if len(got) != 1 {
		t.Fatalf("ring candidates = %v, want 1", got)
	}
	peer, _ := f.Peer(0, got[0])
	if peer.ID != 1 {
		t.Errorf("ring next hop = sw%d, want sw1", peer.ID)
	}
	// From switch 0 to switch 4: equidistant, both directions legal.
	got = r.Candidates(0, 4*f.C, nil)
	if len(got) != 2 {
		t.Fatalf("equidistant ring candidates = %v, want 2", got)
	}
	// Wraparound is used when shorter: 0 -> 7 goes backward through 7.
	got = r.Candidates(0, 7*f.C, nil)
	peer, _ = f.Peer(0, got[0])
	if len(got) != 1 || peer.ID != 7 {
		t.Errorf("ring 0->7 candidates = %v (peer sw%d), want wraparound to sw7", got, peer.ID)
	}
}

func TestFBFLYLineMode(t *testing.T) {
	f := topo.MustFBFLY(8, 2, 8)
	r := NewFBFLY(f)
	r.SetMode(0, DimLine)
	// 0 -> 7 must walk forward without wraparound.
	got := r.Candidates(0, 7*f.C, nil)
	if len(got) != 1 {
		t.Fatalf("line candidates = %v", got)
	}
	peer, _ := f.Peer(0, got[0])
	if peer.ID != 1 {
		t.Errorf("line next hop = sw%d, want sw1", peer.ID)
	}
	// 7 -> 0 walks backward.
	got = r.Candidates(7, 0, nil)
	peer, _ = f.Peer(7, got[0])
	if len(got) != 1 || peer.ID != 6 {
		t.Errorf("line 7->0 next hop = sw%d, want sw6", peer.ID)
	}
}

// Ring/line routing must still terminate: walking any candidate strictly
// reduces ring/line distance.
func TestFBFLYDegradedTermination(t *testing.T) {
	f := topo.MustFBFLY(8, 2, 8)
	rng := rand.New(rand.NewSource(42))
	for _, mode := range []DimMode{DimRing, DimLine} {
		r := NewFBFLY(f)
		r.SetMode(0, mode)
		for trial := 0; trial < 200; trial++ {
			src := rng.Intn(f.NumHosts())
			dst := rng.Intn(f.NumHosts())
			sw, _ := f.HostAttachment(src)
			dstSw, _ := f.HostAttachment(dst)
			hops := 0
			for sw != dstSw {
				cands := r.Candidates(sw, dst, nil)
				if len(cands) == 0 {
					t.Fatalf("%v: no candidates sw%d -> host%d", mode, sw, dst)
				}
				p := cands[rng.Intn(len(cands))]
				if !r.ActiveInDim(sw, p) {
					t.Fatalf("%v: candidate port %d at sw%d is not an active link", mode, p, sw)
				}
				peer, _ := f.Peer(sw, p)
				sw = peer.ID
				hops++
				if hops > f.K {
					t.Fatalf("%v: walk exceeded %d hops", mode, f.K)
				}
			}
		}
	}
}

func TestFBFLYActiveInDim(t *testing.T) {
	f := topo.MustFBFLY(8, 2, 8)
	r := NewFBFLY(f)
	countActive := func() int {
		n := 0
		for sw := 0; sw < f.NumSwitches(); sw++ {
			for p := f.C; p < f.Radix(); p++ {
				if r.ActiveInDim(sw, p) {
					n++
				}
			}
		}
		return n
	}
	if got := countActive(); got != 8*7 {
		t.Errorf("full mode active ports = %d, want 56", got)
	}
	r.SetMode(0, DimRing)
	if got := countActive(); got != 8*2 {
		t.Errorf("ring mode active ports = %d, want 16", got)
	}
	r.SetMode(0, DimLine)
	if got := countActive(); got != 8*2-2 {
		t.Errorf("line mode active ports = %d, want 14", got)
	}
	// Host ports are always active.
	if !r.ActiveInDim(0, 0) {
		t.Error("host port inactive")
	}
}

func TestDOR(t *testing.T) {
	f := topo.MustFBFLY(4, 3, 2)
	r := &DOR{F: f}
	// DOR corrects the lowest dimension first and yields one candidate.
	dst := 15 * f.C // coords (3,3)
	got := r.Candidates(0, dst, nil)
	if len(got) != 1 {
		t.Fatalf("DOR candidates = %v", got)
	}
	if d := f.PortDim(got[0]); d != 0 {
		t.Errorf("DOR corrected dimension %d first, want 0", d)
	}
	// Local delivery.
	got = r.Candidates(15, dst, nil)
	if len(got) != 1 || got[0] >= f.C {
		t.Errorf("DOR local = %v", got)
	}
	// Deterministic walk reaches the destination in MinimalHops.
	sw := 0
	hops := 0
	for sw != 15 {
		p := r.Candidates(sw, dst, nil)[0]
		peer, _ := f.Peer(sw, p)
		sw = peer.ID
		hops++
	}
	if hops != 2 {
		t.Errorf("DOR walk took %d hops, want 2", hops)
	}
}

func TestFatTreeRouting(t *testing.T) {
	ft := topo.MustFatTree(4, 8, 4)
	r := NewFatTree(ft)
	// Local delivery at the leaf.
	got := r.Candidates(0, 2, nil)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("local = %v", got)
	}
	// Remote: all four uplinks are candidates.
	got = r.Candidates(0, 4*4+1, nil)
	if len(got) != 4 {
		t.Fatalf("uplinks = %v", got)
	}
	for i, p := range got {
		if p != ft.UplinkPort(i) {
			t.Errorf("candidate %d = %d, want uplink %d", i, p, ft.UplinkPort(i))
		}
	}
	// At the spine: single downlink to the destination leaf.
	spine := ft.Leaves + 2
	got = r.Candidates(spine, 4*4+1, nil)
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("spine downlink = %v, want [4]", got)
	}
}

func TestDimModeString(t *testing.T) {
	if DimFull.String() != "full" || DimRing.String() != "ring" || DimLine.String() != "line" {
		t.Error("DimMode.String mismatch")
	}
}

func TestClos3Routing(t *testing.T) {
	f := topo.MustClos3(4)
	r := NewClos3(f)
	// Local delivery.
	got := r.Candidates(0, 1, nil)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("local = %v", got)
	}
	// From an edge to a remote host: both aggregation uplinks.
	got = r.Candidates(0, 15, nil)
	if len(got) != 2 {
		t.Fatalf("edge up = %v", got)
	}
	for _, p := range got {
		peer, ok := f.Peer(0, p)
		if !ok || !f.IsAgg(peer.ID) {
			t.Fatalf("edge uplink %d not to an aggregation", p)
		}
	}
	// At an aggregation in the destination pod: one downlink.
	agg := f.AggSwitch(0, 0)
	got = r.Candidates(agg, 2, nil) // host 2 is on edge 1 of pod 0
	if len(got) != 1 {
		t.Fatalf("agg down = %v", got)
	}
	peer, _ := f.Peer(agg, got[0])
	if peer.ID != f.EdgeOfHost(2) {
		t.Errorf("agg downlink to sw%d, want %d", peer.ID, f.EdgeOfHost(2))
	}
	// At an aggregation with a cross-pod destination: both core uplinks.
	got = r.Candidates(agg, 15, nil)
	if len(got) != 2 {
		t.Fatalf("agg up = %v", got)
	}
	// At a core: exactly one downlink, into the destination pod.
	core := f.CoreSwitch(0)
	got = r.Candidates(core, 15, nil)
	if len(got) != 1 {
		t.Fatalf("core down = %v", got)
	}
	peer, _ = f.Peer(core, got[0])
	if f.PodOf(peer.ID) != f.PodOfHost(15) {
		t.Errorf("core downlink into pod %d, want %d", f.PodOf(peer.ID), f.PodOfHost(15))
	}
}

// Property: random walks over Clos3 candidates always terminate within
// 4 switch-to-switch hops (edge-agg-core-agg-edge).
func TestClos3RoutingTerminationProperty(t *testing.T) {
	f := topo.MustClos3(6)
	r := NewClos3(f)
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 500; trial++ {
		src := rng.Intn(f.NumHosts())
		dst := rng.Intn(f.NumHosts())
		sw, _ := f.HostAttachment(src)
		dstSw, _ := f.HostAttachment(dst)
		hops := 0
		for sw != dstSw {
			cands := r.Candidates(sw, dst, nil)
			if len(cands) == 0 {
				t.Fatalf("no candidates at sw%d for host %d", sw, dst)
			}
			p := cands[rng.Intn(len(cands))]
			peer, ok := f.Peer(sw, p)
			if !ok || peer.Kind != topo.KindSwitch {
				t.Fatalf("candidate %d at sw%d leads to %v", p, sw, peer)
			}
			sw = peer.ID
			hops++
			if hops > 4 {
				t.Fatalf("walk %d->%d exceeded 4 hops", src, dst)
			}
		}
	}
}

// TestFBFLYDeadLinkMisroute: when the direct link in a dimension fails,
// the router offers non-minimal detours through other switches in the
// same dimension, and never offers the dead port.
func TestFBFLYDeadLinkMisroute(t *testing.T) {
	f := topo.MustFBFLY(8, 2, 8)
	r := NewFBFLY(f)
	dst := 3 * f.C // switch 3
	direct := f.PortToPeer(0, 0, 3)
	if r.Dead(0, direct) {
		t.Fatal("fresh router has dead ports")
	}
	r.SetDead(0, direct, true)
	got := r.Candidates(0, dst, nil)
	if len(got) != f.K-2 {
		t.Fatalf("misroute candidates = %d, want %d", len(got), f.K-2)
	}
	for _, p := range got {
		if p == direct {
			t.Fatal("dead port offered")
		}
		peer, _ := f.Peer(0, p)
		if peer.ID == 3 {
			t.Fatal("candidate reaches destination through the dead port?")
		}
	}
	// From any misrouted switch, the (live) direct link completes the
	// route: one extra hop total.
	for _, p := range got {
		peer, _ := f.Peer(0, p)
		next := r.Candidates(peer.ID, dst, nil)
		if len(next) != 1 {
			t.Fatalf("from sw%d: %d candidates", peer.ID, len(next))
		}
	}
	// Clearing revives the direct route.
	r.SetDead(0, direct, false)
	got = r.Candidates(0, dst, nil)
	if len(got) != 1 || got[0] != direct {
		t.Fatalf("after revive: %v", got)
	}
}
