package routing

import (
	"math/rand"
	"reflect"
	"testing"

	"epnet/internal/topo"
)

// TestFBFLYCandidateCacheDifferential drives a cached router through a
// random interleaving of routing queries and routing-function mutations
// (port failures/repairs, dimension mode changes) and checks every
// answer against a freshly built router mirroring the same state — a
// fresh router computes each set from scratch, so any stale cache entry
// shows up as a divergence.
func TestFBFLYCandidateCacheDifferential(t *testing.T) {
	f := topo.MustFBFLY(4, 3, 2)
	cached := NewFBFLY(f)
	rng := rand.New(rand.NewSource(11))

	type deadPort struct{ sw, port int }
	dead := map[deadPort]bool{}
	modes := make([]DimMode, f.D)

	// mirror rebuilds an identical-state router with a cold cache.
	mirror := func() *FBFLY {
		m := NewFBFLY(f)
		for d, mode := range modes {
			m.SetMode(d, mode)
		}
		for p := range dead {
			m.SetDead(p.sw, p.port, true)
		}
		return m
	}

	hostPorts := f.C // inter-switch ports start above the host ports
	for step := 0; step < 2000; step++ {
		switch rng.Intn(10) {
		case 0: // toggle a random inter-switch port
			sw := rng.Intn(f.NumSwitches())
			port := hostPorts + rng.Intn(f.Radix()-hostPorts)
			p := deadPort{sw, port}
			if dead[p] {
				delete(dead, p)
				cached.SetDead(sw, port, false)
			} else {
				dead[p] = true
				cached.SetDead(sw, port, true)
			}
		case 1: // change a dimension mode
			d := rng.Intn(f.D)
			modes[d] = DimMode(rng.Intn(3))
			cached.SetMode(d, modes[d])
		default:
			sw := rng.Intn(f.NumSwitches())
			dst := rng.Intn(f.NumHosts())
			got := cached.Candidates(sw, dst, nil)
			want := mirror().Candidates(sw, dst, nil)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d: Candidates(%d, %d) = %v, fresh router says %v",
					step, sw, dst, got, want)
			}
		}
	}
}

// TestFBFLYCandidateCacheNoSteadyStateAllocs verifies that once the
// cache rows a traffic pattern touches are warm, routing allocates
// nothing — the property that keeps the fabric's packet path at zero
// allocations per packet.
func TestFBFLYCandidateCacheNoSteadyStateAllocs(t *testing.T) {
	f := topo.MustFBFLY(8, 2, 8)
	r := NewFBFLY(f)
	buf := make([]int, 0, f.Radix())
	warm := func() {
		for sw := 0; sw < f.NumSwitches(); sw++ {
			for dst := 0; dst < f.NumHosts(); dst += f.C {
				buf = r.Candidates(sw, dst, buf[:0])
			}
		}
	}
	warm()
	if avg := testing.AllocsPerRun(50, warm); avg != 0 {
		t.Fatalf("warm candidate queries allocate %v times per sweep, want 0", avg)
	}
}
