// Package routing computes candidate output ports for packets at each
// switch. The fabric package picks among candidates adaptively (smallest
// output queue), which is the paper's per-hop adaptive routing "based
// solely on the output queue depth" (§4.1).
package routing

import (
	"fmt"

	"epnet/internal/telemetry"
	"epnet/internal/topo"
)

// Router yields the legal minimal next-hop output ports for a packet at
// switch sw destined to host dst. Implementations append to buf and
// return the extended slice so the hot path does not allocate.
type Router interface {
	Candidates(sw, dst int, buf []int) []int
}

// PortMasker is a Router that can exclude failed output ports from its
// candidate sets — the contract the fault injector needs. Ports are
// identified as (switch, port); marking a port dead must make the
// router stop offering it (and, where the topology allows, offer live
// detours instead).
type PortMasker interface {
	Router
	// SetDead marks or clears a failed inter-switch port.
	SetDead(sw, port int, dead bool)
	// Dead reports whether a port is marked failed.
	Dead(sw, port int) bool
}

// DimMode is the operating mode of one flattened-butterfly dimension,
// used by the dynamic topology controller (§5.1): a fully connected
// dimension can be degraded to a ring (torus-like) or a line (mesh-like)
// by powering off links.
type DimMode uint8

const (
	// DimFull uses the complete all-to-all wiring of the dimension.
	DimFull DimMode = iota
	// DimRing keeps only links between adjacent coordinates, with
	// wraparound — the torus configuration.
	DimRing
	// DimLine keeps only links between adjacent coordinates, without
	// wraparound — the mesh configuration.
	DimLine
)

func (m DimMode) String() string {
	switch m {
	case DimFull:
		return "full"
	case DimRing:
		return "ring"
	case DimLine:
		return "line"
	default:
		return fmt.Sprintf("DimMode(%d)", uint8(m))
	}
}

// FBFLY routes minimally on a flattened butterfly: like a rook on a
// chessboard, each hop corrects the coordinate of one dimension in
// which the current switch differs from the destination's switch.
// All mismatched dimensions are candidates (the fabric chooses
// adaptively); within a dimension, the candidate port depends on the
// dimension's mode.
//
// Modes may be mutated between packets by the dynamic topology
// controller. Candidate computation itself is safe for concurrent
// callers as long as each switch index is routed from at most one
// goroutine at a time and mutations (SetDead/SetMode) happen only while
// no routing is in flight — exactly the sharded fabric's single-writer
// discipline, where mutations come from the quiesced control plane at
// window barriers.
type FBFLY struct {
	F     *topo.FBFLY
	Modes []DimMode // len == F.D; nil means all DimFull

	// dead marks failed inter-switch ports (keyed sw*radix+port). A
	// dead direct port makes the router offer non-minimal candidates
	// within the same dimension instead — one misroute hop, after which
	// routing proceeds minimally. This realizes the paper's §1 argument
	// that a high-path-diversity network decouples the failure domain
	// from the bandwidth domain.
	dead map[int]bool

	// coords[sw*D+d] is switch sw's coordinate in dimension d,
	// precomputed once so the per-packet dimension walk does no
	// division. O(switches·dims) — the only per-switch state the
	// router materializes eagerly.
	coords []int32

	// rows caches candidate ports per (switch, dimension, wanted
	// coordinate): rows[sw] — allocated the first time switch sw routes
	// off-switch — holds D·K entries indexed d·K + want. A packet's
	// candidate set is the concatenation over its mismatched dimensions
	// in dimension order, which reproduces, entry for entry, the
	// per-destination-pair walk this cache replaces; but the footprint
	// is O(switches·dims·k) where the pair cache was O(switches²) — the
	// difference between ~5 MB and ~670 MB at the paper's 32k-host
	// 8-ary 5-flat. gen invalidates every entry at once when SetDead or
	// SetMode changes the routing function. Rows are indexed by the
	// calling switch, so concurrent shards touch disjoint entries.
	rows [][]candEntry
	gen  uint64
}

// candEntry is one cached candidate set; gen 0 is never current, so the
// zero value reads as invalid.
type candEntry struct {
	gen   uint64
	ports []int
}

// NewFBFLY returns a minimal adaptive router for f with all dimensions
// in full (flattened butterfly) mode.
func NewFBFLY(f *topo.FBFLY) *FBFLY {
	coords := make([]int32, f.NumSwitches()*f.D)
	buf := make([]int, f.D)
	for sw := 0; sw < f.NumSwitches(); sw++ {
		for d, v := range f.CoordsInto(sw, buf) {
			coords[sw*f.D+d] = int32(v)
		}
	}
	return &FBFLY{F: f, Modes: make([]DimMode, f.D), coords: coords,
		rows: make([][]candEntry, f.NumSwitches()), gen: 1}
}

// SetDead marks or clears a failed inter-switch port.
func (r *FBFLY) SetDead(sw, port int, dead bool) {
	if r.dead == nil {
		r.dead = make(map[int]bool)
	}
	key := sw*r.F.Radix() + port
	if dead {
		r.dead[key] = true
	} else {
		delete(r.dead, key)
	}
	r.gen++
}

// Dead reports whether a port is marked failed.
func (r *FBFLY) Dead(sw, port int) bool {
	if r.dead == nil {
		return false
	}
	return r.dead[sw*r.F.Radix()+port]
}

// RegisterMetrics exposes the router's mutable state — failed ports
// and per-dimension topology modes — to a telemetry registry, so a
// sampled time series shows when failures land and when the dynamic
// topology controller degrades or restores a dimension.
func (r *FBFLY) RegisterMetrics(reg *telemetry.Registry) error {
	if err := reg.GaugeFunc("routing.dead_ports",
		func() float64 { return float64(len(r.dead)) }); err != nil {
		return err
	}
	for d := 0; d < r.F.D; d++ {
		d := d
		if err := reg.GaugeFunc(fmt.Sprintf("routing.dim.%d.mode", d),
			func() float64 { return float64(r.Mode(d)) }); err != nil {
			return err
		}
	}
	return nil
}

// Mode returns dimension d's mode.
func (r *FBFLY) Mode(d int) DimMode {
	if r.Modes == nil {
		return DimFull
	}
	return r.Modes[d]
}

// SetMode sets dimension d's mode.
func (r *FBFLY) SetMode(d int, m DimMode) {
	if r.Modes == nil {
		r.Modes = make([]DimMode, r.F.D)
	}
	r.Modes[d] = m
	r.gen++
}

// Candidates implements Router. The inter-switch set is assembled from
// the per-(switch, dimension, wanted coordinate) cache: within one
// dimension the candidate ports depend only on the switch's own
// coordinate (fixed per switch) and the destination's coordinate in
// that dimension, never on the other dimensions, so the per-dimension
// entries compose into exactly the per-destination set.
func (r *FBFLY) Candidates(sw, dst int, buf []int) []int {
	dstSw, dstPort := r.F.HostAttachment(dst)
	if sw == dstSw {
		return append(buf, dstPort)
	}
	d1, k := r.F.D, r.F.K
	row := r.rows[sw]
	if row == nil {
		row = make([]candEntry, d1*k)
		r.rows[sw] = row
	}
	sc := r.coords[sw*d1 : sw*d1+d1]
	dc := r.coords[dstSw*d1 : dstSw*d1+d1]
	for d := 0; d < d1; d++ {
		want := dc[d]
		if sc[d] == want {
			continue
		}
		e := &row[d*k+int(want)]
		if e.gen != r.gen {
			e.ports = r.computeDim(sw, d, int(sc[d]), int(want), e.ports[:0])
			e.gen = r.gen
		}
		buf = append(buf, e.ports...)
	}
	return buf
}

// computeDim appends the candidate ports that correct dimension d from
// coordinate own to want at switch sw — the cached unit of Candidates.
func (r *FBFLY) computeDim(sw, d, own, want int, buf []int) []int {
	f := r.F
	switch r.Mode(d) {
	case DimFull:
		direct := f.PortToPeer(sw, d, want)
		if !r.Dead(sw, direct) {
			return append(buf, direct)
		}
		// The direct link failed: misroute through any live peer in
		// this dimension (one extra hop).
		for v := 0; v < f.K; v++ {
			if v == own || v == want {
				continue
			}
			if p := f.PortToPeer(sw, d, v); !r.Dead(sw, p) {
				buf = append(buf, p)
			}
		}
	case DimRing:
		k := f.K
		fwd := (want - own + k) % k
		bwd := (own - want + k) % k
		// With failures present, greedy shortest-way routing can
		// steer into a dead ring link partway around; walk each arc
		// and only offer directions that reach the target coordinate
		// over live links. Fault-free rings skip the walks entirely.
		blockedFwd, blockedBwd := false, false
		if len(r.dead) > 0 {
			blockedFwd = r.arcBlocked(sw, d, own, want, +1)
			blockedBwd = r.arcBlocked(sw, d, own, want, -1)
		}
		if (fwd <= bwd || blockedBwd) && !blockedFwd {
			buf = append(buf, f.PortToPeer(sw, d, (own+1)%k))
		}
		if (bwd <= fwd || blockedFwd) && !blockedBwd {
			buf = append(buf, f.PortToPeer(sw, d, (own-1+k)%k))
		}
	case DimLine:
		if want > own {
			if len(r.dead) == 0 || !r.arcBlocked(sw, d, own, want, +1) {
				buf = append(buf, f.PortToPeer(sw, d, own+1))
			}
		} else {
			if len(r.dead) == 0 || !r.arcBlocked(sw, d, own, want, -1) {
				buf = append(buf, f.PortToPeer(sw, d, own-1))
			}
		}
	}
	return buf
}

// arcBlocked reports whether walking dimension d from coordinate own to
// want, stepping dir (+1 forward, -1 backward) one coordinate at a
// time with wraparound, crosses a dead link. Degraded (ring/line)
// dimensions route over exactly these single-step links, so a blocked
// arc means the direction cannot reach the target coordinate.
func (r *FBFLY) arcBlocked(sw, d, own, want, dir int) bool {
	f := r.F
	k := f.K
	cur, cc := sw, own
	for cc != want {
		nv := ((cc+dir)%k + k) % k
		p := f.PortToPeer(cur, d, nv)
		if r.dead[cur*f.Radix()+p] {
			return true
		}
		peer, ok := f.Peer(cur, p)
		if !ok {
			return true
		}
		cur, cc = peer.ID, nv
	}
	return false
}

// ActiveInDim reports whether the link from sw through port (which must
// belong to dimension d) is part of the active topology under the
// current mode of its dimension. The dynamic topology controller powers
// off exactly the links for which this is false.
func (r *FBFLY) ActiveInDim(sw, port int) bool {
	f := r.F
	d := f.PortDim(port)
	if d < 0 {
		return true // host ports are always active
	}
	switch r.Mode(d) {
	case DimFull:
		return true
	default:
		own := f.Coord(sw, d)
		peer := f.PeerCoord(sw, port)
		k := f.K
		adjacent := peer == (own+1)%k || peer == (own-1+k)%k
		if !adjacent {
			return false
		}
		if r.Mode(d) == DimLine {
			// No wraparound: the k-1 <-> 0 link is off.
			if (own == k-1 && peer == 0) || (own == 0 && peer == k-1) {
				return false
			}
		}
		return true
	}
}

// DOR is deterministic dimension-order routing on a flattened
// butterfly: always correct the lowest mismatched dimension. It serves
// as the non-adaptive baseline and assumes all dimensions are in full
// mode.
type DOR struct {
	F *topo.FBFLY
}

// Candidates implements Router.
func (r *DOR) Candidates(sw, dst int, buf []int) []int {
	f := r.F
	dstSw, dstPort := f.HostAttachment(dst)
	if sw == dstSw {
		return append(buf, dstPort)
	}
	for d := 0; d < f.D; d++ {
		own := f.Coord(sw, d)
		want := f.Coord(dstSw, d)
		if own != want {
			return append(buf, f.PortToPeer(sw, d, want))
		}
	}
	panic("routing: DOR found no mismatched dimension for non-local packet")
}

// deadSet is the failed-port bookkeeping shared by the up/down routers
// (FBFLY keeps its own map because its misroute logic reads it
// directly). Keys are sw*radix+port; a nil map costs one length test
// on the fault-free path.
type deadSet struct {
	dead  map[int]bool
	radix int
}

// SetDead marks or clears a failed inter-switch port.
func (s *deadSet) SetDead(sw, port int, dead bool) {
	if s.dead == nil {
		s.dead = make(map[int]bool)
	}
	key := sw*s.radix + port
	if dead {
		s.dead[key] = true
	} else {
		delete(s.dead, key)
	}
}

// Dead reports whether a port is marked failed.
func (s *deadSet) Dead(sw, port int) bool {
	if len(s.dead) == 0 {
		return false
	}
	return s.dead[sw*s.radix+port]
}

// FatTree routes on a two-level folded Clos: packets at a leaf go
// directly to a local host, or adaptively up to any spine; packets at a
// spine go down the (unique) port to the destination's leaf. Failed
// uplinks are re-picked among the live spines; a failed downlink has no
// alternative (each spine reaches a leaf by one port), so its packets
// are dropped by the fabric.
type FatTree struct {
	T *topo.FatTree
	deadSet
}

// NewFatTree returns a router for t.
func NewFatTree(t *topo.FatTree) *FatTree {
	return &FatTree{T: t, deadSet: deadSet{radix: t.Radix()}}
}

// Candidates implements Router.
func (r *FatTree) Candidates(sw, dst int, buf []int) []int {
	t := r.T
	if t.IsSpine(sw) {
		if p := t.LeafOfHost(dst); !r.Dead(sw, p) {
			buf = append(buf, p)
		}
		return buf
	}
	leaf, port := t.HostAttachment(dst)
	if leaf == sw {
		return append(buf, port)
	}
	for s := 0; s < t.Spines; s++ {
		if p := t.UplinkPort(s); !r.Dead(sw, p) {
			buf = append(buf, p)
		}
	}
	return buf
}

// Clos3 routes up/down on a three-tier folded Clos: packets climb
// adaptively (any aggregation, then any core) until they reach a common
// ancestor of source and destination, then descend deterministically.
// Up/down routing is deadlock-free by construction. Failed uplinks are
// re-picked among the live ones; failed downlinks (deterministic,
// unique) leave no candidate.
type Clos3 struct {
	T *topo.Clos3
	deadSet
}

// NewClos3 returns a router for t.
func NewClos3(t *topo.Clos3) *Clos3 {
	return &Clos3{T: t, deadSet: deadSet{radix: t.Radix()}}
}

// Candidates implements Router.
func (r *Clos3) Candidates(sw, dst int, buf []int) []int {
	t := r.T
	switch {
	case t.IsEdge(sw):
		dstEdge, dstPort := t.HostAttachment(dst)
		if dstEdge == sw {
			return append(buf, dstPort)
		}
		for a := 0; a < t.K/2; a++ {
			if p := t.AggUplinkPort(a); !r.Dead(sw, p) {
				buf = append(buf, p)
			}
		}
		return buf
	case t.IsAgg(sw):
		pod := t.PodOf(sw)
		if t.PodOfHost(dst) == pod {
			// Down to the destination edge.
			e := t.EdgeOfHost(dst) - pod*(t.K/2)
			if !r.Dead(sw, e) {
				buf = append(buf, e)
			}
			return buf
		}
		for i := 0; i < t.K/2; i++ {
			if p := t.CoreUplinkPort(i); !r.Dead(sw, p) {
				buf = append(buf, p)
			}
		}
		return buf
	default: // core: one downlink per pod
		if p := t.PodOfHost(dst); !r.Dead(sw, p) {
			buf = append(buf, p)
		}
		return buf
	}
}

var (
	_ Router     = (*FBFLY)(nil)
	_ Router     = (*DOR)(nil)
	_ Router     = (*FatTree)(nil)
	_ Router     = (*Clos3)(nil)
	_ PortMasker = (*FBFLY)(nil)
	_ PortMasker = (*FatTree)(nil)
	_ PortMasker = (*Clos3)(nil)
)
