// Package routing computes candidate output ports for packets at each
// switch. The fabric package picks among candidates adaptively (smallest
// output queue), which is the paper's per-hop adaptive routing "based
// solely on the output queue depth" (§4.1).
package routing

import (
	"fmt"

	"epnet/internal/telemetry"
	"epnet/internal/topo"
)

// Router yields the legal minimal next-hop output ports for a packet at
// switch sw destined to host dst. Implementations append to buf and
// return the extended slice so the hot path does not allocate.
type Router interface {
	Candidates(sw, dst int, buf []int) []int
}

// DimMode is the operating mode of one flattened-butterfly dimension,
// used by the dynamic topology controller (§5.1): a fully connected
// dimension can be degraded to a ring (torus-like) or a line (mesh-like)
// by powering off links.
type DimMode uint8

const (
	// DimFull uses the complete all-to-all wiring of the dimension.
	DimFull DimMode = iota
	// DimRing keeps only links between adjacent coordinates, with
	// wraparound — the torus configuration.
	DimRing
	// DimLine keeps only links between adjacent coordinates, without
	// wraparound — the mesh configuration.
	DimLine
)

func (m DimMode) String() string {
	switch m {
	case DimFull:
		return "full"
	case DimRing:
		return "ring"
	case DimLine:
		return "line"
	default:
		return fmt.Sprintf("DimMode(%d)", uint8(m))
	}
}

// FBFLY routes minimally on a flattened butterfly: like a rook on a
// chessboard, each hop corrects the coordinate of one dimension in
// which the current switch differs from the destination's switch.
// All mismatched dimensions are candidates (the fabric chooses
// adaptively); within a dimension, the candidate port depends on the
// dimension's mode.
//
// Modes may be mutated between packets by the dynamic topology
// controller; FBFLY is not safe for concurrent use (the simulator is
// single-threaded by design).
type FBFLY struct {
	F     *topo.FBFLY
	Modes []DimMode // len == F.D; nil means all DimFull

	// dead marks failed inter-switch ports (keyed sw*radix+port). A
	// dead direct port makes the router offer non-minimal candidates
	// within the same dimension instead — one misroute hop, after which
	// routing proceeds minimally. This realizes the paper's §1 argument
	// that a high-path-diversity network decouples the failure domain
	// from the bandwidth domain.
	dead map[int]bool
}

// NewFBFLY returns a minimal adaptive router for f with all dimensions
// in full (flattened butterfly) mode.
func NewFBFLY(f *topo.FBFLY) *FBFLY {
	return &FBFLY{F: f, Modes: make([]DimMode, f.D)}
}

// SetDead marks or clears a failed inter-switch port.
func (r *FBFLY) SetDead(sw, port int, dead bool) {
	if r.dead == nil {
		r.dead = make(map[int]bool)
	}
	key := sw*r.F.Radix() + port
	if dead {
		r.dead[key] = true
	} else {
		delete(r.dead, key)
	}
}

// Dead reports whether a port is marked failed.
func (r *FBFLY) Dead(sw, port int) bool {
	if r.dead == nil {
		return false
	}
	return r.dead[sw*r.F.Radix()+port]
}

// RegisterMetrics exposes the router's mutable state — failed ports
// and per-dimension topology modes — to a telemetry registry, so a
// sampled time series shows when failures land and when the dynamic
// topology controller degrades or restores a dimension.
func (r *FBFLY) RegisterMetrics(reg *telemetry.Registry) error {
	if err := reg.GaugeFunc("routing.dead_ports",
		func() float64 { return float64(len(r.dead)) }); err != nil {
		return err
	}
	for d := 0; d < r.F.D; d++ {
		d := d
		if err := reg.GaugeFunc(fmt.Sprintf("routing.dim.%d.mode", d),
			func() float64 { return float64(r.Mode(d)) }); err != nil {
			return err
		}
	}
	return nil
}

// Mode returns dimension d's mode.
func (r *FBFLY) Mode(d int) DimMode {
	if r.Modes == nil {
		return DimFull
	}
	return r.Modes[d]
}

// SetMode sets dimension d's mode.
func (r *FBFLY) SetMode(d int, m DimMode) {
	if r.Modes == nil {
		r.Modes = make([]DimMode, r.F.D)
	}
	r.Modes[d] = m
}

// Candidates implements Router.
func (r *FBFLY) Candidates(sw, dst int, buf []int) []int {
	f := r.F
	dstSw, dstPort := f.HostAttachment(dst)
	if sw == dstSw {
		return append(buf, dstPort)
	}
	for d := 0; d < f.D; d++ {
		own := f.Coord(sw, d)
		want := f.Coord(dstSw, d)
		if own == want {
			continue
		}
		switch r.Mode(d) {
		case DimFull:
			direct := f.PortToPeer(sw, d, want)
			if !r.Dead(sw, direct) {
				buf = append(buf, direct)
				continue
			}
			// The direct link failed: misroute through any live peer in
			// this dimension (one extra hop).
			for v := 0; v < f.K; v++ {
				if v == own || v == want {
					continue
				}
				if p := f.PortToPeer(sw, d, v); !r.Dead(sw, p) {
					buf = append(buf, p)
				}
			}
		case DimRing:
			k := f.K
			fwd := (want - own + k) % k
			bwd := (own - want + k) % k
			if fwd <= bwd {
				buf = append(buf, f.PortToPeer(sw, d, (own+1)%k))
			}
			if bwd <= fwd {
				buf = append(buf, f.PortToPeer(sw, d, (own-1+k)%k))
			}
		case DimLine:
			if want > own {
				buf = append(buf, f.PortToPeer(sw, d, own+1))
			} else {
				buf = append(buf, f.PortToPeer(sw, d, own-1))
			}
		}
	}
	return buf
}

// ActiveInDim reports whether the link from sw through port (which must
// belong to dimension d) is part of the active topology under the
// current mode of its dimension. The dynamic topology controller powers
// off exactly the links for which this is false.
func (r *FBFLY) ActiveInDim(sw, port int) bool {
	f := r.F
	d := f.PortDim(port)
	if d < 0 {
		return true // host ports are always active
	}
	switch r.Mode(d) {
	case DimFull:
		return true
	default:
		own := f.Coord(sw, d)
		peer := f.PeerCoord(sw, port)
		k := f.K
		adjacent := peer == (own+1)%k || peer == (own-1+k)%k
		if !adjacent {
			return false
		}
		if r.Mode(d) == DimLine {
			// No wraparound: the k-1 <-> 0 link is off.
			if (own == k-1 && peer == 0) || (own == 0 && peer == k-1) {
				return false
			}
		}
		return true
	}
}

// DOR is deterministic dimension-order routing on a flattened
// butterfly: always correct the lowest mismatched dimension. It serves
// as the non-adaptive baseline and assumes all dimensions are in full
// mode.
type DOR struct {
	F *topo.FBFLY
}

// Candidates implements Router.
func (r *DOR) Candidates(sw, dst int, buf []int) []int {
	f := r.F
	dstSw, dstPort := f.HostAttachment(dst)
	if sw == dstSw {
		return append(buf, dstPort)
	}
	for d := 0; d < f.D; d++ {
		own := f.Coord(sw, d)
		want := f.Coord(dstSw, d)
		if own != want {
			return append(buf, f.PortToPeer(sw, d, want))
		}
	}
	panic("routing: DOR found no mismatched dimension for non-local packet")
}

// FatTree routes on a two-level folded Clos: packets at a leaf go
// directly to a local host, or adaptively up to any spine; packets at a
// spine go down the (unique) port to the destination's leaf.
type FatTree struct {
	T *topo.FatTree
}

// NewFatTree returns a router for t.
func NewFatTree(t *topo.FatTree) *FatTree { return &FatTree{T: t} }

// Candidates implements Router.
func (r *FatTree) Candidates(sw, dst int, buf []int) []int {
	t := r.T
	if t.IsSpine(sw) {
		return append(buf, t.LeafOfHost(dst))
	}
	leaf, port := t.HostAttachment(dst)
	if leaf == sw {
		return append(buf, port)
	}
	for s := 0; s < t.Spines; s++ {
		buf = append(buf, t.UplinkPort(s))
	}
	return buf
}

// Clos3 routes up/down on a three-tier folded Clos: packets climb
// adaptively (any aggregation, then any core) until they reach a common
// ancestor of source and destination, then descend deterministically.
// Up/down routing is deadlock-free by construction.
type Clos3 struct {
	T *topo.Clos3
}

// NewClos3 returns a router for t.
func NewClos3(t *topo.Clos3) *Clos3 { return &Clos3{T: t} }

// Candidates implements Router.
func (r *Clos3) Candidates(sw, dst int, buf []int) []int {
	t := r.T
	switch {
	case t.IsEdge(sw):
		dstEdge, dstPort := t.HostAttachment(dst)
		if dstEdge == sw {
			return append(buf, dstPort)
		}
		for a := 0; a < t.K/2; a++ {
			buf = append(buf, t.AggUplinkPort(a))
		}
		return buf
	case t.IsAgg(sw):
		pod := t.PodOf(sw)
		if t.PodOfHost(dst) == pod {
			// Down to the destination edge.
			e := t.EdgeOfHost(dst) - pod*(t.K/2)
			return append(buf, e)
		}
		for i := 0; i < t.K/2; i++ {
			buf = append(buf, t.CoreUplinkPort(i))
		}
		return buf
	default: // core: one downlink per pod
		return append(buf, t.PodOfHost(dst))
	}
}

var (
	_ Router = (*FBFLY)(nil)
	_ Router = (*DOR)(nil)
	_ Router = (*FatTree)(nil)
	_ Router = (*Clos3)(nil)
)
