// Package cli is the one flag surface shared by every command that
// builds an epnet.Config. Each binary used to own a hand-rolled copy of
// the same two dozen flags with drifting names and defaults; now they
// all Bind a Loader (plus an Outputs group for telemetry files) and
// differ only in their command-specific flags.
//
// Resolution precedence, lowest to highest:
//
//  1. the base Config the command binds with,
//  2. -preset (a named preset replaces the base),
//  3. -scenario (an embedded scenario, preset name, or file; its
//     config block overlays the result),
//  4. flags the user explicitly set on the command line.
//
// Only explicitly set flags apply — a flag left at its default never
// clobbers a preset or scenario value, and binding with a non-default
// base (as cmd/experiments does with the evaluation scale) keeps that
// base intact.
package cli

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"epnet"
)

// Loader binds the shared simulation-config flags and resolves them to
// an epnet.Config.
type Loader struct {
	fs   *flag.FlagSet
	base epnet.Config

	// Preset and Scenario mirror the -preset / -scenario flags.
	Preset   string
	Scenario string

	apply map[string]func(*epnet.Config)
}

// Bind registers the config flags on fs with defaults drawn from base.
func (l *Loader) Bind(fs *flag.FlagSet, base epnet.Config) {
	l.fs, l.base = fs, base
	l.apply = map[string]func(*epnet.Config){}

	str := func(name, def, usage string, set func(*epnet.Config, string)) {
		p := fs.String(name, def, usage)
		l.apply[name] = func(c *epnet.Config) { set(c, *p) }
	}
	num := func(name string, def int, usage string, set func(*epnet.Config, int)) {
		p := fs.Int(name, def, usage)
		l.apply[name] = func(c *epnet.Config) { set(c, *p) }
	}
	f64 := func(name string, def float64, usage string, set func(*epnet.Config, float64)) {
		p := fs.Float64(name, def, usage)
		l.apply[name] = func(c *epnet.Config) { set(c, *p) }
	}
	boolean := func(name string, def bool, usage string, set func(*epnet.Config, bool)) {
		p := fs.Bool(name, def, usage)
		l.apply[name] = func(c *epnet.Config) { set(c, *p) }
	}
	dur := func(name string, def time.Duration, usage string, set func(*epnet.Config, time.Duration)) {
		p := fs.Duration(name, def, usage)
		l.apply[name] = func(c *epnet.Config) { set(c, *p) }
	}

	fs.StringVar(&l.Preset, "preset", "",
		"start from a named preset ("+strings.Join(epnet.PresetNames(), " | ")+"); other flags override it")
	fs.StringVar(&l.Scenario, "scenario", "",
		"run a scenario: an embedded name ("+strings.Join(epnet.ScenarioNames(), " | ")+"), a preset name, or a scenario JSON file; explicit flags override its config block")

	str("topology", string(base.Topology), "topology: fbfly | fattree | clos3",
		func(c *epnet.Config, v string) { c.Topology = epnet.TopologyKind(v) })
	num("k", base.K, "FBFLY radix per dimension (or fat-tree leaf/spine count)",
		func(c *epnet.Config, v int) { c.K = v })
	num("n", base.N, "FBFLY n (dimensions incl. host dimension)",
		func(c *epnet.Config, v int) { c.N = v })
	num("c", base.C, "concentration: hosts per switch",
		func(c *epnet.Config, v int) { c.C = v })
	str("workload", string(base.Workload), "workload: uniform | search | advert | permutation | hotspot | tornado | incast | migration | trace",
		func(c *epnet.Config, v string) { c.Workload = epnet.WorkloadKind(v) })
	str("trace", base.TracePath, "trace file for -workload trace (see tracegen)",
		func(c *epnet.Config, v string) { c.TracePath = v })
	f64("load", base.Load, "override workload average utilization (0 = workload default)",
		func(c *epnet.Config, v float64) { c.Load = v })
	str("policy", string(base.Policy), "policy: baseline | halve-double | min-max | hysteresis | static-min | queue-aware",
		func(c *epnet.Config, v string) { c.Policy = epnet.PolicyKind(v) })
	str("routing", "adaptive", "routing: adaptive | dor",
		func(c *epnet.Config, v string) { c.Routing = epnet.RoutingKind(v) })
	boolean("mode-aware", base.ModeAwareReactivation, "mode-aware reactivation penalties (CDR vs lane retraining)",
		func(c *epnet.Config, v bool) { c.ModeAwareReactivation = v })
	num("fail-links", base.FailLinks, "abruptly fail this many inter-switch link pairs mid-run",
		func(c *epnet.Config, v int) { c.FailLinks = v })
	str("faults", base.Faults, `deterministic fault schedule, e.g. "50us fail-link s0p8; 400us repair-link s0p8"`,
		func(c *epnet.Config, v string) { c.Faults = v })
	f64("fault-rate", base.FaultRate, "seeded-random faults per simulated millisecond",
		func(c *epnet.Config, v float64) { c.FaultRate = v })
	dur("fault-mttr", base.FaultMTTR, "mean time to repair for -fault-rate faults (default 200us)",
		func(c *epnet.Config, v time.Duration) { c.FaultMTTR = v })
	f64("target", base.TargetUtil, "target channel utilization",
		func(c *epnet.Config, v float64) { c.TargetUtil = v })
	boolean("independent", base.Independent, "tune unidirectional channels independently",
		func(c *epnet.Config, v bool) { c.Independent = v })
	dur("reactivation", base.Reactivation, "link reactivation time",
		func(c *epnet.Config, v time.Duration) { c.Reactivation = v })
	dur("epoch", base.Epoch, "utilization epoch (default 10x reactivation)",
		func(c *epnet.Config, v time.Duration) { c.Epoch = v })
	dur("warmup", base.Warmup, "warmup before measurement",
		func(c *epnet.Config, v time.Duration) { c.Warmup = v })
	dur("duration", base.Duration, "measurement window (scenarios derive it from their phases)",
		func(c *epnet.Config, v time.Duration) { c.Duration = v })
	p := fs.Int64("seed", base.Seed, "random seed")
	l.apply["seed"] = func(c *epnet.Config) { c.Seed = *p }
	num("shards", base.Shards, "parallel simulation shards (0 = auto: one per CPU; 1 = serial; results are byte-identical)",
		func(c *epnet.Config, v int) { c.Shards = v })
	boolean("dyntopo", base.DynTopo, "enable the dynamic topology controller",
		func(c *epnet.Config, v bool) { c.DynTopo = v })
}

// Resolve builds the Config from the bound base.
func (l *Loader) Resolve() (epnet.Config, error) { return l.ResolveFrom(l.base) }

// ResolveFrom builds the Config from an alternative base — the hook for
// commands whose base is itself flag-selected (cmd/experiments' -full).
func (l *Loader) ResolveFrom(base epnet.Config) (epnet.Config, error) {
	cfg := base
	if l.Preset != "" {
		p, err := epnet.Preset(l.Preset)
		if err != nil {
			return epnet.Config{}, err
		}
		cfg = p
	}
	if l.Scenario != "" {
		s, err := epnet.LoadScenario(l.Scenario, cfg)
		if err != nil {
			return epnet.Config{}, err
		}
		cfg = s
	}
	l.fs.Visit(func(f *flag.Flag) {
		if apply, ok := l.apply[f.Name]; ok {
			apply(&cfg)
		}
	})
	return cfg, nil
}

// Outputs is the shared telemetry-output flag group: metric/trace/
// heatmap/histogram/profile files, the sampling interval, and the live
// inspection endpoint.
type Outputs struct {
	MetricsOut     string
	TraceOut       string
	HeatmapOut     string
	HistOut        string
	ProfileOut     string
	FlowTrace      bool
	FlowSample     float64
	FlowsOut       string
	SampleInterval time.Duration
	Listen         string

	component string
}

// BindOutputs registers the group on fs. component names the binary in
// messages; perRun switches the help text for grid commands, whose
// files get per-run numeric suffixes.
func (o *Outputs) BindOutputs(fs *flag.FlagSet, component string, perRun bool) {
	o.component = component
	suffix := ""
	if perRun {
		suffix = "; each run gets a numeric suffix (telemetry.csv -> telemetry.000.csv)"
	}
	fs.StringVar(&o.MetricsOut, "metrics-out", "",
		"write the sampled metric time series to this file (CSV, or JSON Lines with a .jsonl extension)"+suffix)
	fs.StringVar(&o.TraceOut, "trace-out", "",
		"write a Chrome trace_event JSON file (open in chrome://tracing or ui.perfetto.dev)"+suffix)
	fs.StringVar(&o.HeatmapOut, "heatmap-out", "",
		"write the per-link utilization x time heatmap CSV to this file"+suffix)
	fs.StringVar(&o.HistOut, "hist-out", "",
		"write the link-utilization histogram CSV (Fig 8 view) to this file"+suffix)
	fs.StringVar(&o.ProfileOut, "profile-out", "",
		"write the engine self-profile to this file (JSON, or CSV with a .csv extension)"+suffix)
	fs.BoolVar(&o.FlowTrace, "flow-trace", false,
		"hash-sample packets and decompose their latency per hop (queue/credit/retune/busy/cut-through/serialize/wire/route)")
	fs.Float64Var(&o.FlowSample, "flow-sample", 0,
		"flow-tracing sample rate in (0,1] (default 1/64; 1 traces every packet)")
	fs.StringVar(&o.FlowsOut, "flows-out", "",
		"write the flow-trace report to this file (JSON, or per-phase CSV with a .csv extension); implies -flow-trace"+suffix)
	fs.DurationVar(&o.SampleInterval, "sample-interval", 0,
		"metrics sampling period (default: one epoch)")
	fs.StringVar(&o.Listen, "listen", "",
		`serve live inspection HTTP on this address (e.g. ":9090"): /metrics, /snapshot, /profile, /flows, /debug/pprof/`)
}

// inspector starts the live endpoint when -listen is set, announcing it
// on stderr like every command always has.
func (o *Outputs) inspector() (*epnet.Inspector, error) {
	if o.Listen == "" {
		return nil, nil
	}
	insp, addr, err := epnet.StartInspector(o.Listen)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "%s: inspector listening on http://%s\n", o.component, addr)
	return insp, nil
}

// Stamp applies the group to one Config — the single-run (epsim) path.
func (o *Outputs) Stamp(cfg *epnet.Config) error {
	cfg.MetricsOut = o.MetricsOut
	cfg.TraceOut = o.TraceOut
	cfg.HeatmapOut = o.HeatmapOut
	cfg.HistOut = o.HistOut
	cfg.ProfileOut = o.ProfileOut
	if o.FlowTrace {
		cfg.FlowTrace = true
	}
	if o.FlowSample > 0 {
		cfg.FlowSample = o.FlowSample
	}
	if o.FlowsOut != "" {
		cfg.FlowsOut = o.FlowsOut
	}
	cfg.SampleInterval = o.SampleInterval
	if o.TraceOut != "" && cfg.Shards == 0 {
		// Auto-sharding (Shards == 0) resolves to the serial engine when
		// packet tracing is on — say so instead of silently running
		// serial. An explicit -shards > 1 with -trace-out is rejected by
		// Validate with a ConfigFieldError.
		fmt.Fprintf(os.Stderr, "%s: -trace-out needs the serial engine; running with shards=1\n",
			o.component)
	}
	insp, err := o.inspector()
	if err != nil {
		return err
	}
	if insp != nil {
		cfg.Inspector = insp
	}
	return nil
}

// Telemetry converts the group to per-run telemetry options — the grid
// (sweep, experiments) path.
func (o *Outputs) Telemetry() (*epnet.TelemetryOpts, error) {
	t := &epnet.TelemetryOpts{
		MetricsOut:     o.MetricsOut,
		TraceOut:       o.TraceOut,
		HeatmapOut:     o.HeatmapOut,
		HistOut:        o.HistOut,
		ProfileOut:     o.ProfileOut,
		FlowsOut:       o.FlowsOut,
		FlowTrace:      o.FlowTrace,
		FlowSample:     o.FlowSample,
		SampleInterval: o.SampleInterval,
	}
	insp, err := o.inspector()
	if err != nil {
		return nil, err
	}
	t.Inspector = insp
	return t, nil
}
