package cli

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"epnet"
)

// resolve binds a fresh Loader against base, parses args, and resolves.
func resolve(t *testing.T, base epnet.Config, args ...string) epnet.Config {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var l Loader
	l.Bind(fs, base)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	cfg, err := l.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestLoaderPrecedence pins the documented resolution order: base, then
// -preset (replaces), then -scenario (overlays), then explicitly set
// flags — and, crucially, that flag defaults never clobber anything.
func TestLoaderPrecedence(t *testing.T) {
	base := epnet.DefaultConfig()
	base.Warmup = 123 * time.Microsecond

	// No flags: the base comes back untouched.
	if got := resolve(t, base); got.Warmup != base.Warmup || got.K != base.K {
		t.Errorf("bare resolve mutated the base: %+v", got)
	}

	// A non-default base survives binding: the flag defaults mirror it,
	// so parsing no flags cannot regress it to library defaults.
	big := epnet.DefaultConfig()
	big.K, big.C = 15, 15
	if got := resolve(t, big); got.K != 15 || got.C != 15 {
		t.Errorf("non-default base regressed: k=%d c=%d", got.K, got.C)
	}

	// -preset replaces the base wholesale.
	p, err := epnet.Preset("paper-clos3")
	if err != nil {
		t.Fatal(err)
	}
	got := resolve(t, base, "-preset", "paper-clos3")
	if got.Topology != p.Topology || got.K != p.K {
		t.Errorf("-preset did not replace the base: got %s k=%d, want %s k=%d",
			got.Topology, got.K, p.Topology, p.K)
	}

	// An explicit flag overrides the preset; untouched preset fields stay.
	got = resolve(t, base, "-preset", "paper-clos3", "-k", "4")
	if got.K != 4 {
		t.Errorf("explicit -k lost to the preset: k=%d", got.K)
	}
	if got.Topology != p.Topology {
		t.Errorf("explicit -k clobbered unrelated preset fields: topology=%s", got.Topology)
	}

	// A scenario's config block overlays the base, and explicit flags
	// still win over the scenario.
	dir := t.TempDir()
	doc := `{"version": 1, "config": {"seed": 99, "k": 6, "c": 6},
	  "phases": [{"name": "only", "duration": "100us",
	    "traffic": [{"workload": "uniform"}]}]}`
	path := filepath.Join(dir, "s.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	got = resolve(t, base, "-scenario", path)
	if got.Seed != 99 || got.K != 6 {
		t.Errorf("scenario config block not applied: seed=%d k=%d", got.Seed, got.K)
	}
	if got.Warmup != base.Warmup {
		t.Errorf("scenario clobbered a base field it never set: warmup=%v", got.Warmup)
	}
	got = resolve(t, base, "-scenario", path, "-seed", "7")
	if got.Seed != 7 {
		t.Errorf("explicit -seed lost to the scenario: seed=%d", got.Seed)
	}
	if got.K != 6 {
		t.Errorf("explicit -seed clobbered the scenario's k: %d", got.K)
	}

	// Unknown references and bad scenario files are loader errors.
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var l Loader
	l.Bind(fs, base)
	if err := fs.Parse([]string{"-preset", "nope"}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Resolve(); err == nil {
		t.Error("unknown preset resolved without error")
	}
}

// TestResolveFrom pins the cmd/experiments hook: the alternative base
// wins over the bound one, and explicit flags still apply on top.
func TestResolveFrom(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var l Loader
	l.Bind(fs, epnet.DefaultConfig())
	if err := fs.Parse([]string{"-warmup", "77us"}); err != nil {
		t.Fatal(err)
	}
	alt := epnet.PaperConfig()
	got, err := l.ResolveFrom(alt)
	if err != nil {
		t.Fatal(err)
	}
	if got.K != alt.K || got.Topology != alt.Topology {
		t.Errorf("ResolveFrom ignored the alternative base: k=%d", got.K)
	}
	if got.Warmup != 77*time.Microsecond {
		t.Errorf("explicit flag not applied over the alternative base: %v", got.Warmup)
	}
}
