package scenario

// PhaseSeed derives the deterministic RNG seed for one named stream of
// one named phase from the run seed. The derivation is pinned — FNV-1a
// over the phase name, a fixed separator, FNV-1a over the stream
// label, a splitmix64 finalizer, XORed onto the run seed — and depends
// only on (seed, phase, stream), never on the phase's position in the
// scenario. Inserting, removing, or reordering phases therefore never
// perturbs another phase's traffic or fault history; only renaming a
// phase re-rolls its streams.
//
// The first phase's first traffic stream is the exception by design:
// the embedding package gives it the run seed verbatim, so a
// single-phase scenario reproduces the equivalent flag-configured run
// byte for byte.
func PhaseSeed(seed int64, phase, stream string) int64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(phase); i++ {
		h ^= uint64(phase[i])
		h *= fnvPrime
	}
	h ^= 0x9E3779B97F4A7C15 // separator: "a"/"bc" != "ab"/"c"
	for i := 0; i < len(stream); i++ {
		h ^= uint64(stream[i])
		h *= fnvPrime
	}
	// splitmix64 finalizer: phase/stream labels are short and
	// low-entropy, the generators want well-mixed seeds.
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return seed ^ int64(h)
}

// sliceSeed derives the seed for slice s of a shaped (paced) stream.
// Slice 0 keeps the stream seed, so a one-step shape degenerates to
// the unshaped stream exactly.
func sliceSeed(seed int64, s int) int64 {
	if s == 0 {
		return seed
	}
	return seed ^ int64(s)*-0x61C8864680B583EB // golden-ratio odd multiplier
}
