// Package scenario defines the versioned JSON scenario DSL: named
// phases composing traffic (workload kind, load, diurnal/ramp load
// shapes), fault/chaos campaigns (scripted schedules, seeded-Poisson
// background faults, correlated failure groups), and policy switches
// at phase boundaries. The epnet package executes a parsed Scenario on
// the control-plane engine, where sharded runs are already quiescent,
// so scenario runs stay byte-identical across shard counts.
//
// A scenario document looks like:
//
//	{
//	  "version": 1,
//	  "name": "diurnal",
//	  "config": {"workload": "search"},
//	  "phases": [
//	    {"name": "day", "duration": "600us",
//	     "traffic": [{"workload": "search", "load": 0.12,
//	                  "shape": {"kind": "diurnal", "min_load": 0.02}}]},
//	    {"name": "night", "duration": "300us",
//	     "traffic": [{"workload": "search", "load": 0.03}],
//	     "policy": {"kind": "min-max"}}
//	  ]
//	}
//
// The "config" block carries overrides for the embedding run
// configuration (epnet.Config's strict JSON form); this package treats
// it as opaque bytes so that the dependency points from epnet to
// scenario, never back.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"epnet/internal/fault"
)

// Version is the only scenario schema version this library reads.
const Version = 1

// Duration is a time.Duration that marshals to JSON as a Go duration
// string ("250us", "1.5ms") and unmarshals from either a string or a
// bare number of nanoseconds.
type Duration time.Duration

// D converts to the standard library type.
func (d Duration) D() time.Duration { return time.Duration(d) }

// String formats like time.Duration but ASCII-only ("µs" -> "us"), so
// scenario files round-trip through any editor or shell.
func (d Duration) String() string {
	return strings.ReplaceAll(time.Duration(d).String(), "µ", "u")
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] != '"' {
		var ns int64
		if err := json.Unmarshal(data, &ns); err != nil {
			return fmt.Errorf("duration %s: want a string like \"250us\" or nanoseconds", data)
		}
		*d = Duration(ns)
		return nil
	}
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("duration %q: %v", s, err)
	}
	*d = Duration(v)
	return nil
}

// Scenario is one parsed scenario document.
type Scenario struct {
	Version int    `json:"version"`
	Name    string `json:"name,omitempty"`
	Notes   string `json:"notes,omitempty"`

	// Config carries overrides for the run configuration in
	// epnet.Config's strict JSON form. Opaque at this layer; the
	// embedding package applies it at load time.
	Config json.RawMessage `json:"config,omitempty"`

	Phases []Phase `json:"phases"`
}

// Phase is one named slice of the run's timeline. Phases execute in
// order; each phase's traffic streams inject only inside its window
// (in-flight packets drain naturally into the next phase). A phase
// with no traffic is a quiet (drain) interval.
type Phase struct {
	Name     string   `json:"name"`
	Duration Duration `json:"duration"`

	// Traffic lists the streams active during this phase. Multiple
	// entries run concurrently (mixed tenants), each on its own
	// derived seed.
	Traffic []Traffic `json:"traffic,omitempty"`

	// Policy, when set, switches the link-control policy at this
	// phase's start. Nil keeps the previous phase's policy.
	Policy *Policy `json:"policy,omitempty"`

	// Chaos, when set, runs a fault campaign inside this phase's
	// window.
	Chaos *Chaos `json:"chaos,omitempty"`
}

// Traffic is one workload stream inside a phase.
type Traffic struct {
	// Workload is a workload kind from Kinds (trace replay is not
	// available inside scenarios).
	Workload string `json:"workload"`
	// Load overrides the workload's default mean utilization when
	// positive. Shaped traffic requires it (the shape needs a peak).
	Load float64 `json:"load,omitempty"`
	// Shape modulates the load across the phase; nil or "flat" offers
	// Load for the whole phase.
	Shape *Shape `json:"shape,omitempty"`
}

// Shape kinds.
const (
	ShapeFlat    = "flat"    // constant load (the default)
	ShapeRamp    = "ramp"    // linear min_load -> load across the phase
	ShapeDiurnal = "diurnal" // raised cosine between min_load and load
)

// DefaultShapeSteps is the staircase resolution for shaped traffic
// when Steps is unset.
const DefaultShapeSteps = 8

// Shape modulates a stream's load across its phase as a staircase:
// the phase is cut into Steps equal slices and each slice offers the
// shape's load at the slice midpoint. The staircase keeps generators
// allocation-free per packet — each slice is one ordinary streaming
// generator at a fixed load.
type Shape struct {
	Kind string `json:"kind"`
	// MinLoad is the shape's trough (default 0). A slice whose load
	// rounds to zero injects nothing.
	MinLoad float64 `json:"min_load,omitempty"`
	// Period is the diurnal cycle length (default: the whole phase).
	Period Duration `json:"period,omitempty"`
	// Steps is the staircase resolution (default DefaultShapeSteps).
	Steps int `json:"steps,omitempty"`
}

// Policy switches the link-control policy at a phase boundary. Kind is
// an epnet.PolicyKind; validated by the embedding package, which owns
// the enum.
type Policy struct {
	Kind string `json:"kind"`
	// TargetUtil overrides the target channel utilization when
	// positive; zero keeps the run-level target.
	TargetUtil float64 `json:"target_util,omitempty"`
}

// Chaos is one phase's fault campaign. All three mechanisms compose;
// offsets in Script are relative to the phase start, and the random
// processes stop generating at the phase end (repairs may land later).
type Chaos struct {
	// Script is a deterministic fault schedule in internal/fault's
	// grammar ("50us fail-link s0p8; 400us repair-link s0p8").
	Script string `json:"script,omitempty"`
	// Rate, when positive, runs the seeded-Poisson single-link fault
	// process at this many expected events per simulated millisecond,
	// with mean repair time MTTR (default 200us).
	Rate float64  `json:"rate,omitempty"`
	MTTR Duration `json:"mttr,omitempty"`
	// Groups declares correlated failure domains; GroupRate, when
	// positive, fails whole groups at this expected rate per
	// simulated millisecond, repairing each after a mean GroupMTTR
	// (default 2x MTTR's default).
	Groups    []Group  `json:"groups,omitempty"`
	GroupRate float64  `json:"group_rate,omitempty"`
	GroupMTTR Duration `json:"group_mttr,omitempty"`
}

// Group kinds.
const (
	// GroupRackPower partitions switches into domains of Size
	// consecutive switches — a shared rack power feed.
	GroupRackPower = "rack-power"
	// GroupOpticsBundle partitions inter-switch links into bundles of
	// Size consecutive pairs (wiring order) — fibers sharing one
	// ribbon/amplifier.
	GroupOpticsBundle = "optics-bundle"
	// GroupSwitches is an explicit switch list.
	GroupSwitches = "switches"
)

// Group declares one class of correlated failure domains.
type Group struct {
	Kind string `json:"kind"`
	// Size is the domain size for rack-power / optics-bundle kinds.
	Size int `json:"size,omitempty"`
	// Switches is the explicit member list for the "switches" kind.
	Switches []int `json:"switches,omitempty"`
}

// Error is a scenario parse or validation error, carrying a JSON-ish
// path to the offending element.
type Error struct {
	Path   string // e.g. "phases[2].traffic[0].workload"
	Reason string
}

// Error implements error.
func (e *Error) Error() string {
	if e.Path == "" {
		return "scenario: " + e.Reason
	}
	return fmt.Sprintf("scenario: %s: %s", e.Path, e.Reason)
}

func errf(path, format string, args ...any) error {
	return &Error{Path: path, Reason: fmt.Sprintf(format, args...)}
}

// Parse decodes a scenario document strictly — unknown fields anywhere
// in the document are rejected — and validates it.
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		if f, ok := unknownField(err); ok {
			return nil, errf(f, "unknown field")
		}
		return nil, errf("", "%v", err)
	}
	// Trailing garbage after the document is a malformed file, not a
	// second scenario.
	if dec.More() {
		return nil, errf("", "trailing data after scenario document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// unknownField extracts the field name from encoding/json's
// DisallowUnknownFields error, which is only exposed as text.
func unknownField(err error) (string, bool) {
	const marker = `unknown field "`
	msg := err.Error()
	i := strings.Index(msg, marker)
	if i < 0 {
		return "", false
	}
	rest := msg[i+len(marker):]
	if j := strings.IndexByte(rest, '"'); j >= 0 {
		return rest[:j], true
	}
	return "", false
}

// Validate checks the scenario's structure: version, unique non-empty
// phase names (seed derivation keys on them), positive durations,
// known workload kinds and shapes, and parsable chaos campaigns.
// Policy kinds are validated by the embedding package, which owns that
// enum.
func (s *Scenario) Validate() error {
	if s.Version != Version {
		return errf("version", "unsupported version %d (this library reads %d)", s.Version, Version)
	}
	if len(s.Phases) == 0 {
		return errf("phases", "at least one phase is required")
	}
	seen := make(map[string]bool, len(s.Phases))
	for i := range s.Phases {
		p := &s.Phases[i]
		path := fmt.Sprintf("phases[%d]", i)
		if p.Name == "" {
			return errf(path+".name", "phase names are required (seeds derive from them)")
		}
		if seen[p.Name] {
			return errf(path+".name", "duplicate phase name %q", p.Name)
		}
		seen[p.Name] = true
		if p.Duration <= 0 {
			return errf(path+".duration", "must be positive, got %v", p.Duration)
		}
		for j := range p.Traffic {
			if err := p.Traffic[j].validate(fmt.Sprintf("%s.traffic[%d]", path, j)); err != nil {
				return err
			}
		}
		if p.Chaos != nil {
			if err := p.Chaos.validate(path + ".chaos"); err != nil {
				return err
			}
		}
		if p.Policy != nil {
			if p.Policy.Kind == "" {
				return errf(path+".policy.kind", "policy switches need a kind")
			}
			if p.Policy.TargetUtil < 0 || p.Policy.TargetUtil > 1 {
				return errf(path+".policy.target_util", "%v out of [0,1]", p.Policy.TargetUtil)
			}
		}
	}
	return nil
}

func (t *Traffic) validate(path string) error {
	if !KnownKind(t.Workload) {
		return errf(path+".workload", "unknown workload %q (have %s)",
			t.Workload, strings.Join(Kinds(), " | "))
	}
	if t.Load < 0 || t.Load >= 1 {
		return errf(path+".load", "%v out of [0,1)", t.Load)
	}
	if sh := t.Shape; sh != nil {
		switch sh.Kind {
		case ShapeFlat, ShapeRamp, ShapeDiurnal, "":
		default:
			return errf(path+".shape.kind", "unknown shape %q (have flat | ramp | diurnal)", sh.Kind)
		}
		if sh.Kind == ShapeRamp || sh.Kind == ShapeDiurnal {
			if t.Load <= 0 {
				return errf(path+".load", "shaped traffic needs an explicit peak load")
			}
			if sh.MinLoad < 0 || sh.MinLoad > t.Load {
				return errf(path+".shape.min_load", "%v out of [0, load=%v]", sh.MinLoad, t.Load)
			}
		}
		if sh.Steps < 0 {
			return errf(path+".shape.steps", "must be >= 0, got %d", sh.Steps)
		}
		if sh.Period < 0 {
			return errf(path+".shape.period", "must be >= 0, got %v", sh.Period)
		}
	}
	return nil
}

func (c *Chaos) validate(path string) error {
	if c.Script == "" && c.Rate <= 0 && c.GroupRate <= 0 {
		return errf(path, "empty chaos campaign (set script, rate, or group_rate)")
	}
	if c.Script != "" {
		if _, err := fault.ParseSchedule(c.Script); err != nil {
			return errf(path+".script", "%v", err)
		}
	}
	if c.Rate < 0 {
		return errf(path+".rate", "must be >= 0, got %v", c.Rate)
	}
	if c.MTTR < 0 {
		return errf(path+".mttr", "must be >= 0, got %v", c.MTTR)
	}
	if c.GroupRate < 0 {
		return errf(path+".group_rate", "must be >= 0, got %v", c.GroupRate)
	}
	if c.GroupMTTR < 0 {
		return errf(path+".group_mttr", "must be >= 0, got %v", c.GroupMTTR)
	}
	if c.GroupRate > 0 && len(c.Groups) == 0 {
		return errf(path+".group_rate", "needs at least one group declaration")
	}
	for i := range c.Groups {
		g := &c.Groups[i]
		gp := fmt.Sprintf("%s.groups[%d]", path, i)
		switch g.Kind {
		case GroupRackPower, GroupOpticsBundle:
			if g.Size < 1 {
				return errf(gp+".size", "must be >= 1, got %d", g.Size)
			}
		case GroupSwitches:
			if len(g.Switches) == 0 {
				return errf(gp+".switches", "explicit switch groups need members")
			}
		default:
			return errf(gp+".kind", "unknown group kind %q (have rack-power | optics-bundle | switches)", g.Kind)
		}
	}
	return nil
}

// TotalDuration sums the phase durations.
func (s *Scenario) TotalDuration() time.Duration {
	var total time.Duration
	for _, p := range s.Phases {
		total += p.Duration.D()
	}
	return total
}
