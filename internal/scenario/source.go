package scenario

import (
	"math"
	"sort"
	"time"

	"epnet/internal/link"
	"epnet/internal/sim"
	"epnet/internal/traffic"
)

// simTime converts a wall-clock duration to simulator picoseconds.
func simTime(d time.Duration) sim.Time { return sim.Time(d.Nanoseconds()) * sim.Nanosecond }

// Source is a streaming traffic generator bound to a time window: Run
// schedules injections on e against tgt from the current engine time
// (the phase driver invokes it exactly at from) and generates no new
// messages after until. Nothing is materialized — sources are the
// same recursive-closure generators the flag path uses, so the
// 0 allocs/packet property of the fabric hot path is untouched.
type Source interface {
	// Name identifies the stream in reports.
	Name() string
	// Run starts the stream for the window [from, until). The engine's
	// clock is at from when Run is invoked.
	Run(e *sim.Engine, tgt traffic.Target, from, until sim.Time)
}

// maker builds one streaming generator at a fixed load (0 = the
// workload's default) from a seed.
type maker func(load float64, seed int64) traffic.Workload

// makers mirrors the run-level workload constructors exactly — same
// message sizes, default loads, and seeds — so a scenario phase
// offering a workload is indistinguishable from the flag-configured
// run of that workload.
var makers = map[string]maker{
	"uniform": func(load float64, seed int64) traffic.Workload {
		u := traffic.DefaultUniform(seed)
		if load > 0 {
			u.Load = load
		}
		return u
	},
	"search": func(load float64, seed int64) traffic.Workload {
		tl := traffic.Search(seed)
		if load > 0 {
			tl.Load = load
		}
		return tl
	},
	"advert": func(load float64, seed int64) traffic.Workload {
		tl := traffic.Advert(seed)
		if load > 0 {
			tl.Load = load
		}
		return tl
	},
	"permutation": func(load float64, seed int64) traffic.Workload {
		if load == 0 {
			load = 0.1
		}
		return &traffic.Permutation{MsgBytes: 64 * 1024, Load: load, LineRate: link.Rate40G, Seed: seed}
	},
	"tornado": func(load float64, seed int64) traffic.Workload {
		if load == 0 {
			load = 0.1
		}
		return &traffic.Tornado{MsgBytes: 64 * 1024, Load: load, LineRate: link.Rate40G, Seed: seed}
	},
	"hotspot": func(load float64, seed int64) traffic.Workload {
		if load == 0 {
			load = 0.05
		}
		return &traffic.Hotspot{MsgBytes: 64 * 1024, Load: load, LineRate: link.Rate40G, Hot: 4, Seed: seed}
	},
	"incast": func(load float64, seed int64) traffic.Workload {
		if load == 0 {
			load = 0.5
		}
		return &traffic.Incast{MsgBytes: 32 * 1024, Fanin: 16, Load: load, LineRate: link.Rate40G, Seed: seed}
	},
	"migration": func(load float64, seed int64) traffic.Workload {
		if load == 0 {
			load = 0.3
		}
		return &traffic.Migration{TotalBytes: 8 * 1024 * 1024, ChunkBytes: 64 * 1024,
			Load: load, LineRate: link.Rate40G, Seed: seed}
	},
}

// Kinds lists the workload kinds a scenario may offer, sorted. Trace
// replay is deliberately absent: scenarios are self-contained
// documents, and a trace file is neither.
func Kinds() []string {
	out := make([]string, 0, len(makers))
	for k := range makers {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// KnownKind reports whether kind names a scenario workload.
func KnownKind(kind string) bool {
	_, ok := makers[kind]
	return ok
}

// NewSource builds the streaming source for one traffic spec. The
// spec must have passed Validate.
func NewSource(spec Traffic, seed int64) (Source, error) {
	mk, ok := makers[spec.Workload]
	if !ok {
		return nil, errf("workload", "unknown workload %q", spec.Workload)
	}
	if sh := spec.Shape; sh != nil && sh.Kind != "" && sh.Kind != ShapeFlat {
		return &paced{kind: spec.Workload, shape: *sh, peak: spec.Load, seed: seed, mk: mk}, nil
	}
	return steady{w: mk(spec.Load, seed)}, nil
}

// FromWorkload adapts a prebuilt generator (e.g. trace replay) into a
// Source. The generator's own horizon handling bounds the window.
func FromWorkload(w traffic.Workload) Source { return steady{w: w} }

// steady runs one generator flat across its window. Generators
// schedule everything relative to the invoking engine time, so
// starting one mid-run simply begins its warm-in phase there.
type steady struct{ w traffic.Workload }

func (s steady) Name() string { return s.w.Name() }

func (s steady) Run(e *sim.Engine, tgt traffic.Target, from, until sim.Time) {
	s.w.Start(e, tgt, until)
}

// paced modulates a generator's load across its window as a staircase:
// the window is cut into shape.Steps equal slices and each slice runs
// a fresh generator at the shape's load at the slice midpoint. Slice
// starts are control-engine events, so sharded runs see identical
// stripes; each slice is an ordinary streaming generator, so the
// packet path stays allocation-free.
type paced struct {
	kind  string
	shape Shape
	peak  float64
	seed  int64
	mk    maker
}

func (p *paced) Name() string { return p.kind + "/" + p.shape.Kind }

func (p *paced) Run(e *sim.Engine, tgt traffic.Target, from, until sim.Time) {
	steps := p.shape.Steps
	if steps <= 0 {
		steps = DefaultShapeSteps
	}
	span := until - from
	if span <= 0 {
		return
	}
	for i := 0; i < steps; i++ {
		s0 := from + span*sim.Time(i)/sim.Time(steps)
		s1 := from + span*sim.Time(i+1)/sim.Time(steps)
		load := p.loadAt(float64(s0-from)/2+float64(s1-from)/2, float64(span))
		if load <= 1e-9 {
			continue
		}
		w := p.mk(load, sliceSeed(p.seed, i))
		if i == 0 {
			// Run is invoked at from; the first slice starts inline.
			w.Start(e, tgt, s1)
			continue
		}
		end := s1
		e.At(s0, func(now sim.Time) { w.Start(e, tgt, end) })
	}
}

// loadAt evaluates the shape at offset t into a window of length span
// (both in picoseconds, as floats).
func (p *paced) loadAt(t, span float64) float64 {
	min := p.shape.MinLoad
	switch p.shape.Kind {
	case ShapeRamp:
		return min + (p.peak-min)*(t/span)
	case ShapeDiurnal:
		period := float64(simTime(p.shape.Period.D()))
		if period <= 0 {
			period = span
		}
		phase := math.Mod(t, period) / period
		// Raised cosine: trough at the window edges, peak mid-period.
		return min + (p.peak-min)*(0.5-0.5*math.Cos(2*math.Pi*phase))
	default:
		return p.peak
	}
}
