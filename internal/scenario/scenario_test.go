package scenario

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"epnet/internal/sim"
)

// valid is a document exercising every DSL feature at once.
const valid = `{
  "version": 1,
  "name": "kitchen-sink",
  "notes": "one of everything",
  "config": {"workload": "search", "seed": 7},
  "phases": [
    {"name": "calm", "duration": "200us",
     "traffic": [{"workload": "search", "load": 0.1}]},
    {"name": "peak", "duration": "600us",
     "traffic": [
       {"workload": "uniform", "load": 0.4,
        "shape": {"kind": "diurnal", "min_load": 0.05, "steps": 12}},
       {"workload": "migration", "load": 0.2}
     ],
     "policy": {"kind": "min-max", "target_util": 0.7},
     "chaos": {"script": "50us fail-link s0p8; 100us repair-link s0p8",
               "rate": 2, "mttr": "60us",
               "groups": [{"kind": "rack-power", "size": 4},
                          {"kind": "optics-bundle", "size": 2},
                          {"kind": "switches", "switches": [0, 3]}],
               "group_rate": 1, "group_mttr": "80us"}},
    {"name": "drain", "duration": "100us"}
  ]
}`

func TestParseValid(t *testing.T) {
	s, err := Parse([]byte(valid))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "kitchen-sink" || len(s.Phases) != 3 {
		t.Fatalf("parsed %q with %d phases", s.Name, len(s.Phases))
	}
	if got, want := s.TotalDuration(), 900*time.Microsecond; got != want {
		t.Errorf("TotalDuration = %v, want %v", got, want)
	}
	peak := s.Phases[1]
	if len(peak.Traffic) != 2 || peak.Policy == nil || peak.Chaos == nil {
		t.Fatalf("peak phase lost parts: %+v", peak)
	}
	if sh := peak.Traffic[0].Shape; sh == nil || sh.Kind != ShapeDiurnal || sh.Steps != 12 {
		t.Errorf("shape = %+v", peak.Traffic[0].Shape)
	}
	if len(peak.Chaos.Groups) != 3 {
		t.Errorf("groups = %+v", peak.Chaos.Groups)
	}
	if len(s.Config) == 0 {
		t.Error("config block dropped")
	}
	// The document round-trips: marshal, reparse, compare totals.
	out, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(out)
	if err != nil {
		t.Fatalf("round-trip reparse: %v\n%s", err, out)
	}
	if s2.TotalDuration() != s.TotalDuration() || len(s2.Phases) != len(s.Phases) {
		t.Error("round trip changed the scenario")
	}
}

// TestParseRejects is the malformed-document table: every entry must be
// rejected, with the error pointing at the offending path.
func TestParseRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		path string // substring the error must contain
	}{
		{"bad version", `{"version": 2, "phases": [{"name": "a", "duration": "1us"}]}`, "version"},
		{"no phases", `{"version": 1}`, "phases"},
		{"unknown top-level field", `{"version": 1, "phasez": []}`, "phasez"},
		{"unknown phase field", `{"version": 1, "phases": [{"name": "a", "duration": "1us", "trafic": []}]}`, "trafic"},
		{"unknown shape field", `{"version": 1, "phases": [{"name": "a", "duration": "1us",
			"traffic": [{"workload": "uniform", "shape": {"kindd": "ramp"}}]}]}`, "kindd"},
		{"unnamed phase", `{"version": 1, "phases": [{"duration": "1us"}]}`, "phases[0].name"},
		{"duplicate phase name", `{"version": 1, "phases": [
			{"name": "a", "duration": "1us"}, {"name": "a", "duration": "1us"}]}`, "phases[1].name"},
		{"zero duration", `{"version": 1, "phases": [{"name": "a", "duration": "0s"}]}`, "duration"},
		{"bad duration", `{"version": 1, "phases": [{"name": "a", "duration": "fast"}]}`, "fast"},
		{"unknown workload", `{"version": 1, "phases": [{"name": "a", "duration": "1us",
			"traffic": [{"workload": "bitcoin"}]}]}`, "workload"},
		{"load out of range", `{"version": 1, "phases": [{"name": "a", "duration": "1us",
			"traffic": [{"workload": "uniform", "load": 1.5}]}]}`, "load"},
		{"shape without peak", `{"version": 1, "phases": [{"name": "a", "duration": "1us",
			"traffic": [{"workload": "uniform", "shape": {"kind": "ramp"}}]}]}`, "load"},
		{"min above peak", `{"version": 1, "phases": [{"name": "a", "duration": "1us",
			"traffic": [{"workload": "uniform", "load": 0.1,
			             "shape": {"kind": "diurnal", "min_load": 0.5}}]}]}`, "min_load"},
		{"unknown shape kind", `{"version": 1, "phases": [{"name": "a", "duration": "1us",
			"traffic": [{"workload": "uniform", "load": 0.1, "shape": {"kind": "square"}}]}]}`, "shape.kind"},
		{"empty chaos", `{"version": 1, "phases": [{"name": "a", "duration": "1us",
			"chaos": {}}]}`, "chaos"},
		{"bad chaos script", `{"version": 1, "phases": [{"name": "a", "duration": "1us",
			"chaos": {"script": "sometime explode everything"}}]}`, "script"},
		{"group rate without groups", `{"version": 1, "phases": [{"name": "a", "duration": "1us",
			"chaos": {"group_rate": 1}}]}`, "group_rate"},
		{"sizeless group", `{"version": 1, "phases": [{"name": "a", "duration": "1us",
			"chaos": {"group_rate": 1, "groups": [{"kind": "rack-power"}]}}]}`, "size"},
		{"memberless switch group", `{"version": 1, "phases": [{"name": "a", "duration": "1us",
			"chaos": {"group_rate": 1, "groups": [{"kind": "switches"}]}}]}`, "switches"},
		{"unknown group kind", `{"version": 1, "phases": [{"name": "a", "duration": "1us",
			"chaos": {"group_rate": 1, "groups": [{"kind": "blast-radius", "size": 2}]}}]}`, "kind"},
		{"kindless policy", `{"version": 1, "phases": [{"name": "a", "duration": "1us",
			"policy": {"target_util": 0.5}}]}`, "policy.kind"},
		{"policy target out of range", `{"version": 1, "phases": [{"name": "a", "duration": "1us",
			"policy": {"kind": "min-max", "target_util": 1.5}}]}`, "target_util"},
		{"trailing garbage", `{"version": 1, "phases": [{"name": "a", "duration": "1us"}]} {}`, "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatalf("accepted: %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.path) {
				t.Errorf("error %q does not mention %q", err, tc.path)
			}
		})
	}
}

func TestDurationRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{`"250us"`, 250 * time.Microsecond},
		{`"1.5ms"`, 1500 * time.Microsecond},
		{`"2h45m"`, 2*time.Hour + 45*time.Minute},
		{`1000`, time.Microsecond}, // bare nanoseconds
	}
	for _, tc := range cases {
		var d Duration
		if err := json.Unmarshal([]byte(tc.in), &d); err != nil {
			t.Fatalf("%s: %v", tc.in, err)
		}
		if d.D() != tc.want {
			t.Errorf("%s parsed to %v, want %v", tc.in, d.D(), tc.want)
		}
		out, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		var back Duration
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("re-parse %s: %v", out, err)
		}
		if back != d {
			t.Errorf("%s -> %s -> %v, want %v", tc.in, out, back.D(), d.D())
		}
	}
	for _, bad := range []string{`"fast"`, `"12 parsecs"`, `true`} {
		var d Duration
		if err := json.Unmarshal([]byte(bad), &d); err == nil {
			t.Errorf("accepted %s as %v", bad, d.D())
		}
	}
	// The String form is ASCII so files survive any editor.
	if s := Duration(250 * time.Microsecond).String(); s != "250us" {
		t.Errorf("String = %q, want 250us", s)
	}
}

// TestPhaseSeedPinned pins the derivation's properties: it depends only
// on (seed, phase, stream), distinct labels give distinct seeds, and
// the separator keeps ("a","bc") and ("ab","c") apart. Inserting a
// phase into a scenario must not change any other phase's seeds — the
// derivation has no positional input at all, which this enumerates.
func TestPhaseSeedPinned(t *testing.T) {
	if PhaseSeed(1, "day", "traffic:0") != PhaseSeed(1, "day", "traffic:0") {
		t.Fatal("not deterministic")
	}
	seen := map[int64]string{}
	for _, phase := range []string{"day", "night", "peak", "drain"} {
		for _, stream := range []string{"traffic:0", "traffic:1", "chaos", "chaos-groups"} {
			s := PhaseSeed(42, phase, stream)
			if prev, dup := seen[s]; dup {
				t.Errorf("collision: %s/%s and %s", phase, stream, prev)
			}
			seen[s] = phase + "/" + stream
		}
	}
	if PhaseSeed(42, "a", "bc") == PhaseSeed(42, "ab", "c") {
		t.Error("separator missing: label boundary does not matter")
	}
	if PhaseSeed(1, "day", "chaos") == PhaseSeed(2, "day", "chaos") {
		t.Error("run seed ignored")
	}
}

func TestSliceSeed(t *testing.T) {
	if sliceSeed(99, 0) != 99 {
		t.Error("slice 0 must keep the stream seed (one-step shape == unshaped)")
	}
	if sliceSeed(99, 1) == 99 || sliceSeed(99, 1) == sliceSeed(99, 2) {
		t.Error("later slices must re-roll")
	}
}

// countTarget records injections with the engine time of each.
type countTarget struct {
	e     *sim.Engine
	hosts int
	times []sim.Time
}

func (c *countTarget) NumHosts() int { return c.hosts }
func (c *countTarget) InjectMessage(src, dst, size int) {
	c.times = append(c.times, c.e.Now())
}

// TestPacedWindow drives a ramp-shaped source on a bare engine and
// checks the staircase: injections stay inside the window, and the
// ramp's quiet head (min_load 0) injects nothing while the loud tail
// does.
func TestPacedWindow(t *testing.T) {
	src, err := NewSource(Traffic{
		Workload: "uniform",
		Load:     0.4,
		Shape:    &Shape{Kind: ShapeRamp, Steps: 4},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.New()
	tgt := &countTarget{e: e, hosts: 16}
	const from, until = 0, 400 * sim.Microsecond
	src.Run(e, tgt, from, until)
	e.Run()
	if len(tgt.times) == 0 {
		t.Fatal("ramp injected nothing")
	}
	half := sim.Time(until / 2)
	var head, tail int
	for _, at := range tgt.times {
		if at >= until {
			t.Fatalf("injection at %v, after the window end %v", at, until)
		}
		if at < half {
			head++
		} else {
			tail++
		}
	}
	// Ramp from 0 to 0.4: the second half offers 3x the first half's
	// mean load. Allow slack for the staircase and messaging noise.
	if tail <= head {
		t.Errorf("ramp not ramping: %d injections in the head, %d in the tail", head, tail)
	}

	// A flat source with the same mean behaves like the plain workload:
	// same spec minus shape at slice-0 seed equals the steady stream.
	flat, err := NewSource(Traffic{Workload: "uniform", Load: 0.4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	e2 := sim.New()
	tgt2 := &countTarget{e: e2, hosts: 16}
	flat.Run(e2, tgt2, from, until)
	e2.Run()
	if len(tgt2.times) == 0 {
		t.Fatal("flat source injected nothing")
	}
}

// TestSourceParityWithConstructors guards the makers table: every kind
// listed by Kinds builds, runs on a bare engine, and injects at least
// one message — so a scenario phase can offer any advertised kind.
func TestSourceParityWithConstructors(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind, func(t *testing.T) {
			src, err := NewSource(Traffic{Workload: kind}, 1)
			if err != nil {
				t.Fatal(err)
			}
			if src.Name() == "" {
				t.Error("source has no name")
			}
			e := sim.New()
			tgt := &countTarget{e: e, hosts: 32}
			src.Run(e, tgt, 0, 200*sim.Microsecond)
			e.Run()
			if len(tgt.times) == 0 {
				t.Errorf("%s injected nothing in 200us", kind)
			}
		})
	}
}
