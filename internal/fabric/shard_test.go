package fabric

import (
	"math/rand"
	"testing"

	"epnet/internal/routing"
	"epnet/internal/sim"
	"epnet/internal/telemetry"
	"epnet/internal/topo"
)

// shardFingerprint is everything a sharded run must reproduce exactly:
// global counters, per-host delivery sequences, and per-channel traffic.
type shardFingerprint struct {
	injectedPkts   int64
	deliveredPkts  int64
	deliveredBytes int64
	droppedPkts    int64
	routed         int64
	peakQueue      int64
	events         uint64
	lastDeliver    []sim.Time // per destination host
	hostPkts       []int64    // per destination host
	chanBytes      []int64    // per channel, in wiring order
	chanDrops      []int64
}

// runSharded drives one FBFLY run at the given shard count and returns
// its fingerprint. faults exercises the fail/repair path mid-run; prof,
// when non-nil, is attached before the run (the fingerprint must not
// notice).
func runSharded(t *testing.T, shards int, faults bool, prof *telemetry.EngineProfiler) shardFingerprint {
	t.Helper()
	e := sim.New()
	f := topo.MustFBFLY(8, 2, 8)
	cfg := DefaultConfig()
	cfg.Seed = 42
	cfg.Shards = shards
	n, err := New(e, f, routing.NewFBFLY(f), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if prof != nil {
		n.SetProfiler(prof)
	}

	numHosts := n.NumHosts()
	fp := shardFingerprint{
		lastDeliver: make([]sim.Time, numHosts),
		hostPkts:    make([]int64, numHosts),
	}
	// Each host is delivered to on exactly one shard, so per-dst slots
	// are single-writer even when shards run concurrently.
	n.OnDeliver = func(p *Packet, now sim.Time) {
		fp.lastDeliver[p.Dst] = now
		fp.hostPkts[p.Dst]++
	}

	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 400; i++ {
		at := sim.Time(rng.Intn(80)) * sim.Microsecond
		src, dst := rng.Intn(numHosts), rng.Intn(numHosts)
		if src == dst {
			dst = (dst + 1) % numHosts
		}
		size := 1 + rng.Intn(10000)
		e.At(at, func(sim.Time) { n.InjectMessage(src, dst, size) })
	}
	if faults {
		n.EnableFaults()
		isc := n.InterSwitchChannels()
		for i, c := range []int{3, 17, 40} {
			c := isc[c%len(isc)]
			failAt := sim.Time(10+20*i) * sim.Microsecond
			e.At(failAt, func(now sim.Time) {
				n.FailChan(c, now)
				n.Switches[c.Src.ID].PumpPort(c.Src.Port, now)
			})
			e.At(failAt+30*sim.Microsecond, func(now sim.Time) {
				n.RepairChan(c, now, n.Cfg.Ladder.Max(), 2*sim.Microsecond)
			})
		}
	}

	n.RunUntil(600 * sim.Microsecond)

	fp.injectedPkts, _ = n.Injected()
	fp.deliveredPkts, fp.deliveredBytes = n.Delivered()
	fp.droppedPkts, _ = n.Dropped()
	fp.routed = n.RoutedPackets()
	fp.peakQueue = n.PeakQueueBytes()
	fp.events = n.EventsProcessed()
	for _, c := range n.Channels() {
		fp.chanBytes = append(fp.chanBytes, c.L.TotalBytes())
		fp.chanDrops = append(fp.chanDrops, c.Drops())
	}
	if fp.deliveredPkts+fp.droppedPkts != fp.injectedPkts {
		t.Fatalf("shards=%d: %d delivered + %d dropped != %d injected",
			shards, fp.deliveredPkts, fp.droppedPkts, fp.injectedPkts)
	}
	return fp
}

func diffFingerprints(t *testing.T, tag string, want, got shardFingerprint) {
	t.Helper()
	if want.injectedPkts != got.injectedPkts ||
		want.deliveredPkts != got.deliveredPkts ||
		want.deliveredBytes != got.deliveredBytes ||
		want.droppedPkts != got.droppedPkts ||
		want.routed != got.routed ||
		want.peakQueue != got.peakQueue ||
		want.events != got.events {
		t.Errorf("%s: counters diverge: serial %+v vs %+v", tag,
			struct{ i, d, b, x, r, p int64 }{want.injectedPkts, want.deliveredPkts, want.deliveredBytes, want.droppedPkts, want.routed, want.peakQueue},
			struct{ i, d, b, x, r, p int64 }{got.injectedPkts, got.deliveredPkts, got.deliveredBytes, got.droppedPkts, got.routed, got.peakQueue})
	}
	for h := range want.lastDeliver {
		if want.lastDeliver[h] != got.lastDeliver[h] || want.hostPkts[h] != got.hostPkts[h] {
			t.Fatalf("%s: host %d diverges: serial (%v, %d pkts) vs (%v, %d pkts)",
				tag, h, want.lastDeliver[h], want.hostPkts[h],
				got.lastDeliver[h], got.hostPkts[h])
		}
	}
	for i := range want.chanBytes {
		if want.chanBytes[i] != got.chanBytes[i] || want.chanDrops[i] != got.chanDrops[i] {
			t.Fatalf("%s: channel %d diverges: serial (%d B, %d drops) vs (%d B, %d drops)",
				tag, i, want.chanBytes[i], want.chanDrops[i],
				got.chanBytes[i], got.chanDrops[i])
		}
	}
}

// TestShardedMatchesSerial is the fabric-level half of the determinism
// guarantee: for the same seed, every shard count must reproduce the
// serial run's counters, per-host delivery times, and per-channel
// traffic exactly — with and without fault injection mid-run.
func TestShardedMatchesSerial(t *testing.T) {
	for _, faults := range []bool{false, true} {
		tag := "clean"
		if faults {
			tag = "faults"
		}
		serial := runSharded(t, 1, faults, nil)
		if serial.deliveredPkts == 0 {
			t.Fatalf("%s: serial run delivered nothing", tag)
		}
		for _, shards := range []int{2, 4, 8} {
			got := runSharded(t, shards, faults, nil)
			diffFingerprints(t, tag, serial, got)
		}
	}
}

// TestShardLookaheadValidation verifies that zero cross-shard latency is
// rejected (it would make the conservative window empty).
func TestShardLookaheadValidation(t *testing.T) {
	e := sim.New()
	f := topo.MustFBFLY(4, 2, 2)
	cfg := DefaultConfig()
	cfg.Shards = 2
	cfg.CreditDelay = 0
	if _, err := New(e, f, routing.NewFBFLY(f), cfg); err == nil {
		t.Fatal("Shards=2 with CreditDelay=0 did not error")
	}
	cfg = DefaultConfig()
	cfg.Shards = -1
	if _, err := New(e, f, routing.NewFBFLY(f), cfg); err == nil {
		t.Fatal("negative Shards did not error")
	}
}

// TestShardLookaheadMatrix pins the closed lookahead matrix on a
// two-shard butterfly: every shard pair carries channels both ways, so
// the off-diagonal bound is the cheapest direct edge — the credit
// return — and the diagonal closes to the cheapest round trip (credit
// out, credit home). The cut quality reflects the full bipartite
// channel count between the contiguous halves of the single-dimension
// clique.
func TestShardLookaheadMatrix(t *testing.T) {
	e := sim.New()
	f := topo.MustFBFLY(16, 2, 8)
	cfg := DefaultConfig() // WireDelay 50ns, RoutingDelay 100ns, CreditDelay 50ns
	cfg.Shards = 2
	n, err := New(e, f, routing.NewFBFLY(f), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	g := n.Sharding()

	la := g.LookaheadMatrix()
	credit := cfg.CreditDelay
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := credit // cheaper than the 150ns packet hop
			if i == j {
				want = 2 * credit // shortest echo: credit out, credit back
			}
			if la[i][j] != want {
				t.Errorf("la[%d][%d] = %v, want %v", i, j, la[i][j], want)
			}
		}
	}
	if got := g.Lookahead(); got != credit {
		t.Errorf("Lookahead() = %v, want %v", got, credit)
	}

	// 16-switch clique: 16*15 directed channels; an 8|8 split crosses
	// 8*8 pairs in both directions.
	cross, total := g.CutQuality()
	if total != 16*15 || cross != 2*8*8 {
		t.Errorf("CutQuality() = %d/%d, want %d/%d", cross, total, 2*8*8, 16*15)
	}
}

// TestShardPartitionApplied verifies the fabric uses the topology's
// structure-aware partition: on a Clos, every pod lands on one shard.
func TestShardPartitionApplied(t *testing.T) {
	e := sim.New()
	c := topo.MustClos3(4)
	cfg := DefaultConfig()
	cfg.Shards = 4
	n, err := New(e, c, routing.NewClos3(c), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	for sw := 0; sw < c.NumSwitches(); sw++ {
		if c.IsCore(sw) {
			continue
		}
		pod := c.PodOf(sw)
		if got, want := n.SwitchShard(sw), n.SwitchShard(c.EdgeSwitch(pod, 0)); got != want {
			t.Fatalf("sw %d (pod %d) on shard %d, pod anchor on %d", sw, pod, got, want)
		}
	}
}

// TestShardCountClamped verifies Shards caps at the switch count.
func TestShardCountClamped(t *testing.T) {
	e := sim.New()
	f := topo.MustFBFLY(2, 2, 1) // 2 switches
	cfg := DefaultConfig()
	cfg.Shards = 8
	n, err := New(e, f, routing.NewFBFLY(f), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", n.NumShards())
	}
}
