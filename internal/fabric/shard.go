package fabric

import (
	"fmt"
	"math"

	"epnet/internal/sim"
)

// This file implements intra-run parallelism: the fabric's switches (and
// their attached hosts, channels, and per-entity accounting) are
// partitioned into shards, each owning a private sim.Engine, and all
// shards advance in lockstep conservative time windows bounded by the
// minimum cross-shard channel latency (the lookahead). Events that cross
// a shard boundary are appended to per-pair staging buffers and drained
// onto the destination heap at the next window barrier.
//
// Determinism: every data-plane event carries an ordering key drawn from
// its source entity's sim.Lane at scheduling time, in both serial and
// sharded mode. Within one timestamp, every engine executes events in
// ascending key order, so the per-entity event order — and therefore
// every per-entity state transition — is a pure function of the model,
// not of how entities are spread over engines. Staged events carry their
// precomputed keys across the barrier, so drain order is irrelevant.
// The result: a sharded run is byte-identical to the serial run.
//
// Single-writer discipline (what makes windows lock-free):
//   - switch/host state, lanes, and output-channel state (link, credits,
//     waiting flag, mTx) are touched only by the owning shard's worker,
//     or by the control plane while all workers are quiescent;
//   - a channel's src-side state belongs to the src entity's shard; the
//     credit-return event is therefore staged back to the src shard;
//   - per-shard counters (delivered/dropped/free lists/message tracking)
//     live on shardRT and are merged read-only at barriers.

// stagedEvent is one cross-shard event awaiting the window barrier.
type stagedEvent struct {
	at  sim.Time
	key uint64
	fn  sim.ArgEvent
	arg any
	n   int64
}

// windowReq is one unit of work for a shard worker: run events in
// [Now, end), or in [Now, end] when inclusive (the run horizon's final
// instant, matching serial RunUntil semantics).
type windowReq struct {
	end       sim.Time
	inclusive bool
}

// shardRT is the runtime state of one shard: its engine, its outgoing
// staging buffers, and every piece of network-level accounting that the
// shard's entities write on the hot path. All fields are single-writer:
// the shard's worker inside a window, the control plane at barriers.
type shardRT struct {
	id  int
	eng *sim.Engine

	// stage[d] holds events bound for shard d since the last barrier.
	// Slices are reused, so steady state appends without allocating.
	stage [][]stagedEvent

	// Hot-path accounting, merged by Network accessors at barriers.
	deliveredPkts     int64
	deliveredBytes    int64
	droppedPkts       int64
	droppedBytes      int64
	unattributedDrops int64

	// pktFree recycles packets freed on this shard.
	pktFree []*Packet

	// Message-completion tracking for messages whose destination host
	// lives on this shard. msgDead[d] defers the teardown of messages
	// tracked on shard d when a drop happens here (pure GC — a dropped
	// message can never complete, so the entry is dead weight either
	// way); applied at the next barrier.
	msgRemaining map[int64]int
	msgInject    map[int64]sim.Time
	msgDead      [][]int64

	work chan windowReq
}

func (rt *shardRT) stageTo(dst *shardRT, at sim.Time, key uint64, fn sim.ArgEvent, arg any, n int64) {
	rt.stage[dst.id] = append(rt.stage[dst.id], stagedEvent{at: at, key: key, fn: fn, arg: arg, n: n})
}

// runWindow executes one conservative window on the shard's engine.
func (rt *shardRT) runWindow(w windowReq) {
	if w.inclusive {
		rt.eng.RunUntil(w.end)
	} else {
		rt.eng.RunBefore(w.end)
	}
}

// rng64 is a tiny splitmix64 generator, one per switch, for adaptive
// routing tie-breaks. Per-switch state (rather than one shared stream)
// makes each switch's draw sequence independent of how other switches'
// events interleave — a requirement for serial/sharded equivalence.
type rng64 struct{ s uint64 }

func newRNG(seed int64, id int) rng64 {
	return rng64{s: uint64(seed)*0x9E3779B97F4A7C15 + uint64(id+1)*0xBF58476D1CE4E5B9}
}

func (r *rng64) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// intn returns a value in [0, n). The modulo bias is irrelevant here —
// n is a handful of candidate ports — and determinism is what matters.
func (r *rng64) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// ShardGroup coordinates the shard workers of a network built with
// Config.Shards > 1. The control engine (Network.E) holds everything
// that is not per-entity data plane — workload generators, the energy
// controller, fault injection, telemetry sampling — and runs only at
// window barriers, when every shard is quiescent and parked on the same
// clock value. Obtain it from Network.Sharding.
type ShardGroup struct {
	net       *Network
	ctrl      *sim.Engine
	rts       []*shardRT
	lookahead sim.Time

	busy    []*shardRT
	done    chan struct{}
	started bool
	closed  bool
}

// NumShards returns the number of shards in the group.
func (g *ShardGroup) NumShards() int { return len(g.rts) }

// Lookahead returns the conservative window bound: the minimum latency
// of any cross-shard scheduling edge.
func (g *ShardGroup) Lookahead() sim.Time { return g.lookahead }

// start spawns the shard workers on first use.
func (g *ShardGroup) start() {
	if g.started {
		return
	}
	g.started = true
	if g.net.Tracer != nil {
		panic("fabric: packet tracing requires a serial run (Shards=1)")
	}
	for _, rt := range g.rts {
		rt.work = make(chan windowReq, 1)
		go func(rt *shardRT) {
			for w := range rt.work {
				rt.runWindow(w)
				g.done <- struct{}{}
			}
		}(rt)
	}
}

// Close stops the shard workers. Idempotent; the group is unusable
// afterwards. Networks built with Shards=1 have no group to close.
func (g *ShardGroup) Close() {
	if !g.started || g.closed {
		return
	}
	g.closed = true
	for _, rt := range g.rts {
		close(rt.work)
	}
}

// RunUntil advances the whole sharded simulation to the given time,
// with the semantics of sim.Engine.RunUntil: every event with timestamp
// <= until executes, and all clocks park on until.
func (g *ShardGroup) RunUntil(until sim.Time) {
	g.start()
	for {
		now := g.ctrl.Now()
		// Control plane first: run everything due at the current
		// barrier instant (injection, controller epochs, fault events,
		// samplers) while the shards are quiescent. Control events use
		// lane 0, so this matches the canonical order: at any one
		// timestamp, control runs before data.
		g.ctrl.RunUntil(now)
		g.drainStages()

		// Earliest pending work anywhere.
		next := sim.Time(math.MaxInt64)
		if at, ok := g.ctrl.NextAt(); ok {
			next = at
		}
		for _, rt := range g.rts {
			if at, ok := rt.eng.NextAt(); ok && at < next {
				next = at
			}
		}
		if next > until {
			// Nothing left inside the horizon: park every clock on it.
			for _, rt := range g.rts {
				rt.eng.AdvanceTo(until)
			}
			g.ctrl.RunUntil(until)
			return
		}
		if next > now {
			// Idle jump: no events in (now, next), so the next window
			// can start at next instead of crawling there one lookahead
			// at a time.
			for _, rt := range g.rts {
				rt.eng.AdvanceTo(next)
			}
			g.ctrl.AdvanceTo(next)
			continue
		}

		// One conservative window [now, wend). Cross-shard events
		// staged inside it land at >= now + lookahead >= wend, so no
		// shard can receive work for a time it has already passed.
		wend := now + g.lookahead
		if at, ok := g.ctrl.NextAt(); ok && at < wend {
			wend = at
		}
		if wend > until {
			wend = until
		}
		if wend == now {
			// now == until with data events due exactly at the horizon:
			// run them inclusively to match serial RunUntil. Anything
			// they stage lands strictly after until and stays pending.
			g.dispatch(windowReq{end: until, inclusive: true})
			g.drainStages()
			continue
		}
		g.dispatch(windowReq{end: wend})
		g.drainStages()
		g.ctrl.AdvanceTo(wend)
	}
}

// dispatch runs one window on every shard: shards with due events get
// the window (in parallel when more than one is busy), idle shards jump
// straight to the barrier.
func (g *ShardGroup) dispatch(w windowReq) {
	busy := g.busy[:0]
	for _, rt := range g.rts {
		at, ok := rt.eng.NextAt()
		if ok && (at < w.end || (w.inclusive && at == w.end)) {
			busy = append(busy, rt)
		} else if !w.inclusive {
			rt.eng.AdvanceTo(w.end)
		}
	}
	g.busy = busy
	if len(busy) == 1 {
		// A single busy shard runs inline: no handoff, no wakeup.
		busy[0].runWindow(w)
		return
	}
	for _, rt := range busy {
		rt.work <- w
	}
	for range busy {
		<-g.done
	}
}

// drainStages moves staged cross-shard events onto their destination
// heaps and applies deferred message-teardown deletions. Called only at
// barriers, with every worker quiescent. Push order does not matter:
// each event carries the ordering key drawn from its source lane.
func (g *ShardGroup) drainStages() {
	for _, src := range g.rts {
		for d, evs := range src.stage {
			if len(evs) == 0 {
				continue
			}
			eng := g.rts[d].eng
			for i := range evs {
				ev := &evs[i]
				eng.PushKeyed(ev.at, ev.key, ev.fn, ev.arg, ev.n)
				*ev = stagedEvent{} // release the arg for GC
			}
			src.stage[d] = evs[:0]
		}
		for d, ids := range src.msgDead {
			if len(ids) == 0 {
				continue
			}
			dst := g.rts[d]
			for _, id := range ids {
				delete(dst.msgRemaining, id)
				delete(dst.msgInject, id)
			}
			src.msgDead[d] = ids[:0]
		}
	}
}

// buildShards partitions the network and creates the per-shard runtimes.
// Switches are split into contiguous balanced ranges; hosts follow the
// switch they attach to, so host<->switch channels never cross a shard
// boundary and only switch<->switch channels need staging.
func (n *Network) buildShards(e *sim.Engine, nsh int) error {
	numSw := n.T.NumSwitches()
	if nsh > numSw {
		nsh = numSw
	}
	if nsh > 1 {
		if n.Cfg.WireDelay+n.Cfg.RoutingDelay <= 0 || n.Cfg.CreditDelay <= 0 {
			return fmt.Errorf("fabric: Shards=%d needs positive cross-shard latency "+
				"(WireDelay+RoutingDelay=%v, CreditDelay=%v)",
				nsh, n.Cfg.WireDelay+n.Cfg.RoutingDelay, n.Cfg.CreditDelay)
		}
	}
	n.rts = make([]*shardRT, nsh)
	for i := range n.rts {
		rt := &shardRT{id: i, eng: e}
		if nsh > 1 {
			rt.eng = sim.New()
			rt.stage = make([][]stagedEvent, nsh)
			rt.msgDead = make([][]int64, nsh)
		}
		n.rts[i] = rt
	}
	if nsh > 1 {
		lookahead := n.Cfg.CreditDelay
		if d := n.Cfg.WireDelay + n.Cfg.RoutingDelay; d < lookahead {
			lookahead = d
		}
		n.group = &ShardGroup{
			net:       n,
			ctrl:      e,
			rts:       n.rts,
			lookahead: lookahead,
			busy:      make([]*shardRT, 0, nsh),
			done:      make(chan struct{}, nsh),
		}
	}
	return nil
}

// switchShard maps a switch index to its owning shard.
func (n *Network) switchShard(sw int) *shardRT {
	return n.rts[sw*len(n.rts)/n.T.NumSwitches()]
}

// Sharding returns the shard coordinator, or nil for a serial network.
// Callers driving a sharded network directly (rather than through the
// epnet Run API) must use ShardGroup.RunUntil instead of Engine.Run and
// call Close when done.
func (n *Network) Sharding() *ShardGroup { return n.group }

// NumShards returns the number of shards the fabric is partitioned into
// (1 for a serial network).
func (n *Network) NumShards() int { return len(n.rts) }

// HostShard returns the shard that owns host h — the shard on which
// OnDeliver and OnMessageDone fire for packets and messages destined to
// h. Callbacks on a sharded network must keep per-shard state indexed by
// this (the epnet runner does), because shards run concurrently.
func (n *Network) HostShard(h int) int { return n.Hosts[h].rt.id }

// RunUntil advances the simulation to the given time: the shard group's
// windowed loop when sharded, the engine directly when serial.
func (n *Network) RunUntil(until sim.Time) {
	if n.group != nil {
		n.group.RunUntil(until)
		return
	}
	n.E.RunUntil(until)
}

// Close releases the shard workers (no-op for serial networks).
func (n *Network) Close() {
	if n.group != nil {
		n.group.Close()
	}
}

// EventsProcessed returns events executed across every engine of the
// network (control plus shards). For a serial network this is exactly
// Engine.Processed.
func (n *Network) EventsProcessed() uint64 {
	if n.group == nil {
		return n.E.Processed()
	}
	total := n.E.Processed()
	for _, rt := range n.rts {
		total += rt.eng.Processed()
	}
	return total
}

// PendingEvents returns queued events across every engine of the network.
func (n *Network) PendingEvents() int {
	if n.group == nil {
		return n.E.Pending()
	}
	total := n.E.Pending()
	for _, rt := range n.rts {
		total += rt.eng.Pending()
	}
	return total
}
