package fabric

import (
	"fmt"
	"math"
	"time"

	"epnet/internal/sim"
	"epnet/internal/telemetry"
	"epnet/internal/topo"
)

// This file implements intra-run parallelism: the fabric's switches (and
// their attached hosts, channels, and per-entity accounting) are
// partitioned into shards, each owning a private sim.Engine, and all
// shards advance in conservative time windows. Events that cross a shard
// boundary are appended to per-pair staging buffers and drained onto the
// destination heap at the next window barrier.
//
// Windows are per shard, bounded by a per-shard-pair lookahead matrix
// rather than one global minimum: la[j][i] is the smallest latency any
// chain of cross-shard scheduling edges from shard j can add before its
// influence reaches shard i (the min-plus transitive closure of the
// direct channel-latency edges, diagonal included — a shard's own
// traffic echoes back as credits). Shard i may therefore run to
//
//	W_i = min( ctrlNext, min over j of N_j + la[j][i] )
//
// where N_j is shard j's earliest pending event: nothing staged toward i
// can land before W_i. Loosely coupled shards run long windows while
// tightly coupled pairs barrier often, and when the whole fabric is
// idle the formula degenerates to an analytic fast-forward — every
// clock jumps past the event-free gap in a single round.
//
// The topology chooses the partition (topo.PartitionOf): dimension cuts
// for flattened butterflies, pod cuts for folded Clos, proportional
// leaf/spine slices for fat trees, contiguous ranges otherwise. Fewer
// cross-shard channels means less staging traffic and a sparser, looser
// lookahead matrix.
//
// Determinism: every data-plane event carries an ordering key drawn from
// its source entity's sim.Lane at scheduling time, in both serial and
// sharded mode. Within one timestamp, every engine executes events in
// ascending key order, so the per-entity event order — and therefore
// every per-entity state transition — is a pure function of the model,
// not of how entities are spread over engines or how wide any window
// was. Staged events carry their precomputed keys across the barrier, so
// drain order is irrelevant. The result: a sharded run is byte-identical
// to the serial run, for every shard count and partition.
//
// Single-writer discipline (what makes windows lock-free):
//   - switch/host state, lanes, and output-channel state (link, credits,
//     waiting flag, mTx) are touched only by the owning shard's worker,
//     or by the control plane while all workers are quiescent;
//   - a channel's src-side state belongs to the src entity's shard; the
//     credit-return event is therefore staged back to the src shard;
//   - per-shard counters (delivered/dropped/free lists/message tracking)
//     live on shardRT and are merged read-only at barriers.
//
// Control-plane safety: control events (workload injection, controller
// epochs, fault injection, samplers) mutate shard-owned state directly,
// so they may only run when every shard clock sits exactly on the
// control engine's clock. Every window end is capped at ctrlNext, and
// new control events are only created by control events, so when the
// minimum shard clock reaches ctrlNext all clocks equal it — the loop
// runs the control plane precisely at those quiescent instants.

// farAway is the effectively-infinite time bound: far beyond any run
// horizon, small enough that farAway + farAway cannot overflow.
const farAway = sim.Time(math.MaxInt64 / 4)

// stagedEvent is one cross-shard event awaiting the window barrier.
type stagedEvent struct {
	at  sim.Time
	key uint64
	fn  sim.ArgEvent
	arg any
	n   int64
}

// windowReq is one unit of work for a shard worker: run events in
// [Now, end), or in [Now, end] when inclusive (the run horizon's final
// instant, matching serial RunUntil semantics).
type windowReq struct {
	end       sim.Time
	inclusive bool
}

// shardRT is the runtime state of one shard: its engine, its outgoing
// staging buffers, and every piece of network-level accounting that the
// shard's entities write on the hot path. All fields are single-writer:
// the shard's worker inside a window, the control plane at barriers.
type shardRT struct {
	id  int
	eng *sim.Engine

	// stage[d] holds events bound for shard d since the last barrier.
	// Slices are recycled through stageFree at barriers, so steady state
	// stages without allocating regardless of shard count.
	stage     [][]stagedEvent
	stageFree [][]stagedEvent

	// Hot-path accounting, merged by Network accessors at barriers.
	deliveredPkts     int64
	deliveredBytes    int64
	droppedPkts       int64
	droppedBytes      int64
	unattributedDrops int64

	// pktFree recycles packets freed on this shard.
	pktFree []*Packet

	// Message-completion tracking for messages whose destination host
	// lives on this shard. msgDead[d] defers the teardown of messages
	// tracked on shard d when a drop happens here (pure GC — a dropped
	// message can never complete, so the entry is dead weight either
	// way); applied at the next barrier.
	msgRemaining map[int64]int
	msgInject    map[int64]sim.Time
	msgDead      [][]int64

	win  windowReq // the window assigned this round
	work chan windowReq

	// Self-profiling (SetProfiler). The worker records its own window's
	// cost into these single-writer fields; the coordinator folds them
	// into the profiler after the barrier. profiled is set only while
	// the group is quiescent.
	profiled  bool
	winWallNs int64
	winEvents uint64
	winUsedPs int64
}

func (rt *shardRT) stageTo(dst *shardRT, at sim.Time, key uint64, fn sim.ArgEvent, arg any, n int64) {
	s := rt.stage[dst.id]
	if s == nil {
		// First event toward dst since the last barrier: reuse a drained
		// buffer. The free list is shared across destinations, so skewed
		// traffic grows one capacity, not one per destination.
		if k := len(rt.stageFree); k > 0 {
			s = rt.stageFree[k-1]
			rt.stageFree = rt.stageFree[:k-1]
		}
	}
	rt.stage[dst.id] = append(s, stagedEvent{at: at, key: key, fn: fn, arg: arg, n: n})
}

// runWindow executes one conservative window on the shard's engine.
// When profiled it additionally records the window's wall time, events
// executed, and the simulated advance actually used (last executed
// event minus window start) — per window, never per event, so the
// packet hot path is untouched.
func (rt *shardRT) runWindow(w windowReq) {
	if !rt.profiled {
		rt.exec(w)
		return
	}
	begin := rt.eng.Now()
	p0 := rt.eng.Processed()
	start := time.Now()
	rt.exec(w)
	rt.winWallNs = time.Since(start).Nanoseconds()
	rt.winEvents = rt.eng.Processed() - p0
	rt.winUsedPs = 0
	if used := int64(rt.eng.LastEventAt() - begin); used > 0 {
		rt.winUsedPs = used
	}
}

func (rt *shardRT) exec(w windowReq) {
	if w.inclusive {
		rt.eng.RunUntil(w.end)
	} else {
		rt.eng.RunBefore(w.end)
	}
}

// rng64 is a tiny splitmix64 generator, one per switch, for adaptive
// routing tie-breaks. Per-switch state (rather than one shared stream)
// makes each switch's draw sequence independent of how other switches'
// events interleave — a requirement for serial/sharded equivalence.
type rng64 struct{ s uint64 }

func newRNG(seed int64, id int) rng64 {
	return rng64{s: uint64(seed)*0x9E3779B97F4A7C15 + uint64(id+1)*0xBF58476D1CE4E5B9}
}

func (r *rng64) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// intn returns a value in [0, n). The modulo bias is irrelevant here —
// n is a handful of candidate ports — and determinism is what matters.
func (r *rng64) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// ShardGroup coordinates the shard workers of a network built with
// Config.Shards > 1. The control engine (Network.E) holds everything
// that is not per-entity data plane — workload generators, the energy
// controller, fault injection, telemetry sampling — and runs only at
// window barriers, when every shard is quiescent and parked on the same
// clock value. Obtain it from Network.Sharding.
type ShardGroup struct {
	net  *Network
	ctrl *sim.Engine
	rts  []*shardRT

	// la is the closed lookahead matrix: la[j][i] bounds how soon shard
	// j's pending work can influence shard i (farAway when it cannot).
	la [][]sim.Time

	// Cut quality of the partition: directed inter-switch channels that
	// cross a shard boundary, out of the total.
	crossChans int
	interChans int

	next    []sim.Time // per-round scratch: each shard's earliest event
	busy    []*shardRT
	done    chan struct{}
	started bool
	closed  bool

	// Self-profiling (Network.SetProfiler): nil when off. winStart is
	// per-round scratch holding each busy shard's clock at window grant.
	prof     *telemetry.EngineProfiler
	winStart []sim.Time
}

// NumShards returns the number of shards in the group.
func (g *ShardGroup) NumShards() int { return len(g.rts) }

// Lookahead returns the tightest cross-shard window bound: the minimum
// off-diagonal entry of the lookahead matrix. A shard pair at this bound
// barriers most often; loosely coupled pairs run wider windows.
func (g *ShardGroup) Lookahead() sim.Time {
	min := farAway
	for j, row := range g.la {
		for i, v := range row {
			if i != j && v < min {
				min = v
			}
		}
	}
	return min
}

// LookaheadMatrix returns a copy of the closed per-shard-pair lookahead
// matrix: entry [j][i] is the minimum latency over chains of cross-shard
// scheduling edges from shard j to shard i (diagonal: the shortest
// round trip back to j). Unreachable pairs are effectively infinite.
func (g *ShardGroup) LookaheadMatrix() [][]sim.Time {
	out := make([][]sim.Time, len(g.la))
	for i, row := range g.la {
		out[i] = append([]sim.Time(nil), row...)
	}
	return out
}

// CutQuality returns the partition's cut: how many directed inter-switch
// channels cross a shard boundary, out of the total. Lower is better —
// cross channels cost staging and tighten the lookahead matrix.
func (g *ShardGroup) CutQuality() (cross, total int) {
	return g.crossChans, g.interChans
}

// LookaheadRange returns the smallest and largest finite off-diagonal
// entries of the lookahead matrix: the tightest and loosest coupling of
// any shard pair. (0, 0) when no pair is finitely coupled.
func (g *ShardGroup) LookaheadRange() (lo, hi sim.Time) {
	lo = farAway
	for j, row := range g.la {
		for i, v := range row {
			if i == j || v >= farAway {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if lo >= farAway {
		lo = 0
	}
	return lo, hi
}

// start spawns the shard workers on first use.
func (g *ShardGroup) start() {
	if g.started {
		return
	}
	if g.net.Tracer != nil {
		// Panic before marking the group started: a deferred Close after
		// this panic must not try to close worker channels that were
		// never created.
		panic("fabric: packet tracing requires a serial run (Shards=1)")
	}
	g.started = true
	for _, rt := range g.rts {
		rt.work = make(chan windowReq, 1)
		go func(rt *shardRT) {
			for w := range rt.work {
				rt.runWindow(w)
				g.done <- struct{}{}
			}
		}(rt)
	}
}

// Close stops the shard workers. Idempotent — extra calls, including
// after a start that panicked before spawning workers, are no-ops. The
// group is unusable afterwards. Networks built with Shards=1 have no
// group to close.
func (g *ShardGroup) Close() {
	if g.closed {
		return
	}
	g.closed = true
	if !g.started {
		return
	}
	for _, rt := range g.rts {
		if rt.work != nil {
			close(rt.work)
		}
	}
}

// RunUntil advances the whole sharded simulation to the given time,
// with the semantics of sim.Engine.RunUntil: every event with timestamp
// <= until executes, and all clocks park on until.
func (g *ShardGroup) RunUntil(until sim.Time) {
	g.start()
	if g.prof != nil {
		g.prof.RunStarted()
		defer g.prof.RunStopped()
	}
	for {
		// The floor is the earliest shard clock: the instant the whole
		// simulation has provably completed. Every window end is capped
		// at the control engine's next event, so when the floor reaches
		// it every shard clock equals it exactly — the quiescent moment
		// control events require. Running the control plane to the floor
		// therefore fires them at precisely those instants (and control
		// uses lane 0, so at any one timestamp control precedes data).
		floor := g.rts[0].eng.Now()
		for _, rt := range g.rts[1:] {
			if t := rt.eng.Now(); t < floor {
				floor = t
			}
		}
		g.runCtrl(floor)
		g.drainStages()

		// Earliest pending work anywhere.
		next := farAway
		if at, ok := g.ctrl.NextAt(); ok {
			next = at
		}
		for _, rt := range g.rts {
			if at, ok := rt.eng.NextAt(); ok && at < next {
				next = at
			}
		}
		if next > until {
			// Nothing left inside the horizon: park every clock on it.
			for _, rt := range g.rts {
				rt.eng.AdvanceTo(until)
			}
			g.runCtrl(until)
			return
		}
		g.round(until)
	}
}

// runCtrl advances the control engine, timing the slice when profiling.
// Control events run sampler ticks and therefore possibly a profile
// snapshot, so the slice is accrued after the events execute — a mid-run
// snapshot sees every completed slice plus the live wall span.
func (g *ShardGroup) runCtrl(t sim.Time) {
	if g.prof == nil {
		g.ctrl.RunUntil(t)
		return
	}
	t0 := time.Now()
	p0 := g.ctrl.Processed()
	g.ctrl.RunUntil(t)
	g.prof.AddCtrl(time.Since(t0).Nanoseconds(), g.ctrl.Processed()-p0)
}

// round runs one set of per-shard conservative windows. Shard i's
// horizon is W_i = min(ctrlNext, min over j of N_j + la[j][i]): any
// event another shard stages toward i from here on lands at or after
// W_i, because it derives from some pending event (at >= N_j) through
// scheduling edges totalling at least la[j][i]. The diagonal term keeps
// a shard from outrunning its own echo (its packet's credit return).
// W_i never rewinds: each N_j is at least shard j's previous horizon,
// and la obeys the triangle inequality, so the bound only grows.
//
// When a shard's uncapped horizon clears the run horizon, nothing can
// arrive at or before until anymore and the window runs inclusively to
// until, matching serial RunUntil semantics. Shards with no work below
// their horizon jump straight to it; the rest run in parallel.
func (g *ShardGroup) round(until sim.Time) {
	ctrlNext := farAway
	if at, ok := g.ctrl.NextAt(); ok {
		ctrlNext = at
	}
	for i, rt := range g.rts {
		g.next[i] = farAway
		if at, ok := rt.eng.NextAt(); ok {
			g.next[i] = at
		}
	}
	prof := g.prof
	if prof != nil {
		prof.BeginRound()
	}
	busy := g.busy[:0]
	for i, rt := range g.rts {
		w := ctrlNext
		for j := range g.rts {
			if g.next[j] >= farAway {
				continue
			}
			if d := g.next[j] + g.la[j][i]; d < w {
				w = d
			}
		}
		req := windowReq{end: w}
		if w > until {
			req = windowReq{end: until, inclusive: true}
		}
		rt.win = req
		if at := g.next[i]; at < req.end || (req.inclusive && at == req.end && at < farAway) {
			if prof != nil {
				g.winStart[i] = rt.eng.Now()
			}
			busy = append(busy, rt)
		} else {
			if prof != nil {
				prof.ShardFastForward(i, int64(req.end-rt.eng.Now()))
			}
			rt.eng.AdvanceTo(req.end)
		}
	}
	g.busy = busy
	if len(busy) == 1 {
		// A single busy shard runs inline: no handoff, no wakeup.
		busy[0].runWindow(busy[0].win)
	} else {
		for _, rt := range busy {
			rt.work <- rt.win
		}
		for range busy {
			<-g.done
		}
	}
	if prof != nil {
		// Workers are parked again: fold their window numbers in and
		// settle the round's laggard / barrier-wait attribution.
		for _, rt := range busy {
			granted := int64(rt.win.end - g.winStart[rt.id])
			prof.ShardBusy(rt.id, granted, rt.winUsedPs, rt.winWallNs, rt.winEvents)
		}
		prof.EndRound()
	}
	g.drainStages()
}

// drainStages moves staged cross-shard events onto their destination
// heaps and applies deferred message-teardown deletions. Called only at
// barriers, with every worker quiescent. Push order does not matter:
// each event carries the ordering key drawn from its source lane.
//
// Drained slices are swapped into a per-shard free list rather than
// truncated in place, so a destination whose buffer happened to grow
// large keeps feeding capacity back to whichever destination needs it
// next — staging stays allocation-free in steady state at any shard
// count.
func (g *ShardGroup) drainStages() {
	prof := g.prof
	var t0 time.Time
	if prof != nil {
		t0 = time.Now()
	}
	for _, src := range g.rts {
		for d, evs := range src.stage {
			if len(evs) == 0 {
				continue
			}
			if prof != nil {
				// Count the exchange before the buffer is cleared: every
				// staged event, and the packet payload bytes among them
				// (credit returns carry no payload).
				var bytes int64
				for i := range evs {
					if pkt, ok := evs[i].arg.(*Packet); ok {
						bytes += int64(pkt.Size)
					}
				}
				prof.Exchange(src.id, d, int64(len(evs)), bytes)
			}
			eng := g.rts[d].eng
			for i := range evs {
				ev := &evs[i]
				eng.PushKeyed(ev.at, ev.key, ev.fn, ev.arg, ev.n)
			}
			clear(evs) // release the args for GC
			src.stageFree = append(src.stageFree, evs[:0])
			src.stage[d] = nil
		}
		for d, ids := range src.msgDead {
			if len(ids) == 0 {
				continue
			}
			dst := g.rts[d]
			for _, id := range ids {
				delete(dst.msgRemaining, id)
				delete(dst.msgInject, id)
			}
			src.msgDead[d] = ids[:0]
		}
	}
	if prof != nil {
		// Queue-depth high-water marks after the drain, so staged
		// arrivals count toward the destination's depth.
		for _, rt := range g.rts {
			prof.NotePending(rt.id, rt.eng.Pending())
		}
		prof.AddDrain(time.Since(t0).Nanoseconds())
	}
}

// buildShards partitions the network and creates the per-shard runtimes.
// The topology picks the split (topo.PartitionOf): structure-aware cuts
// for the regular topologies, balanced contiguous ranges otherwise.
// Hosts follow the switch they attach to, so host<->switch channels
// never cross a shard boundary and only switch<->switch channels need
// staging. The lookahead matrix is computed after wiring, in
// finishShards.
func (n *Network) buildShards(e *sim.Engine, nsh int) error {
	numSw := n.T.NumSwitches()
	if nsh > numSw {
		nsh = numSw
	}
	if nsh > 1 {
		if n.Cfg.WireDelay+n.Cfg.RoutingDelay <= 0 || n.Cfg.CreditDelay <= 0 {
			return fmt.Errorf("fabric: Shards=%d needs positive cross-shard latency "+
				"(WireDelay+RoutingDelay=%v, CreditDelay=%v)",
				nsh, n.Cfg.WireDelay+n.Cfg.RoutingDelay, n.Cfg.CreditDelay)
		}
	}
	n.swShard = topo.PartitionOf(n.T, nsh)
	n.rts = make([]*shardRT, nsh)
	for i := range n.rts {
		rt := &shardRT{id: i, eng: e}
		if nsh > 1 {
			rt.eng = sim.New()
			rt.stage = make([][]stagedEvent, nsh)
			rt.msgDead = make([][]int64, nsh)
		}
		n.rts[i] = rt
	}
	if nsh > 1 {
		n.group = &ShardGroup{
			net:  n,
			ctrl: e,
			rts:  n.rts,
			next: make([]sim.Time, nsh),
			busy: make([]*shardRT, 0, nsh),
			done: make(chan struct{}, nsh),
		}
	}
	return nil
}

// finishShards runs after the channels are wired: it derives the
// lookahead matrix and the partition's cut quality from the actual
// cross-shard channels.
func (n *Network) finishShards() {
	g := n.group
	if g == nil {
		return
	}
	nsh := len(g.rts)
	la := make([][]sim.Time, nsh)
	for i := range la {
		la[i] = make([]sim.Time, nsh)
		for j := range la[i] {
			la[i][j] = farAway
		}
	}
	// Direct edges. A cross-shard channel contributes two scheduling
	// edges: the packet arrival src->dst (staged at transmit start, lands
	// WireDelay+RoutingDelay later; cross-shard destinations are always
	// switches — hosts share their switch's shard) and the credit return
	// dst->src (staged at arrival, lands CreditDelay later).
	hop := n.Cfg.WireDelay + n.Cfg.RoutingDelay
	for _, c := range n.chans {
		if c.Src.Kind == topo.KindSwitch && c.Dst.Kind == topo.KindSwitch {
			g.interChans++
		}
		if c.sameShard {
			continue
		}
		g.crossChans++
		s, d := c.srcRT.id, c.dstRT.id
		if hop < la[s][d] {
			la[s][d] = hop
		}
		if n.Cfg.CreditDelay < la[d][s] {
			la[d][s] = n.Cfg.CreditDelay
		}
	}
	// Min-plus closure (Floyd–Warshall): influence propagates
	// transitively — shard a can reach shard c through b over successive
	// windows — so the safe bound for a pair is its cheapest chain. The
	// diagonal starts unreachable and closes to the cheapest round trip,
	// e.g. a packet out and its credit home. The closure also gives the
	// triangle inequality that makes per-shard windows monotone.
	for k := 0; k < nsh; k++ {
		lak := la[k]
		for i := 0; i < nsh; i++ {
			ik := la[i][k]
			if ik >= farAway {
				continue
			}
			lai := la[i]
			for j := 0; j < nsh; j++ {
				if d := ik + lak[j]; d < lai[j] {
					lai[j] = d
				}
			}
		}
	}
	g.la = la
}

// switchShard maps a switch index to its owning shard.
func (n *Network) switchShard(sw int) *shardRT {
	return n.rts[n.swShard[sw]]
}

// SwitchShard returns the shard that owns switch sw.
func (n *Network) SwitchShard(sw int) int { return n.swShard[sw] }

// Sharding returns the shard coordinator, or nil for a serial network.
// Callers driving a sharded network directly (rather than through the
// epnet Run API) must use ShardGroup.RunUntil instead of Engine.Run and
// call Close when done.
func (n *Network) Sharding() *ShardGroup { return n.group }

// NumShards returns the number of shards the fabric is partitioned into
// (1 for a serial network).
func (n *Network) NumShards() int { return len(n.rts) }

// HostShard returns the shard that owns host h — the shard on which
// OnDeliver and OnMessageDone fire for packets and messages destined to
// h. Callbacks on a sharded network must keep per-shard state indexed by
// this (the epnet runner does), because shards run concurrently.
func (n *Network) HostShard(h int) int { return n.Hosts[h].rt.id }

// SetProfiler attaches (or with nil, detaches) an engine self-profiler.
// Call it while the network is quiescent — before the first RunUntil,
// or between runs — never mid-run. The profiler observes the engine
// from outside the deterministic path: all hooks run at window
// granularity or at barriers, nothing registers with the telemetry
// registry, so results and sampled CSVs are byte-identical with
// profiling on or off.
func (n *Network) SetProfiler(p *telemetry.EngineProfiler) {
	n.prof = p
	g := n.group
	if g == nil {
		return
	}
	g.prof = p
	for _, rt := range g.rts {
		rt.profiled = p != nil
	}
	if p != nil {
		if g.winStart == nil {
			g.winStart = make([]sim.Time, len(g.rts))
		}
		cross, total := g.CutQuality()
		lo, hi := g.LookaheadRange()
		p.SetPartition(cross, total, int64(lo), int64(hi))
	}
}

// Profiler returns the attached engine self-profiler, or nil.
func (n *Network) Profiler() *telemetry.EngineProfiler { return n.prof }

// SetFlowCollector attaches (or with nil, detaches) a flow-trace
// collector: from then on injected packets are hash-sampled and carry
// hop logs (see telemetry.FlowCollector). Call while the network is
// quiescent — before the first RunUntil, or between runs — never
// mid-run. Unlike the Chrome tracer, flow tracing works sharded: every
// hook writes only packet-owned or shard-owned single-writer state, and
// the collector merges at quiescent points, so traced Results stay
// byte-identical across shard counts.
func (n *Network) SetFlowCollector(fc *telemetry.FlowCollector) {
	n.flow = fc
}

// FlowCollector returns the attached flow-trace collector, or nil.
func (n *Network) FlowCollector() *telemetry.FlowCollector { return n.flow }

// RunUntil advances the simulation to the given time: the shard group's
// windowed loop when sharded, the engine directly when serial.
func (n *Network) RunUntil(until sim.Time) {
	if n.group != nil {
		n.group.RunUntil(until)
		return
	}
	if p := n.prof; p != nil {
		// Serial profiled run: one engine, no rounds — the whole slice
		// is shard 0 busy time (control and data share the engine).
		t0 := time.Now()
		p0 := n.E.Processed()
		p.RunStarted()
		n.E.RunUntil(until)
		p.RunStopped()
		p.AddSerial(time.Since(t0).Nanoseconds(), n.E.Processed()-p0)
		p.NotePending(0, n.E.Pending())
		return
	}
	n.E.RunUntil(until)
}

// Close releases the shard workers (no-op for serial networks).
func (n *Network) Close() {
	if n.group != nil {
		n.group.Close()
	}
}

// EventsProcessed returns events executed across every engine of the
// network (control plus shards). For a serial network this is exactly
// Engine.Processed.
func (n *Network) EventsProcessed() uint64 {
	if n.group == nil {
		return n.E.Processed()
	}
	total := n.E.Processed()
	for _, rt := range n.rts {
		total += rt.eng.Processed()
	}
	return total
}

// PendingEvents returns queued events across every engine of the network.
func (n *Network) PendingEvents() int {
	if n.group == nil {
		return n.E.Pending()
	}
	total := n.E.Pending()
	for _, rt := range n.rts {
		total += rt.eng.Pending()
	}
	return total
}
