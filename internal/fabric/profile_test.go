package fabric

import (
	"math/rand"
	"testing"

	"epnet/internal/routing"
	"epnet/internal/sim"
	"epnet/internal/telemetry"
	"epnet/internal/topo"
)

// TestProfiledRunMatchesUnprofiled is the profiler's core guarantee:
// attaching an EngineProfiler must not perturb the simulation. Every
// fingerprint — counters, per-host delivery times, per-channel traffic —
// must match the unprofiled run exactly, at every shard count, with and
// without mid-run faults.
func TestProfiledRunMatchesUnprofiled(t *testing.T) {
	for _, faults := range []bool{false, true} {
		tag := "clean+profile"
		if faults {
			tag = "faults+profile"
		}
		for _, shards := range []int{1, 2, 4} {
			want := runSharded(t, shards, faults, nil)
			got := runSharded(t, shards, faults, telemetry.NewEngineProfiler(shards))
			diffFingerprints(t, tag, want, got)
		}
	}
}

// TestShardedProfileSanity checks the profile of a real sharded run is
// internally consistent: every data-plane and control event is
// attributed to exactly one shard or the control engine, window grants
// bound window use, the exchange matrix saw the cross-shard traffic,
// and the partition fields carry the cut quality and lookahead range.
func TestShardedProfileSanity(t *testing.T) {
	const shards = 4
	prof := telemetry.NewEngineProfiler(shards)
	fp := runSharded(t, shards, false, prof)
	s := prof.Snapshot()

	if s.Rounds == 0 {
		t.Fatal("profile recorded no rounds")
	}
	if s.WallNs <= 0 || s.CriticalPathNs <= 0 {
		t.Errorf("wall %d ns / critical path %d ns, want both > 0", s.WallNs, s.CriticalPathNs)
	}
	if ov := s.BarrierOverhead(); ov < 0 || ov > 1 {
		t.Errorf("BarrierOverhead = %v, want within [0, 1]", ov)
	}
	if s.TotalEvents() == 0 {
		t.Fatal("profile attributed no data-plane events")
	}
	if got := s.TotalEvents() + s.CtrlEvents; got != fp.events {
		t.Errorf("attributed events = %d (data) + %d (ctrl) = %d, want %d processed",
			s.TotalEvents(), s.CtrlEvents, got, fp.events)
	}
	var laggards, peak int64
	for _, sh := range s.Shards {
		if sh.UsedPs > sh.GrantedPs {
			t.Errorf("shard %d used %d ps of a %d ps grant", sh.Shard, sh.UsedPs, sh.GrantedPs)
		}
		if sh.BusyRounds+sh.FastForwardRounds > s.Rounds {
			t.Errorf("shard %d: %d busy + %d fast-forward rounds out of %d total",
				sh.Shard, sh.BusyRounds, sh.FastForwardRounds, s.Rounds)
		}
		if eff := sh.WindowEfficiency(); eff < 0 || eff > 1 {
			t.Errorf("shard %d: WindowEfficiency = %v, want within [0, 1]", sh.Shard, eff)
		}
		laggards += sh.LaggardRounds
		if sh.PeakPending > peak {
			peak = sh.PeakPending
		}
	}
	if laggards == 0 || laggards > s.Rounds {
		t.Errorf("%d laggard rounds out of %d, want within [1, rounds]", laggards, s.Rounds)
	}
	if peak == 0 {
		t.Error("no shard recorded a nonzero event-queue high-water mark")
	}

	ev, bytes := s.ExchangeTotals()
	if ev == 0 || bytes == 0 {
		t.Errorf("exchange totals = (%d events, %d bytes), want both > 0 on an 8-switch clique", ev, bytes)
	}
	for i := range s.ExchangeEvents {
		if s.ExchangeEvents[i][i] != 0 {
			t.Errorf("shard %d staged events to itself", i)
		}
	}

	if s.CutChannels == 0 || s.TotalChannels == 0 || s.CutChannels > s.TotalChannels {
		t.Errorf("cut quality = %d/%d, want a nonzero cut within the total", s.CutChannels, s.TotalChannels)
	}
	if s.LookaheadMin <= 0 || s.LookaheadMax < s.LookaheadMin {
		t.Errorf("lookahead range = [%d, %d] ps, want 0 < min <= max", s.LookaheadMin, s.LookaheadMax)
	}
}

// TestSerialProfileSanity checks the degenerate single-engine profile:
// the whole run lands on shard 0 as busy time, there are no rounds or
// barriers, and barrier overhead reads ~0 rather than garbage.
func TestSerialProfileSanity(t *testing.T) {
	prof := telemetry.NewEngineProfiler(1)
	fp := runSharded(t, 1, false, prof)
	s := prof.Snapshot()
	if s.Rounds != 0 {
		t.Errorf("serial profile recorded %d rounds, want 0", s.Rounds)
	}
	if s.Shards[0].BusyWallNs <= 0 || s.WallNs <= 0 {
		t.Errorf("busy %d ns / wall %d ns, want both > 0", s.Shards[0].BusyWallNs, s.WallNs)
	}
	if s.TotalEvents() != fp.events {
		t.Errorf("attributed %d events, want %d processed", s.TotalEvents(), fp.events)
	}
	if ev, _ := s.ExchangeTotals(); ev != 0 {
		t.Errorf("serial run staged %d cross-shard events", ev)
	}
}

// TestZeroAllocPacketPathWithProfile proves the profiling acceptance
// criterion the same way TestZeroAllocPacketPathWithMetrics does for
// metrics: with a profiler attached, the steady-state packet path adds
// zero allocations per packet. The profiler's run-slice bookkeeping is
// plain field writes, so the differential must be zero.
func TestZeroAllocPacketPathWithProfile(t *testing.T) {
	const batch = 256
	build := func(withProfile bool) func() {
		e := sim.New()
		f := topo.MustFBFLY(8, 2, 8)
		n, err := New(e, f, routing.NewFBFLY(f), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if withProfile {
			n.SetProfiler(telemetry.NewEngineProfiler(n.NumShards()))
		}
		rng := rand.New(rand.NewSource(1))
		var horizon sim.Time
		inject := func() {
			for j := 0; j < batch; j++ {
				src, dst := rng.Intn(64), rng.Intn(64)
				if dst == src {
					dst = (dst + 1) % 64
				}
				n.InjectMessage(src, dst, 2048)
			}
			horizon += sim.Millisecond
			n.RunUntil(horizon)
		}
		// Reach steady state first so free lists and queues are warm.
		inject()
		inject()
		return inject
	}
	plain := testing.AllocsPerRun(20, build(false))
	profiled := testing.AllocsPerRun(20, build(true))
	if profiled > plain {
		t.Errorf("profiling adds allocations: %v allocs/batch with profile vs %v without (batch = %d packets)",
			profiled, plain, batch)
	}
}

// TestNetworkCloseIdempotent is the regression test for the double-Close
// bug: closing a sharded network (or its group) twice must not panic on
// already-closed worker channels.
func TestNetworkCloseIdempotent(t *testing.T) {
	e := sim.New()
	f := topo.MustFBFLY(8, 2, 8)
	cfg := DefaultConfig()
	cfg.Shards = 2
	n, err := New(e, f, routing.NewFBFLY(f), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.InjectMessage(0, 40, 2048)
	n.RunUntil(100 * sim.Microsecond) // start the workers
	n.Close()
	n.Close()            // second close must be a no-op
	n.Sharding().Close() // and directly on the group too
}

// TestShardGroupCloseAfterFailedStart is the second half of the Close
// regression: when start panics (packet tracing is serial-only), a
// deferred Close must not mask that panic by closing worker channels
// that were never created.
func TestShardGroupCloseAfterFailedStart(t *testing.T) {
	e := sim.New()
	f := topo.MustFBFLY(8, 2, 8)
	cfg := DefaultConfig()
	cfg.Shards = 2
	n, err := New(e, f, routing.NewFBFLY(f), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Tracer = telemetry.NewTracer(nil)

	func() {
		defer func() {
			if recover() == nil {
				t.Error("RunUntil with a Tracer on a sharded network did not panic")
			}
		}()
		n.RunUntil(100 * sim.Microsecond)
	}()
	n.Close() // must be a clean no-op, not a nil-channel close panic
	n.Close()
}
