package fabric

import (
	"fmt"

	"epnet/internal/telemetry"
	"epnet/internal/topo"
)

// endpointLabel renders an endpoint compactly for metric names, which
// use dots as hierarchy separators: host 3 -> "h3", switch 0 port 2 ->
// "s0p2".
func endpointLabel(e topo.Endpoint) string {
	if e.Kind == topo.KindHost {
		return fmt.Sprintf("h%d", e.ID)
	}
	return fmt.Sprintf("s%dp%d", e.ID, e.Port)
}

// MetricName returns the channel's stable hierarchical metric prefix,
// e.g. "link.s0p1-s1p0".
func (c *Chan) MetricName() string {
	return fmt.Sprintf("link.%s-%s", endpointLabel(c.Src), endpointLabel(c.Dst))
}

// RegisterMetrics registers the fabric's observable state with a
// telemetry registry under stable hierarchical names:
//
//	net.injected_pkts / delivered_pkts / injected_mbytes /
//	net.delivered_mbytes / backlog_bytes / inflight_pkts
//	switch.<id>.routed_pkts, switch.<id>.queue_bytes
//	switch.<id>.p<port>.queue_bytes        (inter-switch ports)
//	link.<src>-<dst>.rate_gbps / state / total_mbytes  (inter-switch)
//
// Everything is exposed through closures over existing counters and
// accessors, so registration does not add a single instruction to the
// packet path. Host-attachment channels are aggregated into the net.*
// series rather than getting per-link columns, keeping the sampled
// width proportional to the switch fabric.
func (n *Network) RegisterMetrics(reg *telemetry.Registry) error {
	netGauges := map[string]func() float64{
		"net.injected_pkts":    func() float64 { p, _ := n.Injected(); return float64(p) },
		"net.delivered_pkts":   func() float64 { p, _ := n.Delivered(); return float64(p) },
		"net.dropped_pkts":     func() float64 { p, _ := n.Dropped(); return float64(p) },
		"net.injected_mbytes":  func() float64 { _, b := n.Injected(); return float64(b) / 1e6 },
		"net.delivered_mbytes": func() float64 { _, b := n.Delivered(); return float64(b) / 1e6 },
		"net.backlog_bytes":    func() float64 { return float64(n.HostBacklogBytes()) },
		"net.inflight_pkts":    func() float64 { return float64(n.InFlightPackets()) },
	}
	// Maps iterate in random order; register deterministically.
	for _, name := range []string{
		"net.injected_pkts", "net.delivered_pkts", "net.dropped_pkts",
		"net.injected_mbytes", "net.delivered_mbytes", "net.backlog_bytes",
		"net.inflight_pkts",
	} {
		if err := reg.GaugeFunc(name, netGauges[name]); err != nil {
			return err
		}
	}
	for i, s := range n.Switches {
		s := s
		if err := reg.GaugeFunc(fmt.Sprintf("switch.%d.routed_pkts", i),
			func() float64 { return float64(s.RoutedPackets()) }); err != nil {
			return err
		}
		if err := reg.GaugeFunc(fmt.Sprintf("switch.%d.queue_bytes", i),
			func() float64 {
				var total int64
				for p := range s.queuedBytes {
					total += s.queuedBytes[p]
				}
				return float64(total)
			}); err != nil {
			return err
		}
		for p := range s.out {
			ch := s.out[p]
			if ch == nil || ch.Dst.Kind != topo.KindSwitch {
				continue
			}
			p := p
			if err := reg.GaugeFunc(fmt.Sprintf("switch.%d.p%d.queue_bytes", i, p),
				func() float64 { return float64(s.QueueBytes(p)) }); err != nil {
				return err
			}
		}
	}
	for _, ch := range n.InterSwitchChannels() {
		ch := ch
		prefix := ch.MetricName()
		if err := reg.GaugeFunc(prefix+".rate_gbps",
			func() float64 { return ch.L.Rate().GbpsF() }); err != nil {
			return err
		}
		if err := reg.GaugeFunc(prefix+".state",
			func() float64 { return float64(ch.L.State(n.E.Now())) }); err != nil {
			return err
		}
		if err := reg.GaugeFunc(prefix+".total_mbytes",
			func() float64 { return float64(ch.L.TotalBytes()) / 1e6 }); err != nil {
			return err
		}
	}
	return nil
}
