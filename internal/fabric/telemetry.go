package fabric

import (
	"fmt"
	"strconv"

	"epnet/internal/telemetry"
	"epnet/internal/topo"
)

// endpointLabel renders an endpoint compactly for metric labels: host
// 3 -> "h3", switch 0 port 2 -> "s0p2".
func endpointLabel(e topo.Endpoint) string {
	if e.Kind == topo.KindHost {
		return fmt.Sprintf("h%d", e.ID)
	}
	return fmt.Sprintf("s%dp%d", e.ID, e.Port)
}

// Label returns the channel's stable entity id used as the "link"
// label value, e.g. "s0p1-s1p0".
func (c *Chan) Label() string {
	return fmt.Sprintf("%s-%s", endpointLabel(c.Src), endpointLabel(c.Dst))
}

// MetricName returns the channel's stable hierarchical metric prefix,
// e.g. "link.s0p1-s1p0" (legacy dotted form; labeled series use
// Label).
func (c *Chan) MetricName() string {
	return "link." + c.Label()
}

// RegisterMetrics registers the fabric's observable state with a
// telemetry registry. Whole-fabric aggregates are plain gauges;
// per-entity series are labeled vectors keyed by switch, port, and
// link id:
//
//	net.injected_pkts / delivered_pkts / dropped_pkts /
//	net.injected_mbytes / delivered_mbytes / backlog_bytes /
//	net.inflight_pkts
//	switch.routed_pkts{sw=N}, switch.queue_bytes{sw=N}
//	switch.port_queue_bytes{sw=N;port=P}     (inter-switch ports)
//	link.rate_gbps / state / util / total_mbytes / tx_pkts / drops
//	  {link=s0p1-s1p0}                       (inter-switch channels)
//
// Everything except link.tx_pkts is exposed through closures over
// existing counters and accessors, adding nothing to the packet path.
// link.tx_pkts binds a pre-resolved Counter handle onto each channel
// (Chan.mTx), which the delivery path increments — one nil-check-free
// add per hop, zero allocations (see BenchmarkNetworkThroughputMetrics
// and the zero-allocation test). Host-attachment channels are
// aggregated into the net.* series rather than getting per-link
// series, keeping the sampled width proportional to the switch fabric.
func (n *Network) RegisterMetrics(reg *telemetry.Registry) error {
	netGauges := map[string]func() float64{
		"net.injected_pkts":    func() float64 { p, _ := n.Injected(); return float64(p) },
		"net.delivered_pkts":   func() float64 { p, _ := n.Delivered(); return float64(p) },
		"net.dropped_pkts":     func() float64 { p, _ := n.Dropped(); return float64(p) },
		"net.injected_mbytes":  func() float64 { _, b := n.Injected(); return float64(b) / 1e6 },
		"net.delivered_mbytes": func() float64 { _, b := n.Delivered(); return float64(b) / 1e6 },
		"net.backlog_bytes":    func() float64 { return float64(n.HostBacklogBytes()) },
		"net.inflight_pkts":    func() float64 { return float64(n.InFlightPackets()) },
	}
	// Maps iterate in random order; register deterministically.
	for _, name := range []string{
		"net.injected_pkts", "net.delivered_pkts", "net.dropped_pkts",
		"net.injected_mbytes", "net.delivered_mbytes", "net.backlog_bytes",
		"net.inflight_pkts",
	} {
		if err := reg.GaugeFunc(name, netGauges[name]); err != nil {
			return err
		}
	}

	// Per-switch vectors, one loop per family so each family's series
	// are contiguous in sampler columns and scrape output.
	routed := reg.GaugeVec("switch.routed_pkts", "sw")
	queued := reg.GaugeVec("switch.queue_bytes", "sw")
	portQueued := reg.GaugeVec("switch.port_queue_bytes", "sw", "port")
	for i, s := range n.Switches {
		s := s
		if err := routed.WithFunc(func() float64 { return float64(s.RoutedPackets()) },
			strconv.Itoa(i)); err != nil {
			return err
		}
	}
	for i, s := range n.Switches {
		s := s
		if err := queued.WithFunc(func() float64 {
			var total int64
			for p := range s.queuedBytes {
				total += s.queuedBytes[p]
			}
			return float64(total)
		}, strconv.Itoa(i)); err != nil {
			return err
		}
	}
	for i, s := range n.Switches {
		s := s
		for p := range s.out {
			ch := s.out[p]
			if ch == nil || ch.Dst.Kind != topo.KindSwitch {
				continue
			}
			p := p
			if err := portQueued.WithFunc(func() float64 { return float64(s.QueueBytes(p)) },
				strconv.Itoa(i), strconv.Itoa(p)); err != nil {
				return err
			}
		}
	}

	// Per-link vectors over inter-switch channels.
	isc := n.InterSwitchChannels()
	rate := reg.GaugeVec("link.rate_gbps", "link")
	state := reg.GaugeVec("link.state", "link")
	util := reg.GaugeVec("link.util", "link")
	total := reg.GaugeVec("link.total_mbytes", "link")
	txPkts := reg.CounterVec("link.tx_pkts", "link")
	drops := reg.GaugeVec("link.drops", "link")
	for _, ch := range isc {
		ch := ch
		if err := rate.WithFunc(func() float64 { return ch.L.Rate().GbpsF() }, ch.Label()); err != nil {
			return err
		}
	}
	for _, ch := range isc {
		ch := ch
		if err := state.WithFunc(func() float64 { return float64(ch.L.State(n.E.Now())) }, ch.Label()); err != nil {
			return err
		}
	}
	for _, ch := range isc {
		ch := ch
		if err := util.WithFunc(func() float64 { return ch.L.MeanUtilization(n.E.Now()) }, ch.Label()); err != nil {
			return err
		}
	}
	for _, ch := range isc {
		ch := ch
		if err := total.WithFunc(func() float64 { return float64(ch.L.TotalBytes()) / 1e6 }, ch.Label()); err != nil {
			return err
		}
	}
	for _, ch := range isc {
		c, err := txPkts.With(ch.Label())
		if err != nil {
			return err
		}
		ch.mTx = c
	}
	for _, ch := range isc {
		ch := ch
		if err := drops.WithFunc(func() float64 { return float64(ch.Drops()) }, ch.Label()); err != nil {
			return err
		}
	}
	return nil
}
