package fabric

import (
	"math"
	"testing"

	"epnet/internal/routing"
	"epnet/internal/sim"
	"epnet/internal/topo"
)

// buildSignature flattens everything about a network's construction that
// downstream determinism depends on: the channel sequence (index, src,
// dst, credits, shard placement), the pair table, and every switch and
// host port wiring.
type chanSig struct {
	idx       int
	src, dst  topo.Endpoint
	credits   int64
	shard     int
	sameShard bool
}

func buildSignature(t *testing.T, n *Network) ([]chanSig, [][2]int, [][]int, []int) {
	t.Helper()
	chs := make([]chanSig, len(n.Channels()))
	for i, c := range n.Channels() {
		if c == nil {
			t.Fatalf("channel slot %d left nil", i)
		}
		if c.Index() != i {
			t.Fatalf("channel slot %d holds index %d", i, c.Index())
		}
		chs[i] = chanSig{
			idx: c.idx, src: c.Src, dst: c.Dst, credits: c.credits,
			shard: c.srcRT.id, sameShard: c.sameShard,
		}
	}
	pairs := make([][2]int, len(n.Pairs()))
	for i, pr := range n.Pairs() {
		pairs[i] = [2]int{pr[0].idx, pr[1].idx}
	}
	swOut := make([][]int, len(n.Switches))
	for sw, s := range n.Switches {
		ports := make([]int, len(s.out))
		for p, ch := range s.out {
			ports[p] = -1
			if ch != nil {
				ports[p] = ch.idx
			}
		}
		swOut[sw] = ports
	}
	hostUp := make([]int, len(n.Hosts))
	for h, hh := range n.Hosts {
		hostUp[h] = hh.out.idx
	}
	return chs, pairs, swOut, hostUp
}

// TestBuildParallelMatchesSerial proves the parallel streamed
// construction is byte-equivalent to a single-worker build and to the
// seed's materialized-slice serial layout: same channel indices in the
// same order, same pair table, same port wiring, for every topology
// family and a sharded configuration.
func TestBuildParallelMatchesSerial(t *testing.T) {
	topos := map[string]topo.Topology{
		"fbfly":   topo.MustFBFLY(4, 3, 4),
		"clos3":   topo.MustClos3(6),
		"fattree": topo.MustFatTree(4, 8, 4),
	}
	for name, tp := range topos {
		for _, shards := range []int{1, 4} {
			cfg := DefaultConfig()
			cfg.Shards = shards

			build := func(workers int) *Network {
				defer func(old int) { buildWorkers = old }(buildWorkers)
				buildWorkers = workers
				var r routing.Router
				switch f := tp.(type) {
				case *topo.FBFLY:
					r = routing.NewFBFLY(f)
				case *topo.Clos3:
					r = routing.NewClos3(f)
				case *topo.FatTree:
					r = routing.NewFatTree(f)
				}
				n, err := New(sim.New(), tp, r, cfg)
				if err != nil {
					t.Fatalf("%s/shards=%d: %v", name, shards, err)
				}
				return n
			}

			serial := build(1)
			parallelN := build(0)

			sc, sp, sw, sh := buildSignature(t, serial)
			pc, pp, pw, ph := buildSignature(t, parallelN)
			if len(sc) != len(pc) {
				t.Fatalf("%s/shards=%d: channel count %d vs %d", name, shards, len(sc), len(pc))
			}
			for i := range sc {
				if sc[i] != pc[i] {
					t.Fatalf("%s/shards=%d: channel %d differs: %+v vs %+v", name, shards, i, sc[i], pc[i])
				}
			}
			for i := range sp {
				if sp[i] != pp[i] {
					t.Fatalf("%s/shards=%d: pair %d differs: %v vs %v", name, shards, i, sp[i], pp[i])
				}
			}
			for s := range sw {
				for p := range sw[s] {
					if sw[s][p] != pw[s][p] {
						t.Fatalf("%s/shards=%d: sw%d.p%d wired to %d vs %d", name, shards, s, p, sw[s][p], pw[s][p])
					}
				}
			}
			for h := range sh {
				if sh[h] != ph[h] {
					t.Fatalf("%s/shards=%d: host %d uplink %d vs %d", name, shards, h, sh[h], ph[h])
				}
			}

			// Cross-check against the seed's serial append-loop layout,
			// reconstructed from the link stream: hosts first (up 2h,
			// down 2h+1), then each owned inter-switch link's forward and
			// reverse channel in topo.Links order.
			idx := 0
			for _, l := range topo.Links(serial.T) {
				fwd, rev := serial.chans[idx], serial.chans[idx+1]
				if l.A.Kind == topo.KindHost {
					if fwd.Src != l.A || fwd.Dst != l.B || rev.Src != l.B || rev.Dst != l.A {
						t.Fatalf("%s: host link %v wired as %v->%v / %v->%v",
							name, l, fwd.Src, fwd.Dst, rev.Src, rev.Dst)
					}
					if fwd.credits != int64(cfg.InputBufBytes) || rev.credits != math.MaxInt64/4 {
						t.Fatalf("%s: host link %v credits %d/%d", name, l, fwd.credits, rev.credits)
					}
				} else {
					if fwd.Src != l.A || fwd.Dst != l.B || rev.Src != l.B || rev.Dst != l.A {
						t.Fatalf("%s: link %v wired as %v->%v / %v->%v",
							name, l, fwd.Src, fwd.Dst, rev.Src, rev.Dst)
					}
				}
				idx += 2
			}
			if idx != len(serial.chans) {
				t.Fatalf("%s: layout covers %d channels, network has %d", name, idx, len(serial.chans))
			}
		}
	}
}
