package fabric

import (
	"fmt"

	"epnet/internal/link"
	"epnet/internal/sim"
	"epnet/internal/telemetry"
)

// Switch is an input/output-buffered crossbar switch. Input buffering is
// expressed through the upstream sender's credit pool; output queues are
// held here, and their depth in bytes is the adaptive routing signal.
//
// Switches are value entries in Network.swArr, and every per-port slice
// below is a window into a dense backing array shared by all switches —
// the fabric's struct-of-arrays layer. Network.New fills each Switch in
// place; there is no constructor.
type Switch struct {
	net *Network
	id  int

	// Shard wiring: the owning runtime, its engine (cached), the lane
	// that keys every event this switch schedules, and a private
	// tie-break RNG so route choices are independent of how other
	// switches' events interleave.
	rt   *shardRT
	eng  *sim.Engine
	lane sim.Lane
	rng  rng64

	out         []*Chan // per-port output channel (nil on unused ports)
	queues      []pktQueue
	queuedBytes []int64
	closing     []bool // dynamic topology: port drains, takes no new packets

	wakeAt      []sim.Time
	wakePending []bool

	candBuf []int

	// Diagnostics.
	routedPackets int64
	peakQueue     int64 // max output-queue depth seen, bytes
}

// ID returns the switch index.
func (s *Switch) ID() int { return s.id }

// QueueBytes returns the output queue depth (bytes) of a port.
func (s *Switch) QueueBytes(port int) int64 { return s.queuedBytes[port] }

// QueuedPackets returns the output queue length (packets) of a port.
func (s *Switch) QueuedPackets(port int) int { return s.queues[port].len() }

// SetClosing marks a port as draining (dynamic topologies): the adaptive
// route chooser stops selecting it for new packets.
func (s *Switch) SetClosing(port int, closing bool) { s.closing[port] = closing }

// Closing reports whether a port is draining.
func (s *Switch) Closing(port int) bool { return s.closing[port] }

// arrive processes a routed packet: choose an output port adaptively and
// enqueue it.
func (s *Switch) arrive(pkt *Packet, now sim.Time) {
	pkt.Hops++
	if pkt.trace != nil {
		pkt.trace.ArriveHop(int32(s.id), now)
	}
	if s.net.faultsEnabled {
		if s.net.deadSwitch[s.id] {
			s.net.dropPacket(s.rt, pkt, now, "arrived at crashed switch")
			return
		}
		if dstSw, _ := s.net.T.HostAttachment(pkt.Dst); s.net.deadSwitch[dstSw] {
			s.net.dropPacket(s.rt, pkt, now, "destination switch crashed")
			return
		}
	}
	port := s.choosePort(pkt, now)
	if port < 0 {
		s.net.dropPacket(s.rt, pkt, now, "no live route")
		return
	}
	s.enqueue(port, pkt, now)
}

// enqueue appends pkt to a port's output queue and pumps the port.
func (s *Switch) enqueue(port int, pkt *Packet, now sim.Time) {
	s.queues[port].push(pkt)
	s.queuedBytes[port] += int64(pkt.Size)
	if s.queuedBytes[port] > s.peakQueue {
		s.peakQueue = s.queuedBytes[port]
	}
	s.routedPackets++
	s.pumpOut(port, now)
}

// PumpPort re-evaluates a port's output queue after an external state
// change (e.g. a link failure or power transition), rerouting queued
// packets if the channel is gone.
func (s *Switch) PumpPort(port int, now sim.Time) { s.pumpOut(port, now) }

// DropAllQueued empties every output queue of a crashed switch,
// counting each packet as dropped, and returns how many were lost.
func (s *Switch) DropAllQueued(now sim.Time) int {
	dropped := 0
	for port := range s.queues {
		for _, pkt := range s.queues[port].drain() {
			s.net.dropPacket(s.rt, pkt, now, "queued in crashed switch")
			dropped++
		}
		s.queuedBytes[port] = 0
	}
	return dropped
}

// RoutedPackets returns the number of packets this switch has enqueued.
func (s *Switch) RoutedPackets() int64 { return s.routedPackets }

// PeakQueueBytes returns the deepest output queue (bytes) observed.
func (s *Switch) PeakQueueBytes() int64 { return s.peakQueue }

// choosePort picks among the router's minimal candidates the port with
// the smallest output queue (in bytes) — the paper's per-hop adaptive
// routing. Powered-off and draining ports are avoided; ties break
// uniformly at random.
//
// Without fault injection an empty or all-unwired candidate set is a
// routing bug and panics. With faults enabled it is a reachable state
// (every minimal port dead) and returns -1; the caller drops.
func (s *Switch) choosePort(pkt *Packet, now sim.Time) int {
	cands := s.net.R.Candidates(s.id, pkt.Dst, s.candBuf[:0])
	if len(cands) == 0 {
		if s.net.faultsEnabled {
			return -1
		}
		panic(fmt.Sprintf("fabric: sw%d has no route to host %d", s.id, pkt.Dst))
	}
	if len(cands) == 1 && !s.net.faultsEnabled {
		return cands[0]
	}
	const closingPenalty = int64(1) << 40
	best := -1
	var bestCost int64
	nBest := 0
	for _, p := range cands {
		ch := s.out[p]
		if ch == nil {
			continue
		}
		if s.net.faultsEnabled && s.net.chanCold[ch.idx].failed {
			continue
		}
		cost := s.queuedBytes[p]
		if s.net.Cfg.CostBusyTime {
			// Add the byte-equivalent of time until the channel can
			// accept a new packet (in-flight tail, CDR re-lock, lane
			// retraining) at its current rate.
			if at, on := ch.L.AvailableAt(now); on && at > now {
				waitNs := int64((at - now) / sim.Nanosecond)
				bytesPerSec := int64(ch.L.Rate()) / 8
				cost += bytesPerSec * waitNs / 1_000_000_000
			}
		}
		if s.closing[p] {
			cost += closingPenalty
		}
		if ch.L.State(now) == link.Off {
			cost += 2 * closingPenalty
		}
		switch {
		case best == -1 || cost < bestCost:
			best, bestCost, nBest = p, cost, 1
		case cost == bestCost:
			// Reservoir-sample among ties for unbiased spreading.
			nBest++
			if s.rng.intn(nBest) == 0 {
				best = p
			}
		}
	}
	if best == -1 {
		if s.net.faultsEnabled {
			return -1
		}
		panic(fmt.Sprintf("fabric: sw%d candidates %v all unwired for host %d", s.id, cands, pkt.Dst))
	}
	return best
}

// scheduleWake arranges a pumpOut(port) call at time at, deduplicating
// against an already-scheduled earlier wake.
func (s *Switch) scheduleWake(port int, at sim.Time) {
	if s.wakePending[port] && s.wakeAt[port] <= at {
		return
	}
	s.wakePending[port] = true
	s.wakeAt[port] = at
	s.eng.AtArgLane(at, &s.lane, s.net.fnSwWake, s, int64(port))
}

// pumpOut transmits queued packets on a port while the channel and
// credits allow; otherwise it arranges to be woken.
func (s *Switch) pumpOut(port int, now sim.Time) {
	q := &s.queues[port]
	for !q.empty() {
		ch := s.out[port]
		if ch == nil {
			panic(fmt.Sprintf("fabric: sw%d pump on unwired port %d", s.id, port))
		}
		pkt := q.peek()
		// Flow tracing: attribute the head packet's time since the last
		// visit to whatever blocked it then, and mark why it stalls now.
		// Pure writes to the packet's own log — never a branch in the
		// simulation itself, so determinism is untouched.
		tr := pkt.trace
		if tr != nil {
			tr.Account(now)
		}
		avail, on := ch.L.AvailableAt(now)
		if !on {
			// Channel was powered off with packets queued (a dynamic
			// topology transition raced a packet in). Re-route them.
			s.rerouteQueue(port, now)
			return
		}
		if avail > now {
			if tr != nil {
				tr.WaitAvailable(avail, ch.L.ReconfigUntil(now))
			}
			s.scheduleWake(port, avail)
			return
		}
		// Cut-through causality: retransmission may not finish before
		// the tail has arrived here.
		if t := pkt.TailIn - ch.L.Rate().TransmitTime(pkt.Size); t > now {
			if tr != nil {
				tr.Block(telemetry.FlowCut)
			}
			s.scheduleWake(port, t)
			return
		}
		if !ch.takeCredits(pkt.Size) {
			if tr != nil {
				tr.Block(telemetry.FlowCredit)
			}
			ch.waiting = true
			return
		}
		q.pop()
		s.queuedBytes[port] -= int64(pkt.Size)
		done := ch.L.StartTransmit(now, pkt.Size)
		s.net.deliverAcross(ch, pkt, now, done)
	}
}

// rerouteQueue drains a dead port's queue back through route selection.
func (s *Switch) rerouteQueue(port int, now sim.Time) {
	pkts := s.queues[port].drain()
	s.queuedBytes[port] = 0
	for _, pkt := range pkts {
		newPort := s.choosePort(pkt, now)
		if newPort < 0 {
			s.net.dropPacket(s.rt, pkt, now, "no live route")
			continue
		}
		if newPort == port && !(s.net.faultsEnabled && s.out[port].Failed()) {
			// No alternative: keep it here and hope the controller
			// powers the link back on; avoid infinite recursion.
			s.queues[port].push(pkt)
			s.queuedBytes[port] += int64(pkt.Size)
			continue
		}
		if newPort == port {
			// The router still offers only the failed port: no live
			// alternative exists.
			s.net.dropPacket(s.rt, pkt, now, "queued behind failed channel")
			continue
		}
		s.enqueue(newPort, pkt, now)
	}
}

// Host is a server NIC: an injection queue feeding the host's uplink
// channel, and the sink side that records deliveries. Hosts are value
// entries in Network.hostArr, filled in place by Network.New.
type Host struct {
	net *Network
	id  int

	// Shard wiring: a host lives on the shard of the switch it attaches
	// to, so its uplink and downlink never cross a shard boundary.
	rt   *shardRT
	eng  *sim.Engine
	lane sim.Lane

	out          *Chan
	q            pktQueue
	backlogBytes int64

	wakeAt      sim.Time
	wakePending bool
}

// ID returns the host index.
func (h *Host) ID() int { return h.id }

// BacklogBytes returns bytes waiting in the injection queue.
func (h *Host) BacklogBytes() int64 { return h.backlogBytes }

func (h *Host) scheduleWake(at sim.Time) {
	if h.wakePending && h.wakeAt <= at {
		return
	}
	h.wakePending = true
	h.wakeAt = at
	h.eng.AtArgLane(at, &h.lane, h.net.fnHostWake, h, 0)
}

// pump injects queued packets while the uplink and credits allow.
func (h *Host) pump(now sim.Time) {
	for !h.q.empty() {
		pkt := h.q.peek()
		tr := pkt.trace
		if tr != nil {
			tr.Account(now)
		}
		avail, on := h.out.L.AvailableAt(now)
		if !on {
			return // host links are never powered off in practice
		}
		if avail > now {
			if tr != nil {
				tr.WaitAvailable(avail, h.out.L.ReconfigUntil(now))
			}
			h.scheduleWake(avail)
			return
		}
		if !h.out.takeCredits(pkt.Size) {
			if tr != nil {
				tr.Block(telemetry.FlowCredit)
			}
			h.out.waiting = true
			return
		}
		h.q.pop()
		h.backlogBytes -= int64(pkt.Size)
		done := h.out.L.StartTransmit(now, pkt.Size)
		h.net.deliverAcross(h.out, pkt, now, done)
	}
}

// deliver sinks a packet at its destination.
func (h *Host) deliver(pkt *Packet, now sim.Time) {
	if pkt.Dst != h.id {
		panic(fmt.Sprintf("fabric: host %d received packet for %d", h.id, pkt.Dst))
	}
	h.rt.deliveredPkts++
	h.rt.deliveredBytes += int64(pkt.Size)
	if h.net.Tracer != nil {
		h.net.Tracer.AsyncSpan("pkt", "packet", telemetry.PIDPackets, pkt.ID,
			pkt.Inject, now, fmt.Sprintf(`"src":%d,"dst":%d,"bytes":%d,"hops":%d`,
				pkt.Src, pkt.Dst, pkt.Size, pkt.Hops))
	}
	if h.net.OnDeliver != nil {
		h.net.OnDeliver(pkt, now)
	}
	if h.net.OnMessageDone != nil {
		if rem, ok := h.rt.msgRemaining[pkt.MsgID]; ok {
			rem--
			if rem == 0 {
				h.net.OnMessageDone(pkt.MsgID, pkt.Src, pkt.Dst,
					h.rt.msgInject[pkt.MsgID], now)
				delete(h.rt.msgRemaining, pkt.MsgID)
				delete(h.rt.msgInject, pkt.MsgID)
			} else {
				h.rt.msgRemaining[pkt.MsgID] = rem
			}
		}
	}
	if pkt.trace != nil {
		h.net.flow.FinishDeliver(h.rt.id, pkt.trace, now)
		pkt.trace = nil
	}
	h.net.freePacket(h.rt, pkt)
}

// Uplink returns the host's injection channel (for tests and the energy
// controller, which tunes host links too).
func (h *Host) Uplink() *Chan { return h.out }
