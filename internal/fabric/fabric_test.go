package fabric

import (
	"math/rand"
	"testing"

	"epnet/internal/link"
	"epnet/internal/routing"
	"epnet/internal/sim"
	"epnet/internal/topo"
)

// newTestNet builds an 8-ary 2-flat network (64 hosts, 8 switches).
func newTestNet(t testing.TB) (*sim.Engine, *Network) {
	t.Helper()
	e := sim.New()
	f := topo.MustFBFLY(8, 2, 8)
	n, err := New(e, f, routing.NewFBFLY(f), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e, n
}

func TestConfigValidation(t *testing.T) {
	e := sim.New()
	f := topo.MustFBFLY(2, 2, 1)
	r := routing.NewFBFLY(f)

	bad := DefaultConfig()
	bad.MaxPacket = 0
	if _, err := New(e, f, r, bad); err == nil {
		t.Error("MaxPacket=0 accepted")
	}
	bad = DefaultConfig()
	bad.InputBufBytes = 10
	if _, err := New(e, f, r, bad); err == nil {
		t.Error("buffer smaller than packet accepted")
	}
	bad = DefaultConfig()
	bad.WireDelay = -1
	if _, err := New(e, f, r, bad); err == nil {
		t.Error("negative delay accepted")
	}
	// Nil ladder defaults.
	ok := DefaultConfig()
	ok.Ladder = nil
	if _, err := New(e, f, r, ok); err != nil {
		t.Errorf("nil ladder rejected: %v", err)
	}
}

func TestChannelWiring(t *testing.T) {
	_, n := newTestNet(t)
	f := n.T.(*topo.FBFLY)
	// Channels: 2 per host link + 2 per inter-switch link.
	wantLinks := f.NumHosts() + f.NumSwitches()*(f.K-1)*f.D/2
	if got := len(n.Pairs()); got != wantLinks {
		t.Errorf("pairs = %d, want %d", got, wantLinks)
	}
	if got := len(n.Channels()); got != 2*wantLinks {
		t.Errorf("channels = %d, want %d", got, 2*wantLinks)
	}
	if got := len(n.InterSwitchChannels()); got != f.NumSwitches()*(f.K-1)*f.D {
		t.Errorf("inter-switch channels = %d", got)
	}
	// Every pair is mutually reversed.
	for _, pr := range n.Pairs() {
		if pr[0].Src != pr[1].Dst || pr[0].Dst != pr[1].Src {
			t.Fatalf("pair not reversed: %v / %v", pr[0].Label(), pr[1].Label())
		}
	}
}

// TestSinglePacketLatency checks the exact end-to-end timing of a single
// packet: serialization, cut-through per-hop latency, wire and routing
// delays.
func TestSinglePacketLatency(t *testing.T) {
	e, n := newTestNet(t)
	var got sim.Time
	var hops int
	n.OnDeliver = func(p *Packet, now sim.Time) {
		got = now - p.Inject
		hops = p.Hops
	}
	// Host 0 (sw0) to host 8 (sw1): one inter-switch hop.
	n.InjectMessage(0, 8, 1000)
	e.Run()
	// ser(1000B@40G)=200ns; host: [0,200]; sw0 arrives head 50, routes at
	// 150, transmits [150,350]; sw1 head 400... routes at 300, transmits
	// [300,500]; tail at host 550ns.
	want := 550 * sim.Nanosecond
	if got != want {
		t.Errorf("latency = %v, want %v", got, want)
	}
	if hops != 2 {
		t.Errorf("hops = %d, want 2", hops)
	}

	// Same-switch delivery: host 0 -> host 1.
	got = 0
	n.InjectMessage(0, 1, 1000)
	e.Run()
	if want := 400 * sim.Nanosecond; got != want {
		t.Errorf("local latency = %v, want %v", got, want)
	}
}

func TestMessageSegmentation(t *testing.T) {
	e, n := newTestNet(t)
	delivered := 0
	var bytes int64
	n.OnDeliver = func(p *Packet, _ sim.Time) { delivered++; bytes += int64(p.Size) }
	// 5000 bytes with 2048-byte packets: 2048+2048+904.
	n.InjectMessage(0, 9, 5000)
	if pkts, b := n.Injected(); pkts != 3 || b != 5000 {
		t.Fatalf("injected %d pkts %d bytes", pkts, b)
	}
	e.Run()
	if delivered != 3 || bytes != 5000 {
		t.Errorf("delivered %d pkts %d bytes", delivered, bytes)
	}
	if n.InFlightPackets() != 0 {
		t.Errorf("in flight = %d", n.InFlightPackets())
	}
}

// TestConservation floods the network with random traffic and verifies
// every injected packet is delivered exactly once.
func TestConservation(t *testing.T) {
	e, n := newTestNet(t)
	seen := make(map[int64]int)
	n.OnDeliver = func(p *Packet, _ sim.Time) { seen[p.ID]++ }
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		src := rng.Intn(64)
		dst := rng.Intn(64)
		if dst == src {
			dst = (dst + 1) % 64
		}
		e.At(sim.Time(rng.Intn(100))*sim.Microsecond, func(sim.Time) {
			n.InjectMessage(src, dst, 1+rng.Intn(8000))
		})
	}
	e.Run()
	inj, injB := n.Injected()
	del, delB := n.Delivered()
	if inj != del || injB != delB {
		t.Fatalf("injected %d/%dB delivered %d/%dB", inj, injB, del, delB)
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("packet %d delivered %d times", id, c)
		}
	}
	if n.HostBacklogBytes() != 0 {
		t.Errorf("backlog = %d after drain", n.HostBacklogBytes())
	}
}

// TestCreditBackpressure shrinks input buffers to a single packet and
// verifies traffic still flows (more slowly) without loss or deadlock.
func TestCreditBackpressure(t *testing.T) {
	e := sim.New()
	f := topo.MustFBFLY(4, 2, 4)
	cfg := DefaultConfig()
	cfg.MaxPacket = 1024
	cfg.InputBufBytes = 1024 // exactly one packet of credits
	n, err := New(e, f, routing.NewFBFLY(f), cfg)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	n.OnDeliver = func(*Packet, sim.Time) { delivered++ }
	// Everyone bursts to host 0's switch neighborhood at once.
	for h := 4; h < 16; h++ {
		n.InjectMessage(h, h%4, 8192)
	}
	e.Run()
	if want := 12 * 8; delivered != want {
		t.Fatalf("delivered %d, want %d", delivered, want)
	}
}

// TestAdaptiveSpreading sends many packets between switch pairs that
// have two minimal paths and verifies both dimensions carry traffic.
func TestAdaptiveSpreading(t *testing.T) {
	e, n := newTestNet(t)
	f := topo.MustFBFLY(4, 3, 2) // use a 2-dim topology for 2 paths
	e = sim.New()
	n, err := New(e, f, routing.NewFBFLY(f), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Host 0 is on switch 0 (coords 0,0); pick a destination whose
	// switch differs in both dimensions, e.g. switch 5 (coords 1,1).
	dst := 5 * f.C
	for i := 0; i < 200; i++ {
		n.InjectMessage(0, dst, 2048)
	}
	e.Run()
	// Count how many first-hop packets left switch 0 per dimension.
	perDim := map[int]int64{}
	sw0 := n.Switches[0]
	for p := f.C; p < f.Radix(); p++ {
		if ch := sw0.out[p]; ch != nil {
			perDim[f.PortDim(p)] += ch.L.TotalPackets()
		}
	}
	if perDim[0] == 0 || perDim[1] == 0 {
		t.Errorf("adaptive routing did not use both dimensions: %v", perDim)
	}
	if perDim[0]+perDim[1] != 200 {
		t.Errorf("first-hop packets = %d, want 200", perDim[0]+perDim[1])
	}
}

// TestDetunedChannelThroughput verifies that a channel detuned to
// 2.5 Gb/s serializes 16x slower, and delivery reflects it.
func TestDetunedChannelThroughput(t *testing.T) {
	e, n := newTestNet(t)
	var last sim.Time
	n.OnDeliver = func(p *Packet, now sim.Time) { last = now }
	// Detune host 0's uplink.
	n.Hosts[0].Uplink().L.SetRate(0, link.Rate2_5G, 0)
	n.InjectMessage(0, 8, 40000) // 20 packets of 2000B... 2048B
	e.Run()
	// Serialization dominates: 40000B at 2.5G = 128us lower bound.
	if last < 128*sim.Microsecond {
		t.Errorf("finished at %v, cannot beat 2.5G serialization of 128us", last)
	}
	inj, _ := n.Injected()
	del, _ := n.Delivered()
	if inj != del {
		t.Errorf("injected %d != delivered %d", inj, del)
	}
}

// TestSlowestModeBacklog reproduces the §4.2.1 observation that a
// network always operating in the slowest mode "fails to keep up with
// the offered host load": at high offered load, source backlog persists.
func TestSlowestModeBacklog(t *testing.T) {
	e, n := newTestNet(t)
	// All channels at 2.5 Gb/s.
	for _, c := range n.Channels() {
		c.L.SetRate(0, link.Rate2_5G, 0)
	}
	// Offer ~40% of 40G line rate from every host for 100us: far beyond
	// the 2.5G host uplinks (6.25% of 40G).
	rng := rand.New(rand.NewSource(5))
	for h := 0; h < 64; h++ {
		for i := 0; i < 10; i++ {
			h := h
			e.At(sim.Time(i)*10*sim.Microsecond, func(sim.Time) {
				dst := rng.Intn(64)
				if dst == h {
					dst = (dst + 1) % 64
				}
				n.InjectMessage(h, dst, 20000)
			})
		}
	}
	e.RunUntil(100 * sim.Microsecond)
	if n.HostBacklogBytes() == 0 {
		t.Error("no backlog at 2.5G with 40% offered load; expected saturation")
	}
}

// TestRerouteOnPowerOff powers a link off with packets queued and
// verifies they are re-routed and still delivered.
func TestRerouteOnPowerOff(t *testing.T) {
	e := sim.New()
	f := topo.MustFBFLY(4, 3, 2)
	n, err := New(e, f, routing.NewFBFLY(f), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	n.OnDeliver = func(*Packet, sim.Time) { delivered++ }
	dst := 5 * f.C // two minimal paths from switch 0
	for i := 0; i < 50; i++ {
		n.InjectMessage(0, dst, 2048)
	}
	// After 2us, kill whichever dim-0 first-hop channel has packets.
	e.At(2*sim.Microsecond, func(now sim.Time) {
		sw0 := n.Switches[0]
		for p := f.C; p < f.Radix(); p++ {
			if ch := sw0.out[p]; ch != nil && sw0.QueuedPackets(p) > 0 {
				ch.L.PowerOff(now)
				sw0.pumpOut(p, now)
				break
			}
		}
	})
	e.Run()
	if delivered != 50 {
		t.Errorf("delivered %d, want 50 (reroute around powered-off link)", delivered)
	}
}

func TestInjectValidation(t *testing.T) {
	_, n := newTestNet(t)
	for _, fn := range []func(){
		func() { n.InjectMessage(-1, 0, 10) },
		func() { n.InjectMessage(0, 1000, 10) },
		func() { n.InjectMessage(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid inject did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestPktQueue exercises the FIFO including its compaction path.
func TestPktQueue(t *testing.T) {
	var q pktQueue
	if !q.empty() || q.len() != 0 {
		t.Fatal("new queue not empty")
	}
	for i := 0; i < 500; i++ {
		q.push(&Packet{ID: int64(i)})
	}
	for i := 0; i < 400; i++ {
		if got := q.pop(); got.ID != int64(i) {
			t.Fatalf("pop %d = %d", i, got.ID)
		}
	}
	if q.len() != 100 {
		t.Fatalf("len = %d", q.len())
	}
	if q.peek().ID != 400 {
		t.Fatalf("peek = %d", q.peek().ID)
	}
	rest := q.drain()
	if len(rest) != 100 || rest[0].ID != 400 || rest[99].ID != 499 {
		t.Fatalf("drain wrong: %d items", len(rest))
	}
}

// TestDeterminism runs the same random workload twice and requires
// byte-identical outcomes (same seeds everywhere).
func TestDeterminism(t *testing.T) {
	run := func() (int64, sim.Time) {
		e := sim.New()
		f := topo.MustFBFLY(8, 2, 8)
		cfg := DefaultConfig()
		cfg.Seed = 42
		n, err := New(e, f, routing.NewFBFLY(f), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var lastDeliver sim.Time
		n.OnDeliver = func(_ *Packet, now sim.Time) { lastDeliver = now }
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 200; i++ {
			at := sim.Time(rng.Intn(50)) * sim.Microsecond
			src, dst := rng.Intn(64), rng.Intn(64)
			if src == dst {
				dst = (dst + 1) % 64
			}
			size := 1 + rng.Intn(10000)
			e.At(at, func(sim.Time) { n.InjectMessage(src, dst, size) })
		}
		e.Run()
		_, b := n.Delivered()
		return b, lastDeliver
	}
	b1, t1 := run()
	b2, t2 := run()
	if b1 != b2 || t1 != t2 {
		t.Errorf("non-deterministic: (%d,%v) vs (%d,%v)", b1, t1, b2, t2)
	}
}

// TestReconfigurationStorm subjects the fabric to random rate changes on
// random channels while traffic flows, and requires zero packet loss —
// the property the paper's whole mechanism rests on ("rely on the
// adaptive routing mechanism to sense congestion and automatically route
// traffic around the link").
func TestReconfigurationStorm(t *testing.T) {
	e := sim.New()
	f := topo.MustFBFLY(4, 3, 2)
	n, err := New(e, f, routing.NewFBFLY(f), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(123))
	ladder := link.DefaultLadder()
	chans := n.Channels()
	// Storm: every 500ns, retune a random channel to a random rate with
	// a random (up to 2us) reactivation.
	var storm func(now sim.Time)
	storm = func(now sim.Time) {
		if now > 300*sim.Microsecond {
			return
		}
		ch := chans[rng.Intn(len(chans))]
		ch.L.SetRate(now, ladder[rng.Intn(len(ladder))], sim.Time(rng.Intn(2000))*sim.Nanosecond)
		// Wake the sender in case it was waiting on the old schedule.
		n.wakeSender(ch, now)
		e.After(500*sim.Nanosecond, storm)
	}
	e.At(0, storm)
	for i := 0; i < 400; i++ {
		i := i
		e.At(sim.Time(rng.Intn(250))*sim.Microsecond, func(sim.Time) {
			src, dst := i%32, (i*17+3)%32
			if src == dst {
				dst = (dst + 1) % 32
			}
			n.InjectMessage(src, dst, 1+rng.Intn(16000))
		})
	}
	e.Run()
	inj, injB := n.Injected()
	del, delB := n.Delivered()
	if inj != del || injB != delB {
		t.Fatalf("storm lost packets: injected %d/%dB delivered %d/%dB", inj, injB, del, delB)
	}
}

// TestHopCountsMinimal verifies every delivered packet took exactly the
// minimal number of switch hops (adaptive routing is minimal).
func TestHopCountsMinimal(t *testing.T) {
	e := sim.New()
	f := topo.MustFBFLY(4, 3, 2)
	n, err := New(e, f, routing.NewFBFLY(f), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.OnDeliver = func(p *Packet, _ sim.Time) {
		want := f.MinimalHops(p.Src, p.Dst) + 1 // +1 for the egress switch hop
		if p.Hops != want {
			t.Errorf("packet %d->%d took %d hops, want %d", p.Src, p.Dst, p.Hops, want)
		}
	}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 200; i++ {
		src, dst := rng.Intn(32), rng.Intn(32)
		if src == dst {
			continue
		}
		n.InjectMessage(src, dst, 2048)
	}
	e.Run()
}

// TestCostBusyTimeAvoidsReconfiguring: with the richer §3.2 cost, the
// first packet after a reconfiguration starts avoids the unavailable
// channel even though its queue is empty; with queue-depth-only cost it
// cannot tell.
func TestCostBusyTimeAvoidsReconfiguring(t *testing.T) {
	build := func(busyCost bool) (*sim.Engine, *Network, *topo.FBFLY) {
		e := sim.New()
		f := topo.MustFBFLY(4, 3, 2)
		cfg := DefaultConfig()
		cfg.CostBusyTime = busyCost
		n, err := New(e, f, routing.NewFBFLY(f), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e, n, f
	}
	run := func(busyCost bool) int64 {
		e, n, f := build(busyCost)
		// Destination differs in both dimensions from switch 0: two
		// first-hop candidates. Put one into a long reactivation.
		dst := 5 * f.C
		sw0 := n.Switches[0]
		var reconfPort int
		for p := f.C; p < f.Radix(); p++ {
			if ch := sw0.out[p]; ch != nil && f.PortDim(p) == 0 {
				if peer, _ := f.Peer(0, p); peer.ID == 1 {
					reconfPort = p
					ch.L.SetRate(0, link.Rate2_5G, 50*sim.Microsecond)
					break
				}
			}
		}
		for i := 0; i < 10; i++ {
			n.InjectMessage(0, dst, 2048)
		}
		e.Run()
		return sw0.out[reconfPort].L.TotalPackets()
	}
	through := run(false)
	avoided := run(true)
	if avoided >= through {
		t.Errorf("busy-time cost sent %d packets into the reconfiguring link, plain cost %d",
			avoided, through)
	}
	if avoided != 0 {
		t.Errorf("busy-time cost should fully avoid the 50us reactivation, sent %d", avoided)
	}
}
