package fabric

import (
	"epnet/internal/sim"
	"epnet/internal/telemetry"
)

// Packet is the unit of transfer in the simulator. Messages larger than
// the configured maximum packet size are segmented into multiple packets
// at the source host.
//
// Packets are recycled through a per-network free list once delivered:
// a *Packet passed to OnDeliver is valid only for the duration of the
// callback and must not be retained.
type Packet struct {
	ID    int64
	MsgID int64 // message this packet belongs to
	Src   int   // source host
	Dst   int   // destination host
	Size  int   // bytes

	// Inject is when the message this packet belongs to was offered at
	// the source host; packet latency is measured from this point, so it
	// includes source queueing (which is how a network that "fails to
	// keep up with the offered host load" becomes visible).
	Inject sim.Time

	// HeadIn and TailIn are the head and tail arrival times at the
	// current hop; TailIn constrains when a cut-through switch may
	// finish retransmitting the packet.
	HeadIn, TailIn sim.Time

	// Hops counts switch traversals.
	Hops int

	// ch is the channel the packet is currently crossing; the arrival
	// event reads it to know where to return the credit. Keeping it on
	// the packet lets arrivals be scheduled through pre-bound functions
	// instead of a fresh closure per hop.
	ch *Chan

	// chEpoch snapshots ch's fail epoch at transmit time. Heap events
	// cannot be cancelled, so a channel failure instead bumps the
	// epoch: an arrival whose snapshot no longer matches was in flight
	// when the channel died and is dropped.
	chEpoch uint32

	// trace is the packet's hop log when it was hash-sampled by an
	// attached flow collector, nil otherwise — every tracing hook on
	// the hot path is behind this one pointer test. The trace rides the
	// packet across shard exchanges (the staged event's arg is the
	// packet), and ownership follows the packet: only the shard
	// currently executing the packet's events touches it.
	trace *telemetry.PacketTrace
}

// pktQueue is an allocation-friendly FIFO of packets.
type pktQueue struct {
	items []*Packet
	head  int
}

func (q *pktQueue) empty() bool { return q.head >= len(q.items) }

func (q *pktQueue) len() int { return len(q.items) - q.head }

func (q *pktQueue) push(p *Packet) { q.items = append(q.items, p) }

func (q *pktQueue) peek() *Packet { return q.items[q.head] }

func (q *pktQueue) pop() *Packet {
	p := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return p
}

// drain removes and returns all queued packets.
func (q *pktQueue) drain() []*Packet {
	out := make([]*Packet, 0, q.len())
	for !q.empty() {
		out = append(out, q.pop())
	}
	return out
}
