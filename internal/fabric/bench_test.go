package fabric

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"epnet/internal/routing"
	"epnet/internal/sim"
	"epnet/internal/telemetry"
	"epnet/internal/topo"
)

// BenchmarkNetworkThroughput measures raw simulated-packet throughput
// on an 8-ary 2-flat under uniform random single-packet messages. One
// benchmark op is a steady-state unit — inject a batch of messages and
// fully drain the network — so injection, routing, transmission and
// delivery are all inside the timed region in a fixed proportion.
// With MaxPacket 2048 each message is exactly one packet, so allocs/op
// divided by the batch size is allocations per packet.
func BenchmarkNetworkThroughput(b *testing.B) {
	const batch = 1024
	e := sim.New()
	f := topo.MustFBFLY(8, 2, 8)
	n, err := New(e, f, routing.NewFBFLY(f), DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	inject := func() {
		for j := 0; j < batch; j++ {
			src := rng.Intn(64)
			dst := rng.Intn(64)
			if dst == src {
				dst = (dst + 1) % 64
			}
			n.InjectMessage(src, dst, 2048)
		}
		e.Run()
	}
	inject() // reach steady state (warm free lists and queues) untimed
	b.SetBytes(batch * 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inject()
	}
	b.StopTimer()
	inj, _ := n.Injected()
	del, _ := n.Delivered()
	if inj != del {
		b.Fatalf("lost packets: %d != %d", inj, del)
	}
	b.ReportMetric(float64(del-batch)/b.Elapsed().Seconds(), "pkts/sec")
}

// BenchmarkNetworkThroughputFlowTrace is the differential half of the
// flow-tracing cost contract: the same steady-state unit as
// BenchmarkNetworkThroughput with a flow collector attached, at the
// default sample rate and with every packet traced. Comparing allocs/op
// against the base benchmark (benchjson -compare) isolates what tracing
// adds; the base benchmark itself pins the disabled path at zero
// allocations per packet.
func BenchmarkNetworkThroughputFlowTrace(b *testing.B) {
	for _, bc := range []struct {
		name string
		rate float64
	}{{"sampled", 1.0 / 64}, {"all", 1}} {
		b.Run(bc.name, func(b *testing.B) {
			const batch = 1024
			e := sim.New()
			f := topo.MustFBFLY(8, 2, 8)
			n, err := New(e, f, routing.NewFBFLY(f), DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			flow := telemetry.NewFlowCollector(n.NumShards(), len(n.Channels()), bc.rate, 1)
			flow.SetClasses([]string{"steady"}, []sim.Time{sim.Time(1) << 62})
			n.SetFlowCollector(flow)
			rng := rand.New(rand.NewSource(1))
			inject := func() {
				for j := 0; j < batch; j++ {
					src := rng.Intn(64)
					dst := rng.Intn(64)
					if dst == src {
						dst = (dst + 1) % 64
					}
					n.InjectMessage(src, dst, 2048)
				}
				e.Run()
			}
			inject() // reach steady state untimed
			b.SetBytes(batch * 2048)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inject()
			}
			b.StopTimer()
			inj, _ := n.Injected()
			del, _ := n.Delivered()
			if inj != del {
				b.Fatalf("lost packets: %d != %d", inj, del)
			}
			snap := flow.Snapshot()
			if snap.Started == 0 {
				b.Fatal("collector traced nothing")
			}
			b.ReportMetric(float64(del-batch)/b.Elapsed().Seconds(), "pkts/sec")
		})
	}
}

// BenchmarkShardedThroughput measures the same steady-state unit as
// BenchmarkNetworkThroughput across shard counts on a larger-radix
// FBFLY. The workload and results are byte-identical at every shard
// count; only wall-clock time may differ. Speedup requires free cores —
// the reported cpus metric records how many this machine offered, so a
// flat scaling curve on a saturated or single-core box reads as the
// environment, not the engine.
func BenchmarkShardedThroughput(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			const batch = 4096
			e := sim.New()
			f := topo.MustFBFLY(16, 2, 8) // 16-switch clique, 128 hosts
			cfg := DefaultConfig()
			cfg.Shards = shards
			n, err := New(e, f, routing.NewFBFLY(f), cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer n.Close()
			prof := telemetry.NewEngineProfiler(n.NumShards())
			n.SetProfiler(prof)
			numHosts := n.NumHosts()
			rng := rand.New(rand.NewSource(1))
			var horizon sim.Time
			inject := func() {
				for j := 0; j < batch; j++ {
					src := rng.Intn(numHosts)
					dst := rng.Intn(numHosts)
					if dst == src {
						dst = (dst + 1) % numHosts
					}
					n.InjectMessage(src, dst, 2048)
				}
				// A fixed-width horizon fully drains the batch (checked
				// below); the per-shard windows fast-forward the idle
				// tail to the horizon in one jump.
				horizon += sim.Millisecond
				n.RunUntil(horizon)
			}
			inject() // reach steady state untimed
			b.SetBytes(batch * 2048)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inject()
			}
			b.StopTimer()
			inj, _ := n.Injected()
			del, _ := n.Delivered()
			if inj != del {
				b.Fatalf("lost packets: %d != %d", inj, del)
			}
			b.ReportMetric(float64(del-batch)/b.Elapsed().Seconds(), "pkts/sec")
			b.ReportMetric(float64(runtime.NumCPU()), "cpus")
			// Self-profile metrics: barrier overhead and window
			// efficiency feed benchjson's profile section, pointing
			// at the stall source when the scaling curve is flat.
			snap := prof.Snapshot()
			b.ReportMetric(snap.BarrierOverhead()*100, "barrier%")
			b.ReportMetric(snap.WindowEfficiency()*100, "weff%")
		})
	}
}

// BenchmarkChoosePort measures the adaptive route choice on a
// multi-path topology.
func BenchmarkChoosePort(b *testing.B) {
	e := sim.New()
	f := topo.MustFBFLY(8, 3, 8) // 2 dims: multiple candidates
	n, err := New(e, f, routing.NewFBFLY(f), DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	sw := n.Switches[0]
	pkt := &Packet{Dst: f.NumHosts() - 1, Size: 2048}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.choosePort(pkt, 0)
	}
}

// BenchmarkBuildNetwork measures fabric instantiation — topology is
// pre-built, so the timed region is entity storage, channel wiring and
// router construction — at the paper's simulation scale (15-ary 3-flat,
// 3,375 hosts), the paper's Table 1 scale (8-ary 5-flat, 32,768 hosts)
// and a three-tier Clos above 10⁵ hosts. B/host (heap bytes allocated
// per host during construction) and ns/host feed benchjson's
// build-memory section, tracking the entity memory model over time.
func BenchmarkBuildNetwork(b *testing.B) {
	bench := func(b *testing.B, t topo.Topology, mkRouter func() routing.Router) {
		hosts := float64(t.NumHosts())
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n, err := New(sim.New(), t, mkRouter(), DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			runtime.KeepAlive(n)
		}
		b.StopTimer()
		runtime.ReadMemStats(&m1)
		b.ReportMetric(float64(m1.TotalAlloc-m0.TotalAlloc)/float64(b.N)/hosts, "B/host")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/hosts, "ns/host")
	}
	b.Run("fbfly-3k", func(b *testing.B) {
		f := topo.MustFBFLY(15, 3, 15)
		bench(b, f, func() routing.Router { return routing.NewFBFLY(f) })
	})
	b.Run("fbfly-32k", func(b *testing.B) {
		f := topo.MustFBFLY(8, 5, 8)
		bench(b, f, func() routing.Router { return routing.NewFBFLY(f) })
	})
	b.Run("clos3-100k", func(b *testing.B) {
		c := topo.MustClos3(74)
		bench(b, c, func() routing.Router { return routing.NewClos3(c) })
	})
}
