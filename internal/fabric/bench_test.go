package fabric

import (
	"math/rand"
	"testing"

	"epnet/internal/routing"
	"epnet/internal/sim"
	"epnet/internal/topo"
)

// BenchmarkNetworkThroughput measures raw simulated-packet throughput
// on an 8-ary 2-flat under uniform random single-packet messages.
func BenchmarkNetworkThroughput(b *testing.B) {
	e := sim.New()
	f := topo.MustFBFLY(8, 2, 8)
	n, err := New(e, f, routing.NewFBFLY(f), DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := rng.Intn(64)
		dst := rng.Intn(64)
		if dst == src {
			dst = (dst + 1) % 64
		}
		n.InjectMessage(src, dst, 2048)
		if i%1024 == 1023 {
			e.Run() // drain periodically
		}
	}
	e.Run()
	b.StopTimer()
	inj, _ := n.Injected()
	del, _ := n.Delivered()
	if inj != del {
		b.Fatalf("lost packets: %d != %d", inj, del)
	}
}

// BenchmarkChoosePort measures the adaptive route choice on a
// multi-path topology.
func BenchmarkChoosePort(b *testing.B) {
	e := sim.New()
	f := topo.MustFBFLY(8, 3, 8) // 2 dims: multiple candidates
	n, err := New(e, f, routing.NewFBFLY(f), DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	sw := n.Switches[0]
	pkt := &Packet{Dst: f.NumHosts() - 1, Size: 2048}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.choosePort(pkt, 0)
	}
}
