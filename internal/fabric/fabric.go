// Package fabric turns a static topology into a running network of
// simulated switches, hosts and plesiochronous channels.
//
// The model follows §4.1 of the paper: switches are input- and
// output-buffered with credit-based, cut-through flow control, and route
// adaptively on each hop based solely on output queue depth. One
// deliberate simplification (documented in DESIGN.md): switch-internal
// output queues are unbounded while input buffers are finite and
// credit-governed, which removes routing-deadlock hazards without
// virtual channels while preserving the congestion signal the adaptive
// routing and energy-proportional heuristics consume.
package fabric

import (
	"fmt"
	"math"

	"epnet/internal/link"
	"epnet/internal/parallel"
	"epnet/internal/routing"
	"epnet/internal/sim"
	"epnet/internal/telemetry"
	"epnet/internal/topo"
)

// Config holds the fabric's physical parameters.
type Config struct {
	// Ladder is the set of rates every channel supports.
	Ladder link.RateLadder
	// MaxPacket is the segmentation size for messages, bytes.
	MaxPacket int
	// InputBufBytes is the per-input-port buffer (credit pool) size.
	InputBufBytes int
	// RoutingDelay is the per-hop routing/arbitration latency.
	RoutingDelay sim.Time
	// WireDelay is the propagation delay of every channel.
	WireDelay sim.Time
	// CreditDelay is the latency of returning a credit upstream.
	CreditDelay sim.Time
	// Seed drives adaptive-routing tie-breaking.
	Seed int64

	// Shards splits the fabric across this many parallel event engines
	// advancing in conservative lockstep windows (see shard.go). 0 or 1
	// is the serial engine. Results are byte-identical across shard
	// counts for the same seed; Shards is capped at the switch count.
	Shards int

	// CostBusyTime, when true, augments the adaptive routing cost with
	// the byte-equivalent of each candidate channel's remaining busy or
	// reactivation time — the richer congestion signal §3.2 notes that
	// credit-based flow control and channel state can provide. With the
	// default (false), route choice uses output queue depth alone, the
	// paper's evaluation configuration.
	CostBusyTime bool
}

// DefaultConfig returns parameters representative of the paper's
// 40 Gb/s switch fabric.
func DefaultConfig() Config {
	return Config{
		Ladder:        link.DefaultLadder(),
		MaxPacket:     2048,
		InputBufBytes: 64 * 1024,
		RoutingDelay:  100 * sim.Nanosecond,
		WireDelay:     50 * sim.Nanosecond,
		CreditDelay:   50 * sim.Nanosecond,
		Seed:          1,
	}
}

// validate fills defaults and rejects nonsense.
func (c *Config) validate() error {
	if c.Ladder == nil {
		c.Ladder = link.DefaultLadder()
	}
	if err := c.Ladder.Validate(); err != nil {
		return err
	}
	if c.MaxPacket <= 0 {
		return fmt.Errorf("fabric: MaxPacket must be positive, got %d", c.MaxPacket)
	}
	if c.InputBufBytes < c.MaxPacket {
		return fmt.Errorf("fabric: input buffer (%d) smaller than a packet (%d)",
			c.InputBufBytes, c.MaxPacket)
	}
	if c.RoutingDelay < 0 || c.WireDelay < 0 || c.CreditDelay < 0 {
		return fmt.Errorf("fabric: negative delay")
	}
	if c.Shards < 0 {
		return fmt.Errorf("fabric: negative Shards %d", c.Shards)
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	return nil
}

// Chan is one directed channel of the fabric: a link.Channel plus the
// sender-side credit pool mirroring the downstream input buffer.
//
// Chan is a flyweight: every Chan of a network is a value entry in one
// dense backing array (Network.chanArr), as is the link.Channel it
// points at, so a fabric's channel population costs two allocations
// total. The struct holds only hot state — what the per-packet path
// reads; cold state (fault epochs, drop counters) lives in the parallel
// chanCold array, indexed by idx, so it never occupies hot cache lines.
type Chan struct {
	L        *link.Channel
	Src, Dst topo.Endpoint

	credits int64 // available downstream input-buffer bytes
	waiting bool  // the sender is blocked awaiting credits
	net     *Network
	idx     int // position in Network.chans; trace thread id

	// Shard wiring. Events a channel's traffic generates are keyed by
	// the scheduling entity's lane (src for arrivals/deliveries, dst for
	// the credit return) and land on the receiving entity's engine —
	// directly when sameShard, via the staging buffers otherwise.
	srcRT, dstRT     *shardRT
	srcLane, dstLane *sim.Lane
	sameShard        bool

	// Per-channel attribution. mTx is a pre-resolved labeled counter
	// handle (nil when telemetry is off — Inc on nil is a branch and a
	// return), so per-link packet counting costs the hot path nothing
	// extra: no map lookups, no allocations.
	mTx *telemetry.Counter
}

// chanCold is the cold half of a channel's state, split out of Chan so
// the packet path only pulls credit/lane/link state into cache. It is
// touched on fault injection, drop accounting and reporting — never on
// the fault-free hot path (deliverAcross reads failEpoch only when
// faults are enabled).
type chanCold struct {
	// drops counts packets lost on this channel to injected faults.
	drops int64

	// failed marks a hard failure (distinct from a planned
	// dynamic-topology PowerOff); failEpoch increments on every failure
	// so already-scheduled arrival events can recognize packets that
	// were in flight when the channel died (see Packet.chEpoch).
	failed    bool
	failEpoch uint32
}

// takeCredits consumes n credits if available.
func (c *Chan) takeCredits(n int) bool {
	if c.credits < int64(n) {
		return false
	}
	c.credits -= int64(n)
	return true
}

// returnCredits gives back n credits and wakes a blocked sender.
func (c *Chan) returnCredits(n int, now sim.Time) {
	c.credits += int64(n)
	if c.waiting {
		c.waiting = false
		c.net.wakeSender(c, now)
	}
}

// Credits returns the available credits (tests and diagnostics).
func (c *Chan) Credits() int64 { return c.credits }

// Failed reports whether the channel is hard-failed (fault injection).
func (c *Chan) Failed() bool { return c.net.chanCold[c.idx].failed }

// Index returns the channel's position in Network.Channels(). It is
// stable for the network's lifetime and doubles as the channel's trace
// thread id.
func (c *Chan) Index() int { return c.idx }

// Drops returns packets lost on this channel to injected faults.
func (c *Chan) Drops() int64 { return c.net.chanCold[c.idx].drops }

// Network is a simulated network instance bound to an event engine.
type Network struct {
	E   *sim.Engine
	T   topo.Topology
	R   routing.Router
	Cfg Config

	Switches []*Switch
	Hosts    []*Host

	chans []*Chan    // every directed channel
	pairs [][2]*Chan // both directions of each physical link

	// Dense entity storage (the flyweight layer). Every *Switch, *Host,
	// *Chan and *link.Channel handed out by this network points into
	// one of these backing arrays — one allocation per entity kind
	// instead of one per entity. The arrays are sized exactly at
	// construction and never reallocated, so the pointer handles above
	// (and everything the packet hot path holds) stay valid for the
	// network's lifetime.
	swArr    []Switch
	hostArr  []Host
	chanArr  []Chan
	linkArr  []link.Channel
	chanCold []chanCold // cold per-channel state, indexed by Chan.idx

	// Shard runtimes (one for a serial network, holding the hot-path
	// accounting either way), the switch->shard assignment, and the
	// window coordinator (nil serially).
	rts     []*shardRT
	swShard []int
	group   *ShardGroup

	// prof, when set via SetProfiler, self-profiles the engine(s): wall
	// time per window, barrier waits, exchange volume. Fed only at
	// window/barrier granularity — nil or not, the per-packet path is
	// identical.
	prof *telemetry.EngineProfiler

	// flow, when set via SetFlowCollector, hash-samples packets at
	// injection and carries a hop log on each sampled packet. Nil — the
	// default — keeps the per-packet path to one pointer test per hook
	// and zero allocations.
	flow *telemetry.FlowCollector

	// OnDeliver, when set, observes every delivered packet. On a sharded
	// network it fires on the shard owning the destination host (see
	// HostShard) — shards run concurrently, so the callback must keep
	// per-shard state.
	OnDeliver func(p *Packet, now sim.Time)

	// Tracer, when set, receives packet-lifetime spans (inject ->
	// deliver, on the telemetry.PIDPackets track) and injection
	// instants. Nil — the default — keeps the per-packet path free of
	// everything but one pointer test.
	Tracer *telemetry.Tracer

	// OnMessageDone, when set before any injection, observes every
	// completed message (all of its packets delivered). Fires on the
	// destination host's shard, like OnDeliver.
	OnMessageDone func(msgID int64, src, dst int, inject, done sim.Time)

	// Pre-bound ArgEvent handlers for the per-packet events, created
	// once in New so scheduling them never allocates a closure. The
	// wake handlers (arg = the switch or host, n = the port) replace
	// the per-port closures each switch used to carry: same lane, same
	// one key draw per scheduling, so event order is untouched, but the
	// fabric holds five closures instead of radix·switches.
	fnDeliver  sim.ArgEvent
	fnArrive   sim.ArgEvent
	fnCredit   sim.ArgEvent
	fnSwWake   sim.ArgEvent
	fnHostWake sim.ArgEvent

	// Injection-side accounting. Injection happens on the control plane
	// only (single-threaded even when sharded), so these stay global;
	// delivery/drop counters live on the shard runtimes.
	nextPktID     int64
	nextMsgID     int64
	injectedPkts  int64
	injectedMsgs  int64
	injectedBytes int64

	// Fault accounting. faultsEnabled gates every fault check on the
	// packet path, so runs without an injector execute the exact same
	// instructions as before the fault subsystem existed (one bool test
	// aside) and choosePort keeps its fail-loudly panics.
	faultsEnabled bool
	deadSwitch    []bool
}

// buildWorkers overrides the construction worker count (0 = one per
// CPU). Construction output is identical at any worker count — every
// entity and channel index is precomputed, so workers write disjoint
// slots of the backing arrays; tests pin this to 1 to prove the
// parallel build matches the serial one byte for byte.
var buildWorkers = 0

// New builds a network over topology t with router r. With
// cfg.Shards > 1, e becomes the control engine: it carries everything
// scheduled through Network.E (workloads, controllers, fault injection,
// sampling) while per-shard engines carry the data plane; drive the run
// with Network.RunUntil (or Sharding) rather than e.Run.
//
// Construction streams directly off the topology's port map
// (topo.VisitSwitchLinks) — no materialized []topo.Link — and runs the
// per-switch counting and wiring loops in parallel. Channel indices are
// the same closed-form layout the serial build produced (host up/down
// pairs at 2h/2h+1, then each switch's owned inter-switch links at its
// prefix-sum offset), so event lane/seq ordering, channel labels, and
// every CSV byte downstream are independent of the worker count.
func New(e *sim.Engine, t topo.Topology, r routing.Router, cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Network{
		E:   e,
		T:   t,
		R:   r,
		Cfg: cfg,
	}
	if err := n.buildShards(e, cfg.Shards); err != nil {
		return nil, err
	}
	n.fnDeliver = n.deliverEvent
	n.fnArrive = n.arriveEvent
	n.fnCredit = n.creditEvent
	n.fnSwWake = func(now sim.Time, arg any, port int64) {
		s := arg.(*Switch)
		s.wakePending[port] = false
		s.pumpOut(int(port), now)
	}
	n.fnHostWake = func(now sim.Time, arg any, _ int64) {
		h := arg.(*Host)
		h.wakePending = false
		h.pump(now)
	}

	numSw, numHosts, radix := t.NumSwitches(), t.NumHosts(), t.Radix()
	workers := buildWorkers

	// Lane IDs are allocated identically regardless of shard count:
	// hosts first, then switches, so event keys — and with them the
	// canonical execution order — do not depend on the partition.
	//
	// Per-port switch state is struct-of-arrays: one dense backing array
	// per field, carved into per-switch windows with full slice
	// expressions so a switch cannot grow into its neighbor's range.
	n.swArr = make([]Switch, numSw)
	n.Switches = make([]*Switch, numSw)
	outAll := make([]*Chan, numSw*radix)
	queueAll := make([]pktQueue, numSw*radix)
	queuedBytesAll := make([]int64, numSw*radix)
	closingAll := make([]bool, numSw*radix)
	wakeAtAll := make([]sim.Time, numSw*radix)
	wakePendingAll := make([]bool, numSw*radix)
	candAll := make([]int, numSw*radix)
	parallel.ForEach(numSw, workers, func(sw int) error {
		rt := n.switchShard(sw)
		lo, hi := sw*radix, (sw+1)*radix
		s := &n.swArr[sw]
		*s = Switch{
			net:         n,
			id:          sw,
			rt:          rt,
			eng:         rt.eng,
			lane:        sim.NewLane(uint64(1 + numHosts + sw)),
			rng:         newRNG(n.Cfg.Seed, sw),
			out:         outAll[lo:hi:hi],
			queues:      queueAll[lo:hi:hi],
			queuedBytes: queuedBytesAll[lo:hi:hi],
			closing:     closingAll[lo:hi:hi],
			wakeAt:      wakeAtAll[lo:hi:hi],
			wakePending: wakePendingAll[lo:hi:hi],
			candBuf:     candAll[lo:lo:hi],
		}
		n.Switches[sw] = s
		return nil
	})
	n.hostArr = make([]Host, numHosts)
	n.Hosts = make([]*Host, numHosts)
	parallel.ForEach(numHosts, workers, func(h int) error {
		sw, _ := t.HostAttachment(h)
		rt := n.switchShard(sw)
		hh := &n.hostArr[h]
		*hh = Host{net: n, id: h, rt: rt, eng: rt.eng, lane: sim.NewLane(uint64(1 + h))}
		n.Hosts[h] = hh
		return nil
	})

	// Channel layout. Host channels come first — up at 2h, down at 2h+1
	// — then each switch's owned inter-switch links (two directed
	// channels per link, forward then reverse, in port order) at an
	// offset fixed by a prefix sum over per-switch owned-link counts.
	// This is exactly the sequence the serial append-loop produced.
	ownedLinks := make([]int, numSw)
	parallel.ForEach(numSw, workers, func(sw int) error {
		cnt := 0
		topo.VisitSwitchLinks(t, sw, func(int, topo.Endpoint, topo.LinkClass) bool {
			cnt++
			return true
		})
		ownedLinks[sw] = cnt
		return nil
	})
	linkBase := make([]int, numSw+1) // owned links before switch sw
	for sw := 0; sw < numSw; sw++ {
		linkBase[sw+1] = linkBase[sw] + ownedLinks[sw]
	}
	interLinks := linkBase[numSw]

	totalChans := 2*numHosts + 2*interLinks
	n.chanArr = make([]Chan, totalChans)
	n.linkArr = make([]link.Channel, totalChans)
	n.chanCold = make([]chanCold, totalChans)
	n.chans = make([]*Chan, totalChans)
	n.pairs = make([][2]*Chan, numHosts+interLinks)

	parallel.ForEach(numHosts, workers, func(h int) error {
		sw, port := t.HostAttachment(h)
		hostEP := topo.Endpoint{Kind: topo.KindHost, ID: h}
		swEP := topo.Endpoint{Kind: topo.KindSwitch, ID: sw, Port: port}
		up := n.initChan(2*h, hostEP, swEP, int64(cfg.InputBufBytes))
		// Hosts sink at line rate; effectively unlimited credits.
		down := n.initChan(2*h+1, swEP, hostEP, math.MaxInt64/4)
		n.hostArr[h].out = up
		n.swArr[sw].out[port] = down
		n.pairs[h] = [2]*Chan{up, down}
		return nil
	})
	parallel.ForEach(numSw, workers, func(sw int) error {
		idx := 2*numHosts + 2*linkBase[sw]
		pairIdx := numHosts + linkBase[sw]
		topo.VisitSwitchLinks(t, sw, func(p int, peer topo.Endpoint, _ topo.LinkClass) bool {
			a := topo.Endpoint{Kind: topo.KindSwitch, ID: sw, Port: p}
			fwd := n.initChan(idx, a, peer, int64(cfg.InputBufBytes))
			rev := n.initChan(idx+1, peer, a, int64(cfg.InputBufBytes))
			// The peer-side write lands in another switch's out window;
			// it is this link's unique slot, so workers never collide.
			n.swArr[sw].out[p] = fwd
			n.swArr[peer.ID].out[peer.Port] = rev
			n.pairs[pairIdx] = [2]*Chan{fwd, rev}
			idx += 2
			pairIdx++
			return true
		})
		return nil
	})
	n.finishShards()
	return n, nil
}

// initChan initializes channel slot idx of the backing arrays in place
// and returns its handle. Safe to call from concurrent construction
// workers as long as each idx is written exactly once.
func (n *Network) initChan(idx int, src, dst topo.Endpoint, credits int64) *Chan {
	l := &n.linkArr[idx]
	l.Init(n.Cfg.Ladder)
	c := &n.chanArr[idx]
	*c = Chan{
		L:       l,
		Src:     src,
		Dst:     dst,
		credits: credits,
		net:     n,
		idx:     idx,
	}
	c.srcRT, c.srcLane = n.endpointRT(src)
	c.dstRT, c.dstLane = n.endpointRT(dst)
	c.sameShard = c.srcRT == c.dstRT
	n.chans[idx] = c
	return c
}

// endpointRT resolves an endpoint to its owning shard runtime and lane.
func (n *Network) endpointRT(ep topo.Endpoint) (*shardRT, *sim.Lane) {
	if ep.Kind == topo.KindHost {
		h := n.Hosts[ep.ID]
		return h.rt, &h.lane
	}
	s := n.Switches[ep.ID]
	return s.rt, &s.lane
}

// Channels returns every directed channel.
func (n *Network) Channels() []*Chan { return n.chans }

// Pairs returns the two directions of every physical link.
func (n *Network) Pairs() [][2]*Chan { return n.pairs }

// InterSwitchChannels returns only switch-to-switch channels.
func (n *Network) InterSwitchChannels() []*Chan {
	var out []*Chan
	for _, c := range n.chans {
		if c.Src.Kind == topo.KindSwitch && c.Dst.Kind == topo.KindSwitch {
			out = append(out, c)
		}
	}
	return out
}

// wakeSender resumes the entity blocked on channel c's credits.
func (n *Network) wakeSender(c *Chan, now sim.Time) {
	switch c.Src.Kind {
	case topo.KindHost:
		n.Hosts[c.Src.ID].pump(now)
	case topo.KindSwitch:
		n.Switches[c.Src.ID].pumpOut(c.Src.Port, now)
	}
}

// InjectMessage offers a size-byte message from host src to host dst at
// the current simulation time, segmenting it into packets.
func (n *Network) InjectMessage(src, dst, size int) {
	if src < 0 || src >= len(n.Hosts) || dst < 0 || dst >= len(n.Hosts) {
		panic(fmt.Sprintf("fabric: inject %d->%d out of range", src, dst))
	}
	if size <= 0 {
		panic(fmt.Sprintf("fabric: inject non-positive size %d", size))
	}
	now := n.E.Now()
	h := n.Hosts[src]
	n.nextMsgID++
	n.injectedMsgs++
	if n.Tracer != nil {
		n.Tracer.Instant("inject", "traffic", telemetry.PIDPackets, src, now,
			fmt.Sprintf(`"msg":%d,"dst":%d,"bytes":%d`, n.nextMsgID, dst, size))
	}
	if n.OnMessageDone != nil {
		// Completion is observed at the destination host, so the
		// tracking entry lives on its shard.
		drt := n.Hosts[dst].rt
		if drt.msgRemaining == nil {
			drt.msgRemaining = make(map[int64]int)
			drt.msgInject = make(map[int64]sim.Time)
		}
		drt.msgRemaining[n.nextMsgID] = n.PacketsPerMessage(size)
		drt.msgInject[n.nextMsgID] = now
	}
	for off := 0; off < size; off += n.Cfg.MaxPacket {
		sz := n.Cfg.MaxPacket
		if size-off < sz {
			sz = size - off
		}
		n.nextPktID++
		p := n.allocPacket(h.rt)
		*p = Packet{ID: n.nextPktID, MsgID: n.nextMsgID, Src: src, Dst: dst,
			Size: sz, Inject: now}
		if n.flow != nil && n.flow.Sampled(p.ID) {
			// Sampling hashes the packet ID against the seed: pure
			// function, no RNG draw, so the sampled set — and every
			// other random decision in the run — is identical at any
			// shard count. Injection is control-plane, so the trace
			// free lists are safe to touch here.
			p.trace = n.flow.StartTrace(h.rt.id, p.ID, p.MsgID, src, dst, sz, now)
		}
		h.q.push(p)
		h.backlogBytes += int64(sz)
		n.injectedPkts++
		n.injectedBytes += int64(sz)
	}
	h.pump(now)
}

// allocPacket takes a packet from a shard's free list, or allocates
// one. Per-shard lists (not a sync.Pool) keep recycling deterministic
// and lock-free: a list is touched only by its shard's worker or by the
// quiescent-time control plane, and steady-state simulation allocates no
// packets once the lists reach the in-flight high-water mark.
//
// Packets are allocated on the injecting host's shard but freed on the
// delivering (or dropping) shard, so under skewed traffic one list
// drains while another grows. Allocation happens only on the control
// plane — injection is a control event, and control runs with every
// worker quiescent — so when the local list is empty it is safe to
// steal from the other shards (scanned in deterministic order; the
// packet's contents are fully overwritten on reuse). This keeps total
// packet allocations bounded by the global in-flight high-water mark at
// any shard count.
func (n *Network) allocPacket(rt *shardRT) *Packet {
	if len(rt.pktFree) == 0 {
		for _, o := range n.rts {
			if len(o.pktFree) > 0 {
				rt = o
				break
			}
		}
		if len(rt.pktFree) == 0 {
			return new(Packet)
		}
	}
	p := rt.pktFree[len(rt.pktFree)-1]
	rt.pktFree = rt.pktFree[:len(rt.pktFree)-1]
	return p
}

// freePacket returns a delivered packet to the executing shard's list.
func (n *Network) freePacket(rt *shardRT, p *Packet) {
	rt.pktFree = append(rt.pktFree, p)
}

// deliverAcross moves pkt over channel c: it was transmitted during
// [start, done]; schedule its arrival on the far side and the credit
// return for this channel.
func (n *Network) deliverAcross(c *Chan, pkt *Packet, start, done sim.Time) {
	headIn := start + n.Cfg.WireDelay
	tailIn := done + n.Cfg.WireDelay
	pkt.HeadIn, pkt.TailIn = headIn, tailIn
	pkt.ch = c
	// The fault epoch lives in the cold array; without faults enabled it
	// is identically zero, so the fault-free path skips the read.
	pkt.chEpoch = 0
	if n.faultsEnabled {
		pkt.chEpoch = n.chanCold[c.idx].failEpoch
	}
	c.mTx.Inc()
	if pkt.trace != nil {
		// Close the hop: under cut-through only the final (host-bound)
		// serialization is on the critical path; an intermediate hop
		// hands the head to the next switch after wire + routing delay.
		pkt.trace.Transmit(int32(c.idx), start, done,
			n.Cfg.WireDelay, n.Cfg.RoutingDelay, c.Dst.Kind == topo.KindHost)
		n.flow.RecordTransmit(c.srcRT.id, start, pkt.ID, int32(c.idx), int32(pkt.Size))
	}
	at, fn := tailIn, n.fnDeliver
	if c.Dst.Kind == topo.KindSwitch {
		at, fn = headIn+n.Cfg.RoutingDelay, n.fnArrive
	}
	// Keyed on the sender's lane either way; a cross-shard hop stages
	// the event (with its key pre-drawn) for the next window barrier.
	if c.sameShard {
		c.dstRT.eng.AtArgLane(at, c.srcLane, fn, pkt, 0)
	} else {
		c.srcRT.stageTo(c.dstRT, at, c.srcLane.NextKey(), fn, pkt, 0)
	}
}

// deliverEvent sinks a packet at its destination host.
func (n *Network) deliverEvent(now sim.Time, arg any, _ int64) {
	p := arg.(*Packet)
	if n.faultsEnabled {
		if cold := &n.chanCold[p.ch.idx]; cold.failed || cold.failEpoch != p.chEpoch {
			n.dropPacket(p.ch.dstRT, p, now, "in-flight on failed channel")
			return
		}
	}
	n.Hosts[p.Dst].deliver(p, now)
}

// arriveEvent routes a packet that reached a switch input. The packet
// leaves the input buffer for an output queue once routed; the credit
// returns upstream after the credit propagation delay. The channel and
// size are read before arrive, which may immediately send the packet
// onward (overwriting p.ch) or, at the final hop, recycle it.
func (n *Network) arriveEvent(now sim.Time, arg any, _ int64) {
	p := arg.(*Packet)
	ch := p.ch
	// Return the credit even for packets about to be dropped: the
	// upstream pool mirrors the input buffer, which the dead arrival no
	// longer occupies. This keeps every pool exactly full once traffic
	// drains, failures or not. The credit mutates src-side channel state,
	// so it executes on the src shard, keyed by this (dst) switch's lane.
	if ch.sameShard {
		ch.srcRT.eng.AtArgLane(now+n.Cfg.CreditDelay, ch.dstLane, n.fnCredit, ch, int64(p.Size))
	} else {
		ch.dstRT.stageTo(ch.srcRT, now+n.Cfg.CreditDelay, ch.dstLane.NextKey(), n.fnCredit, ch, int64(p.Size))
	}
	if n.faultsEnabled {
		if cold := &n.chanCold[ch.idx]; cold.failed || cold.failEpoch != p.chEpoch {
			n.dropPacket(ch.dstRT, p, now, "in-flight on failed channel")
			return
		}
	}
	n.Switches[ch.Dst.ID].arrive(p, now)
}

// creditEvent returns size credits on a channel.
func (n *Network) creditEvent(now sim.Time, arg any, size int64) {
	arg.(*Chan).returnCredits(int(size), now)
}

// EnableFaults switches the network into fault-tolerant mode: packets
// that lose their route (dead channels, crashed switches) are dropped
// and counted instead of panicking. Call once, before injection; runs
// without an injector never pay for the checks.
func (n *Network) EnableFaults() {
	n.faultsEnabled = true
	if n.deadSwitch == nil {
		n.deadSwitch = make([]bool, len(n.Switches))
	}
}

// FaultsEnabled reports whether EnableFaults has been called.
func (n *Network) FaultsEnabled() bool { return n.faultsEnabled }

// FailChan hard-fails one directed channel: the link powers off with no
// drain, and any packet in flight across it is dropped on arrival.
// Requires EnableFaults. The caller is responsible for masking the
// sending port in the router and pumping the sending switch.
func (n *Network) FailChan(c *Chan, now sim.Time) {
	if !n.faultsEnabled {
		panic("fabric: FailChan without EnableFaults")
	}
	cold := &n.chanCold[c.idx]
	if cold.failed {
		return
	}
	cold.failed = true
	cold.failEpoch++
	c.L.PowerOff(now)
	if n.flow != nil {
		// Fault injection is a control event (all shards quiescent), so
		// the flight-recorder rings are safe to merge here.
		n.flow.FaultDump("fault: channel "+c.Label()+" failed", now)
	}
}

// RepairChan returns a failed channel to service at rate r, paying
// reactivation (CDR re-lock / lane retraining) before it can carry
// data. The sender is kicked so queued traffic resumes.
func (n *Network) RepairChan(c *Chan, now sim.Time, r link.Rate, reactivation sim.Time) {
	cold := &n.chanCold[c.idx]
	if !cold.failed {
		return
	}
	cold.failed = false
	c.L.PowerOn(now, r, reactivation)
	c.L.ResetEpoch(now)
	n.KickSender(c, now)
}

// KickSender re-evaluates the entity feeding channel c (after a repair
// or rate restoration).
func (n *Network) KickSender(c *Chan, now sim.Time) { n.wakeSender(c, now) }

// SetSwitchDead marks a switch crashed or revived. Packets arriving at
// a dead switch — or at any switch, destined to a host attached to a
// dead switch — are dropped. Requires EnableFaults.
func (n *Network) SetSwitchDead(sw int, dead bool) {
	if !n.faultsEnabled {
		panic("fabric: SetSwitchDead without EnableFaults")
	}
	n.deadSwitch[sw] = dead
}

// SwitchDead reports whether a switch is crashed.
func (n *Network) SwitchDead(sw int) bool {
	return n.faultsEnabled && n.deadSwitch[sw]
}

// dropPacket accounts for and recycles a packet lost to a fault, on the
// shard whose event is executing (rt). The packet's message can never
// complete, so its completion tracking is torn down — immediately when
// the destination host shares the shard, at the next window barrier
// otherwise (the entry is inert either way: with one packet lost, the
// remaining-count can never reach zero).
func (n *Network) dropPacket(rt *shardRT, p *Packet, now sim.Time, why string) {
	rt.droppedPkts++
	rt.droppedBytes += int64(p.Size)
	if p.ch != nil {
		n.chanCold[p.ch.idx].drops++
	} else {
		rt.unattributedDrops++
	}
	if n.Tracer != nil {
		n.Tracer.Instant("drop", "fault", telemetry.PIDFaults, 0, now,
			fmt.Sprintf(`"pkt":%d,"src":%d,"dst":%d,"bytes":%d,"why":%q`,
				p.ID, p.Src, p.Dst, p.Size, why))
	}
	if n.OnMessageDone != nil {
		drt := n.Hosts[p.Dst].rt
		if drt == rt {
			delete(drt.msgRemaining, p.MsgID)
			delete(drt.msgInject, p.MsgID)
		} else {
			rt.msgDead[drt.id] = append(rt.msgDead[drt.id], p.MsgID)
		}
	}
	if p.trace != nil {
		n.flow.FinishDrop(rt.id, p.trace, now, why)
		p.trace = nil
	}
	n.freePacket(rt, p)
}

// Dropped returns total packets and bytes lost to injected faults.
func (n *Network) Dropped() (pkts, bytes int64) {
	var p, b int64
	for _, rt := range n.rts {
		p += rt.droppedPkts
		b += rt.droppedBytes
	}
	return p, b
}

// UnattributedDrops returns drops that carried no channel context;
// the sum of Chan.Drops over all channels plus this equals the total
// dropped packet count.
func (n *Network) UnattributedDrops() int64 {
	var total int64
	for _, rt := range n.rts {
		total += rt.unattributedDrops
	}
	return total
}

// InjectedMessages returns the number of messages offered.
func (n *Network) InjectedMessages() int64 { return n.injectedMsgs }

// PacketsPerMessage returns how many packets message size bytes
// segments into under the current configuration.
func (n *Network) PacketsPerMessage(size int) int {
	return (size + n.Cfg.MaxPacket - 1) / n.Cfg.MaxPacket
}

// Injected returns total injected packets and bytes.
func (n *Network) Injected() (pkts, bytes int64) { return n.injectedPkts, n.injectedBytes }

// Delivered returns total delivered packets and bytes.
func (n *Network) Delivered() (pkts, bytes int64) {
	var p, b int64
	for _, rt := range n.rts {
		p += rt.deliveredPkts
		b += rt.deliveredBytes
	}
	return p, b
}

// HostBacklogBytes returns the bytes queued at source hosts — growth
// over time means the network is not keeping up with offered load.
func (n *Network) HostBacklogBytes() int64 {
	var total int64
	for _, h := range n.Hosts {
		total += h.backlogBytes
	}
	return total
}

// InFlightPackets returns injected minus delivered (and dropped)
// packets.
func (n *Network) InFlightPackets() int64 {
	dp, _ := n.Delivered()
	xp, _ := n.Dropped()
	return n.injectedPkts - dp - xp
}

// NumHosts returns the number of hosts (satisfies traffic.Target).
func (n *Network) NumHosts() int { return len(n.Hosts) }

// PeakQueueBytes returns the deepest output queue observed at any
// switch, a direct read on worst-case buffering demand.
func (n *Network) PeakQueueBytes() int64 {
	var peak int64
	for _, s := range n.Switches {
		if s.peakQueue > peak {
			peak = s.peakQueue
		}
	}
	return peak
}

// RoutedPackets sums switch routing decisions (one per packet per hop).
func (n *Network) RoutedPackets() int64 {
	var total int64
	for _, s := range n.Switches {
		total += s.routedPackets
	}
	return total
}
