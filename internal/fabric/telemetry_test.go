package fabric

import (
	"math/rand"
	"strings"
	"testing"

	"epnet/internal/routing"
	"epnet/internal/sim"
	"epnet/internal/telemetry"
	"epnet/internal/topo"
)

func TestChanLabel(t *testing.T) {
	e := sim.New()
	f := topo.MustFBFLY(4, 2, 4)
	n, err := New(e, f, routing.NewFBFLY(f), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range n.InterSwitchChannels() {
		label := ch.Label()
		if !strings.HasPrefix(label, "s") || !strings.Contains(label, "-s") {
			t.Errorf("inter-switch label %q should name two switch ports", label)
		}
		if ch.MetricName() != "link."+label {
			t.Errorf("MetricName %q does not match label %q", ch.MetricName(), label)
		}
	}
}

// TestRegisterMetricsSeries checks the per-entity families exist with
// the expected identities and that the pre-resolved tx counters count
// every inter-switch hop.
func TestRegisterMetricsSeries(t *testing.T) {
	e := sim.New()
	f := topo.MustFBFLY(4, 2, 4)
	n, err := New(e, f, routing.NewFBFLY(f), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	if err := n.RegisterMetrics(reg); err != nil {
		t.Fatal(err)
	}
	families := map[string]int{}
	for _, name := range reg.Names() {
		fam, _, _ := strings.Cut(name, "{")
		families[fam]++
	}
	isc := len(n.InterSwitchChannels())
	for _, fam := range []string{"link.rate_gbps", "link.state", "link.util",
		"link.total_mbytes", "link.tx_pkts", "link.drops"} {
		if families[fam] != isc {
			t.Errorf("family %s has %d series, want %d", fam, families[fam], isc)
		}
	}
	if families["switch.routed_pkts"] != len(n.Switches) {
		t.Errorf("switch.routed_pkts has %d series, want %d",
			families["switch.routed_pkts"], len(n.Switches))
	}

	// Drive traffic across switches and check the per-link tx counters
	// add up to the inter-switch hop total.
	rng := rand.New(rand.NewSource(7))
	hosts := f.NumHosts()
	for j := 0; j < 200; j++ {
		src, dst := rng.Intn(hosts), rng.Intn(hosts)
		if dst == src {
			dst = (dst + 1) % hosts
		}
		n.InjectMessage(src, dst, 2048)
	}
	e.Run()

	var txSum int64
	for _, ch := range n.InterSwitchChannels() {
		txSum += ch.L.TotalPackets()
	}
	vals := make([]float64, reg.Len())
	reg.ReadInto(vals)
	var metricSum float64
	for i, name := range reg.Names() {
		if strings.HasPrefix(name, "link.tx_pkts{") {
			metricSum += vals[i]
		}
	}
	if int64(metricSum) != txSum {
		t.Errorf("sum(link.tx_pkts) = %v, want %d inter-switch packet transmissions", metricSum, txSum)
	}
	if txSum == 0 {
		t.Error("no inter-switch traffic; test is vacuous")
	}
}

// TestZeroAllocPacketPathWithMetrics proves the acceptance criterion:
// registering the full per-link metric set adds zero allocations per
// packet to the steady-state path (inject, route, transmit, deliver,
// count). The measurement is differential — two identical networks,
// same seed and traffic, one with metrics — because the bare fabric
// keeps a small amortized residue of slice growth that is independent
// of instrumentation.
func TestZeroAllocPacketPathWithMetrics(t *testing.T) {
	const batch = 256
	build := func(withMetrics bool) func() {
		e := sim.New()
		f := topo.MustFBFLY(8, 2, 8)
		n, err := New(e, f, routing.NewFBFLY(f), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if withMetrics {
			if err := n.RegisterMetrics(telemetry.NewRegistry()); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(1))
		inject := func() {
			for j := 0; j < batch; j++ {
				src, dst := rng.Intn(64), rng.Intn(64)
				if dst == src {
					dst = (dst + 1) % 64
				}
				n.InjectMessage(src, dst, 2048)
			}
			e.Run()
		}
		// Reach steady state first so free lists and queues are warm.
		inject()
		inject()
		return inject
	}
	plain := testing.AllocsPerRun(20, build(false))
	metered := testing.AllocsPerRun(20, build(true))
	if metered > plain {
		t.Errorf("per-link metrics add allocations: %v allocs/batch with metrics vs %v without (batch = %d packets)",
			metered, plain, batch)
	}
}

// BenchmarkNetworkThroughputMetrics is BenchmarkNetworkThroughput with
// the full per-link metric registry enabled — compare the two to see
// the cost of always-on per-entity instrumentation (allocs/op must
// stay identical; see the zero-allocation test above).
func BenchmarkNetworkThroughputMetrics(b *testing.B) {
	const batch = 1024
	e := sim.New()
	f := topo.MustFBFLY(8, 2, 8)
	n, err := New(e, f, routing.NewFBFLY(f), DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	if err := n.RegisterMetrics(reg); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	inject := func() {
		for j := 0; j < batch; j++ {
			src := rng.Intn(64)
			dst := rng.Intn(64)
			if dst == src {
				dst = (dst + 1) % 64
			}
			n.InjectMessage(src, dst, 2048)
		}
		e.Run()
	}
	inject() // reach steady state (warm free lists and queues) untimed
	b.SetBytes(batch * 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inject()
	}
	b.StopTimer()
	inj, _ := n.Injected()
	del, _ := n.Delivered()
	if inj != del {
		b.Fatalf("lost packets: %d != %d", inj, del)
	}
	b.ReportMetric(float64(del-batch)/b.Elapsed().Seconds(), "pkts/sec")
}
