package core

import (
	"fmt"

	"epnet/internal/fabric"
	"epnet/internal/link"
	"epnet/internal/routing"
	"epnet/internal/sim"
	"epnet/internal/topo"
)

// DynTopo is the §5.1 dynamic topology controller: starting from a
// flattened butterfly, it selectively powers off links so a dimension
// degrades to a ring (the torus configuration) when demand is low, and
// powers them back on as offered load rises. Powering off is a drain
// protocol: links to be disabled first stop accepting new packets
// (adaptive routing is steered away), finish their queued traffic, and
// only then power off — and the two directions of a link are powered
// off together, since "one direction of a link cannot operate without
// the other direction active in order to receive credits back".
type DynTopo struct {
	Net    *fabric.Network
	Router *routing.FBFLY

	// Epoch is the demand-measurement window; dynamic topology changes
	// are coarser-grained than rate tuning, so this is typically much
	// longer than the rate controller's epoch.
	Epoch sim.Time

	// Reactivation is the power-on penalty for a re-enabled link.
	Reactivation sim.Time

	// LowWater and HighWater are per-dimension demand thresholds
	// (fraction of the dimension's full-wiring capacity): below
	// LowWater a full dimension degrades to a ring; above HighWater a
	// ring dimension is restored to full wiring.
	LowWater, HighWater float64

	// OnRate is the rate links come back up at.
	OnRate link.Rate

	// DegradeTo selects the reduced topology for a quiet dimension:
	// DimRing (torus-like, the default) keeps wraparound links; DimLine
	// (mesh-like) also powers off the wraparound, saving two more links
	// per ring at the cost of longer worst-case paths — exactly the
	// mesh/torus spectrum of §5.1.
	DegradeTo routing.DimMode

	// Transitions counts dimension mode changes.
	Transitions int64

	dimChans  [][]*fabric.Chan
	lastBytes []int64
	started   bool
}

// DefaultDynTopo returns a controller with a 100 us demand epoch, 1 us
// reactivation, and water marks sized for an 8-ary dimension (a ring
// retains 2/(k-1) of the full wiring's capacity).
func DefaultDynTopo(net *fabric.Network, r *routing.FBFLY) *DynTopo {
	return &DynTopo{
		Net:          net,
		Router:       r,
		Epoch:        100 * sim.Microsecond,
		Reactivation: sim.Microsecond,
		LowWater:     0.05,
		HighWater:    0.15,
		OnRate:       net.Cfg.Ladder.Max(),
	}
}

// Start validates and schedules the periodic demand ticks.
func (d *DynTopo) Start() error {
	if d.started {
		return fmt.Errorf("core: dyntopo already started")
	}
	if d.Net == nil || d.Router == nil {
		return fmt.Errorf("core: dyntopo needs a network and an FBFLY router")
	}
	if d.Epoch <= 0 {
		return fmt.Errorf("core: dyntopo epoch must be positive")
	}
	if d.LowWater < 0 || d.HighWater <= d.LowWater {
		return fmt.Errorf("core: dyntopo water marks must satisfy 0 <= low < high")
	}
	if d.OnRate == 0 {
		d.OnRate = d.Net.Cfg.Ladder.Max()
	}
	if d.DegradeTo == routing.DimFull {
		d.DegradeTo = routing.DimRing
	}
	f := d.Router.F
	d.dimChans = make([][]*fabric.Chan, f.D)
	for _, ch := range d.Net.InterSwitchChannels() {
		dim := f.PortDim(ch.Src.Port)
		if dim < 0 {
			continue
		}
		d.dimChans[dim] = append(d.dimChans[dim], ch)
	}
	d.lastBytes = make([]int64, f.D)
	d.started = true
	d.Net.E.After(d.Epoch, d.tick)
	return nil
}

// DemandUtil returns the last measured per-dimension demand as a
// fraction of the dimension's full-wiring capacity; valid after at
// least one epoch.
func (d *DynTopo) demandUtil(dim int) float64 {
	var bytes int64
	for _, ch := range d.dimChans[dim] {
		bytes += ch.L.TotalBytes()
	}
	delta := bytes - d.lastBytes[dim]
	d.lastBytes[dim] = bytes
	capacity := float64(len(d.dimChans[dim])) * float64(d.Net.Cfg.Ladder.Max()) * d.Epoch.Seconds() / 8
	if capacity == 0 {
		return 0
	}
	return float64(delta) / capacity
}

func (d *DynTopo) tick(now sim.Time) {
	f := d.Router.F
	for dim := 0; dim < f.D; dim++ {
		d.sweepDrained(dim, now)
		util := d.demandUtil(dim)
		switch d.Router.Mode(dim) {
		case routing.DimFull:
			if util < d.LowWater {
				d.degrade(dim, now)
			}
		default: // ring or line
			if util > d.HighWater {
				d.restore(dim, now)
			}
		}
	}
	d.Net.E.After(d.Epoch, d.tick)
}

// degrade switches a dimension to the configured reduced mode and
// starts draining the now-inactive links.
func (d *DynTopo) degrade(dim int, now sim.Time) {
	d.Router.SetMode(dim, d.DegradeTo)
	d.Transitions++
	for _, ch := range d.dimChans[dim] {
		if !d.Router.ActiveInDim(ch.Src.ID, ch.Src.Port) {
			d.Net.Switches[ch.Src.ID].SetClosing(ch.Src.Port, true)
		}
	}
}

// restore switches a dimension back to full wiring, powering links on.
func (d *DynTopo) restore(dim int, now sim.Time) {
	d.Router.SetMode(dim, routing.DimFull)
	d.Transitions++
	for _, ch := range d.dimChans[dim] {
		d.Net.Switches[ch.Src.ID].SetClosing(ch.Src.Port, false)
		if ch.L.State(now) == link.Off {
			ch.L.PowerOn(now, d.OnRate, d.Reactivation)
		}
	}
}

// sweepDrained powers off link pairs that are closing and fully drained.
// Both directions must be idle, honoring the credit-return constraint.
func (d *DynTopo) sweepDrained(dim int, now sim.Time) {
	seen := make(map[*fabric.Chan]bool)
	for _, pair := range d.Net.Pairs() {
		a, b := pair[0], pair[1]
		if a.Src.Kind != topo.KindSwitch || a.Dst.Kind != topo.KindSwitch {
			continue
		}
		if d.Router.F.PortDim(a.Src.Port) != dim || seen[a] {
			continue
		}
		seen[a], seen[b] = true, true
		if !d.Net.Switches[a.Src.ID].Closing(a.Src.Port) ||
			!d.Net.Switches[b.Src.ID].Closing(b.Src.Port) {
			continue
		}
		if d.Net.Switches[a.Src.ID].QueuedPackets(a.Src.Port) > 0 ||
			d.Net.Switches[b.Src.ID].QueuedPackets(b.Src.Port) > 0 {
			continue
		}
		if at, on := a.L.AvailableAt(now); on && at <= now {
			if bt, bon := b.L.AvailableAt(now); bon && bt <= now {
				a.L.PowerOff(now)
				b.L.PowerOff(now)
			}
		}
	}
}
