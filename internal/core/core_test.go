package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"epnet/internal/fabric"
	"epnet/internal/link"
	"epnet/internal/routing"
	"epnet/internal/sim"
	"epnet/internal/topo"
)

func ladder() link.RateLadder { return link.DefaultLadder() }

func TestHalveDouble(t *testing.T) {
	p := HalveDouble{Target: 0.5}
	l := ladder()
	if got := p.Decide(Signals{Util: 0.2, Rate: link.Rate40G}, l); got != link.Rate20G {
		t.Errorf("below target: %v, want halved to 20G", got)
	}
	if got := p.Decide(Signals{Util: 0.9, Rate: link.Rate20G}, l); got != link.Rate40G {
		t.Errorf("above target: %v, want doubled to 40G", got)
	}
	if got := p.Decide(Signals{Util: 0.0, Rate: link.Rate2_5G}, l); got != link.Rate2_5G {
		t.Errorf("at minimum: %v, want saturate", got)
	}
	if got := p.Decide(Signals{Util: 0.9, Rate: link.Rate40G}, l); got != link.Rate40G {
		t.Errorf("at maximum: %v, want saturate", got)
	}
	if got := p.Decide(Signals{Util: 0.5, Rate: link.Rate10G}, l); got != link.Rate10G {
		t.Errorf("exactly at target: %v, want unchanged", got)
	}
}

func TestMinMax(t *testing.T) {
	p := MinMax{Target: 0.5}
	l := ladder()
	if got := p.Decide(Signals{Util: 0.1, Rate: link.Rate20G}, l); got != link.Rate2_5G {
		t.Errorf("below: %v, want min", got)
	}
	if got := p.Decide(Signals{Util: 0.8, Rate: link.Rate5G}, l); got != link.Rate40G {
		t.Errorf("above: %v, want max", got)
	}
}

func TestHysteresis(t *testing.T) {
	p := Hysteresis{Target: 0.5}
	l := ladder()
	if got := p.Decide(Signals{Util: 0.6, Rate: link.Rate20G}, l); got != link.Rate40G {
		t.Errorf("above target: %v", got)
	}
	// In the dead band [target/2, target]: hold.
	if got := p.Decide(Signals{Util: 0.4, Rate: link.Rate20G}, l); got != link.Rate20G {
		t.Errorf("dead band: %v, want hold", got)
	}
	if got := p.Decide(Signals{Util: 0.1, Rate: link.Rate20G}, l); got != link.Rate10G {
		t.Errorf("below half target: %v, want down", got)
	}
}

func TestStatic(t *testing.T) {
	p := Static{Rate: link.Rate10G}
	if got := p.Decide(Signals{Util: 0.99, Rate: link.Rate40G}, ladder()); got != link.Rate10G {
		t.Errorf("static: %v", got)
	}
}

// Property: every policy's decision is always on the ladder, for any
// utilization (including pathological values).
func TestPolicyLadderClosureProperty(t *testing.T) {
	l := ladder()
	policies := []Policy{
		HalveDouble{0.5}, MinMax{0.5}, Hysteresis{0.5},
		Static{link.Rate2_5G}, HalveDouble{0.25}, HalveDouble{0.75},
	}
	f := func(curIdx uint8, utilRaw int16) bool {
		cur := l[int(curIdx)%len(l)]
		util := float64(utilRaw) / 1000 // may be negative or > 1
		for _, p := range policies {
			if l.Index(p.Decide(Signals{Util: util, Rate: cur}, l)) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{HalveDouble{0.5}, MinMax{0.5}, Hysteresis{0.5}, Static{link.Rate40G}} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

// buildNet creates an 8-ary 2-flat with its router.
func buildNet(t testing.TB) (*sim.Engine, *fabric.Network, *routing.FBFLY) {
	t.Helper()
	e := sim.New()
	f := topo.MustFBFLY(8, 2, 8)
	r := routing.NewFBFLY(f)
	n, err := fabric.New(e, f, r, fabric.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e, n, r
}

func TestControllerValidation(t *testing.T) {
	_, n, _ := buildNet(t)
	cases := []*Controller{
		{Net: nil, Policy: HalveDouble{0.5}, Epoch: sim.Microsecond},
		{Net: n, Policy: nil, Epoch: sim.Microsecond},
		{Net: n, Policy: HalveDouble{0.5}, Epoch: 0},
		{Net: n, Policy: HalveDouble{0.5}, Epoch: sim.Microsecond, Reactivation: -1},
		{Net: n, Policy: HalveDouble{0.5}, Epoch: sim.Microsecond, Reactivation: 2 * sim.Microsecond},
	}
	for i, c := range cases {
		if err := c.Start(); err == nil {
			t.Errorf("case %d: invalid controller started", i)
		}
	}
	good := DefaultController(n)
	if err := good.Start(); err != nil {
		t.Fatalf("valid controller rejected: %v", err)
	}
	if err := good.Start(); err == nil {
		t.Error("double start accepted")
	}
}

// TestControllerIdleConvergence: with no traffic, every channel descends
// the ladder to the minimum rate within a few epochs.
func TestControllerIdleConvergence(t *testing.T) {
	e, n, _ := buildNet(t)
	c := DefaultController(n)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	// 4 downward steps needed (40->20->10->5->2.5): run 6 epochs.
	e.RunUntil(6 * c.Epoch)
	for _, ch := range n.Channels() {
		if got := ch.L.Rate(); got != link.Rate2_5G {
			t.Fatalf("channel %s at %v after idle epochs, want 2.5G", ch.Label(), got)
		}
	}
	if c.Reconfigurations == 0 {
		t.Error("no reconfigurations counted")
	}
}

// TestControllerLoadedStaysFast: a saturating flow keeps its path fast
// while idle channels detune.
func TestControllerLoadedStaysFast(t *testing.T) {
	e, n, _ := buildNet(t)
	c := DefaultController(n)
	c.Paired = false
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	// Host 0 streams to host 8 (sw0 -> sw1) continuously: inject 64KB
	// every 10us = ~52 Gb/s offered, saturating the 40G path.
	var feed func(now sim.Time)
	feed = func(now sim.Time) {
		n.InjectMessage(0, 8, 65536)
		e.After(10*sim.Microsecond, feed)
	}
	e.At(0, feed)
	e.RunUntil(200 * sim.Microsecond)

	// The source host's uplink must still be at a high rate.
	up := n.Hosts[0].Uplink().L
	if up.Rate() < link.Rate20G {
		t.Errorf("loaded uplink detuned to %v", up.Rate())
	}
	// A far-away idle host's uplink must be at minimum.
	idle := n.Hosts[63].Uplink().L
	if idle.Rate() != link.Rate2_5G {
		t.Errorf("idle uplink at %v, want 2.5G", idle.Rate())
	}
}

// TestControllerPairedVsIndependent reproduces the §3.3.1 asymmetry
// argument: with one-directional traffic, paired control keeps both
// directions fast while independent control detunes the quiet reverse
// direction.
func TestControllerPairedVsIndependent(t *testing.T) {
	run := func(paired bool) (fwd, rev link.Rate) {
		e, n, _ := buildNet(t)
		c := DefaultController(n)
		c.Paired = paired
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		var feed func(now sim.Time)
		feed = func(now sim.Time) {
			n.InjectMessage(0, 8, 65536) // one-way host0 -> host8
			e.After(10*sim.Microsecond, feed)
		}
		e.At(0, feed)
		e.RunUntil(300 * sim.Microsecond)
		up := n.Hosts[0].Uplink()
		// Find the reverse (switch -> host 0) channel: it is up's pair.
		for _, pair := range n.Pairs() {
			if pair[0] == up {
				return pair[0].L.Rate(), pair[1].L.Rate()
			}
			if pair[1] == up {
				return pair[1].L.Rate(), pair[0].L.Rate()
			}
		}
		t.Fatal("uplink pair not found")
		return 0, 0
	}
	fwdP, revP := run(true)
	if fwdP < link.Rate20G || revP != fwdP {
		t.Errorf("paired: fwd=%v rev=%v, want both fast and equal", fwdP, revP)
	}
	fwdI, revI := run(false)
	if fwdI < link.Rate20G {
		t.Errorf("independent: fwd=%v, want fast", fwdI)
	}
	if revI != link.Rate2_5G {
		t.Errorf("independent: rev=%v, want 2.5G (asymmetric detune)", revI)
	}
}

// TestControllerTrafficSurvivesTuning: tuning must not lose packets.
func TestControllerTrafficSurvivesTuning(t *testing.T) {
	e, n, _ := buildNet(t)
	c := DefaultController(n)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		i := i
		e.At(sim.Time(i)*7*sim.Microsecond, func(sim.Time) {
			n.InjectMessage(i%64, (i*13+5)%64, 4096)
		})
	}
	e.RunUntil(5 * sim.Millisecond)
	inj, _ := n.Injected()
	del, _ := n.Delivered()
	if inj != del {
		t.Errorf("injected %d delivered %d with tuning active", inj, del)
	}
}

// TestDynTopoDegradeAndRestore drives the dynamic topology controller
// through a full cycle: idle -> ring (links powered off) -> loaded ->
// full wiring again.
func TestDynTopoDegradeAndRestore(t *testing.T) {
	e, n, r := buildNet(t)
	d := DefaultDynTopo(n, r)
	d.Epoch = 50 * sim.Microsecond
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	// Phase 1: idle. After two epochs the dimension must degrade.
	e.RunUntil(120 * sim.Microsecond)
	if got := r.Mode(0); got != routing.DimRing {
		t.Fatalf("mode after idle = %v, want ring", got)
	}
	// After another sweep, non-ring links are powered off.
	e.RunUntil(250 * sim.Microsecond)
	off := 0
	for _, ch := range n.InterSwitchChannels() {
		if ch.L.State(e.Now()) == link.Off {
			off++
		}
	}
	// 8 switches x 7 peers = 56 directed channels; ring keeps 16.
	if off != 40 {
		t.Fatalf("off channels = %d, want 40", off)
	}

	// Phase 2: traffic still flows over the ring.
	delivered := 0
	n.OnDeliver = func(*fabric.Packet, sim.Time) { delivered++ }
	n.InjectMessage(0, 32, 2048) // sw0 -> sw4: 4 ring hops
	e.RunUntil(300 * sim.Microsecond)
	if delivered != 1 {
		t.Fatalf("delivered %d over ring, want 1", delivered)
	}

	// Phase 3: sustained heavy all-to-all load restores full wiring.
	var feed func(now sim.Time)
	i := 0
	feed = func(now sim.Time) {
		for h := 0; h < 64; h += 2 {
			n.InjectMessage(h, (h+8*(1+i%7))%64, 32768)
		}
		i++
		e.After(20*sim.Microsecond, feed)
	}
	e.At(300*sim.Microsecond, feed)
	e.RunUntil(700 * sim.Microsecond)
	if got := r.Mode(0); got != routing.DimFull {
		t.Fatalf("mode under load = %v, want full", got)
	}
	for _, ch := range n.InterSwitchChannels() {
		if ch.L.State(e.Now()) == link.Off {
			t.Fatalf("channel %s still off after restore", ch.Label())
		}
	}
	if d.Transitions < 2 {
		t.Errorf("transitions = %d, want >= 2", d.Transitions)
	}
}

func TestDynTopoValidation(t *testing.T) {
	_, n, r := buildNet(t)
	bad := []*DynTopo{
		{Net: nil, Router: r, Epoch: sim.Microsecond, HighWater: 0.2},
		{Net: n, Router: nil, Epoch: sim.Microsecond, HighWater: 0.2},
		{Net: n, Router: r, Epoch: 0, HighWater: 0.2},
		{Net: n, Router: r, Epoch: sim.Microsecond, LowWater: 0.5, HighWater: 0.2},
	}
	for i, d := range bad {
		if err := d.Start(); err == nil {
			t.Errorf("case %d: invalid dyntopo started", i)
		}
	}
	good := DefaultDynTopo(n, r)
	if err := good.Start(); err != nil {
		t.Fatalf("valid dyntopo rejected: %v", err)
	}
	if err := good.Start(); err == nil {
		t.Error("double start accepted")
	}
}

// TestControllerAndDynTopoCompose runs both controllers together with
// traffic and checks conservation.
func TestControllerAndDynTopoCompose(t *testing.T) {
	e, n, r := buildNet(t)
	c := DefaultController(n)
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	d := DefaultDynTopo(n, r)
	d.Epoch = 50 * sim.Microsecond
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		i := i
		e.At(sim.Time(i%100)*5*sim.Microsecond, func(sim.Time) {
			n.InjectMessage(i%64, (i*29+3)%64, 2048)
		})
	}
	e.RunUntil(3 * sim.Millisecond)
	inj, _ := n.Injected()
	del, _ := n.Delivered()
	if inj != del {
		t.Errorf("injected %d delivered %d with both controllers", inj, del)
	}
}

func TestQueueAware(t *testing.T) {
	p := QueueAware{Target: 0.5, BurstBytes: 100000}
	l := ladder()
	// Below the burst threshold it behaves like halve/double.
	if got := p.Decide(Signals{Util: 0.1, QueueBytes: 500, Rate: link.Rate20G}, l); got != link.Rate10G {
		t.Errorf("low util, small queue: %v, want 10G", got)
	}
	// A deep backlog jumps straight to the maximum even at low
	// measured utilization (the link may just have come out of
	// reconfiguration).
	if got := p.Decide(Signals{Util: 0.1, QueueBytes: 200000, Rate: link.Rate2_5G}, l); got != link.Rate40G {
		t.Errorf("deep backlog: %v, want max", got)
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
}

// TestControllerModeAware: with mode-aware reactivation, a 20G -> 40G
// change (4x DDR -> 4x QDR, same lanes) pays only the CDR re-lock time,
// while 10G -> 20G (1x QDR -> 4x DDR) pays the lane retraining time.
func TestControllerModeAware(t *testing.T) {
	_, n, _ := buildNet(t)
	c := DefaultController(n)
	c.ModeAware = true
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if got := c.reactivationFor(link.Rate20G, link.Rate40G); got != c.ReactModel.CDRLock {
		t.Errorf("20->40G penalty = %v, want CDR lock %v", got, c.ReactModel.CDRLock)
	}
	if got := c.reactivationFor(link.Rate10G, link.Rate20G); got != c.ReactModel.LaneChange {
		t.Errorf("10->20G penalty = %v, want lane change %v", got, c.ReactModel.LaneChange)
	}
	if got := c.reactivationFor(link.Rate2_5G, link.Rate5G); got != c.ReactModel.CDRLock {
		t.Errorf("2.5->5G penalty = %v, want CDR lock", got)
	}
}

// TestControllerQueueAwareDrainsFaster: on a sudden burst arriving at a
// detuned link, the queue-aware policy restores full rate in one epoch
// and drains the backlog sooner than halve/double.
func TestControllerQueueAwareDrainsFaster(t *testing.T) {
	drainTime := func(p Policy) sim.Time {
		e, n, _ := buildNet(t)
		c := DefaultController(n)
		c.Policy = p
		c.Paired = false
		if err := c.Start(); err != nil {
			t.Fatal(err)
		}
		// Let everything detune to 2.5G, then slam a 2MB burst.
		var last sim.Time
		n.OnDeliver = func(_ *fabric.Packet, now sim.Time) { last = now }
		e.At(100*sim.Microsecond, func(sim.Time) {
			n.InjectMessage(0, 8, 2*1024*1024)
		})
		e.RunUntil(5 * sim.Millisecond)
		if pkts, _ := n.Injected(); pkts == 0 {
			t.Fatal("no injection")
		}
		inj, _ := n.Injected()
		del, _ := n.Delivered()
		if inj != del {
			t.Fatalf("%s: burst not drained (%d/%d)", p.Name(), del, inj)
		}
		return last
	}
	hd := drainTime(HalveDouble{Target: 0.5})
	qa := drainTime(QueueAware{Target: 0.5, BurstBytes: 64 * 1024})
	if qa >= hd {
		t.Errorf("queue-aware drained at %v, halve-double at %v: no improvement", qa, hd)
	}
}

// TestDynTopoMeshMode degrades a dimension to a line (mesh) instead of
// a ring: two more channels power off per ring (the wraparound pair),
// and traffic still flows.
func TestDynTopoMeshMode(t *testing.T) {
	e, n, r := buildNet(t)
	d := DefaultDynTopo(n, r)
	d.Epoch = 50 * sim.Microsecond
	d.DegradeTo = routing.DimLine
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(250 * sim.Microsecond)
	if got := r.Mode(0); got != routing.DimLine {
		t.Fatalf("mode = %v, want line", got)
	}
	off := 0
	for _, ch := range n.InterSwitchChannels() {
		if ch.L.State(e.Now()) == link.Off {
			off++
		}
	}
	// Ring keeps 16 of 56 directed channels; line keeps 14.
	if off != 42 {
		t.Fatalf("off channels = %d, want 42 (mesh keeps 14)", off)
	}
	// End-to-end traffic across the line: host on sw0 to host on sw7
	// must walk all 7 line hops.
	delivered := 0
	var hops int
	n.OnDeliver = func(p *fabric.Packet, _ sim.Time) { delivered++; hops = p.Hops }
	n.InjectMessage(0, 7*8, 2048)
	e.RunUntil(400 * sim.Microsecond)
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1", delivered)
	}
	if hops != 8 {
		t.Errorf("took %d hops, want 8 (7 line hops + egress)", hops)
	}
}

// TestConservationUnderTuningProperty is the capstone invariant: for
// random small topologies, random traffic, and random controller
// settings (policy, pairing, epoch, reactivation), every injected
// packet is delivered once the sources stop — energy proportional
// tuning never loses or duplicates traffic.
func TestConservationUnderTuningProperty(t *testing.T) {
	policies := []Policy{
		HalveDouble{0.5}, MinMax{0.5}, Hysteresis{0.5},
		QueueAware{0.5, 32 * 1024}, HalveDouble{0.25},
	}
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 12; trial++ {
		k := 2 + rng.Intn(4) // 2..5
		n := 2 + rng.Intn(2) // 2..3
		c := 1 + rng.Intn(3) // 1..3
		f := topo.MustFBFLY(k, n, c)
		e := sim.New()
		cfg := fabric.DefaultConfig()
		cfg.Seed = int64(trial)
		net, err := fabric.New(e, f, routing.NewFBFLY(f), cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctrl := DefaultController(net)
		ctrl.Policy = policies[rng.Intn(len(policies))]
		ctrl.Paired = rng.Intn(2) == 0
		ctrl.Epoch = sim.Time(2+rng.Intn(20)) * sim.Microsecond
		ctrl.Reactivation = ctrl.Epoch / sim.Time(2+rng.Intn(8))
		ctrl.ModeAware = rng.Intn(2) == 0
		if err := ctrl.Start(); err != nil {
			t.Fatal(err)
		}
		hosts := f.NumHosts()
		for i := 0; i < 150; i++ {
			src, dst := rng.Intn(hosts), rng.Intn(hosts)
			if src == dst {
				continue
			}
			size := 1 + rng.Intn(30000)
			e.At(sim.Time(rng.Intn(200))*sim.Microsecond, func(sim.Time) {
				net.InjectMessage(src, dst, size)
			})
		}
		e.RunUntil(5 * sim.Millisecond)
		inj, injB := net.Injected()
		del, delB := net.Delivered()
		if inj != del || injB != delB {
			t.Fatalf("trial %d (k=%d n=%d c=%d %s paired=%v): injected %d/%dB delivered %d/%dB",
				trial, k, n, c, ctrl.Policy.Name(), ctrl.Paired, inj, injB, del, delB)
		}
	}
}
