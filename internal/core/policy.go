// Package core implements the paper's contribution: energy proportional
// communication by dynamically tuning the data rate (and power) of every
// network channel to track its offered load.
//
// The mechanism (§3.3): each switch tracks the utilization of each of
// its links over an epoch, then adjusts the link at the epoch boundary —
// below the target utilization, the rate is halved (down to the
// minimum); above it, the rate is doubled (up to the maximum). Link
// reactivation makes the channel unavailable for a configurable time;
// traffic routes around it via the fabric's adaptive routing, exactly as
// the paper proposes.
//
// The package also implements the §5.2 "better heuristics" (immediate
// min/max jumps, hysteresis) and the §5.1 dynamic topology controller
// that powers entire links off to degrade FBFLY dimensions to rings
// (torus) and back.
package core

import (
	"fmt"

	"epnet/internal/link"
)

// Signals carries the per-link inputs available to a policy at an epoch
// boundary. The paper's base heuristic uses utilization alone, because
// "utilization effectively captures both" data availability and credit
// availability (§3.3); richer policies may also consult the output
// queue backlog, which is the same congestion signal the adaptive
// routing uses (§3.2, §5.2).
type Signals struct {
	// Util is the fraction of the last epoch the channel spent
	// serializing bits, in [0, 1].
	Util float64
	// QueueBytes is the backlog in the output queue feeding this
	// channel at the epoch boundary.
	QueueBytes int64
	// Rate is the channel's current configured rate.
	Rate link.Rate
}

// Policy decides a channel's next rate from its epoch signals.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide returns the rate for the next epoch.
	Decide(s Signals, ladder link.RateLadder) link.Rate
}

// HalveDouble is the paper's §3.3 heuristic: utilization below the
// target halves the link rate; above the target doubles it. The paper
// defaults to a 50% target: set too high the network saturates, too low
// it wastes power.
type HalveDouble struct {
	Target float64
}

// Name implements Policy.
func (p HalveDouble) Name() string { return fmt.Sprintf("halve-double(%.0f%%)", p.Target*100) }

// Decide implements Policy.
func (p HalveDouble) Decide(s Signals, ladder link.RateLadder) link.Rate {
	switch {
	case s.Util > p.Target:
		return ladder.Up(s.Rate)
	case s.Util < p.Target:
		return ladder.Down(s.Rate)
	default:
		return s.Rate
	}
}

// MinMax is the §5.2 aggressive heuristic: "with bursty workloads, it
// may be advantageous to immediately tune links to either their lowest
// or highest performance mode without going through the intermediate
// steps".
type MinMax struct {
	Target float64
}

// Name implements Policy.
func (p MinMax) Name() string { return fmt.Sprintf("min-max(%.0f%%)", p.Target*100) }

// Decide implements Policy.
func (p MinMax) Decide(s Signals, ladder link.RateLadder) link.Rate {
	if s.Util > p.Target {
		return ladder.Max()
	}
	if s.Util < p.Target {
		return ladder.Min()
	}
	return s.Rate
}

// Hysteresis is a stabilized variant of HalveDouble (a "better
// algorithm" in the spirit of §5.2): the downgrade threshold is half the
// upgrade threshold, so a link whose post-downgrade utilization lands
// between the thresholds does not flap between two rates every epoch,
// avoiding the "meta-instability arising from too-frequent
// reconfiguration" the paper warns about.
type Hysteresis struct {
	Target float64 // upgrade above this
}

// Name implements Policy.
func (p Hysteresis) Name() string { return fmt.Sprintf("hysteresis(%.0f%%)", p.Target*100) }

// Decide implements Policy.
func (p Hysteresis) Decide(s Signals, ladder link.RateLadder) link.Rate {
	if s.Util > p.Target {
		return ladder.Up(s.Rate)
	}
	if s.Util < p.Target/2 {
		return ladder.Down(s.Rate)
	}
	return s.Rate
}

// Static pins every channel at a fixed rate: the always-on baseline
// (max) and the always-slow comparison (min) of §4.2.1.
type Static struct {
	Rate link.Rate
}

// Name implements Policy.
func (p Static) Name() string { return fmt.Sprintf("static(%v)", p.Rate) }

// Decide implements Policy.
func (p Static) Decide(Signals, link.RateLadder) link.Rate { return p.Rate }

// QueueAware extends HalveDouble with the congestion input the paper
// suggests for better algorithms (§3.2, §5.2): a backlog above
// BurstBytes jumps the link straight to the maximum rate instead of
// climbing one step per epoch, clearing bursts sooner at the cost of a
// brief power spike.
type QueueAware struct {
	Target     float64
	BurstBytes int64
}

// Name implements Policy.
func (p QueueAware) Name() string { return fmt.Sprintf("queue-aware(%.0f%%)", p.Target*100) }

// Decide implements Policy.
func (p QueueAware) Decide(s Signals, ladder link.RateLadder) link.Rate {
	if s.QueueBytes > p.BurstBytes {
		return ladder.Max()
	}
	return HalveDouble{Target: p.Target}.Decide(s, ladder)
}

var (
	_ Policy = HalveDouble{}
	_ Policy = MinMax{}
	_ Policy = Hysteresis{}
	_ Policy = Static{}
	_ Policy = QueueAware{}
)
