package core

import (
	"fmt"
	"strconv"

	"epnet/internal/fabric"
	"epnet/internal/link"
	"epnet/internal/sim"
	"epnet/internal/telemetry"
	"epnet/internal/topo"
)

// Controller is the energy-proportional link controller. Every Epoch it
// measures the utilization of every channel, asks the Policy for the
// next rate, and reconfigures channels whose rate changes, paying the
// Reactivation penalty. Decisions are purely local to each link — the
// property that makes this mechanism a natural fit for the flattened
// butterfly, whose routing decisions are local too (§3.2).
//
// Sharded execution contract: the controller's epoch events run on the
// control engine (fabric.Network.E), which the shard coordinator only
// advances at window barriers, when every shard worker is parked at the
// same instant. The controller may therefore read and reconfigure any
// channel without synchronization — it never races a shard — and the
// barrier schedule is a pure function of event timestamps, so epoch
// decisions land at identical times at every shard count.
type Controller struct {
	Net    *fabric.Network
	Policy Policy

	// Epoch is the utilization measurement window. The paper sizes it
	// at 10x the reactivation time, bounding reconfiguration overhead
	// to 10% (§4.2.2).
	Epoch sim.Time

	// Reactivation is the link-reconfiguration penalty (1 us default,
	// "a conservative value", §4.1).
	Reactivation sim.Time

	// Paired, when true, ties both unidirectional channels of a link to
	// the same rate, driven by the busier direction — current chips'
	// behavior. When false, each channel is tuned independently (the
	// paper's proposed switch-design improvement, §3.3.1).
	Paired bool

	// IncludeHostLinks extends tuning to host-switch links (default in
	// Start unless explicitly disabled via SkipHostLinks).
	SkipHostLinks bool

	// ModeAware, when true, replaces the flat Reactivation penalty with
	// the SerDes model of §3.1: a rate-only change merely re-locks the
	// receive CDR (~100 ns) while a lane-count change retrains the link
	// (~1 us). The paper's §5.2 suggests better algorithms "take into
	// account the difference in link resynchronization latency".
	ModeAware  bool
	ReactModel link.ReactivationModel
	Modes      []link.Mode

	// Reconfigurations counts rate changes applied, for reports.
	Reconfigurations int64

	// Tracer, when set, receives one span per rate change on the
	// telemetry.PIDLinks track (thread = channel index): the span
	// covers the reactivation window, so a trace shows exactly when
	// each link was dark re-locking its CDR or retraining lanes.
	Tracer *telemetry.Tracer

	// Labeled retune counters, pre-resolved by RegisterMetrics and
	// nil when telemetry is off (Inc on nil is a no-op). mUp/mDown
	// split rate changes by direction; mDim attributes them to the
	// topology dimension of the retuned port when the topology exposes
	// one (flattened butterfly inter-switch ports).
	mUp, mDown *telemetry.Counter
	mDim       []*telemetry.Counter
	dimOf      func(port int) int

	started bool
}

// RegisterMetrics exposes the controller's counters to a telemetry
// registry: the flat ctrl.reconfigs total plus labeled vectors
// ctrl.retunes{dir=up|down} and — when the network's topology is a
// flattened butterfly — ctrl.dim_retunes{dim=N} attributing rate
// changes to topology dimensions. The counters are resolved to
// handles here, off the epoch tick.
func (c *Controller) RegisterMetrics(reg *telemetry.Registry) error {
	if err := reg.GaugeFunc("ctrl.reconfigs",
		func() float64 { return float64(c.Reconfigurations) }); err != nil {
		return err
	}
	retunes := reg.CounterVec("ctrl.retunes", "dir")
	var err error
	if c.mUp, err = retunes.With("up"); err != nil {
		return err
	}
	if c.mDown, err = retunes.With("down"); err != nil {
		return err
	}
	if c.Net != nil {
		if f, ok := c.Net.T.(*topo.FBFLY); ok && f.D > 0 {
			dims := reg.CounterVec("ctrl.dim_retunes", "dim")
			c.mDim = make([]*telemetry.Counter, f.D)
			for d := range c.mDim {
				if c.mDim[d], err = dims.With(strconv.Itoa(d)); err != nil {
					return err
				}
			}
			c.dimOf = f.PortDim
		}
	}
	return nil
}

// noteRetune feeds the labeled retune counters for one channel's rate
// change. All handles are nil-safe, so runs without telemetry pay one
// nil test per actual reconfiguration (a cold path).
func (c *Controller) noteRetune(ch *fabric.Chan, from, to link.Rate) {
	if to > from {
		c.mUp.Inc()
	} else {
		c.mDown.Inc()
	}
	if c.mDim != nil && ch.Src.Kind == topo.KindSwitch {
		if d := c.dimOf(ch.Src.Port); d >= 0 && d < len(c.mDim) {
			c.mDim[d].Inc()
		}
	}
}

// traceRetune emits the rate-change span for one channel. The category
// distinguishes a digital CDR re-lock from full lane retraining when
// the mode-aware model is active.
func (c *Controller) traceRetune(ch *fabric.Chan, from, to link.Rate, now, react sim.Time) {
	cat := "retune"
	if c.ModeAware {
		fm, ok1 := link.ModeFor(from, c.Modes)
		tm, ok2 := link.ModeFor(to, c.Modes)
		if ok1 && ok2 {
			if fm.Lanes == tm.Lanes {
				cat = "cdr-relock"
			} else {
				cat = "lane-retrain"
			}
		}
	}
	c.Tracer.Complete(fmt.Sprintf("%v->%v", from, to), cat,
		telemetry.PIDLinks, ch.Index(), now, react,
		fmt.Sprintf(`"from_gbps":%g,"to_gbps":%g,"react_ns":%g`,
			from.GbpsF(), to.GbpsF(), react.Nanoseconds()))
}

// DefaultController returns the paper's evaluation configuration: the
// halve/double policy at 50% target utilization, 1 us reactivation, and
// a 10 us epoch, with paired link control.
func DefaultController(net *fabric.Network) *Controller {
	return &Controller{
		Net:          net,
		Policy:       HalveDouble{Target: 0.5},
		Epoch:        10 * sim.Microsecond,
		Reactivation: sim.Microsecond,
		Paired:       true,
	}
}

// Start validates the configuration and schedules the periodic epoch
// ticks on the network's engine.
func (c *Controller) Start() error {
	if c.started {
		return fmt.Errorf("core: controller already started")
	}
	if c.Net == nil {
		return fmt.Errorf("core: controller needs a network")
	}
	if c.Policy == nil {
		return fmt.Errorf("core: controller needs a policy")
	}
	if c.Epoch <= 0 {
		return fmt.Errorf("core: epoch must be positive, got %v", c.Epoch)
	}
	if c.Reactivation < 0 {
		return fmt.Errorf("core: negative reactivation %v", c.Reactivation)
	}
	if c.Reactivation >= c.Epoch {
		return fmt.Errorf("core: reactivation %v must be shorter than epoch %v",
			c.Reactivation, c.Epoch)
	}
	if c.ModeAware {
		if c.Modes == nil {
			c.Modes = link.InfiniBandModes()
		}
		if c.ReactModel == (link.ReactivationModel{}) {
			c.ReactModel = link.DefaultReactivation()
		}
	}
	c.started = true
	c.Net.E.After(c.Epoch, c.tick)
	return nil
}

// reactivationFor returns the penalty for reconfiguring from one rate
// to another.
func (c *Controller) reactivationFor(from, to link.Rate) sim.Time {
	if !c.ModeAware {
		return c.Reactivation
	}
	fm, ok1 := link.ModeFor(from, c.Modes)
	tm, ok2 := link.ModeFor(to, c.Modes)
	if !ok1 || !ok2 {
		return c.Reactivation
	}
	return c.ReactModel.Penalty(fm, tm)
}

// signalsFor gathers the policy inputs for one channel: its epoch
// utilization and the backlog queued behind it at its source.
func (c *Controller) signalsFor(ch *fabric.Chan, now sim.Time) Signals {
	s := Signals{
		Util: ch.L.EpochUtilization(now),
		Rate: ch.L.Rate(),
	}
	switch ch.Src.Kind {
	case topo.KindSwitch:
		s.QueueBytes = c.Net.Switches[ch.Src.ID].QueueBytes(ch.Src.Port)
	case topo.KindHost:
		s.QueueBytes = c.Net.Hosts[ch.Src.ID].BacklogBytes()
	}
	return s
}

func (c *Controller) tick(now sim.Time) {
	if c.Paired {
		for _, pair := range c.Net.Pairs() {
			if c.skip(pair[0]) {
				continue
			}
			a, b := pair[0].L, pair[1].L
			if a.State(now) == link.Off || b.State(now) == link.Off {
				continue // dynamic topology owns powered-off links
			}
			// The pair must satisfy the busier direction (§3.3.1).
			sa := c.signalsFor(pair[0], now)
			sb := c.signalsFor(pair[1], now)
			s := sa
			if sb.Util > s.Util {
				s.Util = sb.Util
			}
			if sb.QueueBytes > s.QueueBytes {
				s.QueueBytes = sb.QueueBytes
			}
			next := c.Policy.Decide(s, a.Ladder())
			// A degraded lane (fault injection) caps what either side
			// can train to; clamp before comparing so a pinned link is
			// not counted as reconfiguring every epoch.
			next = b.ClampRate(a.ClampRate(next))
			if next != a.Rate() {
				fromA, fromB := a.Rate(), b.Rate()
				react := c.reactivationFor(fromA, next)
				if c.Tracer != nil {
					c.traceRetune(pair[0], fromA, next, now, react)
					c.traceRetune(pair[1], fromB, next, now, react)
				}
				a.SetRate(now, next, react)
				b.SetRate(now, next, react)
				c.Reconfigurations += 2
				c.noteRetune(pair[0], fromA, next)
				c.noteRetune(pair[1], fromB, next)
			}
			a.ResetEpoch(now)
			b.ResetEpoch(now)
		}
	} else {
		for _, ch := range c.Net.Channels() {
			if c.skip(ch) {
				continue
			}
			l := ch.L
			if l.State(now) == link.Off {
				continue
			}
			next := c.Policy.Decide(c.signalsFor(ch, now), l.Ladder())
			next = l.ClampRate(next)
			if next != l.Rate() {
				from := l.Rate()
				react := c.reactivationFor(from, next)
				if c.Tracer != nil {
					c.traceRetune(ch, from, next, now, react)
				}
				l.SetRate(now, next, react)
				c.Reconfigurations++
				c.noteRetune(ch, from, next)
			}
			l.ResetEpoch(now)
		}
	}
	c.Net.E.After(c.Epoch, c.tick)
}

func (c *Controller) skip(ch *fabric.Chan) bool {
	if !c.SkipHostLinks {
		return false
	}
	return ch.Src.Kind == topo.KindHost || ch.Dst.Kind == topo.KindHost
}
