package sim

import (
	"math/rand"
	"testing"
)

// BenchmarkScheduleStep measures one full event round-trip — push onto a
// queue at steady-state depth, then pop and execute the earliest — the
// engine's hot loop during a simulation.
func BenchmarkScheduleStep(b *testing.B) {
	e := New()
	noop := func(Time) {}
	const depth = 1024
	for i := 0; i < depth; i++ {
		e.At(Time(i), noop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+Time(1+i%997), noop)
		e.step()
	}
}

// BenchmarkScheduleStepDeep is BenchmarkScheduleStep at a 64k-event
// queue depth — the regime of full-scale (15-ary 3-flat) runs, where
// the heap no longer fits in L1/L2 and tree depth, not comparison
// count, sets the cost of a step.
func BenchmarkScheduleStepDeep(b *testing.B) {
	e := New()
	noop := func(Time) {}
	const depth = 65536
	for i := 0; i < depth; i++ {
		e.At(Time(i), noop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+Time(1+i%99991), noop)
		e.step()
	}
}

// BenchmarkSelfScheduling measures throughput of events that reschedule
// themselves — the pattern of every periodic controller and wake in the
// fabric. Reported ns/op is per executed event.
func BenchmarkSelfScheduling(b *testing.B) {
	e := New()
	rng := rand.New(rand.NewSource(1))
	remaining := b.N
	var tick Event
	tick = func(Time) {
		if remaining > 0 {
			remaining--
			e.After(Time(1+rng.Intn(500)), tick)
		}
	}
	for i := 0; i < 64 && remaining > 0; i++ {
		remaining--
		e.After(Time(1+rng.Intn(500)), tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}
