// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is measured in integer picoseconds, which gives sub-bit resolution
// at 40 Gb/s (one byte takes 200 ps) while still allowing simulations of
// many simulated seconds inside an int64.
//
// The engine is single-threaded and deterministic: events scheduled for
// the same timestamp fire in FIFO order of scheduling, so a simulation
// run is exactly reproducible given the same inputs and seeds.
package sim

import (
	"fmt"
)

// Time is a simulation timestamp or duration in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds returns the time as a floating point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns the time as a floating point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns the time as a floating point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3gns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.4gus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.4gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

// Event is a callback scheduled to run at a point in simulated time.
type Event func(now Time)

// ArgEvent is a callback that receives scheduling-time arguments. Used
// with AtArg and a pre-bound function value it lets hot paths schedule
// events without allocating a closure per event.
type ArgEvent func(now Time, arg any, n int64)

// item is a scheduled event in the priority queue.
type item struct {
	at  Time
	seq uint64 // tie-break: FIFO for equal timestamps
	fn  ArgEvent
	arg any
	n   int64
}

// execEvent adapts a plain Event (carried in arg) to the ArgEvent form.
func execEvent(now Time, arg any, _ int64) { arg.(Event)(now) }

// eventQueue is a binary min-heap of items ordered by (at, seq). It is
// hand-rolled rather than built on container/heap so that Push and Pop
// move item values directly instead of boxing them through interface{} —
// the engine's hottest path would otherwise allocate on every event.
type eventQueue []item

// before reports whether a sorts ahead of b.
func (a item) before(b item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts it and restores the heap invariant (sift-up).
func (q *eventQueue) push(it item) {
	*q = append(*q, it)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum item (sift-down).
func (q *eventQueue) pop() item {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = item{} // release the Event for GC
	*q = h[:n]
	h = h[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && h[right].before(h[left]) {
			child = right
		}
		if !h[child].before(h[i]) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
	return top
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now       Time
	seq       uint64
	queue     eventQueue
	processed uint64
	stopped   bool
}

// defaultQueueCap pre-sizes the event queue so steady-state simulations
// reach their working depth without repeated growth copies.
const defaultQueueCap = 4096

// New returns a new simulation engine starting at time zero.
func New() *Engine { return NewWithCapacity(defaultQueueCap) }

// NewWithCapacity returns a new engine whose event queue is pre-sized
// for n pending events. Use it when the expected queue depth is known
// (e.g. tiny test engines, or very large fabrics).
func NewWithCapacity(n int) *Engine {
	return &Engine{queue: make(eventQueue, 0, n)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time at. Scheduling in the past
// (before Now) panics: it indicates a model bug that would silently
// corrupt causality.
func (e *Engine) At(at Time, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	// A func value is pointer-shaped, so carrying it in arg does not box.
	e.queue.push(item{at: at, seq: e.seq, fn: execEvent, arg: fn})
}

// AtArg schedules fn(at, arg, n) at absolute time at. With a pre-bound
// fn (stored once, not a fresh closure) and a pointer-shaped arg this
// schedules without allocating, which is what the fabric's per-packet
// events use. The same past-scheduling rule as At applies.
func (e *Engine) AtArg(at Time, fn ArgEvent, arg any, n int64) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	e.queue.push(item{at: at, seq: e.seq, fn: fn, arg: arg, n: n})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn Event) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// Stop makes Run and RunUntil return after the currently executing event.
// Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// step executes the earliest pending event. It reports false if the
// queue is empty.
func (e *Engine) step() bool {
	if len(e.queue) == 0 {
		return false
	}
	it := e.queue.pop()
	e.now = it.at
	e.processed++
	it.fn(e.now, it.arg, it.n)
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}
