// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is measured in integer picoseconds, which gives sub-bit resolution
// at 40 Gb/s (one byte takes 200 ps) while still allowing simulations of
// many simulated seconds inside an int64.
//
// The engine is single-threaded and deterministic: events scheduled for
// the same timestamp fire in FIFO order of scheduling, so a simulation
// run is exactly reproducible given the same inputs and seeds.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp or duration in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds returns the time as a floating point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns the time as a floating point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns the time as a floating point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3gns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.4gus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.4gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

// Event is a callback scheduled to run at a point in simulated time.
type Event func(now Time)

// item is a scheduled event in the priority queue.
type item struct {
	at  Time
	seq uint64 // tie-break: FIFO for equal timestamps
	fn  Event
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []item

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(item)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now       Time
	seq       uint64
	queue     eventQueue
	processed uint64
	stopped   bool
}

// New returns a new simulation engine starting at time zero.
func New() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time at. Scheduling in the past
// (before Now) panics: it indicates a model bug that would silently
// corrupt causality.
func (e *Engine) At(at Time, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, item{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn Event) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// Stop makes Run and RunUntil return after the currently executing event.
// Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// step executes the earliest pending event. It reports false if the
// queue is empty.
func (e *Engine) step() bool {
	if len(e.queue) == 0 {
		return false
	}
	it := heap.Pop(&e.queue).(item)
	e.now = it.at
	e.processed++
	it.fn(e.now)
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}
