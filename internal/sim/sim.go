// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is measured in integer picoseconds, which gives sub-bit resolution
// at 40 Gb/s (one byte takes 200 ps) while still allowing simulations of
// many simulated seconds inside an int64.
//
// Each engine is single-threaded and deterministic. Events scheduled at
// the same timestamp are ordered by a 64-bit key: At and AtArg draw keys
// from the engine's own counter (lane 0), preserving FIFO order of
// scheduling, while AtLane and AtArgLane draw from a caller-owned Lane.
// Lanes make the execution order a pure function of per-entity scheduling
// order rather than global scheduling order, which is what lets a sharded
// simulation (several engines advancing in lockstep windows) replay the
// exact event order of a serial run.
package sim

import (
	"fmt"
)

// Time is a simulation timestamp or duration in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds returns the time as a floating point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns the time as a floating point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns the time as a floating point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3gns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.4gus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.4gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

// Event is a callback scheduled to run at a point in simulated time.
type Event func(now Time)

// ArgEvent is a callback that receives scheduling-time arguments. Used
// with AtArg and a pre-bound function value it lets hot paths schedule
// events without allocating a closure per event.
type ArgEvent func(now Time, arg any, n int64)

// laneShift splits an ordering key into a lane ID (high 20 bits) and a
// per-lane sequence number (low 44 bits). Lane 0 is the engine's own
// counter; 2^44 events per lane is out of reach for any realistic run.
const laneShift = 44

// maxLaneID bounds lane identifiers to the 20 high bits of a key.
const maxLaneID = 1<<(64-laneShift) - 1

// Lane is an independent source of event-ordering keys. Two events at
// the same timestamp execute in ascending key order, so events drawn
// from one lane keep their scheduling order relative to each other, and
// events from distinct lanes interleave by (lane ID, per-lane order) —
// independent of which engine they were pushed onto or when. A Lane is
// owned by a single scheduling thread; it is not safe for concurrent use.
type Lane struct {
	next uint64
}

// NewLane returns a lane with the given ID. Keys from lane id sort after
// every key from lanes with smaller IDs at the same timestamp; lane 0 is
// reserved for the engine's internal counter (At/AtArg).
func NewLane(id uint64) Lane {
	if id == 0 || id > maxLaneID {
		panic(fmt.Sprintf("sim: lane ID %d out of range [1, %d]", id, uint64(maxLaneID)))
	}
	return Lane{next: id << laneShift}
}

// NextKey returns the lane's next ordering key and advances it.
func (l *Lane) NextKey() uint64 {
	k := l.next
	l.next++
	return k
}

// item is a scheduled event in the priority queue.
type item struct {
	at  Time
	key uint64 // tie-break for equal timestamps: (lane, per-lane seq)
	fn  ArgEvent
	arg any
	n   int64
}

// execEvent adapts a plain Event (carried in arg) to the ArgEvent form.
func execEvent(now Time, arg any, _ int64) { arg.(Event)(now) }

// eventQueue is a 4-ary min-heap of items ordered by (at, key). It is
// hand-rolled rather than built on container/heap so that Push and Pop
// move item values directly instead of boxing them through interface{} —
// the engine's hottest path would otherwise allocate on every event.
// The 4-ary layout halves the tree depth of a binary heap, trading a
// little extra comparison work per level for fewer cache-missing levels;
// sift-up (the push path) does strictly fewer compares.
type eventQueue []item

// before reports whether a sorts ahead of b.
func (a item) before(b item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.key < b.key
}

// push inserts it and restores the heap invariant. Sift-up walks a hole
// down from the end, moving displaced parents into it, and writes the
// new item once at its final slot — one item copy per level instead of
// a swap's three.
func (q *eventQueue) push(it item) {
	*q = append(*q, it)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !it.before(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = it
}

// pop removes and returns the minimum item. Sift-down moves the hole
// from the root toward the leaves, pulling the smallest child up at
// each level, and places the displaced last element once at the end.
func (q *eventQueue) pop() item {
	h := *q
	top := h[0]
	n := len(h) - 1
	moved := h[n]
	h[n] = item{} // release the Event for GC
	*q = h[:n]
	h = h[:n]
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h[c].before(h[min]) {
				min = c
			}
		}
		if !h[min].before(moved) {
			break
		}
		h[i] = h[min]
		i = min
	}
	if n > 0 {
		h[i] = moved
	}
	return top
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	now       Time
	seq       uint64
	queue     eventQueue
	processed uint64
	stopped   bool
	lastAt    Time
}

// defaultQueueCap pre-sizes the event queue so steady-state simulations
// reach their working depth without repeated growth copies.
const defaultQueueCap = 4096

// New returns a new simulation engine starting at time zero.
func New() *Engine { return NewWithCapacity(defaultQueueCap) }

// NewWithCapacity returns a new engine whose event queue is pre-sized
// for n pending events. Use it when the expected queue depth is known
// (e.g. tiny test engines, or very large fabrics).
func NewWithCapacity(n int) *Engine {
	return &Engine{queue: make(eventQueue, 0, n)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// NextAt returns the timestamp of the earliest pending event, or false
// when the queue is empty.
func (e *Engine) NextAt() (Time, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// At schedules fn to run at absolute time at, ordered on the engine's
// own lane (lane 0): FIFO among all At/AtArg events at the same
// timestamp, and ahead of any Lane-keyed event there. Scheduling in the
// past (before Now) panics: it indicates a model bug that would silently
// corrupt causality.
func (e *Engine) At(at Time, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	// A func value is pointer-shaped, so carrying it in arg does not box.
	e.queue.push(item{at: at, key: e.seq, fn: execEvent, arg: fn})
}

// AtArg schedules fn(at, arg, n) at absolute time at, on the engine's
// lane 0 like At. With a pre-bound fn (stored once, not a fresh closure)
// and a pointer-shaped arg this schedules without allocating. The same
// past-scheduling rule as At applies.
func (e *Engine) AtArg(at Time, fn ArgEvent, arg any, n int64) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	e.queue.push(item{at: at, key: e.seq, fn: fn, arg: arg, n: n})
}

// AtLane schedules fn at absolute time at, drawing its ordering key from
// l instead of the engine counter.
func (e *Engine) AtLane(at Time, l *Lane, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.queue.push(item{at: at, key: l.NextKey(), fn: execEvent, arg: fn})
}

// AtArgLane schedules fn(at, arg, n) at absolute time at, drawing its
// ordering key from l instead of the engine counter. Zero-alloc like
// AtArg.
func (e *Engine) AtArgLane(at Time, l *Lane, fn ArgEvent, arg any, n int64) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.queue.push(item{at: at, key: l.NextKey(), fn: fn, arg: arg, n: n})
}

// PushKeyed schedules fn(at, arg, n) with an explicit, caller-computed
// ordering key. The sharded fabric uses it at window barriers to drain
// staged cross-shard events: keys were drawn from the sender's Lane at
// staging time, so pushing the staged batches in any order reproduces
// the exact order a single engine would have executed them in.
func (e *Engine) PushKeyed(at Time, key uint64, fn ArgEvent, arg any, n int64) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.queue.push(item{at: at, key: key, fn: fn, arg: arg, n: n})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn Event) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// Stop makes Run and RunUntil return after the currently executing event.
// Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// step executes the earliest pending event. It reports false if the
// queue is empty.
func (e *Engine) step() bool {
	if len(e.queue) == 0 {
		return false
	}
	it := e.queue.pop()
	e.now = it.at
	e.processed++
	it.fn(e.now, it.arg, it.n)
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step() {
	}
	e.lastAt = e.now
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.step()
	}
	e.lastAt = e.now
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// RunBefore executes events with timestamps strictly before end, then
// advances the clock to end. It is the window body of a conservative
// parallel simulation: a shard granted the window [Now, end) runs
// everything inside it and stops with its clock parked on the barrier.
func (e *Engine) RunBefore(end Time) {
	e.stopped = false
	for !e.stopped && len(e.queue) > 0 && e.queue[0].at < end {
		e.step()
	}
	e.lastAt = e.now
	if !e.stopped && e.now < end {
		e.now = end
	}
}

// LastEventAt returns the clock value at the end of the most recent
// Run/RunUntil/RunBefore event loop: the timestamp of the last event
// that call executed, or the clock at entry when it executed none.
// Unlike Now it does not move when a run call parks the clock on a
// deadline with no event there, so a window's efficiency (simulated
// advance actually used vs granted) derives from LastEventAt minus the
// window start. Updated once per run call, not per event, so it costs
// nothing on the hot path.
func (e *Engine) LastEventAt() Time { return e.lastAt }

// AdvanceTo moves the clock forward to t without executing anything.
// It panics if that would rewind the clock or skip a pending event —
// both indicate a broken window computation in the caller.
func (e *Engine) AdvanceTo(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: AdvanceTo %v before now %v", t, e.now))
	}
	if at, ok := e.NextAt(); ok && at < t {
		panic(fmt.Sprintf("sim: AdvanceTo %v would skip event at %v", t, at))
	}
	e.now = t
}
