package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Nanosecond != 1000*Picosecond {
		t.Fatalf("Nanosecond = %d ps", int64(Nanosecond))
	}
	if Microsecond != 1000*Nanosecond {
		t.Fatalf("Microsecond = %d ns", int64(Microsecond)/1000)
	}
	if Second != 1000*Millisecond {
		t.Fatalf("Second mismatch")
	}
	if got := Time(2500 * Nanosecond).Microseconds(); got != 2.5 {
		t.Errorf("Microseconds() = %v, want 2.5", got)
	}
	if got := Time(500 * Millisecond).Seconds(); got != 0.5 {
		t.Errorf("Seconds() = %v, want 0.5", got)
	}
	if got := Microsecond.Nanoseconds(); got != 1000 {
		t.Errorf("Nanoseconds() = %v, want 1000", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{Nanosecond, "1ns"},
		{Microsecond, "1us"},
		{Millisecond, "1ms"},
		{Second, "1s"},
		{2500 * Nanosecond, "2.5us"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func(Time) { order = append(order, 3) })
	e.At(10, func(Time) { order = append(order, 1) })
	e.At(20, func(Time) { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 30 {
		t.Errorf("Now() = %v, want 30", e.Now())
	}
	if e.Processed() != 3 {
		t.Errorf("Processed() = %d, want 3", e.Processed())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(42, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d: same-timestamp events not FIFO", i, v)
		}
	}
}

func TestEngineAfterChains(t *testing.T) {
	e := New()
	var ticks []Time
	var tick Event
	tick = func(now Time) {
		ticks = append(ticks, now)
		if len(ticks) < 5 {
			e.After(100, tick)
		}
	}
	e.After(100, tick)
	e.Run()
	want := []Time{100, 200, 300, 400, 500}
	if len(ticks) != len(want) {
		t.Fatalf("got %d ticks, want %d", len(ticks), len(want))
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func(now Time) { fired = append(fired, now) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %d events before deadline, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Errorf("Now() = %v, want 25 (clock advances to deadline)", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", e.Pending())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Errorf("fired %d events total, want 4", len(fired))
	}
}

func TestEngineStop(t *testing.T) {
	e := New()
	count := 0
	e.At(1, func(Time) { count++; e.Stop() })
	e.At(2, func(Time) { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d after Stop, want 1", count)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	// Run can resume after a stop.
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d after resume, want 2", count)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := New()
	e.At(100, func(now Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func(Time) {})
	})
	e.Run()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func(Time) {})
}

// Property: for any set of scheduled times, events fire in sorted order
// and the engine clock is monotonically non-decreasing.
func TestEngineSortedDeliveryProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := New()
		var fired []Time
		for _, r := range raw {
			at := Time(r)
			e.At(at, func(now Time) { fired = append(fired, now) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		want := make([]Time, len(raw))
		for i, r := range raw {
			want[i] = Time(r)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: interleaving scheduling and execution preserves causality:
// an event handler scheduling into the future always runs that child at
// a time >= its own timestamp.
func TestEngineCausalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := New()
	violations := 0
	var spawn Event
	depth := 0
	spawn = func(now Time) {
		if e.Now() != now {
			violations++
		}
		if depth < 5000 {
			depth++
			e.After(Time(rng.Intn(1000)), spawn)
		}
	}
	for i := 0; i < 50; i++ {
		e.At(Time(rng.Intn(100)), spawn)
	}
	last := Time(-1)
	for e.Pending() > 0 {
		e.step()
		if e.Now() < last {
			t.Fatalf("clock went backwards: %v < %v", e.Now(), last)
		}
		last = e.Now()
	}
	if violations > 0 {
		t.Errorf("%d causality violations", violations)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97), func(Time) {})
		}
		e.Run()
	}
}
