package sim

import (
	"testing"
)

// TestLaneOrderingAtSameTime verifies that events at one timestamp run
// in ascending (lane ID, per-lane order), with lane-0 (At/AtArg) events
// first — the canonical order the sharded fabric reproduces.
func TestLaneOrderingAtSameTime(t *testing.T) {
	e := New()
	l1 := NewLane(1)
	l2 := NewLane(2)
	var got []string
	rec := func(tag string) Event { return func(Time) { got = append(got, tag) } }

	// Schedule out of lane order on purpose.
	e.AtLane(10, &l2, rec("l2-a"))
	e.AtLane(10, &l1, rec("l1-a"))
	e.At(10, rec("ctl-a"))
	e.AtLane(10, &l1, rec("l1-b"))
	e.AtLane(10, &l2, rec("l2-b"))
	e.At(10, rec("ctl-b"))
	e.Run()

	want := []string{"ctl-a", "ctl-b", "l1-a", "l1-b", "l2-a", "l2-b"}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

// TestPushKeyedReplaysLaneOrder verifies that staging keys on one engine
// and replaying them on another via PushKeyed reproduces the original
// execution order, regardless of push order.
func TestPushKeyedReplaysLaneOrder(t *testing.T) {
	// Reference: one engine, two lanes, interleaved scheduling.
	type ev struct {
		at  Time
		key uint64
		tag string
	}
	l1 := NewLane(1)
	l2 := NewLane(2)
	staged := []ev{
		{at: 5, key: l1.NextKey(), tag: "a"},
		{at: 5, key: l2.NextKey(), tag: "b"},
		{at: 5, key: l1.NextKey(), tag: "c"},
		{at: 3, key: l2.NextKey(), tag: "d"},
	}
	var got []string
	fn := func(_ Time, arg any, _ int64) { got = append(got, arg.(string)) }

	// Push in reverse order; keys alone must restore (at, lane) order.
	e := New()
	for i := len(staged) - 1; i >= 0; i-- {
		e.PushKeyed(staged[i].at, staged[i].key, fn, staged[i].tag, 0)
	}
	e.Run()

	want := []string{"d", "a", "c", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

// TestRunBeforeWindow verifies the [now, end) window semantics: events
// strictly before the end run, events at the end stay queued, and the
// clock parks on the barrier.
func TestRunBeforeWindow(t *testing.T) {
	e := New()
	var ran []Time
	rec := func(now Time) { ran = append(ran, now) }
	e.At(10, rec)
	e.At(20, rec)
	e.At(30, rec)

	e.RunBefore(20)
	if len(ran) != 1 || ran[0] != 10 {
		t.Fatalf("RunBefore(20) ran %v, want [10]", ran)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want 20", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}

	e.RunBefore(31)
	if len(ran) != 3 {
		t.Fatalf("ran %v, want all three", ran)
	}
	if e.Now() != 31 {
		t.Fatalf("Now = %v, want 31", e.Now())
	}
}

// TestAdvanceTo verifies the no-skip and no-rewind guards.
func TestAdvanceTo(t *testing.T) {
	e := New()
	e.AdvanceTo(100)
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}

	e.At(150, func(Time) {})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("AdvanceTo past a pending event did not panic")
			}
		}()
		e.AdvanceTo(200)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("AdvanceTo backwards did not panic")
			}
		}()
		e.AdvanceTo(50)
	}()
}

// TestNextAt exercises the queue peek.
func TestNextAt(t *testing.T) {
	e := New()
	if _, ok := e.NextAt(); ok {
		t.Fatal("NextAt on empty queue reported an event")
	}
	e.At(42, func(Time) {})
	e.At(7, func(Time) {})
	at, ok := e.NextAt()
	if !ok || at != 7 {
		t.Fatalf("NextAt = %v,%v, want 7,true", at, ok)
	}
}

// TestLaneIDBounds verifies lane ID validation.
func TestLaneIDBounds(t *testing.T) {
	for _, id := range []uint64{0, maxLaneID + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewLane(%d) did not panic", id)
				}
			}()
			NewLane(id)
		}()
	}
	NewLane(1)
	NewLane(maxLaneID)
}
