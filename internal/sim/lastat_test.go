package sim

import "testing"

// TestLastEventAt pins the semantics the engine profiler's used-width
// measurement relies on: after a Run* call, LastEventAt is the
// timestamp of the last event that call executed, or the clock at entry
// when it executed none (so an empty window reads as zero use).
func TestLastEventAt(t *testing.T) {
	e := New()
	e.At(10, func(Time) {})
	e.At(30, func(Time) {})

	e.RunUntil(50) // executes both, parks the clock on 50
	if got := e.LastEventAt(); got != 30 {
		t.Errorf("after RunUntil(50): LastEventAt = %v, want 30", got)
	}
	if e.Now() != 50 {
		t.Errorf("Now = %v, want 50", e.Now())
	}

	e.RunUntil(80) // nothing pending: LastEventAt is the entry clock
	if got := e.LastEventAt(); got != 50 {
		t.Errorf("after empty RunUntil(80): LastEventAt = %v, want 50", got)
	}

	e.At(90, func(Time) {})
	e.RunBefore(90) // exclusive end: the event at 90 must not run
	if got := e.LastEventAt(); got != 80 {
		t.Errorf("after empty RunBefore(90): LastEventAt = %v, want 80", got)
	}
	e.Run()
	if got := e.LastEventAt(); got != 90 {
		t.Errorf("after Run: LastEventAt = %v, want 90", got)
	}
}
