package link

import (
	"testing"

	"epnet/internal/sim"
)

// BenchmarkStartTransmit measures the per-packet channel cost.
func BenchmarkStartTransmit(b *testing.B) {
	c := MustChannel("bench", DefaultLadder())
	now := sim.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = c.StartTransmit(now, 2048)
	}
}

// BenchmarkEpochCycle measures the controller-visible epoch operations.
func BenchmarkEpochCycle(b *testing.B) {
	c := MustChannel("bench", DefaultLadder())
	now := sim.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 10 * sim.Microsecond
		_ = c.EpochUtilization(now)
		c.ResetEpoch(now)
	}
}
