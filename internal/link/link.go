// Package link models plesiochronous high-speed channels: serialized
// multi-lane links whose data rate (lane count x per-lane rate) can be
// reconfigured at runtime, at the cost of a reactivation period during
// which the channel carries no data (§3.1 of the paper).
//
// A Channel is one unidirectional half of a physical link. It tracks its
// current rate, its reconfiguration state machine, and a time-weighted
// account of how long it has spent at every rate — the raw data behind
// the paper's Figures 7 and 8.
package link

import (
	"fmt"
	"sort"

	"epnet/internal/sim"
)

// Rate is a link data rate in bits per second.
type Rate int64

// Standard InfiniBand-style rates (Table 2 of the paper). The evaluation
// uses the five-step ladder 2.5 -> 5 -> 10 -> 20 -> 40 Gb/s.
const (
	Gbps Rate = 1_000_000_000

	Rate2_5G Rate = 2_500_000_000  // 1x SDR
	Rate5G   Rate = 5_000_000_000  // 1x DDR
	Rate10G  Rate = 10_000_000_000 // 1x QDR / 4x SDR
	Rate20G  Rate = 20_000_000_000 // 4x DDR
	Rate40G  Rate = 40_000_000_000 // 4x QDR
)

// String formats a rate in Gb/s.
func (r Rate) String() string {
	g := float64(r) / float64(Gbps)
	return fmt.Sprintf("%gGb/s", g)
}

// Gbps returns the rate as a floating point number of Gb/s.
func (r Rate) GbpsF() float64 { return float64(r) / float64(Gbps) }

// TransmitTime returns the serialization time of n bytes at rate r.
func (r Rate) TransmitTime(n int) sim.Time {
	if r <= 0 {
		panic(fmt.Sprintf("link: transmit at non-positive rate %d", r))
	}
	// bits * ps/s / (bits/s) = ps; compute carefully to avoid overflow:
	// n*8 * 1e12 / r. n up to ~1e9 is safe in int64 after reordering.
	bits := int64(n) * 8
	return sim.Time(bits * (1_000_000_000_000 / int64(r/1000)) / 1000)
}

// RateLadder is the ordered set of rates a channel can operate at.
type RateLadder []Rate

// DefaultLadder is the evaluation ladder of §4.1: 40 Gb/s maximum,
// detunable to 20, 10, 5 and 2.5 Gb/s.
func DefaultLadder() RateLadder {
	return RateLadder{Rate2_5G, Rate5G, Rate10G, Rate20G, Rate40G}
}

// Validate checks that the ladder is non-empty, strictly increasing and
// all-positive.
func (l RateLadder) Validate() error {
	if len(l) == 0 {
		return fmt.Errorf("link: empty rate ladder")
	}
	for i, r := range l {
		if r <= 0 {
			return fmt.Errorf("link: non-positive rate %d in ladder", r)
		}
		if i > 0 && l[i-1] >= r {
			return fmt.Errorf("link: ladder not strictly increasing at index %d", i)
		}
	}
	return nil
}

// Min and Max return the slowest and fastest rates of the ladder.
func (l RateLadder) Min() Rate { return l[0] }
func (l RateLadder) Max() Rate { return l[len(l)-1] }

// Index returns the position of r in the ladder, or -1.
func (l RateLadder) Index(r Rate) int {
	for i, v := range l {
		if v == r {
			return i
		}
	}
	return -1
}

// Down returns the next rate below r (or r itself at the minimum).
func (l RateLadder) Down(r Rate) Rate {
	i := l.Index(r)
	if i < 0 {
		panic(fmt.Sprintf("link: rate %v not on ladder", r))
	}
	if i == 0 {
		return r
	}
	return l[i-1]
}

// Up returns the next rate above r (or r itself at the maximum).
func (l RateLadder) Up(r Rate) Rate {
	i := l.Index(r)
	if i < 0 {
		panic(fmt.Sprintf("link: rate %v not on ladder", r))
	}
	if i == len(l)-1 {
		return r
	}
	return l[i+1]
}

// State is the operational state of a channel.
type State uint8

const (
	// Active: the channel is carrying (or ready to carry) data.
	Active State = iota
	// Reconfiguring: the channel is re-locking CDR / retraining lanes
	// after a rate change and cannot carry data.
	Reconfiguring
	// Off: the channel is powered down (dynamic topologies, §5.1).
	Off
)

func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Reconfiguring:
		return "reconfiguring"
	case Off:
		return "off"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Mode describes how a rate is realized as lanes x per-lane signaling,
// mirroring InfiniBand's 1x/4x SDR/DDR/QDR modes (Table 2). The
// reactivation penalty differs: a pure signaling-rate change only
// re-locks the receive CDR (~50-100 ns) while changing the number of
// active lanes takes microseconds (§3.1).
type Mode struct {
	Lanes    int
	LaneRate Rate
}

// Total returns the aggregate data rate of the mode.
func (m Mode) Total() Rate { return Rate(int64(m.Lanes) * int64(m.LaneRate)) }

// InfiniBandModes returns the modes of Table 2 that realize the default
// ladder: 1x SDR/DDR/QDR and 4x SDR/DDR/QDR.
func InfiniBandModes() []Mode {
	return []Mode{
		{1, Rate2_5G}, // 1x SDR
		{1, Rate5G},   // 1x DDR
		{1, Rate10G},  // 1x QDR
		{4, Rate2_5G}, // 4x SDR
		{4, Rate5G},   // 4x DDR
		{4, Rate10G},  // 4x QDR
	}
}

// ModeFor picks the preferred mode realizing rate r: the fewest lanes
// (lower power) among modes whose total matches.
func ModeFor(r Rate, modes []Mode) (Mode, bool) {
	var best Mode
	found := false
	for _, m := range modes {
		if m.Total() != r {
			continue
		}
		if !found || m.Lanes < best.Lanes {
			best = m
			found = true
		}
	}
	return best, found
}

// ReactivationModel computes the reactivation time for a mode change.
type ReactivationModel struct {
	// CDRLock is the penalty when only the signaling rate changes
	// (digital CDR re-lock, ~50-100 ns per §3.1).
	CDRLock sim.Time
	// LaneChange is the penalty when the number of active lanes changes
	// (lane retraining, on the order of microseconds).
	LaneChange sim.Time
}

// DefaultReactivation returns the paper's conservative defaults: a flat
// 1 us is used in the evaluation "no matter what mode the link is
// entering"; the detailed model exposes the 100 ns CDR-only path used
// in the sensitivity discussion.
func DefaultReactivation() ReactivationModel {
	return ReactivationModel{
		CDRLock:    100 * sim.Nanosecond,
		LaneChange: 1 * sim.Microsecond,
	}
}

// Penalty returns the reactivation time for switching between two modes.
func (m ReactivationModel) Penalty(from, to Mode) sim.Time {
	if from == to {
		return 0
	}
	if from.Lanes == to.Lanes {
		return m.CDRLock
	}
	return m.LaneChange
}

// Occupancy is a time-weighted account of channel state: how long the
// channel spent at each rate (while Active or Reconfiguring toward that
// rate) and how long it was Off.
type Occupancy struct {
	AtRate map[Rate]sim.Time
	Off    sim.Time
	Total  sim.Time
}

// Fraction returns the share of total time spent at rate r.
func (o Occupancy) Fraction(r Rate) float64 {
	if o.Total == 0 {
		return 0
	}
	return float64(o.AtRate[r]) / float64(o.Total)
}

// OffFraction returns the share of total time spent powered off.
func (o Occupancy) OffFraction() float64 {
	if o.Total == 0 {
		return 0
	}
	return float64(o.Off) / float64(o.Total)
}

// Rates returns the rates present in the occupancy, ascending.
func (o Occupancy) Rates() []Rate {
	out := make([]Rate, 0, len(o.AtRate))
	for r := range o.AtRate {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Channel is one unidirectional half of a physical link. It is a passive
// model object: the fabric drives it (transmission occupancy) and the
// energy-proportional controller reconfigures it. All methods take the
// current simulation time explicitly so the channel composes with any
// scheduler.
type Channel struct {
	// Identity, for reports.
	Name string

	ladder RateLadder
	rate   Rate
	state  State

	// cap, when non-zero, pins the channel at or below this rate: a
	// degraded lane keeps the SerDes from training its full mode
	// (fault injection). SetRate and PowerOn clamp against it.
	cap Rate

	// reconfigUntil is when the current reactivation completes.
	reconfigUntil sim.Time

	// busyUntil is when the in-flight transmission completes.
	busyUntil sim.Time

	// Accounting.
	lastChange     sim.Time
	accountedSince sim.Time
	atRate         map[Rate]sim.Time
	offTime        sim.Time

	// Epoch utilization accounting. Utilization is measured as the
	// fraction of epoch time the channel spent serializing bits, which
	// pro-rates transmissions that straddle epoch boundaries (a 2 KB
	// packet at 2.5 Gb/s takes 6.5 us — longer than a short epoch).
	busyBase         sim.Time // completed transmissions' total busy time
	curStart, curEnd sim.Time // the in-flight (or last) transmission
	epochBusyMark    sim.Time // busyUpTo at the last ResetEpoch
	epochResetAt     sim.Time

	bytesThisEpoch int64
	totalBytes     int64
	totalPackets   int64
}

// NewChannel creates an Active channel at the ladder's maximum rate.
func NewChannel(name string, ladder RateLadder) (*Channel, error) {
	if err := ladder.Validate(); err != nil {
		return nil, err
	}
	c := &Channel{Name: name}
	c.Init(ladder)
	return c, nil
}

// Init initializes c in place as an Active channel at the ladder's
// maximum rate — the value-type counterpart of NewChannel for callers
// that keep channels in dense backing arrays (one allocation for the
// whole fabric instead of one per channel). The ladder must already be
// validated; a fabric validates its shared ladder once. Any prior state
// of c except Name is discarded; accounting maps are allocated lazily
// on the first rate transition, so an untouched channel costs exactly
// its struct size.
func (c *Channel) Init(ladder RateLadder) {
	*c = Channel{
		Name:   c.Name,
		ladder: ladder,
		rate:   ladder.Max(),
		state:  Active,
	}
}

// MustChannel is NewChannel that panics on error.
func MustChannel(name string, ladder RateLadder) *Channel {
	c, err := NewChannel(name, ladder)
	if err != nil {
		panic(err)
	}
	return c
}

// Ladder returns the channel's rate ladder.
func (c *Channel) Ladder() RateLadder { return c.ladder }

// Rate returns the current configured rate. During reconfiguration this
// is the rate being configured.
func (c *Channel) Rate() Rate { return c.rate }

// State returns the current operational state at time now, folding in
// any reactivation that has completed.
func (c *Channel) State(now sim.Time) State {
	if c.state == Reconfiguring && now >= c.reconfigUntil {
		return Active
	}
	return c.state
}

// account closes the time slice since lastChange against the current
// rate/state.
func (c *Channel) account(now sim.Time) {
	dt := now - c.lastChange
	if dt < 0 {
		panic(fmt.Sprintf("link %s: time went backwards (%v -> %v)", c.Name, c.lastChange, now))
	}
	if dt == 0 {
		c.lastChange = now
		return
	}
	if c.state == Off {
		c.offTime += dt
	} else {
		// Reconfiguration time is charged at the target rate, a
		// conservative choice: the SerDes is powered while re-locking.
		// The map is lazy: channels that never close an accounting slice
		// (idle links in a fabric of hundreds of thousands) never pay
		// for it.
		if c.atRate == nil {
			c.atRate = make(map[Rate]sim.Time, len(c.ladder))
		}
		c.atRate[c.rate] += dt
	}
	c.lastChange = now
}

// SetRate reconfigures the channel to rate r, entering Reconfiguring for
// the given reactivation time. It is a no-op when the rate is unchanged
// and the channel is active. Setting a rate on an Off channel powers it
// back on (also paying the reactivation time).
func (c *Channel) SetRate(now sim.Time, r Rate, reactivation sim.Time) {
	if c.ladder.Index(r) < 0 {
		panic(fmt.Sprintf("link %s: rate %v not on ladder", c.Name, r))
	}
	r = c.ClampRate(r)
	if c.state != Off && c.rate == r && c.State(now) == Active {
		return
	}
	c.account(now)
	c.rate = r
	c.state = Reconfiguring
	c.reconfigUntil = now + reactivation
	if reactivation == 0 {
		c.state = Active
	}
	// An in-flight transmission is abandoned by reconfiguration only in
	// the sense that the channel cannot start a new one; the fabric
	// serializes SetRate after transmission completion, and we defend
	// against overlap by extending availability.
	if c.busyUntil < c.reconfigUntil {
		c.busyUntil = c.reconfigUntil
	}
}

// PowerOff powers the channel down (dynamic topologies, §5.1).
func (c *Channel) PowerOff(now sim.Time) {
	if c.state == Off {
		return
	}
	c.account(now)
	c.state = Off
}

// PowerOn powers the channel back up at rate r, paying reactivation.
func (c *Channel) PowerOn(now sim.Time, r Rate, reactivation sim.Time) {
	if c.state != Off {
		return
	}
	c.account(now)
	c.state = Active
	c.rate = c.ClampRate(r)
	if reactivation > 0 {
		c.state = Reconfiguring
		c.reconfigUntil = now + reactivation
		if c.busyUntil < c.reconfigUntil {
			c.busyUntil = c.reconfigUntil
		}
	}
}

// SetRateCap limits the channel to rates at or below cap — a degraded
// lane pinning the SerDes below its full mode. cap must be on the
// ladder; cap 0 removes the limit. An Active channel running above a
// new cap is immediately retuned down to it, paying reactivation; an
// Off channel just remembers the cap for its next PowerOn. Raising or
// clearing the cap never retunes by itself — the rate controller (or
// RestoreRate) decides when to climb back.
func (c *Channel) SetRateCap(now sim.Time, cap Rate, reactivation sim.Time) {
	if cap != 0 && c.ladder.Index(cap) < 0 {
		panic(fmt.Sprintf("link %s: rate cap %v not on ladder", c.Name, cap))
	}
	c.cap = cap
	if cap != 0 && c.state != Off && c.rate > cap {
		c.SetRate(now, cap, reactivation)
	}
}

// RateCap returns the current rate cap (0 = uncapped).
func (c *Channel) RateCap() Rate { return c.cap }

// ClampRate returns r limited to the channel's rate cap: the largest
// ladder rate <= cap when r exceeds it, else r unchanged.
func (c *Channel) ClampRate(r Rate) Rate {
	if c.cap == 0 || r <= c.cap {
		return r
	}
	best := c.ladder.Min()
	for _, v := range c.ladder {
		if v <= c.cap && v > best {
			best = v
		}
	}
	return best
}

// AvailableAt returns the earliest time >= now at which the channel can
// begin a new transmission: after any reactivation and any in-flight
// packet. Off channels are never available; the second result is false.
func (c *Channel) AvailableAt(now sim.Time) (sim.Time, bool) {
	if c.state == Off {
		return 0, false
	}
	t := now
	if c.state == Reconfiguring && c.reconfigUntil > t {
		t = c.reconfigUntil
	}
	if c.busyUntil > t {
		t = c.busyUntil
	}
	return t, true
}

// ReconfigUntil returns the deadline of an in-progress reactivation, or
// zero when the channel is not reconfiguring at now. It lets callers
// split a wait reported by AvailableAt into its retune portion
// (now..reconfigUntil) and its serialization-busy remainder.
func (c *Channel) ReconfigUntil(now sim.Time) sim.Time {
	if c.state == Reconfiguring && c.reconfigUntil > now {
		return c.reconfigUntil
	}
	return 0
}

// StartTransmit begins transmitting n bytes at time start (which must be
// >= the channel's available time) and returns the completion time.
func (c *Channel) StartTransmit(start sim.Time, n int) sim.Time {
	avail, ok := c.AvailableAt(start)
	if !ok {
		panic(fmt.Sprintf("link %s: transmit on powered-off channel", c.Name))
	}
	if start < avail {
		panic(fmt.Sprintf("link %s: transmit at %v before available %v", c.Name, start, avail))
	}
	if c.state == Reconfiguring {
		// Reactivation has completed (start >= reconfigUntil).
		c.state = Active
	}
	done := start + c.rate.TransmitTime(n)
	c.busyUntil = done
	c.busyBase += c.curEnd - c.curStart
	c.curStart, c.curEnd = start, done
	c.bytesThisEpoch += int64(n)
	c.totalBytes += int64(n)
	c.totalPackets++
	return done
}

// busyUpTo returns the cumulative transmission (busy) time through t.
func (c *Channel) busyUpTo(t sim.Time) sim.Time {
	b := c.busyBase
	if end := min(c.curEnd, t); end > c.curStart {
		b += end - c.curStart
	}
	return b
}

// BusyTime returns the cumulative transmission (busy) time through
// now, monotonically increasing over the channel's whole life — it is
// deliberately NOT reset by ResetAccounting, so interval deltas taken
// across the warmup boundary (the utilization heatmap's cells) stay
// well defined.
func (c *Channel) BusyTime(now sim.Time) sim.Time { return c.busyUpTo(now) }

func min(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}

// EpochUtilization returns the channel utilization over the epoch that
// ran from the last ResetEpoch to now: the fraction of that window the
// channel spent serializing bits. Transmissions straddling the epoch
// boundary contribute only their overlap, so utilization is always in
// [0, 1]. This is exactly the signal the paper's heuristic consumes: "if
// we have data to send, and credits to send it, then the utilization
// will go up" (§3.3).
func (c *Channel) EpochUtilization(now sim.Time) float64 {
	window := now - c.epochResetAt
	if window <= 0 {
		return 0
	}
	busy := c.busyUpTo(now) - c.epochBusyMark
	return float64(busy) / float64(window)
}

// EpochBytes returns the bytes whose transmission started in the
// current epoch.
func (c *Channel) EpochBytes() int64 { return c.bytesThisEpoch }

// ResetEpoch starts a new utilization measurement epoch at time now.
func (c *Channel) ResetEpoch(now sim.Time) {
	c.bytesThisEpoch = 0
	c.epochBusyMark = c.busyUpTo(now)
	c.epochResetAt = now
}

// TotalBytes returns the bytes ever transmitted on the channel.
func (c *Channel) TotalBytes() int64 { return c.totalBytes }

// TotalPackets returns the packets ever transmitted on the channel.
func (c *Channel) TotalPackets() int64 { return c.totalPackets }

// ResetAccounting zeroes the occupancy and lifetime counters at time
// now, so subsequent Occupancy/MeanUtilization calls measure only the
// post-reset (steady-state) window. The channel's rate and state are
// preserved.
func (c *Channel) ResetAccounting(now sim.Time) {
	c.account(now)
	c.atRate = nil // reallocated lazily by the next account slice
	c.offTime = 0
	c.totalBytes = 0
	c.totalPackets = 0
	c.bytesThisEpoch = 0
	c.epochBusyMark = c.busyUpTo(now)
	c.epochResetAt = now
	c.accountedSince = now
}

// AccountedSince returns the time accounting last started (zero or the
// last ResetAccounting call).
func (c *Channel) AccountedSince() sim.Time { return c.accountedSince }

// Occupancy finalizes accounting at time now and returns the
// time-at-rate distribution.
func (c *Channel) Occupancy(now sim.Time) Occupancy {
	c.account(now)
	at := make(map[Rate]sim.Time, len(c.atRate))
	var total sim.Time
	for r, t := range c.atRate {
		at[r] = t
		total += t
	}
	total += c.offTime
	return Occupancy{AtRate: at, Off: c.offTime, Total: total}
}

// MeanUtilization returns bytes since accounting began over the
// corresponding capacity at the maximum rate — the "average utilization"
// the paper compares against ideal energy proportionality.
func (c *Channel) MeanUtilization(now sim.Time) float64 {
	window := now - c.accountedSince
	if window <= 0 {
		return 0
	}
	bits := float64(c.totalBytes) * 8
	return bits / (float64(c.ladder.Max()) * window.Seconds())
}
