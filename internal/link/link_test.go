package link

import (
	"testing"
	"testing/quick"

	"epnet/internal/sim"
)

func TestRateString(t *testing.T) {
	if Rate40G.String() != "40Gb/s" {
		t.Errorf("Rate40G = %q", Rate40G.String())
	}
	if Rate2_5G.String() != "2.5Gb/s" {
		t.Errorf("Rate2_5G = %q", Rate2_5G.String())
	}
	if Rate10G.GbpsF() != 10 {
		t.Errorf("GbpsF = %v", Rate10G.GbpsF())
	}
}

func TestTransmitTime(t *testing.T) {
	cases := []struct {
		rate Rate
		n    int
		want sim.Time
	}{
		{Rate40G, 1, 200 * sim.Picosecond},       // 8 bits at 40G = 200 ps
		{Rate40G, 2048, 409600 * sim.Picosecond}, // 2 KiB packet ~ 410 ns
		{Rate2_5G, 1, 3200 * sim.Picosecond},     // 16x slower than 40G
		{Rate10G, 1250, sim.Microsecond},         // 10000 bits at 10G = 1 us
	}
	for _, c := range cases {
		if got := c.rate.TransmitTime(c.n); got != c.want {
			t.Errorf("TransmitTime(%v, %d) = %v, want %v", c.rate, c.n, got, c.want)
		}
	}
}

func TestTransmitTimeScalesInversely(t *testing.T) {
	// Halving the rate doubles the time, for every ladder step.
	l := DefaultLadder()
	n := 4096
	for i := 1; i < len(l); i++ {
		slow := l[i-1].TransmitTime(n)
		fast := l[i].TransmitTime(n)
		if slow != 2*fast {
			t.Errorf("rate %v->%v: %v vs %v, want exact 2x", l[i-1], l[i], slow, fast)
		}
	}
}

func TestLadder(t *testing.T) {
	l := DefaultLadder()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.Min() != Rate2_5G || l.Max() != Rate40G {
		t.Fatalf("ladder bounds %v..%v", l.Min(), l.Max())
	}
	if l.Down(Rate2_5G) != Rate2_5G {
		t.Error("Down saturates at minimum")
	}
	if l.Up(Rate40G) != Rate40G {
		t.Error("Up saturates at maximum")
	}
	if l.Down(Rate40G) != Rate20G || l.Up(Rate10G) != Rate20G {
		t.Error("Up/Down neighbors wrong")
	}
	if l.Index(Rate10G) != 2 || l.Index(Rate(1)) != -1 {
		t.Error("Index wrong")
	}
}

func TestLadderValidation(t *testing.T) {
	if err := (RateLadder{}).Validate(); err == nil {
		t.Error("empty ladder accepted")
	}
	if err := (RateLadder{Rate10G, Rate5G}).Validate(); err == nil {
		t.Error("non-increasing ladder accepted")
	}
	if err := (RateLadder{0, Rate5G}).Validate(); err == nil {
		t.Error("zero rate accepted")
	}
	if err := (RateLadder{Rate5G, Rate5G}).Validate(); err == nil {
		t.Error("duplicate rate accepted")
	}
}

// TestInfiniBandTable2 checks the rate modes of the paper's Table 2.
func TestInfiniBandTable2(t *testing.T) {
	modes := InfiniBandModes()
	want := map[Mode]Rate{
		{1, Rate2_5G}: Rate2_5G, // 1x SDR = 2.5
		{1, Rate5G}:   Rate5G,   // 1x DDR = 5
		{1, Rate10G}:  Rate10G,  // 1x QDR = 10
		{4, Rate2_5G}: Rate10G,  // 4x SDR = 10
		{4, Rate5G}:   Rate20G,  // 4x DDR = 20
		{4, Rate10G}:  Rate40G,  // 4x QDR = 40
	}
	if len(modes) != len(want) {
		t.Fatalf("%d modes, want %d", len(modes), len(want))
	}
	for _, m := range modes {
		if got := m.Total(); got != want[m] {
			t.Errorf("mode %dx %v = %v, want %v", m.Lanes, m.LaneRate, got, want[m])
		}
	}
	// 10G is realizable as 1x QDR or 4x SDR; prefer fewer lanes.
	m, ok := ModeFor(Rate10G, modes)
	if !ok || m.Lanes != 1 {
		t.Errorf("ModeFor(10G) = %+v ok=%v, want 1x QDR", m, ok)
	}
	if _, ok := ModeFor(Rate(3), modes); ok {
		t.Error("ModeFor(unrealizable) succeeded")
	}
}

func TestReactivationModel(t *testing.T) {
	m := DefaultReactivation()
	sdr1 := Mode{1, Rate2_5G}
	ddr1 := Mode{1, Rate5G}
	ddr4 := Mode{4, Rate5G}
	if got := m.Penalty(sdr1, sdr1); got != 0 {
		t.Errorf("same mode penalty = %v, want 0", got)
	}
	if got := m.Penalty(sdr1, ddr1); got != m.CDRLock {
		t.Errorf("rate-only change penalty = %v, want CDR lock %v", got, m.CDRLock)
	}
	if got := m.Penalty(ddr1, ddr4); got != m.LaneChange {
		t.Errorf("lane change penalty = %v, want %v", got, m.LaneChange)
	}
}

func TestChannelLifecycle(t *testing.T) {
	c := MustChannel("test", DefaultLadder())
	if c.Rate() != Rate40G {
		t.Fatalf("initial rate %v, want max", c.Rate())
	}
	if c.State(0) != Active {
		t.Fatalf("initial state %v", c.State(0))
	}
	// Transmit 1000 bytes at t=0.
	done := c.StartTransmit(0, 1000)
	if done != Rate40G.TransmitTime(1000) {
		t.Fatalf("done = %v", done)
	}
	avail, ok := c.AvailableAt(0)
	if !ok || avail != done {
		t.Fatalf("AvailableAt = %v,%v want %v", avail, ok, done)
	}
	// Reconfigure down at the completion time with 1us reactivation.
	c.SetRate(done, Rate20G, sim.Microsecond)
	if c.State(done) != Reconfiguring {
		t.Fatalf("state after SetRate = %v", c.State(done))
	}
	if c.State(done+sim.Microsecond) != Active {
		t.Fatalf("state after reactivation = %v", c.State(done+sim.Microsecond))
	}
	avail, ok = c.AvailableAt(done)
	if !ok || avail != done+sim.Microsecond {
		t.Fatalf("AvailableAt during reconfig = %v", avail)
	}
	// Transmit after reactivation at the new rate.
	start := avail
	done2 := c.StartTransmit(start, 1000)
	if done2-start != Rate20G.TransmitTime(1000) {
		t.Fatalf("second transmit took %v", done2-start)
	}
	if c.TotalBytes() != 2000 || c.TotalPackets() != 2 {
		t.Fatalf("totals: %d bytes %d pkts", c.TotalBytes(), c.TotalPackets())
	}
}

func TestChannelEpochUtilization(t *testing.T) {
	c := MustChannel("u", DefaultLadder())
	epoch := 10 * sim.Microsecond
	// 40G for 10us can carry 50000 bytes; send 25000: busy 5us of 10us.
	c.StartTransmit(0, 25000)
	got := c.EpochUtilization(epoch)
	if got < 0.499 || got > 0.501 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
	c.ResetEpoch(epoch)
	if c.EpochBytes() != 0 {
		t.Fatal("ResetEpoch did not clear")
	}
	if got := c.EpochUtilization(2 * epoch); got != 0 {
		t.Fatalf("utilization after reset = %v", got)
	}
	if c.EpochUtilization(0) != 0 {
		t.Error("zero window should be 0")
	}
}

// A transmission straddling an epoch boundary contributes only its
// overlap to each epoch, so utilization never exceeds 1 and slow links
// are not starved of signal.
func TestChannelEpochUtilizationStraddle(t *testing.T) {
	c := MustChannel("s", DefaultLadder())
	c.SetRate(0, Rate2_5G, 0)
	// 2048 bytes at 2.5G = 6.5536us, crossing several 1us epochs.
	c.StartTransmit(0, 2048)
	epoch := sim.Microsecond
	for i := sim.Time(1); i <= 6; i++ {
		got := c.EpochUtilization(i * epoch)
		if got < 0.999 || got > 1.001 {
			t.Fatalf("epoch %d utilization = %v, want 1.0", i, got)
		}
		c.ResetEpoch(i * epoch)
	}
	// Epoch 7 covers only the final 0.5536us of the transmission.
	got := c.EpochUtilization(7 * epoch)
	if got < 0.55 || got > 0.56 {
		t.Fatalf("final epoch utilization = %v, want ~0.554", got)
	}
}

func TestChannelOccupancy(t *testing.T) {
	c := MustChannel("o", DefaultLadder())
	// 0-10us at 40G, then reconfigure (1us) to 2.5G, run to 20us, off to 30us.
	c.SetRate(10*sim.Microsecond, Rate2_5G, sim.Microsecond)
	c.PowerOff(20 * sim.Microsecond)
	occ := c.Occupancy(30 * sim.Microsecond)
	if occ.Total != 30*sim.Microsecond {
		t.Fatalf("total = %v", occ.Total)
	}
	if occ.AtRate[Rate40G] != 10*sim.Microsecond {
		t.Errorf("40G time = %v, want 10us", occ.AtRate[Rate40G])
	}
	if occ.AtRate[Rate2_5G] != 10*sim.Microsecond {
		t.Errorf("2.5G time = %v, want 10us (incl. reactivation)", occ.AtRate[Rate2_5G])
	}
	if occ.Off != 10*sim.Microsecond {
		t.Errorf("off = %v, want 10us", occ.Off)
	}
	if f := occ.Fraction(Rate40G); f < 0.333 || f > 0.334 {
		t.Errorf("Fraction(40G) = %v", f)
	}
	if f := occ.OffFraction(); f < 0.333 || f > 0.334 {
		t.Errorf("OffFraction = %v", f)
	}
	rates := occ.Rates()
	if len(rates) != 2 || rates[0] != Rate2_5G || rates[1] != Rate40G {
		t.Errorf("Rates = %v", rates)
	}
}

func TestChannelPowerCycle(t *testing.T) {
	c := MustChannel("p", DefaultLadder())
	c.PowerOff(sim.Microsecond)
	if _, ok := c.AvailableAt(sim.Microsecond); ok {
		t.Fatal("off channel reported available")
	}
	if c.State(sim.Microsecond) != Off {
		t.Fatal("state not off")
	}
	// Double off is a no-op.
	c.PowerOff(2 * sim.Microsecond)
	c.PowerOn(3*sim.Microsecond, Rate10G, sim.Microsecond)
	if c.Rate() != Rate10G {
		t.Fatalf("rate after PowerOn = %v", c.Rate())
	}
	if c.State(3*sim.Microsecond) != Reconfiguring {
		t.Fatal("PowerOn should pay reactivation")
	}
	// PowerOn on an on channel is a no-op.
	c.PowerOn(5*sim.Microsecond, Rate40G, 0)
	if c.Rate() != Rate10G {
		t.Fatal("PowerOn on active channel changed rate")
	}
	occ := c.Occupancy(10 * sim.Microsecond)
	if occ.Off != 2*sim.Microsecond {
		t.Errorf("off time = %v, want 2us", occ.Off)
	}
}

func TestChannelMeanUtilization(t *testing.T) {
	c := MustChannel("m", DefaultLadder())
	// 50000 bytes in 10us at 40G max = 100% => send 5000 bytes = 10%.
	c.StartTransmit(0, 5000)
	got := c.MeanUtilization(10 * sim.Microsecond)
	if got < 0.099 || got > 0.101 {
		t.Fatalf("MeanUtilization = %v, want 0.10", got)
	}
	if c.MeanUtilization(0) != 0 {
		t.Error("zero time utilization should be 0")
	}
}

func TestChannelSetRateNoopAndPanic(t *testing.T) {
	c := MustChannel("n", DefaultLadder())
	c.SetRate(0, Rate40G, sim.Microsecond) // same rate, active: no-op
	if c.State(0) != Active {
		t.Fatal("no-op SetRate entered reconfiguration")
	}
	defer func() {
		if recover() == nil {
			t.Error("off-ladder rate did not panic")
		}
	}()
	c.SetRate(0, Rate(1234), 0)
}

func TestChannelTransmitBeforeAvailablePanics(t *testing.T) {
	c := MustChannel("x", DefaultLadder())
	c.StartTransmit(0, 1000)
	defer func() {
		if recover() == nil {
			t.Error("overlapping transmit did not panic")
		}
	}()
	c.StartTransmit(0, 1000)
}

// Property: occupancy always sums exactly to elapsed time, across random
// sequences of rate changes and power cycles.
func TestChannelOccupancyConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		c := MustChannel("prop", DefaultLadder())
		now := sim.Time(0)
		for _, op := range ops {
			now += sim.Time(op%97+1) * sim.Nanosecond
			switch op % 5 {
			case 0:
				c.SetRate(now, DefaultLadder()[op%5], sim.Time(op%3)*sim.Nanosecond)
			case 1:
				c.PowerOff(now)
			case 2:
				c.PowerOn(now, Rate10G, sim.Nanosecond)
			case 3:
				if at, ok := c.AvailableAt(now); ok {
					now = at
					c.StartTransmit(now, int(op)+1)
				}
			case 4:
				c.SetRate(now, DefaultLadder()[(op/5)%5], 0)
			}
		}
		end := now + sim.Microsecond
		occ := c.Occupancy(end)
		return occ.Total == end
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChannelResetAccounting(t *testing.T) {
	c := MustChannel("r", DefaultLadder())
	c.StartTransmit(0, 10000)
	c.SetRate(10*sim.Microsecond, Rate10G, sim.Microsecond)
	c.ResetAccounting(20 * sim.Microsecond)
	if c.AccountedSince() != 20*sim.Microsecond {
		t.Fatalf("AccountedSince = %v", c.AccountedSince())
	}
	if c.TotalBytes() != 0 || c.TotalPackets() != 0 {
		t.Fatal("counters not cleared")
	}
	occ := c.Occupancy(30 * sim.Microsecond)
	if occ.Total != 10*sim.Microsecond {
		t.Fatalf("post-reset occupancy total = %v, want 10us", occ.Total)
	}
	if occ.AtRate[Rate10G] != 10*sim.Microsecond {
		t.Fatalf("post-reset time at 10G = %v", occ.AtRate[Rate10G])
	}
	// MeanUtilization measures only the post-reset window: 10G for 10us,
	// send 12500 bytes = 100us*... 12500B*8 = 100000 bits over
	// 40G*10us = 400000 bit capacity -> 0.25.
	avail, _ := c.AvailableAt(30 * sim.Microsecond)
	c.StartTransmit(avail, 12500)
	got := c.MeanUtilization(c.AccountedSince() + 10*sim.Microsecond)
	if got < 0.24 || got > 0.26 {
		t.Fatalf("MeanUtilization = %v, want 0.25", got)
	}
}
