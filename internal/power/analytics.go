package power

import (
	"fmt"

	"epnet/internal/link"
	"epnet/internal/topo"
)

// PartPower is the paper's first-order part power model (§2.2):
// a 36-port switch chip consumes 100 W regardless of which link media it
// drives (144 SerDes at ~0.7 W each), and a host NIC consumes 10 W at
// full utilization.
type PartPower struct {
	SwitchChipWatts float64
	NICWatts        float64
}

// DefaultPartPower returns the paper's assumptions.
func DefaultPartPower() PartPower {
	return PartPower{SwitchChipWatts: 100, NICWatts: 10}
}

// CostModel converts power into operating expenditure.
type CostModel struct {
	DollarsPerKWh float64 // average industrial electricity rate
	PUE           float64 // datacenter power usage effectiveness
	Years         float64 // service life of the network
}

// DefaultCostModel returns the paper's assumptions: $0.07/kWh, PUE 1.6,
// four-year service life.
func DefaultCostModel() CostModel {
	return CostModel{DollarsPerKWh: 0.07, PUE: 1.6, Years: 4}
}

// Dollars returns the electricity cost of drawing watts continuously for
// the model's service life, inflated by PUE.
func (c CostModel) Dollars(watts float64) float64 {
	hours := c.Years * 365 * 24
	return watts / 1000 * hours * c.PUE * c.DollarsPerKWh
}

// TopologyRow is one column of the paper's Table 1.
type TopologyRow struct {
	Name            string
	Hosts           int
	BisectionGbps   float64
	ElectricalLinks int
	OpticalLinks    int
	SwitchChips     int
	PoweredChips    int // chips counted in the power analysis
	TotalWatts      float64
	WattsPerGbps    float64
}

// describeTopology is implemented by both part-count models.
type describeTopology interface {
	Name() string
	ElectricalLinks() int
	OpticalLinks() int
	BisectionGbps(linkGbps float64) float64
}

// FBFLYRow computes the flattened-butterfly column of Table 1.
func FBFLYRow(f *topo.FBFLY, parts PartPower, linkRate link.Rate) TopologyRow {
	pc := topo.FBFLYPartCount{FBFLY: f}
	row := TopologyRow{
		Name:            f.Name(),
		Hosts:           f.NumHosts(),
		BisectionGbps:   pc.BisectionGbps(linkRate.GbpsF()),
		ElectricalLinks: pc.ElectricalLinks(),
		OpticalLinks:    pc.OpticalLinks(),
		SwitchChips:     f.NumSwitches(),
		PoweredChips:    f.NumSwitches(),
	}
	row.TotalWatts = float64(row.PoweredChips)*parts.SwitchChipWatts +
		float64(row.Hosts)*parts.NICWatts
	row.WattsPerGbps = row.TotalWatts / row.BisectionGbps
	return row
}

// ClosRow computes the folded-Clos column of Table 1.
func ClosRow(c *topo.ClosPartCount, parts PartPower, linkRate link.Rate) TopologyRow {
	row := TopologyRow{
		Name:            c.Name(),
		Hosts:           c.Hosts,
		BisectionGbps:   c.BisectionGbps(linkRate.GbpsF()),
		ElectricalLinks: c.ElectricalLinks(),
		OpticalLinks:    c.OpticalLinks(),
		SwitchChips:     c.SwitchChips,
		PoweredChips:    c.PoweredChips,
	}
	row.TotalWatts = float64(row.PoweredChips)*parts.SwitchChipWatts +
		float64(row.Hosts)*parts.NICWatts
	row.WattsPerGbps = row.TotalWatts / row.BisectionGbps
	return row
}

// Table1 holds the paper's Table 1 comparison plus the derived savings
// quoted in the text.
type Table1 struct {
	Clos  TopologyRow
	FBFLY TopologyRow
	// SavingsWatts is the Clos-vs-FBFLY power difference (409,600 W in
	// the paper).
	SavingsWatts float64
	// SavingsDollars is the service-life energy saving of choosing the
	// FBFLY ($1.6M in the paper).
	SavingsDollars float64
	// FBFLYBaselineDollars is the four-year energy cost of the always-on
	// FBFLY ($2.89M in the paper) — the savings still on the table.
	FBFLYBaselineDollars float64
}

// ComputeTable1 reproduces Table 1 for the given host count, chip radix,
// FBFLY shape and assumptions.
func ComputeTable1(hosts, chipRadix int, f *topo.FBFLY, parts PartPower,
	cost CostModel, linkRate link.Rate) (Table1, error) {

	if f.NumHosts() != hosts {
		return Table1{}, fmt.Errorf("power: FBFLY has %d hosts, want %d", f.NumHosts(), hosts)
	}
	if f.Radix() > chipRadix {
		return Table1{}, fmt.Errorf("power: FBFLY needs %d ports but chips have %d", f.Radix(), chipRadix)
	}
	clos, err := topo.NewClosPartCount(hosts, chipRadix)
	if err != nil {
		return Table1{}, err
	}
	t := Table1{
		Clos:  ClosRow(clos, parts, linkRate),
		FBFLY: FBFLYRow(f, parts, linkRate),
	}
	t.SavingsWatts = t.Clos.TotalWatts - t.FBFLY.TotalWatts
	t.SavingsDollars = cost.Dollars(t.SavingsWatts)
	t.FBFLYBaselineDollars = cost.Dollars(t.FBFLY.TotalWatts)
	return t, nil
}

// PaperTable1 computes Table 1 with the paper's exact configuration:
// 32k hosts, 36-port 40 Gb/s switches, 8-ary 5-flat.
func PaperTable1() Table1 {
	t, err := ComputeTable1(32768, 36, topo.MustFBFLY(8, 5, 8),
		DefaultPartPower(), DefaultCostModel(), link.Rate40G)
	if err != nil {
		panic(err)
	}
	return t
}

// Figure1Scenario is one bar group of the paper's Figure 1.
type Figure1Scenario struct {
	Name         string
	ServerWatts  float64
	NetworkWatts float64
}

// NetworkFraction returns the network's share of total power.
func (s Figure1Scenario) NetworkFraction() float64 {
	return s.NetworkWatts / (s.ServerWatts + s.NetworkWatts)
}

// Figure1 models the server-vs-network power comparison: a 32k-server
// cluster (250 W/server at peak) in three scenarios: full utilization;
// 15% utilization with energy-proportional servers; and 15% utilization
// with both servers and network energy proportional.
type Figure1 struct {
	Scenarios []Figure1Scenario
	// NetworkSavingsWatts is the saving from an energy-proportional
	// network at the low-utilization point (975,000 W in the paper).
	NetworkSavingsWatts float64
	// NetworkSavingsDollars over the cost model's service life ($3.8M).
	NetworkSavingsDollars float64
}

// ComputeFigure1 builds Figure 1 for the given cluster.
func ComputeFigure1(servers int, serverPeakWatts, networkWatts, utilization float64,
	cost CostModel) Figure1 {

	full := Figure1Scenario{
		Name:         "100% Utilization",
		ServerWatts:  float64(servers) * serverPeakWatts,
		NetworkWatts: networkWatts,
	}
	epServers := Figure1Scenario{
		Name:         fmt.Sprintf("%.0f%% Utilization, Energy Proportional Servers", utilization*100),
		ServerWatts:  full.ServerWatts * utilization,
		NetworkWatts: networkWatts,
	}
	epBoth := Figure1Scenario{
		Name:         fmt.Sprintf("%.0f%% Utilization, Energy Proportional Servers and Network", utilization*100),
		ServerWatts:  full.ServerWatts * utilization,
		NetworkWatts: networkWatts * utilization,
	}
	f := Figure1{Scenarios: []Figure1Scenario{full, epServers, epBoth}}
	f.NetworkSavingsWatts = epServers.NetworkWatts - epBoth.NetworkWatts
	f.NetworkSavingsDollars = cost.Dollars(f.NetworkSavingsWatts)
	return f
}

// PaperFigure1 computes Figure 1 with the paper's parameters: 32k
// servers at 250 W, the Table 1 folded-Clos network, 15% utilization.
func PaperFigure1() Figure1 {
	t := PaperTable1()
	return ComputeFigure1(32768, 250, t.Clos.TotalWatts, 0.15, DefaultCostModel())
}
