// Package power contains the power models of the paper: per-channel
// power-vs-rate profiles (the measured InfiniBand-style curve of Figure 5
// and the ideally energy-proportional curve of Figure 8b), the
// part-count power analytics behind Table 1 and Figure 1, the
// electricity-cost model, and the ITRS bandwidth-trend data of Figure 6.
package power

import (
	"fmt"
	"sort"

	"epnet/internal/link"
)

// Profile maps a channel's operating point to normalized power, where
// 1.0 is the power of an Active channel at the profile's maximum rate.
type Profile interface {
	// Name identifies the profile in reports.
	Name() string
	// Relative returns the normalized power draw at rate r.
	Relative(r link.Rate) float64
	// Idle returns the normalized power of an Active channel at its
	// configured rate sending only idle symbols. Plesiochronous links
	// are "always on": for the measured profile this equals Relative
	// (the SerDes burns the same power regardless of payload); for the
	// ideal profile it is zero.
	Idle(r link.Rate) float64
	// Off returns the normalized power of a powered-down channel.
	Off() float64
}

// MeasuredPoint is one operating mode of the measured switch profile.
type MeasuredPoint struct {
	Rate     link.Rate
	Relative float64
}

// Measured is the paper's Figure 5 profile: an off-the-shelf InfiniBand
// switch with manually adjustable link rates. Power is far from
// proportional: the slowest mode (2.5 Gb/s) still consumes 42% of
// full-rate power, and even an idle ("always on") link consumes ~36%.
type Measured struct {
	name   string
	points []MeasuredPoint // ascending by rate
	idle   float64
	off    float64
}

// NewMeasured builds a measured profile from explicit points. Points are
// sorted; rates between points use the nearest point at or above the
// requested rate (rates are expected to be configured ladder values).
func NewMeasured(name string, points []MeasuredPoint, idle, off float64) (*Measured, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("power: measured profile needs at least one point")
	}
	ps := append([]MeasuredPoint(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Rate < ps[j].Rate })
	for i, p := range ps {
		if p.Relative < 0 || p.Relative > 1 {
			return nil, fmt.Errorf("power: relative power %v out of [0,1]", p.Relative)
		}
		if i > 0 && ps[i-1].Rate == p.Rate {
			return nil, fmt.Errorf("power: duplicate rate %v", p.Rate)
		}
	}
	if ps[len(ps)-1].Relative != 1 {
		return nil, fmt.Errorf("power: maximum-rate point must be 1.0, got %v", ps[len(ps)-1].Relative)
	}
	return &Measured{name: name, points: ps, idle: idle, off: off}, nil
}

// InfiniBandOptical reproduces Figure 5 for optical-mode links. The
// published anchors are: lowest mode (1x SDR, 2.5 Gb/s) = 42% of full
// power; ~60% power saving available between full rate and the slowest
// mode; idle consumes slightly less than the slowest mode. Intermediate
// modes are interpolated along lane-count and signaling-rate steps:
// within 1x (2.5/5/10 Gb/s) power grows slowly with signaling rate, and
// the 1x -> 4x lane step costs more.
func InfiniBandOptical() *Measured {
	m, err := NewMeasured("infiniband-optical", []MeasuredPoint{
		{link.Rate2_5G, 0.42}, // 1x SDR
		{link.Rate5G, 0.46},   // 1x DDR
		{link.Rate10G, 0.52},  // 1x QDR
		{link.Rate20G, 0.69},  // 4x DDR
		{link.Rate40G, 1.00},  // 4x QDR
	}, 0.36, 0.30)
	if err != nil {
		panic(err)
	}
	return m
}

// InfiniBandCopper is the copper-mode profile: the paper's data shows a
// switch chip uses ~25% less power driving an electrical link than an
// optical one; the curve shape is the same after normalization.
func InfiniBandCopper() *Measured {
	m, err := NewMeasured("infiniband-copper", []MeasuredPoint{
		{link.Rate2_5G, 0.42},
		{link.Rate5G, 0.46},
		{link.Rate10G, 0.52},
		{link.Rate20G, 0.69},
		{link.Rate40G, 1.00},
	}, 0.36, 0.30)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements Profile.
func (m *Measured) Name() string { return m.name }

// Relative implements Profile using the nearest configured point at or
// above r (rates are expected to be ladder values; an off-ladder rate
// above the maximum saturates at 1).
func (m *Measured) Relative(r link.Rate) float64 {
	for _, p := range m.points {
		if r <= p.Rate {
			return p.Relative
		}
	}
	return 1
}

// Idle implements Profile: an always-on measured link burns its
// configured-rate power regardless of payload, so idle at rate r is
// simply Relative(r); the separately tracked idle floor is exposed by
// IdleFloor.
func (m *Measured) Idle(r link.Rate) float64 { return m.Relative(r) }

// IdleFloor is the normalized power of the chip's IDLE mode bar in
// Figure 5.
func (m *Measured) IdleFloor() float64 { return m.idle }

// Off implements Profile. Figure 5 shows "there is not much power saving
// opportunity for powering off links entirely" on current chips.
func (m *Measured) Off() float64 { return m.off }

// Points returns a copy of the profile's configured points.
func (m *Measured) Points() []MeasuredPoint {
	return append([]MeasuredPoint(nil), m.points...)
}

// Ideal is the ideally energy-proportional channel of Figure 8b: power
// is exactly proportional to the configured rate (a 2.5 Gb/s link uses
// 6.25% the power of a 40 Gb/s link), idle links use no power, and off
// is free.
type Ideal struct {
	MaxRate link.Rate
}

// NewIdeal builds an ideal profile normalized to maxRate.
func NewIdeal(maxRate link.Rate) *Ideal { return &Ideal{MaxRate: maxRate} }

// Name implements Profile.
func (i *Ideal) Name() string { return "ideal-proportional" }

// Relative implements Profile.
func (i *Ideal) Relative(r link.Rate) float64 { return float64(r) / float64(i.MaxRate) }

// Idle implements Profile: an ideal channel consumes power only for the
// bits it moves. For time-at-rate based accounting we attribute the
// configured rate's power while Active; a fully ideal network (zero
// reactivation, instant rate match) then consumes exactly its average
// utilization, as the paper describes.
func (i *Ideal) Idle(r link.Rate) float64 { return float64(r) / float64(i.MaxRate) }

// Off implements Profile.
func (i *Ideal) Off() float64 { return 0 }

// AlwaysOn is the baseline profile: channels burn full power at every
// rate — the "always on regardless of whether they are flowing data
// packets" status quo the paper starts from.
type AlwaysOn struct{}

// Name implements Profile.
func (AlwaysOn) Name() string { return "always-on" }

// Relative implements Profile.
func (AlwaysOn) Relative(link.Rate) float64 { return 1 }

// Idle implements Profile.
func (AlwaysOn) Idle(link.Rate) float64 { return 1 }

// Off implements Profile.
func (AlwaysOn) Off() float64 { return 1 }

var (
	_ Profile = (*Measured)(nil)
	_ Profile = (*Ideal)(nil)
	_ Profile = AlwaysOn{}
)

// OccupancyPower converts a channel occupancy into mean normalized power
// under a profile: the time-weighted average of Relative(rate), counting
// Off time at Off() power.
func OccupancyPower(o link.Occupancy, p Profile) float64 {
	if o.Total == 0 {
		return 0
	}
	// Sum in ascending rate order: float addition is order-sensitive at
	// the ULP level, and map iteration order would otherwise leak into
	// reported power values, breaking byte-for-byte run reproducibility.
	var acc float64
	for _, r := range o.Rates() {
		acc += p.Relative(r) * float64(o.AtRate[r])
	}
	acc += p.Off() * float64(o.Off)
	return acc / float64(o.Total)
}
