package power

import (
	"epnet/internal/link"
	"epnet/internal/sim"
	"epnet/internal/telemetry"
)

// Meter reads the instantaneous normalized power of a set of channels
// under one profile: the mean over channels of Relative(configured
// rate), with powered-off channels at Off(). This is the spot value
// whose time-weighted integral OccupancyPower reports at the end of a
// run, exposed live so a sampled series shows power tracking load.
type Meter struct {
	profile Profile
	chans   []*link.Channel
}

// NewMeter builds a meter over chans using profile p.
func NewMeter(p Profile, chans []*link.Channel) *Meter {
	return &Meter{profile: p, chans: chans}
}

// Relative returns the instantaneous mean normalized power at time now.
func (m *Meter) Relative(now sim.Time) float64 {
	if len(m.chans) == 0 {
		return 0
	}
	var acc float64
	for _, c := range m.chans {
		if c.State(now) == link.Off {
			acc += m.profile.Off()
		} else {
			acc += m.profile.Relative(c.Rate())
		}
	}
	return acc / float64(len(m.chans))
}

// RegisterMetrics registers the meter as a gauge named
// "power.<profile name>" whose value is Relative at the sampling
// instant; now supplies the current simulation time (normally
// Engine.Now).
func (m *Meter) RegisterMetrics(reg *telemetry.Registry, now func() sim.Time) error {
	return reg.GaugeFunc("power."+m.profile.Name(),
		func() float64 { return m.Relative(now()) })
}
