package power

import "math"

// ITRSPoint is one year of the International Technology Roadmap for
// Semiconductors trend data plotted in the paper's Figure 6.
type ITRSPoint struct {
	Year          int
	IOBandwidthTb float64 // aggregate switch-package I/O bandwidth, Tb/s
	OffChipGbps   float64 // off-chip signaling rate, Gb/s per lane
	PackagePinsK  float64 // package pin count, thousands
}

// ITRSTrends returns the Figure 6 series. Figure 6 plots three
// log-scale trends from 2008 to 2023; its labeled anchors are 160 Tb/s
// of package I/O bandwidth and a 70 Gb/s off-chip clock at the right
// edge, and roughly 9,000 package pins. Intermediate years follow the
// roadmap's exponential growth between the 2008 starting points
// (~5 Tb/s, ~10 Gb/s, ~3k pins) and those endpoints; this reconstruction
// preserves the figure's message — I/O bandwidth per package grows ~32x
// in 15 years, so per-channel power efficiency must improve for switch
// power to stay bounded.
func ITRSTrends() []ITRSPoint {
	const (
		firstYear = 2008
		lastYear  = 2023
		bw0, bw1  = 5.0, 160.0 // Tb/s
		ck0, ck1  = 10.0, 70.0 // Gb/s
		pin0      = 3.0        // thousands
		pin1      = 9.0
	)
	n := lastYear - firstYear
	growth := func(v0, v1 float64, i int) float64 {
		// Geometric interpolation: exponential trends on a log axis.
		return v0 * pow(v1/v0, float64(i)/float64(n))
	}
	var out []ITRSPoint
	for i := 0; i <= n; i++ {
		out = append(out, ITRSPoint{
			Year:          firstYear + i,
			IOBandwidthTb: growth(bw0, bw1, i),
			OffChipGbps:   growth(ck0, ck1, i),
			PackagePinsK:  growth(pin0, pin1, i),
		})
	}
	return out
}

func pow(x, y float64) float64 { return math.Pow(x, y) }
