package power

import (
	"sort"

	"epnet/internal/link"
	"epnet/internal/sim"
)

// ChannelEnergy is the per-channel slice of the fabric's energy bill:
// where one directed channel spent its time (per-rate occupancy), the
// relative power that occupancy implies under the measurement profile,
// and the joules it charges against the run window.
type ChannelEnergy struct {
	// Name is the channel's stable entity id (e.g. "s0p1-s1p0").
	Name string
	// Class is the physical link class ("optical", "electrical").
	Class string
	// Utilization is the channel's mean utilization over the window.
	Utilization float64
	// RelPower is the occupancy-weighted relative power in [Off, 1]
	// under the attribution profile.
	RelPower float64
	// EnergyJ is RelPower x the per-channel full-power share x the
	// window, in joules.
	EnergyJ float64
	// TimeAtRate is the time the channel spent at each rate.
	TimeAtRate map[link.Rate]sim.Time
	// OffTime is the time the channel spent powered off.
	OffTime sim.Time
}

// Attribution splits a run's total network energy across its channels.
// The accounting basis mirrors the aggregate estimate in Run: the
// fabric's full-power draw is divided evenly across channels, and each
// channel is charged its share scaled by its occupancy-weighted
// relative power under a single measurement profile — so the per-
// channel energies sum exactly to the aggregate EnergyJoules (modulo
// float addition order).
type Attribution struct {
	// WattsPerChannel is the full-power draw attributed to each
	// channel: total fabric watts / channel count.
	WattsPerChannel float64
	// Window is the accounted wall-clock span.
	Window sim.Time
	// Profile is the measurement profile energy is charged under.
	Profile Profile
	// Channels holds one entry per channel, in wiring order.
	Channels []ChannelEnergy
}

// NewAttribution returns an attribution of fullWatts across nch
// channels over window.
func NewAttribution(fullWatts float64, nch int, window sim.Time, profile Profile) *Attribution {
	a := &Attribution{Window: window, Profile: profile}
	if nch > 0 {
		a.WattsPerChannel = fullWatts / float64(nch)
	}
	a.Channels = make([]ChannelEnergy, 0, nch)
	return a
}

// Add charges one channel's occupancy against the attribution and
// appends its entry.
func (a *Attribution) Add(name, class string, occ link.Occupancy, util float64) ChannelEnergy {
	rel := OccupancyPower(occ, a.Profile)
	ce := ChannelEnergy{
		Name:        name,
		Class:       class,
		Utilization: util,
		RelPower:    rel,
		EnergyJ:     rel * a.WattsPerChannel * a.Window.Seconds(),
		TimeAtRate:  occ.AtRate,
		OffTime:     occ.Off,
	}
	a.Channels = append(a.Channels, ce)
	return ce
}

// TotalEnergyJ sums the attributed energy over all channels.
func (a *Attribution) TotalEnergyJ() float64 {
	var total float64
	for _, ce := range a.Channels {
		total += ce.EnergyJ
	}
	return total
}

// TopByEnergy returns up to n channel entries sorted by descending
// energy (ties broken by name for determinism).
func (a *Attribution) TopByEnergy(n int) []ChannelEnergy {
	out := make([]ChannelEnergy, len(a.Channels))
	copy(out, a.Channels)
	sort.Slice(out, func(i, j int) bool {
		if out[i].EnergyJ != out[j].EnergyJ {
			return out[i].EnergyJ > out[j].EnergyJ
		}
		return out[i].Name < out[j].Name
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}
