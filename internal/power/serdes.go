package power

import (
	"fmt"
	"math"
	"sort"
)

// This file models the §6 challenge the paper leaves to channel
// designers: "system designers should work to optimize the high-speed
// channel designs to be more energy efficient by choosing optimal data
// rate and equalization technology", citing Hatamkhani & Yang's "A
// study of the optimal data rate for minimum power of I/Os" [10].
//
// The model follows [10]'s structure: a serial link's power has
//
//   - a rate-independent fixed overhead (bias, clocking, CDR),
//   - a term linear in data rate (switching the serializer datapath),
//   - an equalization term that grows super-linearly with rate because
//     channel loss in dB grows ~linearly with frequency, and the
//     equalizer must burn power proportional to the loss it cancels.
//
// Energy per bit, p(R)/R, is therefore U-shaped in the data rate R:
// at low rates the fixed overhead is amortized over few bits; at high
// rates equalization dominates. The optimum shifts down as the channel
// gets longer (lossier) — which is why short electrical hops and long
// optical hops want different lane rates.

// Equalization models the complexity of the receive/transmit
// equalizers a channel needs.
type Equalization int

const (
	// EqNone: a short, clean channel (on-board trace < ~10 cm).
	EqNone Equalization = iota
	// EqCTLE: continuous-time linear equalizer, for passive copper up
	// to a few meters.
	EqCTLE
	// EqDFE: decision-feedback equalizer with multiple taps, for long
	// or lossy channels.
	EqDFE
)

func (e Equalization) String() string {
	switch e {
	case EqNone:
		return "none"
	case EqCTLE:
		return "ctle"
	case EqDFE:
		return "dfe"
	default:
		return fmt.Sprintf("Equalization(%d)", int(e))
	}
}

// SerDesDesign describes one lane design point.
type SerDesDesign struct {
	// FixedMW is the rate-independent overhead per lane, milliwatts.
	FixedMW float64
	// DatapathMWPerGbps is the linear datapath cost.
	DatapathMWPerGbps float64
	// EqMW is the equalizer coefficient: the equalization term is
	// EqMW * (lossDBPerGHz * R/2)^EqExponent, with R in Gb/s (the
	// Nyquist frequency of an NRZ signal at R is R/2 GHz).
	EqMW       float64
	EqExponent float64
	// LossDBPerGHz is the channel's loss slope; longer/lossier channels
	// have larger values.
	LossDBPerGHz float64
	// Eq is the equalizer technology, which bounds the loss the lane
	// can close: none ~6 dB, CTLE ~15 dB, DFE ~30 dB at Nyquist.
	Eq Equalization
}

// maxLossDB returns the equalizer's closeable loss budget.
func (d SerDesDesign) maxLossDB() float64 {
	switch d.Eq {
	case EqNone:
		return 6
	case EqCTLE:
		return 15
	default:
		return 30
	}
}

// Feasible reports whether the design can run at rate gbps: the channel
// loss at Nyquist must fit the equalizer's budget.
func (d SerDesDesign) Feasible(gbps float64) bool {
	return d.LossDBPerGHz*gbps/2 <= d.maxLossDB()
}

// LaneMW returns the lane power at rate gbps, milliwatts.
func (d SerDesDesign) LaneMW(gbps float64) float64 {
	loss := d.LossDBPerGHz * gbps / 2
	return d.FixedMW + d.DatapathMWPerGbps*gbps + d.EqMW*math.Pow(loss, d.EqExponent)
}

// EnergyPJPerBit returns the lane's energy per bit at rate gbps,
// picojoules.
func (d SerDesDesign) EnergyPJPerBit(gbps float64) float64 {
	if gbps <= 0 {
		return math.Inf(1)
	}
	// mW / Gbps = pJ/bit.
	return d.LaneMW(gbps) / gbps
}

// ShortCopperDesign models the paper's intra-group electrical links
// (<1 m passive copper): low loss, CTLE suffices. Parameters are set so
// a lane at 10 Gb/s burns ~0.7 W/14 lanes... calibrated such that a
// 4-lane 40 Gb/s port lands near the paper's ~0.7 W per SerDes at a
// 10 Gb/s lane rate.
func ShortCopperDesign() SerDesDesign {
	return SerDesDesign{
		FixedMW:           40,
		DatapathMWPerGbps: 6,
		EqMW:              2.0,
		EqExponent:        1.6,
		LossDBPerGHz:      1.0,
		Eq:                EqCTLE,
	}
}

// LongCopperDesign models ~5 m passive copper (the longest electrical
// reach the paper's packaging allows): lossier, needs DFE.
func LongCopperDesign() SerDesDesign {
	return SerDesDesign{
		FixedMW:           55,
		DatapathMWPerGbps: 6,
		EqMW:              2.6,
		EqExponent:        1.6,
		LossDBPerGHz:      2.5,
		Eq:                EqDFE,
	}
}

// OpticalDesign models an optical channel: the electrical front end is
// short (to the transceiver) but the transceiver adds a large fixed
// cost (laser bias), which is the paper's observation that optical
// links burn more power at a switch port.
func OpticalDesign() SerDesDesign {
	return SerDesDesign{
		FixedMW:           95,
		DatapathMWPerGbps: 7,
		EqMW:              1.2,
		EqExponent:        1.5,
		LossDBPerGHz:      0.6,
		Eq:                EqCTLE,
	}
}

// DesignPoint is one evaluated (rate, design) pair.
type DesignPoint struct {
	LaneGbps    float64
	LaneMW      float64
	PJPerBit    float64
	Feasible    bool
	LanesFor40G int // lanes needed to build a 40 Gb/s port
	PortMW      float64
}

// SweepLaneRate evaluates a design across lane rates and returns the
// points plus the feasible energy-per-bit optimum — the [10]-style
// analysis behind "choosing optimal data rate".
func SweepLaneRate(d SerDesDesign, rates []float64) (points []DesignPoint, best DesignPoint) {
	best.PJPerBit = math.Inf(1)
	for _, r := range rates {
		lanes := int(math.Ceil(40 / r))
		p := DesignPoint{
			LaneGbps:    r,
			LaneMW:      d.LaneMW(r),
			PJPerBit:    d.EnergyPJPerBit(r),
			Feasible:    d.Feasible(r),
			LanesFor40G: lanes,
		}
		p.PortMW = float64(lanes) * p.LaneMW
		points = append(points, p)
		if p.Feasible && p.PJPerBit < best.PJPerBit {
			best = p
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].LaneGbps < points[j].LaneGbps })
	return points, best
}

// DefaultLaneRates is the sweep grid: the InfiniBand ladder's lane
// rates plus the higher rates Figure 6 projects.
func DefaultLaneRates() []float64 {
	return []float64{1.25, 2.5, 5, 10, 12.5, 20, 25, 40}
}

// OptimalLaneRate returns the energy-per-bit-optimal feasible lane rate
// for a design over the default grid.
func OptimalLaneRate(d SerDesDesign) (gbps float64, pjPerBit float64) {
	_, best := SweepLaneRate(d, DefaultLaneRates())
	return best.LaneGbps, best.PJPerBit
}
