package power

import (
	"math"
	"testing"
	"testing/quick"

	"epnet/internal/link"
	"epnet/internal/sim"
	"epnet/internal/topo"
)

// TestFigure5Anchors checks the measured profile against the numbers the
// paper states: the slowest mode consumes 42% of full power ("a switch
// chip today still consumes 42% the power when in the lower performance
// mode") and the chip offers "nearly 60% power savings compared to full
// utilization".
func TestFigure5Anchors(t *testing.T) {
	m := InfiniBandOptical()
	if got := m.Relative(link.Rate2_5G); got != 0.42 {
		t.Errorf("Relative(2.5G) = %v, want 0.42", got)
	}
	if got := m.Relative(link.Rate40G); got != 1.0 {
		t.Errorf("Relative(40G) = %v, want 1.0", got)
	}
	saving := 1 - m.Relative(link.Rate2_5G)
	if saving < 0.55 || saving > 0.65 {
		t.Errorf("max saving = %v, want ~0.6 ('nearly 60%%')", saving)
	}
	// Idle is below the slowest mode, and off saves little more (the
	// basis for not powering links off on today's chips).
	if m.IdleFloor() >= m.Relative(link.Rate2_5G) {
		t.Errorf("idle floor %v not below slowest mode", m.IdleFloor())
	}
	if m.Off() > m.IdleFloor() {
		t.Errorf("off %v above idle %v", m.Off(), m.IdleFloor())
	}
	if m.Off() < 0.2 {
		t.Errorf("off %v too low: Figure 5 shows little saving from power-off", m.Off())
	}
}

func TestMeasuredMonotone(t *testing.T) {
	m := InfiniBandOptical()
	prev := 0.0
	for _, r := range link.DefaultLadder() {
		p := m.Relative(r)
		if p <= prev {
			t.Errorf("Relative(%v) = %v not increasing", r, p)
		}
		prev = p
	}
}

func TestMeasuredValidation(t *testing.T) {
	if _, err := NewMeasured("x", nil, 0, 0); err == nil {
		t.Error("empty profile accepted")
	}
	if _, err := NewMeasured("x", []MeasuredPoint{{link.Rate40G, 0.9}}, 0, 0); err == nil {
		t.Error("max point != 1.0 accepted")
	}
	if _, err := NewMeasured("x", []MeasuredPoint{{link.Rate40G, 1.5}}, 0, 0); err == nil {
		t.Error("relative > 1 accepted")
	}
	if _, err := NewMeasured("x", []MeasuredPoint{
		{link.Rate10G, 0.5}, {link.Rate10G, 0.6}, {link.Rate40G, 1},
	}, 0, 0); err == nil {
		t.Error("duplicate rate accepted")
	}
}

// TestIdealProportionality checks Figure 8b's assumption: "a channel
// operating at 2.5 Gb/s uses only ~6.25% the power of a channel
// operating at 40 Gb/s".
func TestIdealProportionality(t *testing.T) {
	p := NewIdeal(link.Rate40G)
	if got := p.Relative(link.Rate2_5G); got != 0.0625 {
		t.Errorf("ideal Relative(2.5G) = %v, want 0.0625", got)
	}
	if got := p.Relative(link.Rate40G); got != 1.0 {
		t.Errorf("ideal Relative(40G) = %v, want 1", got)
	}
	if p.Off() != 0 {
		t.Error("ideal off != 0")
	}
}

func TestAlwaysOn(t *testing.T) {
	var p AlwaysOn
	for _, r := range link.DefaultLadder() {
		if p.Relative(r) != 1 || p.Idle(r) != 1 {
			t.Errorf("always-on not 1 at %v", r)
		}
	}
	if p.Off() != 1 {
		t.Error("always-on off != 1")
	}
}

func TestOccupancyPower(t *testing.T) {
	occ := link.Occupancy{
		AtRate: map[link.Rate]sim.Time{
			link.Rate40G:  25 * sim.Microsecond,
			link.Rate2_5G: 75 * sim.Microsecond,
		},
		Total: 100 * sim.Microsecond,
	}
	m := InfiniBandOptical()
	got := OccupancyPower(occ, m)
	want := 0.25*1.0 + 0.75*0.42
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("OccupancyPower = %v, want %v", got, want)
	}
	ideal := NewIdeal(link.Rate40G)
	got = OccupancyPower(occ, ideal)
	want = 0.25*1.0 + 0.75*0.0625
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ideal OccupancyPower = %v, want %v", got, want)
	}
	if OccupancyPower(link.Occupancy{}, m) != 0 {
		t.Error("empty occupancy should be 0")
	}
}

// TestTable1Exact checks the full Table 1 against the paper's published
// numbers.
func TestTable1Exact(t *testing.T) {
	tab := PaperTable1()

	// Folded Clos column.
	if tab.Clos.Hosts != 32768 {
		t.Errorf("clos hosts = %d", tab.Clos.Hosts)
	}
	if tab.Clos.BisectionGbps != 655360 {
		t.Errorf("clos bisection = %v, want 655360 Gb/s (655 Tb/s)", tab.Clos.BisectionGbps)
	}
	if tab.Clos.ElectricalLinks != 49152 {
		t.Errorf("clos electrical = %d, want 49152", tab.Clos.ElectricalLinks)
	}
	if tab.Clos.OpticalLinks != 65536 {
		t.Errorf("clos optical = %d, want 65536", tab.Clos.OpticalLinks)
	}
	if tab.Clos.SwitchChips != 8235 {
		t.Errorf("clos chips = %d, want 8235", tab.Clos.SwitchChips)
	}
	if tab.Clos.TotalWatts != 1146880 {
		t.Errorf("clos watts = %v, want 1146880", tab.Clos.TotalWatts)
	}
	if math.Abs(tab.Clos.WattsPerGbps-1.75) > 0.005 {
		t.Errorf("clos W/Gbps = %v, want 1.75", tab.Clos.WattsPerGbps)
	}

	// FBFLY column.
	if tab.FBFLY.ElectricalLinks != 47104 {
		t.Errorf("fbfly electrical = %d, want 47104", tab.FBFLY.ElectricalLinks)
	}
	if tab.FBFLY.OpticalLinks != 43008 {
		t.Errorf("fbfly optical = %d, want 43008", tab.FBFLY.OpticalLinks)
	}
	if tab.FBFLY.SwitchChips != 4096 {
		t.Errorf("fbfly chips = %d, want 4096", tab.FBFLY.SwitchChips)
	}
	if tab.FBFLY.TotalWatts != 737280 {
		t.Errorf("fbfly watts = %v, want 737280", tab.FBFLY.TotalWatts)
	}
	if math.Abs(tab.FBFLY.WattsPerGbps-1.13) > 0.005 {
		t.Errorf("fbfly W/Gbps = %v, want 1.13", tab.FBFLY.WattsPerGbps)
	}

	// Text claims: 409,600 fewer watts; >$1.6M over four years; the
	// always-on FBFLY still costs $2.89M.
	if tab.SavingsWatts != 409600 {
		t.Errorf("savings = %v W, want 409600", tab.SavingsWatts)
	}
	if tab.SavingsDollars < 1.55e6 || tab.SavingsDollars > 1.65e6 {
		t.Errorf("savings = $%.0f, want ~$1.6M", tab.SavingsDollars)
	}
	if tab.FBFLYBaselineDollars < 2.85e6 || tab.FBFLYBaselineDollars > 2.95e6 {
		t.Errorf("fbfly baseline = $%.0f, want ~$2.89M", tab.FBFLYBaselineDollars)
	}
}

func TestComputeTable1Errors(t *testing.T) {
	parts := DefaultPartPower()
	cost := DefaultCostModel()
	// Host mismatch.
	if _, err := ComputeTable1(100, 36, topo.MustFBFLY(8, 5, 8), parts, cost, link.Rate40G); err == nil {
		t.Error("host mismatch accepted")
	}
	// Radix too small for the FBFLY.
	if _, err := ComputeTable1(32768, 16, topo.MustFBFLY(8, 5, 8), parts, cost, link.Rate40G); err == nil {
		t.Error("insufficient radix accepted")
	}
}

// TestFigure1 checks the Figure 1 scenario numbers quoted in §1: the
// network is ~12% of power at full utilization, near 50% at 15%
// utilization with energy-proportional servers, and an energy
// proportional network saves 975 kW ($3.8M over four years).
func TestFigure1(t *testing.T) {
	f := PaperFigure1()
	if len(f.Scenarios) != 3 {
		t.Fatalf("%d scenarios", len(f.Scenarios))
	}
	full, eps, epb := f.Scenarios[0], f.Scenarios[1], f.Scenarios[2]
	if full.ServerWatts != 32768*250 {
		t.Errorf("server watts = %v", full.ServerWatts)
	}
	if frac := full.NetworkFraction(); frac < 0.115 || frac > 0.13 {
		t.Errorf("full-util network fraction = %v, want ~12%%", frac)
	}
	if frac := eps.NetworkFraction(); frac < 0.45 || frac > 0.52 {
		t.Errorf("15%%-util network fraction = %v, want ~50%%", frac)
	}
	if epb.NetworkWatts >= eps.NetworkWatts {
		t.Error("EP network did not reduce network power")
	}
	if math.Abs(f.NetworkSavingsWatts-974848) > 1 {
		t.Errorf("network savings = %v W, want 974848 (~975 kW)", f.NetworkSavingsWatts)
	}
	if f.NetworkSavingsDollars < 3.7e6 || f.NetworkSavingsDollars > 3.9e6 {
		t.Errorf("savings = $%.0f, want ~$3.8M", f.NetworkSavingsDollars)
	}
}

func TestCostModel(t *testing.T) {
	c := DefaultCostModel()
	// 1 kW for 4 years at PUE 1.6, $0.07: 35040 h * 1.6 * 0.07 = $3924.48
	got := c.Dollars(1000)
	if math.Abs(got-3924.48) > 0.01 {
		t.Errorf("Dollars(1kW) = %v, want 3924.48", got)
	}
}

// TestITRSTrends checks Figure 6's reconstruction: monotone exponential
// growth hitting the labeled endpoints (160 Tb/s, 70 Gb/s, ~9k pins).
func TestITRSTrends(t *testing.T) {
	pts := ITRSTrends()
	if len(pts) != 16 {
		t.Fatalf("%d points, want 16 (2008-2023)", len(pts))
	}
	if pts[0].Year != 2008 || pts[len(pts)-1].Year != 2023 {
		t.Fatalf("year range %d-%d", pts[0].Year, pts[len(pts)-1].Year)
	}
	last := pts[len(pts)-1]
	if math.Abs(last.IOBandwidthTb-160) > 1 {
		t.Errorf("2023 I/O bandwidth = %v, want 160 Tb/s", last.IOBandwidthTb)
	}
	if math.Abs(last.OffChipGbps-70) > 1 {
		t.Errorf("2023 off-chip rate = %v, want 70 Gb/s", last.OffChipGbps)
	}
	if math.Abs(last.PackagePinsK-9) > 0.1 {
		t.Errorf("2023 pins = %vk, want 9k", last.PackagePinsK)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].IOBandwidthTb <= pts[i-1].IOBandwidthTb ||
			pts[i].OffChipGbps <= pts[i-1].OffChipGbps ||
			pts[i].PackagePinsK <= pts[i-1].PackagePinsK {
			t.Fatalf("trends not monotone at %d", pts[i].Year)
		}
	}
}

// Property: for any occupancy, ideal power <= measured power (ideal
// channels never burn more than real ones) and both are within [0, 1].
func TestProfileOrderingProperty(t *testing.T) {
	ladder := link.DefaultLadder()
	measured := InfiniBandOptical()
	ideal := NewIdeal(link.Rate40G)
	f := func(splits [5]uint16) bool {
		occ := link.Occupancy{AtRate: map[link.Rate]sim.Time{}}
		for i, s := range splits {
			occ.AtRate[ladder[i]] = sim.Time(s) * sim.Nanosecond
			occ.Total += sim.Time(s) * sim.Nanosecond
		}
		pm := OccupancyPower(occ, measured)
		pi := OccupancyPower(occ, ideal)
		return pi <= pm+1e-12 && pm <= 1+1e-12 && pi >= 0 && pm >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSerDesDesignShape(t *testing.T) {
	for _, d := range []SerDesDesign{ShortCopperDesign(), LongCopperDesign(), OpticalDesign()} {
		// Power is monotone increasing in rate.
		prev := 0.0
		for _, r := range DefaultLaneRates() {
			p := d.LaneMW(r)
			if p <= prev {
				t.Errorf("%+v: LaneMW(%v) = %v not increasing", d.Eq, r, p)
			}
			prev = p
		}
		// Energy per bit is U-shaped: the optimum is interior or at the
		// feasibility edge, and pJ/bit at the extremes exceeds it.
		_, best := SweepLaneRate(d, DefaultLaneRates())
		if math.IsInf(best.PJPerBit, 1) {
			t.Fatalf("%v: no feasible point", d.Eq)
		}
		lo := d.EnergyPJPerBit(DefaultLaneRates()[0])
		if best.PJPerBit >= lo {
			t.Errorf("%v: optimum %v not below lowest-rate %v", d.Eq, best.PJPerBit, lo)
		}
	}
}

func TestSerDesFeasibility(t *testing.T) {
	long := LongCopperDesign()
	// 2.5 dB/GHz at 25 Gb/s -> 31 dB Nyquist loss: beyond even DFE.
	if long.Feasible(25) {
		t.Error("long copper at 25G should be infeasible")
	}
	if !long.Feasible(10) {
		t.Error("long copper at 10G should be feasible")
	}
	short := ShortCopperDesign()
	if !short.Feasible(25) {
		t.Error("short copper at 25G should be feasible (CTLE budget)")
	}
	if EqNone.String() != "none" || EqCTLE.String() != "ctle" || EqDFE.String() != "dfe" {
		t.Error("Equalization strings")
	}
}

// TestSerDesOptimumShifts: a lossier channel's optimal lane rate is at
// or below a cleaner channel's — the core design observation of [10].
func TestSerDesOptimumShifts(t *testing.T) {
	shortOpt, _ := OptimalLaneRate(ShortCopperDesign())
	longOpt, _ := OptimalLaneRate(LongCopperDesign())
	if longOpt > shortOpt {
		t.Errorf("long-channel optimum %vG above short-channel %vG", longOpt, shortOpt)
	}
}

// TestSerDesPortPowerAnchor: the paper assumes ~0.7 W per always-on
// SerDes (144 per 36-port switch = 100 W). A 40 Gb/s port built from
// the short-copper design at its ladder lane rate should land in that
// neighborhood (per-lane power x 4 lanes at 10G within 2x of 700 mW/
// (144/36) = ... each port has 4 lanes at ~0.7 W each = 2.8 W/port).
func TestSerDesPortPowerAnchor(t *testing.T) {
	d := ShortCopperDesign()
	pts, _ := SweepLaneRate(d, []float64{10})
	port := pts[0].PortMW
	// 4 lanes x ~0.7 W = 2800 mW per the paper's footnote; accept a
	// generous band around it.
	if port < 300 || port > 3000 {
		t.Errorf("40G port power = %v mW, want within the paper's order of magnitude", port)
	}
	if pts[0].LanesFor40G != 4 {
		t.Errorf("lanes for 40G at 10G lane rate = %d, want 4", pts[0].LanesFor40G)
	}
}

func TestSerDesZeroRate(t *testing.T) {
	if !math.IsInf(ShortCopperDesign().EnergyPJPerBit(0), 1) {
		t.Error("zero rate energy should be +Inf")
	}
}
