package epnet_test

import (
	"fmt"
	"time"

	"epnet"
)

// Reproduce the paper's Table 1 headline: the flattened butterfly
// provides the same 655 Tb/s bisection as a folded Clos with half the
// switch chips.
func ExampleTable1() {
	t := epnet.Table1()
	fmt.Printf("folded Clos:        %d chips, %.0f W\n", t.Clos.SwitchChips, t.Clos.TotalWatts)
	fmt.Printf("flattened butterfly: %d chips, %.0f W\n", t.FBFLY.SwitchChips, t.FBFLY.TotalWatts)
	fmt.Printf("saved over 4 years: $%.2fM\n", t.SavingsDollars/1e6)
	// Output:
	// folded Clos:        8235 chips, 1146880 W
	// flattened butterfly: 4096 chips, 737280 W
	// saved over 4 years: $1.61M
}

// Reproduce Figure 1's motivation: once servers are energy
// proportional, the always-on network dominates cluster power at
// typical utilization.
func ExampleFigure1() {
	f := epnet.Figure1()
	for _, s := range f.Scenarios {
		fmt.Printf("%-62s network share %4.1f%%\n", s.Name, s.NetworkFraction*100)
	}
	fmt.Printf("energy proportional network saves %.0f kW\n", f.NetworkSavingsWatts/1000)
	// Output:
	// 100% Utilization                                               network share 12.3%
	// 15% Utilization, Energy Proportional Servers                   network share 48.3%
	// 15% Utilization, Energy Proportional Servers and Network       network share 12.3%
	// energy proportional network saves 975 kW
}

// Inspect the measured switch power profile of Figure 5: even the
// slowest mode burns 42% of full power on today's chips, while an
// ideally proportional channel would burn 6.25%.
func ExampleFigure5() {
	points, idle, _ := epnet.Figure5()
	for _, p := range points {
		fmt.Printf("%4.1f Gb/s: measured %3.0f%%, ideal %5.2f%%\n",
			p.RateGbps, p.RelativePower*100, p.IdealPower*100)
	}
	fmt.Printf("idle floor: %.0f%%\n", idle*100)
	// Output:
	//  2.5 Gb/s: measured  42%, ideal  6.25%
	//  5.0 Gb/s: measured  46%, ideal 12.50%
	// 10.0 Gb/s: measured  52%, ideal 25.00%
	// 20.0 Gb/s: measured  69%, ideal 50.00%
	// 40.0 Gb/s: measured 100%, ideal 100.00%
	// idle floor: 36%
}

// Run a small energy-proportional network simulation end to end. The
// run is deterministic, but its measurements depend on the simulator's
// internal modeling, so this example asserts properties rather than
// printing raw numbers.
func ExampleRun() {
	cfg := epnet.DefaultConfig()
	cfg.K, cfg.N, cfg.C = 4, 2, 4
	cfg.Workload = epnet.WorkloadSearch
	cfg.Policy = epnet.PolicyHalveDouble
	cfg.Independent = true
	cfg.Warmup = 200 * time.Microsecond
	cfg.Duration = time.Millisecond

	res, err := epnet.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("hosts: %d\n", res.Hosts)
	fmt.Printf("saves power: %v\n", res.RelPowerIdeal < 0.5)
	fmt.Printf("most time at 2.5G: %v\n", res.RateShare[2.5] > 0.5)
	// Output:
	// hosts: 16
	// saves power: true
	// most time at 2.5G: true
}
