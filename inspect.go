package epnet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// Inspector exposes a running simulation over HTTP: a Prometheus
// text-format scrape of the telemetry registry at /metrics, a JSON
// per-entity snapshot (link rates, power, queue depths, live outages)
// at /snapshot, the live engine self-profile at /profile (when
// Config.Profile is on), the live flow-trace decomposition at /flows
// (when Config.FlowTrace is on), and net/http/pprof under
// /debug/pprof/.
//
// The engine thread renders both documents to bytes at every sampler
// tick and publishes them with one atomic pointer swap; HTTP handlers
// only ever read the latest published bytes. That keeps the
// single-threaded simulation and the concurrent HTTP server decoupled:
// no locks on the engine side, no torn reads on the server side. A
// single Inspector may be shared by every run of a grid — each publish
// is an internally consistent view of whichever run sampled last.
type Inspector struct {
	cur atomic.Pointer[inspection]

	// srv and ln are set by StartInspector only, for Shutdown.
	srv *http.Server
	ln  net.Listener
}

// inspection is one published document set; prof is nil when the
// publishing run has profiling off, flows when flow tracing is off.
type inspection struct {
	prom  []byte
	snap  []byte
	prof  []byte
	flows []byte
}

// NewInspector returns an Inspector with nothing published yet. Hand
// it to Config.Inspector and serve Handler somewhere, or use
// StartInspector to do both.
func NewInspector() *Inspector {
	return &Inspector{}
}

// publish atomically replaces the served documents. Called on the
// engine thread at every sample.
func (i *Inspector) publish(prom, snap, prof, flows []byte) {
	i.cur.Store(&inspection{prom: prom, snap: snap, prof: prof, flows: flows})
}

// PrometheusText returns the latest published scrape body, or nil if
// no run has sampled yet.
func (i *Inspector) PrometheusText() []byte {
	if p := i.cur.Load(); p != nil {
		return p.prom
	}
	return nil
}

// SnapshotJSON returns the latest published per-entity snapshot, or
// nil if no run has sampled yet.
func (i *Inspector) SnapshotJSON() []byte {
	if p := i.cur.Load(); p != nil {
		return p.snap
	}
	return nil
}

// ProfileJSON returns the latest published engine self-profile, or nil
// if no run has sampled yet or the sampling run has profiling off.
func (i *Inspector) ProfileJSON() []byte {
	if p := i.cur.Load(); p != nil {
		return p.prof
	}
	return nil
}

// FlowsJSON returns the latest published flow-trace report, or nil if
// no run has sampled yet or the sampling run has flow tracing off.
func (i *Inspector) FlowsJSON() []byte {
	if p := i.cur.Load(); p != nil {
		return p.flows
	}
	return nil
}

// Handler returns the inspection mux: /, /metrics, /snapshot, and
// /debug/pprof/.
func (i *Inspector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "epnet inspector\n\n"+
			"/metrics        Prometheus text-format scrape\n"+
			"/snapshot       JSON per-entity state (links, switches, outages, power)\n"+
			"/profile        JSON engine self-profile (requires Config.Profile)\n"+
			"/flows          JSON flow-trace decomposition (requires Config.FlowTrace)\n"+
			"/debug/pprof/   Go runtime profiles\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		body := i.PrometheusText()
		if body == nil {
			http.Error(w, "no sample published yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(body)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		body := i.SnapshotJSON()
		if body == nil {
			http.Error(w, "no sample published yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	})
	mux.HandleFunc("/profile", func(w http.ResponseWriter, r *http.Request) {
		body := i.ProfileJSON()
		if body == nil {
			http.Error(w, "no profile published (enable Config.Profile / epsim -profile)",
				http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	})
	mux.HandleFunc("/flows", func(w http.ResponseWriter, r *http.Request) {
		body := i.FlowsJSON()
		if body == nil {
			http.Error(w, "no flow trace published (enable Config.FlowTrace / epsim -flow-trace)",
				http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartInspector listens on addr (e.g. ":9090", or "127.0.0.1:0" for
// an ephemeral port), serves the inspection endpoints in a background
// goroutine, and returns the inspector plus the bound address. The
// listener lives until the process exits or Shutdown is called.
func StartInspector(addr string) (*Inspector, string, error) {
	i := NewInspector()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("epnet: inspector listen: %w", err)
	}
	i.ln = ln
	i.srv = &http.Server{Handler: i.Handler()}
	go i.srv.Serve(ln)
	return i, ln.Addr().String(), nil
}

// Shutdown gracefully stops the HTTP server StartInspector launched,
// waiting for in-flight requests up to ctx's deadline. A no-op on an
// Inspector that is not serving (NewInspector), so CLI teardown can
// call it unconditionally.
func (i *Inspector) Shutdown(ctx context.Context) error {
	if i.srv == nil {
		return nil
	}
	if err := i.srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("epnet: inspector shutdown: %w", err)
	}
	return nil
}
