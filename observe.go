package epnet

import (
	"fmt"
	"io"
	"os"
	"strings"

	"epnet/internal/core"
	"epnet/internal/fabric"
	"epnet/internal/fault"
	"epnet/internal/link"
	"epnet/internal/power"
	"epnet/internal/routing"
	"epnet/internal/sim"
	"epnet/internal/telemetry"
)

// observer wires a run's optional telemetry: the metrics sampler behind
// Config.MetricsOut and the Chrome trace stream behind Config.TraceOut.
// newObserver returns nil when both are disabled, so Run pays nothing
// for observability it did not ask for.
type observer struct {
	cfg       Config
	sampler   *telemetry.Sampler
	tracer    *telemetry.Tracer
	traceFile *os.File
}

// newObserver builds and starts the telemetry described by cfg. The
// sampler takes its baseline immediately (at the engine's current time,
// normally 0) and ticks until horizon; the tracer is attached to the
// network and controller.
func newObserver(cfg Config, e *sim.Engine, net *fabric.Network,
	ctrl *core.Controller, fr *routing.FBFLY, inj *fault.Injector,
	ladder link.RateLadder, horizon sim.Time) (*observer, error) {
	if cfg.MetricsOut == "" && cfg.TraceOut == "" {
		return nil, nil
	}
	o := &observer{cfg: cfg}
	if cfg.TraceOut != "" {
		f, err := os.Create(cfg.TraceOut)
		if err != nil {
			return nil, fmt.Errorf("epnet: creating trace output: %w", err)
		}
		o.traceFile = f
		o.tracer = telemetry.NewTracer(f)
		o.tracer.MetaProcessName(telemetry.PIDPackets, "packets")
		o.tracer.MetaProcessName(telemetry.PIDLinks, "links")
		for _, ch := range net.Channels() {
			o.tracer.MetaThreadName(telemetry.PIDLinks, ch.Index(), ch.MetricName())
		}
		net.Tracer = o.tracer
		if ctrl != nil {
			ctrl.Tracer = o.tracer
		}
		if inj != nil {
			o.tracer.MetaProcessName(telemetry.PIDFaults, "faults")
			inj.Tracer = o.tracer
		}
	}
	if cfg.MetricsOut != "" {
		reg := telemetry.NewRegistry()
		if err := reg.GaugeFunc("sim.events_processed",
			func() float64 { return float64(e.Processed()) }); err != nil {
			return nil, err
		}
		if err := reg.GaugeFunc("sim.pending_events",
			func() float64 { return float64(e.Pending()) }); err != nil {
			return nil, err
		}
		if err := net.RegisterMetrics(reg); err != nil {
			return nil, err
		}
		if ctrl != nil {
			if err := ctrl.RegisterMetrics(reg); err != nil {
				return nil, err
			}
		}
		if fr != nil {
			if err := fr.RegisterMetrics(reg); err != nil {
				return nil, err
			}
		}
		if inj != nil {
			if err := inj.RegisterMetrics(reg); err != nil {
				return nil, err
			}
		}
		chans := make([]*link.Channel, 0, len(net.Channels()))
		for _, ch := range net.Channels() {
			chans = append(chans, ch.L)
		}
		for _, prof := range []power.Profile{
			power.InfiniBandOptical(), power.NewIdeal(ladder.Max()),
		} {
			m := power.NewMeter(prof, chans)
			if err := m.RegisterMetrics(reg, e.Now); err != nil {
				return nil, err
			}
		}
		s, err := telemetry.NewSampler(reg, simTime(cfg.SampleInterval))
		if err != nil {
			return nil, err
		}
		o.sampler = s
		s.Start(e, horizon)
	}
	return o, nil
}

// finish takes the final (possibly partial-interval) sample, writes the
// metrics file, and terminates the trace stream. Safe on a nil
// observer; call exactly once, after the engine has drained.
func (o *observer) finish(now sim.Time) error {
	if o == nil {
		return nil
	}
	if o.sampler != nil {
		o.sampler.Finish(now)
		f, err := os.Create(o.cfg.MetricsOut)
		if err != nil {
			return fmt.Errorf("epnet: creating metrics output: %w", err)
		}
		werr := o.writeSeries(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("epnet: writing metrics: %w", werr)
		}
	}
	if o.tracer != nil {
		terr := o.tracer.Close()
		if cerr := o.traceFile.Close(); terr == nil {
			terr = cerr
		}
		if terr != nil {
			return fmt.Errorf("epnet: writing trace: %w", terr)
		}
	}
	return nil
}

// writeSeries streams the sampled series in the format implied by the
// output path's extension.
func (o *observer) writeSeries(w io.Writer) error {
	if strings.HasSuffix(o.cfg.MetricsOut, ".jsonl") {
		return o.sampler.WriteJSONL(w)
	}
	return o.sampler.WriteCSV(w)
}
