package epnet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"epnet/internal/core"
	"epnet/internal/fabric"
	"epnet/internal/fault"
	"epnet/internal/link"
	"epnet/internal/power"
	"epnet/internal/routing"
	"epnet/internal/sim"
	"epnet/internal/telemetry"
)

// latencyBucketsUs are the fixed upper bounds (microseconds) of the
// packet-latency histogram registered as net.latency_us.
var latencyBucketsUs = []float64{
	1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
}

// latBucket returns the net.latency_us bucket index for a latency in
// microseconds: the first bucket whose upper bound covers v, or the
// final +Inf bucket. It mirrors Histogram.Observe's lower-bound search
// so shard-local accumulation buckets identically to direct observation.
func latBucket(v float64) int {
	lo, hi := 0, len(latencyBucketsUs)
	for lo < hi {
		mid := (lo + hi) / 2
		if latencyBucketsUs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// latShard accumulates the packet-latency distribution observed by one
// shard: per-bucket counts plus an exact integer time sum. Each shard
// writes only its own entry, and the merged reduction (integer adds) is
// order-independent, so the rendered histogram is byte-identical across
// shard counts.
type latShard struct {
	counts []int64
	sum    sim.Time
	n      int64
}

// utilBuckets are the upper bounds of the link-utilization histogram
// (the paper's Fig 8 x-axis: twenty 5% bins).
var utilBuckets = []float64{
	0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50,
	0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00,
}

// observer wires a run's optional telemetry: the metrics sampler
// behind Config.MetricsOut, the Chrome trace stream behind
// Config.TraceOut, the utilization heatmap and histogram behind
// Config.HeatmapOut/HistOut, and the live-inspection publisher behind
// Config.Inspector. newObserver returns nil when everything is
// disabled, so Run pays nothing for observability it did not ask for.
type observer struct {
	cfg       Config
	e         *sim.Engine
	net       *fabric.Network
	inj       *fault.Injector
	prof      *telemetry.EngineProfiler
	flow      *telemetry.FlowCollector
	flowChans []string
	reg       *telemetry.Registry
	sampler   *telemetry.Sampler
	heatmap   *telemetry.Heatmap
	tracer    *telemetry.Tracer
	traceFile *os.File
	measured  *power.Meter
	ideal     *power.Meter
	snapBuf   bytes.Buffer
	promBuf   bytes.Buffer
	profBuf   bytes.Buffer
	flowBuf   bytes.Buffer
	done      bool
}

// newObserver builds and starts the telemetry described by cfg. The
// sampler takes its baseline immediately (at the engine's current
// time, normally 0) and ticks until horizon; the tracer is attached
// to the network and controller. On error, any trace file already
// created is closed and removed from the observer's ownership.
func newObserver(cfg Config, e *sim.Engine, net *fabric.Network,
	ctrl *core.Controller, fr *routing.FBFLY, inj *fault.Injector,
	prof *telemetry.EngineProfiler, flow *telemetry.FlowCollector,
	ladder link.RateLadder, horizon sim.Time) (o *observer, err error) {
	if cfg.MetricsOut == "" && cfg.TraceOut == "" && cfg.HeatmapOut == "" &&
		cfg.HistOut == "" && cfg.Inspector == nil {
		return nil, nil
	}
	o = &observer{cfg: cfg, e: e, net: net, inj: inj, prof: prof, flow: flow}
	if flow != nil && cfg.Inspector != nil {
		o.flowChans = chanLabels(net)
	}
	defer func() {
		if err != nil && o.traceFile != nil {
			o.traceFile.Close()
		}
	}()
	if cfg.TraceOut != "" {
		f, ferr := os.Create(cfg.TraceOut)
		if ferr != nil {
			return nil, fmt.Errorf("epnet: creating trace output: %w", ferr)
		}
		o.traceFile = f
		o.tracer = telemetry.NewTracer(f)
		o.tracer.MetaProcessName(telemetry.PIDPackets, "packets")
		o.tracer.MetaProcessName(telemetry.PIDLinks, "links")
		for _, ch := range net.Channels() {
			o.tracer.MetaThreadName(telemetry.PIDLinks, ch.Index(), ch.MetricName())
		}
		net.Tracer = o.tracer
		if ctrl != nil {
			ctrl.Tracer = o.tracer
		}
		if inj != nil {
			o.tracer.MetaProcessName(telemetry.PIDFaults, "faults")
			inj.Tracer = o.tracer
		}
	}
	if cfg.HeatmapOut != "" || cfg.HistOut != "" {
		h, herr := telemetry.NewHeatmap(simTime(cfg.SampleInterval))
		if herr != nil {
			return nil, herr
		}
		for _, ch := range net.InterSwitchChannels() {
			l := ch.L
			h.AddRow(ch.Label(), l.BusyTime)
		}
		o.heatmap = h
		h.Start(e, horizon)
	}
	if cfg.MetricsOut != "" || cfg.Inspector != nil {
		reg := telemetry.NewRegistry()
		if err := reg.GaugeFunc("sim.events_processed",
			func() float64 { return float64(net.EventsProcessed()) }); err != nil {
			return nil, err
		}
		if err := reg.GaugeFunc("sim.pending_events",
			func() float64 { return float64(net.PendingEvents()) }); err != nil {
			return nil, err
		}
		if err := net.RegisterMetrics(reg); err != nil {
			return nil, err
		}
		if ctrl != nil {
			if err := ctrl.RegisterMetrics(reg); err != nil {
				return nil, err
			}
		}
		if fr != nil {
			if err := fr.RegisterMetrics(reg); err != nil {
				return nil, err
			}
		}
		if inj != nil {
			if err := inj.RegisterMetrics(reg); err != nil {
				return nil, err
			}
		}
		chans := make([]*link.Channel, 0, len(net.Channels()))
		for _, ch := range net.Channels() {
			chans = append(chans, ch.L)
		}
		o.measured = power.NewMeter(power.InfiniBandOptical(), chans)
		o.ideal = power.NewMeter(power.NewIdeal(ladder.Max()), chans)
		for _, m := range []*power.Meter{o.measured, o.ideal} {
			if err := m.RegisterMetrics(reg, e.Now); err != nil {
				return nil, err
			}
		}
		// Packet latency distribution, observed on the delivery path
		// for post-warmup packets. Delivery callbacks run on the shard
		// that owns the destination host, so each shard accumulates into
		// its own latShard; the view's refresh merges them with integer
		// adds just before every read, making the sampled series and the
		// rendered histogram independent of the shard count. The chained
		// OnDeliver keeps Run's own latency recorder working unchanged.
		parts := make([]latShard, net.NumShards())
		for i := range parts {
			parts[i].counts = make([]int64, len(latencyBucketsUs)+1)
		}
		merged := make([]int64, len(latencyBucketsUs)+1)
		refresh := func(h *telemetry.Histogram) {
			for i := range merged {
				merged[i] = 0
			}
			var n int64
			var sum sim.Time
			for s := range parts {
				for i, c := range parts[s].counts {
					merged[i] += c
				}
				sum += parts[s].sum
				n += parts[s].n
			}
			h.SetState(merged, sum.Microseconds(), n)
		}
		if _, err := reg.HistogramView("net.latency_us", latencyBucketsUs, refresh); err != nil {
			return nil, err
		}
		warmup := simTime(cfg.Warmup)
		prev := net.OnDeliver
		net.OnDeliver = func(p *fabric.Packet, now sim.Time) {
			if prev != nil {
				prev(p, now)
			}
			if p.Inject >= warmup {
				d := now - p.Inject
				sh := &parts[net.HostShard(p.Dst)]
				sh.counts[latBucket(d.Microseconds())]++
				sh.sum += d
				sh.n++
			}
		}
		o.reg = reg
		s, serr := telemetry.NewSampler(reg, simTime(cfg.SampleInterval))
		if serr != nil {
			return nil, serr
		}
		o.sampler = s
		if cfg.Inspector != nil {
			s.OnSample = o.publish
		}
		s.Start(e, horizon)
	}
	return o, nil
}

// publish renders the scrape body and the per-entity snapshot on the
// engine thread and hands copies to the inspector. Both documents are
// pure functions of simulation state, so repeated seeded runs publish
// byte-identical final documents. The engine profile, when profiling
// is on, rides along as a third document (wall-clock based, so not
// deterministic — it feeds /profile, nothing else).
func (o *observer) publish(now sim.Time) {
	o.promBuf.Reset()
	o.reg.WritePrometheus(&o.promBuf)
	o.snapBuf.Reset()
	json.NewEncoder(&o.snapBuf).Encode(o.snapshot(now))
	prom := make([]byte, o.promBuf.Len())
	copy(prom, o.promBuf.Bytes())
	snap := make([]byte, o.snapBuf.Len())
	copy(snap, o.snapBuf.Bytes())
	var prof []byte
	if o.prof != nil {
		// Sampler ticks run on the control plane at barriers, when every
		// shard is quiescent — the one safe instant to snapshot.
		o.profBuf.Reset()
		json.NewEncoder(&o.profBuf).Encode(newEngineProfile(o.prof.Snapshot()))
		prof = make([]byte, o.profBuf.Len())
		copy(prof, o.profBuf.Bytes())
	}
	var flows []byte
	if o.flow != nil {
		// Same quiescent instant; the live document carries no energy
		// join (per-channel energies exist only at the end of the run).
		o.flowBuf.Reset()
		json.NewEncoder(&o.flowBuf).Encode(newFlowTraceReport(o.flow.Snapshot(), o.flowChans, nil, nil))
		flows = make([]byte, o.flowBuf.Len())
		copy(flows, o.flowBuf.Bytes())
	}
	o.cfg.Inspector.publish(prom, snap, prof, flows)
}

// snapshot structures for the /snapshot JSON document. Field order is
// fixed by the struct definitions, entity order by wiring order, so
// the rendering is deterministic.
type snapLink struct {
	Link       string  `json:"link"`
	RateGbps   float64 `json:"rate_gbps"`
	State      string  `json:"state"`
	Util       float64 `json:"util"`
	QueueBytes int64   `json:"queue_bytes"`
	TxPackets  int64   `json:"tx_pkts"`
	Drops      int64   `json:"drops"`
	Failed     bool    `json:"failed,omitempty"`
}

type snapSwitch struct {
	ID         int   `json:"sw"`
	RoutedPkts int64 `json:"routed_pkts"`
	QueueBytes int64 `json:"queue_bytes"`
	Dead       bool  `json:"dead,omitempty"`
}

type snapOutage struct {
	Link    string  `json:"link"`
	SinceUs float64 `json:"since_us"`
	DownUs  float64 `json:"down_us"`
}

type snapshotDoc struct {
	TUs      float64      `json:"t_us"`
	Workload WorkloadKind `json:"workload"`
	Policy   PolicyKind   `json:"policy"`
	Seed     int64        `json:"seed"`
	Power    struct {
		Measured float64 `json:"measured"`
		Ideal    float64 `json:"ideal"`
	} `json:"power"`
	Links    []snapLink   `json:"links"`
	Switches []snapSwitch `json:"switches"`
	Outages  []snapOutage `json:"outages"`
}

// snapshot assembles the per-entity state document at sim time now.
func (o *observer) snapshot(now sim.Time) *snapshotDoc {
	doc := &snapshotDoc{
		TUs:      now.Microseconds(),
		Workload: o.cfg.Workload,
		Policy:   o.cfg.Policy,
		Seed:     o.cfg.Seed,
	}
	doc.Power.Measured = o.measured.Relative(now)
	doc.Power.Ideal = o.ideal.Relative(now)
	isc := o.net.InterSwitchChannels()
	doc.Links = make([]snapLink, 0, len(isc))
	for _, ch := range isc {
		doc.Links = append(doc.Links, snapLink{
			Link:       ch.Label(),
			RateGbps:   ch.L.Rate().GbpsF(),
			State:      ch.L.State(now).String(),
			Util:       ch.L.MeanUtilization(now),
			QueueBytes: o.net.Switches[ch.Src.ID].QueueBytes(ch.Src.Port),
			TxPackets:  ch.L.TotalPackets(),
			Drops:      ch.Drops(),
			Failed:     ch.Failed(),
		})
	}
	radix := o.net.T.Radix()
	doc.Switches = make([]snapSwitch, 0, len(o.net.Switches))
	for i, s := range o.net.Switches {
		var queued int64
		for p := 0; p < radix; p++ {
			queued += s.QueueBytes(p)
		}
		doc.Switches = append(doc.Switches, snapSwitch{
			ID:         i,
			RoutedPkts: s.RoutedPackets(),
			QueueBytes: queued,
			Dead:       o.net.SwitchDead(i),
		})
	}
	doc.Outages = []snapOutage{}
	if o.inj != nil {
		for _, out := range o.inj.Outages() {
			doc.Outages = append(doc.Outages, snapOutage{
				Link:    out.Link,
				SinceUs: out.Since.Microseconds(),
				DownUs:  (now - out.Since).Microseconds(),
			})
		}
	}
	return doc
}

// finish takes the final (possibly partial-interval) samples, writes
// the metrics/heatmap/histogram files, publishes the final inspection
// documents, and terminates the trace stream. Safe on a nil observer
// and idempotent: Run calls it on error paths too, so a canceled run
// still flushes and closes everything it opened, and write failures
// (including a tracer that latched an earlier disk-full error) are
// all reported.
func (o *observer) finish(now sim.Time) error {
	if o == nil || o.done {
		return nil
	}
	o.done = true
	var errs []error
	if o.sampler != nil {
		o.sampler.Finish(now)
		if o.cfg.MetricsOut != "" {
			if err := writeFile(o.cfg.MetricsOut, o.writeSeries); err != nil {
				errs = append(errs, fmt.Errorf("epnet: writing metrics: %w", err))
			}
		}
	}
	if o.heatmap != nil {
		o.heatmap.Finish(now)
		if o.cfg.HeatmapOut != "" {
			if err := writeFile(o.cfg.HeatmapOut, o.heatmap.WriteCSV); err != nil {
				errs = append(errs, fmt.Errorf("epnet: writing heatmap: %w", err))
			}
		}
		if o.cfg.HistOut != "" {
			hist, err := o.heatmap.UtilizationHistogram(utilBuckets)
			if err == nil {
				err = writeFile(o.cfg.HistOut, hist.WriteCSV)
			}
			if err != nil {
				errs = append(errs, fmt.Errorf("epnet: writing utilization histogram: %w", err))
			}
		}
	}
	if o.tracer != nil {
		terr := o.tracer.Close()
		if cerr := o.traceFile.Close(); terr == nil {
			terr = cerr
		}
		if terr != nil {
			errs = append(errs, fmt.Errorf("epnet: writing trace: %w", terr))
		}
	}
	return errors.Join(errs...)
}

// writeFile creates path and streams write into it, reporting create,
// write and close errors alike.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// writeSeries streams the sampled series in the format implied by the
// output path's extension.
func (o *observer) writeSeries(w io.Writer) error {
	if strings.HasSuffix(o.cfg.MetricsOut, ".jsonl") {
		return o.sampler.WriteJSONL(w)
	}
	return o.sampler.WriteCSV(w)
}
