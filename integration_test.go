package epnet

import (
	"testing"
	"time"
)

// TestPaperScaleIntegration runs the paper's exact evaluation topology —
// a 15-ary 3-flat with 3,375 hosts and 13,050 channels — for a short
// window and validates the headline §4.2.1 result end to end: with the
// halve/double policy, independent channel control and ideal channels,
// Search-like traffic runs at a small fraction of baseline power while
// still delivering its load. Skipped with -short (it takes a few
// seconds).
func TestPaperScaleIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale integration test skipped in -short mode")
	}
	cfg := PaperConfig()
	cfg.Workload = WorkloadSearch
	cfg.Policy = PolicyHalveDouble
	cfg.Independent = true
	cfg.Warmup = 200 * time.Microsecond
	cfg.Duration = 500 * time.Microsecond

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 3375 || res.Switches != 225 {
		t.Fatalf("topology: %d hosts %d switches, want 3375/225", res.Hosts, res.Switches)
	}
	// 6,750 host channels + 6,300 inter-switch channels.
	if res.Channels != 13050 {
		t.Fatalf("channels = %d, want 13050", res.Channels)
	}
	// Power: the paper reports 17% of baseline for Search with ideal
	// channels and independent control. Allow a generous band for the
	// short window.
	if res.RelPowerIdeal < 0.08 || res.RelPowerIdeal > 0.30 {
		t.Errorf("ideal power = %.1f%%, want ~17%% (paper)", res.RelPowerIdeal*100)
	}
	// The measured profile floors at 42%.
	if res.RelPowerMeasured < 0.42 || res.RelPowerMeasured > 0.65 {
		t.Errorf("measured power = %.1f%%, want in [42%%, 65%%]", res.RelPowerMeasured*100)
	}
	// Traffic flows: the vast majority of injected packets deliver
	// within the window.
	if res.DeliveredPackets == 0 ||
		float64(res.DeliveredPackets) < 0.5*float64(res.InjectedPackets) {
		t.Errorf("delivered %d of %d packets", res.DeliveredPackets, res.InjectedPackets)
	}
	// Most channel-time sits at the lowest rate (Figure 7's shape).
	if res.RateShare[2.5] < 0.5 {
		t.Errorf("2.5G share = %.1f%%, want majority", res.RateShare[2.5]*100)
	}
}
