package epnet

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestRunWithFaultSchedule executes a deterministic schedule covering
// every fault verb and checks the stats surfaced in Result.
func TestRunWithFaultSchedule(t *testing.T) {
	cfg := fastCfg()
	// 4-ary 2-flat: ports 4-6 on each switch are inter-switch links.
	cfg.Faults = "50us fail-link s0p4; 120us degrade-link s1p5 10;" +
		" 200us fail-switch 3; 250us repair-link s0p4;" +
		" 300us repair-switch 3; 350us restore-link s1p5"
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// fail-switch 3 downs its 3 incident links but only counts as a
	// switch failure; the explicit fail-link is the single link failure.
	f := res.Faults
	if f.LinkFailures != 1 || f.LinkRepairs != 1 {
		t.Errorf("link failures/repairs = %d/%d, want 1/1", f.LinkFailures, f.LinkRepairs)
	}
	if f.SwitchFailures != 1 || f.SwitchRepairs != 1 {
		t.Errorf("switch failures/repairs = %d/%d, want 1/1", f.SwitchFailures, f.SwitchRepairs)
	}
	if f.LaneDegradations != 1 || f.LaneRestores != 1 {
		t.Errorf("degradations/restores = %d/%d, want 1/1", f.LaneDegradations, f.LaneRestores)
	}
	if res.DeliveredFraction <= 0 || res.DeliveredFraction > 1 {
		t.Errorf("delivered fraction = %v", res.DeliveredFraction)
	}
	if res.DroppedPackets == 0 {
		t.Error("switch crash mid-run dropped nothing")
	}
	if res.DroppedPackets > 0 && res.DroppedBytes == 0 {
		t.Error("dropped packets but no dropped bytes")
	}
}

// TestRunFaultScheduleRejected checks schedule errors surface as typed
// config field errors from Run, not panics deep in the engine.
func TestRunFaultScheduleRejected(t *testing.T) {
	cfg := fastCfg()
	cfg.Faults = "50us fail-link s0p99" // no such inter-switch port
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("schedule with bad target accepted")
	}
	var fe *ConfigFieldError
	if !errors.As(err, &fe) || fe.Field != "Faults" {
		t.Errorf("err = %v, want ConfigFieldError on Faults", err)
	}
}

// TestRunFaultRateDeterministic runs the same seeded random-fault
// config twice and expects identical results, the property the
// resilience grids rely on.
func TestRunFaultRateDeterministic(t *testing.T) {
	cfg := fastCfg()
	cfg.FaultRate = 2.0
	cfg.FaultMTTR = 50 * time.Microsecond
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if a.Faults.Total() == 0 {
		t.Error("fault rate 2/ms over 500us produced no faults")
	}

	cfg.Seed = 99
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Faults, c.Faults) && a.MeanLatency == c.MeanLatency {
		t.Error("different seed produced an identical run")
	}
}

// TestRunGridFaultsParallelMatchesSerial checks that worker count does
// not change results even with random faults active.
func TestRunGridFaultsParallelMatchesSerial(t *testing.T) {
	var cfgs []Config
	for _, rate := range []float64{0, 0.5, 2.0} {
		cfg := fastCfg()
		cfg.FaultRate = rate
		cfgs = append(cfgs, cfg)
	}
	serial, err := RunGrid(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunGrid(cfgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("parallel grid differs from serial grid")
	}
	if serial[0].Faults.Total() != 0 {
		t.Errorf("rate 0 produced faults: %+v", serial[0].Faults)
	}
}

// TestRunContextCanceled: a canceled context stops the run at the next
// epoch boundary with a context error, not a partial Result.
func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, fastCfg())
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}

	if _, err := RunGridContext(ctx, []Config{fastCfg()}, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("grid err = %v, want context.Canceled", err)
	}
	if _, _, _, err := RunBaselinePairContext(ctx, fastCfg()); !errors.Is(err, context.Canceled) {
		t.Errorf("pair err = %v, want context.Canceled", err)
	}
}

// TestRunContextBackgroundMatchesRun: the context-free wrapper and an
// un-cancelable context produce identical results.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	cfg := fastCfg()
	cfg.FaultRate = 0.5
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("RunContext(Background) differs from Run")
	}
}
