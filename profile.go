package epnet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"epnet/internal/fabric"
	"epnet/internal/sim"
	"epnet/internal/telemetry"
)

// This file is the public face of engine self-profiling (Config.Profile
// / Config.ProfileOut): mirror types for the internal profiler snapshot
// with stable JSON tags, the human-readable critical-path report behind
// `epsim -profile`, the CSV exporter, and the Partition helper behind
// `epsim -v`'s startup line. The internal/telemetry types cannot appear
// in the public API (established epnet idiom — cf. FaultStats,
// LinkAttribution), so Result.Profile carries these mirrors.

// ShardProfile is one shard's aggregate of the engine self-profile.
// Wall-clock fields are real time the run spent; "Sim" fields are
// simulated time (window widths and advances).
type ShardProfile struct {
	Shard int `json:"shard"`

	// BusyWall is wall time executing this shard's windows; BarrierWait
	// is time spent parked at round barriers waiting for the laggard;
	// IdleWall is time covered by rounds in which the shard had no work
	// and fast-forwarded.
	BusyWall    time.Duration `json:"busy_wall_ns"`
	BarrierWait time.Duration `json:"barrier_wait_ns"`
	IdleWall    time.Duration `json:"idle_wall_ns"`

	// Events executed by this shard's engine.
	Events uint64 `json:"events"`

	// BusyRounds ran a window; FastForwardRounds jumped the clock
	// analytically; LaggardRounds are busy rounds in which this shard
	// had the slowest window and therefore set the barrier —
	// LaggardShare is that count over all laggard-bearing rounds.
	BusyRounds        int64   `json:"busy_rounds"`
	FastForwardRounds int64   `json:"fast_forward_rounds"`
	LaggardRounds     int64   `json:"laggard_rounds"`
	LaggardShare      float64 `json:"laggard_share"`

	// GrantedSim is the simulated window width the coordinator granted;
	// UsedSim the advance up to the last event actually executed.
	// WindowEfficiency = UsedSim / GrantedSim. FastForwardSim is the
	// advance taken analytically (no events).
	GrantedSim       time.Duration `json:"granted_sim_ns"`
	UsedSim          time.Duration `json:"used_sim_ns"`
	FastForwardSim   time.Duration `json:"fast_forward_sim_ns"`
	WindowEfficiency float64       `json:"window_efficiency"`

	// PeakPending is the event-queue depth high-water mark, sampled at
	// barriers after the cross-shard exchange.
	PeakPending int64 `json:"peak_pending"`

	// StagedOutEvents / StagedOutBytes total the cross-shard traffic
	// this shard staged toward all others (row sum of the exchange
	// matrices).
	StagedOutEvents int64 `json:"staged_out_events"`
	StagedOutBytes  int64 `json:"staged_out_bytes"`
}

// EngineProfile is the engine's self-profile over a run: where the wall
// time went (per-shard busy / barrier-wait / idle, control plane,
// exchange drains), how wide the conservative windows were versus how
// much of them was used, and which shards set the barriers. It contains
// wall-clock measurements and is therefore not deterministic; every
// other Result field is unaffected by collecting it.
type EngineProfile struct {
	Shards []ShardProfile `json:"shards"`

	// Rounds is the number of coordinator rounds (0 for a serial run).
	Rounds int64 `json:"rounds"`

	// Wall is wall time inside the coordinator's run calls.
	// CriticalPath sums, over rounds, the slowest busy window — the
	// engine-side lower bound on wall time. BarrierOverhead is the
	// fraction of Wall not covered by CriticalPath: coordination cost
	// (handoffs, drains, control plane) rather than laggard work.
	Wall            time.Duration `json:"wall_ns"`
	CriticalPath    time.Duration `json:"critical_path_ns"`
	BarrierOverhead float64       `json:"barrier_overhead"`

	// DrainWall is wall time draining staged cross-shard events at
	// barriers; CtrlWall and CtrlEvents cover the control engine
	// (injection, controller epochs, faults, telemetry sampling).
	DrainWall  time.Duration `json:"drain_wall_ns"`
	CtrlWall   time.Duration `json:"ctrl_wall_ns"`
	CtrlEvents uint64        `json:"ctrl_events"`

	// WindowEfficiency is the aggregate used/granted window fraction.
	WindowEfficiency float64 `json:"window_efficiency"`

	// ExchangeEvents[src][dst] / ExchangeBytes[src][dst]: the shard x
	// shard traffic matrix of staged events drained from src onto dst,
	// and the packet payload bytes among them (credit returns carry
	// none).
	ExchangeEvents [][]int64 `json:"exchange_events,omitempty"`
	ExchangeBytes  [][]int64 `json:"exchange_bytes,omitempty"`

	// Partition quality: directed inter-switch channels crossing a
	// shard boundary out of the total, and the finite range of the
	// per-pair lookahead matrix.
	CutChannels   int           `json:"cut_channels"`
	TotalChannels int           `json:"total_channels"`
	LookaheadMin  time.Duration `json:"lookahead_min_ns"`
	LookaheadMax  time.Duration `json:"lookahead_max_ns"`
}

// newEngineProfile mirrors an internal profiler snapshot into the
// public type.
func newEngineProfile(p *telemetry.EngineProfile) *EngineProfile {
	out := &EngineProfile{
		Shards:           make([]ShardProfile, len(p.Shards)),
		Rounds:           p.Rounds,
		Wall:             time.Duration(p.WallNs),
		CriticalPath:     time.Duration(p.CriticalPathNs),
		BarrierOverhead:  p.BarrierOverhead(),
		DrainWall:        time.Duration(p.DrainWallNs),
		CtrlWall:         time.Duration(p.CtrlWallNs),
		CtrlEvents:       p.CtrlEvents,
		WindowEfficiency: p.WindowEfficiency(),
		ExchangeEvents:   p.ExchangeEvents,
		ExchangeBytes:    p.ExchangeBytes,
		CutChannels:      p.CutChannels,
		TotalChannels:    p.TotalChannels,
		LookaheadMin:     toDuration(sim.Time(p.LookaheadMin)),
		LookaheadMax:     toDuration(sim.Time(p.LookaheadMax)),
	}
	for i := range p.Shards {
		s := &p.Shards[i]
		sp := ShardProfile{
			Shard:             s.Shard,
			BusyWall:          time.Duration(s.BusyWallNs),
			BarrierWait:       time.Duration(s.BarrierWaitNs),
			IdleWall:          time.Duration(s.IdleWallNs),
			Events:            s.Events,
			BusyRounds:        s.BusyRounds,
			FastForwardRounds: s.FastForwardRounds,
			LaggardRounds:     s.LaggardRounds,
			LaggardShare:      p.LaggardShare(s.Shard),
			GrantedSim:        toDuration(sim.Time(s.GrantedPs)),
			UsedSim:           toDuration(sim.Time(s.UsedPs)),
			FastForwardSim:    toDuration(sim.Time(s.FastForwardPs)),
			WindowEfficiency:  s.WindowEfficiency(),
			PeakPending:       s.PeakPending,
		}
		for _, v := range p.ExchangeEvents[i] {
			sp.StagedOutEvents += v
		}
		for _, v := range p.ExchangeBytes[i] {
			sp.StagedOutBytes += v
		}
		out.Shards[i] = sp
	}
	return out
}

// TotalEvents returns data-plane events executed across all shards.
func (p *EngineProfile) TotalEvents() uint64 {
	var n uint64
	for i := range p.Shards {
		n += p.Shards[i].Events
	}
	return n
}

// ExchangeTotals returns total staged cross-shard events and payload
// bytes.
func (p *EngineProfile) ExchangeTotals() (events, bytes int64) {
	for i := range p.Shards {
		events += p.Shards[i].StagedOutEvents
		bytes += p.Shards[i].StagedOutBytes
	}
	return events, bytes
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// WriteReport writes the human-readable critical-path report: the
// whole-run summary, the per-shard table, and the ranked laggard table
// answering "which shard set the barrier, how often, and at what
// cost". This is what `epsim -profile` prints.
func (p *EngineProfile) WriteReport(w io.Writer) error {
	bw := bufio.NewWriter(w)
	nsh := len(p.Shards)
	fmt.Fprintf(bw, "engine profile: %d shard(s), %d round(s), wall %v\n",
		nsh, p.Rounds, p.Wall.Round(time.Microsecond))
	fmt.Fprintf(bw, "  critical path %v (barrier overhead %s of wall)\n",
		p.CriticalPath.Round(time.Microsecond), pct(p.BarrierOverhead))
	fmt.Fprintf(bw, "  control plane %v (%d events), exchange drain %v\n",
		p.CtrlWall.Round(time.Microsecond), p.CtrlEvents,
		p.DrainWall.Round(time.Microsecond))
	if p.TotalChannels > 0 {
		fmt.Fprintf(bw, "  partition: %d/%d inter-switch channels cross shards (%s), lookahead %v..%v\n",
			p.CutChannels, p.TotalChannels,
			pct(float64(p.CutChannels)/float64(p.TotalChannels)),
			p.LookaheadMin, p.LookaheadMax)
	}
	if nsh > 1 {
		fmt.Fprintf(bw, "  window efficiency %s (used/granted simulated width)\n",
			pct(p.WindowEfficiency))
		ev, by := p.ExchangeTotals()
		fmt.Fprintf(bw, "  cross-shard exchange: %d events, %d payload bytes\n", ev, by)
	}

	fmt.Fprintf(bw, "%-6s %12s %12s %12s %12s %8s %8s %8s %7s %9s\n",
		"shard", "busy", "wait", "idle", "events",
		"rounds", "ff", "laggard", "weff", "peak-q")
	for i := range p.Shards {
		s := &p.Shards[i]
		fmt.Fprintf(bw, "%-6d %12v %12v %12v %12d %8d %8d %8d %7s %9d\n",
			s.Shard,
			s.BusyWall.Round(time.Microsecond),
			s.BarrierWait.Round(time.Microsecond),
			s.IdleWall.Round(time.Microsecond),
			s.Events, s.BusyRounds, s.FastForwardRounds, s.LaggardRounds,
			pct(s.WindowEfficiency), s.PeakPending)
	}

	// Ranked laggard table: who set the barrier, and what everyone else
	// paid waiting for them.
	order := make([]int, nsh)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := &p.Shards[order[a]], &p.Shards[order[b]]
		if sa.LaggardRounds != sb.LaggardRounds {
			return sa.LaggardRounds > sb.LaggardRounds
		}
		return order[a] < order[b]
	})
	printed := false
	for _, i := range order {
		s := &p.Shards[i]
		if s.LaggardRounds == 0 {
			continue
		}
		if !printed {
			fmt.Fprintln(bw, "critical path (ranked):")
			printed = true
		}
		fmt.Fprintf(bw, "  shard %d set the barrier %s of rounds (%d), busy %v, staged out %d events\n",
			s.Shard, pct(s.LaggardShare), s.LaggardRounds,
			s.BusyWall.Round(time.Microsecond), s.StagedOutEvents)
	}
	return bw.Flush()
}

// WriteCSV writes the profile as CSV: '#'-prefixed whole-run summary
// lines, then one row per shard.
func (p *EngineProfile) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# rounds=%d wall_ns=%d critical_path_ns=%d barrier_overhead=%.6f\n",
		p.Rounds, int64(p.Wall), int64(p.CriticalPath), p.BarrierOverhead)
	fmt.Fprintf(bw, "# drain_wall_ns=%d ctrl_wall_ns=%d ctrl_events=%d window_efficiency=%.6f\n",
		int64(p.DrainWall), int64(p.CtrlWall), p.CtrlEvents, p.WindowEfficiency)
	fmt.Fprintf(bw, "# cut_channels=%d total_channels=%d lookahead_min_ns=%d lookahead_max_ns=%d\n",
		p.CutChannels, p.TotalChannels, int64(p.LookaheadMin), int64(p.LookaheadMax))
	fmt.Fprintln(bw, "shard,busy_wall_ns,barrier_wait_ns,idle_wall_ns,events,"+
		"busy_rounds,fast_forward_rounds,laggard_rounds,laggard_share,"+
		"granted_sim_ns,used_sim_ns,fast_forward_sim_ns,window_efficiency,"+
		"peak_pending,staged_out_events,staged_out_bytes")
	for i := range p.Shards {
		s := &p.Shards[i]
		fmt.Fprintf(bw, "%d,%d,%d,%d,%d,%d,%d,%d,%.6f,%d,%d,%d,%.6f,%d,%d,%d\n",
			s.Shard, int64(s.BusyWall), int64(s.BarrierWait), int64(s.IdleWall),
			s.Events, s.BusyRounds, s.FastForwardRounds, s.LaggardRounds,
			s.LaggardShare, int64(s.GrantedSim), int64(s.UsedSim),
			int64(s.FastForwardSim), s.WindowEfficiency,
			s.PeakPending, s.StagedOutEvents, s.StagedOutBytes)
	}
	return bw.Flush()
}

// writeJSON streams the profile as indented JSON.
func (p *EngineProfile) writeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// writeProfileOut writes the profile to path: CSV when the path ends in
// ".csv", JSON otherwise.
func writeProfileOut(path string, p *EngineProfile) error {
	write := p.writeJSON
	if strings.HasSuffix(path, ".csv") {
		write = p.WriteCSV
	}
	if err := writeFile(path, write); err != nil {
		return fmt.Errorf("epnet: writing profile: %w", err)
	}
	return nil
}

// PartitionInfo describes the shard partition a configuration would
// run with, without running it: how the switches split, how many
// channels the cut crosses, and how tightly the shards are coupled.
type PartitionInfo struct {
	Shards        int           `json:"shards"`
	CutChannels   int           `json:"cut_channels"`
	TotalChannels int           `json:"total_channels"`
	LookaheadMin  time.Duration `json:"lookahead_min_ns"`
	LookaheadMax  time.Duration `json:"lookahead_max_ns"`

	// Lookahead is the closed per-shard-pair lookahead matrix
	// ([src][dst]); -1 marks an unreachable pair. Nil for serial runs.
	Lookahead [][]time.Duration `json:"lookahead,omitempty"`
}

// CutFraction returns CutChannels / TotalChannels (0 when serial).
func (p PartitionInfo) CutFraction() float64 {
	if p.TotalChannels == 0 {
		return 0
	}
	return float64(p.CutChannels) / float64(p.TotalChannels)
}

// String renders the one-line summary `epsim -v` prints at startup.
func (p PartitionInfo) String() string {
	if p.Shards <= 1 {
		return "shards=1 (serial engine)"
	}
	return fmt.Sprintf("shards=%d cut=%d/%d inter-switch channels (%s) lookahead=%v..%v",
		p.Shards, p.CutChannels, p.TotalChannels, pct(p.CutFraction()),
		p.LookaheadMin, p.LookaheadMax)
}

// Partition builds the configuration's network far enough to report its
// shard partition and lookahead matrix, then discards it. It is cheap
// relative to a run (topology wiring only, no simulation) and powers
// the `epsim -v` startup line.
func Partition(cfg Config) (PartitionInfo, error) {
	if err := cfg.Validate(); err != nil {
		return PartitionInfo{}, err
	}
	e := sim.New()
	t, router, _, err := buildTopology(cfg)
	if err != nil {
		return PartitionInfo{}, err
	}
	fcfg := fabric.DefaultConfig()
	fcfg.MaxPacket = cfg.MaxPacket
	fcfg.Seed = cfg.Seed
	fcfg.Shards = cfg.Shards
	net, err := fabric.New(e, t, router, fcfg)
	if err != nil {
		return PartitionInfo{}, err
	}
	defer net.Close()
	info := PartitionInfo{Shards: net.NumShards()}
	g := net.Sharding()
	if g == nil {
		return info, nil
	}
	info.CutChannels, info.TotalChannels = g.CutQuality()
	lo, hi := g.LookaheadRange()
	info.LookaheadMin, info.LookaheadMax = toDuration(lo), toDuration(hi)
	// Mirror the lookahead matrix; entries at or beyond the engine's
	// "effectively infinite" bound mark unreachable pairs.
	const unreachable = sim.Time(math.MaxInt64 / 8)
	m := g.LookaheadMatrix()
	info.Lookahead = make([][]time.Duration, len(m))
	for i, row := range m {
		info.Lookahead[i] = make([]time.Duration, len(row))
		for j, v := range row {
			if v >= unreachable {
				info.Lookahead[i][j] = -1
				continue
			}
			info.Lookahead[i][j] = toDuration(v)
		}
	}
	return info, nil
}
