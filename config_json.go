package epnet

import (
	"bytes"
	"encoding/json"
	"strings"
	"time"

	"epnet/internal/scenario"
)

// Duration is the JSON form of every Config duration: a Go duration
// string ("250us", "1.5ms") on the wire, a time.Duration in hand. Bare
// numbers are accepted on input as nanoseconds.
type Duration = scenario.Duration

// configJSON is Config's wire form: snake_case keys, durations as
// strings. It exists so Config's JSON schema is explicit and versioned
// by this one declaration rather than implied by Go field names.
// Inspector is runtime wiring and has no wire form.
type configJSON struct {
	Topology TopologyKind `json:"topology,omitempty"`
	K        int          `json:"k,omitempty"`
	N        int          `json:"n,omitempty"`
	C        int          `json:"c,omitempty"`

	Workload  WorkloadKind `json:"workload,omitempty"`
	Load      float64      `json:"load,omitempty"`
	TracePath string       `json:"trace_path,omitempty"`

	Policy     PolicyKind `json:"policy,omitempty"`
	TargetUtil float64    `json:"target_util,omitempty"`

	Independent           bool        `json:"independent,omitempty"`
	Routing               RoutingKind `json:"routing,omitempty"`
	ModeAwareReactivation bool        `json:"mode_aware_reactivation,omitempty"`

	Reactivation Duration `json:"reactivation,omitempty"`
	Epoch        Duration `json:"epoch,omitempty"`

	DynTopo bool `json:"dyn_topo,omitempty"`

	Warmup   Duration `json:"warmup,omitempty"`
	Duration Duration `json:"duration,omitempty"`

	Seed      int64 `json:"seed,omitempty"`
	Shards    int   `json:"shards,omitempty"`
	MaxPacket int   `json:"max_packet,omitempty"`

	PowerSampleEvery Duration `json:"power_sample_every,omitempty"`
	MetricsOut       string   `json:"metrics_out,omitempty"`
	SampleInterval   Duration `json:"sample_interval,omitempty"`
	TraceOut         string   `json:"trace_out,omitempty"`
	HeatmapOut       string   `json:"heatmap_out,omitempty"`
	HistOut          string   `json:"hist_out,omitempty"`
	Attribution      bool     `json:"attribution,omitempty"`
	Profile          bool     `json:"profile,omitempty"`
	ProfileOut       string   `json:"profile_out,omitempty"`
	FlowTrace        bool     `json:"flow_trace,omitempty"`
	FlowSample       float64  `json:"flow_sample,omitempty"`
	FlowsOut         string   `json:"flows_out,omitempty"`

	FailLinks int      `json:"fail_links,omitempty"`
	FailAfter Duration `json:"fail_after,omitempty"`
	Faults    string   `json:"faults,omitempty"`
	FaultRate float64  `json:"fault_rate,omitempty"`
	FaultMTTR Duration `json:"fault_mttr,omitempty"`

	Scenario *Scenario `json:"scenario,omitempty"`
}

// wire converts the in-memory Config to its wire form.
func (c Config) wire() configJSON {
	return configJSON{
		Topology:              c.Topology,
		K:                     c.K,
		N:                     c.N,
		C:                     c.C,
		Workload:              c.Workload,
		Load:                  c.Load,
		TracePath:             c.TracePath,
		Policy:                c.Policy,
		TargetUtil:            c.TargetUtil,
		Independent:           c.Independent,
		Routing:               c.Routing,
		ModeAwareReactivation: c.ModeAwareReactivation,
		Reactivation:          Duration(c.Reactivation),
		Epoch:                 Duration(c.Epoch),
		DynTopo:               c.DynTopo,
		Warmup:                Duration(c.Warmup),
		Duration:              Duration(c.Duration),
		Seed:                  c.Seed,
		Shards:                c.Shards,
		MaxPacket:             c.MaxPacket,
		PowerSampleEvery:      Duration(c.PowerSampleEvery),
		MetricsOut:            c.MetricsOut,
		SampleInterval:        Duration(c.SampleInterval),
		TraceOut:              c.TraceOut,
		HeatmapOut:            c.HeatmapOut,
		HistOut:               c.HistOut,
		Attribution:           c.Attribution,
		Profile:               c.Profile,
		ProfileOut:            c.ProfileOut,
		FlowTrace:             c.FlowTrace,
		FlowSample:            c.FlowSample,
		FlowsOut:              c.FlowsOut,
		FailLinks:             c.FailLinks,
		FailAfter:             Duration(c.FailAfter),
		Faults:                c.Faults,
		FaultRate:             c.FaultRate,
		FaultMTTR:             Duration(c.FaultMTTR),
		Scenario:              c.Scenario,
	}
}

// unwire copies the wire form back into the Config.
func (c *Config) unwire(w configJSON) {
	c.Topology = w.Topology
	c.K = w.K
	c.N = w.N
	c.C = w.C
	c.Workload = w.Workload
	c.Load = w.Load
	c.TracePath = w.TracePath
	c.Policy = w.Policy
	c.TargetUtil = w.TargetUtil
	c.Independent = w.Independent
	c.Routing = w.Routing
	c.ModeAwareReactivation = w.ModeAwareReactivation
	c.Reactivation = time.Duration(w.Reactivation)
	c.Epoch = time.Duration(w.Epoch)
	c.DynTopo = w.DynTopo
	c.Warmup = time.Duration(w.Warmup)
	c.Duration = time.Duration(w.Duration)
	c.Seed = w.Seed
	c.Shards = w.Shards
	c.MaxPacket = w.MaxPacket
	c.PowerSampleEvery = time.Duration(w.PowerSampleEvery)
	c.MetricsOut = w.MetricsOut
	c.SampleInterval = time.Duration(w.SampleInterval)
	c.TraceOut = w.TraceOut
	c.HeatmapOut = w.HeatmapOut
	c.HistOut = w.HistOut
	c.Attribution = w.Attribution
	c.Profile = w.Profile
	c.ProfileOut = w.ProfileOut
	c.FlowTrace = w.FlowTrace
	c.FlowSample = w.FlowSample
	c.FlowsOut = w.FlowsOut
	c.FailLinks = w.FailLinks
	c.FailAfter = time.Duration(w.FailAfter)
	c.Faults = w.Faults
	c.FaultRate = w.FaultRate
	c.FaultMTTR = time.Duration(w.FaultMTTR)
	c.Scenario = w.Scenario
}

// MarshalJSON implements json.Marshaler with the snake_case wire form.
func (c Config) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.wire())
}

// UnmarshalJSON implements json.Unmarshaler strictly: unknown fields
// are rejected with a *ConfigFieldError naming the offender (so typos
// in a config file fail loudly instead of silently running defaults),
// and fields absent from the document keep the receiver's values —
// partial documents are overlays, which is what lets a scenario's
// config block override just the knobs it cares about.
func (c *Config) UnmarshalJSON(data []byte) error {
	w := c.wire()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		if f := unknownJSONField(err); f != "" {
			return fieldErr(f, "unknown config field %q", f)
		}
		return fieldErr("Config", "%v", err)
	}
	c.unwire(w)
	return nil
}

// unknownJSONField extracts the field name from encoding/json's
// DisallowUnknownFields error, which has no structured form.
func unknownJSONField(err error) string {
	const marker = `unknown field "`
	msg := err.Error()
	i := strings.Index(msg, marker)
	if i < 0 {
		return ""
	}
	rest := msg[i+len(marker):]
	if j := strings.IndexByte(rest, '"'); j >= 0 {
		return rest[:j]
	}
	return ""
}
