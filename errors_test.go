package epnet

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestConfigErrorsCarryFieldNames drives every validation branch and
// checks the returned error (a) matches ErrInvalidConfig, (b) is a
// *ConfigFieldError naming exactly the offending field, and (c) for
// enum fields also matches the dedicated sentinel.
func TestConfigErrorsCarryFieldNames(t *testing.T) {
	base := func() Config { return Config{K: 4, N: 2, C: 4, Duration: time.Millisecond} }
	cases := []struct {
		field    string
		mut      func(*Config)
		sentinel error // optional enum sentinel
	}{
		{"Topology", func(c *Config) { c.Topology = "ring" }, ErrUnknownTopology},
		{"DynTopo", func(c *Config) { c.Topology = TopoFatTree; c.DynTopo = true }, nil},
		{"K", func(c *Config) { c.K = 1 }, nil},
		{"K", func(c *Config) { c.Topology = TopoClos3; c.K = 5 }, nil},
		{"C", func(c *Config) { c.C = 0 }, nil},
		{"N", func(c *Config) { c.N = 1 }, nil},
		{"TracePath", func(c *Config) { c.Workload = WorkloadTrace }, nil},
		{"Workload", func(c *Config) { c.Workload = "netflix" }, ErrUnknownWorkload},
		{"Policy", func(c *Config) { c.Policy = "magic" }, ErrUnknownPolicy},
		{"Routing", func(c *Config) { c.Routing = "static" }, ErrUnknownRouting},
		{"Routing", func(c *Config) { c.Topology = TopoFatTree; c.Routing = RoutingDOR }, nil},
		{"FailLinks", func(c *Config) { c.FailLinks = -1 }, nil},
		{"FailLinks", func(c *Config) { c.FailLinks = 2; c.Routing = RoutingDOR }, nil},
		{"FailAfter", func(c *Config) { c.FailLinks = 2; c.FailAfter = -time.Microsecond }, nil},
		{"Faults", func(c *Config) { c.Faults = "50us explode s0p1" }, nil},
		{"Faults", func(c *Config) { c.Faults = "50us fail-link s0p1"; c.Routing = RoutingDOR }, nil},
		{"FaultRate", func(c *Config) { c.FaultRate = -1 }, nil},
		{"FaultRate", func(c *Config) { c.FaultRate = 0.5; c.Routing = RoutingDOR }, nil},
		{"FaultMTTR", func(c *Config) { c.FaultRate = 0.5; c.FaultMTTR = -time.Microsecond }, nil},
		{"Load", func(c *Config) { c.Load = 1.0 }, nil},
		{"TargetUtil", func(c *Config) { c.TargetUtil = 1.5 }, nil},
		{"Reactivation", func(c *Config) { c.Reactivation = -time.Microsecond }, nil},
		{"Epoch", func(c *Config) { c.Epoch = time.Microsecond; c.Reactivation = 2 * time.Microsecond }, nil},
		{"SampleInterval", func(c *Config) { c.SampleInterval = -time.Microsecond }, nil},
		{"Duration", func(c *Config) { c.Duration = 0 }, nil},
		{"Warmup", func(c *Config) { c.Warmup = -1 }, nil},
		{"MaxPacket", func(c *Config) { c.MaxPacket = 32 }, nil},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: invalid config accepted", tc.field)
			continue
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: error %v does not match ErrInvalidConfig", tc.field, err)
		}
		var fe *ConfigFieldError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v is not a *ConfigFieldError", tc.field, err)
			continue
		}
		if fe.Field != tc.field {
			t.Errorf("error names field %q, want %q (%v)", fe.Field, tc.field, err)
		}
		if !strings.Contains(err.Error(), "Config."+tc.field) {
			t.Errorf("%s: message %q does not name the field", tc.field, err)
		}
		if tc.sentinel != nil && !errors.Is(err, tc.sentinel) {
			t.Errorf("%s: error %v does not match its enum sentinel", tc.field, err)
		}
	}
}

// TestConfigErrorSentinelsDistinct makes sure matching one sentinel
// does not accidentally match the others.
func TestConfigErrorSentinelsDistinct(t *testing.T) {
	cfg := Config{K: 4, N: 2, C: 4, Duration: time.Millisecond, Policy: "magic"}
	err := cfg.Validate()
	if !errors.Is(err, ErrUnknownPolicy) {
		t.Fatalf("err = %v, want ErrUnknownPolicy", err)
	}
	for _, wrong := range []error{ErrUnknownTopology, ErrUnknownWorkload, ErrUnknownRouting} {
		if errors.Is(err, wrong) {
			t.Errorf("policy error matches unrelated sentinel %v", wrong)
		}
	}
}

func TestValidConfigHasNoError(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}
